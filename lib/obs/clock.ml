(** The sanctioned time seam for the observability layer.

    Everything in {!Metrics} and {!Trace} reads time through a [t], so a
    test can swap in a {!manual} or {!ticking} clock and get byte-for-byte
    deterministic spans and latency histograms. This file (together with
    [Retry.now]) is the only place outside the entropy seam allowed to
    touch the ambient wall clock — the [no-ambient-clock] lint rule
    enforces that. *)

type t =
  | System
  | Manual of float ref
  | Ticking of { mutable current : float; step : float }

let system = System
let manual ?(start = 0.) () = Manual (ref start)
let ticking ?(start = 0.) ~step () = Ticking { current = start; step }

let now = function
  | System -> Unix.gettimeofday ()
  | Manual r -> !r
  | Ticking tk ->
    let v = tk.current in
    tk.current <- v +. tk.step;
    v

let set c at =
  match c with
  | Manual r -> r := at
  | Ticking tk -> tk.current <- at
  | System -> invalid_arg "Obs.Clock.set: cannot set the system clock"

let advance c dt =
  match c with
  | Manual r -> r := !r +. dt
  | Ticking tk -> tk.current <- tk.current +. dt
  | System -> invalid_arg "Obs.Clock.advance: cannot advance the system clock"

(** Global registry of named counters, gauges, and log-scale histograms.

    Creation is idempotent ([counter name] twice returns the same
    counter), recording is O(1), and {!disable} turns every recording
    call into a single atomic load with no allocation — instrumented hot
    paths cost nothing when observability is off. Every metric kind is
    domain-safe: counters and histogram cells are [Atomic], gauges are
    last-writer-wins atomic cells, and histogram float accumulators use
    CAS retry loops — concurrent recording never loses a sample. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create. @raise Invalid_argument if [name] is already a
    different metric kind. *)

val gauge : string -> gauge
val histogram : string -> histogram

(** {2 No-op mode} *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

(** {2 Recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val observe_int : histogram -> int -> unit
val count : histogram -> int
val sum : histogram -> float
val mean : histogram -> float

val time : histogram -> (unit -> 'a) -> 'a
(** Run a thunk and observe its duration in seconds (read through the
    clock set by {!set_clock}); passthrough when disabled. The duration
    is recorded even if the thunk raises. *)

val set_clock : Clock.t -> unit
(** Swap the clock used by {!time} (default {!Clock.system}). *)

(** {2 Bucket scheme}

    All histograms share power-of-two log-scale buckets: bucket [i]
    covers [[2^(min_exp+i), 2^(min_exp+i+1))] with the first bucket also
    absorbing [v <= 0] and the last unbounded above. *)

val num_buckets : int
val bucket_of : float -> int
val bucket_lower : int -> float
val bucket_upper : int -> float

(** {2 Snapshot and reset} *)

type histogram_view = {
  hv_count : int;
  hv_sum : float;
  hv_min : float;  (** [infinity] when empty *)
  hv_max : float;  (** [neg_infinity] when empty *)
  hv_buckets : (float * int) array;
      (** (exclusive upper bound, samples) for each non-empty bucket, in
          increasing bound order; the last bound may be [infinity] *)
}

type view =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_view

val snapshot : unit -> (string * view) list
(** Every registered metric, sorted by name. *)

val percentile : histogram_view -> float -> float option
(** [percentile hv q] estimates the [q]-quantile ([0. <= q <= 1.]) from
    the log-scale buckets: linear interpolation inside the bucket the
    rank lands in, clamped to the observed min/max. [None] when the
    histogram is empty {e or} the view is partial (a count with no
    buckets, or non-finite min/max — snapshots race concurrent
    observes); a single-valued histogram ([hv_min = hv_max]) answers
    that value exactly. Relative error is otherwise bounded by the
    power-of-two bucket width. *)

val reset : unit -> unit
(** Zero all values; registrations (and metric identities) survive. *)

val name_of_counter : counter -> string
val name_of_gauge : gauge -> string
val name_of_histogram : histogram -> string

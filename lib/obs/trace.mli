(** Nested spans with a ring-buffer recorder and JSONL / tree exporters.

    Usage: create and {!install} a {!recorder}, wrap protocol phases in
    {!with_span}, mark instants with {!event}, then export with
    {!to_jsonl} or {!tree}. With no recorder installed every call is a
    near-free no-op, so library code can be instrumented unconditionally.

    Domain-safe: spans may be recorded from any number of domains
    concurrently (ring updates are lock-guarded); each domain nests spans
    under its own innermost open span, since the open-span stack is
    domain-local state that follows the call stack. *)

type kind = Span | Event

type span = {
  id : int;
  parent : int option;  (** enclosing span id, [None] at the root *)
  name : string;
  kind : kind;
  start : float;  (** clock instant the span opened *)
  mutable duration : float;  (** seconds; [0.] for events / still-open spans *)
  mutable attrs : (string * string) list;
}

type recorder

val create : ?clock:Clock.t -> ?capacity:int -> unit -> recorder
(** Ring buffer holding the last [capacity] (default 4096) spans.
    @raise Invalid_argument if [capacity <= 0]. *)

val install : recorder -> unit
(** Make [r] the global recorder that {!with_span}/{!event} feed. *)

val uninstall : unit -> unit
val installed : unit -> recorder option

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span nested under the innermost
    open span; the span closes (and its duration is patched) even if [f]
    raises. Passthrough when no recorder is installed. *)

val event : ?attrs:(string * string) list -> string -> unit
(** Record an instant event under the innermost open span. *)

val add_attr : string -> string -> unit
(** Attach a key/value to the innermost open span (no-op outside one). *)

val spans : recorder -> span list
(** Recorded spans, oldest first; entries evicted by the ring are gone. *)

val recorded : recorder -> int
(** Spans currently held in the ring. *)

val total : recorder -> int
(** Spans ever started, including evicted ones. *)

val to_jsonl : recorder -> string
(** One JSON object per line:
    [{"id":…,"parent":…,"kind":"span"|"event","name":…,"start":…,
      "duration":…,"attrs":{…}}]. *)

val tree : recorder -> string
(** Indented human-readable parent/child rendering; spans whose parent
    was evicted render at the root. *)

(** Nested spans with a ring-buffer recorder and JSONL / tree exporters.

    Usage: create and {!install} a {!recorder}, wrap protocol phases in
    {!with_span}, mark instants with {!event}, then export with
    {!to_jsonl} or {!tree}. With no recorder installed every call is a
    near-free no-op, so library code can be instrumented unconditionally.

    Domain-safe: spans may be recorded from any number of domains
    concurrently (ring updates are lock-guarded); each domain nests spans
    under its own innermost open span, since the open-span stack is
    domain-local state that follows the call stack. *)

type kind = Span | Event

type span = {
  id : int;
  parent : int option;  (** enclosing span id, [None] at the root *)
  name : string;
  kind : kind;
  start : float;  (** clock instant the span opened *)
  trace : string;
      (** trace this span belongs to: inherited from the enclosing span
          or the wire {!context}; a root span mints its own reference *)
  remote : string option;
      (** cross-process parent reference carried in via {!with_span_ctx} *)
  mutable duration : float;  (** seconds; [0.] for events / still-open spans *)
  mutable attrs : (string * string) list;
}

type recorder

val create :
  ?clock:Clock.t -> ?capacity:int -> ?origin:string -> unit -> recorder
(** Ring buffer holding the last [capacity] (default 4096) spans.
    [origin] (default ["main"]) labels this process in cross-process
    span references (["<origin>#<id>"]) — give every process of a
    deployment a distinct origin so {!merge} can stitch their dumps.
    @raise Invalid_argument if [capacity <= 0]. *)

val origin : recorder -> string

val install : recorder -> unit
(** Make [r] the global recorder that {!with_span}/{!event} feed. *)

val uninstall : unit -> unit
val installed : unit -> recorder option

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span nested under the innermost
    open span; the span closes (and its duration is patched) even if [f]
    raises. Passthrough when no recorder is installed. *)

val event : ?attrs:(string * string) list -> string -> unit
(** Record an instant event under the innermost open span. *)

(** {2 Cross-process trace context}

    A {!context} names an open span in this process in a wire-portable
    form. Attach it to an outgoing frame; the receiver opens its
    handling span with {!with_span_ctx}, and the two processes' dumps
    stitch into one tree under {!merge}. *)

type context = {
  ctx_trace : string;  (** trace id, minted by the trace's root span *)
  ctx_parent : string;  (** origin-qualified reference to the open span *)
}

val context : unit -> context option
(** Context of the innermost open span on this domain ([None] with no
    recorder installed or no span open). *)

val with_span_ctx :
  ?ctx:context -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Like {!with_span}, but when [ctx] is given the span joins that trace
    and records [ctx.ctx_parent] as its remote parent (its local parent,
    if any, still nests it in this process's own tree). *)

val context_to_string : context -> string
(** Compact wire encoding (["<trace> <parent>"], no newlines). *)

val context_of_string : string -> context option
(** Inverse of {!context_to_string}; [None] on malformed input. *)

val add_attr : string -> string -> unit
(** Attach a key/value to the innermost open span (no-op outside one). *)

val spans : recorder -> span list
(** Recorded spans, oldest first; entries evicted by the ring are gone. *)

val recorded : recorder -> int
(** Spans currently held in the ring. *)

val total : recorder -> int
(** Spans ever started, including evicted ones. *)

val to_jsonl : recorder -> string
(** One JSON object per line:
    [{"id":…,"parent":…,"origin":…,"trace":…,"remote":…,
      "kind":"span"|"event","name":…,"start":…,"duration":…,
      "attrs":{…}}] ([remote] only when present). *)

val tree : recorder -> string
(** Indented human-readable parent/child rendering; spans whose parent
    was evicted render at the root. *)

(** {2 Merging per-process dumps} *)

type merged = {
  m_id : string;  (** origin-qualified reference, e.g. ["server0#3"] *)
  m_parent : string option;
      (** resolved parent reference — the local parent when one exists
          in the merged set, else the cross-process remote parent *)
  m_origin : string;
  m_trace : string;
  m_kind : kind;
  m_name : string;
  m_start : float;
  m_duration : float;
  m_attrs : (string * string) list;
}

val merge : string list -> merged list
(** Join per-process JSONL dumps ({!to_jsonl} output, one string per
    process) into one causally-ordered list: parents precede children,
    siblings order by start time then id (deterministic under a fixed
    clock). Lines that fail to parse — e.g. a dump torn by a kill — are
    skipped; dangling parent references degrade to roots. *)

val merge_jsonl : string list -> string
(** {!merge} rendered back to JSONL with origin-qualified string ids. *)

val merge_tree : string list -> string
(** {!merge} rendered as an indented tree, each line prefixed by the
    process origin. *)

(** Exporters over the global {!Metrics} registry. Both return strings;
    this library performs no I/O. *)

val prometheus : unit -> string
(** Prometheus exposition text: a [# TYPE] line per metric, cumulative
    [_bucket{le="…"}] series plus [_sum]/[_count] for histograms. *)

val json : unit -> string
(** One JSON object keyed by metric name; counters as integers, gauges
    as numbers, histograms as
    [{"count":…,"sum":…,"min":…,"max":…,"buckets":[[le,n],…]}] (non-finite
    bounds rendered as [null]). *)

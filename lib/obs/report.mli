(** Exporters over the global {!Metrics} registry. Both return strings;
    this library performs no I/O. *)

val prometheus : unit -> string
(** Prometheus exposition text: a [# TYPE] line per metric, cumulative
    [_bucket{le="…"}] series plus [_sum]/[_count] for histograms. *)

val json : unit -> string
(** One JSON object keyed by metric name; counters as integers, gauges
    as numbers, histograms as
    [{"count":…,"sum":…,"min":…,"max":…,"p50":…,"p95":…,"p99":…,
      "buckets":[[le,n],…]}] (non-finite bounds and empty-histogram
    percentiles rendered as [null]). *)

val summary : unit -> string
(** Human-readable one-line-per-metric view; histograms show count,
    mean and p50/p95/p99 estimates ({!Metrics.percentile}) instead of
    raw bucket counts. *)

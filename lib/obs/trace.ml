(** Nested spans and instant events with a ring-buffer recorder.

    A {!recorder} is installed globally ({!install}); until then every
    {!with_span}/{!event} call is a near-free passthrough (one ref read).
    Spans are recorded at start (so parents precede children in the
    ring) and their duration is patched in place when the span closes;
    the ring keeps the most recent [capacity] entries, evicting the
    oldest. Exporters: {!to_jsonl} (one JSON object per line, machine
    diffable) and {!tree} (indented human view).

    Like {!Metrics}, the recorder reads time only through {!Clock}, so a
    fixed clock plus seeded fault injection yields byte-identical trace
    output across runs.

    Domain safety: the ring, counters and span mutations are guarded by
    one mutex, while the open-span stack — which follows each domain's
    call stack and never crosses domains — lives in domain-local storage
    keyed to the installed recorder. Spans recorded concurrently from
    several domains interleave in the ring in lock order, each nested
    under its own domain's innermost open span. *)

type kind = Span | Event

type span = {
  id : int;
  parent : int option;
  name : string;
  kind : kind;
  start : float;
  mutable duration : float;
  mutable attrs : (string * string) list;
}

type recorder = {
  clock : Clock.t;
  capacity : int;
  ring : span option array;
  mutable total : int;  (** spans ever started, including evicted ones *)
  mutable next_id : int;
  lock : Mutex.t;  (** guards ring, total, next_id and span mutations *)
}

let create ?(clock = Clock.system) ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Obs.Trace.create: capacity must be positive";
  { clock; capacity; ring = Array.make capacity None; total = 0;
    next_id = 0; lock = Mutex.create () }

(* Atomic, not ref: with_span/event/add_attr read this from worker
   domains while the main domain installs/uninstalls recorders around
   runs (the PR 6 trace-ring race). *)
let current : recorder option Atomic.t = Atomic.make None
let install r = Atomic.set current (Some r)
let uninstall () = Atomic.set current None
let installed () = Atomic.get current

(* Each domain keeps its own open-span stack: span nesting follows the
   call stack, which never crosses a domain boundary. The cell is keyed
   (physically) to the recorder it was built against, so installing a
   fresh recorder can't leak another run's parents into new spans. *)
let stack_key : (recorder option * span list) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (None, []))

let my_stack r =
  let cell = Domain.DLS.get stack_key in
  (match !cell with
  | Some r', _ when r' == r -> ()
  | _ -> cell := (Some r, []));
  cell

let locked r f =
  Mutex.lock r.lock;
  match f () with
  | v ->
    Mutex.unlock r.lock;
    v
  | exception e ->
    Mutex.unlock r.lock;
    raise e

let recorded r = locked r (fun () -> min r.total r.capacity)
let total r = locked r (fun () -> r.total)

let fresh r ~kind ~parent ?(attrs = []) name =
  locked r (fun () ->
      let id = r.next_id in
      r.next_id <- id + 1;
      let sp =
        { id; parent; name; kind; start = Clock.now r.clock; duration = 0.;
          attrs }
      in
      r.ring.(r.total mod r.capacity) <- Some sp;
      r.total <- r.total + 1;
      sp)

let parent_of stack =
  match snd !stack with [] -> None | sp :: _ -> Some sp.id

let with_span ?attrs name f =
  match Atomic.get current with
  | None -> f ()
  | Some r ->
    let stack = my_stack r in
    let sp = fresh r ~kind:Span ~parent:(parent_of stack) ?attrs name in
    stack := (Some r, sp :: snd !stack);
    Fun.protect
      ~finally:(fun () ->
        locked r (fun () -> sp.duration <- Clock.now r.clock -. sp.start);
        (* tolerate a child left open by an exception: drop down to sp *)
        let rec unwind = function
          | top :: rest when top == sp -> rest
          | _ :: rest -> unwind rest
          | [] -> []
        in
        stack := (Some r, unwind (snd !stack)))
      f

let event ?attrs name =
  match Atomic.get current with
  | None -> ()
  | Some r ->
    let stack = my_stack r in
    ignore (fresh r ~kind:Event ~parent:(parent_of stack) ?attrs name)

let add_attr k v =
  match Atomic.get current with
  | None -> ()
  | Some r -> (
    match snd !(my_stack r) with
    | [] -> ()
    | sp :: _ -> locked r (fun () -> sp.attrs <- sp.attrs @ [ (k, v) ]))

(* ------------------------------- exporters ----------------------------- *)

(** Recorded spans, oldest first (evicted entries are gone); the list is
    snapshotted under the recorder lock, so exporting while other domains
    record sees a consistent ring. *)
let spans r =
  locked r (fun () ->
      let n = min r.total r.capacity in
      let first = r.total - n in
      List.init n (fun i ->
          match r.ring.((first + i) mod r.capacity) with
          | Some sp -> sp
          | None -> assert false (* slots below [total] are always filled *)))

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* shortest representation that round-trips: epoch-scale starts keep
       their microseconds without printing 17 digits for everything *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let span_to_json sp =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "{\"id\":%d" sp.id);
  (match sp.parent with
  | None -> Buffer.add_string buf ",\"parent\":null"
  | Some p -> Buffer.add_string buf (Printf.sprintf ",\"parent\":%d" p));
  Buffer.add_string buf
    (Printf.sprintf ",\"kind\":%s"
       (match sp.kind with Span -> "\"span\"" | Event -> "\"event\""));
  Buffer.add_string buf (Printf.sprintf ",\"name\":\"%s\"" (json_escape sp.name));
  Buffer.add_string buf (Printf.sprintf ",\"start\":%s" (float_lit sp.start));
  if sp.kind = Span then
    Buffer.add_string buf (Printf.sprintf ",\"duration\":%s" (float_lit sp.duration));
  if sp.attrs <> [] then begin
    Buffer.add_string buf ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      sp.attrs;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_jsonl r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun sp ->
      Buffer.add_string buf (span_to_json sp);
      Buffer.add_char buf '\n')
    (spans r);
  Buffer.contents buf

(** Indented parent/child view. Spans whose parent was evicted from the
    ring (or never existed) render at the root. *)
let tree r =
  let all = spans r in
  let present = Hashtbl.create 64 in
  List.iter (fun sp -> Hashtbl.replace present sp.id ()) all;
  let children = Hashtbl.create 64 in
  let roots =
    List.filter
      (fun sp ->
        match sp.parent with
        | Some p when Hashtbl.mem present p ->
          Hashtbl.replace children p
            (sp :: (try Hashtbl.find children p with Not_found -> []));
          false
        | _ -> true)
      all
  in
  let buf = Buffer.create 1024 in
  let attr_str sp =
    if sp.attrs = [] then ""
    else
      " ["
      ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) sp.attrs)
      ^ "]"
  in
  let rec render depth sp =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    (match sp.kind with
    | Span ->
      Buffer.add_string buf
        (Printf.sprintf "%s (%.6fs)%s\n" sp.name sp.duration (attr_str sp))
    | Event ->
      Buffer.add_string buf (Printf.sprintf "* %s%s\n" sp.name (attr_str sp)));
    List.iter (render (depth + 1))
      (List.rev (try Hashtbl.find children sp.id with Not_found -> []))
  in
  List.iter (render 0) roots;
  Buffer.contents buf

(** Nested spans and instant events with a ring-buffer recorder.

    A {!recorder} is installed globally ({!install}); until then every
    {!with_span}/{!event} call is a near-free passthrough (one ref read).
    Spans are recorded at start (so parents precede children in the
    ring) and their duration is patched in place when the span closes;
    the ring keeps the most recent [capacity] entries, evicting the
    oldest. Exporters: {!to_jsonl} (one JSON object per line, machine
    diffable) and {!tree} (indented human view).

    Like {!Metrics}, the recorder reads time only through {!Clock}, so a
    fixed clock plus seeded fault injection yields byte-identical trace
    output across runs.

    Domain safety: the ring, counters and span mutations are guarded by
    one mutex, while the open-span stack — which follows each domain's
    call stack and never crosses domains — lives in domain-local storage
    keyed to the installed recorder. Spans recorded concurrently from
    several domains interleave in the ring in lock order, each nested
    under its own domain's innermost open span. *)

type kind = Span | Event

type span = {
  id : int;
  parent : int option;
  name : string;
  kind : kind;
  start : float;
  trace : string;  (** trace id this span belongs to (root spans mint one) *)
  remote : string option;  (** cross-process parent reference, if any *)
  mutable duration : float;
  mutable attrs : (string * string) list;
}

type recorder = {
  clock : Clock.t;
  capacity : int;
  origin : string;  (** process label namespacing span references *)
  ring : span option array;
  mutable total : int;  (** spans ever started, including evicted ones *)
  mutable next_id : int;
  lock : Mutex.t;  (** guards ring, total, next_id and span mutations *)
}

let create ?(clock = Clock.system) ?(capacity = 4096) ?(origin = "main") () =
  if capacity <= 0 then invalid_arg "Obs.Trace.create: capacity must be positive";
  { clock; capacity; origin; ring = Array.make capacity None; total = 0;
    next_id = 0; lock = Mutex.create () }

let origin r = r.origin

(* Globally-referenceable span identity: "<origin>#<local id>". Two
   recorders with distinct origins (one per OS process in a deployment)
   never collide, so cross-process parent links survive {!merge}. *)
let sref r id = r.origin ^ "#" ^ string_of_int id

(* Atomic, not ref: with_span/event/add_attr read this from worker
   domains while the main domain installs/uninstalls recorders around
   runs (the PR 6 trace-ring race). *)
let current : recorder option Atomic.t = Atomic.make None
let install r = Atomic.set current (Some r)
let uninstall () = Atomic.set current None
let installed () = Atomic.get current

(* Each domain keeps its own open-span stack: span nesting follows the
   call stack, which never crosses a domain boundary. The cell is keyed
   (physically) to the recorder it was built against, so installing a
   fresh recorder can't leak another run's parents into new spans. *)
let stack_key : (recorder option * span list) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (None, []))

let my_stack r =
  let cell = Domain.DLS.get stack_key in
  (match !cell with
  | Some r', _ when r' == r -> ()
  | _ -> cell := (Some r, []));
  cell

let locked r f =
  Mutex.lock r.lock;
  match f () with
  | v ->
    Mutex.unlock r.lock;
    v
  | exception e ->
    Mutex.unlock r.lock;
    raise e

let recorded r = locked r (fun () -> min r.total r.capacity)
let total r = locked r (fun () -> r.total)

(* [trace]: [None] mints a fresh trace id — the span's own global
   reference — making the span a trace root; [Some t] joins trace [t]. *)
let fresh r ~kind ~parent ~trace ~remote ?(attrs = []) name =
  locked r (fun () ->
      let id = r.next_id in
      r.next_id <- id + 1;
      let trace = match trace with Some t -> t | None -> sref r id in
      let sp =
        { id; parent; name; kind; start = Clock.now r.clock; trace; remote;
          duration = 0.; attrs }
      in
      r.ring.(r.total mod r.capacity) <- Some sp;
      r.total <- r.total + 1;
      sp)

let parent_of stack =
  match snd !stack with [] -> None | sp :: _ -> Some sp.id

let trace_of stack =
  match snd !stack with [] -> None | sp :: _ -> Some sp.trace

(* --------------------------- trace context ----------------------------- *)

(** Wire-portable reference to an open span in this process: attach it to
    an outgoing frame and the receiving process records its handling
    spans as remote children ({!with_span_ctx}), so a client submission
    and every server-side phase it triggers share one trace. *)
type context = { ctx_trace : string; ctx_parent : string }

let context () =
  match Atomic.get current with
  | None -> None
  | Some r -> (
    match snd !(my_stack r) with
    | [] -> None
    | sp :: _ -> Some { ctx_trace = sp.trace; ctx_parent = sref r sp.id })

(* References are origin-prefixed ids with no whitespace, so a single
   space separates the two fields unambiguously. *)
let context_to_string c = c.ctx_trace ^ " " ^ c.ctx_parent

let context_of_string s =
  match String.index_opt s ' ' with
  | Some i when i > 0 && i < String.length s - 1 ->
    let trace = String.sub s 0 i in
    let parent = String.sub s (i + 1) (String.length s - i - 1) in
    if String.contains parent ' ' then None
    else Some { ctx_trace = trace; ctx_parent = parent }
  | _ -> None

let start_span ?ctx ?attrs r stack name =
  let parent = parent_of stack in
  let trace, remote =
    match ctx with
    | Some c -> (Some c.ctx_trace, Some c.ctx_parent)
    | None -> (trace_of stack, None)
  in
  fresh r ~kind:Span ~parent ~trace ~remote ?attrs name

let with_span_gen ?ctx ?attrs name f =
  match Atomic.get current with
  | None -> f ()
  | Some r ->
    let stack = my_stack r in
    let sp = start_span ?ctx ?attrs r stack name in
    stack := (Some r, sp :: snd !stack);
    Fun.protect
      ~finally:(fun () ->
        locked r (fun () -> sp.duration <- Clock.now r.clock -. sp.start);
        (* tolerate a child left open by an exception: drop down to sp *)
        let rec unwind = function
          | top :: rest when top == sp -> rest
          | _ :: rest -> unwind rest
          | [] -> []
        in
        stack := (Some r, unwind (snd !stack)))
      f

let with_span ?attrs name f = with_span_gen ?attrs name f

let with_span_ctx ?ctx ?attrs name f = with_span_gen ?ctx ?attrs name f

let event ?attrs name =
  match Atomic.get current with
  | None -> ()
  | Some r ->
    let stack = my_stack r in
    ignore
      (fresh r ~kind:Event ~parent:(parent_of stack) ~trace:(trace_of stack)
         ~remote:None ?attrs name)

let add_attr k v =
  match Atomic.get current with
  | None -> ()
  | Some r -> (
    match snd !(my_stack r) with
    | [] -> ()
    | sp :: _ -> locked r (fun () -> sp.attrs <- sp.attrs @ [ (k, v) ]))

(* ------------------------------- exporters ----------------------------- *)

(** Recorded spans, oldest first (evicted entries are gone); the list is
    snapshotted under the recorder lock, so exporting while other domains
    record sees a consistent ring. *)
let spans r =
  locked r (fun () ->
      let n = min r.total r.capacity in
      let first = r.total - n in
      List.init n (fun i ->
          match r.ring.((first + i) mod r.capacity) with
          | Some sp -> sp
          | None -> assert false (* slots below [total] are always filled *)))

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* shortest representation that round-trips: epoch-scale starts keep
       their microseconds without printing 17 digits for everything *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let span_to_json ~origin sp =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "{\"id\":%d" sp.id);
  (match sp.parent with
  | None -> Buffer.add_string buf ",\"parent\":null"
  | Some p -> Buffer.add_string buf (Printf.sprintf ",\"parent\":%d" p));
  Buffer.add_string buf
    (Printf.sprintf ",\"origin\":\"%s\"" (json_escape origin));
  Buffer.add_string buf
    (Printf.sprintf ",\"trace\":\"%s\"" (json_escape sp.trace));
  (match sp.remote with
  | None -> ()
  | Some ref_ ->
    Buffer.add_string buf
      (Printf.sprintf ",\"remote\":\"%s\"" (json_escape ref_)));
  Buffer.add_string buf
    (Printf.sprintf ",\"kind\":%s"
       (match sp.kind with Span -> "\"span\"" | Event -> "\"event\""));
  Buffer.add_string buf (Printf.sprintf ",\"name\":\"%s\"" (json_escape sp.name));
  Buffer.add_string buf (Printf.sprintf ",\"start\":%s" (float_lit sp.start));
  if sp.kind = Span then
    Buffer.add_string buf (Printf.sprintf ",\"duration\":%s" (float_lit sp.duration));
  if sp.attrs <> [] then begin
    Buffer.add_string buf ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      sp.attrs;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_jsonl r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun sp ->
      Buffer.add_string buf (span_to_json ~origin:r.origin sp);
      Buffer.add_char buf '\n')
    (spans r);
  Buffer.contents buf

(** Indented parent/child view. Spans whose parent was evicted from the
    ring (or never existed) render at the root. *)
let tree r =
  let all = spans r in
  let present = Hashtbl.create 64 in
  List.iter (fun sp -> Hashtbl.replace present sp.id ()) all;
  let children = Hashtbl.create 64 in
  let roots =
    List.filter
      (fun sp ->
        match sp.parent with
        | Some p when Hashtbl.mem present p ->
          Hashtbl.replace children p
            (sp :: (try Hashtbl.find children p with Not_found -> []));
          false
        | _ -> true)
      all
  in
  let buf = Buffer.create 1024 in
  let attr_str sp =
    if sp.attrs = [] then ""
    else
      " ["
      ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) sp.attrs)
      ^ "]"
  in
  let rec render depth sp =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    (match sp.kind with
    | Span ->
      Buffer.add_string buf
        (Printf.sprintf "%s (%.6fs)%s\n" sp.name sp.duration (attr_str sp))
    | Event ->
      Buffer.add_string buf (Printf.sprintf "* %s%s\n" sp.name (attr_str sp)));
    List.iter (render (depth + 1))
      (List.rev (try Hashtbl.find children sp.id with Not_found -> []))
  in
  List.iter (render 0) roots;
  Buffer.contents buf

(* --------------------------- cross-process merge ----------------------- *)

(* A minimal JSON reader covering exactly the subset {!to_jsonl} emits
   (objects, strings with the escapes {!json_escape} produces, numbers,
   null). Unparseable lines are skipped by the merge — a torn last line
   from a killed process must not poison the rest of the dump. *)
module Json_line = struct
  exception Bad

  type v =
    | Null
    | Num of float
    | Str of string
    | Obj of (string * v) list

  let parse line =
    let n = String.length line in
    let pos = ref 0 in
    let peek () = if !pos >= n then raise Bad else line.[!pos] in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false)
      do advance () done
    in
    let expect c = if peek () <> c then raise Bad else advance () in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance (); Buffer.contents buf
        | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'u' ->
            if !pos + 4 >= n then raise Bad;
            let hex = String.sub line (!pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some c when c < 0x80 -> Buffer.add_char buf (Char.chr c)
            | Some _ -> Buffer.add_char buf '?'
            | None -> raise Bad);
            pos := !pos + 4
          | _ -> raise Bad);
          advance ();
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      while
        !pos < n
        && (match line.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do advance () done;
      match float_of_string_opt (String.sub line start (!pos - start)) with
      | Some f -> f
      | None -> raise Bad
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> Str (parse_string ())
      | '{' -> parse_obj ()
      | 'n' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
          pos := !pos + 4; Null
        end
        else raise Bad
      | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4; Num 1.
        end
        else raise Bad
      | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5; Num 0.
        end
        else raise Bad
      | _ -> Num (parse_number ())
    and parse_obj () =
      expect '{';
      skip_ws ();
      if peek () = '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | ',' -> advance (); field ()
          | '}' -> advance ()
          | _ -> raise Bad
        in
        field ();
        Obj (List.rev !fields)
      end
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise Bad;
    v

  let find k = function Obj fields -> List.assoc_opt k fields | _ -> None
  let str = function Some (Str s) -> Some s | _ -> None
  let num = function Some (Num f) -> Some f | _ -> None
end

type merged = {
  m_id : string;  (** origin-qualified reference, ["server0#3"] *)
  m_parent : string option;  (** resolved parent reference, local or remote *)
  m_origin : string;
  m_trace : string;
  m_kind : kind;
  m_name : string;
  m_start : float;
  m_duration : float;
  m_attrs : (string * string) list;
}

(* Parse one JSONL doc into merged records (parents unresolved yet);
   [fallback] labels docs whose lines carry no origin. *)
let parse_doc ~fallback doc =
  let parse_line line =
    match Json_line.parse line with
    | exception Json_line.Bad -> None
    | j ->
      let open Json_line in
      (match (num (find "id" j), str (find "name" j)) with
      | Some id, Some name ->
        let origin =
          match str (find "origin" j) with Some o -> o | None -> fallback
        in
        let attrs =
          match find "attrs" j with
          | Some (Obj fields) ->
            List.filter_map
              (fun (k, v) ->
                match v with Str s -> Some (k, s) | _ -> None)
              fields
          | _ -> []
        in
        Some
          ( (match num (find "parent" j) with
            | Some p -> Some (int_of_float p)
            | None -> None),
            str (find "remote" j),
            {
              m_id = origin ^ "#" ^ string_of_int (int_of_float id);
              m_parent = None;
              m_origin = origin;
              m_trace =
                (match str (find "trace" j) with Some t -> t | None -> "");
              m_kind =
                (match str (find "kind" j) with
                | Some "event" -> Event
                | _ -> Span);
              m_name = name;
              m_start =
                (match num (find "start" j) with Some s -> s | None -> 0.);
              m_duration =
                (match num (find "duration" j) with Some d -> d | None -> 0.);
              m_attrs = attrs;
            } )
      | _ -> None)
  in
  String.split_on_char '\n' doc
  |> List.filter (fun l -> String.trim l <> "")
  |> List.filter_map parse_line

(** Join per-process JSONL dumps into one causally-ordered list: local
    parent ids are qualified by their process origin, cross-process
    [remote] references stitch the per-process trees together (a span
    with both keeps the local parent — deeper nesting), and the result
    is topologically ordered (parents before children, siblings by start
    time then id, so a fixed clock gives a deterministic merge). *)
let merge docs =
  let raw =
    List.concat
      (List.mapi (fun i doc -> parse_doc ~fallback:("p" ^ string_of_int i) doc)
         docs)
  in
  let present = Hashtbl.create 256 in
  List.iter (fun (_, _, m) -> Hashtbl.replace present m.m_id ()) raw;
  let resolved =
    List.map
      (fun (local, remote, m) ->
        let local_ref =
          match local with
          | Some p ->
            let r = m.m_origin ^ "#" ^ string_of_int p in
            if Hashtbl.mem present r then Some r else None
          | None -> None
        in
        let remote_ref =
          match remote with
          | Some r when Hashtbl.mem present r -> Some r
          | _ -> None
        in
        let parent =
          match local_ref with Some _ -> local_ref | None -> remote_ref
        in
        { m with m_parent = parent })
      raw
  in
  (* Topological emit: roots (and orphans) first, children under their
     parents, siblings ordered by (start, id). *)
  let children = Hashtbl.create 256 in
  let roots = ref [] in
  List.iter
    (fun m ->
      match m.m_parent with
      | Some p ->
        Hashtbl.replace children p
          (m :: (try Hashtbl.find children p with Not_found -> []))
      | None -> roots := m :: !roots)
    resolved;
  let order a b =
    match Float.compare a.m_start b.m_start with
    | 0 -> String.compare a.m_id b.m_id
    | c -> c
  in
  let buf = ref [] in
  let rec emit m =
    buf := m :: !buf;
    List.iter emit
      (List.sort order (try Hashtbl.find children m.m_id with Not_found -> []))
  in
  List.iter emit (List.sort order (List.rev !roots));
  List.rev !buf

let merged_to_json m =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "{\"id\":\"%s\"" (json_escape m.m_id));
  (match m.m_parent with
  | None -> Buffer.add_string buf ",\"parent\":null"
  | Some p ->
    Buffer.add_string buf (Printf.sprintf ",\"parent\":\"%s\"" (json_escape p)));
  Buffer.add_string buf
    (Printf.sprintf ",\"origin\":\"%s\"" (json_escape m.m_origin));
  Buffer.add_string buf
    (Printf.sprintf ",\"trace\":\"%s\"" (json_escape m.m_trace));
  Buffer.add_string buf
    (Printf.sprintf ",\"kind\":%s"
       (match m.m_kind with Span -> "\"span\"" | Event -> "\"event\""));
  Buffer.add_string buf (Printf.sprintf ",\"name\":\"%s\"" (json_escape m.m_name));
  Buffer.add_string buf (Printf.sprintf ",\"start\":%s" (float_lit m.m_start));
  if m.m_kind = Span then
    Buffer.add_string buf
      (Printf.sprintf ",\"duration\":%s" (float_lit m.m_duration));
  if m.m_attrs <> [] then begin
    Buffer.add_string buf ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      m.m_attrs;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let merge_jsonl docs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun m ->
      Buffer.add_string buf (merged_to_json m);
      Buffer.add_char buf '\n')
    (merge docs);
  Buffer.contents buf

let merge_tree docs =
  let all = merge docs in
  let children = Hashtbl.create 256 in
  let roots =
    List.filter
      (fun m ->
        match m.m_parent with
        | Some p ->
          Hashtbl.replace children p
            (m :: (try Hashtbl.find children p with Not_found -> []));
          false
        | None -> true)
      all
  in
  let buf = Buffer.create 1024 in
  let attr_str m =
    if m.m_attrs = [] then ""
    else
      " ["
      ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) m.m_attrs)
      ^ "]"
  in
  let rec render depth m =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    (match m.m_kind with
    | Span ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] %s (%.6fs)%s\n" m.m_origin m.m_name m.m_duration
           (attr_str m))
    | Event ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] * %s%s\n" m.m_origin m.m_name (attr_str m)));
    List.iter (render (depth + 1))
      (List.rev (try Hashtbl.find children m.m_id with Not_found -> []))
  in
  List.iter (render 0) roots;
  Buffer.contents buf

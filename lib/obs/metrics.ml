(** Global metrics registry: named counters, gauges, and log-scale
    histograms.

    Design constraints (ISSUE 4 tentpole):
    - O(1) hot-path recording: counters are a single [Atomic] RMW,
      histogram observation is one [frexp] plus two array writes.
    - A global no-op mode ({!disable}) so instrumented hot paths cost a
      single atomic load and no allocation when observability is off.
    - Registration is idempotent: [counter name] returns the existing
      counter when one is already registered under [name], so functor
      instantiations and re-instantiated pipelines share channels.

    Thread-safety: every metric kind is domain-safe. Counters are a
    single [Atomic] RMW; gauges are an atomic last-writer-wins cell;
    histogram bucket/count cells are atomic and the float accumulators
    (sum, min, max) are updated through CAS retry loops, so no sample is
    ever lost under concurrent domains ({!Parallel} and the proto worker
    pool record from many domains at once). *)

(* ------------------------------ no-op mode ----------------------------- *)

let enabled = Atomic.make true
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* ------------------------------- buckets ------------------------------- *)

(* Power-of-two log-scale buckets shared by every histogram: bucket [i]
   covers [2^(min_exp+i), 2^(min_exp+i+1)), with the first bucket also
   absorbing zero/negative samples and the last bucket unbounded above.
   The range 2^-30 .. 2^34 spans sub-nanosecond latencies through
   multi-gigabyte byte counts. *)

let num_buckets = 64
let min_exp = -30

let bucket_of v =
  if v <= 0. then 0
  else begin
    let _, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1), so 2^(e-1) <= v < 2^e *)
    let i = e - 1 - min_exp in
    if i < 0 then 0 else if i >= num_buckets then num_buckets - 1 else i
  end

let bucket_lower i =
  if i <= 0 then 0. else Float.ldexp 1. (min_exp + i)

let bucket_upper i =
  if i >= num_buckets - 1 then infinity else Float.ldexp 1. (min_exp + i + 1)

(* ------------------------------- metrics ------------------------------- *)

type counter = { c_name : string; cell : int Atomic.t }

type gauge = { g_name : string; g_cell : float Atomic.t }

type histogram = {
  h_name : string;
  buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
}

(* Lock-free read-modify-write on a boxed-float atomic: CAS compares the
   box by physical equality, and [Atomic.get] returns the exact box a
   successful [set] installed, so the retry loop is sound. *)
let rec update_float cell f =
  let old = Atomic.get cell in
  let next = f old in
  if not (Atomic.compare_and_set cell old next) then update_float cell f

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register name wrong mk unpack =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match unpack m with
        | Some x -> x
        | None ->
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %s is already registered as a %s"
               name wrong))
      | None ->
        let x = mk () in
        x)

let counter name =
  register name "non-counter"
    (fun () ->
      let c = { c_name = name; cell = Atomic.make 0 } in
      Hashtbl.replace registry name (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name "non-gauge"
    (fun () ->
      let g = { g_name = name; g_cell = Atomic.make 0. } in
      Hashtbl.replace registry name (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)

let histogram name =
  register name "non-histogram"
    (fun () ->
      let h =
        { h_name = name;
          buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0; h_sum = Atomic.make 0.;
          h_min = Atomic.make infinity; h_max = Atomic.make neg_infinity }
      in
      Hashtbl.replace registry name (Histogram h);
      h)
    (function Histogram h -> Some h | _ -> None)

(* ------------------------------ recording ------------------------------ *)

let add c n = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1
let value c = Atomic.get c.cell

let set g v = if Atomic.get enabled then Atomic.set g.g_cell v
let gauge_value g = Atomic.get g.g_cell

let observe h v =
  if Atomic.get enabled then begin
    let i = bucket_of v in
    ignore (Atomic.fetch_and_add h.buckets.(i) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    update_float h.h_sum (fun s -> s +. v);
    update_float h.h_min (fun m -> if v < m then v else m);
    update_float h.h_max (fun m -> if v > m then v else m)
  end

let observe_int h n = observe h (float_of_int n)

let count h = Atomic.get h.h_count
let sum h = Atomic.get h.h_sum

let mean h =
  let c = Atomic.get h.h_count in
  if c = 0 then 0. else Atomic.get h.h_sum /. float_of_int c

(* -------------------------------- timing ------------------------------- *)

(* Atomic, not ref: [time] reads the clock from worker domains while
   tests swap in manual clocks from the main domain (the PR 5 race). *)
let clock = Atomic.make Clock.system
let set_clock c = Atomic.set clock c

let time h f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = Clock.now (Atomic.get clock) in
    Fun.protect
      ~finally:(fun () -> observe h (Clock.now (Atomic.get clock) -. t0))
      f
  end

(* ------------------------------- snapshot ------------------------------ *)

type histogram_view = {
  hv_count : int;
  hv_sum : float;
  hv_min : float;  (** [infinity] when empty *)
  hv_max : float;  (** [neg_infinity] when empty *)
  hv_buckets : (float * int) array;
      (** (inclusive upper bound, samples in bucket) for non-empty
          buckets, in increasing bound order; last bound may be
          [infinity] *)
}

type view =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_view

let view_of = function
  | Counter c -> Counter_v (Atomic.get c.cell)
  | Gauge g -> Gauge_v (Atomic.get g.g_cell)
  | Histogram h ->
    let bs = ref [] in
    for i = num_buckets - 1 downto 0 do
      let n = Atomic.get h.buckets.(i) in
      if n > 0 then bs := (bucket_upper i, n) :: !bs
    done;
    Histogram_v
      { hv_count = Atomic.get h.h_count; hv_sum = Atomic.get h.h_sum;
        hv_min = Atomic.get h.h_min; hv_max = Atomic.get h.h_max;
        hv_buckets = Array.of_list !bs }

let snapshot () =
  with_lock (fun () ->
      Hashtbl.fold (fun name m acc -> (name, view_of m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Percentile estimate from the log-scale buckets: walk the cumulative
   counts to the bucket the rank lands in, interpolate linearly inside
   it, and clamp to the observed min/max so a near-empty histogram never
   reports a bucket edge far from any actual sample. The relative error
   is bounded by the bucket width (a factor of 2).

   Degenerate views are answered without the walk: a snapshot racing a
   concurrent [observe] can see [hv_count > 0] with the buckets (or the
   min/max cells) not yet updated — walking that view would fall off the
   end and report the sentinel [neg_infinity] max as a "percentile".
   Such partial views get [None] (same as empty); a single-bucket view
   where every sample is the same value gets that value exactly rather
   than an interpolated point below it. *)
let percentile hv q =
  if
    hv.hv_count = 0
    || Array.length hv.hv_buckets = 0
    || not (Float.is_finite hv.hv_min && Float.is_finite hv.hv_max)
  then None
  else if hv.hv_min = hv.hv_max then Some hv.hv_min
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank = q *. float_of_int hv.hv_count in
    let clamp v = Float.min hv.hv_max (Float.max hv.hv_min v) in
    let n = Array.length hv.hv_buckets in
    let rec go cum i =
      if i >= n then Some hv.hv_max
      else begin
        let le, c = hv.hv_buckets.(i) in
        let cum' = cum + c in
        if float_of_int cum' >= rank then
          if Float.is_finite le then begin
            let lower = le /. 2. in
            let frac =
              if c = 0 then 1.
              else (rank -. float_of_int cum) /. float_of_int c
            in
            Some (clamp (lower +. ((le -. lower) *. frac)))
          end
          else (* unbounded last bucket: the max is the best estimate *)
            Some hv.hv_max
        else go cum' (i + 1)
      end
    in
    go 0 0
  end

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.cell 0
          | Gauge g -> Atomic.set g.g_cell 0.
          | Histogram h ->
            Array.iter (fun b -> Atomic.set b 0) h.buckets;
            Atomic.set h.h_count 0;
            Atomic.set h.h_sum 0.;
            Atomic.set h.h_min infinity;
            Atomic.set h.h_max neg_infinity)
        registry)

let name_of_counter c = c.c_name
let name_of_gauge g = g.g_name
let name_of_histogram h = h.h_name

(** Render the {!Metrics} registry as Prometheus exposition text or a
    JSON snapshot. Pure string producers — callers decide where the
    report goes (stdout in [prio_cli metrics], a file in the bench
    harness), keeping this library free of I/O. *)

let float_lit f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prometheus_type = function
  | Metrics.Counter_v _ -> "counter"
  | Metrics.Gauge_v _ -> "gauge"
  | Metrics.Histogram_v _ -> "histogram"

let prometheus () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" name (prometheus_type v));
      match v with
      | Metrics.Counter_v n ->
        Buffer.add_string buf (Printf.sprintf "%s %d\n" name n)
      | Metrics.Gauge_v x ->
        Buffer.add_string buf (Printf.sprintf "%s %s\n" name (float_lit x))
      | Metrics.Histogram_v h ->
        let cum = ref 0 in
        Array.iter
          (fun (le, c) ->
            cum := !cum + c;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (float_lit le)
                 !cum))
          h.Metrics.hv_buckets;
        if
          Array.length h.Metrics.hv_buckets = 0
          || fst h.Metrics.hv_buckets.(Array.length h.Metrics.hv_buckets - 1)
             <> infinity
        then
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.Metrics.hv_count);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n" name (float_lit h.Metrics.hv_sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count %d\n" name h.Metrics.hv_count))
    (Metrics.snapshot ());
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  (* JSON has no Inf literal; clamp to null which consumers treat as absent *)
  if Float.is_finite f then
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f
  else "null"

let json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":" (json_escape name));
      match v with
      | Metrics.Counter_v n -> Buffer.add_string buf (string_of_int n)
      | Metrics.Gauge_v x -> Buffer.add_string buf (json_float x)
      | Metrics.Histogram_v h ->
        let pct q =
          match Metrics.percentile h q with
          | Some v -> json_float v
          | None -> "null"
        in
        Buffer.add_string buf
          (Printf.sprintf
             "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"buckets\":["
             h.Metrics.hv_count (json_float h.Metrics.hv_sum)
             (json_float h.Metrics.hv_min) (json_float h.Metrics.hv_max)
             (pct 0.5) (pct 0.95) (pct 0.99));
        Array.iteri
          (fun j (le, c) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "[%s,%d]" (json_float le) c))
          h.Metrics.hv_buckets;
        Buffer.add_string buf "]}")
    (Metrics.snapshot ());
  Buffer.add_string buf "}";
  Buffer.contents buf

(* Human view: one line per metric, histograms summarized by their
   percentile estimates instead of raw bucket counts. *)
let summary () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter_v n ->
        Buffer.add_string buf (Printf.sprintf "counter    %-44s %d\n" name n)
      | Metrics.Gauge_v x ->
        Buffer.add_string buf
          (Printf.sprintf "gauge      %-44s %s\n" name (float_lit x))
      | Metrics.Histogram_v h ->
        let pct q =
          match Metrics.percentile h q with
          | Some v -> float_lit v
          | None -> "-"
        in
        Buffer.add_string buf
          (Printf.sprintf
             "histogram  %-44s count=%d mean=%s p50=%s p95=%s p99=%s max=%s\n"
             name h.Metrics.hv_count
             (float_lit
                (if h.Metrics.hv_count = 0 then 0.
                 else h.Metrics.hv_sum /. float_of_int h.Metrics.hv_count))
             (pct 0.5) (pct 0.95) (pct 0.99)
             (if h.Metrics.hv_count = 0 then "-" else float_lit h.Metrics.hv_max)))
    (Metrics.snapshot ());
  Buffer.contents buf

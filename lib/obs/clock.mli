(** Injectable clocks: the observability layer's only source of time.

    Production code uses {!system}; tests use {!manual} (frozen until
    {!advance}d) or {!ticking} (auto-advances a fixed step per read, so
    every span gets a distinct, deterministic start and duration). *)

type t

val system : t
(** Wall-clock seconds ([Unix.gettimeofday]). *)

val manual : ?start:float -> unit -> t
(** A clock frozen at [start] (default [0.]) until {!set}/{!advance}. *)

val ticking : ?start:float -> step:float -> unit -> t
(** A clock that returns [start], [start +. step], [start +. 2step], …
    on successive reads — deterministic non-zero durations for tests. *)

val now : t -> float

val set : t -> float -> unit
(** Jump a {!manual}/{!ticking} clock to an absolute instant.
    @raise Invalid_argument on the system clock. *)

val advance : t -> float -> unit
(** Move a {!manual}/{!ticking} clock forward by a delta.
    @raise Invalid_argument on the system clock. *)

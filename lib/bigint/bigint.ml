(* Arbitrary-precision integers on 31-bit limbs.

   Magnitudes are little-endian [int array]s with limbs in [0, 2^31); the
   base is chosen so a limb product plus carries fits in OCaml's 63-bit
   native int. A value is a sign (-1/0/+1) and a trimmed magnitude. *)

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude helpers (arrays of limbs, little-endian, trimmed).        *)
(* ------------------------------------------------------------------ *)

let mtrim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mcompare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec loop i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else loop (i - 1)
    in
    loop (la - 1)

let madd a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + Stdlib.max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  mtrim r

(* Requires a >= b. *)
let msub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  mtrim r

let mmul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land mask;
          carry := s lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr limb_bits;
          incr k
        done
      end
    done;
    mtrim r
  end

let mmul_int a x =
  (* x in [0, base) *)
  let la = Array.length a in
  if la = 0 || x = 0 then [||]
  else begin
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * x) + !carry in
      r.(i) <- s land mask;
      carry := s lsr limb_bits
    done;
    r.(la) <- !carry;
    mtrim r
  end

let bits_of_limb x =
  let rec loop n x = if x = 0 then n else loop (n + 1) (x lsr 1) in
  loop 0 x

let mnum_bits a =
  let la = Array.length a in
  if la = 0 then 0 else ((la - 1) * limb_bits) + bits_of_limb a.(la - 1)

let mshift_left a k =
  if Array.length a = 0 then [||]
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else
      for i = 0 to la - 1 do
        let v = a.(i) lsl bits in
        r.(i + limbs) <- r.(i + limbs) lor (v land mask);
        r.(i + limbs + 1) <- v lsr limb_bits
      done;
    mtrim r
  end

let mshift_right a k =
  let la = Array.length a in
  let limbs = k / limb_bits and bits = k mod limb_bits in
  if limbs >= la then [||]
  else begin
    let lr = la - limbs in
    let r = Array.make lr 0 in
    if bits = 0 then Array.blit a limbs r 0 lr
    else begin
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi =
          if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - bits)) land mask
          else 0
        in
        r.(i) <- lo lor hi
      done
    end;
    mtrim r
  end

(* Knuth algorithm D.  Returns (quotient, remainder) of magnitudes. *)
let mdivmod u v =
  let lv = Array.length v in
  if lv = 0 then raise Division_by_zero;
  if mcompare u v < 0 then ([||], u)
  else if lv = 1 then begin
    let d = v.(0) in
    let lu = Array.length u in
    let q = Array.make lu 0 in
    let rem = ref 0 in
    for i = lu - 1 downto 0 do
      let cur = (!rem lsl limb_bits) lor u.(i) in
      q.(i) <- cur / d;
      rem := cur mod d
    done;
    (mtrim q, if !rem = 0 then [||] else [| !rem |])
  end
  else begin
    let n = lv in
    let shift = limb_bits - bits_of_limb v.(n - 1) in
    let vn = mshift_left v shift in
    let vn = if Array.length vn < n then Array.append vn (Array.make (n - Array.length vn) 0) else vn in
    let u_sh = mshift_left u shift in
    let lu = Array.length u in
    (* un has exactly lu + 1 limbs *)
    let un = Array.make (lu + 1) 0 in
    Array.blit u_sh 0 un 0 (Array.length u_sh);
    let m = lu - n in
    let q = Array.make (m + 1) 0 in
    let vtop = vn.(n - 1) and v2 = vn.(n - 2) in
    for j = m downto 0 do
      let num = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
      let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
      let continue_adjust = ref true in
      while !continue_adjust do
        if !qhat >= base || !qhat * v2 > (!rhat lsl limb_bits) lor un.(j + n - 2)
        then begin
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then continue_adjust := false
        end
        else continue_adjust := false
      done;
      (* multiply and subtract *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * vn.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = un.(i + j) - (p land mask) - !borrow in
        if d < 0 then begin
          un.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          un.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = un.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add divisor back *)
        un.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = un.(i + j) + vn.(i) + !c in
          un.(i + j) <- s land mask;
          c := s lsr limb_bits
        done;
        un.(j + n) <- (un.(j + n) + !c) land mask
      end
      else un.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = mshift_right (mtrim (Array.sub un 0 n)) shift in
    (mtrim q, r)
  end

(* ------------------------------------------------------------------ *)
(* Signed layer.                                                       *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = mtrim mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int x =
  if x = 0 then zero
  else if x = Stdlib.min_int then
    (* |min_int| = 2^62 = limb 2 set to 1 *)
    { sign = -1; mag = [| 0; 0; 1 |] }
  else begin
    let sign = if x < 0 then -1 else 1 in
    let x = Stdlib.abs x in
    let rec limbs acc x = if x = 0 then List.rev acc else limbs ((x land mask) :: acc) (x lsr limb_bits) in
    { sign; mag = Array.of_list (limbs [] x) }
  end

let one = of_int 1
let two = of_int 2

let num_bits x = mnum_bits x.mag

let to_int x =
  if x.sign = 0 then Some 0
  else if num_bits x > 62 then
    (* the one 63-bit value that fits is min_int = -2^62 *)
    if x.sign < 0 && num_bits x = 63 && x.mag = [| 0; 0; 1 |] then Some Stdlib.min_int
    else None
  else begin
    let v = Array.fold_right (fun limb acc -> (acc lsl limb_bits) lor limb) x.mag 0 in
    Some (if x.sign < 0 then -v else v)
  end

let to_int_exn x =
  match to_int x with
  | Some v -> v
  | None -> invalid_arg "Bigint.to_int_exn: does not fit"

let sign x = x.sign
let is_zero x = x.sign = 0

let compare a b =
  if a.sign <> b.sign then Int.compare a.sign b.sign
  else if a.sign >= 0 then mcompare a.mag b.mag
  else mcompare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg x = if x.sign = 0 then zero else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let rec add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = madd a.mag b.mag }
  else begin
    let c = mcompare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (msub a.mag b.mag)
    else make b.sign (msub b.mag a.mag)
  end

and sub a b = add a (neg b)

let succ x = add x one
let pred x = sub x one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = mmul a.mag b.mag }

let mul_int a x =
  if x = 0 || a.sign = 0 then zero
  else if x > 0 && x < base then { sign = a.sign; mag = mmul_int a.mag x }
  else mul a (of_int x)

let shift_left x k = if x.sign = 0 || k = 0 then x else { x with mag = mshift_left x.mag k }

let shift_right x k =
  if x.sign = 0 || k = 0 then x else make x.sign (mshift_right x.mag k)

let testbit x i =
  let limb = i / limb_bits and bit = i mod limb_bits in
  limb < Array.length x.mag && (x.mag.(limb) lsr bit) land 1 = 1

let is_even x = x.sign = 0 || x.mag.(0) land 1 = 0
let is_odd x = not (is_even x)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = mdivmod a.mag b.mag in
  (make (a.sign * b.sign) q, make a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem a b =
  let r = rem a b in
  if r.sign < 0 then add r (abs b) else r

let divmod_small a d =
  if d <= 0 || d >= base then invalid_arg "Bigint.divmod_small";
  let q, r = mdivmod a.mag [| d |] in
  let rv = if Array.length r = 0 then 0 else r.(0) in
  (make a.sign q, if a.sign < 0 then -rv else rv)

(* ------------------------------------------------------------------ *)
(* String conversions.                                                 *)
(* ------------------------------------------------------------------ *)

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let chunks = ref [] in
    let cur = ref (abs x) in
    while not (is_zero !cur) do
      let q, r = divmod_small !cur 1_000_000_000 in
      chunks := r :: !chunks;
      cur := q
    done;
    let buf = Buffer.create 32 in
    if x.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let to_string_hex x =
  if x.sign = 0 then "0x0"
  else begin
    let bits = num_bits x in
    let nibbles = (bits + 3) / 4 in
    let buf = Buffer.create (nibbles + 3) in
    if x.sign < 0 then Buffer.add_char buf '-';
    Buffer.add_string buf "0x";
    let started = ref false in
    for i = nibbles - 1 downto 0 do
      let limb = (i * 4) / limb_bits and bit = (i * 4) mod limb_bits in
      let v =
        let lo = if limb < Array.length x.mag then (x.mag.(limb) lsr bit) land 0xf else 0 in
        let spill = bit + 4 - limb_bits in
        if spill > 0 && limb + 1 < Array.length x.mag then
          lo lor ((x.mag.(limb + 1) land ((1 lsl spill) - 1)) lsl (4 - spill))
        else lo
      in
      if v <> 0 || !started || i = 0 then begin
        started := true;
        Buffer.add_char buf "0123456789abcdef".[v]
      end
    done;
    Buffer.contents buf
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)

let of_string s =
  let s = String.trim s in
  if s = "" then invalid_arg "Bigint.of_string: empty";
  let negative = s.[0] = '-' in
  let s = if negative || s.[0] = '+' then String.sub s 1 (String.length s - 1) else s in
  let value =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then begin
      let acc = ref zero in
      String.iter
        (fun c ->
          let v =
            match c with
            | '0' .. '9' -> Char.code c - Char.code '0'
            | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
            | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
            | '_' -> -1
            | _ -> invalid_arg "Bigint.of_string: bad hex digit"
          in
          if v >= 0 then acc := add (shift_left !acc 4) (of_int v))
        (String.sub s 2 (String.length s - 2));
      !acc
    end
    else begin
      let acc = ref zero in
      let chunk = ref 0 and chunk_len = ref 0 in
      let flush () =
        if !chunk_len > 0 then begin
          let p = int_of_float (10. ** float_of_int !chunk_len) in
          acc := add (mul_int !acc p) (of_int !chunk);
          chunk := 0;
          chunk_len := 0
        end
      in
      String.iter
        (fun c ->
          match c with
          | '0' .. '9' ->
            chunk := (!chunk * 10) + (Char.code c - Char.code '0');
            incr chunk_len;
            if !chunk_len = 9 then flush ()
          | '_' -> ()
          | _ -> invalid_arg "Bigint.of_string: bad digit")
        s;
      flush ();
      !acc
    end
  in
  if negative then neg value else value

let to_bytes_be x width =
  if x.sign < 0 then invalid_arg "Bigint.to_bytes_be: negative";
  if num_bits x > width * 8 then invalid_arg "Bigint.to_bytes_be: does not fit";
  let b = Bytes.make width '\000' in
  for i = 0 to width - 1 do
    (* byte i from the end *)
    let bit = i * 8 in
    let limb = bit / limb_bits and off = bit mod limb_bits in
    let v =
      let lo = if limb < Array.length x.mag then (x.mag.(limb) lsr off) land 0xff else 0 in
      let spill = off + 8 - limb_bits in
      if spill > 0 && limb + 1 < Array.length x.mag then
        lo lor ((x.mag.(limb + 1) land ((1 lsl spill) - 1)) lsl (8 - spill))
      else lo
    in
    Bytes.set b (width - 1 - i) (Char.chr (v land 0xff))
  done;
  b

let of_bytes_be b =
  let acc = ref zero in
  Bytes.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) b;
  !acc

(* ------------------------------------------------------------------ *)
(* Number theory.                                                      *)
(* ------------------------------------------------------------------ *)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else go (if n land 1 = 1 then mul acc b else acc) (mul b b) (n lsr 1)
  in
  go one x n

let pow_mod b e m =
  if m.sign <= 0 then invalid_arg "Bigint.pow_mod: modulus <= 0";
  if e.sign < 0 then invalid_arg "Bigint.pow_mod: negative exponent";
  let b = erem b m in
  let bits = num_bits e in
  let result = ref (erem one m) and acc = ref b in
  for i = 0 to bits - 1 do
    if testbit e i then result := erem (mul !result !acc) m;
    if i < bits - 1 then acc := erem (mul !acc !acc) m
  done;
  !result

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (erem a b)

let invert_mod a m =
  (* extended Euclid on (a mod m, m) tracking only the coefficient of a *)
  let a = erem a m in
  if is_zero a then None
  else begin
    let rec go r0 r1 t0 t1 =
      if is_zero r1 then if equal r0 one then Some (erem t0 m) else None
      else begin
        let q, r2 = divmod r0 r1 in
        go r1 r2 t1 (sub t0 (mul q t1))
      end
    in
    go a m one zero
  end

(* ------------------------------------------------------------------ *)
(* Randomness (caller supplies the entropy).                           *)
(* ------------------------------------------------------------------ *)

let random_bits ~rand_limb bits =
  if bits <= 0 then zero
  else begin
    let nlimbs = (bits + limb_bits - 1) / limb_bits in
    let mag = Array.init nlimbs (fun _ -> rand_limb () land mask) in
    let top_bits = bits - ((nlimbs - 1) * limb_bits) in
    mag.(nlimbs - 1) <- mag.(nlimbs - 1) land ((1 lsl top_bits) - 1);
    make 1 mag
  end

let random_below ~rand_limb bound =
  if bound.sign <= 0 then invalid_arg "Bigint.random_below: bound <= 0";
  let bits = num_bits bound in
  let rec loop () =
    let x = random_bits ~rand_limb bits in
    if compare x bound < 0 then x else loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Miller–Rabin.                                                       *)
(* ------------------------------------------------------------------ *)

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97 ]

let is_probable_prime ?(rounds = 40) n =
  let n = abs n in
  match to_int n with
  | Some v when v < 2 -> false
  | _ ->
    let small =
      List.exists
        (fun p ->
          let _, r = divmod_small n p in
          r = 0)
        small_primes
    in
    if small then List.exists (fun p -> equal n (of_int p)) small_primes
    else begin
      (* n - 1 = d * 2^r with d odd *)
      let nm1 = pred n in
      let r = ref 0 and d = ref nm1 in
      while is_even !d do
        d := shift_right !d 1;
        incr r
      done;
      let witness a =
        let a = erem a n in
        if is_zero a || equal a one || equal a nm1 then true
        else begin
          let x = ref (pow_mod a !d n) in
          if equal !x one || equal !x nm1 then true
          else begin
            let ok = ref false in
            (try
               for _ = 1 to !r - 1 do
                 x := erem (mul !x !x) n;
                 if equal !x nm1 then begin
                   ok := true;
                   raise Exit
                 end
               done
             with Exit -> ());
            !ok
          end
        end
      in
      (* deterministic bases first, then bases from a simple LCG seeded by n *)
      let fixed = List.for_all (fun p -> witness (of_int p)) small_primes in
      fixed
      && begin
           let seed = ref (match to_int (erem n (of_int 0x3FFFFFFF)) with Some v -> v lor 1 | None -> 1) in
           let next () =
             seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
             !seed
           in
           let rec loop k =
             if k = 0 then true
             else begin
               let a = add two (erem (of_int (next ())) (sub n (of_int 4))) in
               witness a && loop (k - 1)
             end
           in
           loop rounds
         end
    end

(* ------------------------------------------------------------------ *)
(* Montgomery arithmetic.                                              *)
(* ------------------------------------------------------------------ *)

module Mont = struct
  type ctx = {
    m : int array; (* modulus limbs, length n *)
    n : int;
    m' : int; (* -m^{-1} mod 2^31 *)
    r2 : int array; (* R^2 mod m, R = 2^(31 n) *)
    modulus : t;
    one_m : int array; (* R mod m *)
  }

  type elt = int array (* length ctx.n, Montgomery form *)

  let modulus ctx = ctx.modulus

  (* inverse of odd x mod 2^31 by Newton iteration *)
  let inv_limb x =
    let y = ref x in
    for _ = 1 to 5 do
      y := (!y * (2 - (x * !y))) land mask
    done;
    !y

  let pad limbs n =
    let l = Array.length limbs in
    if l = n then limbs
    else begin
      let r = Array.make n 0 in
      Array.blit limbs 0 r 0 l;
      r
    end

  (* CIOS Montgomery multiplication: returns (a * b * R^-1) mod m *)
  let mont_mul ctx a b =
    let n = ctx.n and m = ctx.m and m' = ctx.m' in
    let t = Array.make (n + 2) 0 in
    for i = 0 to n - 1 do
      let ai = a.(i) in
      let c = ref 0 in
      for j = 0 to n - 1 do
        let s = t.(j) + (ai * b.(j)) + !c in
        t.(j) <- s land mask;
        c := s lsr limb_bits
      done;
      let s = t.(n) + !c in
      t.(n) <- s land mask;
      t.(n + 1) <- t.(n + 1) + (s lsr limb_bits);
      let u = (t.(0) * m') land mask in
      let s0 = t.(0) + (u * m.(0)) in
      let c = ref (s0 lsr limb_bits) in
      for j = 1 to n - 1 do
        let s = t.(j) + (u * m.(j)) + !c in
        t.(j - 1) <- s land mask;
        c := s lsr limb_bits
      done;
      let s = t.(n) + !c in
      t.(n - 1) <- s land mask;
      t.(n) <- t.(n + 1) + (s lsr limb_bits);
      t.(n + 1) <- 0
    done;
    let r = Array.sub t 0 n in
    (* result < 2m; one conditional subtraction *)
    let ge =
      if t.(n) > 0 then true
      else begin
        let rec cmp i = if i < 0 then true else if r.(i) <> m.(i) then r.(i) > m.(i) else cmp (i - 1) in
        cmp (n - 1)
      end
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let d = r.(i) - m.(i) - !borrow in
        if d < 0 then begin
          r.(i) <- d + base;
          borrow := 1
        end
        else begin
          r.(i) <- d;
          borrow := 0
        end
      done
    end;
    r

  let create modulus =
    if modulus.sign <= 0 || is_even modulus || compare modulus (of_int 3) < 0 then
      invalid_arg "Bigint.Mont.create: modulus must be odd and >= 3";
    let mlimbs = modulus.mag in
    let n = Array.length mlimbs in
    let m' = (base - inv_limb mlimbs.(0)) land mask in
    let r2_big = erem (shift_left one (2 * n * limb_bits)) modulus in
    let r2 = pad r2_big.mag n in
    let ctx0 = { m = mlimbs; n; m'; r2; modulus; one_m = [||] } in
    let one_m = mont_mul ctx0 r2 (pad [| 1 |] n) in
    { ctx0 with one_m }

  let to_mont ctx x =
    let x = erem x ctx.modulus in
    mont_mul ctx (pad x.mag ctx.n) ctx.r2

  let of_mont ctx e =
    let raw = mont_mul ctx e (pad [| 1 |] ctx.n) in
    make 1 raw

  let zero ctx = Array.make ctx.n 0
  let one ctx = Array.copy ctx.one_m

  let add ctx a b =
    let n = ctx.n and m = ctx.m in
    let r = Array.make n 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let s = a.(i) + b.(i) + !carry in
      r.(i) <- s land mask;
      carry := s lsr limb_bits
    done;
    let ge =
      if !carry > 0 then true
      else begin
        let rec cmp i = if i < 0 then true else if r.(i) <> m.(i) then r.(i) > m.(i) else cmp (i - 1) in
        cmp (n - 1)
      end
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let d = r.(i) - m.(i) - !borrow in
        if d < 0 then begin
          r.(i) <- d + base;
          borrow := 1
        end
        else begin
          r.(i) <- d;
          borrow := 0
        end
      done
    end;
    r

  let sub ctx a b =
    let n = ctx.n and m = ctx.m in
    let r = Array.make n 0 in
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let d = a.(i) - b.(i) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    if !borrow = 1 then begin
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s = r.(i) + m.(i) + !carry in
        r.(i) <- s land mask;
        carry := s lsr limb_bits
      done
    end;
    r

  let is_zero_arr a = Array.for_all (fun x -> x = 0) a

  let neg ctx a = if is_zero_arr a then Array.copy a else sub ctx (zero ctx) a
  let mul ctx a b = mont_mul ctx a b
  let sqr ctx a = mont_mul ctx a a

  let pow ctx b e =
    if e.sign < 0 then invalid_arg "Bigint.Mont.pow: negative exponent";
    let bits = num_bits e in
    let result = ref (one ctx) and acc = ref b in
    for i = 0 to bits - 1 do
      if testbit e i then result := mont_mul ctx !result !acc;
      if i < bits - 1 then acc := mont_mul ctx !acc !acc
    done;
    !result

  let equal a b = a = b
  let is_zero (_ : ctx) a = is_zero_arr a
end

(** HMAC-SHA256 (RFC 2104). Used to authenticate sealed client packets. *)

val sha256 : key:Bytes.t -> Bytes.t -> Bytes.t
(** 32-byte tag. *)

val sha256_trunc : key:Bytes.t -> int -> Bytes.t -> Bytes.t
(** Tag truncated to the given byte length (<= 32). *)

val verify : key:Bytes.t -> tag:Bytes.t -> Bytes.t -> bool
(** Constant-time comparison of a (possibly truncated) tag: the whole tag
    is folded before the verdict, so timing reveals nothing about which
    byte mismatched. Tags of length 0 or > 32 are rejected (false), never
    raised on. *)

let block_size = 64

let sha256 ~key msg =
  let key =
    if Bytes.length key > block_size then Sha256.digest key else key
  in
  let k = Bytes.make block_size '\000' in
  Bytes.blit key 0 k 0 (Bytes.length key);
  let xor_pad pad =
    Bytes.init block_size (fun i -> Char.chr (Char.code (Bytes.get k i) lxor pad))
  in
  let inner = Sha256.init () in
  Sha256.update inner (xor_pad 0x36);
  Sha256.update inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.update outer (xor_pad 0x5c);
  Sha256.update outer inner_digest;
  Sha256.finalize outer

let sha256_trunc ~key len msg =
  if len < 1 || len > 32 then invalid_arg "Hmac.sha256_trunc: length must be in 1..32";
  Bytes.sub (sha256 ~key msg) 0 len

let verify ~key ~tag msg =
  let len = Bytes.length tag in
  if len < 1 || len > 32 then false
  else begin
    let expected = sha256_trunc ~key len msg in
    (* constant-time comparison: fold the whole tag before deciding *)
    let acc = ref 0 in
    Bytes.iteri
      (fun i c ->
        acc := !acc lor (Char.code c lxor Char.code (Bytes.get expected i)))
      tag;
    !acc = 0
  end

(** Deterministic cryptographic pseudo-random generator (ChaCha20-based).

    Every random choice in the system — secret-share masks, Beaver triples,
    the verifiers' identity-test point r, workload generation — draws from one
    of these, so protocol runs are reproducible from a seed.

    This module is also the share-compression PRG of the paper's Appendix I:
    a client sends a 32-byte seed instead of a length-L share, and the server
    re-expands it with {!of_seed}. *)

type t

val of_seed : Bytes.t -> t
(** Stream determined by the seed. Seeds of any length are accepted (they are
    hashed to 32 bytes); equal seeds give equal streams. *)

val of_string_seed : string -> t
val create : unit -> t
(** Fresh generator seeded from OS entropy ([/dev/urandom], with a weak
    process-state fallback for platforms without it); use only at the
    edges (demo binaries), never inside protocol logic under test. *)

val seed_bytes : int
(** Length of a compressed-share seed (32). *)

val fresh_seed : t -> Bytes.t
(** Draw a 32-byte seed for a derived stream. *)

val split : t -> t
(** An independent generator derived from this one. *)

val byte : t -> int
val bytes : t -> int -> Bytes.t
val uint32 : t -> int
val limb31 : t -> int
(** Uniform 31-bit value; shaped for {!Prio_bigint.Bigint.random_below}'s
    [rand_limb] callback. *)

val int_below : t -> int -> int
(** Uniform in [0, n), n > 0, by rejection sampling. *)

val int_range : t -> int -> int -> int
(** Uniform in [lo, hi] inclusive. *)

val bool : t -> bool
val float01 : t -> float
(** Uniform in [0, 1) with 53 bits of precision. *)

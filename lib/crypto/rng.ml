(* ChaCha20-based deterministic PRG: the keystream of ChaCha20 under a
   32-byte key (the seed) with an incrementing block counter. *)

type t = {
  key : Bytes.t;
  mutable counter : int;
  mutable block : Bytes.t;
  mutable pos : int; (* next unread byte in [block] *)
}

let seed_bytes = 32

let zero_nonce = Bytes.make 12 '\000'

let of_seed seed =
  let key = if Bytes.length seed = 32 then Bytes.copy seed else Sha256.digest seed in
  { key; counter = 0; block = Bytes.create 0; pos = 0 }

let of_string_seed s = of_seed (Bytes.of_string s)

(* OS entropy for nondeterministically seeded generators. This file is the
   one sanctioned entropy seam (docs/ANALYSIS.md, no-ambient-random): all
   ambient randomness enters the system here, gets folded into a ChaCha20
   seed, and everything downstream is a pure function of that seed. *)
let os_entropy n =
  match open_in_bin "/dev/urandom" with
  | ic ->
    let b = Bytes.create n in
    let r =
      match really_input ic b 0 n with
      | () -> Some b
      | exception End_of_file -> None
    in
    close_in ic;
    r
  | exception Sys_error _ -> None

(* Last-resort seed material for platforms without /dev/urandom: a digest
   of volatile process state. Not cryptographically strong — but strictly
   better than the PID-free time-only seeding it replaces, and unreachable
   on the Unix systems this repo targets. *)
let fallback_entropy () =
  let parts =
    [
      string_of_float (Unix.gettimeofday ());
      string_of_int (Unix.getpid ());
      string_of_float (Sys.time ());
    ]
  in
  Sha256.digest (Bytes.of_string (String.concat "\x00" parts))

let create () =
  match os_entropy 32 with
  | Some b -> of_seed b
  | None -> of_seed (fallback_entropy ())

let refill t =
  (* zero_nonce is written by no one — it is a constant that happens to
     live in a Bytes because Chacha20.block wants one; sharing the
     allocation across domains read-only is safe. *)
  (* prio-lint: allow domain-unsafe-state *)
  t.block <- Chacha20.block ~key:t.key ~counter:t.counter ~nonce:zero_nonce;
  t.counter <- t.counter + 1;
  t.pos <- 0

let byte t =
  if t.pos >= Bytes.length t.block then refill t;
  let b = Char.code (Bytes.get t.block t.pos) in
  t.pos <- t.pos + 1;
  b

let bytes t n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (byte t))
  done;
  out

let uint32 t =
  let a = byte t and b = byte t and c = byte t and d = byte t in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let limb31 t = uint32 t land 0x7FFFFFFF

let int_below t n =
  if n <= 0 then invalid_arg "Rng.int_below: n <= 0";
  if n = 1 then 0
  else begin
    (* rejection sampling over the smallest covering power of two *)
    let rec bits_needed k acc = if acc >= n then k else bits_needed (k + 1) (acc * 2) in
    let nbits = bits_needed 0 1 in
    let bound = 1 lsl nbits in
    let rec draw () =
      let nbytes = (nbits + 7) / 8 in
      let v = ref 0 in
      for _ = 1 to nbytes do
        v := (!v lsl 8) lor byte t
      done;
      let v = !v land (bound - 1) in
      if v < n then v else draw ()
    in
    draw ()
  end

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: hi < lo";
  lo + int_below t (hi - lo + 1)

let bool t = byte t land 1 = 1

let float01 t =
  let hi = uint32 t and lo = uint32 t in
  let v = ((hi land 0x1FFFFF) * 0x100000000) + lo in
  (* 53 random bits *)
  float_of_int v /. 9007199254740992.0

let fresh_seed t = bytes t seed_bytes
let split t = of_seed (fresh_seed t)

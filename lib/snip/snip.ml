(** Secret-shared non-interactive proofs (SNIPs) — the paper's §4.

    A client holding x proves to s servers, each holding an additive share
    [x]_i, that Valid(x) holds, where Valid is an arithmetic circuit with M
    multiplication gates and a set of assert-zero wires.

    Protocol recap:
    - The client evaluates Valid(x) and collects, for each mul gate t, the
      values u_t and v_t on its input wires. It places them on a
      root-of-unity grid (slot t ↦ ω^t, with a uniformly random value in
      slot 0 for zero-knowledge), interpolates polynomials f and g of degree
      < N (N = 2^⌈log(M+1)⌉) via inverse NTT, and computes h = f·g.
    - The client ships, secret-shared: f(0), g(0), h in point-value form on
      the 2N-grid (Appendix I), and a Beaver multiplication triple
      (a, b, c = a·b).
    - Each server re-derives shares of every wire value by walking the
      circuit on its input share, substituting each mul-gate output with its
      share of h(ω^t); affine gates act on shares locally (§4.2 step 2).
    - The servers run the randomized polynomial identity test on
      P(t) = t·(f(t)·g(t) − h(t)) at a batch-fixed secret point r, using the
      client's Beaver triple for the single secret-shared multiplication
      (§4.2 steps 3a/3b), and simultaneously check a random linear
      combination of the assert-zero wires (Appendix I circuit-AND).

    Soundness error: at most (2N + |assert-zero| ) / |F| per run — the
    identity test degree bound plus the linear-combination test.

    Server-to-server traffic per submission: each server reveals the Beaver
    openings (d_i, e_i) and the verdict pair (σ_i, ζ_i) — four field
    elements, independent of both L and M (Table 2, Figure 6). *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Prio_circuit.Circuit.Make (F)
  module Opt = Prio_circuit.Opt.Make (F)
  module Ntt = Prio_poly.Ntt.Make (F)
  module RE = Prio_poly.Roots_eval.Make (F)
  module Sh = Prio_share.Share.Make (F)
  module Rng = Prio_crypto.Rng
  module Trace = Prio_obs.Trace

  type proof_share = {
    f0 : F.t;  (** share of the random mask f(0) *)
    g0 : F.t;  (** share of the random mask g(0) *)
    h_points : F.t array;
        (** shares of h evaluated on the 2N-grid (empty when M = 0) *)
    a : F.t;
    b : F.t;
    c : F.t;  (** share of the Beaver triple *)
  }

  type submission_share = { x_share : F.t array; proof : proof_share }

  (* Every public entry point that takes a circuit first runs it through
     {!Prio_circuit.Opt.canonicalize}, so proof sizes, grids and circuit
     walks always refer to the optimized form — even for circuits built by
     hand rather than through the AFE constructors (which optimize at
     construction time; canonicalizing an already-optimized circuit is a
     cached no-op). The [raw_*] variants below operate on exactly the
     circuit given; [prove ~optimize:false] and
     [make_batch_ctx ~optimize:false] reach them for ablation
     measurements. *)

  (** Grid size N for a circuit: the covering power of two of M+1 slots
      (slot 0 is the random mask). *)
  let raw_grid_size circuit =
    let m = C.num_mul_gates circuit in
    if m = 0 then 0 else Ntt.next_pow2 (m + 1)

  let grid_size circuit = raw_grid_size (Opt.canonicalize circuit)

  (** Field elements in one proof share: 2 masks + 2N h-points + 3 triple
      components (0 when the circuit is multiplication-free). *)
  let raw_proof_num_elements circuit =
    let n = raw_grid_size circuit in
    if n = 0 then 0 else 2 + (2 * n) + 3

  let proof_num_elements circuit =
    raw_proof_num_elements (Opt.canonicalize circuit)

  (** Parse a flat share vector x_share ‖ f0 ‖ g0 ‖ h_points ‖ a ‖ b ‖ c
      into a submission share. Because additive sharing is coordinate-wise,
      a share of the concatenation is the concatenation of shares — this is
      what lets the PRG-compressed upload path (Appendix I) expand a single
      32-byte seed into a whole submission share. *)
  let raw_submission_of_vector (circuit : C.t) (v : F.t array) :
      submission_share =
    let l = C.num_inputs circuit in
    let n = raw_grid_size circuit in
    let expect = l + raw_proof_num_elements circuit in
    if Array.length v <> expect then
      invalid_arg
        (Printf.sprintf "Snip.submission_of_vector: expected %d elements, got %d"
           expect (Array.length v));
    let x_share = Array.sub v 0 l in
    if n = 0 then
      {
        x_share;
        proof =
          { f0 = F.zero; g0 = F.zero; h_points = [||]; a = F.zero; b = F.zero; c = F.zero };
      }
    else
      {
        x_share;
        proof =
          {
            f0 = v.(l);
            g0 = v.(l + 1);
            h_points = Array.sub v (l + 2) (2 * n);
            a = v.(l + 2 + (2 * n));
            b = v.(l + 3 + (2 * n));
            c = v.(l + 4 + (2 * n));
          };
      }

  let submission_of_vector (circuit : C.t) (v : F.t array) : submission_share =
    raw_submission_of_vector (Opt.canonicalize circuit) v

  let vector_of_submission (sub : submission_share) : F.t array =
    let p = sub.proof in
    if Array.length p.h_points = 0 then sub.x_share
    else
      Array.concat
        [ sub.x_share; [| p.f0; p.g0 |]; p.h_points; [| p.a; p.b; p.c |] ]

  (* ------------------------------------------------------------------ *)
  (* Client: proof generation (§4.2 step 1).                             *)
  (* ------------------------------------------------------------------ *)

  (** The plain (unshared) proof elements f(0) ‖ g(0) ‖ h-points ‖ (a,b,c)
      for inputs x. Concatenated with x and secret-shared, this is the
      client's whole upload. *)
  let raw_proof_vector ~rng ~(circuit : C.t) ~(inputs : F.t array) : F.t array =
    let m = C.num_mul_gates circuit in
    if m = 0 then [||]
    else begin
      Trace.with_span "snip.prove" ~attrs:[ ("mul_gates", string_of_int m) ]
      @@ fun () ->
      let _, pairs = C.eval_mul_pairs circuit ~inputs in
      let n = Ntt.next_pow2 (m + 1) in
      let u = Array.make n F.zero and v = Array.make n F.zero in
      u.(0) <- F.random rng;
      v.(0) <- F.random rng;
      for t = 1 to m do
        let ut, vt = pairs.(t - 1) in
        u.(t) <- ut;
        v.(t) <- vt
      done;
      (* h = f·g has degree ≤ 2n−2 < 2n, so its 2N-grid evaluations are
         exactly the pointwise products f(ω₂ᵢ)·g(ω₂ᵢ): interpolate f and g
         once (size n) and evaluate both on the double grid — two cached
         size-2n transforms instead of the four a coefficient-space
         multiply-then-re-evaluate would cost. *)
      let f_coeffs = Ntt.intt u and g_coeffs = Ntt.intt v in
      let pad2 c =
        let h = Array.make (2 * n) F.zero in
        Array.blit c 0 h 0 (Array.length c);
        h
      in
      let f2 = Ntt.ntt (pad2 f_coeffs) and g2 = Ntt.ntt (pad2 g_coeffs) in
      let h_points = Array.init (2 * n) (fun i -> F.mul f2.(i) g2.(i)) in
      let a = F.random rng and b = F.random rng in
      let c = F.mul a b in
      Array.concat [ [| u.(0); v.(0) |]; h_points; [| a; b; c |] ]
    end

  let proof_vector ~rng ~(circuit : C.t) ~(inputs : F.t array) : F.t array =
    raw_proof_vector ~rng ~circuit:(Opt.canonicalize circuit) ~inputs

  (** Prove over exactly the circuit given, skipping canonicalization —
      for ablation benchmarks of the unoptimized form; every party must
      make the same choice for shares to parse. *)
  let prove_raw ~rng ~(circuit : C.t) ~num_servers ~(inputs : F.t array) :
      submission_share array =
    let s = num_servers in
    if s < 2 then invalid_arg "Snip.prove: need at least two servers";
    let full = Array.append inputs (raw_proof_vector ~rng ~circuit ~inputs) in
    let shares = Sh.split_vector rng ~s full in
    Array.map (raw_submission_of_vector circuit) shares

  let prove ~rng ~(circuit : C.t) ~num_servers ~(inputs : F.t array) :
      submission_share array =
    prove_raw ~rng ~circuit:(Opt.canonicalize circuit) ~num_servers ~inputs

  (* ------------------------------------------------------------------ *)
  (* Servers: batched verification (§4.2 steps 2–4, Appendix I).         *)
  (* ------------------------------------------------------------------ *)

  type batch_ctx = {
    circuit : C.t;
    s : int;
    inv_s : F.t;
    n : int; (* grid size, 0 for mul-free circuits *)
    r : F.t;
    re_n : RE.ctx option;
    re_2n : RE.ctx option;
    zcoef : F.t array; (* random coefficients for the assert-zero combination *)
  }

  (** Sample the batch secrets (the identity-test point r and the
      assert-zero combination coefficients) and precompute the fixed-r
      Lagrange weights. In deployment the leader samples these per batch of
      ~2^10 submissions and shares them with the other servers over the
      authenticated server-to-server channels; the client never learns
      them. *)
  let make_batch_ctx_raw ~rng ~(circuit : C.t) ~num_servers : batch_ctx =
    let s = num_servers in
    let n = raw_grid_size circuit in
    let zcoef =
      Array.init (Array.length circuit.C.assert_zero) (fun _ -> F.random rng)
    in
    if n = 0 then
      { circuit; s; inv_s = F.inv (F.of_int s); n; r = F.zero; re_n = None; re_2n = None; zcoef }
    else begin
      let rec sample () =
        let r = F.random rng in
        if RE.r_collides ~n:(2 * n) r then sample () else r
      in
      let r = sample () in
      {
        circuit;
        s;
        inv_s = F.inv (F.of_int s);
        n;
        r;
        re_n = Some (RE.create ~n ~r);
        re_2n = Some (RE.create ~n:(2 * n) ~r);
        zcoef;
      }
    end

  let make_batch_ctx ~rng ~(circuit : C.t) ~num_servers : batch_ctx =
    make_batch_ctx_raw ~rng ~circuit:(Opt.canonicalize circuit) ~num_servers

  type server_state = {
    fr : F.t; (* share of f(r) *)
    gr : F.t; (* share of g(r) *)
    hr : F.t; (* share of h(r) *)
    st_proof : proof_share;
    zero_combo : F.t; (* share of Σ_j z_j · (assert-zero wire j) *)
  }

  type opening = { d : F.t; e : F.t }
  (** Beaver openings: d_i = [f(r)]_i − [a]_i and e_i = [r·g(r)]_i − [b]_i. *)

  type verdict_share = { sigma : F.t; zero : F.t }

  (** Local, communication-free pass over one submission share: walk the
      circuit on shares, evaluate the three polynomials at r, and emit the
      Beaver openings. *)
  let server_prepare (ctx : batch_ctx) (sub : submission_share) :
      server_state * opening =
    let { circuit; inv_s; n; r; re_n; re_2n; _ } = ctx in
    let m = C.num_mul_gates circuit in
    let mul_outputs =
      Array.init m (fun t -> sub.proof.h_points.(2 * (t + 1)))
    in
    let wires, pairs =
      C.eval_shares circuit ~const_share_of_one:inv_s ~inputs:sub.x_share
        ~mul_outputs
    in
    let zero_combo =
      let zs = C.assert_zero_values circuit wires in
      let acc = ref F.zero in
      Array.iteri (fun j z -> acc := F.add !acc (F.mul ctx.zcoef.(j) z)) zs;
      !acc
    in
    if m = 0 then
      ( { fr = F.zero; gr = F.zero; hr = F.zero; st_proof = sub.proof; zero_combo },
        { d = F.zero; e = F.zero } )
    else begin
      let fv = Array.make n F.zero and gv = Array.make n F.zero in
      fv.(0) <- sub.proof.f0;
      gv.(0) <- sub.proof.g0;
      for t = 1 to m do
        let u, v = pairs.(t - 1) in
        fv.(t) <- u;
        gv.(t) <- v
      done;
      let re_n, re_2n =
        match (re_n, re_2n) with
        | Some a, Some b -> (a, b)
        | _ -> assert false (* batch_ctx builds both whenever m > 0 *)
      in
      let fr = RE.eval re_n fv in
      let gr = RE.eval re_n gv in
      let hr = RE.eval re_2n sub.proof.h_points in
      let d = F.sub fr sub.proof.a in
      let e = F.sub (F.mul r gr) sub.proof.b in
      ({ fr; gr; hr; st_proof = sub.proof; zero_combo }, { d; e })
    end

  (** Given the publicly reconstructed openings d = Σd_i and e = Σe_i,
      produce this server's verdict share
      σ_i = de/s + d·[b]_i + e·[a]_i + [c]_i − [r·h(r)]_i. *)
  let server_decide_share (ctx : batch_ctx) (st : server_state) ~(d : F.t)
      ~(e : F.t) : verdict_share =
    if ctx.n = 0 then { sigma = F.zero; zero = st.zero_combo }
    else begin
      let p = st.st_proof in
      let sigma =
        F.sub
          (F.add
             (F.add (F.mul (F.mul d e) ctx.inv_s) (F.mul d p.b))
             (F.add (F.mul e p.a) p.c))
          (F.mul ctx.r st.hr)
      in
      { sigma; zero = st.zero_combo }
    end

  (** Final public decision: both sums must vanish. *)
  let accept (verdicts : verdict_share array) : bool =
    let sum f = Array.fold_left (fun acc v -> F.add acc (f v)) F.zero verdicts in
    F.is_zero (sum (fun v -> v.sigma)) && F.is_zero (sum (fun v -> v.zero))

  (** Run the complete verification given every server's submission share —
      the convenience entry point used by tests and single-process
      pipelines. *)
  let verify_all (ctx : batch_ctx) (subs : submission_share array) : bool =
    if Array.length subs <> ctx.s then invalid_arg "Snip.verify_all: wrong share count";
    Trace.with_span "snip.verify" @@ fun () ->
    let states = Array.map (server_prepare ctx) subs in
    let d = Array.fold_left (fun acc (_, o) -> F.add acc o.d) F.zero states in
    let e = Array.fold_left (fun acc (_, o) -> F.add acc o.e) F.zero states in
    let verdicts =
      Array.map (fun (st, _) -> server_decide_share ctx st ~d ~e) states
    in
    accept verdicts
end

(** Secret-shared non-interactive proofs (SNIPs) — the paper's §4 and the
    heart of Prio.

    A client holding x proves to s servers, each holding an additive
    share [x]_i, that Valid(x) holds — where Valid is an arithmetic
    circuit with M multiplication gates and a set of assert-zero wires —
    while the servers learn nothing else about x (if at least one is
    honest) and exchange only four field elements per submission.

    Construction summary: the client places each mul gate's operands on a
    root-of-unity grid (slot 0 carries uniform masks for zero-knowledge),
    interpolates polynomials f and g by inverse NTT, ships h = f·g in
    point-value form on the doubled grid plus one Beaver triple, all
    secret-shared. Each server re-derives shares of every wire by walking
    the circuit (mul outputs come from h), and the cluster runs the
    randomized polynomial identity test on t·(f·g − h) at a batch-fixed
    secret point r using the triple for the one secret-shared
    multiplication, together with a random linear combination of the
    assert-zero wires. Soundness error ≤ (2N + 1)/|F| per submission;
    see docs/PROTOCOL.md for the full derivation. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module C : module type of Prio_circuit.Circuit.Make (F)

  (** Every entry point taking a circuit first runs it through
      {!Prio_circuit.Opt.canonicalize}: proof sizes, grids and circuit
      walks refer to the optimized circuit even when callers hand in a
      raw builder output (AFE circuits arrive pre-optimized, for which
      canonicalization is a cached no-op). [prove_raw] and
      [make_batch_ctx_raw] skip the canonicalization to measure the
      unoptimized form — all parties must then agree on that choice for
      shares to parse. *)

  type proof_share = {
    f0 : F.t;  (** share of the random mask f(0) *)
    g0 : F.t;  (** share of the random mask g(0) *)
    h_points : F.t array;
        (** shares of h on the 2N-grid (empty when M = 0) *)
    a : F.t;
    b : F.t;
    c : F.t;  (** share of the Beaver triple, c = a·b *)
  }

  type submission_share = { x_share : F.t array; proof : proof_share }

  val grid_size : C.t -> int
  (** N = 2^⌈log₂(M+1)⌉, or 0 for multiplication-free circuits. *)

  val proof_num_elements : C.t -> int
  (** Field elements in one proof share: 2 + 2N + 3 (0 when M = 0). *)

  (** {1 Flat-vector form}

      A submission share is also a flat vector x ‖ f0 ‖ g0 ‖ h ‖ (a,b,c);
      because additive sharing is coordinate-wise, sharing the
      concatenation equals concatenating shares — the basis of the
      PRG-compressed upload path. *)

  val submission_of_vector : C.t -> F.t array -> submission_share
  val vector_of_submission : submission_share -> F.t array

  (** {1 Client (prover)} *)

  val proof_vector : rng:Prio_crypto.Rng.t -> circuit:C.t -> inputs:F.t array -> F.t array
  (** The plain (unshared) proof elements for inputs x. *)

  val prove :
    rng:Prio_crypto.Rng.t -> circuit:C.t -> num_servers:int ->
    inputs:F.t array -> submission_share array
  (** Build and split a complete submission, one share per server,
      proving over the canonicalized circuit. *)

  val prove_raw :
    rng:Prio_crypto.Rng.t -> circuit:C.t -> num_servers:int ->
    inputs:F.t array -> submission_share array
  (** [prove] minus the canonicalization — ablation benchmarks only. *)

  (** {1 Servers (verifiers)} *)

  type batch_ctx
  (** Batch secrets (the identity-test point r and the assert-zero
      combination coefficients) with the fixed-r Lagrange weights
      precomputed — amortized over ~1000 submissions (Appendix I). *)

  val make_batch_ctx :
    rng:Prio_crypto.Rng.t -> circuit:C.t -> num_servers:int -> batch_ctx

  val make_batch_ctx_raw :
    rng:Prio_crypto.Rng.t -> circuit:C.t -> num_servers:int -> batch_ctx
  (** [make_batch_ctx] minus the canonicalization — must be paired with
      [prove_raw] on the client side. *)

  type server_state = {
    fr : F.t;  (** share of f(r) *)
    gr : F.t;  (** share of g(r) *)
    hr : F.t;  (** share of h(r) *)
    st_proof : proof_share;
    zero_combo : F.t;  (** share of Σ z_j·(assert-zero wire j) *)
  }

  type opening = { d : F.t; e : F.t }
  (** Beaver openings d_i = [f(r)]_i − [a]_i, e_i = [r·g(r)]_i − [b]_i. *)

  type verdict_share = { sigma : F.t; zero : F.t }

  val server_prepare : batch_ctx -> submission_share -> server_state * opening
  (** One server's communication-free pass: circuit walk on shares,
      polynomial evaluations at r, Beaver openings. *)

  val server_decide_share : batch_ctx -> server_state -> d:F.t -> e:F.t -> verdict_share
  (** Given the reconstructed openings, this server's verdict share
      σ_i = de/s + d·[b]_i + e·[a]_i + [c]_i − r·[h(r)]_i and its
      assert-zero combination share. *)

  val accept : verdict_share array -> bool
  (** The public decision: both verdict sums must vanish. *)

  val verify_all : batch_ctx -> submission_share array -> bool
  (** Run the whole check in one process (tests, simulator, pipelines). *)
end

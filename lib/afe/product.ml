(** Product and geometric mean (paper §5.2: "Computing the product and
    geometric mean works in exactly the same manner, except that we encode
    x using b-bit logarithms").

    A client's positive value x is represented by its base-2 logarithm in
    fixed point with [frac_bits] fractional bits, range-checked to b bits
    like the sum AFE. Summing logarithms aggregates the product; dividing
    the log-sum by n gives the geometric mean. The result is approximate to
    within the fixed-point quantization (relative error ≤ 2^{-frac_bits}·ln 2
    per client). *)

module Make (F : Prio_field.Field_intf.S) = struct
  module A = Afe.Make (F)
  module S = Sum.Make (F)

  let log_fixed ~frac_bits x =
    if x <= 0. then invalid_arg "Product.encode: need positive values";
    let v = log x /. log 2. *. float_of_int (1 lsl frac_bits) in
    let r = int_of_float (Float.round v) in
    if r < 0 then invalid_arg "Product.encode: value below representable range";
    r

  (** Product of positive values, each with log₂ fitting in [bits] bits of
      [frac_bits]-fractional fixed point. *)
  let product ~bits ~frac_bits : (float, float) A.t =
    let s = S.sum ~bits in
    {
      A.name = Printf.sprintf "product-b%d-f%d" bits frac_bits;
      encoding_len = s.A.encoding_len;
      trunc_len = s.A.trunc_len;
      circuit = s.A.circuit;
      raw_circuit = s.A.raw_circuit;
      encode = (fun ~rng:_ x -> S.encode ~bits (log_fixed ~frac_bits x));
      decode =
        (fun ~n:_ sigma ->
          let log_sum = A.to_float sigma.(0) /. float_of_int (1 lsl frac_bits) in
          2. ** log_sum);
      leakage = "the product itself (sum of logs)";
    }

  (** Geometric mean of positive values. *)
  let geometric_mean ~bits ~frac_bits : (float, float) A.t =
    let p = product ~bits ~frac_bits in
    {
      p with
      A.name = Printf.sprintf "geomean-b%d-f%d" bits frac_bits;
      decode =
        (fun ~n sigma ->
          if n = 0 then nan
          else begin
            let log_sum = A.to_float sigma.(0) /. float_of_int (1 lsl frac_bits) in
            2. ** (log_sum /. float_of_int n)
          end);
      leakage = "the product of the inputs (hence the geometric mean)";
    }
end

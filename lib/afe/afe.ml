(** Affine-aggregatable encodings (AFEs) — the paper's §5 and Appendix F.

    An AFE for an aggregation function f : D^n → A packages three pieces:
    - [encode] : D → F^k (possibly randomized),
    - a Valid circuit accepting exactly the well-formed encodings, and
    - [decode] : F^k' → A, applied to the component-wise sum of the first
      k' ≤ k encoding components over all clients.

    Prio computes f privately by having each client secret-share
    Encode(x_i), prove Valid with a SNIP, and having the servers accumulate
    the truncated shares and publish only the sum (§5.1).

    Each instance documents its leakage function fˆ — what the sum of
    encodings reveals beyond f itself. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Prio_circuit.Circuit.Make (F)
  module Opt = Prio_circuit.Opt.Make (F)
  module Rng = Prio_crypto.Rng
  module B = Prio_bigint.Bigint

  type ('input, 'output) t = {
    name : string;
    encoding_len : int;  (** k: elements in a full encoding *)
    trunc_len : int;  (** k' ≤ k: elements that enter the accumulator *)
    circuit : C.t;
        (** the Valid predicate over F^k, as deployed: every constructor
            in this library runs the builder's output through
            {!Prio_circuit.Opt.optimize}, so proofs and verification pay
            for the optimized mul-gate count end to end *)
    raw_circuit : C.t;
        (** the builder's output before optimization — kept for the gate
            census, the budget lint and the equivalence tests *)
    encode : rng:Rng.t -> 'input -> F.t array;
    decode : n:int -> F.t array -> 'output;
        (** [n] is the number of accumulated clients *)
    leakage : string;  (** the fˆ this AFE is private with respect to *)
  }

  (** [optimize] from {!Prio_circuit.Opt}, re-exported for the AFE
      constructors: [compile raw] pairs a builder's circuit with its
      optimized form. *)
  let compile (raw : C.t) : C.t * C.t = (Opt.optimize raw, raw)

  let well_formed afe =
    afe.encoding_len = C.num_inputs afe.circuit
    && afe.encoding_len = C.num_inputs afe.raw_circuit
    && afe.trunc_len >= 0
    && afe.trunc_len <= afe.encoding_len

  (** Does the Valid circuit accept this encoding? *)
  let valid afe encoding = C.valid afe.circuit ~inputs:encoding

  let truncate afe encoding = Array.sub encoding 0 afe.trunc_len

  (** Component-wise sum of truncated encodings — what the servers jointly
      compute. *)
  let aggregate afe encodings =
    let acc = Array.make afe.trunc_len F.zero in
    List.iter
      (fun e ->
        for j = 0 to afe.trunc_len - 1 do
          acc.(j) <- F.add acc.(j) e.(j)
        done)
      (List.map (truncate afe) encodings);
    acc

  (** Reference path with no crypto: encode every input, aggregate, decode.
      Used by tests to pin down what the full protocol must output. *)
  let run_plain afe ~rng inputs =
    let encodings = List.map (fun x -> afe.encode ~rng x) inputs in
    assert (List.for_all (valid afe) encodings);
    afe.decode ~n:(List.length inputs) (aggregate afe encodings)

  (* ------------------------------------------------------------------ *)
  (* Combinators                                                         *)
  (* ------------------------------------------------------------------ *)

  (** Post-process the decoded aggregate. *)
  let map_output f afe = { afe with decode = (fun ~n s -> f (afe.decode ~n s)) }

  (** Pre-process the client input before encoding. *)
  let contramap_input f afe =
    { afe with encode = (fun ~rng x -> afe.encode ~rng (f x)) }

  (** Collect two statistics in a single submission: one encoding, one
      Valid circuit, one SNIP covering both (the paper's browser-telemetry
      deployment gathers CPU, memory and URL counts at once; Appendix I's
      circuit-AND optimization makes the combined check as cheap as the
      parts).

      The combined encoding is laid out [trunc_a | trunc_b | rest_a |
      rest_b] so that truncation — which always keeps a prefix — preserves
      exactly the aggregated components of both pieces. *)
  let pair (a : ('a, 'b) t) (c : ('c, 'd) t) : ('a * 'c, 'b * 'd) t =
    let ka' = a.trunc_len and ka = a.encoding_len in
    let kc' = c.trunc_len and kc = c.encoding_len in
    let total = ka + kc in
    let map_a j = if j < ka' then j else ka' + kc' + (j - ka') in
    let map_c j = if j < kc' then ka' + j else ka + kc' + (j - kc') in
    let circuit, raw_circuit =
      compile
        (C.union
           (C.remap_inputs a.raw_circuit ~num_inputs:total ~mapping:map_a)
           (C.remap_inputs c.raw_circuit ~num_inputs:total ~mapping:map_c))
    in
    let place mapping src dst = Array.iteri (fun j v -> dst.(mapping j) <- v) src in
    {
      name = a.name ^ "+" ^ c.name;
      encoding_len = total;
      trunc_len = ka' + kc';
      circuit;
      raw_circuit;
      encode =
        (fun ~rng (xa, xc) ->
          let enc = Array.make total F.zero in
          place map_a (a.encode ~rng xa) enc;
          place map_c (c.encode ~rng xc) enc;
          enc);
      decode =
        (fun ~n sigma ->
          ( a.decode ~n (Array.sub sigma 0 ka'),
            c.decode ~n (Array.sub sigma ka' kc') ));
      leakage = a.leakage ^ "; " ^ c.leakage;
    }

  (* ------------------------------------------------------------------ *)
  (* Shared helpers for the encoding instances.                          *)
  (* ------------------------------------------------------------------ *)

  (** Little-endian bits of a non-negative integer, exactly [b] of them. *)
  let bits_of_int x b =
    if x < 0 || (b < 63 && x lsr b <> 0) then invalid_arg "Afe.bits_of_int: out of range";
    Array.init b (fun i -> F.of_int ((x lsr i) land 1))

  (** Field element → int (for decodes whose sums fit a native int). *)
  let to_int_exn x = B.to_int_exn (F.to_bigint x)

  (** Field element → float via its canonical representative. This is only
      meaningful when the value cannot have wrapped mod p; callers size the
      field so sums stay below p (§5.2). *)
  let to_float x =
    let v = F.to_bigint x in
    match B.to_int v with
    | Some i -> float_of_int i
    | None -> float_of_string (B.to_string v)

  (** Builder fragment: assert wires [ws] are bits and equal the binary
      decomposition of [value]. Costs [Array.length ws] mul gates. *)
  let assert_int_bits b ~value ~bits =
    List.iter (C.Builder.assert_bit b) bits;
    C.Builder.assert_binary_decomposition b ~value ~bits
end

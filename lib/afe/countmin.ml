(** Approximate counts over large domains via a count-min sketch
    (paper, Appendix G "Approximate counts"; Cormode–Muthukrishnan sketch).

    The exact frequency-count AFE needs a field element per domain value —
    hopeless for domains like URLs. Following Melis et al. (as cited by the
    paper), each client inserts its value into a [depth] × [width] count-min
    sketch: one one-hot row per hash function. Valid checks every row is
    one-hot (depth·width mul gates), which is what makes the construction
    robust to malicious clients — a cheater can inflate counts by at most 1
    per row, same as any honest insertion.

    With width e/ε and depth ln(1/δ), a query overestimates the true count
    by at most εn except with probability δ.

    Leakage: the full sketch of all clients' values. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module A = Afe.Make (F)
  module C = A.C
  module Sha256 = Prio_crypto.Sha256

  type params = { depth : int; width : int }

  (** Standard parameter choice for additive error εn with failure
      probability δ. *)
  let params_of_eps_delta ~eps ~delta =
    {
      depth = Stdlib.max 1 (int_of_float (ceil (log (1. /. delta))));
      width = Stdlib.max 2 (int_of_float (ceil (exp 1. /. eps)));
    }

  (** Row-j hash of an arbitrary string key, in [0, width). *)
  let hash ~params ~row key =
    let digest = Sha256.digest_string (Printf.sprintf "cms|%d|%s" row key) in
    let v = ref 0 in
    for i = 0 to 7 do
      v := (!v lsl 8) lor Char.code (Bytes.get digest i)
    done;
    (!v land max_int) mod params.width

  let circuit ~params =
    let len = params.depth * params.width in
    let b = C.Builder.create ~num_inputs:len in
    (* The sketch's validity spec, stated modularly: every cell is a bit,
       and every row is one-hot. [assert_one_hot] is self-contained (it
       re-checks its row's cells are bits), so the two groups overlap on
       every cell; the circuit optimizer deduplicates the overlap and the
       deployed circuit keeps the paper's depth·width mul gates. *)
    for i = 0 to len - 1 do
      C.Builder.assert_bit b (C.Builder.input b i)
    done;
    for j = 0 to params.depth - 1 do
      let row = List.init params.width (fun i -> C.Builder.input b ((j * params.width) + i)) in
      C.Builder.assert_one_hot b row
    done;
    C.Builder.build b

  let encode ~params key : F.t array =
    let enc = Array.make (params.depth * params.width) F.zero in
    for j = 0 to params.depth - 1 do
      enc.((j * params.width) + hash ~params ~row:j key) <- F.one
    done;
    enc

  type sketch = { params : params; table : int array array }

  (** Estimated count for a key: the row-wise minimum. *)
  let query sk key =
    let best = ref max_int in
    for j = 0 to sk.params.depth - 1 do
      let c = sk.table.(j).(hash ~params:sk.params ~row:j key) in
      if c < !best then best := c
    done;
    !best

  (** Count-min sketch AFE over string keys. *)
  let count_min ~params : (string, sketch) A.t =
    let len = params.depth * params.width in
    let circuit, raw_circuit = A.compile (circuit ~params) in
    {
      A.name = Printf.sprintf "count-min%dx%d" params.depth params.width;
      encoding_len = len;
      trunc_len = len;
      circuit;
      raw_circuit;
      encode = (fun ~rng:_ key -> encode ~params key);
      decode =
        (fun ~n:_ sigma ->
          {
            params;
            table =
              Array.init params.depth (fun j ->
                  Array.init params.width (fun i ->
                      A.to_int_exn sigma.((j * params.width) + i)));
          });
      leakage = "the aggregate count-min sketch of all inputs";
    }
end

(** One representative instance of every AFE family, with raw and
    optimized circuits and a valid-encoding generator — the shared
    specimen list behind the gate census, the circuit-budget lint, the
    optimizer equivalence tests and the [circuit_opt] benchmark. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module A : module type of Afe.Make (F)
  module C : module type of Prio_circuit.Circuit.Make (F)
  module Rng = Prio_crypto.Rng

  type entry = {
    name : string;  (** the AFE's own name *)
    family : string;  (** source module, lower-case *)
    raw : C.t;  (** the builder's output *)
    optimized : C.t;  (** the deployed circuit *)
    sample : Rng.t -> F.t array;
        (** a valid encoding of a random in-domain input *)
  }

  val entry : family:string -> ('a, 'b) A.t -> (Rng.t -> 'a) -> entry
  (** Wrap any AFE as a specimen given a random in-domain input
      generator. *)

  val all : unit -> entry list
  (** The specimen list, one or two entries per family; built on demand
      (constructing an entry optimizes its circuit). *)
end

(** Least-squares linear regression on private data (paper §5.3) and
    R²-evaluation of a public model (paper, Appendix G).

    Each client holds a training example (x⃗, y) of b-bit integers (14-bit
    fixed-point in the paper's health-modeling evaluation). The encoding
    carries every monomial the normal equations need:

      (x_1 … x_d,  x_j·x_k for j ≤ k,  y,  x_1·y … x_d·y,  bits of all x_j
       and of y)

    Valid checks the bit decompositions ((d+1)·b mul gates) and each product
    component against its factors (d(d+1)/2 + d mul gates). Only the
    monomial sums are aggregated; Decode solves

      [ n     Σx_k    ] [c_0]   [ Σy    ]
      [ Σx_j  Σx_j x_k ] [c_j] = [ Σx_j y ]

    by Gaussian elimination.

    Leakage: the aggregate reveals the full moment matrix — the least-squares
    coefficients plus the d×d covariance matrix and the means, exactly the fˆ
    stated in §5.3. Field sizing: |F| > n·2^{2b}. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module A = Afe.Make (F)
  module C = A.C

  type example = { features : int array; target : int }

  let num_pairs d = d * (d + 1) / 2

  (* index of product x_j·x_k (j <= k) within the pair block *)
  let pair_index ~d j k =
    assert (j <= k && k < d);
    (j * d) - (j * (j - 1) / 2) + (k - j)

  (* encoding layout *)
  let idx_feature _d j = j
  let idx_pair d j k = d + pair_index ~d j k
  let idx_y d = d + num_pairs d
  let idx_xy d j = d + num_pairs d + 1 + j
  let moments_len d = d + num_pairs d + 1 + d
  let idx_bits d ~bits j = moments_len d + (j * bits) (* j in 0..d: j = d is y *)
  let encoding_len d ~bits = moments_len d + ((d + 1) * bits)

  let circuit ~d ~bits =
    let b = C.Builder.create ~num_inputs:(encoding_len d ~bits) in
    let feature j = C.Builder.input b (idx_feature d j) in
    let y = C.Builder.input b (idx_y d) in
    (* Range-check slot j (feature for j < d, y for j = d) against its bit
       block. Stated as a self-contained gadget: each product constraint
       below re-asserts the ranges of both of its factors rather than
       assuming the blanket sweep ran, and the circuit optimizer
       deduplicates the repeats, keeping the deployed circuit at the
       paper's (d+1)·b + d(d+1)/2 + d mul gates. *)
    let assert_ranged j =
      let value = if j < d then feature j else y in
      let bit_wires =
        List.init bits (fun i -> C.Builder.input b (idx_bits d ~bits j + i))
      in
      A.assert_int_bits b ~value ~bits:bit_wires
    in
    (* bit decompositions for every feature and for y *)
    for j = 0 to d do
      assert_ranged j
    done;
    (* product components, each re-checking its factors' ranges *)
    for j = 0 to d - 1 do
      for k = j to d - 1 do
        assert_ranged j;
        assert_ranged k;
        C.Builder.assert_product b ~x:(feature j) ~x':(feature k)
          ~y:(C.Builder.input b (idx_pair d j k))
      done;
      assert_ranged j;
      assert_ranged d;
      C.Builder.assert_product b ~x:(feature j) ~x':y
        ~y:(C.Builder.input b (idx_xy d j))
    done;
    C.Builder.build b

  let encode ~d ~bits { features; target } : F.t array =
    if Array.length features <> d then invalid_arg "Regression.encode: wrong arity";
    let check v =
      if v < 0 || (bits < 31 && v lsr bits <> 0) then
        invalid_arg "Regression.encode: value out of range"
    in
    Array.iter check features;
    check target;
    let enc = Array.make (encoding_len d ~bits) F.zero in
    for j = 0 to d - 1 do
      enc.(idx_feature d j) <- F.of_int features.(j);
      for k = j to d - 1 do
        enc.(idx_pair d j k) <- F.of_int (features.(j) * features.(k))
      done;
      enc.(idx_xy d j) <- F.of_int (features.(j) * target)
    done;
    enc.(idx_y d) <- F.of_int target;
    for j = 0 to d do
      let v = if j < d then features.(j) else target in
      Array.blit (A.bits_of_int v bits) 0 enc (idx_bits d ~bits j) bits
    done;
    enc

  (** d-dimensional least-squares fit h(x⃗) = c_0 + Σ c_j x_j; decodes to
      the coefficient vector (c_0, c_1, …, c_d). *)
  let least_squares ~d ~bits : (example, float array) A.t =
    let circuit, raw_circuit = A.compile (circuit ~d ~bits) in
    {
      A.name = Printf.sprintf "linreg-d%d-b%d" d bits;
      encoding_len = encoding_len d ~bits;
      trunc_len = moments_len d;
      circuit;
      raw_circuit;
      encode = (fun ~rng:_ ex -> encode ~d ~bits ex);
      decode =
        (fun ~n sigma ->
          let s i = A.to_float sigma.(i) in
          let a =
            Array.init (d + 1) (fun row ->
                Array.init (d + 1) (fun col ->
                    match (row, col) with
                    | 0, 0 -> float_of_int n
                    | 0, k -> s (idx_feature d (k - 1))
                    | j, 0 -> s (idx_feature d (j - 1))
                    | j, k ->
                      let j = j - 1 and k = k - 1 in
                      s (idx_pair d (Stdlib.min j k) (Stdlib.max j k))))
          in
          let rhs =
            Array.init (d + 1) (fun row ->
                if row = 0 then s (idx_y d) else s (idx_xy d (row - 1)))
          in
          Linalg.solve a rhs);
      leakage =
        "the moment matrix: feature means, covariance matrix, and the fit";
    }

  (* ------------------------------------------------------------------ *)
  (* R² of a public linear model (Appendix G).                           *)
  (* ------------------------------------------------------------------ *)

  (** Public model ŷ = (m_0 + Σ m_j·x_j) / 2^frac_bits with integer
      (pre-scaled fixed-point) coefficients. *)
  type model = { intercept : int; coefs : int array; frac_bits : int }

  let predict model features =
    let acc = ref (float_of_int model.intercept) in
    Array.iteri
      (fun j x -> acc := !acc +. (float_of_int model.coefs.(j) *. float_of_int x))
      features;
    !acc /. (2. ** float_of_int model.frac_bits)

  (** Encoding (y, y², (2^f·y − ŷ_s)², x⃗, bits of x⃗ and y) with
      ŷ_s = m_0 + Σ m_j x_j the scaled model output. Valid needs just two
      mul gates beyond the range checks, as in the paper. Decodes to the
      R² coefficient. *)
  let r_squared ~model ~bits : (example, float) A.t =
    let d = Array.length model.coefs in
    let scale = 1 lsl model.frac_bits in
    (* layout: y, y², resid², x_1..x_d, bits of x_j (d·bits), bits of y *)
    let idx_y = 0 and idx_y2 = 1 and idx_resid = 2 in
    let idx_x j = 3 + j in
    let idx_bits j = 3 + d + (j * bits) in
    let len = 3 + d + ((d + 1) * bits) in
    let circuit =
      let b = C.Builder.create ~num_inputs:len in
      let y = C.Builder.input b idx_y in
      for j = 0 to d do
        let value = if j < d then C.Builder.input b (idx_x j) else y in
        let bit_wires = List.init bits (fun i -> C.Builder.input b (idx_bits j + i)) in
        A.assert_int_bits b ~value ~bits:bit_wires
      done;
      C.Builder.assert_square b ~x:y ~y:(C.Builder.input b idx_y2);
      let yhat_terms =
        List.init d (fun j -> (F.of_int model.coefs.(j), C.Builder.input b (idx_x j)))
      in
      let yhat = C.Builder.linear_combination b yhat_terms in
      let yhat = C.Builder.add_const b (F.of_int model.intercept) yhat in
      let resid = C.Builder.sub b (C.Builder.scale b (F.of_int scale) y) yhat in
      C.Builder.assert_square b ~x:resid ~y:(C.Builder.input b idx_resid);
      C.Builder.build b
    in
    let circuit, raw_circuit = A.compile circuit in
    {
      A.name = Printf.sprintf "r2-d%d-b%d" d bits;
      encoding_len = len;
      trunc_len = 3;
      circuit;
      raw_circuit;
      encode =
        (fun ~rng:_ { features; target } ->
          if Array.length features <> d then invalid_arg "r_squared.encode";
          let enc = Array.make len F.zero in
          enc.(idx_y) <- F.of_int target;
          enc.(idx_y2) <- F.of_int (target * target);
          let yhat_s =
            Array.to_list features
            |> List.mapi (fun j x -> model.coefs.(j) * x)
            |> List.fold_left ( + ) model.intercept
          in
          let r = (scale * target) - yhat_s in
          enc.(idx_resid) <- F.of_int (r * r);
          for j = 0 to d - 1 do
            enc.(idx_x j) <- F.of_int features.(j)
          done;
          for j = 0 to d do
            let v = if j < d then features.(j) else target in
            Array.blit (A.bits_of_int v bits) 0 enc (idx_bits j) bits
          done;
          enc);
      decode =
        (fun ~n sigma ->
          let nf = float_of_int n in
          let sy = A.to_float sigma.(idx_y) in
          let sy2 = A.to_float sigma.(idx_y2) in
          let sresid = A.to_float sigma.(idx_resid) /. float_of_int (scale * scale) in
          let var = (sy2 /. nf) -. ((sy /. nf) ** 2.) in
          if var <= 0. then nan else 1. -. (sresid /. (nf *. var)));
      leakage = "R² plus the mean and variance of the targets";
    }
end

(** One representative instance of every AFE family in the library, with
    its raw and optimized circuits side by side and a generator of valid
    encodings.

    This is the shared specimen list behind the gate census
    ([prio_cli circuit]), the circuit-budget lint, the optimizer
    equivalence tests and the [circuit_opt] benchmark — one place to add
    an entry when a new AFE family lands, and every consumer picks it
    up. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module A = Afe.Make (F)
  module C = A.C
  module Rng = Prio_crypto.Rng
  module Boolean = Boolean.Make (F)
  module Sum = Sum.Make (F)
  module Histogram = Histogram.Make (F)
  module Minmax = Minmax.Make (F)
  module Product = Product.Make (F)
  module Fixed_point = Fixed_point.Make (F)
  module Regression = Regression.Make (F)
  module Stats = Stats.Make (F)
  module Popular = Popular.Make (F)
  module Countmin = Countmin.Make (F)

  type entry = {
    name : string;  (** the AFE's own name *)
    family : string;  (** source module, lower-case *)
    raw : C.t;  (** the builder's output *)
    optimized : C.t;  (** the deployed circuit *)
    sample : Rng.t -> F.t array;
        (** a valid encoding of a random in-domain input *)
  }

  let entry ~family (afe : ('a, 'b) A.t) (gen : Rng.t -> 'a) : entry =
    {
      name = afe.A.name;
      family;
      raw = afe.A.raw_circuit;
      optimized = afe.A.circuit;
      sample = (fun rng -> afe.A.encode ~rng (gen rng));
    }

  (** The specimen list. Parameters are sized so even the largest circuit
      stays in the hundreds of gates — big enough to exercise every
      optimizer pass, small enough for thousand-input equivalence runs.
      Built on demand: constructing an entry optimizes its circuit. *)
  let all () : entry list =
    [
      entry ~family:"boolean" (Boolean.bool_or ()) (fun rng -> Rng.bool rng);
      entry ~family:"sum" (Sum.sum ~bits:8) (fun rng -> Rng.int_below rng 256);
      entry ~family:"histogram" (Histogram.histogram ~buckets:12) (fun rng ->
          Rng.int_below rng 12);
      entry ~family:"minmax"
        (Minmax.max_small ~range:16 ())
        (fun rng -> Rng.int_below rng 16);
      entry ~family:"product"
        (Product.product ~bits:10 ~frac_bits:4)
        (fun rng -> 1. +. Rng.float01 rng);
      entry ~family:"fixed_point"
        (Fixed_point.sum { int_bits = 6; frac_bits = 4 })
        (fun rng -> Rng.float01 rng *. 63.9);
      entry ~family:"regression"
        (Regression.least_squares ~d:2 ~bits:6)
        (fun rng ->
          {
            Regression.features =
              Array.init 2 (fun _ -> Rng.int_below rng 64);
            target = Rng.int_below rng 64;
          });
      (* The linalg module itself is decode-side float code with no Valid
         circuit of its own; its census specimen is the R² AFE, whose
         decode is the library's other Linalg consumer. *)
      entry ~family:"linalg"
        (Regression.r_squared
           ~model:{ Regression.intercept = 3; coefs = [| 1; 2 |]; frac_bits = 2 }
           ~bits:6)
        (fun rng ->
          {
            Regression.features =
              Array.init 2 (fun _ -> Rng.int_below rng 64);
            target = Rng.int_below rng 64;
          });
      entry ~family:"stats" (Stats.variance ~bits:8) (fun rng ->
          Rng.int_below rng 256);
      entry ~family:"popular" (Popular.most_popular ~bits:8) (fun rng ->
          Array.init 8 (fun _ -> Rng.bool rng));
      entry ~family:"popular"
        (Popular.popular_buckets ~bits:8 ~buckets:6)
        (fun rng -> Array.init 8 (fun _ -> Rng.bool rng));
      entry ~family:"countmin"
        (Countmin.count_min ~params:{ Countmin.depth = 3; width = 10 })
        (fun rng -> Printf.sprintf "key-%d" (Rng.int_below rng 1000));
    ]
end

(** Boolean OR / AND and set union / intersection (paper §5.2).

    The paper's OR encoding works over F_2^λ: zero for false, a random
    λ-bit string for true; the xor-aggregate is zero iff every input was
    false. We adapt the same idea to our prime field F_p (where additive
    shares already live): false ↦ the zero vector, true ↦ a vector of
    [lambda_elems] uniform field elements. The sum over clients is zero iff
    all inputs were false, except with probability ≤ |F|^{-λ} (a client's
    random vector, and hence any sum involving it, is uniform). With the
    87-bit field one element already gives a 2^{-87} failure probability.

    Every vector is a valid encoding, so the Valid circuit has no mul gates
    and no constraints — exactly as in the paper — and a SNIP over it is
    trivially small. AND is OR under De Morgan; sets over a small universe
    are element-wise OR (union) / AND (intersection). *)

module Make (F : Prio_field.Field_intf.S) = struct
  module A = Afe.Make (F)
  module C = A.C
  module Rng = Prio_crypto.Rng

  let trivial_circuit ~len =
    C.Builder.build (C.Builder.create ~num_inputs:len)

  let encode_or ~rng ~lambda_elems value : F.t array =
    if value then Array.init lambda_elems (fun _ -> F.random rng)
    else Array.make lambda_elems F.zero

  let decode_or (sigma : F.t array) = not (Array.for_all F.is_zero sigma)

  (** OR of the clients' booleans. *)
  let bool_or ?(lambda_elems = 1) () : (bool, bool) A.t =
    let circuit, raw_circuit = A.compile (trivial_circuit ~len:lambda_elems) in
    {
      A.name = "or";
      encoding_len = lambda_elems;
      trunc_len = lambda_elems;
      circuit;
      raw_circuit;
      encode = (fun ~rng x -> encode_or ~rng ~lambda_elems x);
      decode = (fun ~n:_ sigma -> decode_or sigma);
      leakage = "only the OR (or-private)";
    }

  (** AND of the clients' booleans (De Morgan on {!bool_or}). *)
  let bool_and ?(lambda_elems = 1) () : (bool, bool) A.t =
    let circuit, raw_circuit = A.compile (trivial_circuit ~len:lambda_elems) in
    {
      A.name = "and";
      encoding_len = lambda_elems;
      trunc_len = lambda_elems;
      circuit;
      raw_circuit;
      encode = (fun ~rng x -> encode_or ~rng ~lambda_elems (not x));
      decode = (fun ~n:_ sigma -> not (decode_or sigma));
      leakage = "only the AND (and-private)";
    }

  (** Union of subsets of a universe of [universe] elements: element-wise
      OR of characteristic vectors. Decodes to the membership vector. *)
  let set_union ~universe ?(lambda_elems = 1) () : (bool array, bool array) A.t =
    let len = universe * lambda_elems in
    let circuit, raw_circuit = A.compile (trivial_circuit ~len) in
    {
      A.name = Printf.sprintf "set-union%d" universe;
      encoding_len = len;
      trunc_len = len;
      circuit;
      raw_circuit;
      encode =
        (fun ~rng membership ->
          if Array.length membership <> universe then
            invalid_arg "set_union.encode: wrong universe size";
          Array.concat
            (Array.to_list
               (Array.map (encode_or ~rng ~lambda_elems) membership)));
      decode =
        (fun ~n:_ sigma ->
          Array.init universe (fun e ->
              decode_or (Array.sub sigma (e * lambda_elems) lambda_elems)));
      leakage = "only the union";
    }

  (** Intersection of subsets: element-wise AND. *)
  let set_intersection ~universe ?(lambda_elems = 1) () :
      (bool array, bool array) A.t =
    let u = set_union ~universe ~lambda_elems () in
    {
      u with
      A.name = Printf.sprintf "set-intersection%d" universe;
      encode =
        (fun ~rng membership -> u.A.encode ~rng (Array.map not membership));
      decode = (fun ~n sigma -> Array.map not (u.A.decode ~n sigma));
      leakage = "only the intersection";
    }
end

(** Variance and standard deviation (paper §5.2, "Variance and stddev").

    Var(X) = E[X²] − (E[X])², so each client encodes (x, x², bits of x) and
    the servers aggregate the first two components. Valid checks the bit
    decomposition of x (b mul gates) and that the second component is the
    square of the first (1 mul gate).

    Leakage: the sum of encodings reveals both Σx and Σx², i.e. the mean as
    well as the variance — this AFE is fˆ-private for fˆ = (E[X], Var(X)). *)

module Make (F : Prio_field.Field_intf.S) = struct
  module A = Afe.Make (F)
  module C = A.C

  type moments = { mean : float; variance : float; stddev : float }

  let circuit ~bits =
    (* inputs: x, x², β_0..β_{b−1} *)
    let b = C.Builder.create ~num_inputs:(bits + 2) in
    let x = C.Builder.input b 0 in
    let x2 = C.Builder.input b 1 in
    let bit_wires = List.init bits (fun i -> C.Builder.input b (i + 2)) in
    (* Constraint group 1: x is a b-bit integer. *)
    A.assert_int_bits b ~value:x ~bits:bit_wires;
    (* Constraint group 2: x² is the square of a range-checked x. The
       group is stated self-contained — it re-asserts its operand's range
       rather than assuming group 1 ran — and the circuit optimizer
       deduplicates the overlap, so the deployed circuit still costs
       bits + 1 mul gates. *)
    A.assert_int_bits b ~value:x ~bits:bit_wires;
    C.Builder.assert_square b ~x ~y:x2;
    C.Builder.build b

  let encode ~bits x : F.t array =
    if x < 0 || (bits < 31 && x lsr bits <> 0) then
      invalid_arg "Stats.encode: input out of range";
    Array.append
      [| F.of_int x; F.of_int (x * x) |]
      (A.bits_of_int x bits)

  (** Variance/stddev of b-bit integers. Field sizing: |F| > n·2^{2b}. *)
  let variance ~bits : (int, moments) A.t =
    let circuit, raw_circuit = A.compile (circuit ~bits) in
    {
      A.name = Printf.sprintf "variance%d" bits;
      encoding_len = bits + 2;
      trunc_len = 2;
      circuit;
      raw_circuit;
      encode = (fun ~rng:_ x -> encode ~bits x);
      decode =
        (fun ~n sigma ->
          if n = 0 then { mean = nan; variance = nan; stddev = nan }
          else begin
            let nf = float_of_int n in
            let mean = A.to_float sigma.(0) /. nf in
            let ex2 = A.to_float sigma.(1) /. nf in
            let variance = ex2 -. (mean *. mean) in
            { mean; variance; stddev = sqrt (Stdlib.max 0. variance) }
          end);
      leakage = "both E[X] and E[X^2] (fˆ = mean and variance)";
    }
end

(** Affine-aggregatable encodings (AFEs) — the paper's §5 / Appendix F.

    An AFE for an aggregation function f : D^n → A packages (1) a
    possibly-randomized encoder D → F^k, (2) a Valid circuit accepting
    exactly the well-formed encodings, and (3) a decoder applied to the
    component-wise sum of the first k' ≤ k encoding components over all
    clients. Prio computes f privately by secret-sharing encodings,
    SNIP-verifying Valid, accumulating truncated shares and publishing
    only the sum (§5.1). Each instance documents its leakage fˆ — what the
    published sum reveals beyond f itself. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module C : module type of Prio_circuit.Circuit.Make (F)
  module Opt : module type of Prio_circuit.Opt.Make (F)
  module Rng = Prio_crypto.Rng
  module B = Prio_bigint.Bigint

  type ('input, 'output) t = {
    name : string;
    encoding_len : int;  (** k: elements in a full encoding *)
    trunc_len : int;  (** k' ≤ k: elements entering the accumulator *)
    circuit : C.t;
        (** the Valid predicate over F^k as deployed — the optimized form
            of [raw_circuit]; this is what SNIPs prove and servers walk *)
    raw_circuit : C.t;
        (** the builder's output before {!Prio_circuit.Opt.optimize} —
            for the gate census, budget lint and equivalence tests *)
    encode : rng:Rng.t -> 'input -> F.t array;
    decode : n:int -> F.t array -> 'output;
        (** [n] is the number of accumulated clients *)
    leakage : string;  (** the fˆ this AFE is private with respect to *)
  }

  val compile : C.t -> C.t * C.t
  (** [(optimized, raw)] of a builder's circuit — the pair every AFE
      constructor stores as [(circuit, raw_circuit)]. *)

  val well_formed : ('a, 'b) t -> bool
  (** Arity/truncation consistency between encoder and both circuits. *)

  val valid : ('a, 'b) t -> F.t array -> bool
  val truncate : ('a, 'b) t -> F.t array -> F.t array
  val aggregate : ('a, 'b) t -> F.t array list -> F.t array

  val run_plain : ('a, 'b) t -> rng:Rng.t -> 'a list -> 'b
  (** Reference path with no crypto: encode, aggregate, decode — pins
      down what the full protocol must output. *)

  (** {1 Combinators} *)

  val map_output : ('b -> 'c) -> ('a, 'b) t -> ('a, 'c) t
  val contramap_input : ('c -> 'a) -> ('a, 'b) t -> ('c, 'b) t

  val pair : ('a, 'b) t -> ('c, 'd) t -> ('a * 'c, 'b * 'd) t
  (** Two statistics in one submission under one SNIP; the combined
      encoding interleaves the truncated prefixes so accumulator
      truncation keeps both aggregates. *)

  (** {1 Helpers shared by the instances} *)

  val bits_of_int : int -> int -> F.t array
  (** Little-endian bits of a non-negative integer, fixed width. *)

  val to_int_exn : F.t -> int
  val to_float : F.t -> float

  val assert_int_bits : C.Builder.b -> value:C.wire -> bits:C.wire list -> unit
  (** Bits are bits and recompose to [value] — |bits| mul gates. *)
end

(** MIN and MAX (paper §5.2, "min and max").

    Small ranges {0, …, B−1}: encode x in "staircase unary" — position i
    carries a boolean "x ≥ i" — and OR the vectors across clients; the
    largest position still set is the maximum. Replacing OR with AND gives
    the minimum. Booleans use the randomized OR encoding of {!Boolean}, so
    all encodings are valid and the circuit is constraint-free, exactly as
    in the paper. A dishonest client can only set a staircase of its choice,
    i.e. misreport its value — robustness is preserved.

    Large ranges: [approx_max ~c ~range] buckets {0, …, B−1} into
    logₐ B geometric bins [c^j, c^{j+1}) and runs the small-range scheme on
    bins, giving a multiplicative c-approximation (the paper's
    "c-approximation of the min and max"). *)

module Make (F : Prio_field.Field_intf.S) = struct
  module A = Afe.Make (F)
  module Bool = Boolean.Make (F)
  module C = A.C

  let staircase ~range x = Array.init range (fun i -> x >= i)

  (** Exact maximum over {0,…,range−1}. *)
  let max_small ~range ?(lambda_elems = 1) () : (int, int) A.t =
    let u = Bool.set_union ~universe:range ~lambda_elems () in
    {
      A.name = Printf.sprintf "max%d" range;
      encoding_len = u.A.encoding_len;
      trunc_len = u.A.trunc_len;
      circuit = u.A.circuit;
      raw_circuit = u.A.raw_circuit;
      encode =
        (fun ~rng x ->
          if x < 0 || x >= range then invalid_arg "max.encode: out of range";
          u.A.encode ~rng (staircase ~range x));
      decode =
        (fun ~n sigma ->
          let present = u.A.decode ~n sigma in
          let best = ref (-1) in
          Array.iteri (fun i p -> if p then best := i) present;
          !best);
      leakage = "the OR of the unary encodings (max-private)";
    }

  (** Exact minimum over {0,…,range−1} (AND of staircases). *)
  let min_small ~range ?(lambda_elems = 1) () : (int, int) A.t =
    let u = Bool.set_intersection ~universe:range ~lambda_elems () in
    {
      A.name = Printf.sprintf "min%d" range;
      encoding_len = u.A.encoding_len;
      trunc_len = u.A.trunc_len;
      circuit = u.A.circuit;
      raw_circuit = u.A.raw_circuit;
      encode =
        (fun ~rng x ->
          if x < 0 || x >= range then invalid_arg "min.encode: out of range";
          u.A.encode ~rng (staircase ~range x));
      decode =
        (fun ~n sigma ->
          let all = u.A.decode ~n sigma in
          let best = ref (-1) in
          Array.iteri (fun i p -> if p then best := i) all;
          !best);
      leakage = "the AND of the unary encodings (min-private)";
    }

  let num_bins ~c ~range =
    let rec go bins top = if top >= range then bins else go (bins + 1) (top * c) in
    go 1 c

  let bin_of ~c x =
    let rec go j top = if x < top then j else go (j + 1) (top * c) in
    go 0 c

  (** c-approximate maximum over {0,…,range−1}: returns the lower edge of
      the highest occupied geometric bin; the true maximum lies within a
      factor of c above it. *)
  let approx_max ~c ~range ?(lambda_elems = 1) () : (int, int) A.t =
    if c < 2 then invalid_arg "approx_max: factor must be >= 2";
    let bins = num_bins ~c ~range in
    let inner = max_small ~range:bins ~lambda_elems () in
    {
      A.name = Printf.sprintf "approx-max-c%d-B%d" c range;
      encoding_len = inner.A.encoding_len;
      trunc_len = inner.A.trunc_len;
      circuit = inner.A.circuit;
      raw_circuit = inner.A.raw_circuit;
      encode =
        (fun ~rng x ->
          if x < 0 || x >= range then invalid_arg "approx_max.encode";
          inner.A.encode ~rng (bin_of ~c x));
      decode =
        (fun ~n sigma ->
          let bin = inner.A.decode ~n sigma in
          if bin < 0 then -1
          else if bin = 0 then 0
          else begin
            (* lower edge of bin: c^bin... bin j covers [c^j, c^{j+1}) with
               bin 0 covering [0, c) *)
            let rec pow acc j = if j = 0 then acc else pow (acc * c) (j - 1) in
            pow 1 bin
          end);
      leakage = "the occupied geometric bins (approximate-max-private)";
    }
end

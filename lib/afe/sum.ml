(** Integer sum and arithmetic mean (paper §5.2, "Integer sum and mean").

    Encode(x) = (x, β_0, …, β_{b−1}) where the β are the binary digits of
    the b-bit integer x. Valid checks each β is a bit (b mul gates) and that
    x = Σ 2^i β_i (affine). Only the first component enters the aggregate,
    so the servers publish exactly Σ_i x_i.

    The field must satisfy |F| > n·2^b so the sum cannot wrap (§5.2). *)

module Make (F : Prio_field.Field_intf.S) = struct
  module A = Afe.Make (F)
  module C = A.C
  module B = Prio_bigint.Bigint

  let circuit ~bits =
    let b = C.Builder.create ~num_inputs:(bits + 1) in
    let value = C.Builder.input b 0 in
    let bit_wires = List.init bits (fun i -> C.Builder.input b (i + 1)) in
    A.assert_int_bits b ~value ~bits:bit_wires;
    C.Builder.build b

  let encode ~bits x : F.t array =
    if x < 0 || (bits < 62 && x lsr bits <> 0) then
      invalid_arg "Sum.encode: input out of range";
    Array.append [| F.of_int x |] (A.bits_of_int x bits)

  (** Sum of b-bit integers; decodes to the exact integer sum. *)
  let sum ~bits : (int, B.t) A.t =
    let circuit, raw_circuit = A.compile (circuit ~bits) in
    {
      A.name = Printf.sprintf "sum%d" bits;
      encoding_len = bits + 1;
      trunc_len = 1;
      circuit;
      raw_circuit;
      encode = (fun ~rng:_ x -> encode ~bits x);
      decode = (fun ~n:_ sigma -> F.to_bigint sigma.(0));
      leakage = "the sum itself (sum-private)";
    }

  (** Arithmetic mean of b-bit integers. *)
  let mean ~bits : (int, float) A.t =
    let s = sum ~bits in
    {
      s with
      A.name = Printf.sprintf "mean%d" bits;
      decode =
        (fun ~n sigma ->
          if n = 0 then nan else A.to_float sigma.(0) /. float_of_int n);
      leakage = "the sum of the inputs (hence the mean and n·mean)";
    }

  (** Simple count of set bits: the b = 1 special case of {!sum} used by the
      simple scheme of §3, kept separate because its Valid circuit has a
      single mul gate. *)
  let count_bits : (bool, int) A.t =
    let s = sum ~bits:1 in
    {
      A.name = "count";
      encoding_len = s.A.encoding_len;
      trunc_len = s.A.trunc_len;
      circuit = s.A.circuit;
      raw_circuit = s.A.raw_circuit;
      encode = (fun ~rng:_ x -> encode ~bits:1 (if x then 1 else 0));
      decode = (fun ~n:_ sigma -> A.to_int_exn sigma.(0));
      leakage = "the count itself";
    }
end

(** Most-popular string (paper, Appendix G "Most popular").

    When one b-bit string is held by more than half of the clients, each
    client encodes its string bit-by-bit as field elements; Valid checks
    each is a bit (b mul gates). The aggregate's i-th component counts the
    clients whose i-th bit is one; rounding each count to 0 or n recovers
    the majority string bit-by-bit.

    Leakage: the per-position bit counts (the AFE is private with respect
    to the function that outputs those b counts). *)

module Make (F : Prio_field.Field_intf.S) = struct
  module A = Afe.Make (F)
  module C = A.C

  let circuit ~bits =
    let b = C.Builder.create ~num_inputs:bits in
    for i = 0 to bits - 1 do
      C.Builder.assert_bit b (C.Builder.input b i)
    done;
    C.Builder.build b

  (** Most-popular b-bit string, correct whenever some string has > n/2
      support. Input and output are little-endian bit arrays. *)
  let most_popular ~bits : (bool array, bool array) A.t =
    let circuit, raw_circuit = A.compile (circuit ~bits) in
    {
      A.name = Printf.sprintf "most-popular%d" bits;
      encoding_len = bits;
      trunc_len = bits;
      circuit;
      raw_circuit;
      encode =
        (fun ~rng:_ s ->
          if Array.length s <> bits then invalid_arg "most_popular.encode";
          Array.map (fun bit -> if bit then F.one else F.zero) s);
      decode =
        (fun ~n sigma ->
          Array.map (fun c -> 2 * A.to_int_exn c > n) sigma);
      leakage = "per-position bit counts";
    }

  let string_of_bits bits =
    String.init (Array.length bits) (fun i -> if bits.(i) then '1' else '0')

  let bits_of_string s =
    Array.init (String.length s) (fun i -> s.[i] = '1')

  (* ------------------------------------------------------------------ *)
  (* Bucketed variant (Appendix G, after Bassily–Smith).                 *)
  (* ------------------------------------------------------------------ *)

  (** Recover strings held by a c-fraction of clients for c ≤ 1/2: clients
      are hashed (by a public hash of their string) into [buckets] buckets;
      with buckets ≳ 1/c, a string with popularity ≥ c·n is a majority
      within its own bucket with high probability, so the per-bucket
      majority decoder of {!most_popular} recovers it.

      The encoding is the client's bit-string placed in its bucket's block
      plus a one-hot bucket indicator (so Decode knows each bucket's
      population); all other blocks are zero. Valid checks every
      coordinate is a bit and the indicator is one-hot — a malicious
      client can stuff one bucket with one vote, no more.

      Decode returns, per bucket, [Some candidate] (its majority string)
      when the bucket is non-empty.

      Leakage: per-bucket population and per-position bit counts. *)
  let popular_buckets ~bits ~buckets : (bool array, (int * string) list) A.t =
    let block b = buckets + (b * bits) in
    let len = buckets + (buckets * bits) in
    let bucket_of s =
      let d = Prio_crypto.Sha256.digest_string ("popular-bucket|" ^ s) in
      (Char.code (Bytes.get d 0) lor (Char.code (Bytes.get d 1) lsl 8))
      mod buckets
    in
    let circuit =
      let b = C.Builder.create ~num_inputs:len in
      (* Every coordinate — indicator block and payload blocks alike — is
         a bit. *)
      for i = 0 to len - 1 do
        C.Builder.assert_bit b (C.Builder.input b i)
      done;
      (* And the bucket indicator is one-hot. [assert_one_hot] is a
         self-contained gadget that re-checks its wires are bits; the
         overlap with the blanket sweep above is exactly what the circuit
         optimizer deduplicates, leaving the deployed circuit at len mul
         gates. *)
      C.Builder.assert_one_hot b
        (List.init buckets (fun i -> C.Builder.input b i));
      C.Builder.build b
    in
    let circuit, raw_circuit = A.compile circuit in
    {
      A.name = Printf.sprintf "popular-%db-%dbuckets" bits buckets;
      encoding_len = len;
      trunc_len = len;
      circuit;
      raw_circuit;
      encode =
        (fun ~rng:_ s ->
          if Array.length s <> bits then invalid_arg "popular_buckets.encode";
          let enc = Array.make len F.zero in
          let bucket = bucket_of (string_of_bits s) in
          enc.(bucket) <- F.one;
          Array.iteri
            (fun i bit -> if bit then enc.(block bucket + i) <- F.one)
            s;
          enc);
      decode =
        (fun ~n:_ sigma ->
          List.filter_map
            (fun bucket ->
              let population = A.to_int_exn sigma.(bucket) in
              if population = 0 then None
              else begin
                let candidate =
                  Array.init bits (fun i ->
                      2 * A.to_int_exn sigma.(block bucket + i) > population)
                in
                Some (population, string_of_bits candidate)
              end)
            (List.init buckets Fun.id));
      leakage = "per-bucket populations and per-position bit counts";
    }
end

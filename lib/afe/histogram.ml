(** Frequency counts over a small domain (paper §5.2, "Frequency count").

    Encode x ∈ {0,…,B−1} as the one-hot vector e_x ∈ F^B. Valid checks
    every component is a bit (B mul gates) and that they sum to one
    (affine). The aggregate is the full histogram; Decode is the identity.
    Needs |F| > n. Quantiles and other distribution statistics derive from
    the histogram (§5.2); the paper's cell-signal-strength application is a
    histogram of (grid cell × signal level) values. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module A = Afe.Make (F)
  module C = A.C

  let circuit ~buckets =
    let b = C.Builder.create ~num_inputs:buckets in
    let ws = List.init buckets (fun i -> C.Builder.input b i) in
    C.Builder.assert_one_hot b ws;
    C.Builder.build b

  let encode ~buckets x : F.t array =
    if x < 0 || x >= buckets then invalid_arg "Histogram.encode: out of range";
    Array.init buckets (fun i -> if i = x then F.one else F.zero)

  (** Histogram over B buckets: decodes to per-bucket counts. *)
  let histogram ~buckets : (int, int array) A.t =
    let circuit, raw_circuit = A.compile (circuit ~buckets) in
    {
      A.name = Printf.sprintf "histogram%d" buckets;
      encoding_len = buckets;
      trunc_len = buckets;
      circuit;
      raw_circuit;
      encode = (fun ~rng:_ x -> encode ~buckets x);
      decode = (fun ~n:_ sigma -> Array.map A.to_int_exn sigma);
      leakage = "the histogram itself (f-private)";
    }

  (** q-th quantile (0 ≤ q ≤ 1) computed from the histogram aggregate. *)
  let quantile_of_counts counts q =
    let total = Array.fold_left ( + ) 0 counts in
    if total = 0 then -1
    else begin
      let target = int_of_float (ceil (q *. float_of_int total)) in
      let target = Stdlib.max 1 (Stdlib.min total target) in
      let acc = ref 0 and ans = ref (-1) in
      (try
         Array.iteri
           (fun i c ->
             acc := !acc + c;
             if !acc >= target then begin
               ans := i;
               raise Exit
             end)
           counts
       with Exit -> ());
      !ans
    end
end

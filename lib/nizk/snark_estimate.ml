(** Analytic cost model for a zkSNARK-based alternative (Figure 7,
    "SNARK (Est.)").

    The paper does not run a SNARK; it conservatively estimates client
    proving time from libsnark/Pinocchio measurements: every multiplication
    gate of the statement costs the prover a constant number of
    exponentiations, and making the statement concise requires hashing the
    s·L-element submission inside the SNARK at ~300 multiplication gates per
    hashed element (subset-sum hash). We reproduce the same estimation
    procedure against our own measured exponentiation cost, so the estimate
    scales with this machine the way the paper's scaled with theirs. *)

type params = {
  exps_per_gate : float;
      (** prover exponentiations per R1CS multiplication gate *)
  gates_per_hashed_element : int;
      (** subset-sum hash cost per field element hashed "inside" the SNARK *)
}

let default = { exps_per_gate = 3.; gates_per_hashed_element = 300 }

(** Measure the cost of one Schnorr-group exponentiation (seconds), the
    unit everything else is priced in. *)
let measure_exp_seconds ?(iters = 50) () =
  let rng = Prio_crypto.Rng.of_string_seed "snark-estimate" in
  let e = Group.random_exponent rng in
  let x = ref Group.g in
  (* warm-up *)
  x := Group.exp !x e;
  (* measuring wall-clock cost is this function's whole purpose *)
  (* prio-lint: allow no-ambient-clock *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    x := Group.exp !x e
  done;
  (* prio-lint: allow no-ambient-clock *)
  let t1 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity !x);
  (t1 -. t0) /. float_of_int iters

(** Estimated client proving time (seconds) for a submission of [l] field
    elements to [s] servers whose Valid circuit has [mul_gates]
    multiplication gates. *)
let client_seconds ?(params = default) ~exp_seconds ~mul_gates ~l ~s () =
  let hash_gates = s * l * params.gates_per_hashed_element in
  let total_gates = mul_gates + hash_gates in
  float_of_int total_gates *. params.exps_per_gate *. exp_seconds

(** The SNARK's one redeeming quality (Table 2 / §6.2): proofs are constant
    size — 288 bytes for Pinocchio at the 128-bit level. *)
let proof_bytes = 288

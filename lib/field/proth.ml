(* Prime fields from Proth primes p = c * 2^k + 1, on top of Montgomery
   arithmetic from [Prio_bigint]. These replace the paper's FLINT-backed
   87-bit and 265-bit FFT-friendly fields. *)

module B = Prio_bigint.Bigint

module type Config = sig
  val name : string
  val prime : string (* decimal or 0x-hex *)
  val generator : int (* generator of the full multiplicative group *)
  val two_adicity : int
  val odd_cofactor : string (* c, the odd part of p - 1 *)
end

module Make (C : Config) : Field_intf.S = struct
  type t = B.Mont.elt

  let name = C.name
  let order = B.of_string C.prime
  let num_bits = B.num_bits order
  let bytes_len = (num_bits + 7) / 8
  let two_adicity = C.two_adicity

  let ctx = B.Mont.create order

  let zero = B.Mont.zero ctx
  let one = B.Mont.one ctx
  let of_bigint x = B.Mont.to_mont ctx x
  let of_int x = of_bigint (B.of_int x)
  let two = of_int 2
  let to_bigint x = B.Mont.of_mont ctx x

  let add = B.Mont.add ctx
  let sub = B.Mont.sub ctx
  let neg = B.Mont.neg ctx
  let mul = B.Mont.mul ctx
  let sqr = B.Mont.sqr ctx

  let pow_big b e = B.Mont.pow ctx b e
  let pow b e =
    if e < 0 then invalid_arg (name ^ ".pow: negative exponent");
    pow_big b (B.of_int e)

  let p_minus_2 = B.sub order B.two

  let is_zero x = B.Mont.is_zero ctx x

  let inv a = if is_zero a then raise Division_by_zero else pow_big a p_minus_2
  let div a b = mul a (inv b)

  let equal = B.Mont.equal
  let is_one x = equal x one

  let random rng =
    of_bigint (B.random_below ~rand_limb:(fun () -> Prio_crypto.Rng.limb31 rng) order)

  let rec random_nonzero rng =
    let x = random rng in
    if is_zero x then random_nonzero rng else x

  let to_bytes x = B.to_bytes_be (to_bigint x) bytes_len

  let of_bytes b =
    if not (Int.equal (Bytes.length b) bytes_len) then
      invalid_arg (name ^ ".of_bytes: wrong width");
    let v = B.of_bytes_be b in
    (* canonicality check on public wire bytes, not secret data *)
    (* prio-lint: allow ct-compare *)
    if B.compare v order >= 0 then invalid_arg (name ^ ".of_bytes: not canonical");
    of_bigint v

  let to_string x = B.to_string (to_bigint x)
  let pp fmt x = Format.pp_print_string fmt (to_string x)

  (* Sanity-check the field constants once at startup: p must be an odd
     prime of the advertised shape, and g must be a generator. *)
  let odd_cofactor = B.of_string C.odd_cofactor
  let () =
    assert (B.equal order (B.succ (B.shift_left odd_cofactor two_adicity)));
    assert (B.is_odd odd_cofactor);
    let g = of_int C.generator in
    let pm1 = B.pred order in
    assert (not (is_one (pow_big g (B.shift_right pm1 1))))

  let root_table =
    lazy
      (let t = Array.make (two_adicity + 1) one in
       t.(two_adicity) <- pow_big (of_int C.generator) odd_cofactor;
       for k = two_adicity - 1 downto 0 do
         t.(k) <- sqr t.(k + 1)
       done;
       t)

  let root_of_unity k =
    if k < 0 || k > two_adicity then
      invalid_arg (name ^ ".root_of_unity: out of range");
    (Lazy.force root_table).(k)

  (* The generator check above only rules out quadratic residues; a bad
     Config could still derive a low-order "root of unity" and silently
     corrupt every NTT. Pin the two-adic root to exact order 2^k: the
     table entry for k = adicity squares down to the primitive square
     root of unity, which must be −1 (and square back to 1). *)
  let () =
    if two_adicity >= 1 then begin
      let r2 = root_of_unity 1 in
      assert (equal r2 (neg one));
      assert (is_one (sqr r2))
    end
end

(** Instrumented field: wraps any field instance and counts operations.

    Table 2 of the paper is an {e asymptotic} comparison (client performs
    Θ(M log M) field multiplications and zero exponentiations, servers
    exchange Θ(1) elements); wrapping the SNIP in this functor lets the
    test suite verify those operation counts empirically rather than by
    inspection. *)

type stats = {
  mutable muls : int;
  mutable adds : int;  (** additions and subtractions *)
  mutable invs : int;
}

module Make (F : Field_intf.S) : sig
  include Field_intf.S

  val stats : stats
  val reset : unit -> unit
end

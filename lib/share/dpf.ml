(** Two-party distributed point functions (function secret sharing).

    The paper's Appendix G ("Share compression") observes that a client
    whose encoding is a one-hot vector — a histogram vote, or each row of a
    count-min sketch — need not ship Θ(domain) field elements per server:
    with two servers, a {e distributed point function} (Boyle–Gilboa–Ishai)
    splits the point function f(x) = β·[x = α] into two keys of size
    O(log |domain|) such that the two servers' evaluations sum to the
    one-hot vector, yet either key alone reveals nothing about α or β.

    This is the tree-based BGI construction over our ChaCha20 PRG: each key
    holds a root seed plus one correction word per level and a final
    field-element correction. [eval_all] expands a key into the server's
    full additive share of the length-2^bits vector.

    Robustness note: as the paper says, combining compressed shares with
    SNIP validity checking is future work (it needs sketching-based
    checks); here DPF submissions are the two-server analogue of the
    no-robustness pipeline, and the tests cover privacy-shape and
    correctness properties only. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module Rng = Prio_crypto.Rng
  module Chacha20 = Prio_crypto.Chacha20

  let seed_len = 16

  (* PRG: one ChaCha20 block keyed by the 16-byte seed (padded), yielding
     two child seeds and two child control bits. *)
  let expand (seed : Bytes.t) : Bytes.t * bool * Bytes.t * bool =
    let key = Bytes.make 32 '\000' in
    Bytes.blit seed 0 key 0 seed_len;
    let block = Chacha20.block ~key ~counter:0 ~nonce:(Bytes.make 12 '\000') in
    let left = Bytes.sub block 0 seed_len in
    let right = Bytes.sub block seed_len seed_len in
    let t_left = Char.code (Bytes.get block 32) land 1 = 1 in
    let t_right = Char.code (Bytes.get block 33) land 1 = 1 in
    (left, t_left, right, t_right)

  (* field element pseudo-randomly derived from a leaf seed *)
  let convert (seed : Bytes.t) : F.t =
    F.random (Rng.of_seed seed)

  let xor_bytes a b =
    Bytes.init (Bytes.length a) (fun i ->
        Char.chr (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i)))

  (* XOR of the secret-derived control bits. Annotated bool (<>) compiles
     to one immediate comparison (constant-time); spelling it inline would
     be indistinguishable from polymorphic equality, so the one waiver
     lives on this audited helper. *)
  (* prio-lint: allow ct-compare *)
  let xor (a : bool) (b : bool) = a <> b

  type correction = {
    cw_seed : Bytes.t;
    cw_t_left : bool;
    cw_t_right : bool;
  }

  type key = {
    party : int; (* 0 or 1 *)
    bits : int; (* domain is [0, 2^bits) *)
    root : Bytes.t;
    corrections : correction array; (* one per level *)
    final : F.t; (* output correction word *)
  }

  let key_bytes k =
    (* root seed + per-level (seed + 2 bits ≈ 1 byte) + final element *)
    seed_len + (Array.length k.corrections * (seed_len + 1)) + F.bytes_len

  (** [gen rng ~bits ~alpha ~beta] produces the two parties' keys for the
      point function that is [beta] at [alpha] and zero elsewhere on
      [0, 2^bits). On the path to α the parties' control bits stay unequal
      (their seeds stay independent); off the path the correction words
      force their states equal, so every off-path leaf cancels. *)
  let gen rng ~bits ~alpha ~beta : key * key =
    if bits < 1 || bits > 30 then invalid_arg "Dpf.gen: bits out of range";
    if alpha < 0 || alpha >= 1 lsl bits then invalid_arg "Dpf.gen: alpha out of range";
    let root0 = Rng.bytes rng seed_len in
    let root1 = Rng.bytes rng seed_len in
    let s0 = ref root0 and s1 = ref root1 in
    let t0 = ref false and t1 = ref true in
    let corrections =
      Array.make bits { cw_seed = Bytes.create 0; cw_t_left = false; cw_t_right = false }
    in
    for i = 0 to bits - 1 do
      let bit = (alpha lsr (bits - 1 - i)) land 1 = 1 in
      let l0, tl0, r0, tr0 = expand !s0 in
      let l1, tl1, r1, tr1 = expand !s1 in
      let s_lose0, s_lose1 = if bit then (l0, l1) else (r0, r1) in
      let s_keep0, s_keep1 = if bit then (r0, r1) else (l0, l1) in
      let t_keep0, t_keep1 = if bit then (tr0, tr1) else (tl0, tl1) in
      let cw_seed = xor_bytes s_lose0 s_lose1 in
      let cw_t_left = xor (xor tl0 tl1) (not bit) in
      let cw_t_right = xor (xor tr0 tr1) bit in
      corrections.(i) <- { cw_seed; cw_t_left; cw_t_right };
      let cw_t_keep = if bit then cw_t_right else cw_t_left in
      let next_s0 = if !t0 then xor_bytes s_keep0 cw_seed else s_keep0 in
      let next_s1 = if !t1 then xor_bytes s_keep1 cw_seed else s_keep1 in
      let next_t0 = xor t_keep0 (!t0 && cw_t_keep) in
      let next_t1 = xor t_keep1 (!t1 && cw_t_keep) in
      s0 := next_s0;
      s1 := next_s1;
      t0 := next_t0;
      t1 := next_t1
    done;
    let diff = F.sub beta (F.sub (convert !s0) (convert !s1)) in
    let final = if !t1 then F.neg diff else diff in
    ( { party = 0; bits; root = root0; corrections; final },
      { party = 1; bits; root = root1; corrections; final } )

  (** Evaluate one party's key at a single point. The two parties' results
      sum to β at α and to zero elsewhere. *)
  let eval (k : key) (x : int) : F.t =
    if x < 0 || x >= 1 lsl k.bits then invalid_arg "Dpf.eval: out of domain";
    let s = ref k.root and t = ref (k.party = 1) in
    for i = 0 to k.bits - 1 do
      let bit = (x lsr (k.bits - 1 - i)) land 1 = 1 in
      let l, tl, r, tr = expand !s in
      let child_s, child_t = if bit then (r, tr) else (l, tl) in
      let cw = k.corrections.(i) in
      let cw_t = if bit then cw.cw_t_right else cw.cw_t_left in
      let next_s = if !t then xor_bytes child_s cw.cw_seed else child_s in
      let next_t = xor child_t (!t && cw_t) in
      s := next_s;
      t := next_t
    done;
    let v = if !t then F.add (convert !s) k.final else convert !s in
    if k.party = 1 then F.neg v else v

  (** Expand a key into the party's additive share of the whole length-2^bits
      vector (a compressed one-hot submission, Appendix G). Runs the tree
      once per leaf subtree rather than per point. *)
  let eval_all (k : key) : F.t array =
    let n = 1 lsl k.bits in
    let out = Array.make n F.zero in
    (* depth-first expansion sharing internal nodes *)
    let rec walk i s t base =
      if Int.equal i k.bits then begin
        let v = if t then F.add (convert s) k.final else convert s in
        out.(base) <- (if k.party = 1 then F.neg v else v)
      end
      else begin
        let l, tl, r, tr = expand s in
        let cw = k.corrections.(i) in
        let sl = if t then xor_bytes l cw.cw_seed else l in
        let sr = if t then xor_bytes r cw.cw_seed else r in
        let ttl = xor tl (t && cw.cw_t_left) in
        let ttr = xor tr (t && cw.cw_t_right) in
        walk (i + 1) sl ttl (base lsl 1);
        walk (i + 1) sr ttr ((base lsl 1) lor 1)
      end
    in
    walk 0 k.root (k.party = 1) 0;
    out
end

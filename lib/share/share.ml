(** Secret sharing over a prime field.

    Prio uses s-out-of-s {e additive} sharing (§3): x is split into uniform
    shares summing to x, so any s−1 shares are information-theoretically
    independent of x. The PRG-compressed variant (Appendix I) replaces the
    first s−1 shares by 32-byte seeds, cutting client upload by ~s×.

    {!Shamir} threshold sharing is included for the Appendix B extension
    (robustness against faulty servers at a privacy cost). *)

module Make (F : Prio_field.Field_intf.S) = struct
  module Rng = Prio_crypto.Rng

  (** [split rng ~s x] is s uniform shares summing to x. *)
  let split rng ~s x =
    if s < 1 then invalid_arg "Share.split: need at least one share";
    let shares = Array.make s F.zero in
    let acc = ref F.zero in
    for i = 0 to s - 2 do
      let v = F.random rng in
      shares.(i) <- v;
      acc := F.add !acc v
    done;
    shares.(s - 1) <- F.sub x !acc;
    shares

  let reconstruct shares = Array.fold_left F.add F.zero shares

  (** [split_vector rng ~s v] is an s-array of length-L share vectors. *)
  let split_vector rng ~s (v : F.t array) : F.t array array =
    if s < 1 then invalid_arg "Share.split_vector: need at least one share";
    let l = Array.length v in
    let shares = Array.init s (fun _ -> Array.make l F.zero) in
    for j = 0 to l - 1 do
      let acc = ref F.zero in
      for i = 0 to s - 2 do
        let x = F.random rng in
        shares.(i).(j) <- x;
        acc := F.add !acc x
      done;
      shares.(s - 1).(j) <- F.sub v.(j) !acc
    done;
    shares

  let reconstruct_vector (shares : F.t array array) : F.t array =
    match Array.length shares with
    | 0 -> [||]
    | _ ->
      let l = Array.length shares.(0) in
      Array.init l (fun j ->
          Array.fold_left (fun acc sh -> F.add acc sh.(j)) F.zero shares)

  (** Add [src] into the accumulator [dst] component-wise (the servers'
      Aggregate step). *)
  let add_into ~(dst : F.t array) (src : F.t array) =
    for j = 0 to Array.length dst - 1 do
      dst.(j) <- F.add dst.(j) src.(j)
    done

  (* ------------------------------------------------------------------ *)
  (* PRG-compressed shares (Appendix I).                                 *)
  (* ------------------------------------------------------------------ *)

  type compressed =
    | Seed of Bytes.t  (** expand to a share vector with the PRG *)
    | Explicit of F.t array

  (** Deterministic seed → length-L share vector. *)
  let expand_seed seed ~len : F.t array =
    let prg = Rng.of_seed seed in
    Array.init len (fun _ -> F.random prg)

  let expand c ~len =
    match c with
    | Seed s -> expand_seed s ~len
    | Explicit v ->
      if not (Int.equal (Array.length v) len) then
        invalid_arg "Share.expand: length mismatch";
      v

  (** Split a vector so that the first s−1 shares are PRG seeds and the
      last is explicit: upload cost L + O(s) instead of s·L. *)
  let split_compressed rng ~s (v : F.t array) : compressed array =
    if s < 1 then invalid_arg "Share.split_compressed: need at least one share";
    let l = Array.length v in
    let seeds = Array.init (s - 1) (fun _ -> Rng.fresh_seed rng) in
    let acc = Array.make l F.zero in
    Array.iter (fun seed -> add_into ~dst:acc (expand_seed seed ~len:l)) seeds;
    let last = Array.init l (fun j -> F.sub v.(j) acc.(j)) in
    Array.append (Array.map (fun s -> Seed s) seeds) [| Explicit last |]

  (** Serialized size in bytes of one compressed share. *)
  let compressed_size c =
    match c with
    | Seed _ -> Rng.seed_bytes
    | Explicit v -> Array.length v * F.bytes_len

  (* ------------------------------------------------------------------ *)
  (* Shamir threshold sharing (Appendix B).                              *)
  (* ------------------------------------------------------------------ *)

  module Shamir = struct
    module P = Prio_poly.Poly.Make (F)

    (** [split rng ~threshold ~shares x] evaluates a random degree-
        (threshold−1) polynomial with constant term x at points 1..shares.
        Any [threshold] shares reconstruct x; fewer reveal nothing. *)
    let split rng ~threshold ~shares x =
      if threshold < 1 || shares < threshold then invalid_arg "Shamir.split";
      let coeffs =
        Array.init threshold (fun i -> if i = 0 then x else F.random rng)
      in
      Array.init shares (fun i ->
          let xi = F.of_int (i + 1) in
          (xi, P.eval coeffs xi))

    (** Reconstruct the secret (the value at 0) from >= threshold points. *)
    let reconstruct (points : (F.t * F.t) array) : F.t =
      let poly = P.interpolate points in
      P.eval poly F.zero
  end
end

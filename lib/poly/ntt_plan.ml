(** Cached NTT execution plans.

    A plan bundles everything a size-n transform needs beyond the data
    itself: the bit-reversal permutation table, the full power table
    (ω⁰ … ω^{n−1}) of a primitive n-th root of unity, and the n⁻¹
    scaling constant for the inverse transform. Building one costs n
    field multiplications plus one inversion; executing a transform
    against a plan then needs zero calls to [F.pow] — the butterfly
    twiddle for index j at stage length len is a table read of
    ω^{j·(n/len)}, and the inverse twiddle is ω^{n − j·(n/len)}.

    Plans are immutable once built, so a single mutex-guarded table can
    hand the same plan to every domain of a multicore run. The cache is
    per functor instantiation, i.e. per (field, program module) — sizes
    used by SNIP proving and batched verification repeat endlessly, so
    each table is built exactly once per process. *)

module Make (F : Prio_field.Field_intf.S) = struct
  type t = {
    n : int;
    log2n : int;
    bitrev : int array;
    pows : F.t array; (* ω^0 … ω^{n-1} *)
    n_inv : F.t;
  }

  let size t = t.n
  let log2_size t = t.log2n
  let n_inv t = t.n_inv

  (** ω^{i mod n}; accepts any integer index. *)
  let omega_pow t i =
    let j = i mod t.n in
    t.pows.(if j < 0 then j + t.n else j)

  let is_pow2 n = n > 0 && n land (n - 1) = 0

  let log2 n =
    let rec go k m = if m >= n then k else go (k + 1) (m * 2) in
    go 0 1

  let build n =
    (* same message as the historical uncached path raised for bad sizes *)
    if not (is_pow2 n) then
      invalid_arg "Ntt.transform: size must be a power of two";
    let k = log2 n in
    if k > F.two_adicity then
      invalid_arg "Ntt: size exceeds the field's two-adicity";
    let omega = F.root_of_unity k in
    let pows = Array.make n F.one in
    for i = 1 to n - 1 do
      pows.(i) <- F.mul pows.(i - 1) omega
    done;
    let bitrev =
      Array.init n (fun i ->
          let r = ref 0 and x = ref i in
          for _ = 1 to k do
            r := (!r lsl 1) lor (!x land 1);
            x := !x lsr 1
          done;
          !r)
    in
    { n; log2n = k; bitrev; pows; n_inv = F.inv (F.of_int n) }

  let cache : (int, t) Hashtbl.t = Hashtbl.create 8
  let cache_mutex = Mutex.create ()

  let get n =
    Mutex.lock cache_mutex;
    match Hashtbl.find_opt cache n with
    | Some p ->
      Mutex.unlock cache_mutex;
      p
    | None ->
      (* build under the lock so each size is computed exactly once *)
      let p =
        try build n
        with e ->
          Mutex.unlock cache_mutex;
          raise e
      in
      Hashtbl.add cache n p;
      Mutex.unlock cache_mutex;
      p

  let cached_sizes () =
    Mutex.lock cache_mutex;
    let ks = Hashtbl.fold (fun k _ acc -> k :: acc) cache [] in
    Mutex.unlock cache_mutex;
    List.sort Int.compare ks

  (** In-place radix-2 transform driven entirely by the plan's tables.
      Forward by default; [~inverse:true] runs the inverse butterflies
      but does {e not} apply the 1/n scaling (compose with {!n_inv}). *)
  let transform t ?(inverse = false) (a : F.t array) =
    if Array.length a <> t.n then
      invalid_arg "Ntt_plan.transform: array length does not match plan size";
    let n = t.n in
    let br = t.bitrev in
    for i = 0 to n - 1 do
      let j = br.(i) in
      if i < j then begin
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      end
    done;
    let pows = t.pows in
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let step = n / !len in
      let k = ref 0 in
      while !k < n do
        for j = 0 to half - 1 do
          let idx = j * step in
          let w = if inverse && idx <> 0 then pows.(n - idx) else pows.(idx) in
          let u = a.(!k + j) in
          let v = F.mul w a.(!k + j + half) in
          a.(!k + j) <- F.add u v;
          a.(!k + j + half) <- F.sub u v
        done;
        k := !k + !len
      done;
      len := !len * 2
    done
end

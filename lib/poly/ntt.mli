(** Number-theoretic transform (radix-2 Cooley–Tukey) over an
    FFT-friendly prime field — the replacement for the paper's FLINT FFT,
    and what makes SNIP proving cost O(M log M) (Table 2).

    The size-n transform maps coefficients to evaluations at the powers
    (ω⁰ … ω^{n−1}) of a primitive n-th root of unity; the inverse
    transform interpolates. n must be a power of two with
    log₂ n ≤ [F.two_adicity]. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module Plan : module type of Ntt_plan.Make (F)
  (** The cached-plan layer this instantiation executes against. *)

  val is_pow2 : int -> bool

  val log2 : int -> int
  (** ⌈log₂ n⌉ for n ≥ 1. *)

  val next_pow2 : int -> int
  (** Smallest power of two ≥ max(1, n). *)

  val transform_with_root : F.t array -> F.t -> unit
  (** In-place transform with an explicit primitive n-th root. *)

  val ntt : F.t array -> F.t array
  (** Coefficients → evaluations on the root grid (fresh array). *)

  val intt : F.t array -> F.t array
  (** Evaluations on the root grid → coefficients (fresh array). *)

  val mul : F.t array -> F.t array -> F.t array
  (** Polynomial product via NTT; output has exact length
      |p| + |q| − 1. *)

  val ntt_uncached : F.t array -> F.t array
  val intt_uncached : F.t array -> F.t array

  val mul_uncached : F.t array -> F.t array -> F.t array
  (** Reference implementations that re-derive every root with [F.pow]
      on each call; must agree exactly with the plan-cached paths. *)
end

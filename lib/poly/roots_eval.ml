(** "Verification without interpolation" (paper, Appendix I).

    During SNIP verification every server must evaluate, at a secret point r,
    the polynomial passing through its shares of N values placed on the
    root-of-unity grid (ω^0 … ω^{N-1}). Doing that with interpolation costs
    O(N log N) per submission; instead, the servers fix r for a batch of
    submissions and precompute the Lagrange evaluation weights

      λ_j(r) = ω^j · (r^N − 1) / (N · (r − ω^j)),

    after which each evaluation is a length-N inner product, O(N)
    multiplications. The weights for all j are computed with a single field
    inversion via batch inversion.

    Precondition: r^N ≠ 1 (r does not collide with a grid point); the SNIP
    verifier re-samples r until this holds. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module P = Poly.Make (F)
  module Plan = Ntt_plan.Make (F)

  type ctx = {
    n : int;
    r : F.t;
    weights : F.t array; (* λ_j(r) for j = 0..n-1 *)
  }

  let point ctx = ctx.r
  let size ctx = ctx.n

  (** [r_collides ~n r] is true when r is one of the n-th roots of unity,
      i.e. when r would land on the interpolation grid. *)
  let r_collides ~n r = F.is_one (F.pow r n)

  let create ~n ~r =
    if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Roots_eval.create: n must be a power of two";
    if r_collides ~n r then invalid_arg "Roots_eval.create: r lies on the evaluation grid";
    let k =
      let rec go k m = if m >= n then k else go (k + 1) (m * 2) in
      go 0 1
    in
    if k > F.two_adicity then invalid_arg "Roots_eval.create: n exceeds two-adicity";
    (* powers ω^j from the shared NTT plan, denominators (r − ω^j) *)
    let plan = Plan.get n in
    let pow_omega = Array.init n (Plan.omega_pow plan) in
    let denoms = Array.map (fun wj -> F.sub r wj) pow_omega in
    let inv_denoms = P.batch_invert denoms in
    let scale = F.mul (F.sub (F.pow r n) F.one) (Plan.n_inv plan) in
    let weights =
      Array.init n (fun j -> F.mul scale (F.mul pow_omega.(j) inv_denoms.(j)))
    in
    { n; r; weights }

  (** Evaluate at r the unique degree-(<n) polynomial whose value at ω^j is
      [values.(j)]: a single inner product with the precomputed weights. *)
  let eval ctx (values : F.t array) : F.t =
    if Array.length values <> ctx.n then invalid_arg "Roots_eval.eval: wrong size";
    let acc = ref F.zero in
    for j = 0 to ctx.n - 1 do
      if not (F.is_zero values.(j)) then acc := F.add !acc (F.mul ctx.weights.(j) values.(j))
    done;
    !acc
end

(** Cached NTT execution plans: per-(field, size) twiddle power tables,
    bit-reversal permutation tables, and the n⁻¹ constant, computed once
    and safe to share across domains (plans are immutable; the cache is
    mutex-guarded). Executing a transform against a plan performs no
    [F.pow] calls at all. *)

module Make (F : Prio_field.Field_intf.S) : sig
  type t

  val get : int -> t
  (** Cached plan for size n. Raises [Invalid_argument] if n is not a
      power of two or exceeds the field's two-adicity. *)

  val size : t -> int
  val log2_size : t -> int

  val omega_pow : t -> int -> F.t
  (** [omega_pow t i] is ω^{i mod n} for the plan's primitive root ω;
      accepts any integer index. *)

  val n_inv : t -> F.t

  val transform : t -> ?inverse:bool -> F.t array -> unit
  (** In-place radix-2 transform of an array whose length equals
      [size t]. [~inverse:true] runs inverse butterflies without the
      1/n scaling; multiply by {!n_inv} to complete interpolation. *)

  val cached_sizes : unit -> int list
  (** Sizes currently held by this instantiation's cache, ascending. *)
end

(** Number-theoretic transform (radix-2 Cooley–Tukey) over an FFT-friendly
    prime field.

    This replaces the FLINT-backed FFT of the original implementation: it is
    what makes SNIP proof generation cost O(M log M) multiplications instead
    of O(M²) (Table 2).

    The transform of size n = 2^k maps coefficients (c_0..c_{n-1}) to
    evaluations at the powers (ω^0, ω^1, …, ω^{n-1}) of a primitive n-th root
    of unity ω; the inverse transform interpolates.

    [ntt]/[intt]/[mul] execute against cached {!Ntt_plan} tables; the
    [_uncached] variants recompute roots on every call and exist as the
    reference implementation for equivalence tests and benchmarks. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module Plan = Ntt_plan.Make (F)

  let is_pow2 n = n > 0 && n land (n - 1) = 0

  let log2 n =
    let rec go k m = if m >= n then k else go (k + 1) (m * 2) in
    go 0 1

  let next_pow2 n = 1 lsl log2 (Stdlib.max 1 n)

  let bit_reverse_permute a =
    let n = Array.length a in
    let j = ref 0 in
    for i = 0 to n - 2 do
      if i < !j then begin
        let t = a.(i) in
        a.(i) <- a.(!j);
        a.(!j) <- t
      end;
      let bit = ref (n lsr 1) in
      while !j land !bit <> 0 do
        j := !j lxor !bit;
        bit := !bit lsr 1
      done;
      j := !j lor !bit
    done

  (** In-place transform with an explicit primitive n-th root. *)
  let transform_with_root (a : F.t array) (root : F.t) =
    let n = Array.length a in
    if not (is_pow2 n) then invalid_arg "Ntt.transform: size must be a power of two";
    bit_reverse_permute a;
    let len = ref 2 in
    while !len <= n do
      let wlen = F.pow root (n / !len) in
      let half = !len / 2 in
      let k = ref 0 in
      while !k < n do
        let w = ref F.one in
        for j = 0 to half - 1 do
          let u = a.(!k + j) in
          let t = F.mul !w a.(!k + j + half) in
          a.(!k + j) <- F.add u t;
          a.(!k + j + half) <- F.sub u t;
          w := F.mul !w wlen
        done;
        k := !k + !len
      done;
      len := !len * 2
    done

  let root_for n =
    let k = log2 n in
    if k > F.two_adicity then invalid_arg "Ntt: size exceeds the field's two-adicity";
    F.root_of_unity k

  (** Coefficients → evaluations at (ω^0 … ω^{n-1}); returns a new array. *)
  let ntt (coeffs : F.t array) : F.t array =
    let a = Array.copy coeffs in
    Plan.transform (Plan.get (Array.length a)) a;
    a

  (** Evaluations at (ω^0 … ω^{n-1}) → coefficients; returns a new array. *)
  let intt (values : F.t array) : F.t array =
    let a = Array.copy values in
    let p = Plan.get (Array.length a) in
    Plan.transform p ~inverse:true a;
    let n_inv = Plan.n_inv p in
    Array.map (F.mul n_inv) a

  (** Polynomial product via NTT; sizes are padded to the covering power of
      two internally. *)
  let mul (p : F.t array) (q : F.t array) : F.t array =
    let lp = Array.length p and lq = Array.length q in
    if lp = 0 || lq = 0 then [||]
    else begin
      let out_len = lp + lq - 1 in
      let n = next_pow2 out_len in
      let pad a = Array.init n (fun i -> if i < Array.length a then a.(i) else F.zero) in
      let fa = pad p and fb = pad q in
      let plan = Plan.get n in
      Plan.transform plan fa;
      Plan.transform plan fb;
      for i = 0 to n - 1 do
        fa.(i) <- F.mul fa.(i) fb.(i)
      done;
      Plan.transform plan ~inverse:true fa;
      let n_inv = Plan.n_inv plan in
      Array.init out_len (fun i -> F.mul n_inv fa.(i))
    end

  (* ----------------- uncached reference implementations ----------------- *)

  let ntt_uncached (coeffs : F.t array) : F.t array =
    let a = Array.copy coeffs in
    transform_with_root a (root_for (Array.length a));
    a

  let intt_uncached (values : F.t array) : F.t array =
    let n = Array.length values in
    let a = Array.copy values in
    transform_with_root a (F.inv (root_for n));
    let n_inv = F.inv (F.of_int n) in
    Array.map (F.mul n_inv) a

  let mul_uncached (p : F.t array) (q : F.t array) : F.t array =
    let lp = Array.length p and lq = Array.length q in
    if lp = 0 || lq = 0 then [||]
    else begin
      let out_len = lp + lq - 1 in
      let n = next_pow2 out_len in
      let pad a = Array.init n (fun i -> if i < Array.length a then a.(i) else F.zero) in
      let fa = pad p and fb = pad q in
      let root = root_for n in
      transform_with_root fa root;
      transform_with_root fb root;
      for i = 0 to n - 1 do
        fa.(i) <- F.mul fa.(i) fb.(i)
      done;
      transform_with_root fa (F.inv root);
      let n_inv = F.inv (F.of_int n) in
      Array.init out_len (fun i -> F.mul n_inv fa.(i))
    end
end

(** Versioned, HMAC-authenticated, atomically-written server snapshots.

    The durability half of the streaming deployment: a server's entire
    resumable state is constant-size (accumulator, accepted count, epoch
    counters, replay-table digest), so it can be checkpointed after every
    decision and restored after a crash without replaying the stream.
    Snapshots are keyed from the deployment master secret per server
    ({!derive_key}); the decoder authenticates before parsing, and
    corrupted, truncated, stale-epoch, or wrong-key snapshots come back
    as typed {!error}s so the caller can fall back to a clean epoch
    restart. Alongside the snapshots lives the per-server {e decision
    journal}: an HMAC-chained, fsynced write-ahead log of every
    accept/reject verdict (plus the server's own truncated share for
    accepts), appended before a decision is acknowledged and truncated
    once a snapshot absorbs it — recovery is snapshot + journal suffix,
    selected by the snapshot's [journal_seq] watermark. See
    docs/PROTOCOL.md §9 for both byte layouts. *)

type error =
  | Truncated  (** shorter than the fixed header + tag *)
  | Bad_magic
  | Bad_version of int
  | Bad_hmac  (** forged, corrupted, wrong server, or wrong master *)
  | Stale_epoch of { snapshot : int; floor : int }
      (** authentic but from an epoch the deployment already closed *)
  | Malformed of string  (** authenticated but internally inconsistent *)
  | Io of string  (** filesystem-level failure (includes a missing file) *)

val string_of_error : error -> string

val derive_key : master:Bytes.t -> server_id:int -> Bytes.t
(** Per-server snapshot MAC key, domain-separated from packet keys. *)

val path : dir:string -> server_id:int -> string
(** Where a server's snapshot lives under [dir]. *)

val derive_journal_key : master:Bytes.t -> server_id:int -> Bytes.t
(** Per-server decision-journal MAC key, domain-separated from the
    snapshot and packet keys. *)

val journal_path : dir:string -> server_id:int -> string
(** Where a server's decision journal lives under [dir]. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module Server : module type of Server.Make (F)

  type snapshot = {
    server_id : int;
    epoch : int;
    accepted : int;
    decided_in_epoch : int;
    journal_seq : int;
        (** decisions absorbed by this snapshot — journal entries with a
            larger sequence must still be replayed after restore *)
    replay_digest : Bytes.t;  (** 32 bytes *)
    accumulator : F.t array;
  }

  val of_server : Server.t -> snapshot
  (** Capture a server's resumable state (deep-copied). *)

  val apply : snapshot -> Server.t -> unit
  (** Overwrite a server's state from a snapshot ({!Server.restore});
      replay/idempotency tables restart empty.
      @raise Invalid_argument on accumulator width mismatch. *)

  val to_bytes : key:Bytes.t -> snapshot -> Bytes.t
  (** Serialize and append the HMAC-SHA256 trailer. *)

  val of_bytes :
    ?min_epoch:int -> key:Bytes.t -> Bytes.t -> (snapshot, error) result
  (** Authenticate-then-parse. [min_epoch] (default 0) rejects authentic
      snapshots from epochs below the floor as [Stale_epoch]. *)

  val save : key:Bytes.t -> dir:string -> snapshot -> (unit, error) result
  (** Write atomically (temp file + [rename]): a crash mid-write leaves
      the previous snapshot intact, never a torn file. *)

  val load :
    ?min_epoch:int -> key:Bytes.t -> dir:string -> server_id:int -> unit ->
    (snapshot, error) result
  (** Read and validate [server_id]'s latest snapshot; a missing file is
      [Io], a snapshot naming another server is [Malformed]. *)

  (** {2 Decision journal} *)

  type journal_entry = {
    j_seq : int;
        (** the server's [journal_seq] after recording this decision *)
    j_client : int;
    j_accepted : bool;
    j_epoch : int;  (** server epoch when the decision was made *)
    j_share : F.t array;
        (** the server's own truncated share for accepted entries (what
            replay re-accumulates); empty for rejections *)
  }

  type journal
  (** An open journal handle, positioned for appending. *)

  val journal_open :
    key:Bytes.t -> dir:string -> server_id:int -> unit ->
    (journal_entry list * journal, error) result
  (** Open (creating if absent) the server's journal, verify the HMAC
      chain and return the surviving entries in append order plus the
      handle. A torn tail (crash mid-append) is silently truncated; a
      chain break before the tail is tampering and fails [Bad_hmac]; a
      journal naming another server is [Malformed]. *)

  val journal_append :
    ?fsync:bool -> journal -> journal_entry -> (unit, error) result
  (** Append one record and extend the chain. With [fsync] (default) the
      record is durable before return — the write-ahead property the
      commit ack depends on. *)

  val journal_truncate : journal -> (unit, error) result
  (** Drop every record (a snapshot absorbed them); the chain restarts
      from the genesis tag. *)

  val journal_close : journal -> unit
end

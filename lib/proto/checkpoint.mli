(** Versioned, HMAC-authenticated, atomically-written server snapshots.

    The durability half of the streaming deployment: a server's entire
    resumable state is constant-size (accumulator, accepted count, epoch
    counters, replay-table digest), so it can be checkpointed after every
    decision and restored after a crash without replaying the stream.
    Snapshots are keyed from the deployment master secret per server
    ({!derive_key}); the decoder authenticates before parsing, and
    corrupted, truncated, stale-epoch, or wrong-key snapshots come back
    as typed {!error}s so the caller can fall back to a clean epoch
    restart. See docs/PROTOCOL.md §9 for the byte layout. *)

type error =
  | Truncated  (** shorter than the fixed header + tag *)
  | Bad_magic
  | Bad_version of int
  | Bad_hmac  (** forged, corrupted, wrong server, or wrong master *)
  | Stale_epoch of { snapshot : int; floor : int }
      (** authentic but from an epoch the deployment already closed *)
  | Malformed of string  (** authenticated but internally inconsistent *)
  | Io of string  (** filesystem-level failure (includes a missing file) *)

val string_of_error : error -> string

val derive_key : master:Bytes.t -> server_id:int -> Bytes.t
(** Per-server snapshot MAC key, domain-separated from packet keys. *)

val path : dir:string -> server_id:int -> string
(** Where a server's snapshot lives under [dir]. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module Server : module type of Server.Make (F)

  type snapshot = {
    server_id : int;
    epoch : int;
    accepted : int;
    decided_in_epoch : int;
    replay_digest : Bytes.t;  (** 32 bytes *)
    accumulator : F.t array;
  }

  val of_server : Server.t -> snapshot
  (** Capture a server's resumable state (deep-copied). *)

  val apply : snapshot -> Server.t -> unit
  (** Overwrite a server's state from a snapshot ({!Server.restore});
      replay/idempotency tables restart empty.
      @raise Invalid_argument on accumulator width mismatch. *)

  val to_bytes : key:Bytes.t -> snapshot -> Bytes.t
  (** Serialize and append the HMAC-SHA256 trailer. *)

  val of_bytes :
    ?min_epoch:int -> key:Bytes.t -> Bytes.t -> (snapshot, error) result
  (** Authenticate-then-parse. [min_epoch] (default 0) rejects authentic
      snapshots from epochs below the floor as [Stale_epoch]. *)

  val save : key:Bytes.t -> dir:string -> snapshot -> (unit, error) result
  (** Write atomically (temp file + [rename]): a crash mid-write leaves
      the previous snapshot intact, never a torn file. *)

  val load :
    ?min_epoch:int -> key:Bytes.t -> dir:string -> server_id:int -> unit ->
    (snapshot, error) result
  (** Read and validate [server_id]'s latest snapshot; a missing file is
      [Io], a snapshot naming another server is [Malformed]. *)
end

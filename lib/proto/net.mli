(** A fault-tolerant TCP deployment of Prio: one OS process per server
    speaking length-prefixed frames over real sockets, clients uploading
    one sealed packet per server, and the leader driving the two SNIP
    gossip rounds over persistent server-to-server connections — the
    shape of the paper's five-data-center cluster.

    Every socket operation is deadline-bounded, frames are size-capped,
    protocol deviations surface as {!protocol_error} values answered
    with [E] frames, clients retry with backoff against idempotent
    servers, decision broadcasts are two-phase (followers journal the
    verdict to an HMAC-chained write-ahead log and ack with a [c] frame
    before the leader acks the client; partial broadcasts surface as
    [Commit_pending] and are repaired on resubmission), a leader
    degrades gracefully when a follower dies, and the
    forked processes are supervised ({!Make.poll_servers} /
    {!Make.restart_server}). The whole frame path accepts a
    deterministic {!Faults} injector for reproducible chaos runs. See
    the implementation header for the frame grammar and
    docs/PROTOCOL.md §8 for the failure matrix. *)

(** Machine-readable refusal codes carried by [E] frames. *)
type error_code =
  | Too_large  (** frame length exceeds the receiver's cap *)
  | Malformed_frame  (** empty frame, short body, or unparseable payload *)
  | Unknown_tag
  | Unknown_client  (** no pending share / recorded verdict for this id *)
  | Unavailable  (** server degraded (e.g. a follower is down) *)
  | Rejected  (** submission definitively refused *)
  | Busy  (** admission queue full; retryable — clients back off *)
  | Commit_pending
      (** the leader journaled the verdict but a follower has not acked
          it; the client resubmits so the broadcast can be repaired *)

(** Everything that can go wrong on the wire, as a value. *)
type protocol_error =
  | Timeout of string  (** deadline expired *)
  | Closed of string  (** EOF / EPIPE / ECONNRESET / refused dial *)
  | Frame_oversize of int  (** peer announced a frame above the cap *)
  | Bad_frame of string  (** framing or payload violation *)
  | Peer_error of error_code * string  (** peer answered with an [E] frame *)
  | Io_error of string  (** any other socket-level error *)

val string_of_error_code : error_code -> string
val string_of_protocol_error : protocol_error -> string

val ignore_sigpipe : unit -> unit
(** Make a peer closing mid-write surface as [EPIPE] instead of killing
    the process. Idempotent; called by every entry point. *)

val default_max_frame_bytes : int
(** 16 MiB. *)

(** Deployment-wide knobs; tests shrink the timeouts. *)
type tuning = {
  max_frame_bytes : int;  (** reject frames announcing more than this *)
  io_timeout : float;  (** per-frame read/write deadline, seconds *)
  dial_timeout : float;  (** per-connection-establishment deadline *)
  select_tick : float;  (** serve-loop wakeup when idle *)
  backoff : Retry.backoff;  (** client-side RPC retry schedule *)
  verify_domains : int;
      (** worker domains per server process for SNIP preparation
          (default 1 = inline on the event loop); with more, preparation
          is queued eagerly at upload time and overlaps frame handling *)
  max_pending : int;
      (** admission cap (default 1024): uploads beyond this many
          in-flight submissions are shed with a retryable [Busy] frame *)
  epoch_size : int;
      (** decisions per replay/idempotency epoch (default 0 = never
          rotate); setting it keeps server memory flat over unbounded
          streams *)
  epoch_max_age_s : float;
      (** maximum epoch age in seconds before rotation (default 0 = no
          age trigger); either trigger closes the epoch, so a trickle
          of decisions cannot keep replay state resident forever *)
  clock : Prio_obs.Clock.t;
      (** drives the epoch-age trigger (default the system clock;
          injectable for tests) *)
  checkpoint_dir : string option;
      (** snapshot directory (default [None] = durability off); with it
          set, servers persist after decisions and
          {!Make.restart_server} resumes mid-collection *)
  checkpoint_every : int;
      (** decisions between snapshots (default 1 = lose nothing) *)
  journal_fsync : bool;
      (** fsync every decision-journal append before acknowledging it
          (default [true]); turning it off trades the write-ahead
          guarantee for throughput in tests and benchmarks *)
  max_resubmits : int;
      (** client-side resubmission rounds after a [Commit_pending]
          verify reply (default 4) before giving up as rejected *)
  trace_dir : string option;
      (** span-dump directory (default [None]); with it set, each server
          process records its spans under origin ["server<id>"] and dumps
          [<trace_dir>/server<id>.jsonl] on clean shutdown, ready for
          {!Prio_obs.Trace.merge} *)
}

val default_tuning : tuning

(** {2 Frame-level primitives}

    Exposed so tests (and adversaries in tests) can speak the wire
    protocol directly. *)

val put_u32 : int -> Bytes.t
val get_u32 : Bytes.t -> int -> int
val tagged : char -> Bytes.t -> Bytes.t

val ctx_bytes : unit -> Bytes.t
(** Length-prefixed trace-context suffix ([u16 len ‖ context]) carried by
    the causal frames ([P]/[V]/[o]/[d]/[a]/[r]): the calling domain's
    current {!Prio_obs.Trace.context} when a span is open, else the
    2-byte empty suffix. Hand-crafted frames must include it. *)

val get_ctx : Bytes.t -> int -> Prio_obs.Trace.context option * int
(** [get_ctx frame off] parses a {!ctx_bytes} suffix at [off]: the
    context (when present and well-formed) and the offset just past the
    suffix. Total — truncated or garbled suffixes degrade to [None]. *)

val write_frame :
  ?deadline:Retry.deadline -> Unix.file_descr -> Bytes.t ->
  (unit, protocol_error) result
(** Length-prefix and send one frame: header and payload are assembled
    into a single buffer and pushed through one bounded write loop. *)

val read_frame :
  ?deadline:Retry.deadline -> ?max_bytes:int -> Unix.file_descr ->
  (Bytes.t, protocol_error) result
(** Read one frame. [Frame_oversize] is returned {e before} allocating a
    peer-announced buffer; empty (tag-less) frames are [Bad_frame]. *)

val send_frame :
  ?faults:Faults.t -> ?deadline:Retry.deadline -> Unix.file_descr ->
  Bytes.t -> (unit, protocol_error) result
(** {!write_frame} through an optional fault injector ([Drop] pretends
    the frame went out; [Crash] exits the calling process). *)

val recv_frame :
  ?faults:Faults.t -> ?deadline:Retry.deadline -> ?max_bytes:int ->
  Unix.file_descr -> (Bytes.t, protocol_error) result
(** {!read_frame} through an optional fault injector (a dropped reply
    surfaces as [Timeout]). *)

val error_frame : error_code -> string -> Bytes.t
(** Build an [E] frame: ['E'] ‖ code byte ‖ detail. *)

val parse_error_frame : Bytes.t -> (error_code * string) option
(** Decode an [E] frame (first byte already known to be ['E']). *)

val dial :
  ?deadline:Retry.deadline -> ?retry_refused:bool -> Unix.sockaddr ->
  (Unix.file_descr, protocol_error) result
(** Connect under a deadline with a fresh socket per attempt (a socket
    that failed [connect] is never reused). With [retry_refused]
    (default), ECONNREFUSED / ETIMEDOUT / EHOSTUNREACH / ENETUNREACH are
    retried until the deadline; without it they fail immediately so a
    caller with its own backoff does not spin on a dead port. *)

(** {2 Health probes and live metrics scrape}

    Process-liveness supervision ([waitpid]) sees only alive/dead; these
    in-band probes distinguish "serving", "serving but degraded", and
    "alive but wedged", and pull live metrics out of a running server
    without embedding an HTTP endpoint. *)

(** One server's answer to an [h] probe. *)
type health = {
  h_server : int;  (** server id (0 = leader) *)
  h_epoch : int;  (** current replay/idempotency epoch *)
  h_pending : int;  (** admission-queue depth (in-flight submissions) *)
  h_accepted : int;  (** submissions folded into the accumulator *)
  h_ckpt_age : float option;
      (** seconds since the process last wrote a snapshot; [None] when
          durability is off or nothing has been checkpointed yet *)
  h_peers : (int * bool) list;
      (** leader only: per-follower [(server id, gossip link cached)] —
          [false] means the persistent connection was dropped after a
          failure (it is redialed on demand) *)
}

val probe_health :
  ?tuning:tuning -> Unix.sockaddr -> (health, protocol_error) result
(** Ask one server for its {!health} over a fresh connection ([h] → [H]).
    The error is itself a signal: a refused dial means the port is dead,
    a timeout that the process is wedged. *)

val scrape_metrics :
  ?tuning:tuning -> ?format:[ `Prometheus | `Json ] ->
  Unix.sockaddr -> (string, protocol_error) result
(** Pull one server's live metrics registry over TCP ([q] → [m]) as
    Prometheus exposition text (default) or the
    {!Prio_obs.Report.json} snapshot (which carries p50/p95/p99 per
    histogram — the per-stage latency view). *)

module Make (F : Prio_field.Field_intf.S) : sig
  module C : module type of Prio_circuit.Circuit.Make (F)
  module Client : module type of Client.Make (F)

  type config = {
    circuit : C.t;
    trunc_len : int;
    num_servers : int;
    master : Bytes.t;
    batch_seed : Bytes.t;
        (** all servers derive the shared batch secrets (r, z) from this;
            a deployment would distribute it over the authenticated
            server-to-server channels *)
  }

  val serve :
    ?tuning:tuning -> ?faults:Faults.t -> ?restore_min_epoch:int ->
    config -> id:int -> listen_fd:Unix.file_descr ->
    follower_addrs:Unix.sockaddr array -> unit
  (** Run one server's event loop until an [X] frame arrives; the leader
      (id 0) dials the followers, lazily redialing dead ones. The
      listener must already be bound. [faults] sits on this server's
      frame-receive path and may [Crash] the process. With
      [tuning.checkpoint_dir] set the server restores its latest valid
      snapshot at startup (rejecting corrupted / truncated / wrong-key
      snapshots and epochs below [restore_min_epoch], falling back to a
      clean start), replays the decision-journal suffix past the
      snapshot's watermark, and snapshots every [checkpoint_every]
      decisions (each snapshot truncating the journal). *)

  type deployment = {
    cfg : config;
    tuning : tuning;
    addrs : Unix.sockaddr array;  (** server 0 is the leader *)
    pids : int array;  (** current pid per server (restarts update it) *)
    statuses : Unix.process_status option array;
        (** [Some] once the process has been reaped *)
    faults_for : int -> Faults.t option;
  }

  val launch :
    ?tuning:tuning -> ?faults_for:(int -> Faults.t option) -> config ->
    deployment
  (** Fork one process per server on loopback sockets (ephemeral ports);
      [faults_for] installs chaos injectors on chosen servers. *)

  (** {2 Supervision} *)

  type server_status = Running | Exited of Unix.process_status

  val poll_servers : deployment -> server_status array
  (** Non-blocking health check ([waitpid WNOHANG]); reaps and records
      any server process that died. *)

  val restart_server : ?min_epoch:int -> deployment -> int -> unit
  (** Revive a dead server on its original port. With
      [tuning.checkpoint_dir] set it resumes from the latest valid
      snapshot (accepted submissions up to the last checkpoint survive);
      otherwise it restarts with fresh per-batch state. [min_epoch]
      refuses authentic-but-stale snapshots.
      @raise Invalid_argument if it is still running. *)

  (** What a health sweep concluded about one server — strictly more
      signal than {!server_status}. *)
  type probe =
    | Probe_ok of health
    | Probe_degraded of health * string  (** serving, but impaired *)
    | Probe_unreachable of protocol_error
        (** process alive, probe failed — wedged or unresponsive *)
    | Probe_dead of Unix.process_status  (** process reaped *)

  val probe_deployment : deployment -> probe array
  (** One supervision sweep: {!poll_servers} liveness first, then an [h]
      probe of every live server. Exports the verdict as the
      [prio_supervisor_down] / [prio_supervisor_degraded] gauges in the
      calling process. *)

  val supervise : ?min_epoch:int -> deployment -> int list
  (** Probe-driven supervision: restart the dead, kill-then-restart the
      live-but-unresponsive (the wedged state liveness polling cannot
      see), leave degraded-but-serving servers alone (dropped gossip
      links heal by on-demand redial). Returns the restarted ids. Probes
      share the deployment's [io_timeout] — keep it comfortably above
      the longest single-frame stall a healthy server can have. *)

  (** {2 Clients} *)

  (** What happened to a submission, beyond a bare boolean. *)
  type outcome =
    | Accepted
    | Rejected of string  (** the cluster answered definitively *)
    | Unreachable of protocol_error  (** retries exhausted *)

  val submit_packets_outcome :
    ?faults:Faults.t -> deployment -> rng:Prio_crypto.Rng.t ->
    client_id:int -> Client.packets -> outcome
  (** Upload already-sealed packets (followers first, then the leader
      with the verify trigger) — the packet-level entry point for
      callers that prepared submissions up front and want to compare
      wire traffic against [packets.upload_bytes].
      @raise Invalid_argument on a packet-count/server-count mismatch. *)

  val submit_packets :
    ?faults:Faults.t -> deployment -> rng:Prio_crypto.Rng.t ->
    client_id:int -> Client.packets -> bool
  (** [submit_packets_outcome] collapsed to "accepted?". *)

  (** {2 Streaming sessions}

      Persistent connections for high-volume clients: one dial per
      server amortized over the stream, instead of a fresh connection
      per RPC (which parks every closed connection in TIME_WAIT and
      exhausts loopback's ephemeral ports around 100k submissions). *)

  type session

  val open_session : deployment -> session
  (** Lazy: connections are dialed on first use and redialed after any
      transport error (so a restarted server heals transparently). Not
      domain-safe — one session per submitting thread. *)

  val close_session : session -> unit

  val submit_packets_session :
    ?faults:Faults.t -> session -> rng:Prio_crypto.Rng.t ->
    client_id:int -> Client.packets -> outcome
  (** {!submit_packets_outcome} over the session's cached connections.
      A [Busy] shed retries on the same connection after backoff. *)

  val submit_session :
    ?faults:Faults.t -> session -> rng:Prio_crypto.Rng.t ->
    client_id:int -> F.t array -> outcome
  (** Seal and upload one encoding over the session. *)

  val submit_outcome :
    ?faults:Faults.t -> deployment -> rng:Prio_crypto.Rng.t ->
    client_id:int -> F.t array -> outcome
  (** Upload one client's encoding over TCP (followers first, then the
      leader with the verify trigger), with per-frame deadlines and
      backoff retries; duplicates produced by retries are re-acked
      idempotently by the servers. *)

  val submit :
    ?faults:Faults.t -> deployment -> rng:Prio_crypto.Rng.t ->
    client_id:int -> F.t array -> bool
  (** [submit_outcome] collapsed to "accepted?". *)

  val submit_batch :
    ?faults:Faults.t -> ?domains:int -> deployment ->
    rng:Prio_crypto.Rng.t -> (int * Client.packets) array -> outcome array
  (** Drive a prepared batch with [domains] submissions in flight at
      once (default 1 = serial); outcomes come back in packet order and
      match a serial run — per-client decisions are independent of
      arrival order. Per-packet RNGs are split from [rng] in packet
      order before dispatch, so the run is deterministic. *)

  val collect_aggregate :
    deployment -> (F.t array, int * protocol_error) result
  (** Query every server's accumulator and sum. [Error (i, e)] names the
      first unreachable or garbled server and the structured cause. *)

  val shutdown : deployment -> unit
  (** Stop and reap every server process: polite [X] frames, a grace
      period, then SIGKILL — terminates even with wedged or dead
      servers. *)
end

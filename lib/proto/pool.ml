(** Fixed-size domain worker pool with helping futures.

    Verification is embarrassingly parallel across submissions (Figure 5),
    but spawning a domain per batch wastes milliseconds the hot path
    doesn't have. A pool spawns its domains once; tasks go through a
    mutex/condition queue and results come back via futures. [await]
    {e helps}: while its task is pending it executes other queued tasks
    instead of blocking, so awaiting from inside a task can't deadlock
    and the calling thread's cycles are never wasted.

    [create ~domains:1] builds an inline pool — [submit] runs the thunk
    immediately on the caller. That makes domain count a pure tuning knob:
    callers write one code path and single-core deployments pay no
    synchronization cost. *)

module Metrics = Prio_obs.Metrics

let m_tasks = Metrics.counter "prio_pool_tasks_total"
let h_task = Metrics.histogram "prio_pool_task_seconds"

type task = unit -> unit

type t = {
  m : Mutex.t;
  nonempty : Condition.t;  (** queue gained a task, or the pool closed *)
  completed : Condition.t;  (** some task finished *)
  queue : task Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
  domains : int;
}

type 'a state = Pending | Done of 'a | Failed of exn
type 'a future = { fp : t; mutable st : 'a state }

let size t = t.domains

let worker_loop p () =
  Mutex.lock p.m;
  let rec loop () =
    if not (Queue.is_empty p.queue) then begin
      let task = Queue.pop p.queue in
      Mutex.unlock p.m;
      task ();
      Mutex.lock p.m;
      loop ()
    end
    else if p.closed then Mutex.unlock p.m
    else begin
      Condition.wait p.nonempty p.m;
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let p =
    { m = Mutex.create (); nonempty = Condition.create ();
      completed = Condition.create (); queue = Queue.create ();
      closed = false; workers = [||]; domains }
  in
  (* the caller's thread helps in [await], so d domains of capacity need
     only d − 1 spawned workers *)
  if domains > 1 then
    p.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (worker_loop p));
  p

let run_task (fut : _ future) f () =
  let st = match Metrics.time h_task f with
    | v -> Done v
    | exception e -> Failed e
  in
  Mutex.lock fut.fp.m;
  fut.st <- st;
  Condition.broadcast fut.fp.completed;
  Mutex.unlock fut.fp.m

let submit p f =
  (* plain read: inline pools are single-threaded, and for worker pools
     the locked re-check below catches a racing shutdown *)
  if p.closed then invalid_arg "Pool.submit: pool is shut down";
  Metrics.incr m_tasks;
  let fut = { fp = p; st = Pending } in
  if Array.length p.workers = 0 then begin
    (* inline pool: run on the caller, no synchronization *)
    (fut.st <- (match Metrics.time h_task f with
               | v -> Done v
               | exception e -> Failed e));
    fut
  end
  else begin
    Mutex.lock p.m;
    if p.closed then begin
      Mutex.unlock p.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.push (run_task fut f) p.queue;
    Condition.signal p.nonempty;
    Mutex.unlock p.m;
    fut
  end

let await fut =
  let p = fut.fp in
  let result =
    (* inline pools resolve in [submit]; with live workers the state
       field is only touched under the pool mutex, so read it there *)
    if Array.length p.workers = 0 then fut.st
    else begin
      Mutex.lock p.m;
      let rec wait () =
        match fut.st with
        | (Done _ | Failed _) as st ->
          Mutex.unlock p.m;
          st
        | Pending ->
          if not (Queue.is_empty p.queue) then begin
            (* help: run someone's task instead of blocking *)
            let task = Queue.pop p.queue in
            Mutex.unlock p.m;
            task ();
            Mutex.lock p.m;
            wait ()
          end
          else begin
            Condition.wait p.completed p.m;
            wait ()
          end
      in
      wait ()
    end
  in
  match result with
  | Done v -> v
  | Failed e -> raise e
  | Pending -> assert false (* [wait] only returns resolved states *)

(** Apply [f] to every element on the pool; results are returned in index
    order regardless of execution order, so downstream merges are
    deterministic. *)
let map_array p f arr =
  let futs = Array.map (fun x -> submit p (fun () -> f x)) arr in
  Array.map await futs

let shutdown p =
  Mutex.lock p.m;
  p.closed <- true;
  Condition.broadcast p.nonempty;
  Mutex.unlock p.m;
  if Array.length p.workers > 0 then begin
    Array.iter Domain.join p.workers;
    p.workers <- [||]
  end

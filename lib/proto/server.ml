(** One Prio server's local state and communication-free processing steps
    (paper, Appendix H steps 2–4). The message flow between servers lives in
    {!Cluster}. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Prio_circuit.Circuit.Make (F)
  module Snip = Prio_snip.Snip.Make (F)
  module Sh = Prio_share.Share.Make (F)
  module W = Wire.Make (F)
  module Rng = Prio_crypto.Rng
  module Authbox = Prio_crypto.Authbox
  module Metrics = Prio_obs.Metrics
  module Trace = Prio_obs.Trace

  let m_dropped = Metrics.counter "prio_server_dropped_packets_total"

  type t = {
    id : int;
    num_servers : int;
    master : Bytes.t;
    trunc_len : int;  (** accumulator width k' *)
    payload_elements : int;  (** expected flat share vector length *)
    accumulator : F.t array;
    mutable accepted : int;
    seen_nonces : (string, unit) Hashtbl.t;
    decisions : (int, bool) Hashtbl.t;
        (** client_id → final verdict, kept so a retried (duplicate)
            submission or verify request is re-acknowledged with the
            original answer instead of re-processed *)
  }

  let create ~id ~num_servers ~master ~trunc_len ~payload_elements =
    {
      id;
      num_servers;
      master;
      trunc_len;
      payload_elements;
      accumulator = Array.make trunc_len F.zero;
      accepted = 0;
      seen_nonces = Hashtbl.create 1024;
      decisions = Hashtbl.create 1024;
    }

  (** Record the cluster's final verdict on a client id, making later
      duplicate uploads / verify requests idempotent. *)
  let record_decision t ~client_id accepted =
    Hashtbl.replace t.decisions client_id accepted

  let decision t ~client_id = Hashtbl.find_opt t.decisions client_id

  (** Authenticate, decrypt, replay-check and expand one client packet into
      this server's flat share vector. [None] on forgery, replay, or
      malformed payload — the packet is dropped, as in the real system. *)
  let receive_checked t ~client_id (packet : Bytes.t) :
      (Bytes.t * F.t array) option =
    let key = Authbox.derive_key ~client_id ~server_id:t.id ~master:t.master in
    match Authbox.open_ ~key packet with
    | None -> None
    | Some body ->
      if Bytes.length body < 16 then None
      else begin
        let nonce = Bytes.sub body 0 16 in
        let nonce_key = Bytes.to_string nonce in
        if Hashtbl.mem t.seen_nonces nonce_key then None
        else begin
          match
            W.payload_of_bytes (Bytes.sub body 16 (Bytes.length body - 16))
          with
          | exception Invalid_argument _ -> None
          | payload ->
            (match Sh.expand payload ~len:t.payload_elements with
            | exception Invalid_argument _ -> None
            | share ->
              Hashtbl.replace t.seen_nonces nonce_key ();
              Some (nonce, share))
        end
      end

  let receive t ~client_id (packet : Bytes.t) : (Bytes.t * F.t array) option =
    match receive_checked t ~client_id packet with
    | None ->
      Metrics.incr m_dropped;
      Trace.event "server.dropped_packet"
        ~attrs:
          [ ("server", string_of_int t.id); ("client", string_of_int client_id) ];
      None
    | some -> some

  (** Aggregate step: fold the first k' components of an accepted encoding
      share into the local accumulator. *)
  let accumulate t (x_share : F.t array) =
    for j = 0 to t.trunc_len - 1 do
      t.accumulator.(j) <- F.add t.accumulator.(j) x_share.(j)
    done;
    t.accepted <- t.accepted + 1

  (** Publish step: reveal the accumulator, optionally with this server's
      differential-privacy noise share (§7). *)
  let publish ?dp_noise t : F.t array =
    match dp_noise with
    | None -> Array.copy t.accumulator
    | Some (rng, alpha) ->
      Array.map
        (fun v ->
          let noise = Dp.server_noise_share rng ~num_servers:t.num_servers ~alpha in
          F.add v (F.of_int noise))
        t.accumulator
end

(** One Prio server's local state and communication-free processing steps
    (paper, Appendix H steps 2–4). The message flow between servers lives in
    {!Cluster}. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Prio_circuit.Circuit.Make (F)
  module Snip = Prio_snip.Snip.Make (F)
  module Sh = Prio_share.Share.Make (F)
  module W = Wire.Make (F)
  module Rng = Prio_crypto.Rng
  module Authbox = Prio_crypto.Authbox
  module Sha256 = Prio_crypto.Sha256
  module Metrics = Prio_obs.Metrics
  module Trace = Prio_obs.Trace

  let m_dropped = Metrics.counter "prio_server_dropped_packets_total"
  let m_rotations = Metrics.counter "prio_server_epoch_rotations_total"
  let g_resident = Metrics.gauge "prio_server_resident_entries"

  type t = {
    id : int;
    num_servers : int;
    master : Bytes.t;
    trunc_len : int;  (** accumulator width k' *)
    payload_elements : int;  (** expected flat share vector length *)
    accumulator : F.t array;
    mutable accepted : int;
    mutable seen_nonces : (string, unit) Hashtbl.t;
    mutable prev_nonces : (string, unit) Hashtbl.t;
        (** the previous epoch's replay nonces, kept one generation back so
            a packet replayed right after a rotation is still caught — a
            replay must be older than a full epoch to slip past *)
    mutable decisions : (int, bool) Hashtbl.t;
        (** client_id → final verdict, kept so a retried (duplicate)
            submission or verify request is re-acknowledged with the
            original answer instead of re-processed *)
    mutable prev_decisions : (int, bool) Hashtbl.t;
        (** previous epoch's verdicts, same one-generation grace window as
            [prev_nonces]: a retry that crosses one epoch boundary is still
            re-acked instead of re-verified (and double-counted) *)
    mutable journal_seq : int;
        (** monotone count of decisions ever first-recorded on this server;
            never reset by rotation. The decision journal stamps each entry
            with this sequence and the checkpoint carries it, so replay
            after a restore applies exactly the journaled decisions the
            snapshot has not absorbed yet. *)
    mutable epoch : int;  (** completed {!rotate_epoch} calls *)
    mutable decided_in_epoch : int;
        (** distinct client verdicts recorded since the last rotation *)
    mutable replay_digest : Bytes.t;
        (** 32-byte running SHA-256 chain over every admitted nonce and
            every epoch rotation — a constant-size commitment to the
            replay table's history that a checkpoint can carry without
            serializing the table itself *)
  }

  (* Domain-separated chain head: every server starts from the same
     well-known value, so the digest commits only to what was admitted. *)
  let initial_replay_digest () = Sha256.digest_string "prio-replay-digest-v1"

  let u32_be v =
    Bytes.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

  let create ~id ~num_servers ~master ~trunc_len ~payload_elements =
    {
      id;
      num_servers;
      master;
      trunc_len;
      payload_elements;
      accumulator = Array.make trunc_len F.zero;
      accepted = 0;
      seen_nonces = Hashtbl.create 1024;
      prev_nonces = Hashtbl.create 16;
      decisions = Hashtbl.create 1024;
      prev_decisions = Hashtbl.create 16;
      journal_seq = 0;
      epoch = 0;
      decided_in_epoch = 0;
      replay_digest = initial_replay_digest ();
    }

  let decision t ~client_id =
    match Hashtbl.find_opt t.decisions client_id with
    | Some _ as d -> d
    | None -> Hashtbl.find_opt t.prev_decisions client_id

  (** Record the cluster's final verdict on a client id, making later
      duplicate uploads / verify requests idempotent. First write wins: a
      late contradictory broadcast (the degraded-abort race) cannot
      overwrite a verdict already recorded — and journaled — here. Returns
      [true] iff this call recorded a new decision. *)
  let record_decision t ~client_id accepted =
    match decision t ~client_id with
    | Some _ -> false
    | None ->
      Hashtbl.add t.decisions client_id accepted;
      t.decided_in_epoch <- t.decided_in_epoch + 1;
      t.journal_seq <- t.journal_seq + 1;
      true

  (** Per-submission state currently resident: replay nonces plus recorded
      verdicts, across both the live epoch and the one-epoch grace
      generation. Bounded by [2 * epoch_size] per table kind when callers
      rotate epochs, which is the streaming-mode flat-memory invariant the
      tests assert. *)
  let resident_entries t =
    Hashtbl.length t.seen_nonces + Hashtbl.length t.prev_nonces
    + Hashtbl.length t.decisions + Hashtbl.length t.prev_decisions

  (** Close the current epoch: age the replay and idempotency tables one
      generation (current → grace, grace dropped and recycled) and fold the
      rotation into the replay digest chain. The grace generation means a
      replay or retry must cross {e two} epoch boundaries — i.e. be older
      than a full epoch — before its nonce and verdict are forgotten, so a
      retried submission rotated out mid-flight is still re-acked from the
      recorded verdict instead of re-verified and double-counted. Memory
      stays bounded at two generations per table kind. *)
  let rotate_epoch t =
    let recycled_nonces = t.prev_nonces and recycled_decisions = t.prev_decisions in
    Hashtbl.reset recycled_nonces;
    Hashtbl.reset recycled_decisions;
    t.prev_nonces <- t.seen_nonces;
    t.prev_decisions <- t.decisions;
    t.seen_nonces <- recycled_nonces;
    t.decisions <- recycled_decisions;
    t.epoch <- t.epoch + 1;
    t.decided_in_epoch <- 0;
    let c = Sha256.init () in
    Sha256.update_string c "prio-epoch-rotate";
    Sha256.update c t.replay_digest;
    Sha256.update c (u32_be t.epoch);
    t.replay_digest <- Sha256.finalize c;
    Metrics.incr m_rotations;
    Metrics.set g_resident (float_of_int (resident_entries t));
    Trace.event "server.epoch_rotated"
      ~attrs:
        [ ("server", string_of_int t.id); ("epoch", string_of_int t.epoch) ]

  (** Overwrite this server's aggregate state from a checkpoint snapshot.
      The replay/idempotency tables are reset — a snapshot carries only
      their digest, so replay protection restarts scoped to the resumed
      epoch. @raise Invalid_argument on a width or digest-size mismatch. *)
  let restore ?(journal_seq = 0) t ~epoch ~accepted ~decided_in_epoch
      ~replay_digest ~(accumulator : F.t array) =
    if Array.length accumulator <> t.trunc_len then
      invalid_arg "Server.restore: accumulator width mismatch";
    if Bytes.length replay_digest <> 32 then
      invalid_arg "Server.restore: replay digest must be 32 bytes";
    Array.blit accumulator 0 t.accumulator 0 t.trunc_len;
    t.accepted <- accepted;
    t.epoch <- epoch;
    t.decided_in_epoch <- decided_in_epoch;
    t.journal_seq <- journal_seq;
    t.replay_digest <- Bytes.copy replay_digest;
    Hashtbl.reset t.seen_nonces;
    Hashtbl.reset t.prev_nonces;
    Hashtbl.reset t.decisions;
    Hashtbl.reset t.prev_decisions

  (** Authenticate, decrypt, replay-check and expand one client packet into
      this server's flat share vector. [None] on forgery, replay, or
      malformed payload — the packet is dropped, as in the real system. *)
  let receive_checked t ~client_id (packet : Bytes.t) :
      (Bytes.t * F.t array) option =
    let key = Authbox.derive_key ~client_id ~server_id:t.id ~master:t.master in
    match Authbox.open_ ~key packet with
    | None -> None
    | Some body ->
      if Bytes.length body < 16 then None
      else begin
        let nonce = Bytes.sub body 0 16 in
        let nonce_key = Bytes.to_string nonce in
        if
          Hashtbl.mem t.seen_nonces nonce_key
          || Hashtbl.mem t.prev_nonces nonce_key
        then None
        else begin
          match
            W.payload_of_bytes (Bytes.sub body 16 (Bytes.length body - 16))
          with
          | exception Invalid_argument _ -> None
          | payload ->
            (match Sh.expand payload ~len:t.payload_elements with
            | exception Invalid_argument _ -> None
            | share ->
              Hashtbl.replace t.seen_nonces nonce_key ();
              (* chain the admitted nonce into the epoch's replay digest *)
              t.replay_digest <-
                Sha256.digest (Bytes.cat t.replay_digest nonce);
              Metrics.set g_resident (float_of_int (resident_entries t));
              Some (nonce, share))
        end
      end

  let receive t ~client_id (packet : Bytes.t) : (Bytes.t * F.t array) option =
    match receive_checked t ~client_id packet with
    | None ->
      Metrics.incr m_dropped;
      Trace.event "server.dropped_packet"
        ~attrs:
          [ ("server", string_of_int t.id); ("client", string_of_int client_id) ];
      None
    | some -> some

  (** Aggregate step: fold the first k' components of an accepted encoding
      share into the local accumulator. *)
  let accumulate t (x_share : F.t array) =
    for j = 0 to t.trunc_len - 1 do
      t.accumulator.(j) <- F.add t.accumulator.(j) x_share.(j)
    done;
    t.accepted <- t.accepted + 1

  (** Publish step: reveal the accumulator, optionally with this server's
      differential-privacy noise share (§7). *)
  let publish ?dp_noise t : F.t array =
    match dp_noise with
    | None -> Array.copy t.accumulator
    | Some (rng, alpha) ->
      Array.map
        (fun v ->
          let noise = Dp.server_noise_share rng ~num_servers:t.num_servers ~alpha in
          F.add v (F.of_int noise))
        t.accumulator
end

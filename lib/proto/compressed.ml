(** Two-server aggregation with DPF-compressed one-hot submissions
    (Appendix G, "Share compression").

    A histogram or count-min vote over a domain of 2^bits values is a
    one-hot vector; shipping it as explicit additive shares costs
    Θ(2^bits) field elements per server. With exactly two servers, the
    client can instead send each server one distributed-point-function key
    of O(bits) size ({!Prio_share.Dpf}); the servers expand their keys
    locally into additive shares of the one-hot vector and accumulate as
    usual. Neither key alone reveals the client's value.

    As the paper notes, combining this with SNIP validity checking is an
    open extension (a malicious client can encode a non-one-hot function);
    this pipeline is therefore the compressed analogue of the
    no-robustness scheme, and exists to reproduce Appendix G's
    bandwidth-vs-computation trade-off. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module Dpf = Prio_share.Dpf.Make (F)
  module Rng = Prio_crypto.Rng
  module Metrics = Prio_obs.Metrics
  module Trace = Prio_obs.Trace

  (* DPF uploads feed the same unified channel as {!Client.seal}, so the
     cross-encoding byte comparison (Appendix G) reads off one counter. *)
  let m_upload_bytes = Metrics.counter "prio_client_upload_bytes_total"

  type t = {
    bits : int;  (** domain is [0, 2^bits) *)
    accumulators : F.t array array;  (** per-server expanded share sums *)
    mutable accepted : int;
    mutable upload_bytes : int;
  }

  let create ~bits =
    if bits < 1 || bits > 24 then invalid_arg "Compressed.create: bits out of range";
    {
      bits;
      accumulators = Array.init 2 (fun _ -> Array.make (1 lsl bits) F.zero);
      accepted = 0;
      upload_bytes = 0;
    }

  let domain t = 1 lsl t.bits

  (** One client's submission: generate the DPF keys for the point function
      that is 1 at [value], hand one key to each server, and have each
      server expand and accumulate its share. Returns the client's upload
      size in bytes. *)
  let submit rng t ~value : int =
    if value < 0 || value >= domain t then invalid_arg "Compressed.submit: range";
    Trace.with_span "client.submit_compressed" @@ fun () ->
    let k0, k1 = Dpf.gen rng ~bits:t.bits ~alpha:value ~beta:F.one in
    List.iteri
      (fun server key ->
        let share = Dpf.eval_all key in
        Array.iteri
          (fun j v -> t.accumulators.(server).(j) <- F.add t.accumulators.(server).(j) v)
          share)
      [ k0; k1 ];
    t.accepted <- t.accepted + 1;
    let bytes = Dpf.key_bytes k0 + Dpf.key_bytes k1 in
    t.upload_bytes <- t.upload_bytes + bytes;
    Metrics.add m_upload_bytes bytes;
    bytes

  (** The aggregate histogram. *)
  let publish t : F.t array =
    Array.init (domain t) (fun j ->
        F.add t.accumulators.(0).(j) t.accumulators.(1).(j))

  (** Upload cost of the same submission as explicit 2-server shares. *)
  let explicit_upload_bytes t = 2 * domain t * F.bytes_len
end

(** Wire format for Prio messages: fixed-width canonical field-element
    vectors plus the tagged compressed-share payloads of Appendix I.
    Message sizes measured by the cluster's byte counters are exactly the
    bytes a deployment would send (Figure 6). *)

module Make (F : Prio_field.Field_intf.S) : sig
  module Sh : module type of Prio_share.Share.Make (F)

  val vector_to_bytes : F.t array -> Bytes.t
  val vector_of_bytes : Bytes.t -> F.t array
  (** @raise Invalid_argument on ragged or non-canonical input. *)

  val vector_of_bytes_opt : Bytes.t -> F.t array option
  (** Non-raising variant for network input: [None] on ragged or
      non-canonical payloads. *)

  val field_pair_opt : Bytes.t -> off:int -> (F.t * F.t) option
  (** Exactly two field elements at [off] ([None] on any length or
      canonicity violation) — the shape of SNIP gossip payloads. *)

  val payload_to_bytes : Sh.compressed -> Bytes.t
  (** One tag byte + either the 32-byte seed or the explicit vector. *)

  val payload_of_bytes : Bytes.t -> Sh.compressed
  (** @raise Invalid_argument on unknown tags or bad seed lengths. *)

  val elements_bytes : int -> int
  (** Serialized size of [n] field elements. *)
end

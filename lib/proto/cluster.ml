(** A simulated multi-server Prio deployment with exact byte accounting.

    All s servers run in one process; every server-to-server message is
    serialized through {!Wire} sizes and recorded on a per-link byte-count
    matrix, so the data-transfer numbers (Figure 6) are the bytes a real
    deployment would send. Leadership rotates per submission, which is how
    the paper load-balances the leader's extra traffic (Figure 5).

    Verification flow per submission (leader ℓ):
    - every server locally prepares (communication-free circuit walk and
      polynomial evaluations),
    - non-leaders send their Beaver openings (d_i, e_i) to ℓ       [2 elts]
    - ℓ reconstructs d, e and broadcasts them                      [2 elts each]
    - every non-leader sends its verdict share (σ_i, ζ_i) to ℓ    [2 elts]
    - ℓ broadcasts accept/reject                                   [1 byte]

    In Prio-MPC mode the servers additionally run one Beaver broadcast
    round per mul gate of the secret Valid circuit, which is the Θ(M)
    traffic visible in Figure 6. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Prio_circuit.Circuit.Make (F)
  module Snip = Prio_snip.Snip.Make (F)
  module Mpc = Prio_snip.Mpc.Make (F)
  module Sh = Prio_share.Share.Make (F)
  module W = Wire.Make (F)
  module Server = Server.Make (F)
  module Client = Client.Make (F)
  module Rng = Prio_crypto.Rng
  module Metrics = Prio_obs.Metrics
  module Trace = Prio_obs.Trace
  module Clock = Prio_obs.Clock

  (* Unified byte/latency channels (ISSUE 4): the links matrix below stays
     the per-link source of truth; these global metrics are the cross-layer
     aggregate view that bench and prio_cli read. *)
  let m_link_bytes = Metrics.counter "prio_server_link_bytes_total"
  let m_accepted = Metrics.counter "prio_cluster_accepted_total"
  let m_rejected = Metrics.counter "prio_cluster_rejected_total"
  let h_snip_verify = Metrics.histogram "prio_snip_verify_seconds"
  let h_mpc_eval = Metrics.histogram "prio_mpc_eval_seconds"
  let h_submit = Metrics.histogram "prio_cluster_submit_seconds"

  type mode =
    | Robust_snip  (** full Prio: SNIP-verified submissions *)
    | Robust_mpc  (** Prio-MPC: server-side Valid evaluation (§4.4) *)
    | No_robustness  (** §3 baseline: accumulate without verification *)

  type t = {
    mode : mode;
    circuit : C.t;  (** the Valid predicate over the AFE encoding *)
    encoding_len : int;
    trunc_len : int;
    s : int;
    master : Bytes.t;
    servers : Server.t array;
    mutable snip_ctx : Snip.batch_ctx option;  (** for Robust_snip *)
    mutable triple_ctx : Snip.batch_ctx option;  (** for Robust_mpc's triple SNIP *)
    batch_size : int;
        (** submissions per batch secret r (Appendix I): the verifiers'
            secrets are resampled every [batch_size] submissions, keeping a
            probing client's cheating probability below
            (2M+1)·batch_size/|F| *)
    mutable processed_in_batch : int;
    mutable batches : int;
    epoch_size : int;
        (** submissions per replay/idempotency epoch; 0 disables rotation
            (the pre-streaming behaviour: tables grow with the stream) *)
    epoch_max_age_s : float;
        (** maximum epoch age in seconds before rotation, measured on
            [clock]; 0 disables the age trigger. Either trigger
            (count or age) closes the epoch. *)
    clock : Clock.t;  (** drives the age trigger; injectable for tests *)
    mutable epoch_started_at : float;
    mutable epoch : int;
    mutable submissions_in_epoch : int;
    links : int array array;  (** links.(i).(j): bytes sent i → j *)
    rng : Rng.t;  (** server-side randomness (batch secrets, MPC combos) *)
    mutable next_leader : int;
    mutable accepted : int;
    mutable rejected : int;
  }

  let client_mode t : Client.mode =
    match t.mode with
    | Robust_snip -> Client.Robust_snip t.circuit
    | Robust_mpc -> Client.Robust_mpc (C.num_mul_gates t.circuit)
    | No_robustness -> Client.No_robustness

  let create ?(batch_size = 1024) ?(epoch_size = 0) ?(epoch_max_age_s = 0.)
      ?(clock = Clock.system) ~rng ~mode ~(circuit : C.t) ~trunc_len
      ~num_servers ~master () =
    if num_servers < 1 then invalid_arg "Cluster.create: need a server";
    if (mode <> No_robustness) && num_servers < 2 then
      invalid_arg "Cluster.create: robustness needs at least two servers";
    let encoding_len = C.num_inputs circuit in
    if trunc_len > encoding_len then invalid_arg "Cluster.create: trunc too wide";
    let m = C.num_mul_gates circuit in
    let payload_elements =
      match mode with
      | Robust_snip -> encoding_len + Snip.proof_num_elements circuit
      | Robust_mpc ->
        let tc = Mpc.triple_circuit ~m in
        encoding_len + (3 * m) + Snip.proof_num_elements tc
      | No_robustness -> encoding_len
    in
    let servers =
      Array.init num_servers (fun id ->
          Server.create ~id ~num_servers ~master ~trunc_len ~payload_elements)
    in
    let snip_ctx =
      match mode with
      | Robust_snip -> Some (Snip.make_batch_ctx ~rng ~circuit ~num_servers)
      | _ -> None
    in
    let triple_ctx =
      match mode with
      | Robust_mpc ->
        Some
          (Snip.make_batch_ctx ~rng ~circuit:(Mpc.triple_circuit ~m) ~num_servers)
      | _ -> None
    in
    if batch_size < 1 then invalid_arg "Cluster.create: batch_size < 1";
    if epoch_size < 0 then invalid_arg "Cluster.create: epoch_size < 0";
    if epoch_max_age_s < 0. then
      invalid_arg "Cluster.create: epoch_max_age_s < 0";
    {
      mode;
      circuit;
      encoding_len;
      trunc_len;
      s = num_servers;
      master;
      servers;
      snip_ctx;
      triple_ctx;
      batch_size;
      processed_in_batch = 0;
      batches = 1;
      epoch_size;
      epoch_max_age_s;
      clock;
      epoch_started_at = Clock.now clock;
      epoch = 0;
      submissions_in_epoch = 0;
      links = Array.make_matrix num_servers num_servers 0;
      rng;
      next_leader = 0;
      accepted = 0;
      rejected = 0;
    }

  let resample_batch_secrets t =
    match t.mode with
    | Robust_snip ->
      t.snip_ctx <-
        Some (Snip.make_batch_ctx ~rng:t.rng ~circuit:t.circuit ~num_servers:t.s)
    | Robust_mpc ->
      let m = C.num_mul_gates t.circuit in
      t.triple_ctx <-
        Some
          (Snip.make_batch_ctx ~rng:t.rng ~circuit:(Mpc.triple_circuit ~m)
             ~num_servers:t.s)
    | No_robustness -> ()

  (* Resample the batch secrets after every [batch_size] submissions
     (Appendix I): bounds what a probing client can learn about r. *)
  let maybe_rotate_batch t =
    t.processed_in_batch <- t.processed_in_batch + 1;
    if t.processed_in_batch >= t.batch_size then begin
      t.processed_in_batch <- 0;
      t.batches <- t.batches + 1;
      resample_batch_secrets t
    end

  (** Per-submission state currently resident across all servers —
      replay nonces plus recorded verdicts, both generations. With
      [epoch_size] set this is bounded by [2 * s * epoch_size] entries of
      each kind regardless of stream length. *)
  let resident_entries t =
    Array.fold_left (fun acc srv -> acc + Server.resident_entries srv) 0
      t.servers

  (** Close the replay/idempotency epoch on every server in lockstep.
      Accumulators and counters are untouched — only the per-submission
      tables (the memory that grows with the stream) are dropped. *)
  let rotate_epoch t =
    Array.iter Server.rotate_epoch t.servers;
    t.epoch <- t.epoch + 1;
    t.submissions_in_epoch <- 0;
    t.epoch_started_at <- Clock.now t.clock;
    Trace.event "cluster.epoch_rotated"
      ~attrs:[ ("epoch", string_of_int t.epoch) ]

  (* Streaming mode: rotate the per-submission tables every [epoch_size]
     submissions — or once the epoch is [epoch_max_age_s] seconds old —
     so memory stays flat over an unbounded stream and a trickle of
     submissions cannot keep replay nonces resident forever. *)
  let maybe_rotate_epoch t =
    if t.epoch_size > 0 || t.epoch_max_age_s > 0. then begin
      t.submissions_in_epoch <- t.submissions_in_epoch + 1;
      if t.epoch_size > 0 && t.submissions_in_epoch >= t.epoch_size then
        rotate_epoch t
      else if
        t.epoch_max_age_s > 0.
        && Clock.now t.clock -. t.epoch_started_at >= t.epoch_max_age_s
      then rotate_epoch t
    end

  let send t ~src ~dst nbytes =
    if src <> dst then begin
      t.links.(src).(dst) <- t.links.(src).(dst) + nbytes;
      Metrics.add m_link_bytes nbytes
    end

  let broadcast_from t ~src nbytes =
    for dst = 0 to t.s - 1 do
      send t ~src ~dst nbytes
    done

  let elt = F.bytes_len

  (* SNIP verification round-trip with byte accounting; [subs] are the
     per-server parsed submission shares for the SNIP's circuit. *)
  let run_snip_check t (ctx : Snip.batch_ctx) ~leader
      (subs : Snip.submission_share array) : bool =
    Trace.with_span "server.snip_verify" @@ fun () ->
    Metrics.time h_snip_verify @@ fun () ->
    let states = Array.map (Snip.server_prepare ctx) subs in
    (* openings to the leader *)
    let d = ref F.zero and e = ref F.zero in
    Array.iteri
      (fun i (_, o) ->
        send t ~src:i ~dst:leader (2 * elt);
        d := F.add !d o.Snip.d;
        e := F.add !e o.Snip.e)
      states;
    (* leader broadcasts reconstructed d, e *)
    broadcast_from t ~src:leader (2 * elt);
    let verdicts =
      Array.mapi
        (fun i (st, _) ->
          send t ~src:i ~dst:leader (2 * elt);
          Snip.server_decide_share ctx st ~d:!d ~e:!e)
        states
    in
    broadcast_from t ~src:leader 1;
    Snip.accept verdicts

  (* Prio-MPC: triple-SNIP check, then Beaver evaluation of the Valid
     circuit with per-gate broadcast accounting. *)
  let run_mpc_check t ~leader (vectors : F.t array array) : bool =
    Trace.with_span "server.mpc_eval" @@ fun () ->
    Metrics.time h_mpc_eval @@ fun () ->
    let m = C.num_mul_gates t.circuit in
    let l = t.encoding_len in
    let tc_inputs_len = 3 * m in
    let triple_subs =
      Array.map
        (fun v ->
          Snip.submission_of_vector
            (Mpc.triple_circuit ~m)
            (Array.sub v l (Array.length v - l)))
        vectors
    in
    let triple_ok =
      match t.triple_ctx with
      | Some ctx -> run_snip_check t ctx ~leader triple_subs
      | None -> assert false (* built for every Robust_mpc deployment *)
    in
    if not triple_ok then false
    else begin
      let x_shares = Array.map (fun v -> Array.sub v 0 l) vectors in
      let triples =
        Array.map
          (fun v ->
            Array.init m (fun i ->
                {
                  Mpc.a = v.(l + i);
                  b = v.(l + m + i);
                  c = v.(l + (2 * m) + i);
                }))
          vectors
      in
      ignore tc_inputs_len;
      let wires, _stats = Mpc.eval t.circuit ~inputs:x_shares ~triples in
      (* Beaver traffic: per gate, every server sends its two openings to
         the leader, which broadcasts the reconstructed pair. *)
      for _ = 1 to m do
        for i = 0 to t.s - 1 do
          if i <> leader then send t ~src:i ~dst:leader (2 * elt)
        done;
        broadcast_from t ~src:leader (2 * elt)
      done;
      (* validity decision: random combination of assert-zero wires *)
      for i = 0 to t.s - 1 do
        if i <> leader then send t ~src:i ~dst:leader elt
      done;
      broadcast_from t ~src:leader 1;
      Mpc.decide ~rng:t.rng t.circuit wires
    end

  (** Process one client's packets (one sealed packet per server).
      Returns true iff the submission was accepted and accumulated. *)
  let submit t ~client_id (pk : Client.packets) : bool =
    if Array.length pk.Client.sealed <> t.s then
      invalid_arg "Cluster.submit: one packet per server required";
    Trace.with_span "cluster.submit"
      ~attrs:[ ("client", string_of_int client_id) ]
    @@ fun () ->
    Metrics.time h_submit @@ fun () ->
    let leader = t.next_leader in
    t.next_leader <- (t.next_leader + 1) mod t.s;
    let received =
      Array.mapi
        (fun i packet -> Server.receive t.servers.(i) ~client_id packet)
        pk.Client.sealed
    in
    let vector_of = function
      | Some (_, v) -> v
      | None -> assert false (* guarded by the Option.is_none sweep *)
    in
    let ok =
      if Array.exists Option.is_none received then false
      else begin
        let vectors = Array.map vector_of received in
        match t.mode with
        | No_robustness -> true
        | Robust_snip ->
          let subs = Array.map (Snip.submission_of_vector t.circuit) vectors in
          let ctx =
            match t.snip_ctx with
            | Some ctx -> ctx
            | None -> assert false (* built for every Robust_snip deployment *)
          in
          run_snip_check t ctx ~leader subs
        | Robust_mpc -> run_mpc_check t ~leader vectors
      end
    in
    if ok then begin
      Trace.with_span "server.aggregate" (fun () ->
          Array.iteri
            (fun i r -> Server.accumulate t.servers.(i) (vector_of r))
            received);
      t.accepted <- t.accepted + 1;
      Metrics.incr m_accepted
    end
    else begin
      t.rejected <- t.rejected + 1;
      Metrics.incr m_rejected
    end;
    maybe_rotate_batch t;
    maybe_rotate_epoch t;
    ok

  (** Publish: every server reveals its accumulator (counted as a broadcast
      of k' elements); anyone can sum them and run the AFE decode. Optional
      [dp_alpha] makes each server add its distributed-noise share first
      (§7). *)
  let publish ?dp_alpha t : F.t array =
    Trace.with_span "server.publish" @@ fun () ->
    let parts =
      Array.mapi
        (fun i srv ->
          broadcast_from t ~src:i (t.trunc_len * elt);
          match dp_alpha with
          | None -> Server.publish srv
          | Some alpha -> Server.publish ~dp_noise:(t.rng, alpha) srv)
        t.servers
    in
    Array.init t.trunc_len (fun j ->
        Array.fold_left (fun acc p -> F.add acc p.(j)) F.zero parts)

  (** Fold another cluster's state into this one: accumulators add
      point-wise, counters and link traffic add. Both clusters must share
      the deployment parameters (same circuit, servers, master). Used by
      {!Parallel} to merge per-domain replicas after a multicore batch. *)
  let merge_into ~(dst : t) (src : t) =
    if dst.s <> src.s || dst.trunc_len <> src.trunc_len
       || dst.batch_size <> src.batch_size || dst.mode <> src.mode
       || dst.epoch_size <> src.epoch_size
       || dst.epoch_max_age_s <> src.epoch_max_age_s
    then invalid_arg "Cluster.merge_into: mismatched deployments";
    Array.iteri
      (fun i srv ->
        let d = dst.servers.(i) in
        for j = 0 to dst.trunc_len - 1 do
          d.Server.accumulator.(j) <-
            F.add d.Server.accumulator.(j) srv.Server.accumulator.(j)
        done;
        d.Server.accepted <- d.Server.accepted + srv.Server.accepted)
      src.servers;
    dst.accepted <- dst.accepted + src.accepted;
    dst.rejected <- dst.rejected + src.rejected;
    Array.iteri
      (fun i row ->
        Array.iteri (fun j b -> dst.links.(i).(j) <- dst.links.(i).(j) + b) row)
      src.links;
    (* Merge the Appendix-I rotation schedule: [batches - 1] full batches
       plus the partial one, on each side, give the total submissions ever
       processed; re-deriving (batches, processed_in_batch) from that total
       keeps the merged counters identical to a sequential run's, so no
       secret ever serves more than batch_size submissions. If the merge
       crossed a batch boundary, resample the secrets now rather than
       letting the stale r overstay its budget. *)
    let total =
      (((dst.batches - 1) + (src.batches - 1)) * dst.batch_size)
      + dst.processed_in_batch + src.processed_in_batch
    in
    let batches = (total / dst.batch_size) + 1 in
    let crossed = batches > dst.batches in
    dst.batches <- batches;
    dst.processed_in_batch <- total mod dst.batch_size;
    if crossed then resample_batch_secrets dst;
    (* Epoch rotation follows the same total-derivation rule as batches:
       the merged counters match what a sequential run over the union
       would hold. Crossing an epoch boundary during the merge drops the
       per-submission tables now — replicas' nonces from the closed epoch
       must not outlive it. (Table contents are replica-local either way;
       only the counters are sequential-equivalent.) *)
    if dst.epoch_size > 0 then begin
      let total_epoch_subs =
        (((dst.epoch + src.epoch) * dst.epoch_size) + dst.submissions_in_epoch)
        + src.submissions_in_epoch
      in
      let epoch = total_epoch_subs / dst.epoch_size in
      let crossed = epoch > dst.epoch in
      dst.epoch <- epoch;
      dst.submissions_in_epoch <- total_epoch_subs mod dst.epoch_size;
      if crossed then
        Array.iter
          (fun srv ->
            Hashtbl.reset srv.Server.seen_nonces;
            Hashtbl.reset srv.Server.prev_nonces;
            Hashtbl.reset srv.Server.decisions;
            Hashtbl.reset srv.Server.prev_decisions;
            srv.Server.decided_in_epoch <- 0;
            srv.Server.epoch <- epoch)
          dst.servers
    end;
    (* Leader rotation is per submission (Figure 5): the merged cluster
       continues the global round-robin exactly where a sequential run
       over the union would be. *)
    dst.next_leader <- (dst.accepted + dst.rejected) mod dst.s

  (** Bytes sent by server [i] over the run. *)
  let bytes_sent t i = Array.fold_left ( + ) 0 t.links.(i)

  let total_server_bytes t =
    let acc = ref 0 in
    Array.iter (Array.iter (fun b -> acc := !acc + b)) t.links;
    !acc

  let reset_links t =
    Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.links
end

(** A fault-tolerant TCP deployment of Prio.

    Everything else in [prio_proto] runs the s servers inside one process
    (with exact byte accounting); this module runs them as separate
    processes speaking length-prefixed frames over real sockets, so the
    system can be deployed the way the paper's Go implementation was: one
    listener per server, clients uploading one sealed packet per server,
    and the leader driving the two SNIP gossip rounds over persistent
    server-to-server connections.

    Protocol (all frames are 4-byte big-endian length + tag byte + body;
    [ctx] is the length-prefixed trace-context suffix of {!ctx_bytes} —
    2 zero bytes when no span is open, so the causal frames below always
    carry it):
    - client → any server:   [P] client_id ‖ ctx ‖ sealed     (ack [K]/[R]/[E])
    - client → leader:       [V] client_id ‖ ctx              — verify now
    - leader → follower:     [o] client_id ‖ ctx              → [O] d‖e
    - leader → follower:     [d] client_id ‖ ctx ‖ d ‖ e      → [S] σ‖ζ
    - leader → follower:     [a]/[r] client_id ‖ ctx          → [c] commit ack
    - collector → server:    [Q]                              → [A] accumulator
    - monitor → server:      [q] format byte ('p'/'j')        → [m] metrics text
    - monitor → server:      [h]                              → [H] health probe
    - controller → server:   [X]                              — shutdown
    - any server → peer:     [E] code ‖ detail                — refusal, with
      a one-byte machine-readable code ({!error_code}) and human detail

    Fault tolerance (the paper's §2/§5 threat model — faulty or malicious
    clients *and* servers — applied to the wire):
    - every read/write carries a deadline ({!Retry.deadline}); nothing
      blocks forever, and the serve loop wakes on a tick even when idle;
    - frames are size-capped; a peer claiming an enormous frame gets an
      [E]rror frame instead of an allocation;
    - protocol deviations surface as {!protocol_error} values (never
      [assert]/[Not_found] crashes) and are answered with [E] frames;
    - client submissions retry with exponential backoff + jitter
      ({!Retry.with_backoff}) and are idempotent: servers re-acknowledge
      duplicate uploads/verifies with the original verdict
      ({!Server.decision}) instead of re-processing them;
    - a leader whose follower times out, crashes, or answers garbage
      mid-gossip degrades gracefully: it aborts that one submission
      everywhere, answers the client with [E Unavailable], and keeps
      serving;
    - decisions are a two-phase acked commit: every server appends the
      verdict to its fsynced, HMAC-chained decision journal before
      acknowledging ([c]); the leader acks the client only once every
      follower has acked, and answers [E Commit_pending] otherwise so
      the client resubmits and the leader repairs the partial broadcast
      — a follower dying between receiving a decision and journaling it
      can no longer strand an accepted share outside every checkpoint;
    - {!poll_servers} supervises the forked processes ([waitpid WNOHANG])
      and {!restart_server} revives a dead one on its original port;
    - the whole frame path accepts a deterministic fault injector
      ({!Faults}) so chaos runs replay exactly from a seed.

    See docs/PROTOCOL.md §8 for the failure matrix. *)

(* --------------------------- protocol errors --------------------------- *)

(** Machine-readable refusal codes carried by [E] frames. *)
type error_code =
  | Too_large  (** frame length exceeds the receiver's cap *)
  | Malformed_frame  (** empty frame, short body, or unparseable payload *)
  | Unknown_tag
  | Unknown_client  (** no pending share / recorded verdict for this id *)
  | Unavailable  (** server degraded (e.g. a follower is down) *)
  | Rejected  (** submission definitively refused *)
  | Busy  (** admission queue full; retry with backoff *)
  | Commit_pending
      (** the verdict is journaled at the leader but a follower has not
          acknowledged its copy; resubmitting the packets re-seeds the
          follower and lets the leader repair the commit *)

(** Everything that can go wrong on the wire, as a value — the structured
    replacement for the seed implementation's [assert]s and [Not_found]s. *)
type protocol_error =
  | Timeout of string  (** deadline expired *)
  | Closed of string  (** EOF / EPIPE / ECONNRESET / refused dial *)
  | Frame_oversize of int  (** peer announced a frame above the cap *)
  | Bad_frame of string  (** framing or payload violation *)
  | Peer_error of error_code * string  (** peer answered with an [E] frame *)
  | Io_error of string  (** any other socket-level error *)

let string_of_error_code = function
  | Too_large -> "too-large"
  | Malformed_frame -> "malformed"
  | Unknown_tag -> "unknown-tag"
  | Unknown_client -> "unknown-client"
  | Unavailable -> "unavailable"
  | Rejected -> "rejected"
  | Busy -> "busy"
  | Commit_pending -> "commit-pending"

let string_of_protocol_error = function
  | Timeout what -> "timeout: " ^ what
  | Closed what -> "closed: " ^ what
  | Frame_oversize n -> Printf.sprintf "oversize frame (%d bytes)" n
  | Bad_frame what -> "bad frame: " ^ what
  | Peer_error (c, detail) ->
    Printf.sprintf "peer error [%s] %s" (string_of_error_code c) detail
  | Io_error what -> "io: " ^ what

(** A peer closing mid-write must surface as [EPIPE] (a handleable
    {!protocol_error}), not kill the process. Idempotent; called at every
    entry point that touches a socket. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* ------------------------------- tuning -------------------------------- *)

let default_max_frame_bytes = 16 * 1024 * 1024

type tuning = {
  max_frame_bytes : int;  (** reject frames announcing more than this *)
  io_timeout : float;  (** per-frame read/write deadline, seconds *)
  dial_timeout : float;  (** per-connection-establishment deadline *)
  select_tick : float;  (** serve-loop wakeup when idle *)
  backoff : Retry.backoff;  (** client-side RPC retry schedule *)
  verify_domains : int;
      (** worker domains per server process for SNIP preparation; 1 runs
          everything inline on the event-loop thread *)
  max_pending : int;
      (** admission cap: uploads beyond this many in-flight submissions
          per server are shed with a retryable [Busy] error frame *)
  epoch_size : int;
      (** decisions per replay/idempotency epoch; 0 = never rotate
          (memory then grows with the stream, the pre-streaming mode) *)
  epoch_max_age_s : float;
      (** maximum epoch age in seconds before rotation; 0 disables the
          age trigger. Either trigger closes the epoch, so a trickle of
          decisions cannot keep replay state resident forever *)
  clock : Prio_obs.Clock.t;
      (** drives the epoch-age trigger; injectable for tests *)
  checkpoint_dir : string option;
      (** where servers persist snapshots after decisions; [None]
          disables durability (crash loses the server's state) *)
  checkpoint_every : int;
      (** decisions between snapshots; 1 (default) loses nothing across
          a crash, larger amortizes the write at the cost of losing the
          tail since the last snapshot *)
  journal_fsync : bool;
      (** fsync each decision-journal append before acknowledging it
          (default). Turning it off trades the write-ahead durability
          guarantee for speed — only for measuring the fsync overhead *)
  max_resubmits : int;
      (** how many times a client resubmits a whole submission after a
          [Commit_pending] answer (the leader decided, a follower has not
          acknowledged its copy) before giving up *)
  trace_dir : string option;
      (** with it set, each server process installs its own span recorder
          (origin ["server<id>"]) and dumps [<trace_dir>/server<id>.jsonl]
          on clean shutdown, ready for {!Prio_obs.Trace.merge} *)
}

let default_tuning =
  {
    max_frame_bytes = default_max_frame_bytes;
    io_timeout = 5.0;
    dial_timeout = 2.0;
    select_tick = 0.25;
    backoff = Retry.default_backoff;
    verify_domains = 1;
    max_pending = 1024;
    epoch_size = 0;
    epoch_max_age_s = 0.;
    clock = Prio_obs.Clock.system;
    checkpoint_dir = None;
    checkpoint_every = 1;
    journal_fsync = true;
    max_resubmits = 4;
    trace_dir = None;
  }

(* ---------------------------- observability ---------------------------- *)

module Metrics = Prio_obs.Metrics
module Trace = Prio_obs.Trace
module Clock = Prio_obs.Clock
module Report = Prio_obs.Report

(* Unified on-wire accounting: every frame that crosses a socket in this
   process — uploads, gossip, collection — lands in these channels, the
   TCP analogue of {!Cluster}'s links matrix. *)
let m_tx_bytes = Metrics.counter "prio_net_tx_bytes_total"
let m_tx_frames = Metrics.counter "prio_net_tx_frames_total"
let m_rx_bytes = Metrics.counter "prio_net_rx_bytes_total"
let m_rx_frames = Metrics.counter "prio_net_rx_frames_total"
let m_timeouts = Metrics.counter "prio_net_timeouts_total"
let h_frame_bytes = Metrics.histogram "prio_net_frame_bytes"
let h_rpc = Metrics.histogram "prio_net_rpc_seconds"

(* Admission control and durability channels (docs/OBSERVABILITY.md). *)
let m_shed = Metrics.counter "prio_net_shed_total"
let g_pending = Metrics.gauge "prio_net_pending_depth"
let m_ckpt_writes = Metrics.counter "prio_ckpt_writes_total"
let m_ckpt_errors = Metrics.counter "prio_ckpt_errors_total"
let m_restores = Metrics.counter "prio_ckpt_restores_total"
let m_restore_rejected = Metrics.counter "prio_ckpt_rejected_total"
let h_ckpt_write = Metrics.histogram "prio_ckpt_write_seconds"
let h_restore = Metrics.histogram "prio_ckpt_restore_seconds"

(* Decision-journal and two-phase-commit channels: the write-ahead log
   each server appends to before acknowledging a decision, and the
   leader's view of the acked broadcast (docs/OBSERVABILITY.md). *)
let m_journal_appends = Metrics.counter "prio_journal_appends_total"
let m_journal_replayed = Metrics.counter "prio_journal_replayed_total"
let m_journal_truncations = Metrics.counter "prio_journal_truncations_total"
let m_journal_errors = Metrics.counter "prio_journal_errors_total"
let h_journal_fsync = Metrics.histogram "prio_journal_fsync_seconds"
let m_commit_acks = Metrics.counter "prio_commit_acks_total"
let m_commit_failures = Metrics.counter "prio_commit_failures_total"
let m_commit_repairs = Metrics.counter "prio_commit_repairs_total"

(* Per-stage latency histograms: every submission crosses admission →
   verify → aggregate → checkpoint inside a server process; each stage
   records its wall time here, and the live scrape ([q] frames) pulls the
   percentile view out of the running process. *)
let h_stage_admit = Metrics.histogram "prio_stage_admit_seconds"
let h_stage_verify = Metrics.histogram "prio_stage_verify_seconds"
let h_stage_aggregate = Metrics.histogram "prio_stage_aggregate_seconds"
let h_stage_checkpoint = Metrics.histogram "prio_stage_checkpoint_seconds"

(* Supervisor view (recorded in the probing process, not the servers):
   how many servers the last probe sweep found broken, and how many
   probe-driven restarts were issued over this process's lifetime. *)
let g_sup_down = Metrics.gauge "prio_supervisor_down"
let g_sup_degraded = Metrics.gauge "prio_supervisor_degraded"
let m_probe_restarts = Metrics.counter "prio_supervisor_probe_restarts_total"

(* ------------------------------- framing ------------------------------- *)

let put_u32 v =
  Bytes.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let tagged tag body = Bytes.cat (Bytes.make 1 tag) body

let put_u16 v =
  Bytes.init 2 (fun i -> Char.chr ((v lsr (8 * (1 - i))) land 0xff))

let get_u16 b off =
  (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

(* IEEE-754 double, big-endian — the checkpoint-age field of [H] frames *)
let put_f64 v =
  let bits = Int64.bits_of_float v in
  Bytes.init 8 (fun i ->
      Char.chr
        (Int64.to_int (Int64.shift_right_logical bits (8 * (7 - i)))
        land 0xff))

let get_f64 b off =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor
        (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code (Bytes.get b (off + i))))
  done;
  Int64.float_of_bits !bits

(* ---------------------------- trace context ---------------------------- *)

(** Length-prefixed trace-context suffix for causal frames: [u16 len ‖
    context], where the context is the calling domain's current
    {!Trace.context} ([len = 0] when no recorder/span is live, so
    uninstrumented peers interoperate unchanged). Receivers parse it with
    {!get_ctx} and open their handling span with [Trace.with_span_ctx],
    which is how a client's submission span becomes the ancestor of the
    leader's — and, via the gossip frames, every follower's — spans in
    the merged cross-process trace. *)
let ctx_bytes () =
  match Trace.context () with
  | None -> Bytes.make 2 '\000'
  | Some c ->
    let s = Trace.context_to_string c in
    let n = String.length s in
    if n > 0xffff then Bytes.make 2 '\000'
    else Bytes.cat (put_u16 n) (Bytes.of_string s)

(** [get_ctx frame off] parses a {!ctx_bytes} suffix at [off]; returns
    the context (if present and well-formed) and the offset just past the
    suffix. Total: a truncated or garbled suffix degrades to [None] — a
    missing trace must never refuse a frame. *)
let get_ctx frame off =
  if Bytes.length frame < off + 2 then (None, Bytes.length frame)
  else begin
    let n = get_u16 frame off in
    let off = off + 2 in
    if n = 0 || Bytes.length frame < off + n then (None, off)
    else (Trace.context_of_string (Bytes.sub_string frame off n), off + n)
  end

(* wait until [fd] is ready for reading/writing, bounded by [deadline];
   false on expiry *)
let rec wait_io ~read fd deadline =
  let left = Retry.remaining deadline in
  if left <= 0. then false
  else
    let t = if left = infinity then -1. else left in
    match
      Unix.select (if read then [ fd ] else []) (if read then [] else [ fd ]) [] t
    with
    | [], [], _ -> false
    | _ -> true
    | exception Unix.Unix_error (EINTR, _, _) -> wait_io ~read fd deadline

let write_frame ?(deadline = Retry.no_deadline) fd (payload : Bytes.t) :
    (unit, protocol_error) result =
  let n = Bytes.length payload in
  (* header + payload assembled once into a single buffer, one write path
     (no extra [Bytes.cat] of a separate header) *)
  let buf = Bytes.create (4 + n) in
  Bytes.set buf 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (n land 0xff));
  Bytes.blit payload 0 buf 4 n;
  let rec send off len =
    if len = 0 then Ok ()
    else if not (wait_io ~read:false fd deadline) then
      Error (Timeout "write_frame")
    else
      match Unix.write fd buf off len with
      | w -> send (off + w) (len - w)
      | exception Unix.Unix_error (EINTR, _, _) -> send off len
      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
        Error (Closed "write_frame: peer closed")
      | exception Unix.Unix_error (e, _, _) ->
        Error (Io_error ("write_frame: " ^ Unix.error_message e))
  in
  match send 0 (4 + n) with
  | Ok () ->
    Metrics.add m_tx_bytes (4 + n);
    Metrics.incr m_tx_frames;
    Metrics.observe_int h_frame_bytes n;
    Ok ()
  | Error (Timeout _) as e ->
    Metrics.incr m_timeouts;
    e
  | Error _ as e -> e

let read_exactly fd n deadline : (Bytes.t, protocol_error) result =
  let buf = Bytes.create n in
  let rec go got =
    if got = n then Ok buf
    else if not (wait_io ~read:true fd deadline) then
      Error (Timeout "read_frame")
    else
      match Unix.read fd buf got (n - got) with
      | 0 -> Error (Closed "read_frame: eof")
      | r -> go (got + r)
      | exception Unix.Unix_error (EINTR, _, _) -> go got
      | exception Unix.Unix_error (ECONNRESET, _, _) ->
        Error (Closed "read_frame: reset")
      | exception Unix.Unix_error (e, _, _) ->
        Error (Io_error ("read_frame: " ^ Unix.error_message e))
  in
  go 0

let read_frame ?(deadline = Retry.no_deadline)
    ?(max_bytes = default_max_frame_bytes) fd :
    (Bytes.t, protocol_error) result =
  match read_exactly fd 4 deadline with
  | Error (Timeout _) as e ->
    Metrics.incr m_timeouts;
    e
  | Error _ as e -> e
  | Ok hdr -> (
    let n = get_u32 hdr 0 in
    if n > max_bytes then
      (* refuse before allocating attacker-controlled memory *)
      Error (Frame_oversize n)
    else if n = 0 then Error (Bad_frame "empty (tag-less) frame")
    else
      match read_exactly fd n deadline with
      | Ok frame ->
        Metrics.add m_rx_bytes (4 + n);
        Metrics.incr m_rx_frames;
        Metrics.observe_int h_frame_bytes n;
        Ok frame
      | Error (Timeout _) as e ->
        Metrics.incr m_timeouts;
        e
      | Error _ as e -> e)

(* ----------------------------- error frame ----------------------------- *)

let error_code_byte = function
  | Too_large -> 'L'
  | Malformed_frame -> 'M'
  | Unknown_tag -> 'T'
  | Unknown_client -> 'C'
  | Unavailable -> 'U'
  | Rejected -> 'J'
  | Busy -> 'B'
  | Commit_pending -> 'W'

let error_code_of_byte = function
  | 'L' -> Some Too_large
  | 'M' -> Some Malformed_frame
  | 'T' -> Some Unknown_tag
  | 'C' -> Some Unknown_client
  | 'U' -> Some Unavailable
  | 'J' -> Some Rejected
  | 'B' -> Some Busy
  | 'W' -> Some Commit_pending
  | _ -> None

let error_frame code detail =
  let d = Bytes.of_string detail in
  let b = Bytes.create (2 + Bytes.length d) in
  Bytes.set b 0 'E';
  Bytes.set b 1 (error_code_byte code);
  Bytes.blit d 0 b 2 (Bytes.length d);
  b

(** Decode an [E] frame (first byte already known to be ['E']). *)
let parse_error_frame frame =
  if Bytes.length frame < 2 then None
  else
    match error_code_of_byte (Bytes.get frame 1) with
    | None -> None
    | Some c -> Some (c, Bytes.sub_string frame 2 (Bytes.length frame - 2))

(* -------------------------- fault-aware I/O ---------------------------- *)

(** Frame write through an optional fault injector. [Drop] pretends the
    frame went out; [Crash] terminates the calling process (that is what
    the policy means — use it only for server chaos). *)
let send_frame ?faults ?deadline fd payload =
  match faults with
  | None -> write_frame ?deadline fd payload
  | Some f -> (
    match Faults.decide f payload with
    | Faults.Deliver p -> write_frame ?deadline fd p
    | Faults.Drop -> Ok ()
    | Faults.Disconnect ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Closed "fault injection: disconnect")
    | Faults.Crash -> exit 70)

(** Frame read through an optional fault injector; a dropped reply
    surfaces as the [Timeout] the caller would have seen for real. *)
let recv_frame ?faults ?deadline ?max_bytes fd =
  match read_frame ?deadline ?max_bytes fd with
  | Error _ as e -> e
  | Ok frame -> (
    match faults with
    | None -> Ok frame
    | Some f -> (
      match Faults.decide f frame with
      | Faults.Deliver p when Bytes.length p = 0 ->
        Error (Bad_frame "fault injection: truncated to empty")
      | Faults.Deliver p -> Ok p
      | Faults.Drop -> Error (Timeout "fault injection: reply dropped")
      | Faults.Disconnect ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Closed "fault injection: disconnect")
      | Faults.Crash -> exit 70))

(* -------------------------------- dial --------------------------------- *)

(** Connect to [addr] under a deadline, with a fresh socket per attempt
    (a socket that failed [connect] must not be reused). With
    [retry_refused] (default), ECONNREFUSED / ETIMEDOUT / EHOSTUNREACH /
    ENETUNREACH are retried until the deadline — the launch-time case
    where a server has bound but not yet forked far enough to accept;
    without it they fail immediately so a caller with its own backoff
    loop (the client RPC path) is not stuck spinning on a dead port. *)
let dial ?(deadline = Retry.after 2.0) ?(retry_refused = true) addr :
    (Unix.file_descr, protocol_error) result =
  let rec attempt () =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    let close () = try Unix.close fd with Unix.Unix_error _ -> () in
    let ok () =
      Unix.clear_nonblock fd;
      (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
      Ok fd
    in
    let unreachable e =
      close ();
      if not retry_refused then
        Error (Closed ("dial: " ^ Unix.error_message e))
      else if Retry.expired deadline then
        Error (Timeout ("dial: " ^ Unix.error_message e ^ " until deadline"))
      else begin
        Retry.sleep 0.02;
        attempt ()
      end
    in
    Unix.set_nonblock fd;
    match Unix.connect fd addr with
    | () -> ok ()
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _)
      -> (
      if not (wait_io ~read:false fd deadline) then begin
        close ();
        Error (Timeout "dial")
      end
      else
        match Unix.getsockopt_error fd with
        | None -> ok ()
        | Some
            ((ECONNREFUSED | ETIMEDOUT | EHOSTUNREACH | ENETUNREACH
             | ECONNRESET) as e) ->
          unreachable e
        | Some e ->
          close ();
          Error (Io_error ("dial: " ^ Unix.error_message e)))
    | exception
        Unix.Unix_error
          ( (ECONNREFUSED | ETIMEDOUT | EHOSTUNREACH | ENETUNREACH) as e,
            _,
            _ ) ->
      unreachable e
    | exception Unix.Unix_error (EINTR, _, _) ->
      close ();
      if Retry.expired deadline then Error (Timeout "dial") else attempt ()
    | exception Unix.Unix_error (e, _, _) ->
      close ();
      Error (Io_error ("dial: " ^ Unix.error_message e))
  in
  attempt ()

(* ------------------------- health and scrape --------------------------- *)

(** One server's answer to an [h] probe: enough signal for a supervisor
    to distinguish "serving", "serving but degraded" (a gossip link to a
    peer is down, durability is stale) and "wedged" (process alive but
    the probe itself times out) — liveness alone ([waitpid]) sees only
    the first and last. *)
type health = {
  h_server : int;  (** server id (0 = leader) *)
  h_epoch : int;  (** current replay/idempotency epoch *)
  h_pending : int;  (** admission-queue depth (in-flight submissions) *)
  h_accepted : int;  (** submissions folded into the accumulator *)
  h_ckpt_age : float option;
      (** seconds since this process last wrote a snapshot; [None] when
          durability is off or nothing has been checkpointed yet *)
  h_peers : (int * bool) list;
      (** leader only: per-follower [(server id, link cached)] — [false]
          means the persistent gossip connection is down (dropped after a
          failure, or never established) and will be redialed on demand *)
}

let health_to_bytes h =
  let buf = Buffer.create 64 in
  Buffer.add_bytes buf (put_u32 h.h_server);
  Buffer.add_bytes buf (put_u32 h.h_epoch);
  Buffer.add_bytes buf (put_u32 h.h_pending);
  Buffer.add_bytes buf (put_u32 h.h_accepted);
  (match h.h_ckpt_age with
  | None ->
    Buffer.add_char buf '\000';
    Buffer.add_bytes buf (put_f64 0.)
  | Some age ->
    Buffer.add_char buf '\001';
    Buffer.add_bytes buf (put_f64 age));
  Buffer.add_char buf (Char.chr (List.length h.h_peers land 0xff));
  List.iter
    (fun (j, up) ->
      Buffer.add_bytes buf (put_u32 j);
      Buffer.add_char buf (if up then '\001' else '\000'))
    h.h_peers;
  Buffer.to_bytes buf

let health_of_bytes_opt frame ~off =
  let len = Bytes.length frame in
  if len < off + 26 then None
  else begin
    let npeers = Char.code (Bytes.get frame (off + 25)) in
    if len < off + 26 + (5 * npeers) then None
    else begin
      let peers =
        List.init npeers (fun k ->
            let p = off + 26 + (5 * k) in
            (get_u32 frame p, Bytes.get frame (p + 4) <> '\000'))
      in
      Some
        {
          h_server = get_u32 frame off;
          h_epoch = get_u32 frame (off + 4);
          h_pending = get_u32 frame (off + 8);
          h_accepted = get_u32 frame (off + 12);
          h_ckpt_age =
            (if Bytes.get frame (off + 16) = '\000' then None
             else Some (get_f64 frame (off + 17)));
          h_peers = peers;
        }
    end
  end

(* one probe RPC: fresh connection, no retries — a supervisor wants the
   current truth, not a backoff-smoothed one *)
let probe_rpc ~tuning addr payload ~expect =
  ignore_sigpipe ();
  match
    dial ~retry_refused:false ~deadline:(Retry.after tuning.dial_timeout) addr
  with
  | Error e -> Error e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let deadline = Retry.after tuning.io_timeout in
        match write_frame ~deadline fd payload with
        | Error e -> Error e
        | Ok () -> (
          match read_frame ~deadline ~max_bytes:tuning.max_frame_bytes fd with
          | Error e -> Error e
          | Ok reply ->
            if Bytes.length reply = 0 then Error (Bad_frame "empty reply")
            else if Bytes.get reply 0 = 'E' then (
              match parse_error_frame reply with
              | Some (c, detail) -> Error (Peer_error (c, detail))
              | None -> Error (Bad_frame "garbled error frame"))
            else if Bytes.get reply 0 <> expect then
              Error
                (Bad_frame
                   (Printf.sprintf "expected %C reply, got %C" expect
                      (Bytes.get reply 0)))
            else Ok reply))

(** Ask one server for its {!health} over a fresh connection ([h] → [H]).
    Works against any live server of a deployment; an error is itself the
    signal (dial refused = port dead, timeout = process wedged). *)
let probe_health ?(tuning = default_tuning) addr :
    (health, protocol_error) result =
  match probe_rpc ~tuning addr (tagged 'h' Bytes.empty) ~expect:'H' with
  | Error _ as e -> e
  | Ok reply -> (
    match health_of_bytes_opt reply ~off:1 with
    | Some h -> Ok h
    | None -> Error (Bad_frame "bad health payload"))

(** Pull one server's live metrics registry over TCP ([q] → [m]) as
    Prometheus exposition text or the {!Prio_obs.Report.json} snapshot —
    the scrape endpoint, without embedding an HTTP server. *)
let scrape_metrics ?(tuning = default_tuning) ?(format = `Prometheus) addr :
    (string, protocol_error) result =
  let fmt = match format with `Prometheus -> 'p' | `Json -> 'j' in
  match
    probe_rpc ~tuning addr (tagged 'q' (Bytes.make 1 fmt)) ~expect:'m'
  with
  | Error _ as e -> e
  | Ok reply -> Ok (Bytes.sub_string reply 1 (Bytes.length reply - 1))

(* ------------------------------ deployment ----------------------------- *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Prio_circuit.Circuit.Make (F)
  module Snip = Prio_snip.Snip.Make (F)
  module Sh = Prio_share.Share.Make (F)
  module W = Wire.Make (F)
  module Server = Server.Make (F)
  module Client = Client.Make (F)
  module Ckpt = Checkpoint.Make (F)
  module Rng = Prio_crypto.Rng

  type config = {
    circuit : C.t;
    trunc_len : int;
    num_servers : int;
    master : Bytes.t;
    batch_seed : Bytes.t;
        (** all servers derive the shared batch secrets (r, z) from this;
            in deployment the leader would distribute it over the
            authenticated server channels *)
  }

  type pending = {
    share : F.t array;
    mutable state : Snip.server_state option;
    mutable prep : (Snip.server_state * Snip.opening) Pool.future option;
        (** eager [server_prepare], queued on the worker pool at upload
            time so it overlaps with subsequent frame handling *)
  }

  (** Run one server's event loop until an [X] frame arrives. [listen_fd]
      must already be bound and listening (so the caller knows the port).
      The leader (id 0) additionally dials the followers — lazily
      redialing ones that died and came back. [faults], if given, sits on
      this server's frame-receive path (and may [Crash] the process).

      With [tuning.checkpoint_dir] set, the server resumes from its
      latest valid snapshot at startup (rejecting anything corrupted,
      truncated, stale below [restore_min_epoch], or keyed to a different
      master — those fall back to a clean epoch restart) and persists a
      new snapshot every [checkpoint_every] decisions. *)
  let serve ?(tuning = default_tuning) ?faults ?(restore_min_epoch = 0) cfg
      ~id ~(listen_fd : Unix.file_descr)
      ~(follower_addrs : Unix.sockaddr array) =
    ignore_sigpipe ();
    (* this process's registry answers the live scrape: zero whatever the
       forking parent had accumulated, and time stages on the deployment
       clock so manual-clock tests stay deterministic *)
    Metrics.reset ();
    Metrics.set_clock tuning.clock;
    (match tuning.trace_dir with
    | None -> ()
    | Some _ ->
      (* own recorder, origin-labeled so per-process dumps merge into one
         cross-process tree ({!Trace.merge}) *)
      Trace.install
        (Trace.create ~clock:tuning.clock ~capacity:65536
           ~origin:("server" ^ string_of_int id) ()));
    let payload_elements =
      C.num_inputs cfg.circuit + Snip.proof_num_elements cfg.circuit
    in
    let state =
      Server.create ~id ~num_servers:cfg.num_servers ~master:cfg.master
        ~trunc_len:cfg.trunc_len ~payload_elements
    in
    let ckpt_key = Checkpoint.derive_key ~master:cfg.master ~server_id:id in
    (* crash recovery: resume mid-collection from the latest snapshot *)
    (match tuning.checkpoint_dir with
    | None -> ()
    | Some dir ->
      if Sys.file_exists (Checkpoint.path ~dir ~server_id:id) then begin
        match
          Metrics.time h_restore (fun () ->
              Ckpt.load ~min_epoch:restore_min_epoch ~key:ckpt_key ~dir
                ~server_id:id ())
        with
        | Ok snap when Array.length snap.Ckpt.accumulator = cfg.trunc_len ->
          Ckpt.apply snap state;
          Metrics.incr m_restores;
          Trace.event "server.restored"
            ~attrs:
              [ ("server", string_of_int id);
                ("epoch", string_of_int snap.Ckpt.epoch);
                ("accepted", string_of_int snap.Ckpt.accepted) ]
        | Ok _ ->
          Metrics.incr m_restore_rejected;
          Trace.event "server.snapshot_rejected"
            ~attrs:
              [ ("server", string_of_int id);
                ("error", "accumulator width mismatch") ]
        | Error e ->
          (* invalid snapshot: clean epoch restart, never a crash loop *)
          Metrics.incr m_restore_rejected;
          Trace.event "server.snapshot_rejected"
            ~attrs:
              [ ("server", string_of_int id);
                ("error", Checkpoint.string_of_error e) ]
      end);
    (* Leader bookkeeping for the two-phase commit: client ids whose
       verdict is journaled here but not yet acknowledged by every
       follower. A duplicate [V] for such an id triggers a repair
       re-broadcast instead of a plain re-ack. *)
    let uncommitted : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    (* Decision journal: the write-ahead tail the snapshot has not
       absorbed. Opened (and chain-verified) before serving; entries
       past the snapshot's [journal_seq] watermark replay into the
       running state — that is how a follower killed between journaling
       a decision and the next snapshot still recovers it. *)
    let journal : Ckpt.journal option ref = ref None in
    (match tuning.checkpoint_dir with
    | None -> ()
    | Some dir -> (
      let jkey =
        Checkpoint.derive_journal_key ~master:cfg.master ~server_id:id
      in
      match Ckpt.journal_open ~key:jkey ~dir ~server_id:id () with
      | Error e ->
        (* unreadable/tampered journal: serve without it (durability
           degraded, availability kept), same policy as a bad snapshot *)
        Metrics.incr m_journal_errors;
        Trace.event "server.journal_error"
          ~attrs:
            [ ("server", string_of_int id);
              ("error", Checkpoint.string_of_error e) ]
      | Ok (entries, j) ->
        journal := Some j;
        let floor = state.Server.journal_seq in
        List.iter
          (fun (e : Ckpt.journal_entry) ->
            if
              e.Ckpt.j_seq > floor
              && Server.record_decision state ~client_id:e.Ckpt.j_client
                   e.Ckpt.j_accepted
            then begin
              if e.Ckpt.j_accepted then Server.accumulate state e.Ckpt.j_share;
              Metrics.incr m_journal_replayed;
              (* conservatively treat replayed decisions as possibly
                 part-broadcast: a retried [V] will repair them *)
              if id = 0 then Hashtbl.replace uncommitted e.Ckpt.j_client ();
              Trace.event "server.journal_replayed"
                ~attrs:
                  [ ("server", string_of_int id);
                    ("client", string_of_int e.Ckpt.j_client) ]
            end)
          entries));
    let decisions_since_ckpt = ref 0 in
    let last_ckpt_at = ref nan in
    let write_checkpoint () =
      match tuning.checkpoint_dir with
      | None -> ()
      | Some dir -> (
        (* nested under whatever decision span is open, so checkpoint
           writes appear inside the submission's merged trace *)
        Trace.with_span "server.checkpoint"
          ~attrs:[ ("server", string_of_int id) ]
        @@ fun () ->
        match
          Metrics.time h_stage_checkpoint (fun () ->
              Metrics.time h_ckpt_write (fun () ->
                  Ckpt.save ~key:ckpt_key ~dir (Ckpt.of_server state)))
        with
        | Ok () ->
          Metrics.incr m_ckpt_writes;
          last_ckpt_at := Clock.now tuning.clock;
          (* the snapshot now carries [journal_seq], so every journaled
             decision is absorbed: drop the journal prefix *)
          (match !journal with
          | None -> ()
          | Some j -> (
            match Ckpt.journal_truncate j with
            | Ok () -> Metrics.incr m_journal_truncations
            | Error e ->
              Metrics.incr m_journal_errors;
              Trace.event "server.journal_error"
                ~attrs:
                  [ ("server", string_of_int id);
                    ("error", Checkpoint.string_of_error e) ]))
        | Error e ->
          (* a failed write degrades durability, not availability *)
          Metrics.incr m_ckpt_errors;
          Trace.event "server.checkpoint_error"
            ~attrs:
              [ ("server", string_of_int id);
                ("error", Checkpoint.string_of_error e) ])
    in
    (* Record a verdict, then run the durability/flat-memory schedule:
       rotate the per-submission tables every [epoch_size] decisions — or
       once the epoch is [epoch_max_age_s] seconds old with at least one
       decision in it — and snapshot every [checkpoint_every] decisions
       (a rotation always snapshots, so restarting from it cannot
       resurrect a closed epoch). *)
    let epoch_started_at = ref (Clock.now tuning.clock) in
    let rotate_now () =
      Server.rotate_epoch state;
      epoch_started_at := Clock.now tuning.clock;
      decisions_since_ckpt := 0;
      write_checkpoint ();
      (* decisions the rotation aged out can no longer be re-acked, so
         they can no longer be repaired either *)
      Hashtbl.iter
        (fun client_id () ->
          if Server.decision state ~client_id = None then
            Hashtbl.remove uncommitted client_id)
        (Hashtbl.copy uncommitted)
    in
    let epoch_expired () =
      tuning.epoch_max_age_s > 0.
      && state.Server.decided_in_epoch > 0
      && Clock.now tuning.clock -. !epoch_started_at >= tuning.epoch_max_age_s
    in
    (* Write-ahead the verdict: append to the decision journal (fsynced
       under the default tuning) before the decision is applied or
       acknowledged anywhere. Returns [false] only when a live journal
       could not take the record — the caller decides whether that
       degrades durability (leader) or availability (follower).
       Idempotent: an already-recorded decision is already journaled. *)
    let journal_decision ~client_id accepted share =
      match !journal with
      | None -> true
      | Some j -> (
        match Server.decision state ~client_id with
        | Some _ -> true
        | None -> (
          let entry =
            { Ckpt.j_seq = state.Server.journal_seq + 1;
              j_client = client_id;
              j_accepted = accepted;
              j_epoch = state.Server.epoch;
              j_share = (if accepted then share else [||]) }
          in
          match
            Metrics.time h_journal_fsync (fun () ->
                Ckpt.journal_append ~fsync:tuning.journal_fsync j entry)
          with
          | Ok () ->
            Metrics.incr m_journal_appends;
            true
          | Error e ->
            Metrics.incr m_journal_errors;
            Trace.event "server.journal_error"
              ~attrs:
                [ ("server", string_of_int id);
                  ("error", Checkpoint.string_of_error e) ];
            false))
    in
    let finish_decision ~client_id verdict =
      ignore (Server.record_decision state ~client_id verdict : bool);
      if
        (tuning.epoch_size > 0
        && state.Server.decided_in_epoch >= tuning.epoch_size)
        || epoch_expired ()
      then rotate_now ()
      else begin
        incr decisions_since_ckpt;
        if !decisions_since_ckpt >= tuning.checkpoint_every then begin
          decisions_since_ckpt := 0;
          write_checkpoint ()
        end
      end
    in
    let ctx =
      Snip.make_batch_ctx
        ~rng:(Rng.of_seed cfg.batch_seed)
        ~circuit:cfg.circuit ~num_servers:cfg.num_servers
    in
    let pending : (int, pending) Hashtbl.t = Hashtbl.create 64 in
    let note_depth () =
      Metrics.set g_pending (float_of_int (Hashtbl.length pending))
    in
    (* Multicore verification: the heavy communication-free step
       (circuit walk + three polynomial evaluations) runs on this pool.
       With [verify_domains = 1] the pool is inline and preparation
       happens lazily at gossip time, exactly as before; with more
       domains, preparation is queued the moment an upload lands, so it
       overlaps with the event loop's frame handling and with the other
       submissions' preparation. Created here — after the fork — so the
       worker domains belong to this server process. *)
    let pool = Pool.create ~domains:tuning.verify_domains in
    let eager = Pool.size pool > 1 in
    let prepare_pending (p : pending) : Snip.server_state * Snip.opening =
      match p.prep with
      | Some fut -> Pool.await fut
      | None ->
        Snip.server_prepare ctx (Snip.submission_of_vector cfg.circuit p.share)
    in
    let nf = if id = 0 then Array.length follower_addrs else 0 in
    (* leader: persistent connections to followers, redialed on demand *)
    let follower_fds : Unix.file_descr option array = Array.make nf None in
    let connect_follower j =
      match follower_fds.(j) with
      | Some fd -> Ok fd
      | None -> (
        match
          dial ~deadline:(Retry.after tuning.dial_timeout) follower_addrs.(j)
        with
        | Ok fd ->
          follower_fds.(j) <- Some fd;
          Ok fd
        | Error _ as e -> e)
    in
    let drop_follower j =
      match follower_fds.(j) with
      | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        follower_fds.(j) <- None
      | None -> ()
    in
    if id = 0 then
      for j = 0 to nf - 1 do
        ignore (connect_follower j)
      done;
    let reply fd payload =
      match
        write_frame ~deadline:(Retry.after tuning.io_timeout) fd payload
      with
      | Ok () | Error _ -> ()
      (* a client that vanished mid-reply is cleaned up on its next read *)
    in
    let reply_error fd code detail = reply fd (error_frame code detail) in
    (* A failure on a *cached* link may just mean the peer restarted since
       we last spoke (stale persistent connection): drop it and retry once
       over a fresh dial. A failure on a connection we just established is
       authoritative — the follower really is down. *)
    let ask_follower j payload =
      let attempt () =
        match connect_follower j with
        | Error _ as e -> e
        | Ok fd -> (
          let deadline = Retry.after tuning.io_timeout in
          match write_frame ~deadline fd payload with
          | Error e ->
            drop_follower j;
            Error e
          | Ok () -> (
            match
              read_frame ~deadline ~max_bytes:tuning.max_frame_bytes fd
            with
            | Error e ->
              drop_follower j;
              Error e
            | Ok r -> Ok r))
      in
      let was_cached = follower_fds.(j) <> None in
      match attempt () with
      | Ok _ as r -> r
      | Error _ when was_cached -> attempt ()
      | Error _ as e -> e
    in
    let pair_bytes a b = Bytes.cat (F.to_bytes a) (F.to_bytes b) in
    (* Two-phase decision broadcast: send [a]/[r] to one follower and
       wait for its [c] commit ack, meaning the follower journaled the
       verdict before replying. Returns [true] only on a genuine ack.
       An [E] reply (e.g. the follower's journal is failing) keeps the
       connection; any other reply means the streams are desynced. *)
    let commit_follower j payload =
      match ask_follower j payload with
      | Error _ ->
        Metrics.incr m_commit_failures;
        false
      | Ok r when Bytes.length r > 0 && Bytes.get r 0 = 'c' ->
        Metrics.incr m_commit_acks;
        true
      | Ok r ->
        if not (Bytes.length r > 0 && Bytes.get r 0 = 'E') then
          drop_follower j;
        Metrics.incr m_commit_failures;
        false
    in
    (* leader: drive the two SNIP gossip rounds for one pending client.
       Any follower failure aborts just this submission (a journaled,
       acked [r] broadcast to the healthy followers) and reports which
       follower, so the leader can degrade instead of dying. *)
    let verify client_id (p : pending) =
      let exception Degraded of int * protocol_error in
      try
        let my_state, my_opening = prepare_pending p in
        let expect_pair j tag = function
          | Error err -> raise (Degraded (j, err))
          | Ok r -> (
            if Bytes.length r = 0 then begin
              drop_follower j;
              raise (Degraded (j, Bad_frame "empty gossip reply"))
            end
            else if Bytes.get r 0 <> tag then begin
              drop_follower j;
              raise
                (Degraded
                   ( j,
                     Bad_frame
                       (Printf.sprintf "unexpected gossip reply %C"
                          (Bytes.get r 0)) ))
            end
            else
              match W.field_pair_opt r ~off:1 with
              | Some pair -> pair
              | None ->
                drop_follower j;
                raise (Degraded (j, Bad_frame "bad gossip payload")))
        in
        (* gossip frames carry the leader's open verify span as context,
           so every follower's spans join the client's trace *)
        let id_ctx () = Bytes.cat (put_u32 client_id) (ctx_bytes ()) in
        (* round 1: collect openings *)
        let d = ref my_opening.Snip.d and e = ref my_opening.Snip.e in
        for j = 0 to nf - 1 do
          let dd, ee =
            expect_pair j 'O' (ask_follower j (tagged 'o' (id_ctx ())))
          in
          d := F.add !d dd;
          e := F.add !e ee
        done;
        (* round 2: broadcast sums, collect verdicts *)
        let my_verdict = Snip.server_decide_share ctx my_state ~d:!d ~e:!e in
        let sigma = ref my_verdict.Snip.sigma
        and zero = ref my_verdict.Snip.zero in
        for j = 0 to nf - 1 do
          let s, z =
            expect_pair j 'S'
              (ask_follower j
                 (tagged 'd' (Bytes.cat (id_ctx ()) (pair_bytes !d !e))))
          in
          sigma := F.add !sigma s;
          zero := F.add !zero z
        done;
        let accepted = F.is_zero !sigma && F.is_zero !zero in
        (* Commit point: write-ahead the leader's own verdict first (a
           journal failure here degrades durability, like a failed
           checkpoint — the decision still stands), apply it, then run
           the acked broadcast. The client is only acked once every
           follower confirmed its journal write; a partial broadcast
           surfaces as [all_acked = false] and is repaired by the
           client's resubmission. *)
        ignore (journal_decision ~client_id accepted p.share : bool);
        if accepted then
          Trace.with_span "server.aggregate"
            ~attrs:[ ("server", string_of_int id) ]
            (fun () ->
              Metrics.time h_stage_aggregate (fun () ->
                  Server.accumulate state p.share));
        let tag = if accepted then 'a' else 'r' in
        let all_acked = ref true in
        for j = 0 to nf - 1 do
          if not (commit_follower j (tagged tag (id_ctx ()))) then
            all_acked := false
        done;
        Ok (accepted, !all_acked)
      with Degraded (j, err) ->
        (* The aborting [r] must follow the same write-ahead discipline
           as a commit: journal it here, and only send acked [r] frames.
           [journal_decision] is idempotent against an already-recorded
           verdict, so a repeated abort (client retry after a degraded
           round) cannot journal a contradictory decision. *)
        ignore (journal_decision ~client_id false [||] : bool);
        for k = 0 to nf - 1 do
          if k <> j then
            ignore
              (commit_follower k
                 (tagged 'r' (Bytes.cat (put_u32 client_id) (ctx_bytes ())))
                : bool)
        done;
        Error (j, err)
    in
    let handle_frame fd frame =
      (* [`Keep] the connection or [`Close] it (stream desynced / hostile) *)
      let need len k =
        if Bytes.length frame < len then begin
          reply_error fd Malformed_frame "short frame";
          `Close
        end
        else k ()
      in
      match Bytes.get frame 0 with
      | 'P' ->
        need 7 (fun () ->
            let client_id = get_u32 frame 1 in
            let tctx, off = get_ctx frame 5 in
            let sealed = Bytes.sub frame off (Bytes.length frame - off) in
            Trace.with_span_ctx ?ctx:tctx "server.admit"
              ~attrs:
                [ ("server", string_of_int id);
                  ("client", string_of_int client_id) ]
            @@ fun () ->
            Metrics.time h_stage_admit @@ fun () ->
            (match Server.decision state ~client_id with
            | Some accepted ->
              (* duplicate of a finished submission: idempotent re-ack *)
              reply fd (tagged (if accepted then 'K' else 'R') Bytes.empty)
            | None ->
              if Hashtbl.mem pending client_id then
                (* duplicate of an in-flight upload (lost ack): re-ack
                   rather than replay-reject and corrupt the retry *)
                reply fd (tagged 'K' Bytes.empty)
              else if Hashtbl.length pending >= tuning.max_pending then begin
                (* bounded admission queue: shed the upload with a
                   retryable refusal instead of growing without limit —
                   the client's backoff schedule absorbs the burst *)
                Metrics.incr m_shed;
                Trace.event "server.shed"
                  ~attrs:
                    [ ("server", string_of_int id);
                      ("client", string_of_int client_id) ];
                reply_error fd Busy "admission queue full"
              end
              else (
                match Server.receive state ~client_id sealed with
                | None -> reply fd (tagged 'R' Bytes.empty)
                | Some (_, share) ->
                  let p = { share; state = None; prep = None } in
                  Hashtbl.replace pending client_id p;
                  note_depth ();
                  if eager then
                    p.prep <-
                      Some
                        (Pool.submit pool (fun () ->
                             Snip.server_prepare ctx
                               (Snip.submission_of_vector cfg.circuit p.share)));
                  reply fd (tagged 'K' Bytes.empty)));
            `Keep)
      | 'V' ->
        need 5 (fun () ->
            let client_id = get_u32 frame 1 in
            let tctx, _ = get_ctx frame 5 in
            Trace.with_span_ctx ?ctx:tctx "server.verify"
              ~attrs:
                [ ("server", string_of_int id);
                  ("client", string_of_int client_id) ]
            @@ fun () ->
            (if id <> 0 then reply_error fd Unavailable "not the leader"
             else
               match Server.decision state ~client_id with
               | Some accepted when Hashtbl.mem uncommitted client_id ->
                 (* the verdict is journaled here but some follower never
                    acked it (crash mid-broadcast, or replayed from the
                    journal after a leader restart): repair by re-running
                    the acked broadcast before re-acking the client *)
                 let tag = if accepted then 'a' else 'r' in
                 let payload =
                   Bytes.cat (put_u32 client_id) (ctx_bytes ())
                 in
                 let all_acked = ref true in
                 for j = 0 to nf - 1 do
                   if not (commit_follower j (tagged tag payload)) then
                     all_acked := false
                 done;
                 if !all_acked then begin
                   Hashtbl.remove uncommitted client_id;
                   Metrics.incr m_commit_repairs;
                   Trace.event "server.commit_repaired"
                     ~attrs:[ ("client", string_of_int client_id) ];
                   reply fd
                     (tagged (if accepted then 'K' else 'R') Bytes.empty)
                 end
                 else
                   reply_error fd Commit_pending
                     "decision journaled, follower ack outstanding"
               | Some accepted ->
                 reply fd (tagged (if accepted then 'K' else 'R') Bytes.empty)
               | None -> (
                 match Hashtbl.find_opt pending client_id with
                 | None ->
                   reply_error fd Unknown_client (string_of_int client_id)
                 | Some p -> (
                   match
                     Metrics.time h_stage_verify (fun () ->
                         verify client_id p)
                   with
                   | Ok (accepted, all_acked) ->
                     Hashtbl.remove pending client_id;
                     note_depth ();
                     finish_decision ~client_id accepted;
                     if all_acked then
                       reply fd
                         (tagged (if accepted then 'K' else 'R') Bytes.empty)
                     else begin
                       (* partial broadcast: the verdict is durable here
                          but not everywhere — make the client come back
                          ([Commit_pending] drives a resubmission) and
                          remember to repair on that retry *)
                       Hashtbl.replace uncommitted client_id ();
                       reply_error fd Commit_pending
                         "decision journaled, follower ack outstanding"
                     end
                   | Error (j, err) ->
                     (* graceful degradation: this submission is cleanly
                        rejected, the leader keeps serving *)
                     Hashtbl.remove pending client_id;
                     note_depth ();
                     finish_decision ~client_id false;
                     reply_error fd Unavailable
                       (Printf.sprintf "follower %d: %s" (j + 1)
                          (string_of_protocol_error err)))));
            `Keep)
      | 'o' ->
        need 5 (fun () ->
            let client_id = get_u32 frame 1 in
            let tctx, _ = get_ctx frame 5 in
            (match Hashtbl.find_opt pending client_id with
            | None -> reply_error fd Unknown_client (string_of_int client_id)
            | Some p ->
              (* follower's share of the verify stage, joined to the
                 leader's span via the gossip-frame context *)
              Trace.with_span_ctx ?ctx:tctx "server.verify"
                ~attrs:
                  [ ("server", string_of_int id);
                    ("client", string_of_int client_id) ]
              @@ fun () ->
              let st, opening =
                Metrics.time h_stage_verify (fun () -> prepare_pending p)
              in
              p.state <- Some st;
              reply fd (tagged 'O' (pair_bytes opening.Snip.d opening.Snip.e)));
            `Keep)
      | 'd' ->
        need 5 (fun () ->
            let client_id = get_u32 frame 1 in
            let tctx, off = get_ctx frame 5 in
            (match W.field_pair_opt frame ~off with
            | None -> reply_error fd Malformed_frame "bad (d,e) payload"
            | Some (d, e) -> (
              match Hashtbl.find_opt pending client_id with
              | None ->
                reply_error fd Unknown_client (string_of_int client_id)
              | Some { state = None; _ } ->
                reply_error fd Malformed_frame "decide before opening"
              | Some { state = Some st; _ } ->
                Trace.with_span_ctx ?ctx:tctx "server.decide"
                  ~attrs:
                    [ ("server", string_of_int id);
                      ("client", string_of_int client_id) ]
                @@ fun () ->
                let v =
                  Metrics.time h_stage_verify (fun () ->
                      Snip.server_decide_share ctx st ~d ~e)
                in
                reply fd (tagged 'S' (pair_bytes v.Snip.sigma v.Snip.zero))));
            `Keep)
      | 'a' ->
        need 5 (fun () ->
            let client_id = get_u32 frame 1 in
            let tctx, _ = get_ctx frame 5 in
            (match Server.decision state ~client_id with
            | Some _ ->
              (* already journaled and applied (the previous ack was
                 lost): re-ack, never re-accumulate *)
              reply fd (tagged 'c' Bytes.empty)
            | None -> (
              match Hashtbl.find_opt pending client_id with
              | Some p ->
                (* two-phase commit: journal first (write-ahead), then
                   fold the share into the accumulator and ack with [c].
                   If the journal cannot take the record, refuse the ack
                   — accumulating an unjournaled accept would desync the
                   servers after a crash. *)
                if not (journal_decision ~client_id true p.share) then
                  reply_error fd Unavailable "decision journal failed"
                else begin
                  (* streaming aggregation: the share folds into the
                     accumulator and drops with the pending entry —
                     nothing per-submission outlives the decision *)
                  (Trace.with_span_ctx ?ctx:tctx "server.aggregate"
                     ~attrs:
                       [ ("server", string_of_int id);
                         ("client", string_of_int client_id) ]
                  @@ fun () ->
                   Metrics.time h_stage_aggregate (fun () ->
                       Server.accumulate state p.share));
                  Hashtbl.remove pending client_id;
                  note_depth ();
                  finish_decision ~client_id true;
                  reply fd (tagged 'c' Bytes.empty)
                end
              | None ->
                (* no share to aggregate: the upload never landed (or a
                   restart dropped it). Refusing the ack makes the leader
                   report [Commit_pending]; the client's resubmission
                   re-seeds the share and the retried broadcast heals. *)
                reply_error fd Unknown_client (string_of_int client_id)));
            `Keep)
      | 'r' ->
        need 5 (fun () ->
            let client_id = get_u32 frame 1 in
            let tctx, _ = get_ctx frame 5 in
            (match Server.decision state ~client_id with
            | Some _ -> reply fd (tagged 'c' Bytes.empty)
            | None ->
              if not (journal_decision ~client_id false [||]) then
                reply_error fd Unavailable "decision journal failed"
              else begin
                (Trace.with_span_ctx ?ctx:tctx "server.discard"
                   ~attrs:
                     [ ("server", string_of_int id);
                       ("client", string_of_int client_id) ]
                @@ fun () ->
                 Hashtbl.remove pending client_id;
                 note_depth ());
                finish_decision ~client_id false;
                reply fd (tagged 'c' Bytes.empty)
              end);
            `Keep)
      | 'Q' ->
        reply fd (tagged 'A' (W.vector_to_bytes (Server.publish state)));
        `Keep
      | 'q' ->
        (* live metrics scrape: render this process's registry on demand;
           format byte 'j' = JSON snapshot, anything else = Prometheus *)
        let text =
          if Bytes.length frame >= 2 && Bytes.get frame 1 = 'j' then
            Report.json ()
          else Report.prometheus ()
        in
        reply fd (tagged 'm' (Bytes.of_string text));
        `Keep
      | 'h' ->
        let age =
          if Float.is_nan !last_ckpt_at then None
          else Some (Clock.now tuning.clock -. !last_ckpt_at)
        in
        let peers =
          List.init nf (fun j -> (j + 1, follower_fds.(j) <> None))
        in
        reply fd
          (tagged 'H'
             (health_to_bytes
                {
                  h_server = id;
                  h_epoch = state.Server.epoch;
                  h_pending = Hashtbl.length pending;
                  h_accepted = state.Server.accepted;
                  h_ckpt_age = age;
                  h_peers = peers;
                }));
        `Keep
      | 'X' -> raise Exit
      | c ->
        reply_error fd Unknown_tag (Printf.sprintf "%C" c);
        `Close
    in
    (* select loop over the listener and all live connections; finite
       tick so the loop never wedges on a dead peer *)
    let conns = ref [] in
    let close_conn fd =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      conns := List.filter (fun c -> c <> fd) !conns
    in
    (try
       while true do
         (* Age-triggered rotation fires from the idle tick too: with no
            decisions arriving, the epoch still expires on schedule. *)
         if epoch_expired () then rotate_now ();
         match
           Unix.select (listen_fd :: !conns) [] [] tuning.select_tick
         with
         | exception Unix.Unix_error (EINTR, _, _) -> ()
         | readable, _, _ ->
           List.iter
             (fun fd ->
               if fd = listen_fd then (
                 match Unix.accept listen_fd with
                 | conn, _ ->
                   (try Unix.setsockopt conn TCP_NODELAY true
                    with Unix.Unix_error _ -> ());
                   conns := conn :: !conns
                 | exception Unix.Unix_error _ -> ())
               else
                 let deadline = Retry.after tuning.io_timeout in
                 match
                   read_frame ~deadline ~max_bytes:tuning.max_frame_bytes fd
                 with
                 | Error (Frame_oversize n) ->
                   reply_error fd Too_large (string_of_int n);
                   close_conn fd
                 | Error (Bad_frame why) ->
                   reply_error fd Malformed_frame why;
                   close_conn fd
                 | Error _ ->
                   (* EOF (normal disconnect), timeout, reset *)
                   close_conn fd
                 | Ok frame -> (
                   let verdict =
                     match faults with
                     | None -> Faults.Deliver frame
                     | Some f -> Faults.decide f frame
                   in
                   match verdict with
                   | Faults.Crash -> exit 70
                   | Faults.Drop -> ()
                   | Faults.Disconnect -> close_conn fd
                   | Faults.Deliver frame -> (
                     if Bytes.length frame = 0 then begin
                       reply_error fd Malformed_frame "empty frame";
                       close_conn fd
                     end
                     else
                       match handle_frame fd frame with
                       | `Keep -> ()
                       | `Close -> close_conn fd)))
             readable
       done
     with Exit -> ());
    (* dump this process's spans for cross-process stitching; a crashed
       server leaves no dump (or a torn one), which {!Trace.merge}
       tolerates — that absence is part of the crash narrative *)
    (match (tuning.trace_dir, Trace.installed ()) with
    | Some dir, Some r -> (
      try
        let oc =
          open_out (Filename.concat dir (Trace.origin r ^ ".jsonl"))
        in
        output_string oc (Trace.to_jsonl r);
        close_out oc
      with Sys_error _ -> ())
    | _ -> ());
    Pool.shutdown pool;
    (match !journal with Some j -> Ckpt.journal_close j | None -> ());
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !conns;
    Array.iter
      (function
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ())
      follower_fds;
    try Unix.close listen_fd with Unix.Unix_error _ -> ()

  (* --------------------------- deployment --------------------------- *)

  type deployment = {
    cfg : config;
    tuning : tuning;
    addrs : Unix.sockaddr array;  (** server 0 is the leader *)
    pids : int array;  (** current pid per server (restarts update it) *)
    statuses : Unix.process_status option array;
        (** [Some] once the process has been reaped *)
    faults_for : int -> Faults.t option;
  }

  let localhost port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

  let bind_listener addr =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    Unix.bind fd addr;
    Unix.listen fd 32;
    fd

  let fork_server ?(restore_min_epoch = 0) ~tuning ~faults_for cfg ~id
      ~listen_fd ~follower_addrs =
    (* don't let the child inherit (and later re-flush) buffered output *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (try
         serve ~tuning ?faults:(faults_for id) ~restore_min_epoch cfg ~id
           ~listen_fd ~follower_addrs
         (* dying forked child: stderr is the only remaining channel *)
         (* prio-lint: allow no-debug-io *)
       with e -> prerr_endline ("prio net server: " ^ Printexc.to_string e));
      exit 0
    | pid -> pid

  (** Fork one OS process per server on loopback sockets. [faults_for]
      installs a (seeded, deterministic) fault injector on chosen
      servers' receive paths — the chaos-testing hook. *)
  let launch ?(tuning = default_tuning) ?(faults_for = fun _ -> None) cfg :
      deployment =
    ignore_sigpipe ();
    let listeners =
      Array.init cfg.num_servers (fun _ -> bind_listener (localhost 0))
    in
    let addrs =
      Array.map
        (fun fd ->
          match Unix.getsockname fd with
          | ADDR_INET (_, port) -> localhost port
          | ADDR_UNIX _ -> assert false)
        listeners
    in
    let follower_addrs = Array.sub addrs 1 (cfg.num_servers - 1) in
    flush stdout;
    flush stderr;
    let pids =
      Array.init cfg.num_servers (fun id ->
          match Unix.fork () with
          | 0 ->
            (* child: close the other servers' listeners, then serve *)
            Array.iteri (fun j fd -> if j <> id then Unix.close fd) listeners;
            (try
               serve ~tuning ?faults:(faults_for id) cfg ~id
                 ~listen_fd:listeners.(id) ~follower_addrs
             with e ->
               (* dying forked child: stderr is the only channel left *)
               (* prio-lint: allow no-debug-io *)
               prerr_endline ("prio net server: " ^ Printexc.to_string e));
            exit 0
          | pid -> pid)
    in
    Array.iter Unix.close listeners;
    {
      cfg;
      tuning;
      addrs;
      pids;
      statuses = Array.make cfg.num_servers None;
      faults_for;
    }

  (* --------------------------- supervision -------------------------- *)

  type server_status = Running | Exited of Unix.process_status

  (** Non-blocking health check of every server process ([waitpid
      WNOHANG]); reaps and records the status of any that died. *)
  let poll_servers d : server_status array =
    Array.mapi
      (fun i pid ->
        match d.statuses.(i) with
        | Some st -> Exited st
        | None -> (
          match Unix.waitpid [ WNOHANG ] pid with
          | 0, _ -> Running
          | _, st ->
            d.statuses.(i) <- Some st;
            Trace.event "supervisor.exited"
              ~attrs:[ ("server", string_of_int i) ];
            Exited st
          | exception Unix.Unix_error (ECHILD, _, _) ->
            (* someone else reaped it; treat as gone *)
            let st = Unix.WEXITED 0 in
            d.statuses.(i) <- Some st;
            Exited st))
      d.pids

  (** Revive a dead server on its original port. With
      [tuning.checkpoint_dir] set, the new process resumes from the dead
      one's latest valid snapshot — mid-collection recovery: accepted
      submissions up to the last checkpoint survive the crash. Without a
      checkpoint dir (or when the snapshot is rejected) it starts with
      fresh per-batch state: shares that lived only in the dead process
      are lost, but new traffic flows again. [min_epoch] (default 0)
      refuses authentic-but-stale snapshots from already-closed epochs. *)
  let restart_server ?(min_epoch = 0) d i =
    (match (poll_servers d).(i) with
    | Running -> invalid_arg "Net.restart_server: server still running"
    | Exited _ -> ());
    let listen_fd = bind_listener d.addrs.(i) in
    let follower_addrs = Array.sub d.addrs 1 (d.cfg.num_servers - 1) in
    let pid =
      fork_server ~restore_min_epoch:min_epoch ~tuning:d.tuning
        ~faults_for:d.faults_for d.cfg ~id:i ~listen_fd ~follower_addrs
    in
    Unix.close listen_fd;
    d.pids.(i) <- pid;
    d.statuses.(i) <- None;
    Trace.event "supervisor.restarted" ~attrs:[ ("server", string_of_int i) ]

  (** What a health sweep concluded about one server — strictly more
      signal than {!server_status}: a process can be alive yet wedged
      (answers nothing) or serving yet degraded (a gossip link down). *)
  type probe =
    | Probe_ok of health
    | Probe_degraded of health * string  (** serving, but impaired *)
    | Probe_unreachable of protocol_error
        (** process alive, probe failed — wedged or unresponsive *)
    | Probe_dead of Unix.process_status  (** process reaped *)

  (** One supervision sweep: liveness first ({!poll_servers}), then an
      [h] probe of every live server. Exports the verdict as gauges
      ([prio_supervisor_down] / [prio_supervisor_degraded]) in the
      calling process. *)
  let probe_deployment d : probe array =
    let probes =
      Array.mapi
        (fun i st ->
          match st with
          | Exited pst -> Probe_dead pst
          | Running -> (
            match probe_health ~tuning:d.tuning d.addrs.(i) with
            | Error e -> Probe_unreachable e
            | Ok h -> (
              match List.filter (fun (_, up) -> not up) h.h_peers with
              | [] -> Probe_ok h
              | down ->
                Probe_degraded
                  ( h,
                    "gossip link down to server "
                    ^ String.concat ", "
                        (List.map (fun (j, _) -> string_of_int j) down) ))))
        (poll_servers d)
    in
    let count p =
      Array.fold_left (fun n x -> if p x then n + 1 else n) 0 probes
    in
    Metrics.set g_sup_down
      (float_of_int
         (count (function
           | Probe_dead _ | Probe_unreachable _ -> true
           | _ -> false)));
    Metrics.set g_sup_degraded
      (float_of_int
         (count (function Probe_degraded _ -> true | _ -> false)));
    probes

  (** Probe-driven supervision: restart every server the sweep found
      dead, and kill-then-restart every live server that would not
      answer its probe — the wedged state liveness polling cannot see.
      Returns the ids restarted (in order). Degraded-but-serving servers
      are left alone: the leader redials dropped gossip links on demand.
      Probes share the deployment's [io_timeout], so keep it comfortably
      above the longest single-frame stall a healthy server can have. *)
  let supervise ?min_epoch d : int list =
    let restarted = ref [] in
    Array.iteri
      (fun i p ->
        let restart () =
          restart_server ?min_epoch d i;
          Metrics.incr m_probe_restarts;
          restarted := i :: !restarted
        in
        match p with
        | Probe_ok _ | Probe_degraded _ -> ()
        | Probe_dead _ -> restart ()
        | Probe_unreachable e ->
          Trace.event "supervisor.unreachable"
            ~attrs:
              [ ("server", string_of_int i);
                ("error", string_of_protocol_error e) ];
          (try Unix.kill d.pids.(i) Sys.sigkill
           with Unix.Unix_error _ -> ());
          (match Unix.waitpid [] d.pids.(i) with
          | _, st -> d.statuses.(i) <- Some st
          | exception Unix.Unix_error (ECHILD, _, _) ->
            d.statuses.(i) <- Some (Unix.WEXITED 0));
          restart ())
      (probe_deployment d);
    List.rev !restarted

  (* ----------------------------- clients ---------------------------- *)

  (** What happened to a submission, beyond a bare boolean. *)
  type outcome =
    | Accepted
    | Rejected of string  (** the cluster answered definitively *)
    | Unreachable of protocol_error  (** retries exhausted *)

  let classify_ack reply =
    if Bytes.length reply = 0 then `Retry (Bad_frame "empty reply")
    else
      match Bytes.get reply 0 with
      | 'K' -> `Done `Ack
      | 'R' -> `Done (`Nack "cluster rejected submission")
      | 'E' -> (
        match parse_error_frame reply with
        | None -> `Retry (Bad_frame "garbled error frame")
        | Some ((Too_large | Malformed_frame | Unknown_tag) as c, detail) ->
          (* our frame was damaged in flight; resending is idempotent *)
          `Retry (Peer_error (c, detail))
        | Some (Busy, detail) ->
          (* shed by admission control: back off and resend — the server
             stays healthy, it just wants the burst spread out *)
          `Retry (Peer_error (Busy, detail))
        | Some (Commit_pending, detail) ->
          (* the verdict is journaled on the leader but a follower has
             not acked it: resubmit the whole packet set so the leader
             can re-run the acked broadcast against re-seeded shares *)
          `Done (`Resubmit detail)
        | Some ((Unknown_client | Unavailable | Rejected) as c, detail) ->
          `Done (`Nack (string_of_error_code c ^ ": " ^ detail)))
      | _ -> `Retry (Bad_frame "unparseable reply")

  (** One request/reply exchange with backoff: fresh connection per
      attempt (a dead port fails fast and is retried on the backoff
      schedule, not spun on). *)
  let rpc ?faults ~tuning ~rng addr payload =
    Trace.with_span "net.rpc" @@ fun () ->
    Metrics.time h_rpc @@ fun () ->
    Retry.with_backoff ~rng tuning.backoff (fun ~attempt:_ ->
        match
          dial ~retry_refused:false
            ~deadline:(Retry.after tuning.dial_timeout)
            addr
        with
        | Error e -> `Retry e
        | Ok fd ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let deadline = Retry.after tuning.io_timeout in
              match send_frame ?faults ~deadline fd payload with
              | Error e -> `Retry e
              | Ok () -> (
                match
                  recv_frame ?faults ~deadline
                    ~max_bytes:tuning.max_frame_bytes fd
                with
                | Error e -> `Retry e
                | Ok reply -> classify_ack reply)))

  (* Shared submission driver: upload to every server through [rpc_to]
     (followers first, so their shares are in place; leader last), then
     trigger the leader's verify round. A [Commit_pending] verify reply
     means the leader journaled the verdict but a follower never acked
     it: re-push every packet (re-seeding the shares a restarted
     follower lost) and retry the verify so the leader can repair the
     broadcast — up to [max_resubmits] rounds. *)
  let drive_submission ?(max_resubmits = default_tuning.max_resubmits)
      ~num_servers ~client_id rpc_to (pk : Client.packets) : outcome =
    if Array.length pk.Client.sealed <> num_servers then
      invalid_arg "Net.submit_packets: one packet per server required";
    Trace.with_span "net.submit" ~attrs:[ ("client", string_of_int client_id) ]
    @@ fun () ->
    let order = List.init (num_servers - 1) (fun i -> i + 1) @ [ 0 ] in
    let upload i =
      Trace.with_span "net.upload" ~attrs:[ ("server", string_of_int i) ]
      @@ fun () ->
      (* ctx computed inside the span: the server's admit span becomes a
         child of this upload in the merged cross-process trace *)
      rpc_to i
        (tagged 'P'
           (Bytes.cat (put_u32 client_id)
              (Bytes.cat (ctx_bytes ()) pk.Client.sealed.(i))))
    in
    let rec push = function
      | [] -> None
      | i :: rest -> (
        match upload i with
        | Ok `Ack -> push rest
        | Ok (`Nack why) -> Some (Rejected why)
        (* a [Commit_pending] to an upload cannot happen (only verify
           produces it); treat it as a rejection rather than looping *)
        | Ok (`Resubmit why) -> Some (Rejected ("commit pending: " ^ why))
        | Error e -> Some (Unreachable e))
    in
    let rec submit_round round =
      match push order with
      | Some early -> early
      | None -> (
        match
          Trace.with_span "net.verify" (fun () ->
              rpc_to 0
                (tagged 'V' (Bytes.cat (put_u32 client_id) (ctx_bytes ()))))
        with
        | Ok `Ack -> Accepted
        | Ok (`Nack why) -> Rejected why
        | Ok (`Resubmit why) ->
          if round < max_resubmits then begin
            Trace.event "net.resubmit"
              ~attrs:[ ("round", string_of_int round); ("why", why) ];
            (* brief linear pause: commit repair usually waits on a
               follower restart, not on the client hammering faster *)
            Retry.sleep (0.02 *. float_of_int round);
            submit_round (round + 1)
          end
          else Rejected ("commit pending: " ^ why)
        | Error e -> Unreachable e)
    in
    let outcome = submit_round 1 in
    (match outcome with
    | Accepted -> ()
    | Rejected why -> Trace.event "net.rejected" ~attrs:[ ("why", why) ]
    | Unreachable e ->
      Trace.event "net.unreachable"
        ~attrs:[ ("error", string_of_protocol_error e) ]);
    outcome

  (** Upload already-sealed packets over TCP and drive their verification
      — the packet-level entry point, so callers that prepared
      submissions up front (the bench harness, {!Pipeline.prepare}
      output) can replay them against a TCP deployment and compare the
      wire bytes against [packets.upload_bytes]. *)
  let submit_packets_outcome ?faults d ~rng ~client_id
      (pk : Client.packets) : outcome =
    ignore_sigpipe ();
    drive_submission ~max_resubmits:d.tuning.max_resubmits
      ~num_servers:d.cfg.num_servers ~client_id
      (fun i payload -> rpc ?faults ~tuning:d.tuning ~rng d.addrs.(i) payload)
      pk

  let submit_packets ?faults d ~rng ~client_id (pk : Client.packets) : bool =
    match submit_packets_outcome ?faults d ~rng ~client_id pk with
    | Accepted -> true
    | Rejected _ | Unreachable _ -> false

  (* ----------------------------- sessions --------------------------- *)

  (** A client's persistent connections to every server. {!rpc} dials a
      fresh connection per attempt — right for occasional submissions,
      but a streaming client at 100k+ submissions would pay the handshake
      on every hot-path RPC and strand every closed connection in
      TIME_WAIT until loopback's ephemeral ports run out. A session dials
      each server once and reuses the connection for the whole stream;
      any transport error drops the cached connection so the backoff
      retry dials fresh (that heals restarted servers, whose old
      connections are dead). Not domain-safe: one session per submitting
      thread. *)
  type session = {
    sdep : deployment;
    sfds : Unix.file_descr option array;  (** cached connection per server *)
  }

  let open_session d =
    ignore_sigpipe ();
    { sdep = d; sfds = Array.make (Array.length d.addrs) None }

  let close_session s =
    Array.iteri
      (fun i fd ->
        match fd with
        | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          s.sfds.(i) <- None
        | None -> ())
      s.sfds

  (* {!rpc} over the session's cached connection: dial only when there is
     none; drop the connection on any transport error so the next attempt
     (and the backoff schedule) reconnects. A [Busy] shed keeps the
     connection — the server is healthy, it just wants the burst spread
     out. *)
  let session_rpc ?faults (s : session) ~rng i payload =
    Trace.with_span "net.rpc" @@ fun () ->
    Metrics.time h_rpc @@ fun () ->
    let tuning = s.sdep.tuning in
    let drop () =
      match s.sfds.(i) with
      | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        s.sfds.(i) <- None
      | None -> ()
    in
    Retry.with_backoff ~rng tuning.backoff (fun ~attempt:_ ->
        match
          (match s.sfds.(i) with
          | Some fd -> Ok fd
          | None -> (
            match
              dial ~retry_refused:false
                ~deadline:(Retry.after tuning.dial_timeout)
                s.sdep.addrs.(i)
            with
            | Ok fd ->
              s.sfds.(i) <- Some fd;
              Ok fd
            | Error _ as e -> e))
        with
        | Error e -> `Retry e
        | Ok fd -> (
          let deadline = Retry.after tuning.io_timeout in
          match send_frame ?faults ~deadline fd payload with
          | Error e ->
            drop ();
            `Retry e
          | Ok () -> (
            match
              recv_frame ?faults ~deadline ~max_bytes:tuning.max_frame_bytes
                fd
            with
            | Error e ->
              drop ();
              `Retry e
            | Ok reply -> classify_ack reply)))

  let submit_packets_session ?faults (s : session) ~rng ~client_id
      (pk : Client.packets) : outcome =
    drive_submission ~max_resubmits:s.sdep.tuning.max_resubmits
      ~num_servers:s.sdep.cfg.num_servers ~client_id
      (fun i payload -> session_rpc ?faults s ~rng i payload)
      pk

  let submit_session ?faults (s : session) ~rng ~client_id
      (encoding : F.t array) : outcome =
    let d = s.sdep in
    let pk =
      Client.submit ~rng
        ~mode:(Client.Robust_snip d.cfg.circuit)
        ~num_servers:d.cfg.num_servers ~client_id ~master:d.cfg.master
        encoding
    in
    submit_packets_session ?faults s ~rng ~client_id pk

  (** Upload one client's submission over TCP and drive its verification,
      with per-frame deadlines and idempotent retry under [faults]. *)
  let submit_outcome ?faults d ~rng ~client_id (encoding : F.t array) :
      outcome =
    let pk =
      Client.submit ~rng
        ~mode:(Client.Robust_snip d.cfg.circuit)
        ~num_servers:d.cfg.num_servers ~client_id ~master:d.cfg.master
        encoding
    in
    submit_packets_outcome ?faults d ~rng ~client_id pk

  let submit ?faults d ~rng ~client_id (encoding : F.t array) : bool =
    match submit_outcome ?faults d ~rng ~client_id encoding with
    | Accepted -> true
    | Rejected _ | Unreachable _ -> false

  (** Drive a whole prepared batch against the deployment, [domains]
      submissions in flight at once (each on its own pool thread with a
      deterministically split RNG). Verification of distinct clients is
      independent and the servers' per-client decisions don't depend on
      arrival order, so the outcome array — returned in packet order — is
      the same as submitting serially. This is the client-side half of the
      runtime's multicore story; pair it with [tuning.verify_domains] on
      the server side. *)
  let submit_batch ?faults ?(domains = 1) d ~rng
      (packets : (int * Client.packets) array) : outcome array =
    ignore_sigpipe ();
    Trace.with_span "net.submit_batch"
      ~attrs:
        [ ("submissions", string_of_int (Array.length packets));
          ("domains", string_of_int domains) ]
    @@ fun () ->
    (* split before dispatch: RNG derivation stays in packet order no
       matter how the pool schedules the submissions *)
    let rngs = Array.map (fun _ -> Rng.split rng) packets in
    if domains <= 1 then
      Array.mapi
        (fun i (client_id, pk) ->
          submit_packets_outcome ?faults d ~rng:rngs.(i) ~client_id pk)
        packets
    else begin
      let pool = Pool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          Pool.map_array pool
            (fun i ->
              let client_id, pk = packets.(i) in
              submit_packets_outcome ?faults d ~rng:rngs.(i) ~client_id pk)
            (Array.init (Array.length packets) Fun.id))
    end

  (** Fetch and sum all accumulators. [Error (i, e)] names the first
      unreachable or garbled server and the structured cause. *)
  let collect_aggregate d : (F.t array, int * protocol_error) result =
    ignore_sigpipe ();
    Trace.with_span "net.collect" @@ fun () ->
    let tuning = d.tuning in
    let acc = Array.make d.cfg.trunc_len F.zero in
    let fetch addr : (unit, protocol_error) result =
      match dial ~deadline:(Retry.after tuning.dial_timeout) addr with
      | Error e -> Error e
      | Ok fd ->
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let deadline = Retry.after tuning.io_timeout in
            match write_frame ~deadline fd (tagged 'Q' Bytes.empty) with
            | Error e -> Error e
            | Ok () -> (
              match
                read_frame ~deadline ~max_bytes:tuning.max_frame_bytes fd
              with
              | Error e -> Error e
              | Ok reply ->
                if Bytes.length reply < 1 || Bytes.get reply 0 <> 'A' then
                  Error (Bad_frame "expected accumulator reply")
                else (
                  match
                    W.vector_of_bytes_opt
                      (Bytes.sub reply 1 (Bytes.length reply - 1))
                  with
                  | Some v when Array.length v = d.cfg.trunc_len ->
                    Array.iteri
                      (fun j x -> acc.(j) <- F.add acc.(j) x)
                      v;
                    Ok ()
                  | Some _ | None ->
                    Error (Bad_frame "bad accumulator payload"))))
    in
    let rec go i =
      if i >= Array.length d.addrs then Ok acc
      else
        match fetch d.addrs.(i) with
        | Ok () -> go (i + 1)
        | Error e -> Error (i, e)
    in
    go 0

  (** Stop all server processes and reap them: polite [X] frames first,
      then a grace period, then SIGKILL for anything still alive — so
      shutdown terminates even when a server is wedged or long dead. *)
  let shutdown d =
    ignore_sigpipe ();
    let tuning = d.tuning in
    Array.iteri
      (fun i addr ->
        if d.statuses.(i) = None then
          match
            dial ~retry_refused:false
              ~deadline:(Retry.after (Float.min 0.5 tuning.dial_timeout))
              addr
          with
          | Error _ -> ()
          | Ok fd ->
            ignore
              (write_frame
                 ~deadline:(Retry.after tuning.io_timeout)
                 fd (tagged 'X' Bytes.empty));
            ( try Unix.close fd with Unix.Unix_error _ -> ()))
      d.addrs;
    let grace = Retry.after 5.0 in
    let rec reap () =
      ignore (poll_servers d);
      if Array.exists (fun s -> s = None) d.statuses then
        if Retry.expired grace then begin
          Array.iteri
            (fun i s ->
              if s = None then
                try Unix.kill d.pids.(i) Sys.sigkill
                with Unix.Unix_error _ -> ())
            d.statuses;
          Array.iteri
            (fun i s ->
              if s = None then
                match Unix.waitpid [] d.pids.(i) with
                | _, st -> d.statuses.(i) <- Some st
                | exception Unix.Unix_error (ECHILD, _, _) ->
                  d.statuses.(i) <- Some (Unix.WEXITED 0))
            d.statuses
        end
        else begin
          Retry.sleep 0.01;
          reap ()
        end
    in
    reap ()
end

(** The Prio client (paper §5.1 "putting it all together", Appendix H
    step 1 "Upload").

    A client encodes its private value with the deployment's AFE, appends a
    SNIP proof (or Beaver triples + a triple SNIP in the Prio-MPC variant),
    secret-shares the whole flat vector with PRG compression (Appendix I:
    servers 1..s−1 receive 32-byte seeds), and seals one packet per server
    under their pairwise key. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Prio_circuit.Circuit.Make (F)
  module Snip = Prio_snip.Snip.Make (F)
  module Mpc = Prio_snip.Mpc.Make (F)
  module Sh = Prio_share.Share.Make (F)
  module W = Wire.Make (F)
  module Rng = Prio_crypto.Rng
  module Authbox = Prio_crypto.Authbox
  module Metrics = Prio_obs.Metrics
  module Trace = Prio_obs.Trace

  (* The unified client-upload channel: every sealed submission — explicit,
     PRG-compressed, or DPF-compressed ({!Compressed}) — adds its on-wire
     bytes here, so one counter answers "what did clients upload?" across
     all encodings (paper Table 2 / Figure 4 x-axis). *)
  let m_upload_bytes = Metrics.counter "prio_client_upload_bytes_total"
  let h_submit = Metrics.histogram "prio_client_submit_seconds"

  (** How a submission protects robustness. *)
  type mode =
    | Robust_snip of C.t  (** client knows Valid and proves it (§4.2) *)
    | Robust_mpc of int
        (** Valid is a server secret with this many mul gates; the client
            ships triples and proves only the triples (§4.4) *)
    | No_robustness  (** plain secret sharing, the §3 baseline *)

  (** Elements in the flat share vector a server expects for [l]-element
      encodings under [mode]. *)
  let payload_elements ~mode ~l =
    match mode with
    | Robust_snip circuit -> l + Snip.proof_num_elements circuit
    | Robust_mpc m ->
      let tc = Mpc.triple_circuit ~m in
      l + (3 * m) + Snip.proof_num_elements tc
    | No_robustness -> l

  (** The flat plaintext vector to be shared: encoding ‖ proof material. *)
  let plain_vector ~rng ~mode (encoding : F.t array) : F.t array =
    Trace.with_span "client.prove" @@ fun () ->
    match mode with
    | No_robustness -> encoding
    | Robust_snip circuit ->
      Array.append encoding (Snip.proof_vector ~rng ~circuit ~inputs:encoding)
    | Robust_mpc m ->
      (* generate M plaintext triples, then prove them with a SNIP over the
         public triple circuit *)
      let triples =
        Array.init m (fun _ ->
            let a = F.random rng and b = F.random rng in
            (a, b, F.mul a b))
      in
      let triple_inputs =
        Array.init (3 * m) (fun i ->
            let t = i mod m in
            let a, b, c = triples.(t) in
            if i < m then a else if i < 2 * m then b else c)
      in
      let tc = Mpc.triple_circuit ~m in
      Array.concat
        [ encoding; triple_inputs;
          Snip.proof_vector ~rng ~circuit:tc ~inputs:triple_inputs ]

  (** Per-server compressed share payloads of the flat vector. *)
  let payloads ~rng ~mode ~num_servers (encoding : F.t array) :
      Sh.compressed array =
    let plain = plain_vector ~rng ~mode encoding in
    Trace.with_span "client.share" @@ fun () ->
    Sh.split_compressed rng ~s:num_servers plain

  type packets = {
    nonce : Bytes.t;  (** submission id, for replay protection *)
    sealed : Bytes.t array;  (** one authenticated packet per server *)
    upload_bytes : int;  (** total client upload *)
  }

  let nonce_len = 16

  (** Seal one packet per server: nonce ‖ payload, boxed under the pairwise
      client/server key. *)
  let seal ~rng ~client_id ~master (payloads : Sh.compressed array) : packets =
    Trace.with_span "client.seal" @@ fun () ->
    let nonce = Rng.bytes rng nonce_len in
    let sealed =
      Array.mapi
        (fun server_id payload ->
          let key = Authbox.derive_key ~client_id ~server_id ~master in
          let body = Bytes.cat nonce (W.payload_to_bytes payload) in
          Authbox.seal ~key ~rng body)
        payloads
    in
    let upload_bytes = Array.fold_left (fun acc b -> acc + Bytes.length b) 0 sealed in
    Metrics.add m_upload_bytes upload_bytes;
    { nonce; sealed; upload_bytes }

  (** One-call client pipeline: encode, prove, share, seal. *)
  let submit ~rng ~mode ~num_servers ~client_id ~master (encoding : F.t array) :
      packets =
    Trace.with_span "client.submit" ~attrs:[ ("client", string_of_int client_id) ]
    @@ fun () ->
    Metrics.time h_submit @@ fun () ->
    seal ~rng ~client_id ~master (payloads ~rng ~mode ~num_servers encoding)
end

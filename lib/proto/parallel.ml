(** Multicore batch verification.

    The paper scales Prio horizontally — more servers barely change
    throughput because verification is embarrassingly parallel across
    submissions (Figure 5's load-balanced leader). The same property holds
    *within* one machine: submissions are independent, so a batch can be
    verified on all cores. This module shards a prepared batch across
    OCaml 5 domains, each owning a private replica of the cluster state
    (no shared mutable state, hence no locks), and merges accumulators and
    counters afterwards — sums of sums commute, exactly the linearity that
    makes Prio aggregation work in the first place. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module Cluster = Cluster.Make (F)
  module Client = Client.Make (F)

  (** [process ~make_replica ~packets ~domains] verifies and accumulates
      the batch on [domains] cores and returns a merged cluster plus the
      number of accepted submissions. [make_replica] must build identical
      deployments (same circuit, server count, and master key) with
      independent RNGs; each domain gets one replica, and the first
      replica receives the merge (always in shard-index order, so the
      merged state is deterministic). When [?pool] is given its worker
      domains run the shards — no per-call [Domain.spawn]. *)
  let process ?(pool : Pool.t option) ~(make_replica : unit -> Cluster.t)
      ~domains (packets : (int * Client.packets) array) : Cluster.t * int =
    if domains < 1 then invalid_arg "Parallel.process: domains < 1";
    let n = Array.length packets in
    let shard d =
      (* round-robin so uneven work (accept vs reject) spreads out; each
         entry keeps its global position for the leader schedule below *)
      Array.of_seq
        (Seq.filter_map
           (fun i -> if i mod domains = d then Some (i, packets.(i)) else None)
           (Seq.init n Fun.id))
    in
    let run_shard shard () =
      let replica = make_replica () in
      let accepted =
        Array.fold_left
          (fun acc (global_i, (client_id, pk)) ->
            (* Seed leader rotation from the global submission index: each
               replica sees an interleaved subsequence of the batch, and
               the per-link byte matrix must come out identical to a
               sequential run over the whole batch (Figure 5/6 parity). *)
            replica.Cluster.next_leader <- global_i mod replica.Cluster.s;
            if Cluster.submit replica ~client_id pk then acc + 1 else acc)
          0 shard
      in
      (replica, accepted)
    in
    if domains = 1 then run_shard (shard 0) ()
    else begin
      match pool with
      | Some p ->
        let results =
          Pool.map_array p
            (fun d -> run_shard (shard d) ())
            (Array.init domains Fun.id)
        in
        let first, accepted0 = results.(0) in
        let total = ref accepted0 in
        for d = 1 to domains - 1 do
          let replica, accepted = results.(d) in
          Cluster.merge_into ~dst:first replica;
          total := !total + accepted
        done;
        (first, !total)
      | None ->
        let handles =
          Array.init (domains - 1) (fun d ->
              Domain.spawn (run_shard (shard (d + 1))))
        in
        let first, accepted0 = run_shard (shard 0) () in
        let total = ref accepted0 in
        Array.iter
          (fun h ->
            let replica, accepted = Domain.join h in
            Cluster.merge_into ~dst:first replica;
            total := !total + accepted)
          handles;
        (first, !total)
    end
end

(** Fixed-size domain worker pool with helping futures.

    Domains are spawned once at {!create}; tasks are closures pushed
    through a mutex/condition queue. {!await} helps — it runs other
    queued tasks while its own is pending — so awaiting inside a task
    cannot deadlock and the awaiting thread keeps working. A pool of
    [domains:1] runs every task inline on the caller, making domain
    count a pure tuning knob. Task metrics land in the global
    {!Prio_obs.Metrics} registry ([prio_pool_tasks_total],
    [prio_pool_task_seconds]). *)

type t
type 'a future

val create : domains:int -> t
(** [domains ≥ 1] units of capacity: the caller plus [domains − 1]
    spawned worker domains. Raises [Invalid_argument] on [domains < 1]. *)

val size : t -> int
(** The capacity [create] was given (including the caller). *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task (inline pools run it immediately). Raises
    [Invalid_argument] after {!shutdown}. *)

val await : 'a future -> 'a
(** Block (helping) until the task finishes; re-raises its exception. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Concurrent map whose results always come back in index order, so
    downstream folds/merges are deterministic. *)

val shutdown : t -> unit
(** Finish queued tasks, join the workers. Idempotent. *)

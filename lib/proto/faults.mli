(** Deterministic (seeded) fault injection for the TCP runtime: each
    frame crossing an injected read/write path is passed, dropped,
    delayed, corrupted, truncated, or escalated to a disconnect or a
    process crash, according to a policy rolled on a ChaCha20 RNG — so
    chaos runs replay exactly from (seed, policy, traffic order). *)

type policy = {
  p_drop : float;  (** frame silently vanishes *)
  p_delay : float;  (** frame delivered after [delay] seconds *)
  delay : float;
  p_corrupt : float;  (** one byte of the frame body is flipped *)
  p_truncate : float;  (** frame cut short (possibly to empty) *)
  p_disconnect : float;  (** connection closed instead of delivering *)
  p_crash : float;  (** the injecting process exits (server chaos) *)
  crash_tags : string;  (** frame tag bytes that can trigger a targeted crash *)
  p_crash_tag : float;
      (** probability of crashing on a frame whose tag is in [crash_tags]
          — an aimed fault point, e.g. dying on receipt of a decision
          broadcast before it is journaled *)
}

val none : policy

val drop : float -> policy
val corrupt : float -> policy
val truncate : float -> policy
val disconnect : float -> policy
val crash : float -> policy

val crash_on : tags:string -> float -> policy
(** Crash with the given probability on frames whose tag byte is in
    [tags]; every other frame passes untouched. The commit-window drill
    uses [crash_on ~tags:"a" 1.0] to die between receiving a decision
    and acknowledging it. *)

val slow : p:float -> delay:float -> policy

type verdict =
  | Deliver of Bytes.t  (** pass the frame on (possibly mangled) *)
  | Drop  (** pretend it was sent / never arrived *)
  | Disconnect  (** sever the connection *)
  | Crash  (** the process hosting this [t] should die *)

type t

val create : seed:string -> policy -> t

val decide : t -> Bytes.t -> verdict
(** Roll the policy for one frame. Fault classes are mutually exclusive
    on one draw; a delay (sleep, already performed) composes with
    [Deliver]. *)

val seen : t -> int
(** Frames that crossed this injector. *)

val injected : t -> int
(** Frames that were faulted (including delays). *)

(** Multicore batch verification: submissions are independent, so a batch
    shards across OCaml 5 domains, each owning a private cluster replica
    (no shared mutable state, no locks), merged afterwards — the
    within-machine analogue of Figure 5's horizontal scaling. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module Cluster : module type of Cluster.Make (F)
  module Client : module type of Client.Make (F)

  val process :
    ?pool:Pool.t ->
    make_replica:(unit -> Cluster.t) ->
    domains:int -> (int * Client.packets) array -> Cluster.t * int
  (** Verify the batch on [domains] cores; returns the merged cluster and
      the accepted count. [make_replica] must build identical deployments
      (same circuit, server count, master) with independent RNGs. Shards
      are merged in index order, and every counter of the result —
      aggregates, accepted/rejected, per-link bytes, batch-rotation
      state, next leader — matches a sequential run over the same batch.
      With [?pool] the shards run on the pool's resident domains instead
      of freshly spawned ones. *)
end

(** Deadline and retry combinators for the TCP runtime.

    Everything in {!Net} that touches a socket is bounded by a deadline
    (absolute wall-clock instant), and every client-side RPC is wrapped
    in exponential backoff with jitter so a fleet of retrying clients
    does not synchronize into thundering herds. The jitter source is the
    deployment's deterministic {!Prio_crypto.Rng}, so chaos runs remain
    reproducible from a seed. *)

module Rng = Prio_crypto.Rng
module Metrics = Prio_obs.Metrics
module Trace = Prio_obs.Trace

let m_retries = Metrics.counter "prio_retry_attempts_total"

(* ------------------------------ deadlines ------------------------------ *)

type deadline = float
(* absolute [Unix.gettimeofday] instant; [infinity] = no deadline *)

let now = Unix.gettimeofday
let after seconds = now () +. seconds
let no_deadline = infinity
let remaining d = d -. now ()
let expired d = remaining d <= 0.

(** [sleep s] sleeps at least [s] seconds, resuming across EINTR. *)
let sleep s =
  if s > 0. then begin
    let until = after s in
    let rec go () =
      let left = remaining until in
      if left > 0. then
        match Unix.sleepf left with
        | () -> go ()
        | exception Unix.Unix_error (EINTR, _, _) -> go ()
    in
    go ()
  end

(* ------------------------------- backoff ------------------------------- *)

type backoff = {
  max_attempts : int;  (** total tries, including the first *)
  base_delay : float;  (** seconds before the second try *)
  multiplier : float;  (** geometric growth per retry *)
  max_delay : float;  (** ceiling on any single pause *)
  jitter : float;  (** fraction of the pause randomized away, in [0,1] *)
}

let default_backoff =
  { max_attempts = 5; base_delay = 0.02; multiplier = 2.0;
    max_delay = 0.5; jitter = 0.5 }

let delay_for ?rng b ~attempt =
  let d = b.base_delay *. (b.multiplier ** float_of_int attempt) in
  let d = Float.min d b.max_delay in
  match rng with
  | None -> d
  | Some rng ->
    (* full pause scaled uniformly into [1 - jitter, 1] of itself *)
    d *. (1. -. b.jitter +. (b.jitter *. Rng.float01 rng))

let with_backoff ?rng ?(on_retry = fun ~attempt:_ _ -> ()) b f =
  let rec go attempt =
    match f ~attempt with
    | `Done x -> Ok x
    | `Fail e -> Error e
    | `Retry e ->
      if attempt + 1 >= b.max_attempts then Error e
      else begin
        Metrics.incr m_retries;
        Trace.event "retry" ~attrs:[ ("attempt", string_of_int attempt) ];
        on_retry ~attempt e;
        sleep (delay_for ?rng b ~attempt);
        go (attempt + 1)
      end
  in
  go 0

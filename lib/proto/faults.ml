(** Deterministic fault injection for the TCP runtime.

    A [t] sits on the frame read/write path ({!Net}) and, for each frame
    it sees, rolls a seeded ChaCha20 RNG against a {!policy} to decide
    whether the frame passes untouched or is dropped, delayed, corrupted
    (one byte flipped), truncated, or turned into a disconnect / process
    crash. Because the RNG is seeded, a chaos run is a pure function of
    (seed, policy, traffic order): a failing run replays exactly.

    The policies model the paper's threat environment (§2, §5): clients
    and servers may be faulty or malicious, and a deployment must
    tolerate dropped, delayed, and malformed traffic without losing the
    batch. *)

module Rng = Prio_crypto.Rng
module Metrics = Prio_obs.Metrics
module Trace = Prio_obs.Trace

let m_injected = Metrics.counter "prio_faults_injected_total"

type policy = {
  p_drop : float;  (** frame silently vanishes *)
  p_delay : float;  (** frame delivered after [delay] seconds *)
  delay : float;
  p_corrupt : float;  (** one byte of the frame body is flipped *)
  p_truncate : float;  (** frame cut short (possibly to empty) *)
  p_disconnect : float;  (** connection closed instead of delivering *)
  p_crash : float;  (** the injecting process exits (server chaos) *)
  crash_tags : string;  (** frame tag bytes that can trigger a targeted crash *)
  p_crash_tag : float;
      (** probability of crashing on a frame whose tag is in [crash_tags]
          — the aimed fault point (e.g. "die on receiving a decision
          broadcast, before journaling it") that the uniform [p_crash]
          cannot hit reliably *)
}

let none =
  { p_drop = 0.; p_delay = 0.; delay = 0.; p_corrupt = 0.; p_truncate = 0.;
    p_disconnect = 0.; p_crash = 0.; crash_tags = ""; p_crash_tag = 0. }

let drop p = { none with p_drop = p }
let corrupt p = { none with p_corrupt = p }
let truncate p = { none with p_truncate = p }
let disconnect p = { none with p_disconnect = p }
let crash p = { none with p_crash = p }
let crash_on ~tags p = { none with crash_tags = tags; p_crash_tag = p }
let slow ~p ~delay = { none with p_delay = p; delay }

type verdict =
  | Deliver of Bytes.t  (** pass the frame on (possibly mangled) *)
  | Drop  (** pretend it was sent / never arrived *)
  | Disconnect  (** sever the connection *)
  | Crash  (** the process hosting this [t] should die *)

type t = {
  rng : Rng.t;
  policy : policy;
  mutable seen : int;
  mutable injected : int;
}

let create ~seed policy =
  { rng = Rng.of_string_seed seed; policy; seen = 0; injected = 0 }

let seen t = t.seen
let injected t = t.injected

let flip_byte rng b =
  if Bytes.length b = 0 then b
  else begin
    let b = Bytes.copy b in
    let i = Rng.int_below rng (Bytes.length b) in
    let x = 1 + Rng.int_below rng 255 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor x));
    b
  end

let cut rng b =
  if Bytes.length b = 0 then b
  else Bytes.sub b 0 (Rng.int_below rng (Bytes.length b))

(** Roll the dice for one frame. Mutually exclusive fault classes are
    stacked on a single uniform draw (so their probabilities add);
    delay composes with delivery and is rolled separately. *)
let decide t (frame : Bytes.t) : verdict =
  t.seen <- t.seen + 1;
  let p = t.policy in
  let inj kind v =
    t.injected <- t.injected + 1;
    Metrics.incr m_injected;
    Trace.event "fault" ~attrs:[ ("kind", kind) ];
    v
  in
  (* Targeted crash first: it keys on the frame's tag byte, not the
     shared uniform draw, so a drill can aim at exactly one protocol
     point (e.g. the decision-commit window) without disturbing the
     probabilities — or the RNG stream — of the stacked classes below. *)
  if
    p.p_crash_tag > 0.
    && Bytes.length frame > 0
    && String.contains p.crash_tags (Bytes.get frame 0)
    && (p.p_crash_tag >= 1. || Rng.float01 t.rng < p.p_crash_tag)
  then inj "crash-tag" Crash
  else
  let roll = Rng.float01 t.rng in
  let c0 = p.p_crash in
  let c1 = c0 +. p.p_disconnect in
  let c2 = c1 +. p.p_drop in
  let c3 = c2 +. p.p_corrupt in
  let c4 = c3 +. p.p_truncate in
  if roll < c0 then inj "crash" Crash
  else if roll < c1 then inj "disconnect" Disconnect
  else if roll < c2 then inj "drop" Drop
  else if roll < c3 then inj "corrupt" (Deliver (flip_byte t.rng frame))
  else if roll < c4 then inj "truncate" (Deliver (cut t.rng frame))
  else begin
    if p.p_delay > 0. && Rng.float01 t.rng < p.p_delay then begin
      t.injected <- t.injected + 1;
      Metrics.incr m_injected;
      Trace.event "fault" ~attrs:[ ("kind", "delay") ];
      Retry.sleep p.delay
    end;
    Deliver frame
  end

(** End-to-end pipelines for the five schemes the evaluation compares
    (§6.1): no-privacy (s = 1, no checks), no-robustness, Prio, Prio-MPC
    — all through {!Cluster} — plus the NIZK baseline. The benchmark
    harness drives these to regenerate Figures 4–8 and Tables 3/9.

    Throughput convention: the simulator executes all servers' work
    serially; a symmetric s-server cluster runs it in parallel, so
    simulated throughput for n submissions in T serial seconds is
    n·s/T. *)

val time : (unit -> 'a) -> 'a * float
(** Wall-clock a thunk. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module Cluster : module type of Cluster.Make (F)
  module Client : module type of Client.Make (F)

  type prepared = {
    packets : (int * Client.packets) array;  (** (client_id, packets) *)
    client_seconds : float;
    upload_bytes : int;
  }

  val prepare : rng:Prio_crypto.Rng.t -> Cluster.t -> F.t array list -> prepared
  (** Pre-generate client submissions (the benchmarks stream these, as
      the paper's load generators did). *)

  val process : Cluster.t -> prepared -> int * float
  (** Feed the batch through the cluster: (accepted, serial seconds). *)

  val process_parallel :
    ?pool:Pool.t ->
    make_replica:(unit -> Cluster.t) ->
    domains:int -> prepared -> Cluster.t * int * float
  (** Multicore {!process}: shard across [domains] replica clusters and
      merge (deterministically, in shard order); returns the merged
      cluster, accepted count, and wall-clock seconds. The merged state
      matches a sequential run over the same packets exactly. *)

  val simulated_throughput : num_servers:int -> n:int -> serial_seconds:float -> float
end

(** The NIZK comparison scheme (§6, Kursawe-et-al.-style): Pedersen
    commitments per coordinate, 0/1 OR-proofs, exponent shares, and a
    per-coordinate consistency check costing every server two
    exponentiations — the Θ(L) public-key work Prio avoids. *)
module Nizk_pipeline : sig
  module B := Prio_bigint.Bigint

  type submission = {
    commitments : Prio_nizk.Pedersen.commitment array;
    proofs : Prio_nizk.Bitproof.t array;
    x_shares : B.t array array;  (** [server].(coord), exponent shares *)
    r_shares : B.t array array;
  }

  val client : rng:Prio_crypto.Rng.t -> bits:int array -> s:int -> submission

  val server_process : s:int -> submission -> bool
  (** Serial server-side work for the whole cluster: load-balanced proof
      checking plus every server's consistency exponentiations. *)

  val upload_bytes : s:int -> l:int -> int
  val per_server_bytes : l:int -> int
  (** The Θ(L) per-server publication of Figure 6. *)
end

(** One Prio server's local state and communication-free steps (Appendix
    H steps 2–4); the inter-server message flow lives in {!Cluster} (and
    {!Net} for the TCP runtime). *)

module Make (F : Prio_field.Field_intf.S) : sig
  module Sh : module type of Prio_share.Share.Make (F)

  type t = {
    id : int;
    num_servers : int;
    master : Bytes.t;
    trunc_len : int;  (** accumulator width k' *)
    payload_elements : int;  (** expected flat share-vector length *)
    accumulator : F.t array;
    mutable accepted : int;
    mutable seen_nonces : (string, unit) Hashtbl.t;
    mutable prev_nonces : (string, unit) Hashtbl.t;
        (** previous epoch's nonces, kept one generation back so a replay
            right after a rotation is still caught *)
    mutable decisions : (int, bool) Hashtbl.t;
        (** client_id → final verdict, for idempotent re-acks of
            retried submissions *)
    mutable prev_decisions : (int, bool) Hashtbl.t;
        (** previous epoch's verdicts — the same one-generation grace
            window, so a retry crossing one rotation is re-acked instead
            of re-verified and double-counted *)
    mutable journal_seq : int;
        (** monotone count of decisions ever first-recorded here; stamps
            decision-journal entries and rides in checkpoints so replay
            after restore is exact. Never reset by rotation. *)
    mutable epoch : int;  (** completed {!rotate_epoch} calls *)
    mutable decided_in_epoch : int;
        (** distinct client verdicts recorded since the last rotation *)
    mutable replay_digest : Bytes.t;
        (** 32-byte SHA-256 chain over admitted nonces and rotations — the
            constant-size replay-table commitment checkpoints carry *)
  }

  val create :
    id:int -> num_servers:int -> master:Bytes.t -> trunc_len:int ->
    payload_elements:int -> t

  val record_decision : t -> client_id:int -> bool -> bool
  (** Record the cluster's final verdict on a client id, making later
      duplicate uploads / verify requests idempotent. First write wins: a
      verdict already recorded (in either generation) is never overwritten,
      so a late contradictory broadcast is a no-op. Returns [true] iff a
      new decision was recorded (and [journal_seq] advanced). *)

  val decision : t -> client_id:int -> bool option
  (** The recorded verdict for a client id, looked up across both the live
      epoch and the one-epoch grace generation. *)

  val resident_entries : t -> int
  (** Per-submission state currently held (replay nonces + verdicts across
      both generations); bounded by twice the epoch size once callers
      rotate epochs. *)

  val rotate_epoch : t -> unit
  (** Close the epoch: age the replay/idempotency tables one generation
      (current → grace, grace dropped) so memory stays flat over unbounded
      streams, bump [epoch], and fold the rotation into the replay digest
      chain. A replay or retry must cross two rotations before its state
      is forgotten. *)

  val restore :
    ?journal_seq:int ->
    t -> epoch:int -> accepted:int -> decided_in_epoch:int ->
    replay_digest:Bytes.t -> accumulator:F.t array -> unit
  (** Overwrite aggregate state from a checkpoint snapshot; the replay /
      idempotency tables restart empty (the snapshot only commits to them
      via the digest). @raise Invalid_argument on width mismatch. *)

  val receive : t -> client_id:int -> Bytes.t -> (Bytes.t * F.t array) option
  (** Authenticate, decrypt, replay-check and PRG-expand one packet into
      this server's flat share vector; [None] drops forgeries, replays
      and malformed payloads. *)

  val accumulate : t -> F.t array -> unit
  (** Fold the first k' components of an accepted share into the local
      accumulator. *)

  val publish : ?dp_noise:Prio_crypto.Rng.t * float -> t -> F.t array
  (** Reveal the accumulator, optionally with this server's
      differential-privacy noise share (§7). *)
end

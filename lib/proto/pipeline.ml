(** End-to-end pipelines for the five schemes the evaluation compares
    (§6.1): No-privacy, No-robustness, Prio, Prio-MPC, and the NIZK
    baseline. The benchmark harness drives these to regenerate Figures 4–8
    and Tables 3 and 9.

    Throughput convention: the simulation executes every server's work
    serially in one process. For a symmetric s-server cluster, s machines
    would run that work in parallel, so the simulated cluster throughput for
    n submissions processed in T seconds of serial server work is n·s/T
    (and n/T for the single-server no-privacy scheme). *)

let time f =
  let t0 = Retry.now () in
  let x = f () in
  (x, Retry.now () -. t0)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Prio_circuit.Circuit.Make (F)
  module Cluster = Cluster.Make (F)
  module Client = Client.Make (F)
  module Parallel = Parallel.Make (F)
  module Rng = Prio_crypto.Rng
  module Trace = Prio_obs.Trace

  type prepared = {
    packets : (int * Client.packets) array;  (** (client_id, packets) *)
    client_seconds : float;  (** total client-side CPU across clients *)
    upload_bytes : int;
  }

  (** Pre-generate client submissions (the benchmarks stream these at the
      servers, as the paper's load generators did). *)
  let prepare ~rng (cluster : Cluster.t) (encodings : F.t array list) : prepared
      =
    Trace.with_span "client.prepare"
      ~attrs:[ ("clients", string_of_int (List.length encodings)) ]
    @@ fun () ->
    let mode = Cluster.client_mode cluster in
    let master = cluster.Cluster.master in
    let s = cluster.Cluster.s in
    let total_bytes = ref 0 in
    let packets, client_seconds =
      time (fun () ->
          List.mapi
            (fun client_id enc ->
              let pk =
                Client.submit ~rng ~mode ~num_servers:s ~client_id ~master enc
              in
              total_bytes := !total_bytes + pk.Client.upload_bytes;
              (client_id, pk))
            encodings)
    in
    {
      packets = Array.of_list packets;
      client_seconds;
      upload_bytes = !total_bytes;
    }

  (** Feed all prepared submissions through the cluster; returns the number
      accepted and the serial server-side seconds. *)
  let process (cluster : Cluster.t) (p : prepared) : int * float =
    Trace.with_span "server.process"
      ~attrs:[ ("submissions", string_of_int (Array.length p.packets)) ]
    @@ fun () ->
    let accepted, seconds =
      time (fun () ->
          Array.fold_left
            (fun acc (client_id, pk) ->
              if Cluster.submit cluster ~client_id pk then acc + 1 else acc)
            0 p.packets)
    in
    (accepted, seconds)

  (** Multicore variant of {!process}: verify the batch on [domains]
      replica clusters (via {!Parallel.process}, optionally on a resident
      {!Pool}) and return the merged cluster, the accepted count, and the
      wall-clock seconds. The merged state is bit-identical to a
      sequential {!process} over the same packets. *)
  let process_parallel ?pool ~(make_replica : unit -> Cluster.t) ~domains
      (p : prepared) : Cluster.t * int * float =
    Trace.with_span "server.process_parallel"
      ~attrs:
        [ ("submissions", string_of_int (Array.length p.packets));
          ("domains", string_of_int domains) ]
    @@ fun () ->
    let (cluster, accepted), seconds =
      time (fun () ->
          Parallel.process ?pool ~make_replica ~domains p.packets)
    in
    (cluster, accepted, seconds)

  let simulated_throughput ~num_servers ~n ~serial_seconds =
    if serial_seconds <= 0. then infinity
    else float_of_int (n * num_servers) /. serial_seconds
end

(* ---------------------------------------------------------------------- *)
(* The NIZK comparison scheme (§6: Kursawe-et-al.-style).                  *)
(* ---------------------------------------------------------------------- *)

module Nizk_pipeline = struct
  module B = Prio_bigint.Bigint
  module G = Prio_nizk.Group
  module Rng = Prio_crypto.Rng

  type submission = {
    commitments : Prio_nizk.Pedersen.commitment array;
    proofs : Prio_nizk.Bitproof.t array;
    x_shares : B.t array array;  (** [server].(coord), exponent shares mod q *)
    r_shares : B.t array array;
  }

  let split_exponent rng ~s (x : B.t) : B.t array =
    let shares = Array.make s B.zero in
    let acc = ref B.zero in
    for i = 0 to s - 2 do
      let v = G.random_exponent rng in
      shares.(i) <- v;
      acc := B.erem (B.add !acc v) G.q
    done;
    shares.(s - 1) <- B.erem (B.sub x !acc) G.q;
    shares

  (** Client work: commit to each bit, prove 0/1, share openings. *)
  let client ~rng ~(bits : int array) ~s : submission =
    let sub = Prio_nizk.Bitproof.client_encode rng bits in
    let l = Array.length bits in
    let x_shares = Array.make_matrix s l B.zero in
    let r_shares = Array.make_matrix s l B.zero in
    for j = 0 to l - 1 do
      let o = sub.Prio_nizk.Bitproof.openings.(j) in
      let xs = split_exponent rng ~s o.Prio_nizk.Pedersen.value in
      let rs = split_exponent rng ~s o.Prio_nizk.Pedersen.randomness in
      for i = 0 to s - 1 do
        x_shares.(i).(j) <- xs.(i);
        r_shares.(i).(j) <- rs.(i)
      done
    done;
    {
      commitments = sub.Prio_nizk.Bitproof.commitments;
      proofs = sub.Prio_nizk.Bitproof.proofs;
      x_shares;
      r_shares;
    }

  (** Serial server-side work for one submission across the s-server
      cluster: proof checking is load-balanced (each proof is verified by
      one server, as in Figure 5's scaling argument), while every server
      computes its consistency elements g^[x_j] · h^[r_j] for every
      coordinate and the cluster checks they multiply to the commitment. *)
  let server_process ~s (sub : submission) : bool =
    let l = Array.length sub.commitments in
    let proofs_ok = ref true in
    (* load-balanced proof verification: one server per proof *)
    for j = 0 to l - 1 do
      if not (Prio_nizk.Bitproof.verify sub.commitments.(j) sub.proofs.(j)) then
        proofs_ok := false
    done;
    (* consistency: every server exponentiates for every coordinate *)
    let consistent = ref true in
    for j = 0 to l - 1 do
      let prod = ref G.one in
      for i = 0 to s - 1 do
        let e =
          G.mul (G.exp G.g sub.x_shares.(i).(j)) (G.exp G.h sub.r_shares.(i).(j))
        in
        prod := G.mul !prod e
      done;
      if not (G.equal !prod sub.commitments.(j)) then consistent := false
    done;
    !proofs_ok && !consistent

  (** Upload: commitments + proofs + per-server opening shares. *)
  let upload_bytes ~s ~l =
    (l * G.elt_bytes_len)
    + (l * Prio_nizk.Bitproof.proof_bytes)
    + (s * l * 2 * 32)

  (** Per-server published bytes per submission: one consistency group
      element per coordinate — the Θ(L) line of Figure 6. *)
  let per_server_bytes ~l = l * G.elt_bytes_len
end

(** Versioned, authenticated server-state snapshots for crash recovery.

    A long collection window (the paper's §1/§6 deployment story: a
    handful of servers absorbing a stream from millions of clients) must
    survive a server crash without discarding every accepted submission's
    contribution. A snapshot captures exactly the constant-size state a
    streaming server owns — accumulator, accepted count, epoch counters,
    and the 32-byte replay-table digest — never the per-submission
    tables, so checkpoint cost is independent of how many clients have
    been processed.

    Wire layout (all integers big-endian):

    {v
    "PRCK" ‖ version u8 ‖ server_id u32 ‖ epoch u32 ‖ accepted u32
           ‖ decided_in_epoch u32 ‖ journal_seq u32
           ‖ replay_digest (32 bytes)
           ‖ acc_elements u32 ‖ accumulator (acc_elements · F.bytes_len)
           ‖ HMAC-SHA256 tag (32 bytes, over everything before it)
    v}

    The tag is keyed from the deployment master secret and the server id
    ({!derive_key}), so a snapshot forged without the master secret, one
    belonging to a different server, or one from a deployment with a
    different master all fail verification — the decoder authenticates
    before it parses. Files are written atomically (temp file + rename),
    so a crash mid-write leaves the previous snapshot intact rather than
    a truncated one.

    This module also owns the {e decision journal} — the write-ahead log
    that closes the gap a snapshot leaves open. A snapshot is taken every
    [checkpoint_every] decisions; a decision made between two snapshots
    would be lost by a crash, so each server appends every decision
    (verdict plus, for accepts, its own truncated share) to an
    HMAC-chained append-only journal {e before} acknowledging it, and the
    journal is truncated once a snapshot has absorbed it. Recovery is
    snapshot + journal suffix:

    {v
    "PRDJ" ‖ version u8 ‖ server_id u32                        (header)
    seq u32 ‖ client_id u32 ‖ verdict u8 ('a'/'r') ‖ epoch u32
            ‖ nshare u32 ‖ share (nshare · F.bytes_len)
            ‖ chain tag (32 bytes)                             (per record)
    v}

    where [tag_i = HMAC(jkey, tag_{i-1} ‖ record_i_without_tag)] and the
    genesis tag is derived from the per-server journal key — so records
    cannot be forged, reordered, or dropped from the middle without
    breaking the chain. A torn tail (crash mid-append) is detected and
    truncated on open; a broken chain {e not} at the tail is tampering
    and refuses to load. *)

module Hmac = Prio_crypto.Hmac

type error =
  | Truncated  (** shorter than the fixed header + tag *)
  | Bad_magic
  | Bad_version of int
  | Bad_hmac  (** forged, corrupted, wrong server, or wrong master *)
  | Stale_epoch of { snapshot : int; floor : int }
      (** authentic but from an epoch the deployment already closed *)
  | Malformed of string  (** authenticated but internally inconsistent *)
  | Io of string  (** filesystem-level failure (includes a missing file) *)

let string_of_error = function
  | Truncated -> "truncated snapshot"
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "unsupported version %d" v
  | Bad_hmac -> "authentication failed"
  | Stale_epoch { snapshot; floor } ->
    Printf.sprintf "stale epoch %d (deployment floor %d)" snapshot floor
  | Malformed what -> "malformed snapshot: " ^ what
  | Io what -> "io: " ^ what

let magic = "PRCK"
let version = 2
let digest_len = 32
let tag_len = 32

(* fixed part: magic (4) + version (1) + 5 u32 counters + digest *)
let header_len = 4 + 1 + (5 * 4) + digest_len

(** Per-server snapshot MAC key, domain-separated from every other use of
    the master secret (packet authboxes use client/server pairs). *)
let derive_key ~master ~server_id =
  Hmac.sha256 ~key:master
    (Bytes.of_string (Printf.sprintf "prio-checkpoint-v1:%d" server_id))

let path ~dir ~server_id =
  Filename.concat dir (Printf.sprintf "server-%d.ckpt" server_id)

let journal_magic = "PRDJ"
let journal_version = 1
let journal_header_len = 4 + 1 + 4

(** Per-server decision-journal MAC key, domain-separated from the
    snapshot key: a snapshot forged from journal material (or vice versa)
    never verifies. *)
let derive_journal_key ~master ~server_id =
  Hmac.sha256 ~key:master
    (Bytes.of_string (Printf.sprintf "prio-journal-v1:%d" server_id))

let journal_path ~dir ~server_id =
  Filename.concat dir (Printf.sprintf "server-%d.djnl" server_id)

let put_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

module Make (F : Prio_field.Field_intf.S) = struct
  module W = Wire.Make (F)
  module Server = Server.Make (F)

  type snapshot = {
    server_id : int;
    epoch : int;
    accepted : int;
    decided_in_epoch : int;
    journal_seq : int;
        (** decisions absorbed by this snapshot — journal entries with a
            larger sequence must still be replayed after restore *)
    replay_digest : Bytes.t;  (** 32 bytes *)
    accumulator : F.t array;
  }

  let of_server (s : Server.t) : snapshot =
    {
      server_id = s.Server.id;
      epoch = s.Server.epoch;
      accepted = s.Server.accepted;
      decided_in_epoch = s.Server.decided_in_epoch;
      journal_seq = s.Server.journal_seq;
      replay_digest = Bytes.copy s.Server.replay_digest;
      accumulator = Array.copy s.Server.accumulator;
    }

  let apply (snap : snapshot) (s : Server.t) =
    Server.restore s ~journal_seq:snap.journal_seq ~epoch:snap.epoch
      ~accepted:snap.accepted ~decided_in_epoch:snap.decided_in_epoch
      ~replay_digest:snap.replay_digest ~accumulator:snap.accumulator

  let to_bytes ~key (snap : snapshot) : Bytes.t =
    if Bytes.length snap.replay_digest <> digest_len then
      invalid_arg "Checkpoint.to_bytes: replay digest must be 32 bytes";
    let acc = W.vector_to_bytes snap.accumulator in
    let body = Bytes.create (header_len + 4 + Bytes.length acc) in
    Bytes.blit_string magic 0 body 0 4;
    Bytes.set body 4 (Char.chr version);
    put_u32 body 5 snap.server_id;
    put_u32 body 9 snap.epoch;
    put_u32 body 13 snap.accepted;
    put_u32 body 17 snap.decided_in_epoch;
    put_u32 body 21 snap.journal_seq;
    Bytes.blit snap.replay_digest 0 body 25 digest_len;
    put_u32 body (25 + digest_len) (Array.length snap.accumulator);
    Bytes.blit acc 0 body (header_len + 4) (Bytes.length acc);
    Bytes.cat body (Hmac.sha256 ~key body)

  let of_bytes ?(min_epoch = 0) ~key (b : Bytes.t) :
      (snapshot, error) result =
    let len = Bytes.length b in
    if len < header_len + 4 + tag_len then Error Truncated
    else if Bytes.sub_string b 0 4 <> magic then Error Bad_magic
    else if Char.code (Bytes.get b 4) <> version then
      Error (Bad_version (Char.code (Bytes.get b 4)))
    else
      (* authenticate-then-parse: nothing past this point handles
         attacker-controlled bytes *)
      let body = Bytes.sub b 0 (len - tag_len) in
      let tag = Bytes.sub b (len - tag_len) tag_len in
      if not (Hmac.verify ~key ~tag body) then Error Bad_hmac
      else
        let epoch = get_u32 b 9 in
        if epoch < min_epoch then
          Error (Stale_epoch { snapshot = epoch; floor = min_epoch })
        else
          let acc_elements = get_u32 b (25 + digest_len) in
          let acc_bytes = len - tag_len - (header_len + 4) in
          if acc_bytes <> acc_elements * F.bytes_len then
            Error (Malformed "accumulator length mismatch")
          else
            match
              W.vector_of_bytes (Bytes.sub b (header_len + 4) acc_bytes)
            with
            | exception Invalid_argument what -> Error (Malformed what)
            | accumulator ->
              Ok
                {
                  server_id = get_u32 b 5;
                  epoch;
                  accepted = get_u32 b 13;
                  decided_in_epoch = get_u32 b 17;
                  journal_seq = get_u32 b 21;
                  replay_digest = Bytes.sub b 25 digest_len;
                  accumulator;
                }

  (* ------------------------------ files ------------------------------ *)

  let write_file file (b : Bytes.t) : (unit, error) result =
    match
      let fd =
        Unix.openfile file [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o600
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let rec push off len =
            if len > 0 then begin
              let w = Unix.write fd b off len in
              push (off + w) (len - w)
            end
          in
          push 0 (Bytes.length b);
          Unix.fsync fd)
    with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      Error (Io (file ^ ": " ^ Unix.error_message e))
    | exception Sys_error what -> Error (Io what)

  (** Atomically persist [snap] as [dir]'s snapshot for its server: the
      bytes land in a temp file first and replace the previous snapshot
      only via [rename], so every crash leaves a complete snapshot (old
      or new) on disk, never a torn one. *)
  let save ~key ~dir (snap : snapshot) : (unit, error) result =
    let file = path ~dir ~server_id:snap.server_id in
    let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
    match write_file tmp (to_bytes ~key snap) with
    | Error _ as e ->
      (try Unix.unlink tmp with Unix.Unix_error _ -> ());
      e
    | Ok () -> (
      match Unix.rename tmp file with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.unlink tmp with Unix.Unix_error _ -> ());
        Error (Io (file ^ ": rename: " ^ Unix.error_message e)))

  let read_file file : (Bytes.t, error) result =
    match Unix.openfile file [ O_RDONLY; O_CLOEXEC ] 0 with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Io (file ^ ": " ^ Unix.error_message e))
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match
            let size = (Unix.fstat fd).st_size in
            let b = Bytes.create size in
            let rec pull off =
              if off >= size then Some b
              else
                match Unix.read fd b off (size - off) with
                | 0 -> None (* file shrank underneath us *)
                | r -> pull (off + r)
            in
            pull 0
          with
          | Some b -> Ok b
          | None -> Error (Io (file ^ ": short read"))
          | exception Unix.Unix_error (e, _, _) ->
            Error (Io (file ^ ": " ^ Unix.error_message e)))

  (** Load and validate the latest snapshot for [server_id]. A snapshot
      naming a different server id is a {!Malformed} mix-up even when
      authentic under [key] (belt and braces: {!derive_key} already
      separates per-server keys). *)
  let load ?min_epoch ~key ~dir ~server_id () :
      (snapshot, error) result =
    match read_file (path ~dir ~server_id) with
    | Error _ as e -> e
    | Ok b -> (
      match of_bytes ?min_epoch ~key b with
      | Error _ as e -> e
      | Ok snap when snap.server_id <> server_id ->
        Error (Malformed "snapshot names a different server")
      | Ok snap -> Ok snap)

  (* --------------------------- decision journal ---------------------- *)

  type journal_entry = {
    j_seq : int;
        (** the server's [journal_seq] after recording this decision *)
    j_client : int;
    j_accepted : bool;
    j_epoch : int;  (** server epoch when the decision was made *)
    j_share : F.t array;
        (** the server's own truncated share for accepted entries (what
            replay re-accumulates); empty for rejections *)
  }

  type journal = {
    jr_fd : Unix.file_descr;
    jr_key : Bytes.t;
    jr_file : string;
    mutable jr_tag : Bytes.t;  (** chain head = tag of the last record *)
    mutable jr_closed : bool;
  }

  (* seq ‖ client ‖ verdict ‖ epoch ‖ nshare *)
  let record_fixed_len = 4 + 4 + 1 + 4 + 4

  (* Sanity cap on a record's share count: real entries hold one truncated
     accumulator row, so anything past this is garbage from a torn write. *)
  let max_journal_share = 1 lsl 20

  let genesis_tag key = Hmac.sha256 ~key (Bytes.of_string "prio-journal-genesis")

  let journal_record_bytes (e : journal_entry) : Bytes.t =
    let share = W.vector_to_bytes e.j_share in
    let b = Bytes.create (record_fixed_len + Bytes.length share) in
    put_u32 b 0 e.j_seq;
    put_u32 b 4 e.j_client;
    Bytes.set b 8 (if e.j_accepted then 'a' else 'r');
    put_u32 b 9 e.j_epoch;
    put_u32 b 13 (Array.length e.j_share);
    Bytes.blit share 0 b record_fixed_len (Bytes.length share);
    b

  let chain_tag ~key ~prev record = Hmac.sha256 ~key (Bytes.cat prev record)

  let wrap_io file f =
    match f () with
    | v -> Ok v
    | exception Unix.Unix_error (e, _, _) ->
      Error (Io (file ^ ": " ^ Unix.error_message e))
    | exception Sys_error what -> Error (Io what)

  (** Open (creating if absent) [server_id]'s decision journal under
      [dir], verify the HMAC chain, and return the surviving entries in
      append order plus a handle positioned for appending. A torn tail —
      the crash-mid-append case — is truncated away; a chain break that is
      {e not} at the tail is tampering and fails with [Bad_hmac]. *)
  let journal_open ~key ~dir ~server_id () :
      (journal_entry list * journal, error) result =
    let file = journal_path ~dir ~server_id in
    match
      wrap_io file (fun () ->
          Unix.openfile file [ O_RDWR; O_CREAT; O_CLOEXEC ] 0o600)
    with
    | Error _ as e -> e
    | Ok fd -> (
      let fail err =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error err
      in
      match wrap_io file (fun () -> (Unix.fstat fd).st_size) with
      | Error e -> fail e
      | Ok 0 -> (
        (* fresh journal: stamp the header *)
        let hdr = Bytes.create journal_header_len in
        Bytes.blit_string journal_magic 0 hdr 0 4;
        Bytes.set hdr 4 (Char.chr journal_version);
        put_u32 hdr 5 server_id;
        match
          wrap_io file (fun () ->
              let rec push off len =
                if len > 0 then begin
                  let w = Unix.write fd hdr off len in
                  push (off + w) (len - w)
                end
              in
              push 0 journal_header_len;
              Unix.fsync fd)
        with
        | Error e -> fail e
        | Ok () ->
          Ok
            ( [],
              {
                jr_fd = fd;
                jr_key = key;
                jr_file = file;
                jr_tag = genesis_tag key;
                jr_closed = false;
              } ))
      | Ok size when size < journal_header_len -> fail Truncated
      | Ok size -> (
        match
          wrap_io file (fun () ->
              ignore (Unix.lseek fd 0 SEEK_SET);
              let b = Bytes.create size in
              let rec pull off =
                if off >= size then Some b
                else
                  match Unix.read fd b off (size - off) with
                  | 0 -> None (* file shrank underneath us *)
                  | r -> pull (off + r)
              in
              pull 0)
        with
        | Error e -> fail e
        | Ok None -> fail (Io (file ^ ": short read"))
        | Ok (Some b) ->
          if Bytes.sub_string b 0 4 <> journal_magic then fail Bad_magic
          else if Char.code (Bytes.get b 4) <> journal_version then
            fail (Bad_version (Char.code (Bytes.get b 4)))
          else if get_u32 b 5 <> server_id then
            fail (Malformed "journal names a different server")
          else begin
            (* walk the chain; [Ok (entries, tail, tag)] keeps the byte
               offset the good prefix ends at so a torn tail truncates *)
            let rec walk entries off prev_tag =
              if size - off < record_fixed_len + tag_len then
                Ok (entries, off, prev_tag)
              else
                let nshare = get_u32 b (off + 13) in
                let needed =
                  record_fixed_len + (nshare * F.bytes_len) + tag_len
                in
                if nshare > max_journal_share || size - off < needed then
                  Ok (entries, off, prev_tag)
                else
                  let body_len = needed - tag_len in
                  let record = Bytes.sub b off body_len in
                  let tag = Bytes.sub b (off + body_len) tag_len in
                  if
                    not
                      (Hmac.verify ~key ~tag (Bytes.cat prev_tag record))
                  then
                    if off + needed = size then
                      (* torn tail that still parses: drop it *)
                      Ok (entries, off, prev_tag)
                    else Error Bad_hmac
                  else
                    match
                      W.vector_of_bytes
                        (Bytes.sub b (off + record_fixed_len)
                           (nshare * F.bytes_len))
                    with
                    | exception Invalid_argument what ->
                      Error (Malformed what)
                    | j_share ->
                      let entry =
                        {
                          j_seq = get_u32 b off;
                          j_client = get_u32 b (off + 4);
                          j_accepted = Bytes.get b (off + 8) = 'a';
                          j_epoch = get_u32 b (off + 9);
                          j_share;
                        }
                      in
                      walk (entry :: entries) (off + needed) tag
            in
            match walk [] journal_header_len (genesis_tag key) with
            | Error e -> fail e
            | Ok (entries, tail, tag) -> (
              match
                wrap_io file (fun () ->
                    if tail < size then begin
                      Unix.ftruncate fd tail;
                      Unix.fsync fd
                    end;
                    ignore (Unix.lseek fd tail SEEK_SET))
              with
              | Error e -> fail e
              | Ok () ->
                Ok
                  ( List.rev entries,
                    {
                      jr_fd = fd;
                      jr_key = key;
                      jr_file = file;
                      jr_tag = tag;
                      jr_closed = false;
                    } ))
          end))

  (** Append one decision record and extend the HMAC chain. With [fsync]
      (the default) the record is on stable storage before this returns —
      the write-ahead property the commit ack depends on. *)
  let journal_append ?(fsync = true) (j : journal) (e : journal_entry) :
      (unit, error) result =
    if j.jr_closed then Error (Io (j.jr_file ^ ": journal closed"))
    else begin
      let record = journal_record_bytes e in
      let tag = chain_tag ~key:j.jr_key ~prev:j.jr_tag record in
      let out = Bytes.cat record tag in
      match
        wrap_io j.jr_file (fun () ->
            let len = Bytes.length out in
            let rec push off rem =
              if rem > 0 then begin
                let w = Unix.write j.jr_fd out off rem in
                push (off + w) (rem - w)
              end
            in
            push 0 len;
            if fsync then Unix.fsync j.jr_fd)
      with
      | Error _ as err -> err
      | Ok () ->
        j.jr_tag <- tag;
        Ok ()
    end

  (** Drop every record — called once a snapshot has absorbed them. The
      chain restarts from the genesis tag. *)
  let journal_truncate (j : journal) : (unit, error) result =
    if j.jr_closed then Error (Io (j.jr_file ^ ": journal closed"))
    else
      match
        wrap_io j.jr_file (fun () ->
            Unix.ftruncate j.jr_fd journal_header_len;
            ignore (Unix.lseek j.jr_fd journal_header_len SEEK_SET);
            Unix.fsync j.jr_fd)
      with
      | Error _ as err -> err
      | Ok () ->
        j.jr_tag <- genesis_tag j.jr_key;
        Ok ()

  let journal_close (j : journal) =
    if not j.jr_closed then begin
      j.jr_closed <- true;
      try Unix.close j.jr_fd with Unix.Unix_error _ -> ()
    end
end

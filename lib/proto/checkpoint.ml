(** Versioned, authenticated server-state snapshots for crash recovery.

    A long collection window (the paper's §1/§6 deployment story: a
    handful of servers absorbing a stream from millions of clients) must
    survive a server crash without discarding every accepted submission's
    contribution. A snapshot captures exactly the constant-size state a
    streaming server owns — accumulator, accepted count, epoch counters,
    and the 32-byte replay-table digest — never the per-submission
    tables, so checkpoint cost is independent of how many clients have
    been processed.

    Wire layout (all integers big-endian):

    {v
    "PRCK" ‖ version u8 ‖ server_id u32 ‖ epoch u32 ‖ accepted u32
           ‖ decided_in_epoch u32 ‖ replay_digest (32 bytes)
           ‖ acc_elements u32 ‖ accumulator (acc_elements · F.bytes_len)
           ‖ HMAC-SHA256 tag (32 bytes, over everything before it)
    v}

    The tag is keyed from the deployment master secret and the server id
    ({!derive_key}), so a snapshot forged without the master secret, one
    belonging to a different server, or one from a deployment with a
    different master all fail verification — the decoder authenticates
    before it parses. Files are written atomically (temp file + rename),
    so a crash mid-write leaves the previous snapshot intact rather than
    a truncated one. *)

module Hmac = Prio_crypto.Hmac

type error =
  | Truncated  (** shorter than the fixed header + tag *)
  | Bad_magic
  | Bad_version of int
  | Bad_hmac  (** forged, corrupted, wrong server, or wrong master *)
  | Stale_epoch of { snapshot : int; floor : int }
      (** authentic but from an epoch the deployment already closed *)
  | Malformed of string  (** authenticated but internally inconsistent *)
  | Io of string  (** filesystem-level failure (includes a missing file) *)

let string_of_error = function
  | Truncated -> "truncated snapshot"
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "unsupported version %d" v
  | Bad_hmac -> "authentication failed"
  | Stale_epoch { snapshot; floor } ->
    Printf.sprintf "stale epoch %d (deployment floor %d)" snapshot floor
  | Malformed what -> "malformed snapshot: " ^ what
  | Io what -> "io: " ^ what

let magic = "PRCK"
let version = 1
let digest_len = 32
let tag_len = 32

(* fixed part: magic (4) + version (1) + 4 u32 counters + digest *)
let header_len = 4 + 1 + (4 * 4) + digest_len

(** Per-server snapshot MAC key, domain-separated from every other use of
    the master secret (packet authboxes use client/server pairs). *)
let derive_key ~master ~server_id =
  Hmac.sha256 ~key:master
    (Bytes.of_string (Printf.sprintf "prio-checkpoint-v1:%d" server_id))

let path ~dir ~server_id =
  Filename.concat dir (Printf.sprintf "server-%d.ckpt" server_id)

let put_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

module Make (F : Prio_field.Field_intf.S) = struct
  module W = Wire.Make (F)
  module Server = Server.Make (F)

  type snapshot = {
    server_id : int;
    epoch : int;
    accepted : int;
    decided_in_epoch : int;
    replay_digest : Bytes.t;  (** 32 bytes *)
    accumulator : F.t array;
  }

  let of_server (s : Server.t) : snapshot =
    {
      server_id = s.Server.id;
      epoch = s.Server.epoch;
      accepted = s.Server.accepted;
      decided_in_epoch = s.Server.decided_in_epoch;
      replay_digest = Bytes.copy s.Server.replay_digest;
      accumulator = Array.copy s.Server.accumulator;
    }

  let apply (snap : snapshot) (s : Server.t) =
    Server.restore s ~epoch:snap.epoch ~accepted:snap.accepted
      ~decided_in_epoch:snap.decided_in_epoch
      ~replay_digest:snap.replay_digest ~accumulator:snap.accumulator

  let to_bytes ~key (snap : snapshot) : Bytes.t =
    if Bytes.length snap.replay_digest <> digest_len then
      invalid_arg "Checkpoint.to_bytes: replay digest must be 32 bytes";
    let acc = W.vector_to_bytes snap.accumulator in
    let body = Bytes.create (header_len + 4 + Bytes.length acc) in
    Bytes.blit_string magic 0 body 0 4;
    Bytes.set body 4 (Char.chr version);
    put_u32 body 5 snap.server_id;
    put_u32 body 9 snap.epoch;
    put_u32 body 13 snap.accepted;
    put_u32 body 17 snap.decided_in_epoch;
    Bytes.blit snap.replay_digest 0 body 21 digest_len;
    put_u32 body (21 + digest_len) (Array.length snap.accumulator);
    Bytes.blit acc 0 body (header_len + 4) (Bytes.length acc);
    Bytes.cat body (Hmac.sha256 ~key body)

  let of_bytes ?(min_epoch = 0) ~key (b : Bytes.t) :
      (snapshot, error) result =
    let len = Bytes.length b in
    if len < header_len + 4 + tag_len then Error Truncated
    else if Bytes.sub_string b 0 4 <> magic then Error Bad_magic
    else if Char.code (Bytes.get b 4) <> version then
      Error (Bad_version (Char.code (Bytes.get b 4)))
    else
      (* authenticate-then-parse: nothing past this point handles
         attacker-controlled bytes *)
      let body = Bytes.sub b 0 (len - tag_len) in
      let tag = Bytes.sub b (len - tag_len) tag_len in
      if not (Hmac.verify ~key ~tag body) then Error Bad_hmac
      else
        let epoch = get_u32 b 9 in
        if epoch < min_epoch then
          Error (Stale_epoch { snapshot = epoch; floor = min_epoch })
        else
          let acc_elements = get_u32 b (21 + digest_len) in
          let acc_bytes = len - tag_len - (header_len + 4) in
          if acc_bytes <> acc_elements * F.bytes_len then
            Error (Malformed "accumulator length mismatch")
          else
            match
              W.vector_of_bytes (Bytes.sub b (header_len + 4) acc_bytes)
            with
            | exception Invalid_argument what -> Error (Malformed what)
            | accumulator ->
              Ok
                {
                  server_id = get_u32 b 5;
                  epoch;
                  accepted = get_u32 b 13;
                  decided_in_epoch = get_u32 b 17;
                  replay_digest = Bytes.sub b 21 digest_len;
                  accumulator;
                }

  (* ------------------------------ files ------------------------------ *)

  let write_file file (b : Bytes.t) : (unit, error) result =
    match
      let fd =
        Unix.openfile file [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o600
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let rec push off len =
            if len > 0 then begin
              let w = Unix.write fd b off len in
              push (off + w) (len - w)
            end
          in
          push 0 (Bytes.length b);
          Unix.fsync fd)
    with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      Error (Io (file ^ ": " ^ Unix.error_message e))
    | exception Sys_error what -> Error (Io what)

  (** Atomically persist [snap] as [dir]'s snapshot for its server: the
      bytes land in a temp file first and replace the previous snapshot
      only via [rename], so every crash leaves a complete snapshot (old
      or new) on disk, never a torn one. *)
  let save ~key ~dir (snap : snapshot) : (unit, error) result =
    let file = path ~dir ~server_id:snap.server_id in
    let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
    match write_file tmp (to_bytes ~key snap) with
    | Error _ as e ->
      (try Unix.unlink tmp with Unix.Unix_error _ -> ());
      e
    | Ok () -> (
      match Unix.rename tmp file with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.unlink tmp with Unix.Unix_error _ -> ());
        Error (Io (file ^ ": rename: " ^ Unix.error_message e)))

  let read_file file : (Bytes.t, error) result =
    match Unix.openfile file [ O_RDONLY; O_CLOEXEC ] 0 with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Io (file ^ ": " ^ Unix.error_message e))
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match
            let size = (Unix.fstat fd).st_size in
            let b = Bytes.create size in
            let rec pull off =
              if off >= size then Some b
              else
                match Unix.read fd b off (size - off) with
                | 0 -> None (* file shrank underneath us *)
                | r -> pull (off + r)
            in
            pull 0
          with
          | Some b -> Ok b
          | None -> Error (Io (file ^ ": short read"))
          | exception Unix.Unix_error (e, _, _) ->
            Error (Io (file ^ ": " ^ Unix.error_message e)))

  (** Load and validate the latest snapshot for [server_id]. A snapshot
      naming a different server id is a {!Malformed} mix-up even when
      authentic under [key] (belt and braces: {!derive_key} already
      separates per-server keys). *)
  let load ?min_epoch ~key ~dir ~server_id () :
      (snapshot, error) result =
    match read_file (path ~dir ~server_id) with
    | Error _ as e -> e
    | Ok b -> (
      match of_bytes ?min_epoch ~key b with
      | Error _ as e -> e
      | Ok snap when snap.server_id <> server_id ->
        Error (Malformed "snapshot names a different server")
      | Ok snap -> Ok snap)
end

(** A simulated multi-server Prio deployment with exact byte accounting.

    All s servers run in one process; every server-to-server message is
    recorded on a per-link byte matrix at its serialized size, so the
    data-transfer numbers of Figure 6 come out exactly. Leadership
    rotates per submission (the paper's load-balancing, Figure 5), the
    verifiers' batch secrets rotate every [batch_size] submissions
    (Appendix I), and replay/forgery protection is per server.

    Per-submission verification flow (leader ℓ): local prepare
    everywhere; non-leaders send Beaver openings to ℓ (2 elements); ℓ
    broadcasts the reconstructed pair; everyone returns a verdict share
    (2 elements); ℓ broadcasts the decision. In Prio-MPC mode, one Beaver
    round per mul gate of the secret circuit precedes the decision. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module C : module type of Prio_circuit.Circuit.Make (F)
  module Snip : module type of Prio_snip.Snip.Make (F)
  module Server : module type of Server.Make (F)
  module Client : module type of Client.Make (F)

  type mode =
    | Robust_snip  (** full Prio: SNIP-verified submissions *)
    | Robust_mpc  (** Prio-MPC: server-side Valid evaluation (§4.4) *)
    | No_robustness  (** §3 baseline: accumulate without verification *)

  type t = {
    mode : mode;
    circuit : C.t;
    encoding_len : int;
    trunc_len : int;
    s : int;
    master : Bytes.t;
    servers : Server.t array;
    mutable snip_ctx : Snip.batch_ctx option;
    mutable triple_ctx : Snip.batch_ctx option;
    batch_size : int;
    mutable processed_in_batch : int;
    mutable batches : int;
    epoch_size : int;
        (** submissions per replay/idempotency epoch; 0 = never rotate *)
    epoch_max_age_s : float;
        (** maximum epoch age in seconds before rotation (0 = no age
            trigger); either trigger closes the epoch *)
    clock : Prio_obs.Clock.t;
    mutable epoch_started_at : float;
    mutable epoch : int;
    mutable submissions_in_epoch : int;
    links : int array array;  (** links.(i).(j): bytes sent i → j *)
    rng : Prio_crypto.Rng.t;
    mutable next_leader : int;
    mutable accepted : int;
    mutable rejected : int;
  }

  val client_mode : t -> Client.mode
  (** The client-side mode matching this deployment. *)

  val create :
    ?batch_size:int -> ?epoch_size:int -> ?epoch_max_age_s:float ->
    ?clock:Prio_obs.Clock.t -> rng:Prio_crypto.Rng.t ->
    mode:mode -> circuit:C.t -> trunc_len:int -> num_servers:int ->
    master:Bytes.t -> unit -> t
  (** [batch_size] (default 1024) bounds how many submissions share one
      identity-test point r before resampling. [epoch_size] (default 0 =
      off) bounds how many submissions' replay/idempotency entries stay
      resident before {!rotate_epoch} drops them — the streaming-mode
      flat-memory knob. [epoch_max_age_s] (default 0 = off) additionally
      rotates an epoch older than that many seconds on [clock] (default
      the system clock; injectable for tests), so a slow trickle of
      submissions cannot keep replay state resident forever. *)

  val resident_entries : t -> int
  (** Per-submission state currently resident across all servers; with
      [epoch_size] set, bounded by [s * epoch_size]. *)

  val rotate_epoch : t -> unit
  (** Close the replay/idempotency epoch on every server in lockstep;
      accumulators and counters are untouched. Also available with
      [epoch_size = 0] for callers that rotate on their own schedule. *)

  val submit : t -> client_id:int -> Client.packets -> bool
  (** Deliver one client's packets to every server, run verification, and
      accumulate on acceptance. *)

  val publish : ?dp_alpha:float -> t -> F.t array
  (** Every server reveals its accumulator (counted as traffic); the sum
      is returned for AFE decoding. [dp_alpha] adds each server's
      distributed-noise share first (§7). *)

  val merge_into : dst:t -> t -> unit
  (** Fold a replica's accumulators, counters and traffic into [dst]
      (used by {!Parallel}); deployments must match. *)

  val bytes_sent : t -> int -> int
  val total_server_bytes : t -> int
  val reset_links : t -> unit
end

(** Deadline and retry combinators for the TCP runtime: absolute
    deadlines bounding every socket operation, plus exponential backoff
    with deterministic jitter for client-side RPC retries. *)

type deadline = float
(** Absolute [Unix.gettimeofday] instant; [infinity] means never. *)

val now : unit -> float
val after : float -> deadline
(** [after s] is the instant [s] seconds from now. *)

val no_deadline : deadline
val remaining : deadline -> float
(** Seconds left (negative once past). *)

val expired : deadline -> bool

val sleep : float -> unit
(** Sleep at least this long, resuming across EINTR. *)

type backoff = {
  max_attempts : int;  (** total tries, including the first *)
  base_delay : float;  (** seconds before the second try *)
  multiplier : float;  (** geometric growth per retry *)
  max_delay : float;  (** ceiling on any single pause *)
  jitter : float;  (** fraction of the pause randomized away, in [0,1] *)
}

val default_backoff : backoff
(** 5 tries, 20 ms base, doubling, 500 ms cap, 50% jitter. *)

val delay_for : ?rng:Prio_crypto.Rng.t -> backoff -> attempt:int -> float
(** Pause after try number [attempt] (0-based), jittered when an [rng]
    is supplied — deterministic given the rng state, so chaos runs
    reproduce exactly. *)

val with_backoff :
  ?rng:Prio_crypto.Rng.t ->
  ?on_retry:(attempt:int -> 'e -> unit) ->
  backoff ->
  (attempt:int -> [ `Done of 'a | `Retry of 'e | `Fail of 'e ]) ->
  ('a, 'e) result
(** Run [f] until it returns [`Done] (success), [`Fail] (permanent
    error — no retry), or [`Retry] has been answered [max_attempts]
    times; sleeps [delay_for] between tries. *)

(** Static analyses over Valid() circuits: gate census, use/def counts,
    backward liveness from the assert-zero roots, a constant-propagation
    lattice, and an exact affine-form abstraction (each wire as a sparse
    linear combination of inputs and mul-gate outputs). {!Opt} consumes
    these to rewrite circuits; the census also feeds the [circuit-budget]
    lint rule and the reporting tools. All analyses are linear in the
    number of wires. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module C : module type of Circuit.Make (F)

  type census = {
    inputs : int;
    wires : int;
    muls : int;
    asserts : int;
  }

  val census : C.t -> census

  val use_counts : C.t -> int array
  (** Reads of each wire by later gates and by assert-zeros. *)

  val live_wires : C.t -> bool array
  (** Is each wire reachable backwards from some assert-zero root? *)

  (** {1 Constant propagation} *)

  type const = Unknown | Known of F.t
      (** [Known v]: the wire is [v] on every input vector. *)

  val constants : C.t -> const array

  (** {1 Affine forms} *)

  type atom = A_input of int | A_mul of C.wire
      (** Inputs and (genuine) mul-gate outputs — the opaque values
          affine gates combine. *)

  val atom_compare : atom -> atom -> int
  val atom_equal : atom -> atom -> bool

  type affine = { const : F.t; terms : (atom * F.t) list }
      (** const + Σ coeff·atom; terms sorted by atom, no zero
          coefficients — canonical, so structural equality is semantic
          equality. *)

  val affine_const : F.t -> affine
  val affine_atom : atom -> affine
  val as_const : affine -> F.t option
  val affine_add : affine -> affine -> affine
  val affine_sub : affine -> affine -> affine
  val affine_scale : F.t -> affine -> affine
  val affine_add_const : F.t -> affine -> affine
  val affine_equal : affine -> affine -> bool

  val affine_forms : C.t -> affine array
  (** The affine form of every wire. Mul gates with a constant operand
      are flattened; opaque muls appear as their own [A_mul] atom. *)
end

(** Arithmetic circuits over a prime field (paper, Appendix C.1).

    A circuit is a wire-indexed DAG of gates: affine gates (add, subtract,
    scale, add-constant) are free in the SNIP cost model, while [Mul]
    gates — products of two non-constant wires — cost proof length and
    verification work, so the builder maintains a census of them in
    topological order.

    A validation predicate Valid(x) is a circuit plus a set of
    {e assert-zero} wires: Valid holds iff every such wire evaluates to
    zero. The paper's "output wire = 1" convention is the affine special
    case (out − 1); the assert-zero form is what lets the servers check
    any number of constraints with one random linear combination (the
    circuit-AND optimization of Appendix I). *)

module Make (F : Prio_field.Field_intf.S) : sig
  type wire = int

  type gate =
    | Input of int  (** index into the client's encoded vector *)
    | Const of F.t
    | Add of wire * wire
    | Sub of wire * wire
    | Scale of F.t * wire
    | Add_const of F.t * wire
    | Mul of wire * wire

  type t = {
    num_inputs : int;
    gates : gate array;
    assert_zero : wire array;
    mul_gates : (wire * wire * wire) array;
        (** (output, left input, right input) per mul gate, topological *)
  }

  val num_wires : t -> int
  val num_mul_gates : t -> int
  val num_inputs : t -> int

  val validate : t -> (unit, string) result
  (** Structural well-formedness: gates in topological order (operands
      strictly earlier), input indices in range, assert-zero wires in
      range, and the mul census equal to the [Mul] gates of the gate array
      in order. Run by {!Builder.build} and after every optimizer pass so
      malformed circuits fail fast with a precise message. *)

  val validate_exn : ?context:string -> t -> unit
  (** @raise Invalid_argument with ["context: reason"] when invalid. *)

  (** Imperative circuit construction. Input wires are created eagerly,
      one per input index. {!Builder.build} validates the result, so e.g.
      a dangling assert-zero registered against a non-existent wire fails
      there with a precise message. *)
  module Builder : sig
    type b

    val create : num_inputs:int -> b

    val input : b -> int -> wire
    (** @raise Invalid_argument when out of range. *)

    val const : b -> F.t -> wire
    val add : b -> wire -> wire -> wire
    val sub : b -> wire -> wire -> wire
    val mul : b -> wire -> wire -> wire
    val scale : b -> F.t -> wire -> wire
    val add_const : b -> F.t -> wire -> wire

    val assert_zero : b -> wire -> unit
    (** Constrain the wire to be zero in every valid encoding. *)

    val sum : b -> wire list -> wire
    val linear_combination : b -> (F.t * wire) list -> wire

    val assert_bit : b -> wire -> unit
    (** w·(w−1) = 0 — one mul gate. *)

    val assert_binary_decomposition : b -> value:wire -> bits:wire list -> unit
    (** value = Σ 2^i·bits_i — affine, no mul gates. *)

    val assert_square : b -> x:wire -> y:wire -> unit
    val assert_product : b -> x:wire -> x':wire -> y:wire -> unit

    val assert_one_hot : b -> wire list -> unit
    (** Each wire a bit, together summing to one. *)

    val build : b -> t
  end

  (** {1 Composition} *)

  val remap_inputs : t -> num_inputs:int -> mapping:(int -> int) -> t
  (** Re-index inputs into a wider input vector (injective mapping). *)

  val union : t -> t -> t
  (** Assert everything both circuits assert over a shared input vector;
      [a]'s mul gates precede [b]'s in the combined census.
      @raise Invalid_argument if input arities differ. *)

  (** {1 Evaluation} *)

  val eval_wires : t -> inputs:F.t array -> F.t array
  (** All wire values, in the clear. *)

  val valid : t -> inputs:F.t array -> bool
  (** Do all assert-zero wires vanish? *)

  val eval_mul_pairs : t -> inputs:F.t array -> F.t array * (F.t * F.t) array
  (** Wire values plus, per mul gate, its input pair (u_t, v_t) — what
      the SNIP prover interpolates f and g through. *)

  val eval_shares :
    t -> const_share_of_one:F.t -> inputs:F.t array -> mul_outputs:F.t array ->
    F.t array * (F.t * F.t) array
  (** The SNIP verifier's communication-free walk (§4.2 step 2): affine
      gates act on shares; each mul gate's output is read from the
      client-supplied [mul_outputs] (shares of h at the gate's grid
      point); public constants enter scaled by [const_share_of_one]
      (1/s). Returns wire-value shares and per-gate input-pair shares. *)

  val assert_zero_values : t -> F.t array -> F.t array
  (** Project the assert-zero wires out of a wire-value array. *)
end

(** Semantics-preserving optimization of Valid() circuits.

    In the SNIP cost model (paper, Appendix C) proof length, upload bytes
    and verification time all scale with the number of [Mul] gates, and
    affine gates are free — so the passes here aim squarely at mul gates
    and let the affine structure carry everything it can:

    - {b constant folding}: wires that are [Known] on the
      {!Analysis.constants} lattice become [Const] gates; vacuous
      assert-zeros (provably-zero wires) are dropped, provably-nonzero
      ones are kept so an always-rejecting circuit stays rejecting.
    - {b mul canonicalization}: a mul with a constant operand becomes a
      [Scale] (both constant: a [Const]); commutative normalization
      orders every [Mul]/[Add] operand pair so x·y and y·x — and in
      particular both spellings of a square x·x — hash-cons to one gate.
    - {b affine flattening}: every wire's {!Analysis.affine_forms} form
      is rematerialized as one canonical scale/add chain per distinct
      linear combination, which collapses Add/Sub/Scale/Add_const trees,
      deduplicates assert-zero wires that assert the same combination,
      and drops affine wires nothing reads.
    - {b CSE}: hash-consing of structurally-equal gates, plus
      deduplication of repeated assert-zero wires.
    - {b dead-gate elimination}: backward liveness from the assert-zero
      roots; dead gates — including dead [Mul]s and unread [Input]
      wires — are removed (the input {e vector} layout is unchanged;
      only the internal wire DAG shrinks).

    The pipeline iterates to a structural fixpoint. Semantic preservation
    is enforced two ways: {!Circuit.validate} runs after every pass
    (malformed output is a hard error), and the test suite asserts
    optimized ≡ unoptimized accept/reject behaviour on random and valid
    inputs for every AFE over every field.

    Preserved invariants: [num_inputs], the relative (topological) order
    of the surviving mul gates, and the predicate
    [valid c ~inputs = valid (optimize c) ~inputs] for all inputs. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Circuit.Make (F)
  module A = Analysis.Make (F)

  (* ------------------------------------------------------------------ *)
  (* Rebuilder: emit-with-hash-consing into a fresh circuit.             *)
  (* ------------------------------------------------------------------ *)

  module Key = struct
    type t = C.gate

    let equal (a : t) (b : t) =
      match (a, b) with
      | C.Input i, C.Input j -> i = j
      | C.Const u, C.Const v -> F.equal u v
      | C.Add (x, y), C.Add (x', y') | C.Sub (x, y), C.Sub (x', y') ->
        x = x' && y = y'
      | C.Mul (x, y), C.Mul (x', y') -> x = x' && y = y'
      | C.Scale (u, x), C.Scale (v, y) -> x = y && F.equal u v
      | C.Add_const (u, x), C.Add_const (v, y) -> x = y && F.equal u v
      | _ -> false

    (* Field constants are deliberately left out of the hash (F.t has no
       generic hash); gates differing only in the constant share a bucket
       and are separated by [equal]. *)
    let hash = function
      | C.Input i -> Hashtbl.hash (0, i)
      | C.Const _ -> Hashtbl.hash 1
      | C.Add (x, y) -> Hashtbl.hash (2, x, y)
      | C.Sub (x, y) -> Hashtbl.hash (3, x, y)
      | C.Scale (_, x) -> Hashtbl.hash (4, x)
      | C.Add_const (_, x) -> Hashtbl.hash (5, x)
      | C.Mul (x, y) -> Hashtbl.hash (6, x, y)
  end

  module Tbl = Hashtbl.Make (Key)

  type rb = {
    num_inputs : int;
    mutable gates : C.gate array;
    mutable len : int;
    cons : C.wire Tbl.t;
    mutable zrev : C.wire list;
    zseen : (C.wire, unit) Hashtbl.t;
  }

  let rb_create ~num_inputs =
    {
      num_inputs;
      gates = [||];
      len = 0;
      cons = Tbl.create 64;
      zrev = [];
      zseen = Hashtbl.create 16;
    }

  let rb_push rb g =
    if rb.len = Array.length rb.gates then begin
      let bigger = Array.make (Stdlib.max 16 (2 * rb.len)) (C.Const F.zero) in
      Array.blit rb.gates 0 bigger 0 rb.len;
      rb.gates <- bigger
    end;
    rb.gates.(rb.len) <- g;
    rb.len <- rb.len + 1;
    rb.len - 1

  (* Commutative normalization: Add and Mul operands in ascending wire
     order, so both operand orders (and both spellings of a square) are
     one gate to the hash-conser. *)
  let norm = function
    | C.Add (x, y) when y < x -> C.Add (y, x)
    | C.Mul (x, y) when y < x -> C.Mul (y, x)
    | g -> g

  let emit rb g =
    let g = norm g in
    match Tbl.find_opt rb.cons g with
    | Some w -> w
    | None ->
      let w = rb_push rb g in
      Tbl.add rb.cons g w;
      w

  let emit_assert rb w =
    if not (Hashtbl.mem rb.zseen w) then begin
      Hashtbl.add rb.zseen w ();
      rb.zrev <- w :: rb.zrev
    end

  let rb_build rb : C.t =
    let gates = Array.sub rb.gates 0 rb.len in
    let muls = ref [] in
    Array.iteri
      (fun w g -> match g with C.Mul (x, y) -> muls := (w, x, y) :: !muls | _ -> ())
      gates;
    {
      C.num_inputs = rb.num_inputs;
      gates;
      assert_zero = Array.of_list (List.rev rb.zrev);
      mul_gates = Array.of_list (List.rev !muls);
    }

  let remap env = function
    | (C.Input _ | C.Const _) as g -> g
    | C.Add (x, y) -> C.Add (env.(x), env.(y))
    | C.Sub (x, y) -> C.Sub (env.(x), env.(y))
    | C.Scale (v, x) -> C.Scale (v, env.(x))
    | C.Add_const (v, x) -> C.Add_const (v, env.(x))
    | C.Mul (x, y) -> C.Mul (env.(x), env.(y))

  (* ------------------------------------------------------------------ *)
  (* Passes (each : C.t -> C.t)                                          *)
  (* ------------------------------------------------------------------ *)

  (** Hash-consing rebuild: structurally equal (commutative-normalized)
      gates collapse to one wire; repeated assert-zeros collapse to
      one. *)
  let cse (c : C.t) : C.t =
    let rb = rb_create ~num_inputs:c.C.num_inputs in
    let env = Array.make (C.num_wires c) (-1) in
    Array.iteri (fun w g -> env.(w) <- emit rb (remap env g)) c.C.gates;
    Array.iter (fun z -> emit_assert rb env.(z)) c.C.assert_zero;
    rb_build rb

  (** Fold [Known] wires to [Const] gates, simplify the identity cases
      (1·x, x+0, x−0), and drop assert-zeros on provably-zero wires. *)
  let constant_fold (c : C.t) : C.t =
    let consts = A.constants c in
    let rb = rb_create ~num_inputs:c.C.num_inputs in
    let env = Array.make (C.num_wires c) (-1) in
    let known_zero w =
      match consts.(w) with A.Known v -> F.is_zero v | A.Unknown -> false
    in
    Array.iteri
      (fun w g ->
        env.(w) <-
          (match (g, consts.(w)) with
          | C.Input _, _ -> emit rb g
          | _, A.Known v -> emit rb (C.Const v)
          | C.Scale (v, x), _ when F.is_one v -> env.(x)
          | C.Add_const (v, x), _ when F.is_zero v -> env.(x)
          | C.Add (x, y), _ when known_zero x -> env.(y)
          | C.Add (x, y), _ when known_zero y -> env.(x)
          | C.Sub (x, y), _ when known_zero y -> env.(x)
          | g, _ -> emit rb (remap env g)))
      c.C.gates;
    Array.iter
      (fun z -> if not (known_zero z) then emit_assert rb env.(z))
      c.C.assert_zero;
    rb_build rb

  (** Muls with a constant operand become [Scale] gates (free in the SNIP
      cost model); with two constant operands, a [Const]. *)
  let mul_canonicalize (c : C.t) : C.t =
    let consts = A.constants c in
    let rb = rb_create ~num_inputs:c.C.num_inputs in
    let env = Array.make (C.num_wires c) (-1) in
    Array.iteri
      (fun w g ->
        env.(w) <-
          (match g with
          | C.Mul (x, y) -> (
            match (consts.(x), consts.(y)) with
            | A.Known a, A.Known b -> emit rb (C.Const (F.mul a b))
            | A.Known a, A.Unknown -> emit rb (C.Scale (a, env.(y)))
            | A.Unknown, A.Known b -> emit rb (C.Scale (b, env.(x)))
            | A.Unknown, A.Unknown -> emit rb (C.Mul (env.(x), env.(y))))
          | g -> emit rb (remap env g)))
      c.C.gates;
    Array.iter (fun z -> emit_assert rb env.(z)) c.C.assert_zero;
    rb_build rb

  (** Rebuild the circuit from its affine forms: only genuine mul gates
      survive as [Mul]; every affine value that is actually read (a mul
      operand or an assert-zero) is rematerialized as one canonical
      scale/add chain per distinct linear combination. Collapses affine
      trees, shares equal combinations, deduplicates equal assert-zeros
      and drops unread affine intermediates. *)
  let flatten_affine (c : C.t) : C.t =
    let forms = A.affine_forms c in
    let rb = rb_create ~num_inputs:c.C.num_inputs in
    (* Input wires first, mirroring the builder's eager layout. *)
    let input_wire =
      Array.init c.C.num_inputs (fun k -> emit rb (C.Input k))
    in
    let mul_out = Array.make (C.num_wires c) (-1) in
    let atom_wire = function
      | A.A_input k -> input_wire.(k)
      | A.A_mul w ->
        (* Topological order guarantees the mul was emitted already. *)
        assert (mul_out.(w) >= 0);
        mul_out.(w)
    in
    (* Memoized materialization keyed by the canonical form itself: equal
       linear combinations become the same wire. The list is scanned
       linearly, but distinct forms are few (bounded by materialization
       sites, not wires). *)
    let memo : (A.affine * C.wire) list ref = ref [] in
    let materialize (f : A.affine) : C.wire =
      match List.find_opt (fun (g, _) -> A.affine_equal f g) !memo with
      | Some (_, w) -> w
      | None ->
        let w =
          match f.A.terms with
          | [] -> emit rb (C.Const f.A.const)
          | t0 :: rest ->
            let term_wire (a, coeff) =
              let aw = atom_wire a in
              if F.is_one coeff then aw else emit rb (C.Scale (coeff, aw))
            in
            let s =
              List.fold_left
                (fun acc t -> emit rb (C.Add (acc, term_wire t)))
                (term_wire t0) rest
            in
            if F.is_zero f.A.const then s
            else emit rb (C.Add_const (f.A.const, s))
        in
        memo := (f, w) :: !memo;
        w
    in
    Array.iteri
      (fun w g ->
        match (g, forms.(w)) with
        | C.Mul (x, y), { A.const = _; terms = [ (A.A_mul w', cf) ] }
          when w' = w && F.is_one cf ->
          (* A genuine mul: materialize its operands' forms, emit it. *)
          let mx = materialize forms.(x) in
          let my = materialize forms.(y) in
          mul_out.(w) <- emit rb (C.Mul (mx, my))
        | _ -> ())
      c.C.gates;
    Array.iter (fun z -> emit_assert rb (materialize forms.(z))) c.C.assert_zero;
    rb_build rb

  (** Remove every gate no assert-zero root depends on — including dead
      [Mul] gates and unread [Input] wires (the input vector layout is
      untouched). *)
  let dead_gate_elim (c : C.t) : C.t =
    let live = A.live_wires c in
    let rb = rb_create ~num_inputs:c.C.num_inputs in
    let env = Array.make (C.num_wires c) (-1) in
    Array.iteri
      (fun w g -> if live.(w) then env.(w) <- emit rb (remap env g))
      c.C.gates;
    Array.iter (fun z -> emit_assert rb env.(z)) c.C.assert_zero;
    rb_build rb

  (* ------------------------------------------------------------------ *)
  (* Pipeline                                                            *)
  (* ------------------------------------------------------------------ *)

  let equal_structure (a : C.t) (b : C.t) =
    a.C.num_inputs = b.C.num_inputs
    && Array.length a.C.gates = Array.length b.C.gates
    && Array.for_all2 Key.equal a.C.gates b.C.gates
    && a.C.assert_zero = b.C.assert_zero

  let passes =
    [
      ("constant-fold", constant_fold);
      ("mul-canonicalize", mul_canonicalize);
      ("flatten-affine", flatten_affine);
      ("cse", cse);
      ("dead-gate-elim", dead_gate_elim);
    ]

  let check_pass ~name before after =
    (match C.validate after with
    | Ok () -> ()
    | Error m ->
      invalid_arg
        (Printf.sprintf "Circuit optimizer pass %s produced an invalid \
                         circuit: %s" name m));
    if C.num_inputs after <> C.num_inputs before then
      invalid_arg
        (Printf.sprintf "Circuit optimizer pass %s changed the input arity"
           name)

  let max_rounds = 8

  (** Run the pass pipeline to a structural fixpoint (bounded rounds;
      in practice 2–3). The input circuit is validated first, and every
      pass's output is validated — a malformed circuit in or out is an
      [Invalid_argument], never a silently wrong predicate. *)
  let optimize (c : C.t) : C.t =
    C.validate_exn ~context:"Circuit optimizer" c;
    let round c =
      List.fold_left
        (fun acc (name, pass) ->
          let r = pass acc in
          check_pass ~name acc r;
          r)
        c passes
    in
    let rec go c n =
      if n >= max_rounds then c
      else
        let c' = round c in
        if equal_structure c c' then c else go c' (n + 1)
    in
    go c 0

  (* ------------------------------------------------------------------ *)
  (* Canonicalization cache                                              *)
  (* ------------------------------------------------------------------ *)

  (* Physical-identity memo so hot paths (the SNIP proving/verifying the
     same deployed circuit object per submission) canonicalize in O(1).
     Optimized outputs are entered as their own key, making
     [canonicalize] O(1)-idempotent. Mutex-guarded: SNIP verification
     runs inside worker domains. *)
  let cache : (C.t * C.t) list ref = ref []
  let cache_mutex = Mutex.create ()
  let cache_cap = 64

  let with_cache f =
    Mutex.lock cache_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest

  (** [optimize], memoized on the physical identity of [c]; safe to call
      from any domain. *)
  let canonicalize (c : C.t) : C.t =
    let hit =
      with_cache (fun () ->
          (* prio-lint: allow ct-compare *)
          List.find_opt (fun (k, _) -> k == c) !cache)
    in
    match hit with
    | Some (_, o) -> o
    | None ->
      let o = optimize c in
      with_cache (fun () ->
          let keep =
            (* prio-lint: allow ct-compare *)
            List.filter (fun (k, _) -> k != c && k != o) !cache
          in
          cache := take cache_cap ((c, o) :: (o, o) :: keep));
      o
end

(** Static analyses over Valid() circuits.

    Everything the optimizer ({!Opt}) and the reporting tools (gate
    census, budget lint, `prio_cli circuit`) need to know about a circuit
    is computed here, on the plain wire DAG, without rewriting anything:

    - use/def counts and backward liveness from the assert-zero roots,
    - a constant-propagation lattice (is a wire the same field element on
      every input?),
    - an affine-form abstraction mapping each wire to a sparse linear
      combination of {e atoms} — input wires and mul-gate outputs — which
      is exact because every non-[Mul] gate is affine in its operands.

    All passes are linear in the number of wires. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Circuit.Make (F)

  (* ------------------------------------------------------------------ *)
  (* Gate census                                                         *)
  (* ------------------------------------------------------------------ *)

  type census = {
    inputs : int;
    wires : int;
    muls : int;
    asserts : int;
  }

  let census (c : C.t) =
    {
      inputs = C.num_inputs c;
      wires = C.num_wires c;
      muls = C.num_mul_gates c;
      asserts = Array.length c.C.assert_zero;
    }

  (* ------------------------------------------------------------------ *)
  (* Use/def and liveness                                                *)
  (* ------------------------------------------------------------------ *)

  (** How many times each wire is read — by later gates or by an
      assert-zero. A wire with use count 0 contributes nothing to the
      predicate. *)
  let use_counts (c : C.t) : int array =
    let u = Array.make (C.num_wires c) 0 in
    let use x = u.(x) <- u.(x) + 1 in
    Array.iter
      (function
        | C.Input _ | C.Const _ -> ()
        | C.Add (x, y) | C.Sub (x, y) | C.Mul (x, y) ->
          use x;
          use y
        | C.Scale (_, x) | C.Add_const (_, x) -> use x)
      c.C.gates;
    Array.iter use c.C.assert_zero;
    u

  (** Backward liveness from the assert-zero roots: a wire is live iff
      some assert-zero wire depends on it. One reverse sweep suffices
      because gates are topological. *)
  let live_wires (c : C.t) : bool array =
    let live = Array.make (C.num_wires c) false in
    Array.iter (fun z -> live.(z) <- true) c.C.assert_zero;
    for w = C.num_wires c - 1 downto 0 do
      if live.(w) then
        match c.C.gates.(w) with
        | C.Input _ | C.Const _ -> ()
        | C.Add (x, y) | C.Sub (x, y) | C.Mul (x, y) ->
          live.(x) <- true;
          live.(y) <- true
        | C.Scale (_, x) | C.Add_const (_, x) -> live.(x) <- true
    done;
    live

  (* ------------------------------------------------------------------ *)
  (* Constant propagation                                                *)
  (* ------------------------------------------------------------------ *)

  (** Two-point lattice per wire: [Known v] means the wire evaluates to
      [v] on {e every} input vector. Inputs are [Unknown]; the transfer
      functions are the obvious ones plus the absorbing cases
      (0·x = 0). *)
  type const = Unknown | Known of F.t

  let constants (c : C.t) : const array =
    let k = Array.make (C.num_wires c) Unknown in
    Array.iteri
      (fun w g ->
        k.(w) <-
          (match g with
          | C.Input _ -> Unknown
          | C.Const v -> Known v
          | C.Add (x, y) -> (
            match (k.(x), k.(y)) with
            | Known a, Known b -> Known (F.add a b)
            | _ -> Unknown)
          | C.Sub (x, y) -> (
            match (k.(x), k.(y)) with
            | Known a, Known b -> Known (F.sub a b)
            | _ -> Unknown)
          | C.Scale (v, x) -> (
            if F.is_zero v then Known F.zero
            else match k.(x) with Known a -> Known (F.mul v a) | _ -> Unknown)
          | C.Add_const (v, x) -> (
            match k.(x) with Known a -> Known (F.add v a) | _ -> Unknown)
          | C.Mul (x, y) -> (
            match (k.(x), k.(y)) with
            | Known a, Known b -> Known (F.mul a b)
            | (Known a, _ | _, Known a) when F.is_zero a -> Known F.zero
            | _ -> Unknown)))
      c.C.gates;
    k

  (* ------------------------------------------------------------------ *)
  (* Affine forms                                                        *)
  (* ------------------------------------------------------------------ *)

  (** The atoms of the affine abstraction: circuit inputs and the outputs
      of genuine (non-constant-operand) mul gates, identified by the mul
      gate's wire index in the analysed circuit. *)
  type atom = A_input of int | A_mul of C.wire

  let atom_compare a b =
    match (a, b) with
    | A_input i, A_input j -> Stdlib.compare (i : int) j
    | A_input _, A_mul _ -> -1
    | A_mul _, A_input _ -> 1
    | A_mul i, A_mul j -> Stdlib.compare (i : int) j

  let atom_equal a b = atom_compare a b = 0

  (** const + Σ coeff·atom, terms sorted by atom with no zero
      coefficients — a canonical form, so structural equality of forms is
      semantic equality of the affine expressions. *)
  type affine = { const : F.t; terms : (atom * F.t) list }

  let affine_const v = { const = v; terms = [] }
  let affine_atom a = { const = F.zero; terms = [ (a, F.one) ] }
  let as_const f = match f.terms with [] -> Some f.const | _ -> None

  (* Merge two sorted term lists with a coefficient combiner, dropping
     cancelled terms. *)
  let rec merge_terms f xs ys =
    match (xs, ys) with
    | [], rest -> List.filter_map (fun (a, c) -> keep a (f F.zero c)) rest
    | rest, [] -> List.filter_map (fun (a, c) -> keep a (f c F.zero)) rest
    | (ax, cx) :: xs', (ay, cy) :: ys' -> (
      match atom_compare ax ay with
      | 0 -> (
        match keep ax (f cx cy) with
        | Some t -> t :: merge_terms f xs' ys'
        | None -> merge_terms f xs' ys')
      | n when n < 0 -> cons_opt (keep ax (f cx F.zero)) (merge_terms f xs' ys)
      | _ -> cons_opt (keep ay (f F.zero cy)) (merge_terms f xs ys'))

  and keep a c = if F.is_zero c then None else Some (a, c)
  and cons_opt o rest = match o with Some t -> t :: rest | None -> rest

  let affine_add x y =
    { const = F.add x.const y.const; terms = merge_terms F.add x.terms y.terms }

  let affine_sub x y =
    { const = F.sub x.const y.const; terms = merge_terms F.sub x.terms y.terms }

  let affine_scale v x =
    if F.is_zero v then affine_const F.zero
    else
      {
        const = F.mul v x.const;
        terms = List.map (fun (a, c) -> (a, F.mul v c)) x.terms;
      }

  let affine_add_const v x = { x with const = F.add v x.const }

  let affine_equal x y =
    F.equal x.const y.const
    && List.length x.terms = List.length y.terms
    && List.for_all2
         (fun (a, c) (a', c') -> atom_equal a a' && F.equal c c')
         x.terms y.terms

  (** The affine form of every wire, over inputs and mul outputs. A mul
      gate whose operands are both non-constant is opaque — its own
      output becomes an atom; a mul with a constant operand is itself
      affine and is flattened like the rest (this is what lets {!Opt}
      turn it into a [Scale]). *)
  let affine_forms (c : C.t) : affine array =
    let forms = Array.make (C.num_wires c) (affine_const F.zero) in
    Array.iteri
      (fun w g ->
        forms.(w) <-
          (match g with
          | C.Input k -> affine_atom (A_input k)
          | C.Const v -> affine_const v
          | C.Add (x, y) -> affine_add forms.(x) forms.(y)
          | C.Sub (x, y) -> affine_sub forms.(x) forms.(y)
          | C.Scale (v, x) -> affine_scale v forms.(x)
          | C.Add_const (v, x) -> affine_add_const v forms.(x)
          | C.Mul (x, y) -> (
            match (as_const forms.(x), as_const forms.(y)) with
            | Some a, Some b -> affine_const (F.mul a b)
            | Some a, None -> affine_scale a forms.(y)
            | None, Some b -> affine_scale b forms.(x)
            | None, None -> affine_atom (A_mul w))))
      c.C.gates;
    forms
end

(** Semantics-preserving optimization of Valid() circuits.

    Proof length, upload bytes and verification time all scale with the
    number of [Mul] gates in the SNIP cost model (paper, Appendix C), so
    the pass pipeline here — constant folding, mul canonicalization,
    affine flattening, CSE, dead-gate elimination — exists to shed mul
    gates and wires without changing the predicate: for every input
    vector, [valid (optimize c) ~inputs = valid c ~inputs]. [num_inputs]
    and the relative order of the surviving mul gates are preserved;
    {!Circuit.validate} runs on every pass's output. See docs/CIRCUITS.md
    for the pass-by-pass description. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module C : module type of Circuit.Make (F)

  (** {1 Individual passes}

      Exposed for the unit tests; each is semantics-preserving on its
      own. Normal callers use {!optimize}. *)

  val constant_fold : C.t -> C.t
  (** Fold provably-constant wires to [Const] gates; drop vacuous
      (provably-zero) assert-zeros, keep provably-nonzero ones. *)

  val mul_canonicalize : C.t -> C.t
  (** Muls with a constant operand become [Scale] gates; two constant
      operands, a [Const]. *)

  val flatten_affine : C.t -> C.t
  (** Rematerialize every read affine value from its canonical linear
      combination of inputs and mul outputs: collapses affine chains,
      shares equal combinations, dedups equal assert-zeros. *)

  val cse : C.t -> C.t
  (** Hash-cons structurally-equal gates (commutative-normalized [Add]
      and [Mul]) and repeated assert-zero wires. *)

  val dead_gate_elim : C.t -> C.t
  (** Drop every gate not backward-reachable from an assert-zero root. *)

  (** {1 Pipeline} *)

  val equal_structure : C.t -> C.t -> bool
  (** Same gates, assert-zeros and input arity (the fixpoint test). *)

  val optimize : C.t -> C.t
  (** All passes, iterated to a structural fixpoint (bounded rounds).
      @raise Invalid_argument if the input — or any pass's output — fails
      {!Circuit.validate}. *)

  val canonicalize : C.t -> C.t
  (** {!optimize}, memoized on the physical identity of the argument;
      optimized results canonicalize to themselves in O(1). Safe to call
      concurrently from worker domains. *)
end

(** Arithmetic circuits over a prime field (paper, Appendix C.1).

    A circuit is a wire-indexed DAG of gates. Affine gates (add, subtract,
    scale, add-constant) are free in the SNIP cost model; only [Mul] gates —
    multiplications of two non-constant wires — cost proof length and
    verification work, so the builder keeps a census of them in topological
    order.

    A validation predicate Valid(x) is a circuit together with a set of
    {e assert-zero} wires: the predicate holds iff every such wire evaluates
    to zero. The paper's "output wire = 1" convention is the special case of
    asserting the affine wire (out − 1); expressing predicates this way lets
    the servers check any number of constraints with one random linear
    combination (the circuit-AND optimization of Appendix I). *)

module Make (F : Prio_field.Field_intf.S) = struct
  type wire = int

  type gate =
    | Input of int  (** index into the client's encoded vector *)
    | Const of F.t
    | Add of wire * wire
    | Sub of wire * wire
    | Scale of F.t * wire
    | Add_const of F.t * wire
    | Mul of wire * wire

  type t = {
    num_inputs : int;
    gates : gate array;
    assert_zero : wire array;
    mul_gates : (wire * wire * wire) array;
        (** (output wire, left input wire, right input wire), topological. *)
  }

  let num_wires c = Array.length c.gates
  let num_mul_gates c = Array.length c.mul_gates
  let num_inputs c = c.num_inputs

  (* ------------------------------------------------------------------ *)
  (* Structural validation                                               *)
  (* ------------------------------------------------------------------ *)

  exception Malformed of string

  (** Structural well-formedness: every gate operand refers to a strictly
      earlier wire (topological order), input indices are in range,
      assert-zero wires exist, and the mul census lists exactly the [Mul]
      gates of the gate array, in order. Everything downstream — the SNIP
      prover's grid layout, the servers' share walk, the optimizer's
      rewrites — assumes these invariants, so hand-assembled or rewritten
      circuits are checked before use. *)
  let validate (c : t) : (unit, string) result =
    let n = Array.length c.gates in
    let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt in
    try
      if c.num_inputs < 0 then fail "num_inputs is negative (%d)" c.num_inputs;
      let operand w x =
        if x < 0 || x >= w then
          fail
            "wire %d: operand wire %d is not strictly earlier (gates must be \
             in topological order)"
            w x
      in
      Array.iteri
        (fun w g ->
          match g with
          | Input k ->
            if k < 0 || k >= c.num_inputs then
              fail "wire %d: input index %d out of range [0, %d)" w k
                c.num_inputs
          | Const _ -> ()
          | Add (x, y) | Sub (x, y) | Mul (x, y) ->
            operand w x;
            operand w y
          | Scale (_, x) | Add_const (_, x) -> operand w x)
        c.gates;
      Array.iteri
        (fun j z ->
          if z < 0 || z >= n then
            fail "assert-zero %d: wire %d does not exist (%d wires)" j z n)
        c.assert_zero;
      let muls = ref [] in
      Array.iteri
        (fun w g -> match g with Mul (x, y) -> muls := (w, x, y) :: !muls | _ -> ())
        c.gates;
      let muls = Array.of_list (List.rev !muls) in
      if Array.length muls <> Array.length c.mul_gates then
        fail "mul census has %d entries but the gate array has %d mul gates"
          (Array.length c.mul_gates) (Array.length muls);
      Array.iteri
        (fun t (w, x, y) ->
          let w', x', y' = c.mul_gates.(t) in
          if w <> w' || x <> x' || y <> y' then
            fail
              "mul census entry %d is (%d, %d, %d) but the %d-th mul gate of \
               the array is (%d, %d, %d)"
              t w' x' y' t w x y)
        muls;
      Ok ()
    with Malformed m -> Error m

  (** [validate] as an exception for construction-time fail-fast paths. *)
  let validate_exn ?(context = "Circuit.validate") c =
    match validate c with
    | Ok () -> ()
    | Error m -> invalid_arg (context ^ ": " ^ m)

  (* ------------------------------------------------------------------ *)
  (* Builder                                                             *)
  (* ------------------------------------------------------------------ *)

  module Builder = struct
    type b = {
      num_inputs : int;
      mutable gates : gate array;
      mutable len : int;
      mutable zeros : wire list;
      mutable input_wires : wire array; (* one wire per input, created eagerly *)
    }

    let push b g =
      if b.len = Array.length b.gates then begin
        let bigger = Array.make (Stdlib.max 16 (2 * b.len)) (Const F.zero) in
        Array.blit b.gates 0 bigger 0 b.len;
        b.gates <- bigger
      end;
      b.gates.(b.len) <- g;
      b.len <- b.len + 1;
      b.len - 1

    let create ~num_inputs =
      let b =
        { num_inputs; gates = [||]; len = 0; zeros = []; input_wires = [||] }
      in
      b.input_wires <- Array.init num_inputs (fun i -> push b (Input i));
      b

    let input b i =
      if i < 0 || i >= b.num_inputs then invalid_arg "Circuit.Builder.input: out of range";
      b.input_wires.(i)

    let const b c = push b (Const c)
    let add b x y = push b (Add (x, y))
    let sub b x y = push b (Sub (x, y))
    let mul b x y = push b (Mul (x, y))
    let scale b c x = push b (Scale (c, x))
    let add_const b c x = push b (Add_const (c, x))
    let assert_zero b w = b.zeros <- w :: b.zeros

    (** Σ of a list of wires (balanced; zero wires allowed). *)
    let sum b = function
      | [] -> const b F.zero
      | w :: ws -> List.fold_left (fun acc x -> add b acc x) w ws

    (** Σ c_i · w_i. *)
    let linear_combination b terms =
      sum b (List.map (fun (c, w) -> scale b c w) terms)

    (** Assert w ∈ {0,1} via one mul gate: w·(w−1) = 0. *)
    let assert_bit b w =
      let wm1 = add_const b (F.neg F.one) w in
      assert_zero b (mul b w wm1)

    (** Assert x = Σ 2^i · bit_i (affine — no mul gates). *)
    let assert_binary_decomposition b ~value ~bits =
      let terms =
        List.mapi (fun i w -> (F.pow F.two i, w)) bits
      in
      let recomposed = linear_combination b terms in
      assert_zero b (sub b value recomposed)

    (** Assert y = x² via one mul gate. *)
    let assert_square b ~x ~y = assert_zero b (sub b y (mul b x x))

    (** Assert y = x·x' via one mul gate. *)
    let assert_product b ~x ~x' ~y = assert_zero b (sub b y (mul b x x'))

    (** Assert the wires are a one-hot vector: each a bit, summing to 1. *)
    let assert_one_hot b ws =
      List.iter (assert_bit b) ws;
      let s = sum b ws in
      assert_zero b (add_const b (F.neg F.one) s)

    let build b =
      let gates = Array.sub b.gates 0 b.len in
      let mul_gates =
        let acc = ref [] in
        Array.iteri
          (fun w g -> match g with Mul (x, y) -> acc := (w, x, y) :: !acc | _ -> ())
          gates;
        Array.of_list (List.rev !acc)
      in
      let c =
        {
          num_inputs = b.num_inputs;
          gates;
          assert_zero = Array.of_list (List.rev b.zeros);
          mul_gates;
        }
      in
      validate_exn ~context:"Circuit.Builder.build" c;
      c
  end

  (* ------------------------------------------------------------------ *)
  (* Composition                                                         *)
  (* ------------------------------------------------------------------ *)

  (** Re-index the circuit's inputs into a wider input vector. [mapping]
      must be injective into [0, num_inputs). Used to interleave the input
      spaces of composed validation predicates. *)
  let remap_inputs (c : t) ~num_inputs ~(mapping : int -> int) : t =
    let gates =
      Array.map
        (function
          | Input k ->
            let k' = mapping k in
            if k' < 0 || k' >= num_inputs then
              invalid_arg "Circuit.remap_inputs: mapping out of range";
            Input k'
          | g -> g)
        c.gates
    in
    { c with num_inputs; gates }

  (** Run two predicates side by side over a shared input vector: the
      result asserts everything both circuits assert. Both inputs must
      already agree on [num_inputs] (use {!remap_inputs} first). Mul gates
      of [a] precede those of [b] in the combined census. *)
  let union (a : t) (b : t) : t =
    if a.num_inputs <> b.num_inputs then
      invalid_arg "Circuit.union: input arities differ";
    let offset = num_wires a in
    let shift w = w + offset in
    let shifted_gates =
      Array.map
        (function
          | Input k -> Input k
          | Const v -> Const v
          | Add (x, y) -> Add (shift x, shift y)
          | Sub (x, y) -> Sub (shift x, shift y)
          | Scale (v, x) -> Scale (v, shift x)
          | Add_const (v, x) -> Add_const (v, shift x)
          | Mul (x, y) -> Mul (shift x, shift y))
        b.gates
    in
    {
      num_inputs = a.num_inputs;
      gates = Array.append a.gates shifted_gates;
      assert_zero = Array.append a.assert_zero (Array.map shift b.assert_zero);
      mul_gates =
        Array.append a.mul_gates
          (Array.map (fun (w, x, y) -> (shift w, shift x, shift y)) b.mul_gates);
    }

  (* ------------------------------------------------------------------ *)
  (* Evaluation                                                          *)
  (* ------------------------------------------------------------------ *)

  (** Plaintext evaluation: all wire values. *)
  let eval_wires (c : t) ~(inputs : F.t array) : F.t array =
    if Array.length inputs <> c.num_inputs then
      invalid_arg "Circuit.eval_wires: wrong input arity";
    let w = Array.make (num_wires c) F.zero in
    Array.iteri
      (fun i g ->
        w.(i) <-
          (match g with
          | Input k -> inputs.(k)
          | Const v -> v
          | Add (x, y) -> F.add w.(x) w.(y)
          | Sub (x, y) -> F.sub w.(x) w.(y)
          | Scale (v, x) -> F.mul v w.(x)
          | Add_const (v, x) -> F.add v w.(x)
          | Mul (x, y) -> F.mul w.(x) w.(y)))
      c.gates;
    w

  (** Does the predicate hold on these inputs? *)
  let valid (c : t) ~(inputs : F.t array) : bool =
    let w = eval_wires c ~inputs in
    Array.for_all (fun z -> F.is_zero w.(z)) c.assert_zero

  (** Plaintext evaluation that also returns, for each mul gate t (in
      topological order), the pair (u_t, v_t) of its input wire values.
      This is what the SNIP prover needs. *)
  let eval_mul_pairs (c : t) ~(inputs : F.t array) : F.t array * (F.t * F.t) array
      =
    let w = eval_wires c ~inputs in
    let pairs = Array.map (fun (_, x, y) -> (w.(x), w.(y))) c.mul_gates in
    (w, pairs)

  (** Share evaluation (the SNIP verifier's walk, §4.2 step 2).

      Each server holds a share of the input vector and shares
      [mul_outputs] of every mul gate's output wire (supplied by the client
      through the polynomial h). Affine gates act on shares directly; a
      public constant c is represented by the share c·[const_share_of_one]
      (1/s for each of s servers, so constants sum correctly across the
      cluster). Mul gates do not multiply — they read the client-provided
      output share — which is exactly why verification needs no
      communication until the final identity test.

      Returns all wire-value shares plus, for each mul gate, the shares of
      its left and right inputs (the server's shares of f(t) and g(t)). *)
  let eval_shares (c : t) ~(const_share_of_one : F.t) ~(inputs : F.t array)
      ~(mul_outputs : F.t array) :
      F.t array * (F.t * F.t) array =
    if Array.length inputs <> c.num_inputs then
      invalid_arg "Circuit.eval_shares: wrong input arity";
    if Array.length mul_outputs <> num_mul_gates c then
      invalid_arg "Circuit.eval_shares: wrong mul output count";
    let w = Array.make (num_wires c) F.zero in
    let mul_idx = ref 0 in
    let pairs = Array.make (num_mul_gates c) (F.zero, F.zero) in
    Array.iteri
      (fun i g ->
        w.(i) <-
          (match g with
          | Input k -> inputs.(k)
          | Const v -> F.mul v const_share_of_one
          | Add (x, y) -> F.add w.(x) w.(y)
          | Sub (x, y) -> F.sub w.(x) w.(y)
          | Scale (v, x) -> F.mul v w.(x)
          | Add_const (v, x) -> F.add (F.mul v const_share_of_one) w.(x)
          | Mul (x, y) ->
            let t = !mul_idx in
            incr mul_idx;
            pairs.(t) <- (w.(x), w.(y));
            mul_outputs.(t)))
      c.gates;
    (w, pairs)

  (** Shares of the assert-zero wires, in declaration order. *)
  let assert_zero_values (c : t) (wires : F.t array) : F.t array =
    Array.map (fun z -> wires.(z)) c.assert_zero
end

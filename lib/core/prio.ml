(** Prio: private, robust, and scalable computation of aggregate statistics.

    This is the top-level facade over the whole system. The one-call API:

    {[
      module P = Prio.Make (Prio.F87)
      let rng = Prio.Rng.of_string_seed "demo"
      let afe = P.Afe_sum.sum ~bits:8
      let d = P.deploy ~rng ~num_servers:5 afe
      let total, stats = P.collect d [3; 1; 4; 1; 5]
    ]}

    runs the full pipeline of the paper: each client AFE-encodes its value,
    splits it into PRG-compressed additive shares, attaches a SNIP proving
    the encoding well-formed, and seals one packet per server; the servers
    verify every submission with four field elements of gossip, accumulate
    the valid ones, and publish accumulators whose sum decodes to the
    aggregate — revealing nothing else about any client's value as long as
    one server is honest. *)

(* Re-exports: the building blocks, importable from this one library. *)
module Bigint = Prio_bigint.Bigint
module Rng = Prio_crypto.Rng
module Chacha20 = Prio_crypto.Chacha20
module Sha256 = Prio_crypto.Sha256
module Hmac = Prio_crypto.Hmac
module Authbox = Prio_crypto.Authbox

module Field_intf = Prio_field.Field_intf
module Babybear = Prio_field.Babybear
module F87 = Prio_field.F87
module F265 = Prio_field.F265

module Obs_clock = Prio_obs.Clock
module Obs_metrics = Prio_obs.Metrics
module Obs_trace = Prio_obs.Trace
module Obs_report = Prio_obs.Report

module Dp = Prio_proto.Dp
module Registry = Prio_proto.Registry
module Retry = Prio_proto.Retry
module Faults = Prio_proto.Faults
module Transport = Prio_proto.Net
module Snapshot = Prio_proto.Checkpoint
module Pool = Prio_proto.Pool
module Schnorr = Prio_nizk.Schnorr
module Nizk_group = Prio_nizk.Group
module Nizk_pedersen = Prio_nizk.Pedersen
module Nizk_bitproof = Prio_nizk.Bitproof
module Snark_estimate = Prio_nizk.Snark_estimate
module Nizk_pipeline = Prio_proto.Pipeline.Nizk_pipeline

module Make (F : Field_intf.S) = struct
  module Field = F
  module Poly = Prio_poly.Poly.Make (F)
  module Ntt = Prio_poly.Ntt.Make (F)
  module Circuit = Prio_circuit.Circuit.Make (F)
  module Circuit_analysis = Prio_circuit.Analysis.Make (F)
  module Circuit_opt = Prio_circuit.Opt.Make (F)
  module Share = Prio_share.Share.Make (F)
  module Dpf = Prio_share.Dpf.Make (F)
  module Snip = Prio_snip.Snip.Make (F)
  module Snip_reference = Prio_snip.Reference.Make (F)
  module Mpc = Prio_snip.Mpc.Make (F)
  module Afe = Prio_afe.Afe.Make (F)
  module Afe_sum = Prio_afe.Sum.Make (F)
  module Afe_stats = Prio_afe.Stats.Make (F)
  module Afe_boolean = Prio_afe.Boolean.Make (F)
  module Afe_minmax = Prio_afe.Minmax.Make (F)
  module Afe_histogram = Prio_afe.Histogram.Make (F)
  module Afe_popular = Prio_afe.Popular.Make (F)
  module Afe_countmin = Prio_afe.Countmin.Make (F)
  module Afe_regression = Prio_afe.Regression.Make (F)
  module Afe_product = Prio_afe.Product.Make (F)
  module Afe_fixed_point = Prio_afe.Fixed_point.Make (F)
  module Afe_zoo = Prio_afe.Zoo.Make (F)
  module Wire = Prio_proto.Wire.Make (F)
  module Client = Prio_proto.Client.Make (F)
  module Server = Prio_proto.Server.Make (F)
  module Cluster = Prio_proto.Cluster.Make (F)
  module Checkpoint = Prio_proto.Checkpoint.Make (F)
  module Pipeline = Prio_proto.Pipeline.Make (F)
  module Threshold = Prio_proto.Threshold.Make (F)
  module Net = Prio_proto.Net.Make (F)

  type ('input, 'output) deployment = {
    afe : ('input, 'output) Afe.t;
    cluster : Cluster.t;
    rng : Rng.t;
    mutable next_client_id : int;
  }

  (** Stand up a deployment for an AFE. [mode] defaults to full Prio
      (SNIP-verified); [num_servers] to the paper's five. *)
  let deploy ?(mode = Cluster.Robust_snip) ?(num_servers = 5) ~rng afe =
    if not (Afe.well_formed afe) then invalid_arg "Prio.deploy: malformed AFE";
    let master = Rng.bytes rng 32 in
    let cluster =
      Cluster.create ~rng ~mode ~circuit:afe.Afe.circuit
        ~trunc_len:afe.Afe.trunc_len ~num_servers ~master ()
    in
    { afe; cluster; rng; next_client_id = 0 }

  (** Submit one client's private value; returns whether the servers
      accepted it. *)
  let submit d (value : 'input) : bool =
    let client_id = d.next_client_id in
    d.next_client_id <- d.next_client_id + 1;
    let encoding = d.afe.Afe.encode ~rng:d.rng value in
    let pk =
      Client.submit ~rng:d.rng
        ~mode:(Cluster.client_mode d.cluster)
        ~num_servers:d.cluster.Cluster.s ~client_id
        ~master:d.cluster.Cluster.master encoding
    in
    Cluster.submit d.cluster ~client_id pk

  type stats = {
    accepted : int;
    rejected : int;
    server_bytes : int;  (** total server-to-server traffic *)
  }

  (** Publish and decode the aggregate. [dp_alpha] adds distributed
      differential-privacy noise before publication (§7). *)
  let publish ?dp_alpha d : 'output * stats =
    let sigma = Cluster.publish ?dp_alpha d.cluster in
    let accepted = d.cluster.Cluster.accepted in
    ( d.afe.Afe.decode ~n:accepted sigma,
      {
        accepted;
        rejected = d.cluster.Cluster.rejected;
        server_bytes = Cluster.total_server_bytes d.cluster;
      } )

  (** One-call collection: submit every value, publish, decode. *)
  let collect ?dp_alpha d (values : 'input list) : 'output * stats =
    List.iter (fun v -> ignore (submit d v)) values;
    publish ?dp_alpha d
end

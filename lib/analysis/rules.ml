(* The lint rules. Each AST rule walks a Parsetree with [Ast_iterator] and
   returns (location, message) findings; where a rule runs and how severe a
   finding is lives in [Policy], and the security rationale for each rule
   is documented in docs/ANALYSIS.md.

   All rules are purely syntactic (Parsetree, no typing): where the type
   would be needed to decide (e.g. [=] on ints is compiled to an immediate
   comparison and is fine), the rule uses a conservative syntactic proxy
   (a literal operand forces the immediate type) and anything else must be
   rewritten against a monomorphic equality or carry an inline waiver. *)

open Parsetree

let ct_compare = "ct-compare"
let no_ambient_random = "no-ambient-random"
let no_ambient_clock = "no-ambient-clock"
let error_discipline = "error-discipline"
let no_debug_io = "no-debug-io"
let no_partial_stdlib = "no-partial-stdlib"
let mli_coverage = "mli-coverage"
let parse_error = "parse-error"

(* Cross-file rules: run over the whole-repo call graph ([Callgraph]),
   not per file. Their checkers live in [Concurrency] and [Taint]; the
   ids are declared here so suppressions, the baseline, and [Policy]
   treat them like any other rule. *)
let domain_unsafe_state = "domain-unsafe-state"
let secret_flow = "secret-flow"

(* Non-AST rules: the gate-budget ledger diff in [Budget] (measured over
   the AFE zoo by the lint binary) and the metric-name ledger diff in
   [Metricreg] (collected over the whole tree by the lint binary). *)
let circuit_budget = "circuit-budget"
let metric_registry = "metric-registry"

type finding = { loc : Location.t; message : string }

let lid_name lid = String.concat "." (Longident.flatten lid)

(* Strip a leading Stdlib. so Stdlib.compare and compare are one case. *)
let path_of lid =
  match Longident.flatten lid with
  | "Stdlib" :: rest -> rest
  | l -> l

(* Run [f] with a fresh findings buffer; [f] receives an [add] function. *)
let collect f =
  let acc = ref [] in
  f (fun loc message -> acc := { loc; message } :: !acc);
  List.rev !acc

let iter_structure it str = it.Ast_iterator.structure it str

(* --- ct-compare ------------------------------------------------------- *)

let is_poly_eq_op = function "=" | "<>" | "==" | "!=" -> true | _ -> false

(* A literal operand pins the comparison to an immediate type (int, char,
   bool), which the compiler specializes to a single constant-time machine
   comparison — the pattern [if n = 0 then ...] stays legal. *)
let rec is_immediate_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false" | "()"); _ }, None)
    -> true
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("~-" | "~+"); _ }; _ },
        [ (_, arg) ] ) ->
    is_immediate_literal arg
  | _ -> false

let banned_comparison_ident lid =
  match path_of lid with
  | [ op ] when is_poly_eq_op op ->
    Some
      (Printf.sprintf
         "polymorphic comparison (%s) on non-literal operands: use a \
          monomorphic or constant-time equality (F.equal, Int.equal, \
          Hmac.verify)"
         op)
  | [ "compare" ] ->
    Some
      "polymorphic compare is variable-time: use Int.compare or a \
       field-specific comparison"
  | [ m; "compare" ] when m <> "Int" && m <> "Char" ->
    Some
      (Printf.sprintf
         "variable-time comparison %s.compare: secret-dependent data must \
          use a constant-time or field-specific equality"
         m)
  | [ (("String" | "Bytes") as m); "equal" ] ->
    Some
      (Printf.sprintf
         "%s.equal short-circuits on the first mismatch: use a \
          constant-time comparison for secret-dependent data"
         m)
  | _ -> None

let run_ct_compare str =
  collect (fun add ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              match e.pexp_desc with
              | Pexp_apply
                  ( { pexp_desc = Pexp_ident { txt = fn; _ }; _ },
                    ([ (_, a); (_, b) ] as args) )
                when (match path_of fn with
                     | [ op ] -> is_poly_eq_op op
                     | _ -> false)
                     && (is_immediate_literal a || is_immediate_literal b) ->
                (* Comparison against a literal: skip the operator ident,
                   still walk the operands. *)
                List.iter (fun (_, arg) -> it.Ast_iterator.expr it arg) args
              | Pexp_ident { txt; loc } -> (
                match banned_comparison_ident txt with
                | Some msg -> add loc msg
                | None -> ())
              | _ -> Ast_iterator.default_iterator.expr it e);
        }
      in
      iter_structure it str)

(* --- no-ambient-random ------------------------------------------------ *)

let ambient_ident lid =
  match path_of lid with
  | "Random" :: _ :: _ ->
    Some
      (Printf.sprintf
         "ambient randomness %s: every protocol execution must be a pure \
          function of its Rng seed (thread a seeded Prio_crypto.Rng.t)"
         (lid_name lid))
  | _ -> None

let run_no_ambient_random str =
  collect (fun add ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } -> (
                match ambient_ident txt with
                | Some msg -> add loc msg
                | None -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      iter_structure it str)

(* --- no-ambient-clock ------------------------------------------------- *)

let ambient_clock_ident lid =
  match path_of lid with
  | [ "Unix"; ("time" | "gettimeofday") ] | [ "Sys"; "time" ] ->
    Some
      (Printf.sprintf
         "ambient clock %s: read time through the Obs.Clock or Retry.now \
          seams (or take an instant as a parameter) so runs replay \
          deterministically"
         (lid_name lid))
  | _ -> None

let run_no_ambient_clock str =
  collect (fun add ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } -> (
                match ambient_clock_ident txt with
                | Some msg -> add loc msg
                | None -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      iter_structure it str)

(* --- error-discipline ------------------------------------------------- *)

(* Exceptions declared in this compilation unit are legitimate local
   control flow as long as they are caught before the public boundary —
   the linter trusts the declaration site, the reviewer checks the catch.
   [Exit] is the stdlib's designated local-escape exception, and
   [Invalid_argument]/[invalid_arg] is the sanctioned contract-violation
   escape hatch (a caller bug, not a protocol outcome). *)
let local_exceptions str =
  let names = ref [ "Exit"; "Invalid_argument"; "Assert_failure" ] in
  let add_ext (ec : extension_constructor) = names := ec.pext_name.txt :: !names in
  let it =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_exception te -> add_ext te.ptyexn_constructor
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_letexception (ec, _) -> add_ext ec
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  iter_structure it str;
  !names

let run_error_discipline str =
  let locals = local_exceptions str in
  collect (fun add ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } when path_of txt = [ "failwith" ] ->
                add loc
                  "failwith escapes the protocol boundary as Failure: \
                   return a structured protocol_error instead"
              | Pexp_apply
                  ( { pexp_desc = Pexp_ident { txt = fn; _ }; _ },
                    (_, { pexp_desc = Pexp_construct ({ txt = exn; loc }, _); _ })
                    :: _ )
                when match path_of fn with
                     | [ ("raise" | "raise_notrace") ] -> true
                     | _ -> false ->
                let name = Longident.last exn in
                if not (List.mem name locals) then
                  add loc
                    (Printf.sprintf
                       "raising %s across the protocol boundary: return a \
                        structured protocol_error (locally-declared \
                        exceptions caught before the public API are fine)"
                       (lid_name exn))
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      iter_structure it str)

(* --- no-debug-io ------------------------------------------------------ *)

let debug_io_ident lid =
  match path_of lid with
  | [ ( "print_string" | "print_endline" | "print_newline" | "print_int"
      | "print_char" | "print_float" | "print_bytes" | "prerr_string"
      | "prerr_endline" | "prerr_newline" | "prerr_int" | "prerr_char"
      | "prerr_float" | "prerr_bytes" ) ]
  | [ ("Printf" | "Format"); ("printf" | "eprintf") ] ->
    Some
      (Printf.sprintf
         "debug I/O %s in library code: return the data, take a \
          Format.formatter, or log at the binary layer"
         (lid_name lid))
  | _ -> None

let run_no_debug_io str =
  collect (fun add ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } -> (
                match debug_io_ident txt with
                | Some msg -> add loc msg
                | None -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      iter_structure it str)

(* --- no-partial-stdlib ------------------------------------------------ *)

let partial_ident lid =
  match path_of lid with
  | [ "List"; (("hd" | "nth") as f) ] ->
    Some
      (Printf.sprintf
         "List.%s raises on short lists: match explicitly or restructure" f)
  | [ "Option"; "get" ] ->
    Some "Option.get raises on None: match explicitly on the option"
  | [ "Obj"; "magic" ] -> Some "Obj.magic defeats the type system entirely"
  | _ -> None

let run_no_partial_stdlib str =
  collect (fun add ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } -> (
                match partial_ident txt with
                | Some msg -> add loc msg
                | None -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      iter_structure it str)

(* --- mli-coverage ----------------------------------------------------- *)

(* Pure function over the file set so it is trivially testable: every .ml
   is expected to have a sibling .mli. Which files the expectation applies
   to (lib/ only, lib/core exempt) is Policy's decision. *)
let run_mli_coverage files =
  let set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace set f ()) files;
  List.filter_map
    (fun f ->
      if Filename.check_suffix f ".ml" && not (Hashtbl.mem set (f ^ "i")) then
        Some
          ( f,
            "library module has no .mli: every exported value must be \
             declared (and documented) in an interface" )
      else None)
    files

let ast_rule = function
  | r when r = ct_compare -> Some run_ct_compare
  | r when r = no_ambient_random -> Some run_no_ambient_random
  | r when r = no_ambient_clock -> Some run_no_ambient_clock
  | r when r = error_discipline -> Some run_error_discipline
  | r when r = no_debug_io -> Some run_no_debug_io
  | r when r = no_partial_stdlib -> Some run_no_partial_stdlib
  | _ -> None

let all_ast_rules =
  [ ct_compare; no_ambient_random; no_ambient_clock; error_discipline;
    no_debug_io; no_partial_stdlib ]

(* Orchestration: walk the tree, parse every .ml/.mli with the compiler's
   own parser, run the per-path rule set, and filter findings through
   inline suppressions and the checked-in baseline. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let parse_diag ~path exn =
  let mk line col msg =
    Diagnostic.make ~file:path ~line ~col ~rule:Rules.parse_error msg
  in
  match exn with
  | Syntaxerr.Error err ->
    let loc = Syntaxerr.location_of_error err in
    let p = loc.Location.loc_start in
    mk p.pos_lnum (p.pos_cnum - p.pos_bol) "syntax error"
  | Lexer.Error (_, loc) ->
    let p = loc.Location.loc_start in
    mk p.pos_lnum (p.pos_cnum - p.pos_bol) "lexer error"
  | e -> mk 1 0 (Printf.sprintf "cannot parse: %s" (Printexc.to_string e))

let with_lexbuf ~path src f =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  (* Keep the compiler's global error reporting out of the picture: we
     render diagnostics ourselves. *)
  try Ok (f lexbuf) with e -> Error (parse_diag ~path e)

let parse_implementation ~path src =
  with_lexbuf ~path src Parse.implementation

let parse_interface ~path src = with_lexbuf ~path src Parse.interface

(* Lint one .ml file's contents under an explicit rule set (severity:
   Error). This is the corpus-test entry point: path only labels the
   diagnostics, nothing is read from disk. *)
let lint_source ~rules ~path src =
  let sup = Suppress.of_source src in
  match parse_implementation ~path src with
  | Error d -> [ d ]
  | Ok str ->
    List.concat_map
      (fun rule ->
        match Rules.ast_rule rule with
        | None -> []
        | Some run ->
          List.filter_map
            (fun { Rules.loc; message } ->
              let d = Diagnostic.of_location ~rule ~message loc in
              if Suppress.active sup ~line:d.Diagnostic.line ~rule then None
              else Some d)
            (run str))
      rules
    |> List.sort Diagnostic.order

(* --- cross-file passes ------------------------------------------------ *)

let cross_checkers =
  [
    (Rules.domain_unsafe_state, Concurrency.run);
    (Rules.secret_flow, Taint.run);
  ]

(* Build the call graph from every .ml that parses and run the cross-file
   checkers. [severity_for] decides per finding file whether (and how) a
   finding is kept; suppressions are per owning file. *)
let cross_findings ~severity_for sources =
  let parsed =
    List.filter_map
      (fun (path, src) ->
        match parse_implementation ~path src with
        | Ok str -> Some (path, src, str)
        | Error _ -> None)
      sources
  in
  let cg = Callgraph.build parsed in
  let sups = Hashtbl.create 16 in
  List.iter
    (fun (path, src, _) -> Hashtbl.replace sups path (Suppress.of_source src))
    parsed;
  List.concat_map
    (fun (rule, run) ->
      List.filter_map
        (fun { Rules.loc; message } ->
          let d = Diagnostic.of_location ~rule ~message loc in
          match severity_for d.Diagnostic.file rule with
          | None -> None
          | Some severity ->
            let d = { d with Diagnostic.severity } in
            let suppressed =
              match Hashtbl.find_opt sups d.Diagnostic.file with
              | Some sup -> Suppress.active sup ~line:d.Diagnostic.line ~rule
              | None -> false
            in
            if suppressed then None else Some d)
        (run cg))
    cross_checkers

(* Corpus-test entry point for the cross-file rules: lint a set of
   in-memory .ml files as one program. Per-file AST rules in [rules] run
   on each file; cross rules in [rules] run once over the set. Everything
   is Error severity, like [lint_source]. *)
let lint_sources ~rules ~files =
  let ast_rules = List.filter (fun r -> Rules.ast_rule r <> None) rules in
  let per_file =
    List.concat_map
      (fun (path, src) -> lint_source ~rules:ast_rules ~path src)
      files
  in
  let severity_for _file rule =
    if List.mem rule rules then Some Diagnostic.Error else None
  in
  per_file @ cross_findings ~severity_for files |> List.sort Diagnostic.order

(* --- tree walk -------------------------------------------------------- *)

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

(* Skip _build, .git, editor state, ... *)
let skip_dir name =
  String.length name = 0 || name.[0] = '_' || name.[0] = '.'

let source_files ~root dirs =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.is_directory abs then
      Array.iter
        (fun name ->
          let rel' = rel ^ "/" ^ name in
          let abs' = Filename.concat root rel' in
          if Sys.is_directory abs' then (
            if not (skip_dir name) then walk rel')
          else if is_source name then acc := rel' :: !acc)
        (Sys.readdir abs)
  in
  List.iter (fun d -> if Sys.file_exists (Filename.concat root d) then walk d) dirs;
  List.sort String.compare !acc

let apply_severity path d =
  match Policy.severity_of path d.Diagnostic.rule with
  | Some severity -> Some { d with Diagnostic.severity }
  | None ->
    (* parse-error has no policy entry: always an error. *)
    if d.Diagnostic.rule = Rules.parse_error then Some d else None

(* Lint the tree rooted at [root], over the given top-level [dirs].
   Diagnostic paths come out relative to [root]. *)
let lint_tree ?(baseline = Baseline.empty) ~root ~dirs () =
  let files = source_files ~root dirs in
  let srcs =
    List.map (fun p -> (p, read_file (Filename.concat root p))) files
  in
  let per_file =
    List.concat_map
      (fun (path, src) ->
        if Filename.check_suffix path ".mli" then
          match parse_interface ~path src with
          | Ok _ -> []
          | Error d -> [ d ]
        else
          let rules = Policy.ast_rules_for path in
          List.filter_map (apply_severity path)
            (lint_source ~rules ~path src))
      srcs
  in
  let cross =
    cross_findings ~severity_for:Policy.severity_of
      (List.filter (fun (p, _) -> Filename.check_suffix p ".ml") srcs)
  in
  let mli =
    List.filter_map
      (fun (file, message) ->
        match Policy.severity_of file Rules.mli_coverage with
        | Some severity ->
          Some
            (Diagnostic.make ~severity ~file ~line:1 ~col:0
               ~rule:Rules.mli_coverage message)
        | None -> None)
      (Rules.run_mli_coverage files)
  in
  List.filter
    (fun d ->
      not
        (Baseline.waived baseline ~file:d.Diagnostic.file
           ~rule:d.Diagnostic.rule))
    (per_file @ mli @ cross)
  |> List.sort Diagnostic.order

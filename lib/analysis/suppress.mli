(** Inline diagnostic suppressions.

    A comment [(* prio-lint: allow <rule-id> [<rule-id> ...] *)] waives the
    named rules on its own line and on the following line, so it can either
    trail the offending expression or sit on the line above it. *)

type t

(** Scan raw file contents for suppression markers. *)
val of_source : string -> t

(** [active t ~line ~rule] is true when a marker waives [rule] at [line]
    (1-based). *)
val active : t -> line:int -> rule:string -> bool

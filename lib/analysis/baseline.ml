(* Checked-in baseline of intentional exceptions. Each non-comment line is
   "<path> <rule-id>" (whitespace-separated, paths with forward slashes,
   relative to the repo root); every diagnostic of that rule in that file
   is waived. Coarser than inline suppressions on purpose: the baseline is
   for whole-file policy exceptions (e.g. an interface-only module with no
   .mli), while line-level waivers belong next to the code they excuse. *)

type t = { entries : (string * string, unit) Hashtbl.t }

let empty = { entries = Hashtbl.create 1 }

let parse src =
  let entries = Hashtbl.create 8 in
  List.iter
    (fun line ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      with
      | [] -> ()
      | [ file; rule ] -> Hashtbl.replace entries (file, rule) ()
      | _ -> ())
    (String.split_on_char '\n' src);
  { entries }

let load path =
  if Sys.file_exists path then (
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    parse src)
  else empty

let waived t ~file ~rule = Hashtbl.mem t.entries (file, rule)

(* The secret-flow pass.

   Sources (key material, not rng handles — sampling an rng handle or
   printing synthetic sampled data is fine):
   - [Rng.bytes], [Rng.fresh_seed] (raw secret bytes / seeds);
   - [Share.split]/[split_vector]/[split_compressed], [Dpf.gen]
     (secret-shared values and DPF keys);
   - any binding carrying a [(* prio-lint: secret *)] annotation on its
     own line or the line above.

   Sinks: [Printf]/[Format] printing to out-channels, the [print_*]/
   [prerr_*] stdlib helpers, [failwith]/[invalid_arg] and exception
   payloads under [raise], and [Trace]/[Report] payloads.

   Propagation is structural and deliberately laundering: taint flows
   through tuples/records/constructors/fields, [let]/[match] bindings,
   and a whitelist of string-shuffling propagators ([sprintf],
   [String.concat], [Bytes.to_string], [^], ...). A call to an unknown
   function drops taint — an under-approximation that keeps
   aggregate-statistics output (which is derived from shares but
   blinded) from drowning the report in false positives; see
   docs/ANALYSIS.md. One level of interprocedural flow rides on the
   call graph: round one finds producer functions (result is a source)
   and sink wrappers (a parameter flows into a sink); round two treats
   producer calls as sources and tainted arguments to wrappers as
   leaks. *)

open Parsetree

let path_of lid =
  match Callgraph.flat lid with "Stdlib" :: rest -> rest | l -> l

let rec last2 = function
  | [ a; b ] -> Some (a, b)
  | _ :: tl -> last2 tl
  | [] -> None

let dotted l = String.concat "." l

(* --------------------------- sources ---------------------------------- *)

let source_name lid =
  match last2 (path_of lid) with
  | Some ("Rng", (("bytes" | "fresh_seed") as f)) -> Some ("Rng." ^ f)
  | Some
      ("Share", (("split" | "split_vector" | "split_compressed") as f)) ->
    Some ("Share." ^ f)
  | Some ("Dpf", "gen") -> Some "Dpf.gen"
  | _ -> None

let annotation = "prio-lint: secret"

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m > 0 && go 0

let ann_lines src =
  let tbl = Hashtbl.create 4 in
  List.iteri
    (fun i line ->
      if contains_sub line annotation then Hashtbl.replace tbl (i + 1) ())
    (String.split_on_char '\n' src);
  tbl

let annotated ann (loc : Location.t) =
  let l = loc.loc_start.pos_lnum in
  Hashtbl.mem ann l || Hashtbl.mem ann (l - 1)

(* ------------------------- propagators -------------------------------- *)

let is_propagator lid =
  match path_of lid with
  | [ "Printf"; "sprintf" ]
  | [ "Format"; ("sprintf" | "asprintf") ]
  | [ "String";
      ( "concat" | "sub" | "cat" | "trim" | "escaped" | "map"
      | "uppercase_ascii" | "lowercase_ascii" ) ]
  | [ "Bytes";
      ( "to_string" | "of_string" | "sub" | "sub_string" | "copy" | "cat"
      | "concat" | "escaped" | "unsafe_to_string" | "unsafe_of_string" ) ]
  | [ "^" ] | [ "fst" ] | [ "snd" ]
  | [ "Option"; ("get" | "value") ]
  | [ "Result"; "get_ok" ]
  | [ "Array"; "get" ]
  | [ "List"; ("hd" | "nth") ] ->
    true
  | _ -> false

(* ---------------------------- sinks ----------------------------------- *)

(* [Some name] when a call headed by [lid] writes its arguments out. *)
let sink_name cg scope lid =
  let p = path_of lid in
  match p with
  | [ "Printf"; (("printf" | "eprintf" | "fprintf") as f) ] ->
    Some ("Printf." ^ f)
  | [ "Format"; (("printf" | "eprintf" | "fprintf") as f) ] ->
    Some ("Format." ^ f)
  | [ (("print_string" | "print_endline" | "prerr_string" | "prerr_endline")
      as f) ] ->
    Some f
  | [ (("failwith" | "invalid_arg") as f) ] -> Some f
  | _ -> (
    let resolved =
      List.exists
        (fun id ->
          let pref p = String.length id > String.length p
                       && String.sub id 0 (String.length p) = p in
          pref "Prio_obs.Trace." || pref "Prio_obs.Report.")
        (Callgraph.candidates cg scope lid)
    in
    match last2 p with
    | Some ((("Trace" | "Report") as m), f) -> Some (m ^ "." ^ f)
    | _ when resolved -> Some (dotted p)
    | _ -> None)

let is_raise lid =
  match path_of lid with
  | [ ("raise" | "raise_notrace") ] -> true
  | _ -> false

(* ------------------------- taint tracking ----------------------------- *)

type ctx = {
  producers : (string, string) Hashtbl.t;  (* fn id -> source reason *)
  wrappers : (string, string * string list * int) Hashtbl.t;
      (* fn id -> (sink it feeds, leaked param names, param count) *)
}

let empty_ctx () = { producers = Hashtbl.create 8; wrappers = Hashtbl.create 8 }

(* Reason a value is secret, or None. [taints] maps local names;
   [secrets] canonical ids of secret structure-level bindings. *)
let rec taint_of cg ctx secrets taints scope e =
  let self = taint_of cg ctx secrets taints scope in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match txt with
    | Longident.Lident x when Hashtbl.mem taints x ->
      Some (Hashtbl.find taints x)
    | _ ->
      List.find_map (Hashtbl.find_opt secrets)
        (Callgraph.candidates cg scope txt))
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
    match source_name txt with
    | Some s -> Some s
    | None -> (
      let producer =
        match Callgraph.resolve_fn cg scope txt with
        | Some id -> Hashtbl.find_opt ctx.producers id
        | None -> None
      in
      match producer with
      | Some reason -> Some reason
      | None ->
        if is_propagator txt then List.find_map (fun (_, a) -> self a) args
        else None))
  | Pexp_tuple es | Pexp_array es -> List.find_map self es
  | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> self e
  | Pexp_record (fields, base) ->
    let base_t = Option.fold ~none:None ~some:self base in
    if base_t <> None then base_t
    else List.find_map (fun (_, e) -> self e) fields
  (* No propagation through field access: a config/cluster record holds
     the master secret next to harmless counters, and [cfg.num_servers]
     leaking nothing must not inherit the record's taint. Projecting the
     secret field itself is missed — documented under-approximation. *)
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> self e
  | Pexp_sequence (_, e) | Pexp_let (_, _, e) -> self e
  | Pexp_ifthenelse (_, th, el) -> (
    match self th with Some r -> Some r | None -> Option.bind el self)
  | _ -> None

let pattern_vars pat =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var v -> acc := v.txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it pat;
  !acc

let iter_exprs f e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e

(* Local taint environment for one function body. *)
let local_taints cg ctx secrets ann (fn : Callgraph.func) =
  let taints = Hashtbl.create 8 in
  let scan () =
    iter_exprs
      (fun e ->
        match e.pexp_desc with
        | Pexp_let (_, vbs, _) ->
          List.iter
            (fun vb ->
              let reason =
                if annotated ann vb.pvb_loc then
                  Some (Printf.sprintf "a '(* %s *)' annotation" annotation)
                else
                  taint_of cg ctx secrets taints fn.fn_scope vb.pvb_expr
              in
              match reason with
              | Some r ->
                List.iter
                  (fun x -> Hashtbl.replace taints x r)
                  (pattern_vars vb.pvb_pat)
              | None -> ())
            vbs
        | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) -> (
          match taint_of cg ctx secrets taints fn.fn_scope scrut with
          | Some r ->
            List.iter
              (fun c ->
                List.iter
                  (fun x -> Hashtbl.replace taints x r)
                  (pattern_vars c.pc_lhs))
              cases
          | None -> ())
        | _ -> ())
      fn.fn_body
  in
  scan ();
  scan ();
  taints

(* Tail-position result expressions of a body, [fun] wrappers stripped. *)
let result_exprs body =
  let rec strip e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, e) | Pexp_newtype (_, e) | Pexp_constraint (e, _)
      ->
      strip e
    | Pexp_function _ -> e (* cases are the results; handled below *)
    | _ -> e
  in
  let rec tails e acc =
    match e.pexp_desc with
    | Pexp_let (_, _, e) | Pexp_sequence (_, e) | Pexp_open (_, e) ->
      tails e acc
    | Pexp_ifthenelse (_, th, el) ->
      let acc = tails th acc in
      (match el with Some e -> tails e acc | None -> acc)
    | Pexp_match (_, cases) | Pexp_try (_, cases) | Pexp_function cases ->
      List.fold_left (fun acc c -> tails c.pc_rhs acc) acc cases
    | _ -> e :: acc
  in
  tails (strip body) []

(* A result is secret only when it *is* a source/tainted value, not when
   it merely mentions one — keeps constructors that consume secrets
   (deploy, create) from becoming producers. *)
let producer_reason cg ctx secrets taints (fn : Callgraph.func) =
  List.find_map
    (fun e -> taint_of cg ctx secrets taints fn.fn_scope e)
    (result_exprs fn.fn_body)

let expr_mentions_param params e =
  let found = ref false in
  iter_exprs
    (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; _ } when List.mem x params ->
        found := true
      | _ -> ())
    e;
  !found

(* [Some (sink, leaked)]: the names of [fn]'s parameters that flow into
   a sink call inside its body. *)
let wrapper_sink cg (fn : Callgraph.func) =
  if fn.fn_params = [] then None
  else begin
    let sink = ref None in
    let leaked = ref [] in
    iter_exprs
      (fun e ->
        match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
          match sink_name cg fn.fn_scope txt with
          | Some s ->
            List.iter
              (fun p ->
                if
                  (not (List.mem p !leaked))
                  && List.exists
                       (fun (_, a) -> expr_mentions_param [ p ] a)
                       args
                then begin
                  leaked := p :: !leaked;
                  if !sink = None then sink := Some s
                end)
              fn.fn_params
          | None -> ())
        | _ -> ())
      fn.fn_body;
    match !sink with Some s -> Some (s, !leaked) | None -> None
  end

(* ------------------------------ run ----------------------------------- *)

let run cg =
  let funcs = Callgraph.functions cg in
  let inits = Callgraph.inits cg in
  let all = funcs @ inits in
  let ann_of =
    let cache = Hashtbl.create 8 in
    fun file ->
      match Hashtbl.find_opt cache file with
      | Some t -> t
      | None ->
        let t =
          match Callgraph.source_of cg file with
          | Some src -> ann_lines src
          | None -> Hashtbl.create 1
        in
        Hashtbl.replace cache file t;
        t
  in
  (* secret structure-level bindings: annotated, or a direct source call *)
  let secrets = Hashtbl.create 8 in
  List.iter
    (fun (b : Callgraph.binding) ->
      let ann = ann_of b.b_file in
      if annotated ann b.b_loc then
        Hashtbl.replace secrets b.b_id
          (Printf.sprintf "a '(* %s *)' annotation on %s" annotation b.b_id)
      else
        match b.b_expr.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
          match source_name txt with
          | Some s ->
            Hashtbl.replace secrets b.b_id
              (Printf.sprintf "%s (bound as %s)" s b.b_id)
          | None -> ())
        | _ -> ())
    (Callgraph.bindings cg);
  (* round one: local taints with no interprocedural context *)
  let ctx0 = empty_ctx () in
  let ctx = empty_ctx () in
  List.iter
    (fun (fn : Callgraph.func) ->
      let taints = local_taints cg ctx0 secrets (ann_of fn.fn_file) fn in
      (match producer_reason cg ctx0 secrets taints fn with
      | Some reason ->
        Hashtbl.replace ctx.producers fn.fn_id
          (Printf.sprintf "%s via %s" reason fn.fn_id)
      | None -> ());
      match wrapper_sink cg fn with
      | Some (sink, leaked) ->
        Hashtbl.replace ctx.wrappers fn.fn_id
          (sink, leaked, List.length fn.fn_params)
      | None -> ())
    funcs;
  (* round two: recompute with producers/wrappers and check sinks *)
  let findings = ref [] in
  let add loc message = findings := { Rules.loc; message } :: !findings in
  let check_fn (fn : Callgraph.func) =
    let taints = local_taints cg ctx secrets (ann_of fn.fn_file) fn in
    let taint_of_arg = taint_of cg ctx secrets taints fn.fn_scope in
    iter_exprs
      (fun e ->
        match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
          (match sink_name cg fn.fn_scope txt with
          | Some sink ->
            List.iter
              (fun (_, a) ->
                match taint_of_arg a with
                | Some reason ->
                  add a.pexp_loc
                    (Printf.sprintf
                       "possible secret leak in %s: value derived from %s \
                        flows into %s"
                       fn.fn_id reason sink)
                | None -> ())
              args
          | None -> ());
          (if is_raise txt then
             List.iter
               (fun (_, a) ->
                 match a.pexp_desc with
                 | Pexp_construct (_, Some payload) -> (
                   match taint_of_arg payload with
                   | Some reason ->
                     add payload.pexp_loc
                       (Printf.sprintf
                          "possible secret leak in %s: value derived from \
                           %s flows into an exception payload"
                          fn.fn_id reason)
                   | None -> ())
                 | _ -> ())
               args);
          match Callgraph.resolve_fn cg fn.fn_scope txt with
          | Some id -> (
            match Hashtbl.find_opt ctx.wrappers id with
            | Some (sink, leaked, nparams) ->
              (* Only arguments that actually feed the leaking parameter:
                 labelled args match by name; unlabelled args only when
                 the wrapper has a single parameter (positional matching
                 through labels is not attempted). *)
              List.iter
                (fun (lbl, a) ->
                  let feeds =
                    match lbl with
                    | Asttypes.Labelled l | Asttypes.Optional l ->
                      List.mem l leaked
                    | Asttypes.Nolabel -> nparams = 1
                  in
                  if feeds then
                    match taint_of_arg a with
                    | Some reason ->
                      add a.pexp_loc
                        (Printf.sprintf
                           "possible secret leak in %s: value derived \
                            from %s reaches %s via %s"
                           fn.fn_id reason sink id)
                    | None -> ())
                args
            | None -> ())
          | None -> ())
        | _ -> ())
      fn.fn_body
  in
  List.iter check_fn all;
  List.sort_uniq
    (fun (a : Rules.finding) b ->
      let c =
        String.compare a.loc.Location.loc_start.pos_fname
          b.loc.Location.loc_start.pos_fname
      in
      if c <> 0 then c
      else
        let c =
          Int.compare a.loc.loc_start.pos_lnum b.loc.loc_start.pos_lnum
        in
        if c <> 0 then c
        else
          let c =
            Int.compare
              (a.loc.loc_start.pos_cnum - a.loc.loc_start.pos_bol)
              (b.loc.loc_start.pos_cnum - b.loc.loc_start.pos_bol)
          in
          if c <> 0 then c else String.compare a.message b.message)
    !findings

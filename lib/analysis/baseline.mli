(** Checked-in baseline of intentional lint exceptions.

    File format: one "<path> <rule-id>" pair per line; [#] starts a
    comment. A baseline entry waives every diagnostic of that rule in that
    file — use it for whole-file policy exceptions, and inline
    [(* prio-lint: allow ... *)] comments for line-level ones. *)

type t

val empty : t

(** Parse baseline text (the file contents). *)
val parse : string -> t

(** Load from a file path; missing file yields [empty]. *)
val load : string -> t

val waived : t -> file:string -> rule:string -> bool

(** Linter findings: location + rule id + message, with a severity that
    decides whether the finding fails the build (Error) or is advisory
    (Warning). *)

type severity = Error | Warning

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, compiler convention *)
  rule : string;
  message : string;
  severity : severity;
}

val make :
  ?severity:severity ->
  file:string ->
  line:int ->
  col:int ->
  rule:string ->
  string ->
  t

val of_location :
  ?severity:severity -> rule:string -> message:string -> Location.t -> t

val severity_label : severity -> string

(** ["file:line:col: \[rule-id\] message"] *)
val to_string : t -> string

(** One flat JSON object per finding, keys [file]/[line]/[col]/[rule]/
    [severity]/[message]. *)
val to_json : t -> string

(** Total order by file, then line, col, rule — for stable output. *)
val order : t -> t -> int

val is_error : t -> bool

(** Whole-repo module and call graph for the cross-file lint passes.

    Built once per lint run from every parsed [.ml]: structure-level
    functions with resolved intra-repo call edges, the raw
    structure-level bindings (input to {!Mutstate}), and a module-path
    resolver that chases [module X = Path] aliases (functor arguments
    dropped), the [Prio.*] re-export facade, and structure-level
    [open]s. Resolution is syntactic and conservative: unresolved
    references produce no edge. *)

(** Resolution context captured where a function was defined. *)
type scope = {
  sc_bases : string list;
      (** candidate module-path prefixes, innermost first, [""] last *)
  sc_opens : string list;  (** opened module paths, in open order *)
}

type func = {
  fn_id : string;  (** canonical dotted id, e.g. ["Prio_obs.Trace.event"] *)
  fn_file : string;  (** repo-relative path *)
  fn_name : string;  (** last component of [fn_id] *)
  fn_loc : Location.t;
  fn_params : string list;  (** named parameters, outermost first *)
  fn_body : Parsetree.expression;
      (** the whole right-hand side, [fun] wrappers included *)
  fn_scope : scope;
  mutable fn_calls : string list;
      (** resolved intra-repo references (any ident occurrence, so
          closures passed as values count as edges) *)
}

(** A structure-level [let name = expr] binding, function or not. *)
type binding = {
  b_id : string;
  b_file : string;
  b_loc : Location.t;
  b_expr : Parsetree.expression;
}

type t

(** [build [(path, src, structure); ...]] walks every file, resolves
    module aliases to a fixpoint, and records call edges. [path] must be
    repo-relative with forward slashes. *)
val build : (string * string * Parsetree.structure) list -> t

val functions : t -> func list
(** Every structure-level function, sorted by id. *)

val inits : t -> func list
(** Anonymous top-level code ([let () = ...]), in file order; ids are
    synthesized (["Main.__init_1"]) and never the target of an edge. *)

val bindings : t -> binding list
val find : t -> string -> func option
val source_of : t -> string -> string option

val candidates : t -> scope -> Longident.t -> string list
(** Candidate canonical ids for a value reference, innermost scope
    first, for probing against a caller-owned table. *)

val resolve_fn : t -> scope -> Longident.t -> string option
(** First candidate that names a known function. *)

val alias_of : t -> string -> string option
(** The resolved target of a [module X = Path] alias, by canonical alias
    path — exposed for the call-graph resolution tests. *)

val file_root : string -> string
(** Canonical module path of a file's top level
    (["lib/obs/trace.ml"] -> ["Prio_obs.Trace"]). *)

val flat : Longident.t -> string list
(** [Longident] flattened; functor-application arguments dropped. *)

(* Per-directory severity policy: which rules run where, and whether a
   finding fails the build. Paths are repo-root-relative with forward
   slashes ("lib/crypto/rng.ml"). The table encodes the trust geography of
   the tree:

   - lib/crypto, lib/field, lib/share handle secrets (keys, MAC tags,
     shares) -> timing rules are errors there;
   - lib/crypto/rng.ml is the single sanctioned entropy seam; the wall
     clock is sanctioned only in lib/proto/retry.ml (deadlines) and
     lib/obs/clock.ml (observability) -> ambient nondeterminism is an
     error everywhere else;
   - lib/proto is the network boundary -> failures must surface as
     [protocol_error] values, not exceptions;
   - bin/, bench/ and examples/ are leaf programs: printing is their job,
     and bench gets the wall clock (that is what it measures). *)

type verdict = { rule : string; severity : Diagnostic.severity }

let under dir path =
  let d = dir ^ "/" in
  String.length path > String.length d && String.sub path 0 (String.length d) = d

let under_any dirs path = List.exists (fun d -> under d path) dirs

(* The sanctioned seam for rule no-ambient-random. *)
let entropy_seams = [ "lib/crypto/rng.ml" ]

(* The sanctioned seams for rule no-ambient-clock. rng.ml's fallback
   entropy mixes in the clock; retry.ml owns deadlines; obs/clock.ml is
   the observability layer's injectable clock. *)
let clock_seams = [ "lib/crypto/rng.ml"; "lib/proto/retry.ml"; "lib/obs/clock.ml" ]

let ct_dirs = [ "lib/crypto"; "lib/field"; "lib/share" ]

let all_rules =
  [
    Rules.ct_compare;
    Rules.no_ambient_random;
    Rules.no_ambient_clock;
    Rules.error_discipline;
    Rules.no_debug_io;
    Rules.no_partial_stdlib;
    Rules.mli_coverage;
    Rules.domain_unsafe_state;
    Rules.secret_flow;
  ]

(* Rules evaluated over the whole-repo call graph, not per file. *)
let cross_rules = [ Rules.domain_unsafe_state; Rules.secret_flow ]

let verdicts_for path : verdict list =
  let err rule = Some { rule; severity = Diagnostic.Error } in
  let warn rule = Some { rule; severity = Diagnostic.Warning } in
  List.filter_map
    (fun rule ->
      match rule with
      | r when r = Rules.ct_compare ->
        if under_any ct_dirs path then err r else None
      | r when r = Rules.no_ambient_random ->
        if List.mem path entropy_seams then None
        else if under_any [ "lib"; "bin"; "examples" ] path then err r
        else None
      | r when r = Rules.no_ambient_clock ->
        (* bench/ keeps the wall clock: that is what it measures. *)
        if List.mem path clock_seams then None
        else if under_any [ "lib"; "bin"; "examples" ] path then err r
        else None
      | r when r = Rules.error_discipline ->
        if under "lib/proto" path then err r else None
      | r when r = Rules.no_debug_io ->
        if under "lib" path then err r else None
      | r when r = Rules.no_partial_stdlib ->
        if under "lib" path then err r
        else if under_any [ "bin"; "bench"; "examples" ] path then warn r
        else None
      | r when r = Rules.mli_coverage ->
        (* File-level rule, evaluated over the whole file set; the facade
           library lib/core is the one sanctioned .mli-less module. *)
        if under "lib" path && not (under "lib/core" path) then err r
        else None
      | r when r = Rules.domain_unsafe_state ->
        (* A race is a race wherever it lives: errors everywhere. *)
        if under_any [ "lib"; "bin"; "bench"; "examples" ] path then err r
        else None
      | r when r = Rules.secret_flow ->
        (* bench prints synthetic data on purpose; keep it advisory
           there. Everywhere else a leak fails the build. *)
        if under_any [ "lib"; "bin"; "examples" ] path then err r
        else if under "bench" path then warn r
        else None
      | _ -> None)
    all_rules

let severity_of path rule =
  List.find_map
    (fun v -> if v.rule = rule then Some v.severity else None)
    (verdicts_for path)

let ast_rules_for path =
  List.filter_map
    (fun v ->
      if v.rule = Rules.mli_coverage || List.mem v.rule cross_rules then None
      else Some v.rule)
    (verdicts_for path)

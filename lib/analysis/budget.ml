(** The circuit gate-budget ledger behind the [circuit-budget] lint rule.

    The repo pins, per AFE specimen, the deployed (optimized) circuit's
    mul-gate and wire counts in a checked-in budget file. The lint
    driver re-measures the specimens and diffs against the file with
    exact-pin semantics: a mul-count regression fails the build, and so
    does an unexpected improvement or a missing/stale entry — the file
    is a ledger of the current state, not an upper bound, so any drift
    is surfaced and re-pinned deliberately (via [--update-budgets]).

    This module is the pure file-format and diff half; measuring the
    specimens is the binary's job (it instantiates the AFE zoo, which a
    compiler-libs-only library cannot). *)

type entry = { name : string; mul : int; wires : int; line : int }

let update_hint = "run `prio_lint --update-budgets` and review the diff"

(* "<name> mul=<m> wires=<w>", one per line; '#' starts a comment. *)
let parse ~file (contents : string) : (entry list, Diagnostic.t) result =
  let err line msg =
    Error (Diagnostic.make ~file ~line ~col:0 ~rule:Rules.circuit_budget msg)
  in
  let lines = String.split_on_char '\n' contents in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      let l =
        match String.index_opt l '#' with
        | Some i -> String.sub l 0 i
        | None -> l
      in
      match String.split_on_char ' ' (String.trim l) with
      | [ "" ] -> go acc (lineno + 1) rest
      | [ name; m; w ] -> (
        match
          ( String.split_on_char '=' m, String.split_on_char '=' w )
        with
        | [ "mul"; m ], [ "wires"; w ] -> (
          match (int_of_string_opt m, int_of_string_opt w) with
          | Some mul, Some wires when mul >= 0 && wires >= 0 ->
            go ({ name; mul; wires; line = lineno } :: acc) (lineno + 1) rest
          | _ -> err lineno "mul= and wires= need non-negative integers")
        | _ -> err lineno "expected `<name> mul=<m> wires=<w>`")
      | _ -> err lineno "expected `<name> mul=<m> wires=<w>`")
  in
  go [] 1 lines

let format (entries : entry list) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "# Deployed (optimized) circuit sizes per AFE specimen — the\n\
     # circuit-budget lint fails on any drift from these exact counts.\n\
     # Re-pin with `prio_lint --update-budgets` and review the diff.\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%s mul=%d wires=%d\n" e.name e.mul e.wires))
    entries;
  Buffer.contents b

(** Exact-pin diff of measured specimen sizes against the checked-in
    ledger. Every divergence is an error. *)
let check ~file ~(budget : entry list) ~(measured : entry list) :
    Diagnostic.t list =
  let diag ?(line = 1) msg =
    Diagnostic.make ~file ~line ~col:0 ~rule:Rules.circuit_budget msg
  in
  let found =
    List.filter_map
      (fun m ->
        match List.find_opt (fun b -> b.name = m.name) budget with
        | None ->
          Some
            (diag
               (Printf.sprintf
                  "circuit %s (mul=%d wires=%d) has no budget entry; %s"
                  m.name m.mul m.wires update_hint))
        | Some b when b.mul <> m.mul || b.wires <> m.wires ->
          let direction =
            if m.mul > b.mul then "regressed"
            else if m.mul < b.mul then "improved — re-pin the ledger"
            else "changed shape"
          in
          Some
            (diag ~line:b.line
               (Printf.sprintf
                  "circuit %s %s: budget mul=%d wires=%d, measured mul=%d \
                   wires=%d; %s"
                  m.name direction b.mul b.wires m.mul m.wires update_hint))
        | Some _ -> None)
      measured
  in
  let stale =
    List.filter_map
      (fun b ->
        if List.exists (fun m -> m.name = b.name) measured then None
        else
          Some
            (diag ~line:b.line
               (Printf.sprintf
                  "budget entry %s matches no measured circuit; %s" b.name
                  update_hint)))
      budget
  in
  found @ stale

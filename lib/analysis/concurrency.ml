(* The domain-unsafe-state pass.

   Three stages over the call graph:

   1. Roots: every call site of a domain-entry primitive — [Domain.spawn]
      plus the repo's own fan-out points ([Pool.submit]/[map_array],
      [Parallel.process], [Pipeline.process_parallel]) — marks the
      functions referenced in its argument subtrees as running on a
      worker domain. The primitive itself (when intra-repo) is marked
      too: once a pool is in play its queue machinery runs concurrently
      with the workers. Closures that are stored and invoked through
      data structures are only visible at these known spawn points
      (documented under-approximation).

   2. Reachability: the on-domain set is the closure of the roots over
      the call edges (any resolved reference counts, so a function passed
      as a value is reached).

   3. Guarded-access check: inside on-domain code, any use of an
      inventoried module-level mutable binding ({!Mutstate}) must be
      guarded. Guards are recognized as (a) the whole body of a function
      that takes [Mutex.lock]/[Mutex.protect] or touches [Domain.DLS]
      directly (coarse on purpose: such functions manage their own
      critical sections), and (b) argument subtrees of calls to guard
      functions, where the guard set is closed under a fixpoint — a
      function that feeds one of its own function parameters into a
      guard (the [with_lock f]/[register ... mk unpack] wrapper pattern)
      is itself a guard. [Atomic]/[Domain.DLS]/[Mutex] bindings are safe
      by construction and never flagged.

      Mutable-field writes are additionally flagged on local aliases of
      inventoried state: a let/match binding whose right-hand side
      mentions an unsafe binding taints the bound names, and
      [alias.field <- v] on a tainted name is an unguarded write (the
      exact shape of the pre-fix PR 5 gauge race). *)

open Parsetree

let path_of lid =
  match Callgraph.flat lid with "Stdlib" :: rest -> rest | l -> l

(* Intra-repo fan-out points, by canonical id. *)
let spawn_fn_ids =
  [
    "Prio_proto.Pool.submit";
    "Prio_proto.Pool.map_array";
    "Prio_proto.Parallel.Make.process";
    "Prio_proto.Pipeline.Make.process_parallel";
    "Prio_proto.Pipeline.Nizk_pipeline.process_parallel";
  ]

let is_domain_spawn lid = path_of lid = [ "Domain"; "spawn" ]

let is_lock_prim lid =
  match path_of lid with
  | [ "Mutex"; ("lock" | "protect") ] | "Domain" :: "DLS" :: _ -> true
  | _ -> false

let is_mutex_protect lid = path_of lid = [ "Mutex"; "protect" ]

(* Does [e] contain an ident satisfying [p]? *)
let expr_has p e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> if p txt then found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let iter_exprs f e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e

let pattern_vars pat =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var v -> acc := v.txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it pat;
  !acc

(* ------------------------------ guards -------------------------------- *)

let direct_guard (fn : Callgraph.func) = expr_has is_lock_prim fn.fn_body

let guard_fixpoint cg funcs guards0 =
  let guards = Hashtbl.copy guards0 in
  let is_guard_head scope txt =
    is_mutex_protect txt
    ||
    match Callgraph.resolve_fn cg scope txt with
    | Some id -> Hashtbl.mem guards id
    | None -> false
  in
  let feeds_param_to_guard (fn : Callgraph.func) =
    let hit = ref false in
    iter_exprs
      (fun e ->
        match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
          when (not !hit) && is_guard_head fn.fn_scope txt ->
          if
            List.exists
              (fun (_, a) ->
                expr_has
                  (function
                    | Longident.Lident x -> List.mem x fn.fn_params
                    | _ -> false)
                  a)
              args
          then hit := true
        | _ -> ())
      fn.fn_body;
    !hit
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fn : Callgraph.func) ->
        if
          (not (Hashtbl.mem guards fn.fn_id))
          && fn.fn_params <> []
          && feeds_param_to_guard fn
        then begin
          Hashtbl.replace guards fn.fn_id ();
          changed := true
        end)
      funcs
  done;
  guards

(* --------------------------- spawn roots ------------------------------ *)

type site = { st_fn : Callgraph.func; st_args : expression list }

let spawn_sites cg (fn : Callgraph.func) =
  let sites = ref [] in
  iter_exprs
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        let prim =
          if is_domain_spawn txt then Some None
          else
            match Callgraph.resolve_fn cg fn.fn_scope txt with
            | Some id when List.mem id spawn_fn_ids -> Some (Some id)
            | _ -> None
        in
        (match prim with
        | Some callee ->
          sites :=
            (callee, { st_fn = fn; st_args = List.map snd args }) :: !sites
        | None -> ())
      | _ -> ())
    fn.fn_body;
  !sites

(* ------------------------- the pass itself ---------------------------- *)

let run cg =
  let funcs = Callgraph.functions cg in
  let inits = Callgraph.inits cg in
  let inv = Mutstate.inventory cg in
  let guards0 = Hashtbl.create 64 in
  List.iter
    (fun fn ->
      if direct_guard fn then Hashtbl.replace guards0 fn.Callgraph.fn_id ())
    funcs;
  let guards = guard_fixpoint cg funcs guards0 in
  (* roots *)
  let sites = List.concat_map (spawn_sites cg) (funcs @ inits) in
  let roots = Hashtbl.create 32 in
  List.iter
    (fun (callee, site) ->
      (match callee with
      | Some id -> Hashtbl.replace roots id ()
      | None -> ());
      List.iter
        (iter_exprs (fun e ->
             match e.pexp_desc with
             | Pexp_ident { txt; _ } -> (
               match Callgraph.resolve_fn cg site.st_fn.fn_scope txt with
               | Some id -> Hashtbl.replace roots id ()
               | None -> ())
             | _ -> ()))
        site.st_args)
    sites;
  (* reachability closure over call edges *)
  let on_domain = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem on_domain id) then begin
      Hashtbl.replace on_domain id ();
      match Callgraph.find cg id with
      | Some fn -> List.iter visit fn.fn_calls
      | None -> ()
    end
  in
  Hashtbl.iter (fun id () -> visit id) roots;
  (* local aliases of inventoried state, per function *)
  let alias_map (fn : Callgraph.func) =
    let taints : (string, Mutstate.entry) Hashtbl.t = Hashtbl.create 8 in
    let origin_of e =
      let found = ref None in
      iter_exprs
        (fun e ->
          match e.pexp_desc with
          | Pexp_ident { txt; _ } when !found = None -> (
            match Mutstate.resolve cg inv fn.fn_scope txt with
            | Some entry when Mutstate.is_unsafe entry.ms_kind ->
              found := Some entry
            | _ -> (
              match txt with
              | Longident.Lident x -> (
                match Hashtbl.find_opt taints x with
                | Some entry -> found := Some entry
                | None -> ())
              | _ -> ()))
          | _ -> ())
        e;
      !found
    in
    let scan () =
      iter_exprs
        (fun e ->
          match e.pexp_desc with
          | Pexp_let (_, vbs, _) ->
            List.iter
              (fun vb ->
                match origin_of vb.pvb_expr with
                | Some entry ->
                  List.iter
                    (fun x -> Hashtbl.replace taints x entry)
                    (pattern_vars vb.pvb_pat)
                | None -> ())
              vbs
          | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) -> (
            match origin_of scrut with
            | Some entry ->
              List.iter
                (fun c ->
                  List.iter
                    (fun x -> Hashtbl.replace taints x entry)
                    (pattern_vars c.pc_lhs))
                cases
            | None -> ())
          | _ -> ())
        fn.fn_body
    in
    (* two passes: bindings can reference aliases bound later in scan order *)
    scan ();
    scan ();
    taints
  in
  (* guarded-access walk *)
  let findings = ref [] in
  let add loc message = findings := { Rules.loc; message } :: !findings in
  let where_of (entry : Mutstate.entry) =
    Printf.sprintf "%s (%s, %s:%d)" entry.ms_id
      (Mutstate.kind_name entry.ms_kind)
      entry.ms_file entry.ms_line
  in
  let check_expr (fn : Callgraph.func) taints ~guarded expr =
    let is_guard_head txt =
      is_mutex_protect txt
      ||
      match Callgraph.resolve_fn cg fn.fn_scope txt with
      | Some id -> Hashtbl.mem guards id
      | None -> false
    in
    let rec check guarded e =
      let descend guarded e =
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e -> check guarded e);
          }
        in
        Ast_iterator.default_iterator.expr it e
      in
      match e.pexp_desc with
      | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as head), args)
        ->
        let g = guarded || is_guard_head txt in
        check guarded head;
        List.iter (fun (_, a) -> check g a) args
      | Pexp_ident { txt; loc } ->
        if not guarded then (
          match Mutstate.resolve cg inv fn.fn_scope txt with
          | Some entry when Mutstate.is_unsafe entry.ms_kind ->
            add loc
              (Printf.sprintf
                 "unguarded use of module-level mutable state %s from \
                  domain-reachable code in %s: wrap it in Atomic, guard it \
                  with a Mutex, or move it to Domain.DLS"
                 (where_of entry) fn.fn_id)
          | _ -> ())
      | Pexp_setfield
          (({ pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ } as
            e1),
           _, e2) ->
        (if not guarded then
           match Hashtbl.find_opt taints x with
           | Some entry ->
             add e.pexp_loc
               (Printf.sprintf
                  "unguarded write to a mutable field of '%s', an alias of \
                   module-level mutable state %s, from domain-reachable \
                   code in %s: wrap the field in Atomic or guard the write \
                   with the owning Mutex"
                  x (where_of entry) fn.fn_id)
           | None -> ());
        check guarded e1;
        check guarded e2
      | _ -> descend guarded e
    in
    check guarded expr
  in
  (* whole bodies of reachable functions (guard-owning bodies skipped) *)
  List.iter
    (fun (fn : Callgraph.func) ->
      if
        Hashtbl.mem on_domain fn.Callgraph.fn_id
        && not (Hashtbl.mem guards0 fn.Callgraph.fn_id)
      then check_expr fn (alias_map fn) ~guarded:false fn.fn_body)
    funcs;
  (* spawn-site argument subtrees of functions not themselves on-domain *)
  List.iter
    (fun (_, site) ->
      let fn = site.st_fn in
      if not (Hashtbl.mem on_domain fn.Callgraph.fn_id) then begin
        let guarded = Hashtbl.mem guards0 fn.Callgraph.fn_id in
        let taints = alias_map fn in
        List.iter (check_expr fn taints ~guarded) site.st_args
      end)
    sites;
  List.sort_uniq
    (fun (a : Rules.finding) b ->
      let c =
        String.compare a.loc.Location.loc_start.pos_fname
          b.loc.Location.loc_start.pos_fname
      in
      if c <> 0 then c
      else
        let c =
          Int.compare a.loc.loc_start.pos_lnum b.loc.loc_start.pos_lnum
        in
        if c <> 0 then c
        else
          let c =
            Int.compare
              (a.loc.loc_start.pos_cnum - a.loc.loc_start.pos_bol)
              (b.loc.loc_start.pos_cnum - b.loc.loc_start.pos_bol)
          in
          if c <> 0 then c else String.compare a.message b.message)
    !findings

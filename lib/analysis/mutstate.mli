(** Inventory of module-level mutable state, classified by the syntactic
    constructor on the binding's right-hand side. Function-local state is
    deliberately not inventoried: it is domain-private (the [Parallel]
    replica pattern) unless it escapes through a spawn, which the
    {!Concurrency} pass tracks separately. *)

type kind =
  | Ref
  | Hashtable
  | Queue
  | Buffer
  | Stack
  | Array_state
  | Bytes_state
  | Atomic  (** safe by construction *)
  | Dls_key  (** safe: domain-local *)
  | Mutex  (** the guard itself *)
  | Condition

type entry = {
  ms_id : string;  (** canonical dotted id of the binding *)
  ms_file : string;
  ms_line : int;
  ms_kind : kind;
}

val kind_name : kind -> string

val is_unsafe : kind -> bool
(** True for state that is racy when reached from several domains
    without a guard; false for [Atomic]/[Domain.DLS]/[Mutex]/[Condition]. *)

val classify : Parsetree.expression -> kind option

val inventory : Callgraph.t -> (string, entry) Hashtbl.t
(** Every structure-level binding whose right-hand side is a recognized
    state constructor, keyed by canonical id. *)

val resolve :
  Callgraph.t ->
  (string, entry) Hashtbl.t ->
  Callgraph.scope ->
  Longident.t ->
  entry option
(** Resolve a value reference against the inventory in a scope. *)

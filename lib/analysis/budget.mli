(** File format and exact-pin diff for the [circuit-budget] lint rule:
    a checked-in ledger of per-AFE optimized circuit sizes, failed on
    any drift (regression or unexpected improvement). Measuring the
    circuits is the lint binary's job; this module is pure. *)

type entry = {
  name : string;  (** AFE specimen name *)
  mul : int;  (** deployed mul-gate count *)
  wires : int;  (** deployed total wire count *)
  line : int;  (** 1-based source line in the budget file (0 if synthetic) *)
}

val update_hint : string
(** The "how to re-pin" suffix shared by every diagnostic. *)

val parse : file:string -> string -> (entry list, Diagnostic.t) result
(** Parse budget-file contents: one [<name> mul=<m> wires=<w>] per line,
    [#] comments, blank lines ignored. *)

val format : entry list -> string
(** Canonical file contents (header comment + one line per entry). *)

val check :
  file:string -> budget:entry list -> measured:entry list -> Diagnostic.t list
(** Exact-pin diff: errors for mismatched counts (either direction),
    measured circuits missing from the ledger, and stale ledger
    entries. *)

(* Whole-repo module and call graph.

   Every .ml under the linted directories is parsed once; this module
   turns the parsed structures into (a) a table of structure-level
   functions with resolved intra-repo call edges, (b) a list of
   structure-level value bindings (the raw material for the mutable-state
   inventory), and (c) a module-path resolver that understands the
   repo's layout conventions:

   - a file lib/<d>/<m>.ml defines module <Lib>.<M> where <Lib> is the
     dune library module for <d> ("Prio_" ^ d, except lib/core which is
     the unprefixed library [Core] exposing [Core.Prio]);
   - bin/, bench/ and examples/ files are single-module executables;
   - [module X = Path] aliases (including functor applications, whose
     arguments are dropped: [module Sh = Share.Make (F)] resolves to the
     functor itself) are chased, so the Prio.* re-export facade in
     lib/core resolves through to the defining library;
   - [open M] at structure level brings M's members into scope for the
     items after it.

   Resolution is purely syntactic and conservative: a reference that
   does not resolve to a known intra-repo function simply produces no
   edge. Shadowing by local let-bound functions, first-class modules,
   and [let open] are not modelled (documented in docs/ANALYSIS.md). *)

open Parsetree

type scope = {
  sc_bases : string list;
      (* candidate module-path prefixes, innermost first, "" last *)
  sc_opens : string list;  (* opened module paths, in open order *)
}

type func = {
  fn_id : string;  (* canonical dotted id, e.g. "Prio_obs.Trace.event" *)
  fn_file : string;  (* repo-relative path *)
  fn_name : string;  (* last component of fn_id *)
  fn_loc : Location.t;
  fn_params : string list;  (* named parameters, outermost first *)
  fn_body : expression;  (* the whole right-hand side, fun wrappers included *)
  fn_scope : scope;
  mutable fn_calls : string list;  (* resolved intra-repo references *)
}

type binding = {
  b_id : string;
  b_file : string;
  b_loc : Location.t;
  b_expr : expression;
}

type t = {
  cg_funcs : (string, func) Hashtbl.t;
  cg_inits : func list;  (* anonymous top-level code ([let () = ...]) *)
  cg_bindings : binding list;  (* every structure-level simple binding *)
  cg_modules : (string, unit) Hashtbl.t;  (* structure-defined module paths *)
  cg_aliases : (string, string) Hashtbl.t;  (* alias path -> target path *)
  cg_sources : (string, string) Hashtbl.t;  (* file -> raw source text *)
}

(* ------------------------- path helpers ------------------------------- *)

(* Longident.flatten raises on functor applications; drop the argument. *)
let rec flat = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flat l @ [ s ]
  | Longident.Lapply (l, _) -> flat l

let join base path =
  if base = "" then path else if path = "" then base else base ^ "." ^ path

(* The dune library module owning lib/<d>/: "Prio_" ^ d capitalized,
   except the facade library in lib/core which is named plain [Core]. *)
let library_module dir = if dir = "core" then "Core" else "Prio_" ^ dir

let module_name_of_file path =
  String.capitalize_ascii Filename.(remove_extension (basename path))

(* Canonical module path a file's top level lives at. *)
let file_root path =
  match String.split_on_char '/' path with
  | "lib" :: dir :: _ :: _ ->
    join (library_module dir) (module_name_of_file path)
  | _ -> module_name_of_file path

(* "A.B.C" -> ["A.B.C"; "A.B"; "A"; ""], innermost first. *)
let bases_of prefix =
  let rec go acc p =
    match String.rindex_opt p '.' with
    | None -> List.rev ("" :: p :: acc)
    | Some i -> go (p :: acc) (String.sub p 0 i)
  in
  if prefix = "" then [ "" ] else go [] prefix

(* ---------------------------- resolution ------------------------------ *)

let canon t path =
  let strip_prefix p =
    (* longest registered alias that is p or a dotted prefix of p *)
    let rec go q =
      if Hashtbl.mem t.cg_aliases q then Some q
      else
        match String.rindex_opt q '.' with
        | None -> None
        | Some i -> go (String.sub q 0 i)
    in
    go p
  in
  let rec go path fuel =
    if fuel = 0 then path
    else
      match strip_prefix path with
      | None -> path
      | Some k ->
        let target = Hashtbl.find t.cg_aliases k in
        let rest =
          String.sub path (String.length k)
            (String.length path - String.length k)
        in
        go (target ^ rest) (fuel - 1)
  in
  go path 16

let module_exists t p = Hashtbl.mem t.cg_modules p

(* Resolve a raw module path in a scope to a known module, trying the
   enclosing prefixes innermost-out, then the opens. *)
let resolve_module t scope raw =
  let try_base base =
    let cand = canon t (join base raw) in
    if module_exists t cand then Some cand else None
  in
  let opens = List.map (canon t) scope.sc_opens in
  List.find_map try_base (scope.sc_bases @ opens)

(* Candidate canonical ids for a value reference, innermost scope first.
   Callers probe these against whichever table they own. *)
let candidates t scope lid =
  match List.rev (flat lid) with
  | [] -> []
  | name :: rev_mods ->
    let mpath = String.concat "." (List.rev rev_mods) in
    let opens = List.map (canon t) scope.sc_opens in
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun base ->
        let m = canon t (join base mpath) in
        let id = if m = "" then name else m ^ "." ^ name in
        if Hashtbl.mem seen id then None
        else begin
          Hashtbl.replace seen id ();
          Some id
        end)
      (scope.sc_bases @ opens)

let resolve_fn t scope lid =
  List.find_opt (fun id -> Hashtbl.mem t.cg_funcs id) (candidates t scope lid)

(* --------------------- structure walk (pass A) ------------------------ *)

let rec collect_params e =
  match e.pexp_desc with
  | Pexp_fun (label, _, pat, body) ->
    let name =
      match pat.ppat_desc with
      | Ppat_var v -> Some v.txt
      | Ppat_constraint ({ ppat_desc = Ppat_var v; _ }, _) -> Some v.txt
      | _ -> (
        match label with
        | Asttypes.Labelled l | Asttypes.Optional l -> Some l
        | Asttypes.Nolabel -> None)
    in
    let rest = collect_params body in
    (match name with Some n -> n :: rest | None -> rest)
  | Pexp_newtype (_, body) -> collect_params body
  | _ -> []

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, body) -> is_function body
  | Pexp_constraint (body, _) -> is_function body
  | _ -> false

let rec binding_name pat =
  match pat.ppat_desc with
  | Ppat_var v -> Some v.txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

let rec functor_body me =
  match me.pmod_desc with
  | Pmod_functor (_, body) -> functor_body body
  | Pmod_constraint (body, _) -> functor_body body
  | _ -> me

(* The module path a module expression aliases, arguments dropped; [None]
   when the expression is a structure (a definition, not an alias). *)
let rec alias_target me =
  match me.pmod_desc with
  | Pmod_ident lid -> Some (String.concat "." (flat lid.txt))
  | Pmod_apply (f, _) -> alias_target f
  | Pmod_constraint (body, _) -> alias_target body
  | _ -> None

type pending_alias = { pa_key : string; pa_raw : string; pa_scope : scope }

type builder = {
  funcs : (string, func) Hashtbl.t;
  mutable inits : func list;
  mutable bindings : binding list;
  modules : (string, unit) Hashtbl.t;
  mutable pending : pending_alias list;
  sources : (string, string) Hashtbl.t;
}

let walk_file b ~file str =
  let root = file_root file in
  (* register every dotted prefix of the root as a known module *)
  List.iter
    (fun p -> if p <> "" then Hashtbl.replace b.modules p ())
    (bases_of root);
  let init_count = ref 0 in
  let rec go prefix opens str =
    ignore
      (List.fold_left
         (fun opens item ->
           let scope =
             { sc_bases = bases_of prefix; sc_opens = List.rev opens }
           in
           (match item.pstr_desc with
           | Pstr_value (_, vbs) ->
             List.iter
               (fun vb ->
                 match binding_name vb.pvb_pat with
                 | Some name ->
                   let id = join prefix name in
                   b.bindings <-
                     { b_id = id; b_file = file; b_loc = vb.pvb_loc;
                       b_expr = vb.pvb_expr }
                     :: b.bindings;
                   if is_function vb.pvb_expr then
                     Hashtbl.replace b.funcs id
                       { fn_id = id; fn_file = file; fn_name = name;
                         fn_loc = vb.pvb_loc;
                         fn_params = collect_params vb.pvb_expr;
                         fn_body = vb.pvb_expr; fn_scope = scope;
                         fn_calls = [] }
                 | None ->
                   (* [let () = ...] and friends: top-level init code *)
                   incr init_count;
                   let id = Printf.sprintf "%s.__init_%d" root !init_count in
                   b.inits <-
                     { fn_id = id; fn_file = file; fn_name = id;
                       fn_loc = vb.pvb_loc; fn_params = [];
                       fn_body = vb.pvb_expr; fn_scope = scope;
                       fn_calls = [] }
                     :: b.inits)
               vbs
           | Pstr_module mb -> (
             let name =
               match mb.pmb_name.txt with Some n -> n | None -> "_"
             in
             let path = join prefix name in
             match functor_body mb.pmb_expr with
             | { pmod_desc = Pmod_structure s; _ } ->
               Hashtbl.replace b.modules path ();
               go path opens s
             | me -> (
               match alias_target me with
               | Some raw ->
                 b.pending <-
                   { pa_key = path; pa_raw = raw; pa_scope = scope }
                   :: b.pending
               | None -> ()))
           | Pstr_recmodule mbs ->
             List.iter
               (fun mb ->
                 let name =
                   match mb.pmb_name.txt with Some n -> n | None -> "_"
                 in
                 let path = join prefix name in
                 match functor_body mb.pmb_expr with
                 | { pmod_desc = Pmod_structure s; _ } ->
                   Hashtbl.replace b.modules path ();
                   go path opens s
                 | _ -> ())
               mbs
           | Pstr_include { pincl_mod = me; _ } -> (
             match functor_body me with
             | { pmod_desc = Pmod_structure s; _ } -> go prefix opens s
             | _ -> ())
           | _ -> ());
           (* [open M]: in scope for the items after this one *)
           match item.pstr_desc with
           | Pstr_open { popen_expr = { pmod_desc = Pmod_ident lid; _ }; _ }
             ->
             String.concat "." (flat lid.txt) :: opens
           | _ -> opens)
         opens str)
  in
  go root [] str

(* ------------------- alias fixpoint and call edges -------------------- *)

let resolve_aliases pending t =
  let pending = ref pending in
  let changed = ref true in
  while !changed do
    changed := false;
    pending :=
      List.filter
        (fun pa ->
          match resolve_module t pa.pa_scope pa.pa_raw with
          | Some target ->
            Hashtbl.replace t.cg_aliases pa.pa_key target;
            changed := true;
            false
          | None -> true)
        !pending
  done

let record_edges t fn =
  let acc = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            match resolve_fn t fn.fn_scope txt with
            | Some id -> Hashtbl.replace acc id ()
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it fn.fn_body;
  fn.fn_calls <-
    List.sort String.compare (Hashtbl.fold (fun k () l -> k :: l) acc [])

let build files =
  let b =
    { funcs = Hashtbl.create 256; inits = []; bindings = [];
      modules = Hashtbl.create 64; pending = []; sources = Hashtbl.create 64 }
  in
  List.iter
    (fun (path, src, str) ->
      Hashtbl.replace b.sources path src;
      walk_file b ~file:path str)
    files;
  let t =
    { cg_funcs = b.funcs; cg_inits = List.rev b.inits;
      cg_bindings = List.rev b.bindings; cg_modules = b.modules;
      cg_aliases = Hashtbl.create 64; cg_sources = b.sources }
  in
  resolve_aliases b.pending t;
  Hashtbl.iter (fun _ fn -> record_edges t fn) t.cg_funcs;
  List.iter (record_edges t) t.cg_inits;
  t

(* ----------------------------- accessors ------------------------------ *)

let functions t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.cg_funcs []
  |> List.sort (fun a b -> String.compare a.fn_id b.fn_id)

let inits t = t.cg_inits
let bindings t = t.cg_bindings
let find t id = Hashtbl.find_opt t.cg_funcs id
let source_of t file = Hashtbl.find_opt t.cg_sources file
let alias_of t path = Hashtbl.find_opt t.cg_aliases path

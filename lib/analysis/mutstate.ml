(* Inventory of module-level mutable state.

   Only structure-level bindings are inventoried: a [ref]/[Hashtbl]/...
   local to a function (or carried inside a per-call record value) is
   private to whichever domain holds it and is exactly the pattern
   [Parallel] uses for replica state, so flagging it would bury the
   real findings. The classification is by the syntactic constructor on
   the right-hand side of the binding:

   - unsafe when shared across domains unguarded: [ref], [Hashtbl.create],
     [Queue.create], [Buffer.create], [Stack.create], [Array.make]/
     [Array.init]/[Array.create_float]/[Bytes.create]/[Bytes.make];
   - safe by construction: [Atomic.make], [Domain.DLS.new_key],
     [Mutex.create], [Condition.create] (the guards themselves). *)

type kind =
  | Ref
  | Hashtable
  | Queue
  | Buffer
  | Stack
  | Array_state
  | Bytes_state
  | Atomic
  | Dls_key
  | Mutex
  | Condition

type entry = {
  ms_id : string;  (* canonical dotted id of the binding *)
  ms_file : string;
  ms_line : int;
  ms_kind : kind;
}

let kind_name = function
  | Ref -> "ref cell"
  | Hashtable -> "hash table"
  | Queue -> "queue"
  | Buffer -> "buffer"
  | Stack -> "stack"
  | Array_state -> "array"
  | Bytes_state -> "bytes"
  | Atomic -> "atomic"
  | Dls_key -> "domain-local key"
  | Mutex -> "mutex"
  | Condition -> "condition"

let is_unsafe = function
  | Ref | Hashtable | Queue | Buffer | Stack | Array_state | Bytes_state ->
    true
  | Atomic | Dls_key | Mutex | Condition -> false

(* Strip Stdlib. so Stdlib.ref and ref are one case (mirrors Rules). *)
let path_of lid =
  match Callgraph.flat lid with "Stdlib" :: rest -> rest | l -> l

let rec classify (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Pexp_constraint (e, _) -> classify e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match path_of txt with
    | [ "ref" ] -> Some Ref
    | [ "Hashtbl"; "create" ] -> Some Hashtable
    | [ "Queue"; "create" ] -> Some Queue
    | [ "Buffer"; "create" ] -> Some Buffer
    | [ "Stack"; "create" ] -> Some Stack
    | [ "Array"; ("make" | "init" | "create_float" | "make_matrix") ] ->
      Some Array_state
    | [ "Bytes"; ("create" | "make") ] -> Some Bytes_state
    | [ "Atomic"; "make" ] -> Some Atomic
    | [ "Domain"; "DLS"; "new_key" ] -> Some Dls_key
    | [ "Mutex"; "create" ] -> Some Mutex
    | [ "Condition"; "create" ] -> Some Condition
    | _ -> None)
  | _ -> None

(* id -> entry, over every structure-level binding in the graph. *)
let inventory cg =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (b : Callgraph.binding) ->
      match classify b.b_expr with
      | Some ms_kind ->
        Hashtbl.replace tbl b.b_id
          { ms_id = b.b_id; ms_file = b.b_file;
            ms_line = b.b_loc.Location.loc_start.pos_lnum; ms_kind }
      | None -> ())
    (Callgraph.bindings cg);
  tbl

(* Resolve a value reference against the inventory. *)
let resolve cg (tbl : (string, entry) Hashtbl.t) scope lid =
  List.find_map (Hashtbl.find_opt tbl) (Callgraph.candidates cg scope lid)

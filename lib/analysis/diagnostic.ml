(* A single linter finding, renderable as "file:line:col: [rule-id] message".
   Lines are 1-based and columns 0-based, matching the compiler's own
   convention so editors can jump to the exact spot. *)

type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  severity : severity;
}

let make ?(severity = Error) ~file ~line ~col ~rule message =
  { file; line; col; rule; message; severity }

let of_location ?severity ~rule ~message (loc : Location.t) =
  let p = loc.loc_start in
  make ?severity ~file:p.pos_fname ~line:p.pos_lnum
    ~col:(p.pos_cnum - p.pos_bol) ~rule message

let severity_label = function Error -> "error" | Warning -> "warning"

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

(* Minimal JSON string escaping: backslash, quote, control chars. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json d =
  Printf.sprintf
    "{\"file\":%s,\"line\":%d,\"col\":%d,\"rule\":%s,\"severity\":%s,\"message\":%s}"
    (json_string d.file) d.line d.col (json_string d.rule)
    (json_string (severity_label d.severity))
    (json_string d.message)

let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let is_error d = match d.severity with Error -> true | Warning -> false

(** The metric-name ledger behind the [metric-registry] lint rule.

    The repo pins the full set of metric names the codebase registers
    (every [Metrics.counter]/[gauge]/[histogram] call site with its
    kind) in a checked-in ledger. The lint driver re-collects the set
    syntactically and diffs with exact-pin semantics: an unledgered
    metric, a stale ledger entry, or a kind change fails the build —
    metric names are an exported interface (dashboards and scrape
    configs key on them) that nothing else type-checks. Drift is
    re-pinned deliberately via [--update-metrics], mirroring the
    gate-budget flow in {!Budget}. *)

type kind = Counter | Gauge | Histogram

val kind_to_string : kind -> string

(** One ledger line: a pinned metric name with its kind. [line] is the
    ledger line the entry came from (0 for freshly measured sets). *)
type entry = { name : string; kind : kind; line : int }

(** One registration call site in the code. *)
type registration = {
  r_name : string;
  r_kind : kind;
  r_file : string;
  r_line : int;
}

(** Collect every registration in one parsed [.ml]; [file] labels the
    sites. *)
val collect_structure :
  file:string -> Parsetree.structure -> registration list

(** Collect every registration under [root]/[dirs] (same walk as the
    lint tree; files that fail to parse are skipped — [parse-error]
    reports those). *)
val measure : root:string -> dirs:string list -> registration list

(** Collapse call sites to one sorted [entry] per metric name. *)
val dedup : registration list -> entry list

(** Parse a ledger file ("<name> kind=<kind>" lines, '#' comments). *)
val parse : file:string -> string -> (entry list, Diagnostic.t) result

(** Render entries in the ledger file format (with header comment). *)
val format : entry list -> string

(** Exact-pin diff of collected registrations against the checked-in
    ledger; every divergence (including one name registered under two
    kinds) is an error attributed to [file]. *)
val check :
  file:string ->
  ledger:entry list ->
  measured:registration list ->
  Diagnostic.t list

(** The [secret-flow] pass: track key material from its producers to
    output sinks across the call graph.

    Sources: [Rng.bytes]/[Rng.fresh_seed], [Share.split]/[split_vector]/
    [split_compressed], [Dpf.gen], and any binding annotated with
    [(* prio-lint: secret *)] on its own line or the line above.
    Sinks: [Printf]/[Format] out-channel printers, [print_*]/[prerr_*],
    [failwith]/[invalid_arg], exception payloads under [raise], and
    [Trace]/[Report] payloads. Propagation is structural with a
    string-operation whitelist; unknown calls launder taint (documented
    under-approximation). One round of interprocedural flow handles
    producer functions and sink wrappers. *)

val annotation : string
(** The annotation text, ["prio-lint: secret"]. *)

val run : Callgraph.t -> Rules.finding list
(** All findings across the graph, sorted and deduplicated. *)

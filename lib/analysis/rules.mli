(** The lint rules.

    Rule ids are the strings used in diagnostics, inline suppressions, the
    baseline file, and {!Policy}. Each AST rule takes a parsed structure
    and returns findings; {!run_mli_coverage} is a pure function over the
    file set. Rationale for each rule lives in docs/ANALYSIS.md. *)

val ct_compare : string
val no_ambient_random : string
val no_ambient_clock : string
val error_discipline : string
val no_debug_io : string
val no_partial_stdlib : string
val mli_coverage : string

(** Pseudo-rule for files that fail to parse. *)
val parse_error : string

(** Cross-file rules, checked over the whole-repo call graph by
    {!Concurrency} and {!Taint} rather than per file. *)
val domain_unsafe_state : string

val secret_flow : string

(** Non-AST rule: the per-AFE gate-budget ledger diff (see {!Budget});
    the lint binary measures the circuits and runs the check. *)
val circuit_budget : string

(** Non-AST rule: the metric-name ledger diff (see {!Metricreg}); the
    lint binary collects registrations and runs the check. *)
val metric_registry : string

type finding = { loc : Location.t; message : string }

(** Resolve a rule id to its structure checker; [None] for non-AST rules
    ({!mli_coverage}, {!parse_error}). *)
val ast_rule : string -> (Parsetree.structure -> finding list) option

val all_ast_rules : string list

(** [run_mli_coverage files] flags every [.ml] path in [files] with no
    sibling [.mli] in [files], as [(file, message)]. Which files the
    expectation applies to is {!Policy}'s decision. *)
val run_mli_coverage : string list -> (string * string) list

(** Per-directory severity policy: which rules run where, and whether a
    finding fails the build. Paths are repo-root-relative with forward
    slashes (["lib/crypto/rng.ml"]). *)

type verdict = { rule : string; severity : Diagnostic.severity }

(** All rules that apply to [path], with their severities. *)
val verdicts_for : string -> verdict list

(** Severity of [rule] at [path]; [None] when the rule does not apply
    there. *)
val severity_of : string -> string -> Diagnostic.severity option

(** The per-file AST rules (everything but mli-coverage and the
    cross-file rules) enabled at [path]. *)
val ast_rules_for : string -> string list

(** Rules evaluated over the whole-repo call graph
    ([domain-unsafe-state], [secret-flow]); their per-path severity
    still comes from {!severity_of}. *)
val cross_rules : string list

(** Files where ambient randomness is sanctioned: the entropy seam
    ([lib/crypto/rng.ml]). *)
val entropy_seams : string list

(** Files where the ambient wall clock is sanctioned: the entropy seam
    (whose fallback mixes in the clock), the deadline seam
    ([lib/proto/retry.ml]), and the observability clock seam
    ([lib/obs/clock.ml]). *)
val clock_seams : string list

(** Linter orchestration: parse, run rules, filter through suppressions
    and the baseline. *)

(** Parse an [.ml] body with the compiler's parser; [path] labels
    locations ([pos_fname]). Exposed for the call-graph tests. *)
val parse_implementation :
  path:string -> string -> (Parsetree.structure, Diagnostic.t) result

(** [source_files ~root dirs] lists every [.ml]/[.mli] under
    [root]/[dirs] (the lint tree walk: [_build]-style and hidden
    directories skipped), sorted, relative to [root]. Exposed for
    whole-tree collectors like {!Metricreg}. *)
val source_files : root:string -> string list -> string list

(** [lint_source ~rules ~path src] parses [src] (an [.ml] body) and runs
    exactly the given AST rules at Error severity, honouring inline
    [(* prio-lint: allow ... *)] waivers. [path] only labels diagnostics.
    A file that does not parse yields one [parse-error] diagnostic. *)
val lint_source :
  rules:string list -> path:string -> string -> Diagnostic.t list

(** [lint_sources ~rules ~files] lints a set of in-memory [.ml] files as
    one program: per-file AST rules in [rules] run on each file, and any
    cross-file rules in [rules] ([domain-unsafe-state], [secret-flow])
    run once over the whole set's call graph. Paths label diagnostics
    and drive module resolution ([lib/<d>/m.ml] -> [Prio_<d>.M]); all
    findings are Error severity. This is the corpus-test entry point for
    the cross-file passes. *)
val lint_sources :
  rules:string list -> files:(string * string) list -> Diagnostic.t list

(** [lint_tree ~root ~dirs ()] recursively lints every [.ml]/[.mli] under
    [root]/[dirs] (skipping [_build]-style and hidden directories), with
    rule selection and severity from {!Policy} and paths relative to
    [root]. [.mli] files are parse-checked and counted for mli-coverage. *)
val lint_tree :
  ?baseline:Baseline.t ->
  root:string ->
  dirs:string list ->
  unit ->
  Diagnostic.t list

(** Linter orchestration: parse, run rules, filter through suppressions
    and the baseline. *)

(** [lint_source ~rules ~path src] parses [src] (an [.ml] body) and runs
    exactly the given AST rules at Error severity, honouring inline
    [(* prio-lint: allow ... *)] waivers. [path] only labels diagnostics.
    A file that does not parse yields one [parse-error] diagnostic. *)
val lint_source :
  rules:string list -> path:string -> string -> Diagnostic.t list

(** [lint_tree ~root ~dirs ()] recursively lints every [.ml]/[.mli] under
    [root]/[dirs] (skipping [_build]-style and hidden directories), with
    rule selection and severity from {!Policy} and paths relative to
    [root]. [.mli] files are parse-checked and counted for mli-coverage. *)
val lint_tree :
  ?baseline:Baseline.t ->
  root:string ->
  dirs:string list ->
  unit ->
  Diagnostic.t list

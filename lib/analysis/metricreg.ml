(* The metric-name ledger behind the [metric-registry] lint rule.

   Every observable the codebase exports is registered through
   [Metrics.counter]/[gauge]/[histogram] with a literal name; dashboards,
   scrape configs, and the docs key on those names, so a rename or a
   silently added/removed metric is an interface break that nothing
   type-checks. The lint driver collects every registration site
   syntactically and diffs the set against a checked-in ledger with
   exact-pin semantics: an unregistered ledger entry, an unledgered
   metric, or a kind change fails the build — the file is a ledger of
   the current exported surface, re-pinned deliberately (via
   [--update-metrics]), mirroring the gate-budget flow in [Budget]. *)

open Parsetree

type kind = Counter | Gauge | Histogram

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let kind_of_string = function
  | "counter" -> Some Counter
  | "gauge" -> Some Gauge
  | "histogram" -> Some Histogram
  | _ -> None

type entry = { name : string; kind : kind; line : int }

type registration = {
  r_name : string;
  r_kind : kind;
  r_file : string;
  r_line : int;
}

let update_hint = "run `prio_lint --update-metrics` and review the diff"

(* --- collection ------------------------------------------------------- *)

(* A registration is an application of [counter]/[gauge]/[histogram] from
   a module spelled [Metrics] or [Obs_metrics] (every call site goes
   through one of those aliases of [Prio_obs.Metrics]) to a literal
   string. Computed names would be invisible to this rule — and to every
   grep over the ledger — which is exactly why the codebase doesn't use
   them. *)
let collect_structure ~file (str : structure) : registration list =
  let acc = ref [] in
  let kind_of_fn = function
    | "counter" -> Some Counter
    | "gauge" -> Some Gauge
    | "histogram" -> Some Histogram
    | _ -> None
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = lid; _ }; _ },
                ( Asttypes.Nolabel,
                  {
                    pexp_desc = Pexp_constant (Pconst_string (name, _, _));
                    pexp_loc;
                    _;
                  } )
                :: _ ) -> (
            match List.rev (Longident.flatten lid) with
            | fn :: qualifier :: _
              when qualifier = "Metrics" || qualifier = "Obs_metrics" -> (
              match kind_of_fn fn with
              | Some r_kind ->
                acc :=
                  {
                    r_name = name;
                    r_kind;
                    r_file = file;
                    r_line = pexp_loc.Location.loc_start.Lexing.pos_lnum;
                  }
                  :: !acc
              | None -> ())
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.Ast_iterator.structure it str;
  List.rev !acc

(* Walk the tree and collect every registration; files that do not parse
   are skipped here (the per-file [parse-error] rule already reports
   them). *)
let measure ~root ~dirs : registration list =
  let read path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  List.concat_map
    (fun path ->
      if not (Filename.check_suffix path ".ml") then []
      else
        match
          Driver.parse_implementation ~path (read (Filename.concat root path))
        with
        | Ok str -> collect_structure ~file:path str
        | Error _ -> [])
    (Driver.source_files ~root dirs)

(* --- ledger file format ----------------------------------------------- *)

(* "<name> kind=<counter|gauge|histogram>", one per line; '#' comments. *)
let parse ~file (contents : string) : (entry list, Diagnostic.t) result =
  let err line msg =
    Error (Diagnostic.make ~file ~line ~col:0 ~rule:Rules.metric_registry msg)
  in
  let lines = String.split_on_char '\n' contents in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      let l =
        match String.index_opt l '#' with
        | Some i -> String.sub l 0 i
        | None -> l
      in
      match String.split_on_char ' ' (String.trim l) with
      | [ "" ] -> go acc (lineno + 1) rest
      | [ name; k ] -> (
        match String.split_on_char '=' k with
        | [ "kind"; k ] -> (
          match kind_of_string k with
          | Some kind ->
            go ({ name; kind; line = lineno } :: acc) (lineno + 1) rest
          | None -> err lineno "kind= must be counter, gauge, or histogram")
        | _ -> err lineno "expected `<name> kind=<kind>`")
      | _ -> err lineno "expected `<name> kind=<kind>`")
  in
  go [] 1 lines

let format (entries : entry list) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "# Every metric name the codebase registers (Metrics.counter / gauge /\n\
     # histogram call sites) — the metric-registry lint fails on any drift\n\
     # from this exact set: dashboards and scrape configs key on these\n\
     # names. Re-pin with `prio_lint --update-metrics` and review the diff.\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%s kind=%s\n" e.name (kind_to_string e.kind)))
    entries;
  Buffer.contents b

(* Collapse registrations (one per call site, the same name may be
   registered from several modules) to one sorted entry per name; a name
   registered under two different kinds is reported through [check]. *)
let dedup (regs : registration list) : entry list =
  List.sort_uniq compare
    (List.map (fun r -> (r.r_name, r.r_kind)) regs)
  |> List.map (fun (name, kind) -> { name; kind; line = 0 })
  |> List.sort (fun a b -> compare a.name b.name)

(* --- the diff ---------------------------------------------------------- *)

(** Exact-pin diff of the collected registrations against the checked-in
    ledger. Every divergence is an error. *)
let check ~file ~(ledger : entry list) ~(measured : registration list) :
    Diagnostic.t list =
  let diag ?(line = 1) msg =
    Diagnostic.make ~file ~line ~col:0 ~rule:Rules.metric_registry msg
  in
  let conflicts =
    (* one name, two kinds: broken regardless of what the ledger says *)
    List.filter_map
      (fun r ->
        match
          List.find_opt
            (fun r' -> r'.r_name = r.r_name && r'.r_kind <> r.r_kind)
            measured
        with
        | Some r' when r.r_file < r'.r_file
                       || (r.r_file = r'.r_file && r.r_line < r'.r_line) ->
          Some
            (diag
               (Printf.sprintf
                  "metric %s registered as %s (%s:%d) and as %s (%s:%d)"
                  r.r_name (kind_to_string r.r_kind) r.r_file r.r_line
                  (kind_to_string r'.r_kind) r'.r_file r'.r_line))
        | _ -> None)
      measured
  in
  let entries = dedup measured in
  let unledgered =
    List.filter_map
      (fun (e : entry) ->
        match List.find_opt (fun (l : entry) -> l.name = e.name) ledger with
        | None ->
          let site =
            match List.find_opt (fun r -> r.r_name = e.name) measured with
            | Some r -> Printf.sprintf " (registered at %s:%d)" r.r_file r.r_line
            | None -> ""
          in
          Some
            (diag
               (Printf.sprintf "metric %s kind=%s has no ledger entry%s; %s"
                  e.name (kind_to_string e.kind) site update_hint))
        | Some l when l.kind <> e.kind ->
          Some
            (diag ~line:l.line
               (Printf.sprintf
                  "metric %s changed kind: ledger says %s, code registers %s; \
                   %s"
                  e.name (kind_to_string l.kind) (kind_to_string e.kind)
                  update_hint))
        | Some _ -> None)
      entries
  in
  let stale =
    List.filter_map
      (fun (l : entry) ->
        if List.exists (fun (e : entry) -> e.name = l.name) entries then None
        else
          Some
            (diag ~line:l.line
               (Printf.sprintf
                  "ledger entry %s matches no registration in the code; %s"
                  l.name update_hint)))
      ledger
  in
  conflicts @ unledgered @ stale

(* Inline suppressions: a comment [(* prio-lint: allow <rule-id> ... *)]
   waives diagnostics of the named rule(s) on the comment's own line and on
   the line immediately after it (so the comment can sit above the
   offending expression). Parsed textually from the raw source rather than
   from the lexer's comment stream: it is simpler, works even on files that
   fail to parse, and the marker syntax is rigid enough that false matches
   are not a concern. *)

type t = {
  (* (line, rule) pairs at which the rule is waived *)
  waived : (int * string, unit) Hashtbl.t;
}

let marker = "prio-lint: allow"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

(* Rule ids listed after the marker, separated by spaces or commas, up to
   the end of the comment (or line). *)
let ids_after line start =
  let n = String.length line in
  let rec skip i = if i < n && (line.[i] = ' ' || line.[i] = ',') then skip (i + 1) else i in
  let rec take i = if i < n && is_ident_char line.[i] then take (i + 1) else i in
  let rec go acc i =
    let i = skip i in
    if i >= n || line.[i] = '*' then List.rev acc
    else
      let j = take i in
      if j = i then List.rev acc
      else go (String.sub line i (j - i) :: acc) j
  in
  go [] start

let find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let of_source src =
  let waived = Hashtbl.create 8 in
  let add line rule =
    Hashtbl.replace waived (line, rule) ();
    Hashtbl.replace waived (line + 1, rule) ()
  in
  List.iteri
    (fun idx line ->
      match find_sub line marker with
      | None -> ()
      | Some stop ->
        List.iter (fun rule -> add (idx + 1) rule) (ids_after line stop))
    (String.split_on_char '\n' src);
  { waived }

let active t ~line ~rule = Hashtbl.mem t.waived (line, rule)

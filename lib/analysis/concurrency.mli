(** The [domain-unsafe-state] pass: flag unguarded uses of inventoried
    module-level mutable state ({!Mutstate}) from code reachable from a
    domain-entry point ([Domain.spawn], [Pool.submit]/[map_array],
    [Parallel.process], [Pipeline.process_parallel]).

    Recognized guards: bodies that take [Mutex.lock]/[Mutex.protect] or
    use [Domain.DLS] directly; argument subtrees of calls to such
    functions, with the guard set closed under a fixpoint over
    lock-wrapper functions. Local aliases of shared state (bound by
    [let]/[match]) are tracked so mutable-field writes through them are
    flagged too. *)

val spawn_fn_ids : string list
(** Canonical ids of the repo's own fan-out primitives. *)

val run : Callgraph.t -> Rules.finding list
(** All findings across the graph, sorted and deduplicated; finding
    locations carry the owning file in [pos_fname]. *)

(* prio-cli: run a simulated Prio deployment from the command line.

   Examples:
     dune exec bin/prio_cli.exe -- count --clients 200
     dune exec bin/prio_cli.exe -- sum --bits 8 --clients 100 --servers 3
     dune exec bin/prio_cli.exe -- histogram --buckets 12 --clients 500 --dp-epsilon 1.0
     dune exec bin/prio_cli.exe -- regression --dims 3 --clients 150 --mpc *)

open Cmdliner
open Core
module P = Prio.Make (Prio.F87)

type opts = {
  servers : int;
  clients : int;
  seed : string;
  mpc : bool;
  dp_epsilon : float option;
}

let deploy opts afe =
  let rng = Prio.Rng.of_string_seed opts.seed in
  let mode = if opts.mpc then P.Cluster.Robust_mpc else P.Cluster.Robust_snip in
  (rng, P.deploy ~mode ~num_servers:opts.servers ~rng afe)

let dp_alpha opts ~sensitivity =
  Option.map
    (fun epsilon -> Prio.Dp.alpha_of_epsilon ~epsilon ~sensitivity)
    opts.dp_epsilon

let report stats =
  Printf.printf "\naccepted: %d   rejected: %d   server-to-server bytes: %d\n"
    stats.P.accepted stats.P.rejected stats.P.server_bytes

(* ------------------------------ commands ---------------------------- *)

let run_count opts =
  let rng, d = deploy opts P.Afe_sum.count_bits in
  let values = List.init opts.clients (fun _ -> Prio.Rng.bool rng) in
  let count, stats =
    P.collect ?dp_alpha:(dp_alpha opts ~sensitivity:1) d values
  in
  let true_count = List.length (List.filter Fun.id values) in
  Printf.printf "private count: %d (true: %d)\n" count true_count;
  report stats

let run_sum opts bits =
  let rng, d = deploy opts (P.Afe_sum.sum ~bits) in
  let values = List.init opts.clients (fun _ -> Prio.Rng.int_below rng (1 lsl bits)) in
  let total, stats =
    P.collect ?dp_alpha:(dp_alpha opts ~sensitivity:((1 lsl bits) - 1)) d values
  in
  let true_total = List.fold_left ( + ) 0 values in
  Printf.printf "private sum of %d %d-bit values: %s (true: %d)\n" opts.clients
    bits (Prio.Bigint.to_string total) true_total;
  report stats

let run_histogram opts buckets =
  let rng, d = deploy opts (P.Afe_histogram.histogram ~buckets) in
  (* skewed synthetic distribution *)
  let values =
    List.init opts.clients (fun _ ->
        let a = Prio.Rng.int_below rng buckets
        and b = Prio.Rng.int_below rng buckets in
        Stdlib.min a b)
  in
  let counts, stats = P.collect ?dp_alpha:(dp_alpha opts ~sensitivity:1) d values in
  Printf.printf "private histogram over %d buckets:\n" buckets;
  Array.iteri
    (fun i c ->
      Printf.printf "  %3d: %5d %s\n" i c (String.make (Stdlib.min 60 (Stdlib.max 0 c)) '#'))
    counts;
  report stats

let run_regression opts dims =
  let bits = 10 in
  let rng, d = deploy opts (P.Afe_regression.least_squares ~d:dims ~bits) in
  (* ground truth: y = 25 + sum_j (j+1) x_j, features 10-bit *)
  let values =
    List.init opts.clients (fun _ ->
        let features = Array.init dims (fun _ -> Prio.Rng.int_below rng 64) in
        let target =
          25 + Array.fold_left ( + ) 0 (Array.mapi (fun j x -> (j + 1) * x) features)
        in
        P.Afe_regression.{ features; target })
  in
  let coefs, stats = P.collect d values in
  Printf.printf "private least-squares fit over %d clients:\n  y = %.3f" opts.clients coefs.(0);
  for j = 1 to dims do
    Printf.printf " %+.3f*x%d" coefs.(j) j
  done;
  print_string "\n  (truth: y = 25";
  for j = 1 to dims do
    Printf.printf " %+d*x%d" j j
  done;
  print_endline ")";
  report stats

let run_stream opts bits epoch_size =
  let rng = Prio.Rng.of_string_seed opts.seed in
  let afe = P.Afe_sum.sum ~bits in
  let mode = if opts.mpc then P.Cluster.Robust_mpc else P.Cluster.Robust_snip in
  let master = Prio.Rng.bytes rng 32 in
  let cluster =
    P.Cluster.create ~epoch_size ~rng ~mode ~circuit:afe.P.Afe.circuit
      ~trunc_len:afe.P.Afe.trunc_len ~num_servers:opts.servers ~master ()
  in
  let peak = ref 0 and true_total = ref 0 in
  for i = 0 to opts.clients - 1 do
    let x = Prio.Rng.int_below rng (1 lsl bits) in
    let pk =
      P.Client.submit ~rng
        ~mode:(P.Cluster.client_mode cluster)
        ~num_servers:opts.servers ~client_id:i ~master
        (afe.P.Afe.encode ~rng x)
    in
    if P.Cluster.submit cluster ~client_id:i pk then
      true_total := !true_total + x;
    peak := Stdlib.max !peak (P.Cluster.resident_entries cluster)
  done;
  let total =
    afe.P.Afe.decode ~n:cluster.P.Cluster.accepted (P.Cluster.publish cluster)
  in
  Printf.printf
    "streamed %d %d-bit values through %d servers (epoch size %d):\n\
    \  epochs rotated: %d\n\
    \  resident per-submission entries: %d now, %d peak (bound %d)\n\
    \  private sum: %s (true: %d)\n\
    \  accepted: %d   rejected: %d\n"
    opts.clients bits opts.servers epoch_size cluster.P.Cluster.epoch
    (P.Cluster.resident_entries cluster)
    !peak
    (if epoch_size = 0 then !peak else opts.servers * epoch_size)
    (Prio.Bigint.to_string total) !true_total cluster.P.Cluster.accepted
    cluster.P.Cluster.rejected

(* ----------------------------- circuits ------------------------------ *)

(* Proof-share size for a circuit with m mul gates (see Snip):
   2 masks + 2N h-points + 3 Beaver elements, N = next_pow2(m+1). *)
let proof_elems m = if m = 0 then 0 else 2 + (2 * P.Ntt.next_pow2 (m + 1)) + 3

(* Per-AFE gate census before/after optimization, over the zoo's
   specimen list — the human-readable view of what the circuit-budget
   lint pins. *)
let run_circuit format =
  let module Z = P.Afe_zoo in
  let module CA = P.Circuit_analysis in
  let rows =
    List.map
      (fun e ->
        (e.Z.name, e.Z.family, CA.census e.Z.raw, CA.census e.Z.optimized))
      (Z.all ())
  in
  match format with
  | `Text ->
    Printf.printf "%-22s %-12s %6s | %5s %5s %5s | %5s %5s %5s | %s\n" "name"
      "family" "inputs" "wires" "muls" "asserts" "wires" "muls" "asserts"
      "proof elems";
    Printf.printf "%-22s %-12s %6s | %17s %s | %17s %s | %s\n" "" "" ""
      "raw" "" "optimized" "" "raw -> opt";
    List.iter
      (fun (name, family, r, o) ->
        Printf.printf
          "%-22s %-12s %6d | %5d %5d %5d | %5d %5d %5d | %4d -> %d\n" name
          family r.CA.inputs r.CA.wires r.CA.muls r.CA.asserts o.CA.wires
          o.CA.muls o.CA.asserts (proof_elems r.CA.muls) (proof_elems o.CA.muls))
      rows
  | `Json ->
    let side c =
      Printf.sprintf
        "{\"wires\": %d, \"muls\": %d, \"asserts\": %d, \"proof_elements\": %d}"
        c.CA.wires c.CA.muls c.CA.asserts (proof_elems c.CA.muls)
    in
    print_string "[";
    List.iteri
      (fun i (name, family, r, o) ->
        if i > 0 then print_string ",";
        Printf.printf
          "\n  {\"name\": %S, \"family\": %S, \"inputs\": %d, \"raw\": %s, \
           \"optimized\": %s}"
          name family r.CA.inputs (side r) (side o))
      rows;
    print_endline "\n]"

(* --------------------------- observability --------------------------- *)

(* A small end-to-end run (sum of 4-bit values) that exercises every
   pipeline phase in-process, so its metrics and trace show the full
   span taxonomy: client.prepare/prove/share/seal, cluster.submit,
   server.snip_verify/aggregate/publish. *)
let observed_workload opts =
  let bits = 4 in
  let rng, d = deploy opts (P.Afe_sum.sum ~bits) in
  let values =
    List.init opts.clients (fun _ -> Prio.Rng.int_below rng (1 lsl bits))
  in
  ignore (P.collect d values)

let run_metrics opts format =
  Prio.Obs_metrics.reset ();
  observed_workload opts;
  (match format with
  | `Summary -> print_string (Prio.Obs_report.summary ())
  | `Prometheus -> print_string (Prio.Obs_report.prometheus ())
  | `Json -> print_endline (Prio.Obs_report.json ()));
  Printf.eprintf
    "# metrics from one in-process run (%d clients, %d servers); see docs/OBSERVABILITY.md\n"
    opts.clients opts.servers

(* ------------------------------- top --------------------------------- *)

(* Parse Prometheus exposition text into a (name -> value) table, keeping
   only the scalar series (counters, gauges, histogram _sum/_count) —
   enough for a per-interval diff view. *)
let parse_prometheus text =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> '#' && not (String.contains line '{')
      then
        match String.index_opt line ' ' with
        | None -> ()
        | Some i -> (
          let name = String.sub line 0 i in
          match
            float_of_string_opt
              (String.sub line (i + 1) (String.length line - i - 1))
          with
          | Some v -> Hashtbl.replace tbl name v
          | None -> ()))
    (String.split_on_char '\n' text);
  tbl

(* Live-scrape demo: launch a real TCP deployment (one OS process per
   server), drive submissions between scrapes, and pull each server's
   metrics registry over the wire ([q] frames) — rendering what moved
   per interval, plus a health-probe ([h]) line per server. *)
let run_top opts intervals period =
  let module T = Prio.Transport in
  let rng = Prio.Rng.of_string_seed opts.seed in
  let afe = P.Afe_sum.sum ~bits:4 in
  let master = Prio.Rng.bytes rng 32 in
  let batch_seed = Prio.Rng.bytes rng 32 in
  let cfg =
    {
      P.Net.circuit = afe.P.Afe.circuit;
      trunc_len = afe.P.Afe.trunc_len;
      num_servers = opts.servers;
      master;
      batch_seed;
    }
  in
  let tuning =
    { T.default_tuning with io_timeout = 2.0; dial_timeout = 1.0;
      select_tick = 0.02 }
  in
  let d = P.Net.launch ~tuning cfg in
  Fun.protect ~finally:(fun () -> P.Net.shutdown d) @@ fun () ->
  let n = opts.servers in
  let prev = Array.init n (fun _ -> Hashtbl.create 0) in
  let next_id = ref 0 in
  let watched =
    [
      "prio_net_rx_frames_total";
      "prio_net_tx_bytes_total";
      "prio_stage_admit_seconds_count";
      "prio_stage_verify_seconds_count";
      "prio_stage_aggregate_seconds_count";
      "prio_net_pending_depth";
    ]
  in
  for it = 1 to intervals do
    let per = max 1 (opts.clients / intervals) in
    for _ = 1 to per do
      let cid = !next_id in
      incr next_id;
      ignore
        (P.Net.submit d ~rng ~client_id:cid
           (afe.P.Afe.encode ~rng (Prio.Rng.int_below rng 16)))
    done;
    if period > 0. then Prio.Retry.sleep period;
    Printf.printf "--- interval %d: +%d submissions ---\n" it per;
    Printf.printf "%-40s" "metric (delta this interval)";
    for i = 0 to n - 1 do
      Printf.printf " %10s" (Printf.sprintf "srv%d" i)
    done;
    print_newline ();
    let scrapes =
      Array.init n (fun i ->
          match T.scrape_metrics ~tuning d.P.Net.addrs.(i) with
          | Ok text -> parse_prometheus text
          | Error _ -> Hashtbl.create 0)
    in
    List.iter
      (fun name ->
        Printf.printf "%-40s" name;
        for i = 0 to n - 1 do
          let get t = Option.value ~default:0. (Hashtbl.find_opt t name) in
          Printf.printf " %10.0f" (get scrapes.(i) -. get prev.(i))
        done;
        print_newline ())
      watched;
    Array.blit scrapes 0 prev 0 n;
    for i = 0 to n - 1 do
      match T.probe_health ~tuning d.P.Net.addrs.(i) with
      | Ok h ->
        Printf.printf "srv%d  epoch=%d pending=%d accepted=%d%s%s\n" i
          h.T.h_epoch h.T.h_pending h.T.h_accepted
          (match h.T.h_ckpt_age with
          | None -> ""
          | Some a -> Printf.sprintf " ckpt_age=%.1fs" a)
          (match h.T.h_peers with
          | [] -> ""
          | peers ->
            " links="
            ^ String.concat ","
                (List.map
                   (fun (j, up) ->
                     Printf.sprintf "%d:%s" j (if up then "up" else "down"))
                   peers))
      | Error e ->
        Printf.printf "srv%d  unreachable (%s)\n" i
          (T.string_of_protocol_error e)
    done
  done

let run_trace opts format =
  let recorder = Prio.Obs_trace.create ~capacity:65536 () in
  Prio.Obs_trace.install recorder;
  Fun.protect ~finally:Prio.Obs_trace.uninstall (fun () ->
      observed_workload opts);
  match format with
  | `Tree -> print_string (Prio.Obs_trace.tree recorder)
  | `Jsonl -> print_string (Prio.Obs_trace.to_jsonl recorder)

(* ------------------------------- terms ------------------------------ *)

let opts_term =
  let servers =
    Arg.(value & opt int 5 & info [ "servers"; "s" ] ~doc:"Number of servers.")
  in
  let clients =
    Arg.(value & opt int 100 & info [ "clients"; "n" ] ~doc:"Number of clients.")
  in
  let seed =
    Arg.(value & opt string "prio-cli" & info [ "seed" ] ~doc:"Deterministic RNG seed.")
  in
  let mpc =
    Arg.(value & flag & info [ "mpc" ] ~doc:"Use the Prio-MPC (server-side Valid) variant.")
  in
  let dp =
    Arg.(
      value
      & opt (some float) None
      & info [ "dp-epsilon" ] ~doc:"Add distributed differential-privacy noise with this ε.")
  in
  let make servers clients seed mpc dp_epsilon =
    { servers; clients; seed; mpc; dp_epsilon }
  in
  Term.(const make $ servers $ clients $ seed $ mpc $ dp)

let count_cmd =
  Cmd.v (Cmd.info "count" ~doc:"Privately count clients holding a true bit.")
    Term.(const run_count $ opts_term)

let sum_cmd =
  let bits = Arg.(value & opt int 8 & info [ "bits" ] ~doc:"Bit width of values.") in
  Cmd.v (Cmd.info "sum" ~doc:"Privately sum b-bit integers.")
    Term.(const run_sum $ opts_term $ bits)

let histogram_cmd =
  let buckets = Arg.(value & opt int 10 & info [ "buckets" ] ~doc:"Histogram buckets.") in
  Cmd.v (Cmd.info "histogram" ~doc:"Privately collect a frequency histogram.")
    Term.(const run_histogram $ opts_term $ buckets)

let regression_cmd =
  let dims = Arg.(value & opt int 3 & info [ "dims"; "d" ] ~doc:"Feature dimensions.") in
  Cmd.v (Cmd.info "regression" ~doc:"Privately train a least-squares model.")
    Term.(const run_regression $ opts_term $ dims)

let stream_cmd =
  let bits =
    Arg.(value & opt int 8 & info [ "bits" ] ~doc:"Bit width of values.")
  in
  let epoch_size =
    Arg.(
      value
      & opt int 64
      & info [ "epoch-size" ]
          ~doc:
            "Submissions per replay/idempotency epoch; per-submission \
             server state is dropped at each boundary. 0 disables rotation.")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Privately sum a stream of b-bit integers with per-epoch table \
          rotation, reporting epochs rotated and peak resident state \
          (constant-memory streaming aggregation).")
    Term.(const run_stream $ opts_term $ bits $ epoch_size)

let circuit_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json).")
  in
  Cmd.v
    (Cmd.info "circuit"
       ~doc:
         "Print the per-AFE Valid-circuit gate census before and after \
          the circuit optimizer (the counts the circuit-budget lint \
          pins).")
    Term.(const run_circuit $ format)

let metrics_cmd =
  let format =
    Arg.(
      value
      & opt
          (enum
             [ ("summary", `Summary); ("prometheus", `Prometheus);
               ("json", `Json) ])
          `Summary
      & info [ "format" ]
          ~doc:"Output format: $(b,summary), $(b,prometheus) or $(b,json).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a small in-process deployment and print the Obs metrics \
          snapshot; the default summary shows p50/p95/p99 latency \
          estimates per histogram.")
    Term.(const run_metrics $ opts_term $ format)

let top_cmd =
  let intervals =
    Arg.(value & opt int 3 & info [ "intervals" ] ~doc:"Scrape intervals.")
  in
  let period =
    Arg.(
      value
      & opt float 0.0
      & info [ "period" ] ~doc:"Extra seconds to sleep between scrapes.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Launch a real TCP deployment (one OS process per server), drive \
          submissions, and live-scrape every server's metrics over the \
          wire, showing a per-interval diff table and a health-probe line \
          per server.")
    Term.(const run_top $ opts_term $ intervals $ period)

let trace_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("tree", `Tree); ("jsonl", `Jsonl) ]) `Tree
      & info [ "format" ] ~doc:"Output format: $(b,tree) or $(b,jsonl).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a small in-process deployment under the span recorder and \
          print the trace (client.prepare through server.publish).")
    Term.(const run_trace $ opts_term $ format)

let () =
  let info =
    Cmd.info "prio-cli" ~version:"1.0.0"
      ~doc:"Private aggregate statistics with the Prio protocol (NSDI 2017)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            count_cmd;
            sum_cmd;
            histogram_cmd;
            regression_cmd;
            circuit_cmd;
            stream_cmd;
            metrics_cmd;
            trace_cmd;
            top_cmd;
          ]))

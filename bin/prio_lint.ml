(* prio_lint: static analysis enforcing the repo's constant-time,
   determinism, error-discipline, and domain-safety invariants. See
   docs/ANALYSIS.md.

   Usage: prio_lint [--root DIR] [--baseline FILE] [--rule ID]
                    [--format text|json] [--circuit-budgets FILE]
                    [--update-budgets] [--metrics-ledger FILE]
                    [--update-metrics] DIR...

   Emits "file:line:col: [rule-id] message" per finding (or one JSON
   array with --format json) and exits non-zero if any Error-severity
   finding survives suppressions and the baseline.

   --circuit-budgets FILE additionally measures the optimized circuit of
   every AFE-zoo specimen and diffs mul/wire counts against the
   checked-in ledger (rule circuit-budget, exact-pin: regressions AND
   unexpected improvements fail). --update-budgets rewrites the ledger
   from the measurement instead of checking.

   --metrics-ledger FILE additionally collects every metric name the
   tree registers (Metrics.counter/gauge/histogram call sites) and
   diffs the set against the checked-in ledger (rule metric-registry,
   exact-pin: unledgered metrics, stale entries, and kind changes all
   fail). --update-metrics rewrites the ledger from the collection
   instead of checking. *)

module D = Prio_analysis.Diagnostic
module Budget = Prio_analysis.Budget
module Metricreg = Prio_analysis.Metricreg

(* The specimens are measured over one concrete field; gate counts are
   field-independent (the builders never branch on |F|), so any instance
   serves. *)
let measure_circuits () : Budget.entry list =
  let module Z = Prio_afe.Zoo.Make (Prio_field.F87) in
  List.map
    (fun e ->
      {
        Budget.name = e.Z.name;
        mul = Z.C.num_mul_gates e.Z.optimized;
        wires = Z.C.num_wires e.Z.optimized;
        line = 0;
      })
    (Z.all ())

let () =
  let root = ref "." in
  let baseline = ref "" in
  let format = ref "text" in
  let rules = ref [] in
  let dirs = ref [] in
  let budget_file = ref "" in
  let update_budgets = ref false in
  let metrics_file = ref "" in
  let update_metrics = ref false in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root (default: .)");
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE baseline of waived diagnostics" );
      ( "--rule",
        Arg.String (fun r -> rules := r :: !rules),
        "ID only report findings of this rule (repeatable)" );
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun f -> format := f),
        " output format (default: text)" );
      ( "--circuit-budgets",
        Arg.Set_string budget_file,
        "FILE gate-budget ledger to check the AFE zoo against" );
      ( "--update-budgets",
        Arg.Set update_budgets,
        " rewrite the ledger from measured counts instead of checking" );
      ( "--metrics-ledger",
        Arg.Set_string metrics_file,
        "FILE metric-name ledger to check the tree's registrations against"
      );
      ( "--update-metrics",
        Arg.Set update_metrics,
        " rewrite the metric ledger from collected names instead of checking"
      );
    ]
  in
  Arg.parse spec
    (fun d -> dirs := d :: !dirs)
    "prio_lint [--root DIR] [--baseline FILE] [--rule ID] [--format \
     text|json] [--circuit-budgets FILE] [--update-budgets] \
     [--metrics-ledger FILE] [--update-metrics] DIR...";
  let lint_dirs () =
    match List.rev !dirs with
    | [] -> [ "lib"; "bin"; "bench"; "examples" ]
    | ds -> ds
  in
  if !update_metrics then begin
    let file = if !metrics_file = "" then ".prio-metrics" else !metrics_file in
    let entries =
      Metricreg.dedup (Metricreg.measure ~root:!root ~dirs:(lint_dirs ()))
    in
    let oc = open_out file in
    output_string oc (Metricreg.format entries);
    close_out oc;
    Printf.printf "prio_lint: wrote %d metric names to %s\n"
      (List.length entries) file;
    exit 0
  end;
  if !update_budgets then begin
    let file =
      if !budget_file = "" then ".prio-circuit-budgets" else !budget_file
    in
    let measured = measure_circuits () in
    let oc = open_out file in
    output_string oc (Budget.format measured);
    close_out oc;
    Printf.printf "prio_lint: wrote %d circuit budgets to %s\n"
      (List.length measured) file;
    exit 0
  end;
  let dirs = lint_dirs () in
  let baseline =
    if !baseline = "" then Prio_analysis.Baseline.empty
    else Prio_analysis.Baseline.load !baseline
  in
  let budget_diags =
    if !budget_file = "" then []
    else begin
      let contents =
        let ic = open_in !budget_file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Budget.parse ~file:!budget_file contents with
      | Error d -> [ d ]
      | Ok budget ->
        Budget.check ~file:!budget_file ~budget ~measured:(measure_circuits ())
    end
  in
  let metric_diags =
    if !metrics_file = "" then []
    else begin
      let contents =
        let ic = open_in !metrics_file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Metricreg.parse ~file:!metrics_file contents with
      | Error d -> [ d ]
      | Ok ledger ->
        Metricreg.check ~file:!metrics_file ~ledger
          ~measured:(Metricreg.measure ~root:!root ~dirs)
    end
  in
  let diags =
    budget_diags @ metric_diags
    @ Prio_analysis.Driver.lint_tree ~baseline ~root:!root ~dirs ()
  in
  let diags =
    match !rules with
    | [] -> diags
    | only -> List.filter (fun d -> List.mem d.D.rule only) diags
  in
  (match !format with
  | "json" ->
    print_string "[";
    List.iteri
      (fun i d ->
        if i > 0 then print_string ",";
        print_string "\n  ";
        print_string (D.to_json d))
      diags;
    if diags <> [] then print_string "\n";
    print_endline "]"
  | _ -> List.iter (fun d -> print_endline (D.to_string d)) diags);
  let errors = List.length (List.filter D.is_error diags) in
  let warnings = List.length diags - errors in
  if diags <> [] then
    Printf.eprintf "prio_lint: %d error(s), %d warning(s)\n%!" errors warnings;
  exit (if errors > 0 then 1 else 0)

(* prio_lint: static analysis enforcing the repo's constant-time,
   determinism, error-discipline, and domain-safety invariants. See
   docs/ANALYSIS.md.

   Usage: prio_lint [--root DIR] [--baseline FILE] [--rule ID]
                    [--format text|json] DIR...

   Emits "file:line:col: [rule-id] message" per finding (or one JSON
   array with --format json) and exits non-zero if any Error-severity
   finding survives suppressions and the baseline. *)

module D = Prio_analysis.Diagnostic

let () =
  let root = ref "." in
  let baseline = ref "" in
  let format = ref "text" in
  let rules = ref [] in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root (default: .)");
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE baseline of waived diagnostics" );
      ( "--rule",
        Arg.String (fun r -> rules := r :: !rules),
        "ID only report findings of this rule (repeatable)" );
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun f -> format := f),
        " output format (default: text)" );
    ]
  in
  Arg.parse spec
    (fun d -> dirs := d :: !dirs)
    "prio_lint [--root DIR] [--baseline FILE] [--rule ID] [--format \
     text|json] DIR...";
  let dirs =
    match List.rev !dirs with
    | [] -> [ "lib"; "bin"; "bench"; "examples" ]
    | ds -> ds
  in
  let baseline =
    if !baseline = "" then Prio_analysis.Baseline.empty
    else Prio_analysis.Baseline.load !baseline
  in
  let diags =
    Prio_analysis.Driver.lint_tree ~baseline ~root:!root ~dirs ()
  in
  let diags =
    match !rules with
    | [] -> diags
    | only -> List.filter (fun d -> List.mem d.D.rule only) diags
  in
  (match !format with
  | "json" ->
    print_string "[";
    List.iteri
      (fun i d ->
        if i > 0 then print_string ",";
        print_string "\n  ";
        print_string (D.to_json d))
      diags;
    if diags <> [] then print_string "\n";
    print_endline "]"
  | _ -> List.iter (fun d -> print_endline (D.to_string d)) diags);
  let errors = List.length (List.filter D.is_error diags) in
  let warnings = List.length diags - errors in
  if diags <> [] then
    Printf.eprintf "prio_lint: %d error(s), %d warning(s)\n%!" errors warnings;
  exit (if errors > 0 then 1 else 0)

(* prio_lint: static analysis enforcing the repo's constant-time,
   determinism, and error-discipline invariants. See docs/ANALYSIS.md.

   Usage: prio_lint [--root DIR] [--baseline FILE] DIR...

   Emits "file:line:col: [rule-id] message" per finding and exits non-zero
   if any Error-severity finding survives suppressions and the baseline. *)

module D = Prio_analysis.Diagnostic

let () =
  let root = ref "." in
  let baseline = ref "" in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root (default: .)");
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE baseline of waived diagnostics" );
    ]
  in
  Arg.parse spec
    (fun d -> dirs := d :: !dirs)
    "prio_lint [--root DIR] [--baseline FILE] DIR...";
  let dirs =
    match List.rev !dirs with
    | [] -> [ "lib"; "bin"; "bench"; "examples" ]
    | ds -> ds
  in
  let baseline =
    if !baseline = "" then Prio_analysis.Baseline.empty
    else Prio_analysis.Baseline.load !baseline
  in
  let diags =
    Prio_analysis.Driver.lint_tree ~baseline ~root:!root ~dirs ()
  in
  List.iter (fun d -> print_endline (D.to_string d)) diags;
  let errors = List.length (List.filter D.is_error diags) in
  let warnings = List.length diags - errors in
  if diags <> [] then
    Printf.eprintf "prio_lint: %d error(s), %d warning(s)\n%!" errors warnings;
  exit (if errors > 0 then 1 else 0)

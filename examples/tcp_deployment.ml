(* A fault-tolerant multi-process deployment: five Prio server processes
   on loopback TCP sockets, clients uploading sealed packets through a
   deliberately lossy wire (seeded fault injection + retry with backoff),
   a follower SIGKILLed mid-run with the leader degrading gracefully, and
   the supervisor detecting and restarting the dead process.

   Run with: dune exec examples/tcp_deployment.exe *)

open Core
module P = Prio.Make (Prio.F87)
module Net = P.Net
module T = Prio.Transport
module Faults = Prio.Faults
module Retry = Prio.Retry

let () =
  let rng = Prio.Rng.of_string_seed "tcp-example" in
  let afe = P.Afe_sum.sum ~bits:8 in
  let cfg =
    Net.
      {
        circuit = afe.P.Afe.circuit;
        trunc_len = afe.P.Afe.trunc_len;
        num_servers = 5;
        master = Prio.Rng.bytes rng 32;
        batch_seed = Prio.Rng.bytes rng 32;
      }
  in
  (* short deadlines: a dropped frame costs [io_timeout] of real waiting *)
  let tuning =
    T.
      {
        default_tuning with
        io_timeout = 0.4;
        dial_timeout = 1.0;
        select_tick = 0.02;
        backoff =
          Retry.
            {
              default_backoff with
              max_attempts = 8;
              base_delay = 0.01;
              max_delay = 0.1;
            };
      }
  in
  let d = Net.launch ~tuning cfg in
  Printf.printf "launched %d server processes (pids:%s)\n" cfg.Net.num_servers
    (Array.fold_left (fun acc pid -> acc ^ " " ^ string_of_int pid) "" d.Net.pids);

  (* --- honest clients over a lossy wire: every frame has a 10% chance
     of silently vanishing; retries + idempotent servers get them all
     through, and nothing is double-counted --- *)
  let faults = Faults.create ~seed:"lossy-wire" (Faults.drop 0.1) in
  let values = List.init 12 (fun i -> (i * 13) mod 256) in
  let accepted = ref 0 in
  List.iteri
    (fun i x ->
      match
        Net.submit_outcome ~faults d ~rng ~client_id:i (afe.P.Afe.encode ~rng x)
      with
      | Net.Accepted -> incr accepted
      | Net.Rejected why -> Printf.printf "  client %d rejected: %s\n" i why
      | Net.Unreachable e ->
        Printf.printf "  client %d unreachable: %s\n" i
          (T.string_of_protocol_error e))
    values;
  Printf.printf "lossy wire: %d/%d accepted (%d frames faulted, all retried)\n"
    !accepted (List.length values) (Faults.injected faults);

  (* a malicious client tries its luck against the real wire protocol *)
  let bad = afe.P.Afe.encode ~rng 3 in
  bad.(0) <- P.Field.of_int 100_000;
  let cheater_ok = Net.submit d ~rng ~client_id:9999 bad in
  Printf.printf "cheating client accepted: %b\n" cheater_ok;

  (* collect before the crash drill: shares on a killed server die with it *)
  let accumulators =
    match Net.collect_aggregate d with
    | Ok v -> v
    | Error (i, e) ->
      Printf.eprintf "server %d unreachable: %s\n"
        i (Prio.Transport.string_of_protocol_error e);
      exit 1
  in
  let total = afe.P.Afe.decode ~n:!accepted accumulators in
  let expect = List.fold_left ( + ) 0 values in
  Printf.printf "aggregate: %s (expected %d)\n" (Prio.Bigint.to_string total)
    expect;

  (* --- crash drill: SIGKILL a follower; the leader must refuse new
     work cleanly (no hangs) and the supervisor must see the corpse --- *)
  Unix.kill d.Net.pids.(3) Sys.sigkill;
  Unix.sleepf 0.1;
  (match (Net.poll_servers d).(3) with
  | Net.Exited _ -> print_endline "supervisor: follower 3 is down"
  | Net.Running -> print_endline "supervisor: follower 3 still running?!");
  (match
     Net.submit_outcome d ~rng ~client_id:100 (afe.P.Afe.encode ~rng 1)
   with
  | Net.Accepted -> print_endline "degraded cluster accepted a submission?!"
  | Net.Rejected why -> Printf.printf "degraded cluster refused cleanly: %s\n" why
  | Net.Unreachable e ->
    Printf.printf "submission failed fast, no hang: %s\n"
      (T.string_of_protocol_error e));
  (match (Net.poll_servers d).(0) with
  | Net.Running -> print_endline "leader survived the follower crash"
  | Net.Exited _ -> print_endline "leader died?!");

  (* --- revive it on the original port; new traffic flows again (the
     dead process's accumulator shares are lost, so a real deployment
     would close out the damaged batch and open a fresh one) --- *)
  Net.restart_server d 3;
  Printf.printf "supervisor: follower 3 restarted (pid %d)\n" d.Net.pids.(3);
  Printf.printf "post-restart submission accepted: %b\n"
    (Net.submit d ~rng ~client_id:101 (afe.P.Afe.encode ~rng 42));

  Net.shutdown d;
  print_endline "servers shut down cleanly"

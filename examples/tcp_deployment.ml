(* A fault-tolerant multi-process deployment: five Prio server processes
   on loopback TCP sockets, clients uploading sealed packets through a
   deliberately lossy wire (seeded fault injection + retry with backoff),
   a follower SIGKILLed mid-run with the leader degrading gracefully, the
   supervisor detecting and restarting the dead process, and a durability
   drill where a checkpointing deployment survives the same crash with no
   accepted contribution lost.

   The whole run executes under an installed Obs trace recorder: the
   crash-drill report below is read back out of the recorder (the same
   spans/events every instrumented deployment emits), and the full trace
   is dumped as JSONL at the end.

   Run with: dune exec examples/tcp_deployment.exe *)

open Core
module P = Prio.Make (Prio.F87)
module Net = P.Net
module T = Prio.Transport
module Faults = Prio.Faults
module Retry = Prio.Retry
module Trace = Prio.Obs_trace

let attrs_str = function
  | [] -> ""
  | attrs ->
    " ["
    ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
    ^ "]"

let () =
  let recorder = Trace.create ~capacity:65536 () in
  Trace.install recorder;
  let rng = Prio.Rng.of_string_seed "tcp-example" in
  let afe = P.Afe_sum.sum ~bits:8 in
  let cfg =
    Net.
      {
        circuit = afe.P.Afe.circuit;
        trunc_len = afe.P.Afe.trunc_len;
        num_servers = 5;
        master = Prio.Rng.bytes rng 32;
        batch_seed = Prio.Rng.bytes rng 32;
      }
  in
  (* short deadlines: a dropped frame costs [io_timeout] of real waiting *)
  let tuning =
    T.
      {
        default_tuning with
        io_timeout = 0.4;
        dial_timeout = 1.0;
        select_tick = 0.02;
        backoff =
          Retry.
            {
              default_backoff with
              max_attempts = 8;
              base_delay = 0.01;
              max_delay = 0.1;
            };
      }
  in
  let d = Net.launch ~tuning cfg in
  Printf.printf "launched %d server processes (pids:%s)\n" cfg.Net.num_servers
    (Array.fold_left (fun acc pid -> acc ^ " " ^ string_of_int pid) "" d.Net.pids);

  (* --- honest clients over a lossy wire: every frame has a 10% chance
     of silently vanishing; retries + idempotent servers get them all
     through, and nothing is double-counted --- *)
  let faults = Faults.create ~seed:"lossy-wire" (Faults.drop 0.1) in
  let values = List.init 12 (fun i -> (i * 13) mod 256) in
  let accepted = ref 0 in
  List.iteri
    (fun i x ->
      match
        Net.submit_outcome ~faults d ~rng ~client_id:i (afe.P.Afe.encode ~rng x)
      with
      | Net.Accepted -> incr accepted
      | Net.Rejected why -> Printf.printf "  client %d rejected: %s\n" i why
      | Net.Unreachable e ->
        Printf.printf "  client %d unreachable: %s\n" i
          (T.string_of_protocol_error e))
    values;
  Printf.printf "lossy wire: %d/%d accepted (%d frames faulted, all retried)\n"
    !accepted (List.length values) (Faults.injected faults);

  (* a malicious client tries its luck against the real wire protocol *)
  let bad = afe.P.Afe.encode ~rng 3 in
  bad.(0) <- P.Field.of_int 100_000;
  let cheater_ok = Net.submit d ~rng ~client_id:9999 bad in
  Printf.printf "cheating client accepted: %b\n" cheater_ok;

  (* collect before the crash drill: shares on a killed server die with it *)
  let accumulators =
    match Net.collect_aggregate d with
    | Ok v -> v
    | Error (i, e) ->
      Printf.eprintf "server %d unreachable: %s\n"
        i (Prio.Transport.string_of_protocol_error e);
      exit 1
  in
  let total = afe.P.Afe.decode ~n:!accepted accumulators in
  let expect = List.fold_left ( + ) 0 values in
  Printf.printf "aggregate: %s (expected %d)\n" (Prio.Bigint.to_string total)
    expect;

  (* --- crash drill: SIGKILL a follower; the leader must refuse new
     work cleanly (no hangs) and the supervisor must see the corpse.
     Everything below happens silently — the report afterwards is read
     back out of the trace recorder, not hand-printed as we go --- *)
  let drill_mark = List.length (Trace.spans recorder) in
  Unix.kill d.Net.pids.(3) Sys.sigkill;
  Unix.sleepf 0.1;
  let follower_down =
    match (Net.poll_servers d).(3) with Net.Exited _ -> true | Net.Running -> false
  in
  let degraded_outcome =
    Net.submit_outcome d ~rng ~client_id:100 (afe.P.Afe.encode ~rng 1)
  in
  let leader_alive =
    match (Net.poll_servers d).(0) with Net.Running -> true | Net.Exited _ -> false
  in
  (* revive it on the original port; new traffic flows again. Without
     checkpointing the revived process starts from empty state, so the
     dead server's accumulator shares are gone and the damaged collection
     window must be discarded — the durability drill below runs the same
     crash with snapshots on and keeps every accepted contribution *)
  Net.restart_server d 3;
  let post_restart_ok = Net.submit d ~rng ~client_id:101 (afe.P.Afe.encode ~rng 42) in

  print_endline "crash drill, as the trace recorder saw it:";
  let drill_spans =
    List.filteri (fun i _ -> i >= drill_mark) (Trace.spans recorder)
  in
  List.iter
    (fun (sp : Trace.span) ->
      match (sp.Trace.kind, sp.Trace.name) with
      | ( Trace.Event,
          (( "supervisor.exited" | "supervisor.restarted" | "retry"
           | "net.rejected" | "net.unreachable" ) as name) ) ->
        Printf.printf "  %-22s%s\n" name (attrs_str sp.Trace.attrs)
      | _ -> ())
    drill_spans;
  assert follower_down;
  assert leader_alive;
  (match degraded_outcome with
  | Net.Accepted -> print_endline "degraded cluster accepted a submission?!"
  | Net.Rejected why -> Printf.printf "degraded cluster refused cleanly: %s\n" why
  | Net.Unreachable e ->
    Printf.printf "submission failed fast, no hang: %s\n"
      (T.string_of_protocol_error e));
  Printf.printf "post-restart submission accepted: %b\n" post_restart_ok;

  Net.shutdown d;
  print_endline "servers shut down cleanly";

  (* --- durability drill: the same SIGKILL, but against a deployment
     that persists an HMAC-authenticated snapshot after every decision.
     The restarted follower resumes from its snapshot, so the aggregate
     collected at the end still covers every value accepted before the
     crash — nothing lost, nothing double-counted --- *)
  let ckpt_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prio-example-ckpt-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir ckpt_dir 0o700 with Unix.Unix_error (EEXIST, _, _) -> ());
  let d2 =
    Net.launch
      ~tuning:T.{ tuning with checkpoint_dir = Some ckpt_dir }
      Net.{ cfg with num_servers = 3 }
  in
  let pre_crash = [ 11; 22; 33; 44 ] and post_crash = [ 55; 66 ] in
  List.iteri
    (fun i x -> assert (Net.submit d2 ~rng ~client_id:i (afe.P.Afe.encode ~rng x)))
    pre_crash;
  Unix.kill d2.Net.pids.(1) Sys.sigkill;
  let rec wait_dead () =
    match (Net.poll_servers d2).(1) with
    | Net.Exited _ -> ()
    | Net.Running ->
      Unix.sleepf 0.01;
      wait_dead ()
  in
  wait_dead ();
  Net.restart_server d2 1;
  List.iteri
    (fun i x ->
      assert (Net.submit d2 ~rng ~client_id:(100 + i) (afe.P.Afe.encode ~rng x)))
    post_crash;
  let survived =
    match Net.collect_aggregate d2 with
    | Ok sigma ->
      afe.P.Afe.decode ~n:(List.length pre_crash + List.length post_crash) sigma
    | Error (i, e) ->
      Printf.eprintf "server %d unreachable: %s\n" i
        (T.string_of_protocol_error e);
      exit 1
  in
  let want = List.fold_left ( + ) 0 (pre_crash @ post_crash) in
  Printf.printf
    "durability drill: follower killed and restored from snapshot; aggregate %s \
     (expected %d) — pre-crash shares survived\n"
    (Prio.Bigint.to_string survived) want;
  assert (Prio.Bigint.to_string survived = string_of_int want);
  Net.shutdown d2;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat ckpt_dir f) with Sys_error _ -> ())
    (Sys.readdir ckpt_dir);
  (try Unix.rmdir ckpt_dir with Unix.Unix_error _ -> ());

  (* --- the recorder self-check: the run above must have produced spans
     for every client-side protocol phase, plus at least one retry and
     one injected fault (the seeded chaos makes this deterministic) --- *)
  let names =
    List.map (fun sp -> sp.Trace.name) (Trace.spans recorder)
  in
  let has n = List.mem n names in
  List.iter
    (fun n -> if not (has n) then failwith ("trace is missing span " ^ n))
    [ "net.submit"; "net.upload"; "net.verify"; "net.rpc"; "net.collect";
      "client.prove"; "client.share"; "client.seal"; "snip.prove" ];
  if not (has "retry") then failwith "trace recorded no retry event";
  if not (has "fault") then failwith "trace recorded no fault event";
  if not (has "supervisor.exited" && has "supervisor.restarted") then
    failwith "trace missed the follower death/restart";

  let path = "tcp_deployment_trace.jsonl" in
  let oc = open_out path in
  output_string oc (Trace.to_jsonl recorder);
  close_out oc;
  Trace.uninstall ();
  Printf.printf
    "trace self-check passed: %d spans/events recorded (retries, faults, and \
     every protocol phase present); full trace written to %s\n"
    (List.length names) path

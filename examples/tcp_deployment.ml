(* A fault-tolerant multi-process deployment: five Prio server processes
   on loopback TCP sockets, clients uploading sealed packets through a
   deliberately lossy wire (seeded fault injection + retry with backoff),
   a follower SIGKILLed mid-run with the leader degrading gracefully,
   health probes driving the supervisor's restart decision, and a
   durability drill where a checkpointing deployment survives the same
   crash with no accepted contribution lost.

   The telemetry plane runs across all the processes: the parent records
   its spans under origin "client", every server process (trace_dir set)
   records its own under origin "server<id>" and dumps JSONL on clean
   shutdown, and submission frames carry trace context over the wire —
   so after shutdown the per-process dumps merge into one causally
   ordered tree in which a client's submission span is the ancestor of
   the admit/verify/aggregate spans on every server that handled it.
   Server metrics are scraped live over TCP while the deployment runs.

   Run with: dune exec examples/tcp_deployment.exe *)

open Core
module P = Prio.Make (Prio.F87)
module Net = P.Net
module T = Prio.Transport
module Faults = Prio.Faults
module Retry = Prio.Retry
module Trace = Prio.Obs_trace

let attrs_str = function
  | [] -> ""
  | attrs ->
    " ["
    ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
    ^ "]"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let describe_probe = function
  | Net.Probe_ok h ->
    Printf.sprintf "ok (epoch=%d pending=%d accepted=%d)" h.T.h_epoch
      h.T.h_pending h.T.h_accepted
  | Net.Probe_degraded (_, why) -> "degraded: " ^ why
  | Net.Probe_unreachable e ->
    "unreachable: " ^ T.string_of_protocol_error e
  | Net.Probe_dead _ -> "dead (process reaped)"

let () =
  let recorder = Trace.create ~capacity:65536 ~origin:"client" () in
  Trace.install recorder;
  let trace_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prio-example-trace-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir trace_dir 0o700 with Unix.Unix_error (EEXIST, _, _) -> ());
  let rng = Prio.Rng.of_string_seed "tcp-example" in
  let afe = P.Afe_sum.sum ~bits:8 in
  let cfg =
    Net.
      {
        circuit = afe.P.Afe.circuit;
        trunc_len = afe.P.Afe.trunc_len;
        num_servers = 5;
        master = Prio.Rng.bytes rng 32;
        batch_seed = Prio.Rng.bytes rng 32;
      }
  in
  (* short deadlines: a dropped frame costs [io_timeout] of real waiting *)
  let tuning =
    T.
      {
        default_tuning with
        io_timeout = 0.4;
        dial_timeout = 1.0;
        select_tick = 0.02;
        trace_dir = Some trace_dir;
        backoff =
          Retry.
            {
              default_backoff with
              max_attempts = 8;
              base_delay = 0.01;
              max_delay = 0.1;
            };
      }
  in
  let d = Net.launch ~tuning cfg in
  Printf.printf "launched %d server processes (pids:%s)\n" cfg.Net.num_servers
    (Array.fold_left (fun acc pid -> acc ^ " " ^ string_of_int pid) "" d.Net.pids);

  (* --- honest clients over a lossy wire: every frame has a 10% chance
     of silently vanishing; retries + idempotent servers get them all
     through, and nothing is double-counted --- *)
  let faults = Faults.create ~seed:"lossy-wire" (Faults.drop 0.1) in
  let values = List.init 12 (fun i -> (i * 13) mod 256) in
  let accepted = ref 0 in
  List.iteri
    (fun i x ->
      match
        Net.submit_outcome ~faults d ~rng ~client_id:i (afe.P.Afe.encode ~rng x)
      with
      | Net.Accepted -> incr accepted
      | Net.Rejected why -> Printf.printf "  client %d rejected: %s\n" i why
      | Net.Unreachable e ->
        Printf.printf "  client %d unreachable: %s\n" i
          (T.string_of_protocol_error e))
    values;
  Printf.printf "lossy wire: %d/%d accepted (%d frames faulted, all retried)\n"
    !accepted (List.length values) (Faults.injected faults);

  (* --- live metrics scrape: pull the leader's per-stage latency
     histograms out of the running process over the wire ([q] frame) —
     the registry lives in the server process, not ours --- *)
  (match T.scrape_metrics ~tuning d.Net.addrs.(0) with
  | Error e ->
    Printf.printf "live scrape failed: %s\n" (T.string_of_protocol_error e)
  | Ok text ->
    print_endline "live scrape of the leader (per-stage samples):";
    List.iter
      (fun line ->
        let is_prefix p =
          String.length line >= String.length p
          && String.sub line 0 (String.length p) = p
        in
        if
          (is_prefix "prio_stage_" && not (String.contains line '{'))
          || is_prefix "prio_net_pending_depth"
        then print_endline ("  " ^ line))
      (String.split_on_char '\n' text));

  (* a malicious client tries its luck against the real wire protocol *)
  let bad = afe.P.Afe.encode ~rng 3 in
  bad.(0) <- P.Field.of_int 100_000;
  let cheater_ok = Net.submit d ~rng ~client_id:9999 bad in
  Printf.printf "cheating client accepted: %b\n" cheater_ok;

  (* collect before the crash drill: shares on a killed server die with it *)
  let accumulators =
    match Net.collect_aggregate d with
    | Ok v -> v
    | Error (i, e) ->
      Printf.eprintf "server %d unreachable: %s\n"
        i (Prio.Transport.string_of_protocol_error e);
      exit 1
  in
  let total = afe.P.Afe.decode ~n:!accepted accumulators in
  let expect = List.fold_left ( + ) 0 values in
  Printf.printf "aggregate: %s (expected %d)\n" (Prio.Bigint.to_string total)
    expect;

  (* --- crash drill: hand-deliver one more client's shares so every
     server holds them, then SIGKILL a follower *between* upload and
     verification (a normal client would fail at dial and never reach
     the leader). The leader must refuse the verify cleanly (no hangs),
     and the health-probe sweep — not just process liveness — must
     drive the supervisor's restart decision. Everything below happens
     silently — the report afterwards is read back out of the trace
     recorder, not hand-printed as we go --- *)
  let drill_mark = List.length (Trace.spans recorder) in
  let exchange addr frame =
    match T.dial addr with
    | Error e -> Error e
    | Ok fd ->
      let r =
        match T.write_frame ~deadline:(Retry.after 2.0) fd frame with
        | Error e -> Error e
        | Ok () -> T.read_frame ~deadline:(Retry.after 5.0) fd
      in
      Unix.close fd;
      r
  in
  let pk =
    P.Client.submit ~rng
      ~mode:(P.Client.Robust_snip afe.P.Afe.circuit)
      ~num_servers:5 ~client_id:100 ~master:cfg.Net.master
      (afe.P.Afe.encode ~rng 1)
  in
  Trace.with_span "net.submit" ~attrs:[ ("client", "100") ] (fun () ->
      Array.iteri
        (fun i sealed ->
          let p =
            T.tagged 'P'
              (Bytes.cat (T.put_u32 100) (Bytes.cat (T.ctx_bytes ()) sealed))
          in
          match exchange d.Net.addrs.(i) p with
          | Ok r when Bytes.length r > 0 && Bytes.get r 0 = 'K' -> ()
          | Ok _ | Error _ -> failwith "drill upload failed")
        pk.P.Client.sealed);
  Unix.kill d.Net.pids.(3) Sys.sigkill;
  Unix.sleepf 0.1;
  let first_sweep = Net.probe_deployment d in
  let follower_down =
    match first_sweep.(3) with
    | Net.Probe_dead _ -> true
    | Net.Probe_ok _ | Net.Probe_degraded _ | Net.Probe_unreachable _ -> false
  in
  (* verification forces a gossip round: the leader hits the dead
     follower, refuses this submission cleanly, and drops its cached
     link to the corpse *)
  let refusal = exchange d.Net.addrs.(0) (T.tagged 'V' (T.put_u32 100)) in
  let leader_alive =
    match (Net.poll_servers d).(0) with Net.Running -> true | Net.Exited _ -> false
  in
  (* the failed gossip round made the leader drop its cached link to the
     corpse: a second sweep now sees the leader *degraded*, not just the
     follower dead — signal liveness polling alone cannot produce *)
  let second_sweep = Net.probe_deployment d in
  (* probe-driven supervision revives the dead follower on its original
     port; new traffic flows again. Without checkpointing the revived
     process starts from empty state, so the dead server's accumulator
     shares are gone and the damaged collection window must be discarded
     — the durability drill below runs the same crash with snapshots on
     and keeps every accepted contribution *)
  let restarted = Net.supervise d in
  let post_restart_ok = Net.submit d ~rng ~client_id:101 (afe.P.Afe.encode ~rng 42) in

  print_endline "crash drill, as the health probes and the trace saw it:";
  Printf.printf "  probe sweep after the kill:    srv3 %s\n"
    (describe_probe first_sweep.(3));
  Printf.printf "  probe sweep after the refusal: srv0 %s\n"
    (describe_probe second_sweep.(0));
  Printf.printf "  supervise restarted:          %s\n"
    (String.concat ", " (List.map string_of_int restarted));
  let drill_spans =
    List.filteri (fun i _ -> i >= drill_mark) (Trace.spans recorder)
  in
  List.iter
    (fun (sp : Trace.span) ->
      match (sp.Trace.kind, sp.Trace.name) with
      | ( Trace.Event,
          (( "supervisor.exited" | "supervisor.restarted"
           | "supervisor.unreachable" | "retry" | "net.rejected"
           | "net.unreachable" ) as name) ) ->
        Printf.printf "  %-22s%s\n" name (attrs_str sp.Trace.attrs)
      | _ -> ())
    drill_spans;
  assert follower_down;
  assert leader_alive;
  assert (restarted = [ 3 ]);
  assert (match second_sweep.(0) with Net.Probe_degraded _ -> true | _ -> false);
  (match refusal with
  | Ok r when Bytes.length r > 0 && Bytes.get r 0 = 'R' ->
    print_endline "  degraded leader refused the verify cleanly ([R])"
  | Ok r when Bytes.length r > 0 && Bytes.get r 0 = 'E' ->
    Printf.printf "  degraded leader refused the verify cleanly: %s\n"
      (match T.parse_error_frame r with
      | Some (_, detail) -> detail
      | None -> "garbled E frame")
  | Ok r ->
    Printf.printf "  unexpected verify reply tag %C\n"
      (if Bytes.length r > 0 then Bytes.get r 0 else '?')
  | Error e ->
    Printf.printf "  verify failed: %s\n" (T.string_of_protocol_error e));
  assert (
    match refusal with
    | Ok r ->
      Bytes.length r > 0 && (Bytes.get r 0 = 'E' || Bytes.get r 0 = 'R')
    | Error _ -> false);
  Printf.printf "post-restart submission accepted: %b\n" post_restart_ok;

  Net.shutdown d;
  print_endline "servers shut down cleanly";

  (* --- stitch the telemetry plane back together: the parent's recorder
     plus every server dump that survived. Server 3 was SIGKILLed, so its
     pre-crash spans died with it — its dump (written by the *restarted*
     process at shutdown) starts after the revival, and the merge
     tolerates the gap --- *)
  let server_dumps =
    List.filter_map
      (fun i ->
        let p = Filename.concat trace_dir (Printf.sprintf "server%d.jsonl" i) in
        if Sys.file_exists p then Some (i, read_file p) else None)
      [ 0; 1; 2; 3; 4 ]
  in
  Printf.printf "server dumps found: %s\n"
    (String.concat ", "
       (List.map (fun (i, _) -> Printf.sprintf "server%d" i) server_dumps));
  let merged =
    Trace.merge (Trace.to_jsonl recorder :: List.map snd server_dumps)
  in
  let by_id = Hashtbl.create 1024 in
  List.iter (fun m -> Hashtbl.replace by_id m.Trace.m_id m) merged;
  let rec has_ancestor id target =
    match Hashtbl.find_opt by_id id with
    | None -> false
    | Some m -> (
      match m.Trace.m_parent with
      | None -> false
      | Some p -> p = target || has_ancestor p target)
  in
  (* client 0's submission: its span must be the ancestor of spans on the
     leader *and* on followers — the wire-propagated trace context at
     work across five processes *)
  let root =
    List.find
      (fun m ->
        m.Trace.m_name = "net.submit"
        && List.assoc_opt "client" m.Trace.m_attrs = Some "0")
      merged
  in
  let under = List.filter (fun m -> has_ancestor m.Trace.m_id root.Trace.m_id) merged in
  let origins_under name =
    List.sort_uniq compare
      (List.filter_map
         (fun m ->
           if m.Trace.m_name = name then Some m.Trace.m_origin else None)
         under)
  in
  Printf.printf
    "merged trace: %d spans across %d dumps; under client 0's submission:\n"
    (List.length merged)
    (1 + List.length server_dumps);
  Printf.printf "  server.admit on:  %s\n"
    (String.concat ", " (origins_under "server.admit"));
  Printf.printf "  server.verify on: %s\n"
    (String.concat ", " (origins_under "server.verify"));
  (* server3 was SIGKILLed mid-run: its pre-crash spans (including
     client 0's admit) died un-dumped with the process, so exactly the
     four surviving processes appear under the submission *)
  assert (
    origins_under "server.admit"
    = [ "server0"; "server1"; "server2"; "server4" ]);
  assert (List.mem "server0" (origins_under "server.verify"));
  assert (List.exists (fun o -> o <> "server0") (origins_under "server.verify"));
  (* one submission, rendered as the merged cross-process tree *)
  let depth_of m =
    let rec go acc = function
      | None -> acc
      | Some p ->
        go (acc + 1)
          (match Hashtbl.find_opt by_id p with
          | None -> None
          | Some pm -> pm.Trace.m_parent)
    in
    go 0 m.Trace.m_parent
  in
  print_endline "client 0's submission, stitched across processes:";
  List.iter
    (fun m ->
      if m.Trace.m_id = root.Trace.m_id || has_ancestor m.Trace.m_id root.Trace.m_id
      then
        Printf.printf "  %s[%s] %s%s\n"
          (String.make (2 * depth_of m) ' ')
          m.Trace.m_origin m.Trace.m_name (attrs_str m.Trace.m_attrs))
    merged;

  (* --- durability drill: the same SIGKILL, but against a deployment
     that persists an HMAC-authenticated snapshot after every decision.
     The restarted follower resumes from its snapshot, so the aggregate
     collected at the end still covers every value accepted before the
     crash — nothing lost, nothing double-counted --- *)
  let ckpt_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prio-example-ckpt-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir ckpt_dir 0o700 with Unix.Unix_error (EEXIST, _, _) -> ());
  let d2 =
    Net.launch
      ~tuning:T.{ tuning with checkpoint_dir = Some ckpt_dir }
      Net.{ cfg with num_servers = 3 }
  in
  let pre_crash = [ 11; 22; 33; 44 ] and post_crash = [ 55; 66 ] in
  List.iteri
    (fun i x -> assert (Net.submit d2 ~rng ~client_id:i (afe.P.Afe.encode ~rng x)))
    pre_crash;
  Unix.kill d2.Net.pids.(1) Sys.sigkill;
  let rec wait_dead () =
    match (Net.poll_servers d2).(1) with
    | Net.Exited _ -> ()
    | Net.Running ->
      Unix.sleepf 0.01;
      wait_dead ()
  in
  wait_dead ();
  Net.restart_server d2 1;
  List.iteri
    (fun i x ->
      assert (Net.submit d2 ~rng ~client_id:(100 + i) (afe.P.Afe.encode ~rng x)))
    post_crash;
  let survived =
    match Net.collect_aggregate d2 with
    | Ok sigma ->
      afe.P.Afe.decode ~n:(List.length pre_crash + List.length post_crash) sigma
    | Error (i, e) ->
      Printf.eprintf "server %d unreachable: %s\n" i
        (T.string_of_protocol_error e);
      exit 1
  in
  let want = List.fold_left ( + ) 0 (pre_crash @ post_crash) in
  Printf.printf
    "durability drill: follower killed and restored from snapshot; aggregate %s \
     (expected %d) — pre-crash shares survived\n"
    (Prio.Bigint.to_string survived) want;
  assert (Prio.Bigint.to_string survived = string_of_int want);
  Net.shutdown d2;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat ckpt_dir f) with Sys_error _ -> ())
    (Sys.readdir ckpt_dir);
  (try Unix.rmdir ckpt_dir with Unix.Unix_error _ -> ());

  (* --- commit-window drill: a follower killed at the worst possible
     instant — the leader's decision received, not yet journaled or
     acked. Two-phase commit means the client ack is withheld
     (commit-pending), the resubmission re-seeds the restored follower
     and drives the repair re-broadcast, and the share still counts
     exactly once. Under fire-and-forget this exact schedule silently
     loses the follower's copy of the share --- *)
  let commit_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prio-example-commit-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir commit_dir 0o700 with Unix.Unix_error (EEXIST, _, _) -> ());
  (* [faults_for] runs in each forked server, so the one-shot disarm
     flag lives on the shared filesystem: the first launch of server 2
     consumes it, the supervisor's restart finds it gone *)
  let armed = Filename.concat commit_dir "fault-armed" in
  close_out (open_out armed);
  let faults_for id =
    if id = 2 && Sys.file_exists armed then begin
      (try Sys.remove armed with Sys_error _ -> ());
      Some
        (Faults.create ~seed:"commit-window" (Faults.crash_on ~tags:"a" 1.0))
    end
    else None
  in
  let d3 =
    Net.launch
      ~tuning:T.{ tuning with checkpoint_dir = Some commit_dir }
      ~faults_for
      Net.{ cfg with num_servers = 3 }
  in
  let drill_values = [ 7; 9; 4 ] in
  let crashes = ref 0 in
  let revive () =
    Array.iteri
      (fun i st ->
        match st with
        | Net.Exited (Unix.WEXITED 70) ->
          incr crashes;
          Net.restart_server d3 i
        | Net.Exited _ -> Net.restart_server d3 i
        | Net.Running -> ())
      (Net.poll_servers d3)
  in
  List.iteri
    (fun i x ->
      (* seal once, resubmit the same packets: the repair path keys on
         the client id, so a retry is the same submission, not a new one *)
      let pk =
        P.Client.submit ~rng
          ~mode:(P.Client.Robust_snip afe.P.Afe.circuit)
          ~num_servers:3 ~client_id:i ~master:d3.Net.cfg.Net.master
          (afe.P.Afe.encode ~rng x)
      in
      let rec attempt tries =
        match Net.submit_packets_outcome d3 ~rng ~client_id:i pk with
        | Net.Accepted -> ()
        | (Net.Rejected _ | Net.Unreachable _) when tries < 5 ->
          revive ();
          attempt (tries + 1)
        | Net.Rejected why -> failwith ("commit drill: rejected: " ^ why)
        | Net.Unreachable e ->
          failwith ("commit drill: " ^ T.string_of_protocol_error e)
      in
      attempt 0)
    drill_values;
  revive ();
  let committed =
    match Net.collect_aggregate d3 with
    | Ok sigma -> afe.P.Afe.decode ~n:(List.length drill_values) sigma
    | Error (i, e) ->
      Printf.eprintf "server %d unreachable: %s\n" i
        (T.string_of_protocol_error e);
      exit 1
  in
  let want_commit = List.fold_left ( + ) 0 drill_values in
  Printf.printf
    "commit-window drill: follower crashed between decision and ack \
     (%d crash), client resubmitted, repair completed; aggregate %s \
     (expected %d)\n"
    !crashes
    (Prio.Bigint.to_string committed)
    want_commit;
  assert (!crashes = 1);
  assert (Prio.Bigint.to_string committed = string_of_int want_commit);
  Net.shutdown d3;
  Array.iter
    (fun f ->
      try Sys.remove (Filename.concat commit_dir f) with Sys_error _ -> ())
    (Sys.readdir commit_dir);
  (try Unix.rmdir commit_dir with Unix.Unix_error _ -> ());

  (* --- the recorder self-check: the run above must have produced spans
     for every client-side protocol phase, plus at least one retry and
     one injected fault (the seeded chaos makes this deterministic) --- *)
  let names =
    List.map (fun sp -> sp.Trace.name) (Trace.spans recorder)
  in
  let has n = List.mem n names in
  List.iter
    (fun n -> if not (has n) then failwith ("trace is missing span " ^ n))
    [ "net.submit"; "net.upload"; "net.verify"; "net.rpc"; "net.collect";
      "client.prove"; "client.share"; "client.seal"; "snip.prove" ];
  if not (has "retry") then failwith "trace recorded no retry event";
  if not (has "fault") then failwith "trace recorded no fault event";
  if not (has "supervisor.exited" && has "supervisor.restarted") then
    failwith "trace missed the follower death/restart";

  let path = "tcp_deployment_trace.jsonl" in
  let oc = open_out path in
  output_string oc (Trace.to_jsonl recorder);
  close_out oc;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat trace_dir f) with Sys_error _ -> ())
    (Sys.readdir trace_dir);
  (try Unix.rmdir trace_dir with Unix.Unix_error _ -> ());
  Trace.uninstall ();
  Printf.printf
    "trace self-check passed: %d spans/events recorded (retries, faults, and \
     every protocol phase present); full trace written to %s\n"
    (List.length names) path

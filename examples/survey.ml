(* Anonymous surveys (paper §6.2): collect the distribution of responses
   to a sensitive questionnaire — here a Beck-Depression-Inventory-style
   instrument with 21 questions answered on a 1–4 scale — without any
   server learning an individual's answers.

   Each respondent submits ONE packet set encoding their entire answer
   sheet as a concatenation of 21 one-hot blocks; the Valid circuit checks
   every block is one-hot, so a malicious respondent cannot stuff the
   ballot. The published aggregate is the per-question answer histogram.

   Run with: dune exec examples/survey.exe *)

open Core
module P = Prio.Make (Prio.F87)
module C = P.Circuit

let questions = 21
let scale = 4

(* A whole answer sheet as a single AFE: 21 concatenated one-hot blocks.
   This is the "multiple Valid predicates at once" pattern of Appendix I —
   the circuit has 84 mul gates and one batched SNIP covers all of them. *)
let survey_afe : (int array, int array) P.Afe.t =
  let len = questions * scale in
  let circuit =
    let b = C.Builder.create ~num_inputs:len in
    for q = 0 to questions - 1 do
      C.Builder.assert_one_hot b
        (List.init scale (fun a -> C.Builder.input b ((q * scale) + a)))
    done;
    C.Builder.build b
  in
  let circuit, raw_circuit = P.Afe.compile circuit in
  {
    P.Afe.name = "survey-bdi21";
    encoding_len = len;
    trunc_len = len;
    circuit;
    raw_circuit;
    encode =
      (fun ~rng:_ answers ->
        if Array.length answers <> questions then invalid_arg "need 21 answers";
        let enc = Array.make len P.Field.zero in
        Array.iteri
          (fun q a ->
            if a < 1 || a > scale then invalid_arg "answers are 1-4";
            enc.((q * scale) + (a - 1)) <- P.Field.one)
          answers;
        enc);
    decode =
      (fun ~n:_ sigma ->
        Array.map (fun v -> Prio.Bigint.to_int_exn (P.Field.to_bigint v)) sigma);
    leakage = "the per-question answer histogram";
  }

let () =
  let rng = Prio.Rng.of_string_seed "survey-example" in
  let deployment = P.deploy ~rng ~num_servers:5 survey_afe in

  (* synthetic respondent pool with a skewed answer distribution *)
  let respondents = 40 in
  let answer_sheets =
    List.init respondents (fun i ->
        Array.init questions (fun q ->
            1 + ((i + q + (i * q mod 3)) mod scale)))
  in
  let counts, stats = P.collect deployment answer_sheets in

  Printf.printf "respondents: %d   accepted: %d   rejected: %d\n\n" respondents
    stats.P.accepted stats.P.rejected;
  Printf.printf "question   answer=1  answer=2  answer=3  answer=4\n";
  for q = 0 to questions - 1 do
    Printf.printf "   Q%02d     " (q + 1);
    for a = 0 to scale - 1 do
      Printf.printf "%8d  " counts.((q * scale) + a)
    done;
    print_newline ()
  done;
  let total = Array.fold_left ( + ) 0 counts in
  Printf.printf "\ntotal answers recorded: %d (= %d respondents x %d questions)\n"
    total respondents questions;
  Printf.printf "circuit: %d multiplication gates across %d one-hot checks\n"
    (C.num_mul_gates survey_afe.P.Afe.circuit)
    questions

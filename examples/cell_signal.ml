(* Cell signal strength (paper §6.2): a carrier maps average mobile signal
   strength per km² grid cell without learning anyone's location history.

   Each reading is a pair (cell, strength) with strength a 4-bit integer.
   The encoding concatenates a one-hot cell indicator with a per-cell
   masked strength value: strength·indicator appears in the cell's slot, so
   summing over clients yields per-cell strength totals and per-cell counts
   — enough to decode per-cell averages. The Valid circuit checks the
   indicator is one-hot, the strength is 4 bits, and the masked column is
   consistent, so a malicious phone cannot poison a cell it is not in.

   Run with: dune exec examples/cell_signal.exe *)

open Core
module P = Prio.Make (Prio.F87)
module C = P.Circuit

let grid = 16 (* 4x4 km city *)
let strength_bits = 4

type reading = { cell : int; strength : int }

(* encoding: [counts: one-hot cell | totals: strength in cell's slot |
   strength | strength bits] *)
let signal_afe : (reading, (float option) array) P.Afe.t =
  let len = (2 * grid) + 1 + strength_bits in
  let idx_count c = c in
  let idx_total c = grid + c in
  let idx_strength = 2 * grid in
  let circuit =
    let b = C.Builder.create ~num_inputs:len in
    let indicators = List.init grid (fun c -> C.Builder.input b (idx_count c)) in
    C.Builder.assert_one_hot b indicators;
    let strength = C.Builder.input b idx_strength in
    let bit_wires =
      List.init strength_bits (fun i ->
          C.Builder.input b (idx_strength + 1 + i))
    in
    List.iter (C.Builder.assert_bit b) bit_wires;
    C.Builder.assert_binary_decomposition b ~value:strength ~bits:bit_wires;
    (* totals column: for each cell, total_c = indicator_c * strength *)
    List.iteri
      (fun c ind ->
        C.Builder.assert_product b ~x:ind ~x':strength
          ~y:(C.Builder.input b (idx_total c)))
      indicators;
    C.Builder.build b
  in
  let circuit, raw_circuit = P.Afe.compile circuit in
  {
    P.Afe.name = "cell-signal";
    encoding_len = len;
    trunc_len = 2 * grid;
    circuit;
    raw_circuit;
    encode =
      (fun ~rng:_ { cell; strength } ->
        if cell < 0 || cell >= grid then invalid_arg "bad cell";
        if strength < 0 || strength >= 1 lsl strength_bits then
          invalid_arg "bad strength";
        let enc = Array.make len P.Field.zero in
        enc.(idx_count cell) <- P.Field.one;
        enc.(idx_total cell) <- P.Field.of_int strength;
        enc.(idx_strength) <- P.Field.of_int strength;
        for i = 0 to strength_bits - 1 do
          enc.(idx_strength + 1 + i) <- P.Field.of_int ((strength lsr i) land 1)
        done;
        enc);
    decode =
      (fun ~n:_ sigma ->
        Array.init grid (fun c ->
            let count = Prio.Bigint.to_int_exn (P.Field.to_bigint sigma.(idx_count c)) in
            let total = Prio.Bigint.to_int_exn (P.Field.to_bigint sigma.(idx_total c)) in
            if count = 0 then None
            else Some (float_of_int total /. float_of_int count)));
    leakage = "per-cell reading counts and strength totals";
  }

let () =
  let rng = Prio.Rng.of_string_seed "cell-example" in
  Printf.printf "cell-signal AFE: %d x-gates for %d grid cells\n\n"
    (C.num_mul_gates signal_afe.P.Afe.circuit)
    grid;
  let deployment = P.deploy ~rng ~num_servers:5 signal_afe in
  (* phones concentrated downtown (cells 5,6,9,10) with stronger signal *)
  let readings =
    List.init 120 (fun i ->
        let downtown = i mod 3 <> 0 in
        let cell =
          if downtown then [| 5; 6; 9; 10 |].(Prio.Rng.int_below rng 4)
          else Prio.Rng.int_below rng grid
        in
        let strength =
          if downtown then 10 + Prio.Rng.int_below rng 6
          else 2 + Prio.Rng.int_below rng 8
        in
        { cell; strength })
  in
  let averages, stats = P.collect deployment readings in
  Printf.printf "readings: %d   accepted: %d   rejected: %d\n\n" 120
    stats.P.accepted stats.P.rejected;
  Printf.printf "average signal strength per cell (0-15 scale):\n";
  for row = 0 to 3 do
    for col = 0 to 3 do
      match averages.((row * 4) + col) with
      | None -> Printf.printf "   -- "
      | Some avg -> Printf.printf " %5.1f" avg
    done;
    print_newline ()
  done;
  print_endline "\n(downtown cells 5,6,9,10 should read noticeably hotter)"

(* Server-side Valid evaluation with a secret predicate (paper §4.4).

   The servers of a review-aggregation service privately count reviews,
   but run a proprietary spam-detection predicate over each submission —
   one the (possibly spam-producing) clients must never learn. Clients
   therefore cannot build SNIPs for it; instead each client ships Beaver
   multiplication triples plus a SNIP proving only the triples well-formed,
   and the servers evaluate the secret circuit themselves with Beaver's
   MPC protocol ("Prio-MPC").

   The secret rule here: a review submission (rating ∈ 1..5 one-hot,
   "verified purchase" bit) is spam if it is five-star AND unverified.
   Clients only ever learn how many multiplication gates the predicate
   has.

   Run with: dune exec examples/spam_filter.exe *)

open Core
module P = Prio.Make (Prio.F87)
module C = P.Circuit

let ratings = 5

(* The SERVERS' secret circuit: standard well-formedness (one-hot rating,
   verified is a bit) plus the secret spam rule
   five_star · (1 − verified) = 0. *)
let secret_valid : C.t =
  let b = C.Builder.create ~num_inputs:(ratings + 1) in
  let stars = List.init ratings (fun i -> C.Builder.input b i) in
  C.Builder.assert_one_hot b stars;
  let verified = C.Builder.input b ratings in
  C.Builder.assert_bit b verified;
  let five_star =
    match List.filteri (fun i _ -> i = 4) stars with
    | [ w ] -> w
    | _ -> assert false (* ratings = 5 inputs, built three lines up *)
  in
  let unverified = C.Builder.add_const b (P.Field.neg P.Field.one) verified in
  (* five_star · (verified − 1) must be zero: spam reviews fail Valid *)
  C.Builder.assert_zero b (C.Builder.mul b five_star unverified);
  C.Builder.build b

type review = { rating : int; verified : bool }

let afe : (review, int array) P.Afe.t =
  let circuit, raw_circuit = P.Afe.compile secret_valid in
  {
    P.Afe.name = "reviews";
    encoding_len = ratings + 1;
    trunc_len = ratings;
    circuit;
    raw_circuit;
    encode =
      (fun ~rng:_ { rating; verified } ->
        let enc = Array.make (ratings + 1) P.Field.zero in
        enc.(rating - 1) <- P.Field.one;
        if verified then enc.(ratings) <- P.Field.one;
        enc);
    decode =
      (fun ~n:_ sigma ->
        Array.map (fun v -> Prio.Bigint.to_int_exn (P.Field.to_bigint v)) sigma);
    leakage = "the rating histogram";
  }

let () =
  let rng = Prio.Rng.of_string_seed "spam-example" in
  (* Robust_mpc: the client-side submission carries triples, never the
     circuit; the servers run the Valid evaluation themselves. *)
  let deployment = P.deploy ~mode:P.Cluster.Robust_mpc ~rng ~num_servers:3 afe in
  Printf.printf
    "secret predicate: %d multiplication gates (all a client ever learns)\n\n"
    (C.num_mul_gates secret_valid);

  let honest =
    List.init 30 (fun i ->
        { rating = 1 + (i mod 5); verified = true })
  in
  let spam =
    (* a spam farm: five-star unverified reviews *)
    List.init 10 (fun _ -> { rating = 5; verified = false })
  in
  let counts, stats = P.collect deployment (honest @ spam) in
  Printf.printf "reviews submitted: %d (%d honest + %d spam)\n"
    (30 + 10) 30 10;
  Printf.printf "accepted: %d   rejected by the secret filter: %d\n\n"
    stats.P.accepted stats.P.rejected;
  Printf.printf "published rating histogram: ";
  Array.iteri (fun i c -> Printf.printf "%d★=%d  " (i + 1) c) counts;
  print_newline ();
  Printf.printf "five-star count: %d (the 10 spam five-stars never landed)\n"
    counts.(4)

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6). Run with no argument for the full sweep, or with one of
   table2 table3 fig4 fig5 fig6 fig7 fig8 table9 ablation compression net
   parallel micro
   to select a single experiment. EXPERIMENTS.md records paper-vs-measured
   numbers for each.

   Absolute numbers differ from the paper (different hardware, pure OCaml
   vs Go+FLINT, simulated network); the comparisons the paper draws — which
   scheme wins, by roughly what factor, and how costs scale — are what these
   benchmarks reproduce. *)

open Core
module B = Prio.Bigint
module Rng = Prio.Rng

let now () = Unix.gettimeofday ()

(** Timing statistics over repeated calls of one workload. *)
type stats = {
  mean : float;  (** seconds per call *)
  count : int;  (** calls sampled *)
  min_s : float;  (** fastest single call, seconds *)
  max_s : float;  (** slowest single call, seconds *)
  total : float;  (** wall-clock seconds spent sampling *)
}

(** Sample [f] warm-started: at least [min_reps] calls and [min_time]
    seconds of sampling (the paper averages over 8 runs). *)
let measure_stats ?(min_time = 0.2) ?(min_reps = 3) f =
  ignore (f ());
  let t0 = now () in
  let reps = ref 0 and mn = ref infinity and mx = ref neg_infinity in
  let elapsed = ref 0. in
  while !reps < min_reps || !elapsed < min_time do
    let s0 = now () in
    ignore (f ());
    let dt = now () -. s0 in
    if dt < !mn then mn := dt;
    if dt > !mx then mx := dt;
    incr reps;
    elapsed := now () -. t0
  done;
  let n = !reps in
  {
    mean = !elapsed /. float_of_int n;
    count = n;
    min_s = !mn;
    max_s = !mx;
    total = !elapsed;
  }

(** [measure_stats] collapsed to its mean. *)
let measure ?min_time ?min_reps f = (measure_stats ?min_time ?min_reps f).mean

(* ---------------------------------------------------------------------- *)
(* Machine-readable results. With [--json <path>] (BENCH_PRIO.json by     *)
(* convention) the harness writes every record the selected experiments   *)
(* emitted, plus the Obs metrics snapshot, as one JSON document — see     *)
(* docs/OBSERVABILITY.md for the schema.                                  *)
(* ---------------------------------------------------------------------- *)

type jfield = I of int | Fl of float | S of string | B of bool

let json_records : (string * jfield) list list ref = ref []

(** Emit one result row: the numbers a CI check or plot script would
    want, identified by [experiment] and [name]. Every row carries the
    detected core count so result files from different machines compare
    fairly; experiments that already report it keep their own value. *)
let record ~experiment ~name fields =
  let fields =
    if List.mem_assoc "cores" fields then fields
    else ("cores", I (Domain.recommended_domain_count ())) :: fields
  in
  let fields =
    (* a single-core box cannot show parallel speedups: stamp the rows
       so plot scripts and CI checks can exclude or annotate them *)
    if Domain.recommended_domain_count () = 1 then
      ("single_core", B true) :: fields
    else fields
  in
  json_records :=
    (("experiment", S experiment) :: ("name", S name) :: fields)
    :: !json_records

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jfield_string = function
  | I n -> string_of_int n
  | Fl f -> if Float.is_finite f then Printf.sprintf "%.9g" f else "null"
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | B b -> string_of_bool b

let write_json path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc "{\n  \"schema\": \"prio-bench/1\",\n  \"records\": [\n";
  let rows = List.rev !json_records in
  let last = List.length rows - 1 in
  List.iteri
    (fun i fields ->
      let body =
        List.map
          (fun (k, v) -> Printf.sprintf "\"%s\": %s" k (jfield_string v))
          fields
        |> String.concat ", "
      in
      output_string oc
        (Printf.sprintf "    {%s}%s\n" body (if i = last then "" else ",")))
    rows;
  output_string oc "  ],\n  \"metrics\": ";
  output_string oc (Prio.Obs_report.json ());
  output_string oc "\n}\n"

(* ---------------------------------------------------------------------- *)
(* A minimal JSON reader — just enough to load a BENCH_PRIO.json written  *)
(* by [write_json] (or an Obs report scraped over the wire) back in for   *)
(* [--check] and for mining stage percentiles out of a live scrape.       *)
(* ---------------------------------------------------------------------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Json_error of string

let json_parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Json_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal w v =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents buf
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 >= n then fail "short \\u escape";
          let code =
            match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* our writers only \u-escape control characters; anything
             outside ASCII degrades to a replacement byte *)
          Buffer.add_char buf (if code < 0x80 then Char.chr code else '?')
        | c -> fail (Printf.sprintf "bad escape %C" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Jobj (members [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Jarr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Jarr (elems [])
      end
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let json_member k = function Jobj kvs -> List.assoc_opt k kvs | _ -> None

(* ---------------------------------------------------------------------- *)
(* [--check <path>]: tolerance-band regression guard against a committed  *)
(* result file. Strings and bools must match exactly; numbers must agree  *)
(* within a multiplicative band (larger/smaller <= 1 + tolerance), so     *)
(* run-to-run timing noise passes but order-of-magnitude regressions —    *)
(* and any shape drift: missing records, missing fields, changed          *)
(* parameters — trip the guard. Records are matched by                    *)
(* (experiment, name); only experiments that ran this invocation are      *)
(* compared, so `streaming --check BENCH_PRIO.json` checks just the       *)
(* streaming rows.                                                        *)
(* ---------------------------------------------------------------------- *)

let check_against path ~tolerance =
  let doc =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    json_parse s
  in
  let committed =
    match json_member "records" doc with
    | Some (Jarr rows) ->
      List.filter_map (function Jobj kvs -> Some kvs | _ -> None) rows
    | _ -> raise (Json_error (path ^ ": no \"records\" array"))
  in
  let fresh = List.rev !json_records in
  let fresh_key fields =
    match (List.assoc_opt "experiment" fields, List.assoc_opt "name" fields) with
    | Some (S e), Some (S n) -> Some (e, n)
    | _ -> None
  in
  let ran_experiments =
    List.sort_uniq compare (List.filter_map fresh_key fresh |> List.map fst)
  in
  let committed_key kvs =
    match (List.assoc_opt "experiment" kvs, List.assoc_opt "name" kvs) with
    | Some (Jstr e), Some (Jstr n) -> Some (e, n)
    | _ -> None
  in
  let failures = ref [] in
  let complain fmt =
    Printf.ksprintf (fun m -> failures := m :: !failures) fmt
  in
  let band_ok a b =
    a = b
    || a <> 0. && b <> 0.
       && a < 0. = (b < 0.)
       &&
       let a = Float.abs a and b = Float.abs b in
       Float.max a b /. Float.min a b <= 1. +. tolerance
  in
  let check_field ~exp ~name k reference measured =
    match (reference, measured) with
    | Jstr r, S m ->
      if r <> m then
        complain "%s/%s %s: %S, reference says %S" exp name k m r
    | Jbool r, B m ->
      if r <> m then
        complain "%s/%s %s: %b, reference says %b" exp name k m r
    | Jnum r, (I _ | Fl _) ->
      let m = match measured with I i -> float_of_int i | Fl f -> f | _ -> 0. in
      if not (band_ok r m) then
        complain "%s/%s %s: %.6g, outside x%.2f band of reference %.6g" exp
          name k m (1. +. tolerance) r
    | Jnull, Fl f when not (Float.is_finite f) -> ()
    | _ ->
      complain "%s/%s %s: kind differs from reference" exp name k
  in
  let compared = ref 0 in
  let skipped = ref 0 in
  (* worst-single-call statistics are dominated by scheduler and GC
     noise (one pause blows any reasonable band), and repetition counts
     are just the inverse of per-call latency under the fixed measuring
     budget: their presence is still required, but their values are not
     pinned *)
  let unpinnable k =
    let has_suffix suffix =
      let lk = String.length k and ls = String.length suffix in
      lk >= ls && String.sub k (lk - ls) ls = suffix
    in
    has_suffix "_max_s" || has_suffix "_count"
  in
  List.iter
    (fun kvs ->
      match committed_key kvs with
      | Some (exp, name) when List.mem exp ran_experiments -> (
        match
          List.find_opt (fun f -> fresh_key f = Some (exp, name)) fresh
        with
        | None ->
          complain "%s/%s: in the reference but not produced by this run" exp
            name
        | Some fields ->
          incr compared;
          List.iter
            (fun (k, reference) ->
              if k <> "experiment" && k <> "name" then
                match List.assoc_opt k fields with
                | None ->
                  complain "%s/%s: field %s missing from this run" exp name k
                | Some measured ->
                  if unpinnable k then incr skipped
                  else check_field ~exp ~name k reference measured)
            kvs)
      | _ -> ())
    committed;
  (* fresh rows absent from the reference are drift too: the reference is
     stale and needs a --json refresh *)
  List.iter
    (fun fields ->
      match fresh_key fields with
      | Some key
        when not (List.exists (fun kvs -> committed_key kvs = Some key) committed)
        ->
        complain "%s/%s: produced by this run but not in %s (refresh with --json)"
          (fst key) (snd key) path
      | _ -> ())
    fresh;
  match List.rev !failures with
  | [] ->
    Printf.printf
      "\n--check %s: %d records within the x%.2f band (%d noise-dominated \
       fields present but not value-pinned)\n"
      path !compared (1. +. tolerance) !skipped;
    true
  | fs ->
    Printf.printf "\n--check %s FAILED (%d violations):\n" path (List.length fs);
    List.iter (fun m -> Printf.printf "  %s\n" m) fs;
    false

let pretty_time s =
  if s < 1e-6 then Printf.sprintf "%.0f ns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.1f µs" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.1f ms" (s *. 1e3)
  else Printf.sprintf "%.2f s" s

let pretty_bytes b =
  if b < 1024 then Printf.sprintf "%d B" b
  else if b < 1024 * 1024 then Printf.sprintf "%.1f KiB" (float_of_int b /. 1024.)
  else Printf.sprintf "%.2f MiB" (float_of_int b /. 1048576.)

let header title =
  Printf.printf "\n=== %s ===\n%!" title

(* ---------------------------------------------------------------------- *)
(* Workloads, generic over the field.                                      *)
(* ---------------------------------------------------------------------- *)

module Work (F : Prio.Field_intf.S) = struct
  module P = Prio.Make (F)
  module C = P.Circuit

  let rng = Rng.of_string_seed ("bench-" ^ F.name)
  let master = Rng.bytes rng 32

  (* Valid: every coordinate is a bit (the Figure 4/5 workload). *)
  let bits_circuit l =
    let b = C.Builder.create ~num_inputs:l in
    for i = 0 to l - 1 do
      C.Builder.assert_bit b (C.Builder.input b i)
    done;
    C.Builder.build b

  let bits_encoding l = Array.init l (fun _ -> F.of_int (Rng.int_below rng 2))

  (* L four-bit integers summed at the servers (the Table 3 workload):
     per integer, a value slot plus its bit decomposition. *)
  let multi_sum_circuit ~count ~bits =
    let b = C.Builder.create ~num_inputs:(count * (bits + 1)) in
    for k = 0 to count - 1 do
      let base = k * (bits + 1) in
      let value = C.Builder.input b base in
      let bit_wires = List.init bits (fun i -> C.Builder.input b (base + 1 + i)) in
      List.iter (C.Builder.assert_bit b) bit_wires;
      C.Builder.assert_binary_decomposition b ~value ~bits:bit_wires
    done;
    C.Builder.build b

  let multi_sum_encoding ~count ~bits =
    Array.concat
      (List.init count (fun _ ->
           let x = Rng.int_below rng (1 lsl bits) in
           Array.append [| F.of_int x |]
             (Array.init bits (fun i -> F.of_int ((x lsr i) land 1)))))

  (* One-hot survey blocks (Beck-21, PCRI-78 of Figure 7). *)
  let survey_circuit ~questions ~scale =
    let b = C.Builder.create ~num_inputs:(questions * scale) in
    for q = 0 to questions - 1 do
      C.Builder.assert_one_hot b
        (List.init scale (fun a -> C.Builder.input b ((q * scale) + a)))
    done;
    C.Builder.build b

  let survey_encoding ~questions ~scale =
    Array.concat
      (List.init questions (fun _ ->
           let a = Rng.int_below rng scale in
           Array.init scale (fun i -> if i = a then F.one else F.zero)))

  (* Client-side cost of a complete submission (encode is given; this
     times share + prove + seal). *)
  let client_submission_seconds ~mode encoding =
    measure (fun () ->
        P.Client.submit ~rng ~mode ~num_servers:5 ~client_id:0 ~master encoding)

  (* Build a cluster, pre-generate [n] submissions, and measure server-side
     serial processing seconds. *)
  let server_run ~mode ~circuit ~trunc_len ~num_servers ~n encoding_of =
    let cluster =
      P.Cluster.create ~rng ~mode ~circuit ~trunc_len ~num_servers ~master ()
    in
    let encodings = List.init n (fun i -> encoding_of i) in
    let prepared = P.Pipeline.prepare ~rng cluster encodings in
    let accepted, secs = P.Pipeline.process cluster prepared in
    assert (accepted = n);
    (cluster, prepared, secs)
end

module W87 = Work (Prio.F87)
module W265 = Work (Prio.F265)

(* ---------------------------------------------------------------------- *)
(* Table 3: client submission time, L four-bit integers, two field sizes.  *)
(* ---------------------------------------------------------------------- *)

let table3 () =
  header "Table 3: client time (s) to generate a submission of L four-bit integers";
  let mul87 =
    let x = ref (Prio.F87.of_int 1234567) in
    measure (fun () -> x := Prio.F87.mul !x !x)
  in
  let mul265 =
    let x = ref (Prio.F265.of_int 1234567) in
    measure (fun () -> x := Prio.F265.mul !x !x)
  in
  Printf.printf "%-24s %14s %14s\n" "" "87-bit field" "265-bit field";
  Printf.printf "%-24s %14s %14s\n" "Mul. in field"
    (pretty_time mul87) (pretty_time mul265);
  List.iter
    (fun count ->
      let t87 =
        let circuit = W87.multi_sum_circuit ~count ~bits:4 in
        let enc = W87.multi_sum_encoding ~count ~bits:4 in
        W87.client_submission_seconds ~mode:(W87.P.Client.Robust_snip circuit) enc
      in
      let t265 =
        let circuit = W265.multi_sum_circuit ~count ~bits:4 in
        let enc = W265.multi_sum_encoding ~count ~bits:4 in
        W265.client_submission_seconds ~mode:(W265.P.Client.Robust_snip circuit) enc
      in
      Printf.printf "%-24s %14s %14s\n"
        (Printf.sprintf "L = 10^%d" (int_of_float (Float.round (log10 (float_of_int count)))))
        (pretty_time t87) (pretty_time t265))
    [ 10; 100; 1000 ]

(* ---------------------------------------------------------------------- *)
(* Figure 4: server throughput vs submission length, five schemes.         *)
(* ---------------------------------------------------------------------- *)

let fig4 () =
  header "Figure 4: submissions processed/s vs submission length (field elements)";
  Printf.printf "%-8s %12s %14s %10s %10s %10s\n" "L" "No privacy"
    "No robustness" "Prio" "Prio-MPC" "NIZK";
  let module W = W87 in
  let lengths = [ 16; 64; 256; 1024; 4096 ] in
  List.iter
    (fun l ->
      let n = Stdlib.max 2 (Stdlib.min 12 (2048 / l)) in
      let circuit = W.bits_circuit l in
      let rate mode num_servers =
        let _, _, secs =
          W.server_run ~mode ~circuit ~trunc_len:l ~num_servers ~n (fun _ ->
              W.bits_encoding l)
        in
        W.P.Pipeline.simulated_throughput ~num_servers ~n ~serial_seconds:secs
      in
      let no_priv = rate W.P.Cluster.No_robustness 1 in
      let no_rob = rate W.P.Cluster.No_robustness 5 in
      let prio = rate W.P.Cluster.Robust_snip 5 in
      let mpc = rate W.P.Cluster.Robust_mpc 5 in
      let nizk =
        if l > 1024 then nan
        else begin
          let module NP = Prio.Nizk_pipeline in
          let bits = Array.init l (fun _ -> Rng.int_below W.rng 2) in
          let sub = NP.client ~rng:W.rng ~bits ~s:5 in
          let secs = measure ~min_reps:1 ~min_time:0.1 (fun () ->
              assert (NP.server_process ~s:5 sub))
          in
          5. /. secs
        end
      in
      Printf.printf "%-8d %12.0f %14.0f %10.0f %10.1f %10s\n" l no_priv no_rob
        prio mpc
        (if Float.is_nan nizk then "--" else Printf.sprintf "%.2f" nizk);
      record ~experiment:"fig4" ~name:(Printf.sprintf "l%d" l)
        [
          ("l", I l);
          ("no_privacy_per_s", Fl no_priv);
          ("no_robustness_per_s", Fl no_rob);
          ("prio_per_s", Fl prio);
          ("prio_mpc_per_s", Fl mpc);
          ("nizk_per_s", Fl nizk);
        ])
    lengths;
  print_endline "(--: NIZK omitted above L=1024; its cost continues to grow linearly)"

(* ---------------------------------------------------------------------- *)
(* Figure 5: throughput vs number of servers (L = 1024 one-bit integers).  *)
(* ---------------------------------------------------------------------- *)

let fig5 () =
  header "Figure 5: submissions processed/s vs number of servers (L = 1024 bits)";
  Printf.printf "%-8s %14s %10s %10s %10s\n" "servers" "No robustness" "Prio"
    "Prio-MPC" "NIZK";
  let module W = W87 in
  let l = 1024 in
  let circuit = W.bits_circuit l in
  let n = 4 in
  List.iter
    (fun s ->
      let rate mode =
        let _, _, secs =
          W.server_run ~mode ~circuit ~trunc_len:l ~num_servers:s ~n (fun _ ->
              W.bits_encoding l)
        in
        W.P.Pipeline.simulated_throughput ~num_servers:s ~n ~serial_seconds:secs
      in
      let no_rob = rate W.P.Cluster.No_robustness in
      let prio = rate W.P.Cluster.Robust_snip in
      let mpc = rate W.P.Cluster.Robust_mpc in
      let nizk =
        if s <> 2 && s <> 5 && s <> 10 then nan
        else begin
          let module NP = Prio.Nizk_pipeline in
          let bits = Array.init l (fun _ -> Rng.int_below W.rng 2) in
          let sub = NP.client ~rng:W.rng ~bits ~s in
          let secs =
            measure ~min_reps:1 ~min_time:0.05 (fun () ->
                assert (NP.server_process ~s sub))
          in
          float_of_int s /. secs
        end
      in
      Printf.printf "%-8d %14.0f %10.0f %10.1f %10s\n" s no_rob prio mpc
        (if Float.is_nan nizk then "--" else Printf.sprintf "%.2f" nizk);
      record ~experiment:"fig5" ~name:(Printf.sprintf "s%d" s)
        [
          ("servers", I s);
          ("no_robustness_per_s", Fl no_rob);
          ("prio_per_s", Fl prio);
          ("prio_mpc_per_s", Fl mpc);
          ("nizk_per_s", Fl nizk);
        ])
    [ 2; 3; 4; 5; 6; 8; 10 ]

(* ---------------------------------------------------------------------- *)
(* Figure 6: per-server data transfer per submission vs length.            *)
(* ---------------------------------------------------------------------- *)

let fig6 () =
  header "Figure 6: non-leader per-server data transfer per submission";
  Printf.printf "%-8s %12s %12s %12s\n" "L" "Prio" "Prio-MPC" "NIZK";
  let module W = W87 in
  List.iter
    (fun l ->
      let circuit = W.bits_circuit l in
      let transfer mode =
        let cluster, _, _ =
          W.server_run ~mode ~circuit ~trunc_len:l ~num_servers:5 ~n:1 (fun _ ->
              W.bits_encoding l)
        in
        (* server 1 never led (the single submission was led by server 0) *)
        W.P.Cluster.bytes_sent cluster 1
      in
      let prio = transfer W.P.Cluster.Robust_snip in
      let mpc = transfer W.P.Cluster.Robust_mpc in
      let nizk = Prio.Nizk_pipeline.per_server_bytes ~l in
      Printf.printf "%-8d %12s %12s %12s\n" l (pretty_bytes prio)
        (pretty_bytes mpc) (pretty_bytes nizk);
      record ~experiment:"fig6" ~name:(Printf.sprintf "l%d" l)
        [
          ("l", I l);
          ("prio_bytes", I prio);
          ("prio_mpc_bytes", I mpc);
          ("nizk_bytes", I nizk);
        ])
    [ 4; 16; 64; 256; 1024; 4096; 16384 ]

(* ---------------------------------------------------------------------- *)
(* Figure 7: client encoding time across application domains.              *)
(* ---------------------------------------------------------------------- *)

type fig7_workload = {
  w_name : string;
  domain : string;
  circuit : W87.C.t;
  encoding : Prio.F87.t array;
}

let fig7_workloads () =
  let module W = W87 in
  let hist buckets =
    let circuit =
      let b = W.C.Builder.create ~num_inputs:buckets in
      W.C.Builder.assert_one_hot b (List.init buckets (fun i -> W.C.Builder.input b i));
      W.C.Builder.build b
    in
    let enc = Array.make buckets Prio.F87.zero in
    enc.(Rng.int_below W.rng buckets) <- Prio.F87.one;
    (circuit, enc)
  in
  let countmin depth width =
    let module CM = W.P.Afe_countmin in
    let afe = CM.count_min ~params:CM.{ depth; width } in
    (afe.W.P.Afe.circuit, afe.W.P.Afe.encode ~rng:W.rng "https://example.com")
  in
  let survey questions =
    (W.survey_circuit ~questions ~scale:4, W.survey_encoding ~questions ~scale:4)
  in
  let bits l = (W.bits_circuit l, W.bits_encoding l) in
  let linreg d b =
    let module R = W.P.Afe_regression in
    let afe = R.least_squares ~d ~bits:b in
    let features = Array.init d (fun _ -> Rng.int_below W.rng (1 lsl b)) in
    let target = Rng.int_below W.rng (1 lsl b) in
    (afe.W.P.Afe.circuit, afe.W.P.Afe.encode ~rng:W.rng R.{ features; target })
  in
  let make domain w_name (circuit, encoding) = { w_name; domain; circuit; encoding } in
  [
    make "Cell" "Geneva" (hist 64);
    make "Cell" "Seattle" (hist 868);
    make "Cell" "Chicago" (hist 2424);
    make "Cell" "London" (hist 6280);
    make "Cell" "Tokyo" (hist 8760);
    make "Browser" "LowRes" (countmin 4 20);
    make "Browser" "HighRes" (countmin 10 141);
    make "Survey" "Beck-21" (survey 21);
    make "Survey" "PCSI-78" (survey 78);
    make "Survey" "CPI-434" (bits 434);
    make "LinReg" "Heart" (linreg 13 5);
    make "LinReg" "BrCa" (linreg 30 14);
  ]

let fig7 () =
  header "Figure 7: client encoding time (s) per application domain";
  Printf.printf "%-9s %-10s %7s %10s %10s %10s %12s\n" "domain" "workload"
    "xgates" "Prio" "Prio-MPC" "NIZK" "SNARK (est.)";
  let module W = W87 in
  let exp_seconds = Prio.Snark_estimate.measure_exp_seconds ~iters:20 () in
  (* per-bit NIZK client cost, measured once and scaled linearly *)
  let nizk_sample = 128 in
  let nizk_per_bit =
    let bits = Array.init nizk_sample (fun _ -> Rng.int_below W.rng 2) in
    measure ~min_reps:1 ~min_time:0.1 (fun () ->
        Prio.Nizk_bitproof.client_encode W.rng bits)
    /. float_of_int nizk_sample
  in
  List.iter
    (fun { w_name; domain; circuit; encoding } ->
      let m = W.C.num_mul_gates circuit in
      let prio =
        W.client_submission_seconds ~mode:(W.P.Client.Robust_snip circuit) encoding
      in
      let mpc =
        W.client_submission_seconds ~mode:(W.P.Client.Robust_mpc m) encoding
      in
      let nizk = nizk_per_bit *. float_of_int m in
      let snark =
        Prio.Snark_estimate.client_seconds ~exp_seconds ~mul_gates:m
          ~l:(Array.length encoding) ~s:5 ()
      in
      Printf.printf "%-9s %-10s %7d %10s %10s %10s %12s\n" domain w_name m
        (pretty_time prio) (pretty_time mpc) (pretty_time nizk)
        (pretty_time snark))
    (fig7_workloads ())

(* ---------------------------------------------------------------------- *)
(* Figure 8: client encoding time vs regression dimension.                 *)
(* ---------------------------------------------------------------------- *)

let regression_dims = [ 2; 4; 6; 8; 10; 12 ]
let regression_bits = 14

let fig8 () =
  header "Figure 8: client time (s) to encode a d-dimensional 14-bit training example";
  Printf.printf "%-6s %12s %14s %10s\n" "d" "No privacy" "No robustness" "Prio";
  let module W = W87 in
  let module R = W.P.Afe_regression in
  List.iter
    (fun d ->
      let afe = R.least_squares ~d ~bits:regression_bits in
      let example =
        R.
          {
            features =
              Array.init d (fun _ -> Rng.int_below W.rng (1 lsl regression_bits));
            target = Rng.int_below W.rng (1 lsl regression_bits);
          }
      in
      (* no privacy: AFE encoding only (what a plaintext system uploads) *)
      let no_priv = measure (fun () -> afe.W.P.Afe.encode ~rng:W.rng example) in
      let encoding = afe.W.P.Afe.encode ~rng:W.rng example in
      let no_rob =
        W.client_submission_seconds ~mode:W.P.Client.No_robustness encoding
      in
      let prio =
        W.client_submission_seconds
          ~mode:(W.P.Client.Robust_snip afe.W.P.Afe.circuit)
          encoding
      in
      Printf.printf "%-6d %12s %14s %10s\n" d (pretty_time no_priv)
        (pretty_time no_rob) (pretty_time prio))
    regression_dims

(* ---------------------------------------------------------------------- *)
(* Table 9: five-server throughput for private d-dim regression.           *)
(* ---------------------------------------------------------------------- *)

let table9 () =
  header "Table 9: throughput (submissions/s) of a 5-server cluster, d-dim regression";
  Printf.printf "%-4s %10s %14s %10s %11s %12s %9s\n" "d" "No privacy"
    "No robustness" "Prio" "Priv. cost" "Robust. cost" "Tot. cost";
  let module W = W87 in
  let module R = W.P.Afe_regression in
  List.iter
    (fun d ->
      let afe = R.least_squares ~d ~bits:regression_bits in
      let circuit = afe.W.P.Afe.circuit in
      let trunc = afe.W.P.Afe.trunc_len in
      let encoding_of _ =
        afe.W.P.Afe.encode ~rng:W.rng
          R.
            {
              features =
                Array.init d (fun _ -> Rng.int_below W.rng (1 lsl regression_bits));
              target = Rng.int_below W.rng (1 lsl regression_bits);
            }
      in
      let n = 12 in
      let rate mode num_servers =
        let _, _, secs =
          W.server_run ~mode ~circuit ~trunc_len:trunc ~num_servers ~n encoding_of
        in
        W.P.Pipeline.simulated_throughput ~num_servers ~n ~serial_seconds:secs
      in
      let no_priv = rate W.P.Cluster.No_robustness 1 in
      let no_rob = rate W.P.Cluster.No_robustness 5 in
      let prio = rate W.P.Cluster.Robust_snip 5 in
      Printf.printf "%-4d %10.0f %14.0f %10.0f %10.1fx %11.1fx %8.1fx\n" d
        no_priv no_rob prio (no_priv /. no_rob) (no_rob /. prio)
        (no_priv /. prio);
      record ~experiment:"table9" ~name:(Printf.sprintf "d%d" d)
        [
          ("d", I d);
          ("no_privacy_per_s", Fl no_priv);
          ("no_robustness_per_s", Fl no_rob);
          ("prio_per_s", Fl prio);
        ])
    regression_dims

(* ---------------------------------------------------------------------- *)
(* Table 2: the asymptotic comparison, made concrete.                      *)
(* ---------------------------------------------------------------------- *)

let table2 () =
  header "Table 2: cost shape per submission (x = M bits), measured";
  Printf.printf "%-8s %16s %18s %16s %18s\n" "M" "Prio proof len"
    "Prio srv transfer" "NIZK proof len" "client exps (NIZK)";
  let module W = W87 in
  List.iter
    (fun m ->
      let circuit = W.bits_circuit m in
      let proof_elts = W.P.Snip.proof_num_elements circuit in
      let cluster, _, _ =
        W.server_run ~mode:W.P.Cluster.Robust_snip ~circuit ~trunc_len:m
          ~num_servers:5 ~n:1 (fun _ -> W.bits_encoding m)
      in
      let srv = W.P.Cluster.bytes_sent cluster 1 in
      Printf.printf "%-8d %13d el %16s %13d B %18d\n" m proof_elts
        (pretty_bytes srv)
        (m * Prio.Nizk_bitproof.proof_bytes)
        (6 * m);
      record ~experiment:"table2" ~name:(Printf.sprintf "m%d" m)
        [
          ("m", I m);
          ("proof_elements", I proof_elts);
          ("server_bytes", I srv);
          ("nizk_proof_bytes", I (m * Prio.Nizk_bitproof.proof_bytes));
          ("nizk_client_exps", I (6 * m));
        ])
    [ 4; 16; 64; 256; 1024 ];
  print_endline
    "(Prio: proof length Θ(M), server transfer Θ(1), zero client\n\
    \ exponentiations — vs the NIZK's Θ(M) proofs and 2M+ exponentiations.)"

(* ---------------------------------------------------------------------- *)
(* Ablation: what the Appendix I optimizations buy.                        *)
(* ---------------------------------------------------------------------- *)

let ablation () =
  header "Ablation: optimized SNIP (App. I) vs the paper-literal reference";
  Printf.printf "%-8s %14s %14s %10s %16s %16s %10s\n" "M" "prove (opt)"
    "prove (ref)" "speedup" "verify (opt)" "verify (ref)" "speedup";
  let module W = W87 in
  let module Ref = Prio_snip.Reference.Make (Prio.F87) in
  List.iter
    (fun m ->
      let circuit = W.bits_circuit m in
      let enc = W.bits_encoding m in
      let p_opt =
        measure_stats (fun () ->
            W.P.Snip.prove ~rng:W.rng ~circuit ~num_servers:5 ~inputs:enc)
      in
      let p_ref =
        measure ~min_reps:1 ~min_time:0.05 (fun () ->
            Ref.prove ~rng:W.rng ~circuit ~num_servers:5 ~inputs:enc)
      in
      let ctx = W.P.Snip.make_batch_ctx ~rng:W.rng ~circuit ~num_servers:5 in
      let subs_opt = W.P.Snip.prove ~rng:W.rng ~circuit ~num_servers:5 ~inputs:enc in
      let subs_ref = Ref.prove ~rng:W.rng ~circuit ~num_servers:5 ~inputs:enc in
      let v_opt =
        measure_stats (fun () -> assert (W.P.Snip.verify_all ctx subs_opt))
      in
      let v_ref =
        measure ~min_reps:1 ~min_time:0.05 (fun () ->
            assert (Ref.verify ~rng:W.rng circuit subs_ref))
      in
      Printf.printf "%-8d %14s %14s %9.1fx %16s %16s %9.1fx\n" m
        (pretty_time p_opt.mean) (pretty_time p_ref) (p_ref /. p_opt.mean)
        (pretty_time v_opt.mean) (pretty_time v_ref) (v_ref /. v_opt.mean);
      record ~experiment:"ablation" ~name:(Printf.sprintf "m%d" m)
        [
          ("m", I m);
          ("prove_opt_s", Fl p_opt.mean);
          ("prove_opt_min_s", Fl p_opt.min_s);
          ("prove_opt_max_s", Fl p_opt.max_s);
          ("prove_opt_count", I p_opt.count);
          ("prove_ref_s", Fl p_ref);
          ("verify_opt_s", Fl v_opt.mean);
          ("verify_opt_min_s", Fl v_opt.min_s);
          ("verify_opt_max_s", Fl v_opt.max_s);
          ("verify_opt_count", I v_opt.count);
          ("verify_ref_s", Fl v_ref);
        ])
    [ 16; 64; 256 ]

(* ---------------------------------------------------------------------- *)
(* Circuit optimizer: what the pass pipeline buys, per AFE specimen.       *)
(* ---------------------------------------------------------------------- *)

let circuit_opt () =
  header "Circuit optimizer: mul gates and SNIP cost, raw vs optimized";
  Printf.printf "%-22s %11s %14s %14s %8s %14s %14s %8s\n" "AFE"
    "muls r->o" "prove (raw)" "prove (opt)" "speedup" "verify (raw)"
    "verify (opt)" "speedup";
  let module W = W87 in
  let module Z = W.P.Afe_zoo in
  let module C = W.P.Circuit in
  let s = W.P.Snip.proof_num_elements in
  List.iter
    (fun e ->
      let raw = e.Z.raw and opt = e.Z.optimized in
      let m_raw = C.num_mul_gates raw and m_opt = C.num_mul_gates opt in
      let enc = e.Z.sample W.rng in
      let p_raw =
        measure_stats (fun () ->
            W.P.Snip.prove_raw ~rng:W.rng ~circuit:raw ~num_servers:5
              ~inputs:enc)
      in
      let p_opt =
        measure_stats (fun () ->
            W.P.Snip.prove ~rng:W.rng ~circuit:opt ~num_servers:5 ~inputs:enc)
      in
      let ctx_raw =
        W.P.Snip.make_batch_ctx_raw ~rng:W.rng ~circuit:raw ~num_servers:5
      in
      let ctx_opt =
        W.P.Snip.make_batch_ctx ~rng:W.rng ~circuit:opt ~num_servers:5
      in
      let subs_raw =
        W.P.Snip.prove_raw ~rng:W.rng ~circuit:raw ~num_servers:5 ~inputs:enc
      in
      let subs_opt =
        W.P.Snip.prove ~rng:W.rng ~circuit:opt ~num_servers:5 ~inputs:enc
      in
      let v_raw =
        measure_stats (fun () -> assert (W.P.Snip.verify_all ctx_raw subs_raw))
      in
      let v_opt =
        measure_stats (fun () -> assert (W.P.Snip.verify_all ctx_opt subs_opt))
      in
      Printf.printf "%-22s %4d ->%4d %14s %14s %7.1fx %14s %14s %7.1fx\n"
        e.Z.name m_raw m_opt (pretty_time p_raw.mean) (pretty_time p_opt.mean)
        (p_raw.mean /. p_opt.mean) (pretty_time v_raw.mean)
        (pretty_time v_opt.mean) (v_raw.mean /. v_opt.mean);
      record ~experiment:"circuit_opt" ~name:e.Z.name
        [
          ("family", S e.Z.family);
          ("mul_raw", I m_raw);
          ("mul_opt", I m_opt);
          ("wires_raw", I (C.num_wires raw));
          ("wires_opt", I (C.num_wires opt));
          ("proof_elements_raw", I (s raw));
          ("proof_elements_opt", I (s opt));
          ("prove_raw_s", Fl p_raw.mean);
          ("prove_raw_count", I p_raw.count);
          ("prove_opt_s", Fl p_opt.mean);
          ("prove_opt_min_s", Fl p_opt.min_s);
          ("prove_opt_max_s", Fl p_opt.max_s);
          ("prove_opt_count", I p_opt.count);
          ("verify_raw_s", Fl v_raw.mean);
          ("verify_raw_count", I v_raw.count);
          ("verify_opt_s", Fl v_opt.mean);
          ("verify_opt_min_s", Fl v_opt.min_s);
          ("verify_opt_max_s", Fl v_opt.max_s);
          ("verify_opt_count", I v_opt.count);
        ])
    (Z.all ());
  print_endline
    "(proof length and verify work scale with mul gates; the optimizer's\n\
    \ reductions come from deduplicating defensively-stated AFE builders)"

(* ---------------------------------------------------------------------- *)
(* TCP deployment: end-to-end throughput over real sockets and processes.  *)
(* ---------------------------------------------------------------------- *)

let net () =
  header "TCP deployment: end-to-end submissions/s (real processes and sockets)";
  Printf.printf "%-8s %10s %14s %14s %14s\n" "L" "servers" "submissions/s"
    "upload/client" "server bytes";
  let module Wk = W87 in
  let module Net = Wk.P.Net in
  let module Metrics = Prio.Obs_metrics in
  let c_upload = Metrics.counter "prio_client_upload_bytes_total" in
  let c_link = Metrics.counter "prio_server_link_bytes_total" in
  List.iter
    (fun (l, s) ->
      let circuit = Wk.bits_circuit l in
      let cfg =
        Net.
          {
            circuit;
            trunc_len = l;
            num_servers = s;
            master = Wk.master;
            batch_seed = Rng.bytes Wk.rng 32;
          }
      in
      let n = Stdlib.max 4 (256 / l) in
      (* Seal every submission up front so the two byte-accounting paths
         can be compared: the legacy per-packet [upload_bytes] field
         against the unified Obs counter, which must agree exactly. *)
      let upload_before = Metrics.value c_upload in
      let packets =
        Array.init n (fun i ->
            Wk.P.Client.submit ~rng:Wk.rng
              ~mode:(Wk.P.Client.Robust_snip circuit)
              ~num_servers:s ~client_id:i ~master:Wk.master
              (Wk.bits_encoding l))
      in
      let legacy_upload =
        Array.fold_left
          (fun acc pk -> acc + pk.Wk.P.Client.upload_bytes)
          0 packets
      in
      let obs_upload = Metrics.value c_upload - upload_before in
      assert (obs_upload = legacy_upload);
      let d = Net.launch cfg in
      let _, secs =
        Prio_proto.Pipeline.time (fun () ->
            Array.iteri
              (fun i pk -> assert (Net.submit_packets d ~rng:Wk.rng ~client_id:i pk))
              packets)
      in
      Net.shutdown d;
      (* Same cross-check for server-to-server traffic, on an in-process
         cluster of the same shape: the per-link matrix behind
         [Cluster.total_server_bytes] against the Obs link counter. *)
      let link_before = Metrics.value c_link in
      let cluster, _, _ =
        Wk.server_run ~mode:Wk.P.Cluster.Robust_snip ~circuit ~trunc_len:l
          ~num_servers:s ~n (fun _ -> Wk.bits_encoding l)
      in
      let legacy_link = Wk.P.Cluster.total_server_bytes cluster in
      let obs_link = Metrics.value c_link - link_before in
      assert (obs_link = legacy_link);
      (* this path includes the client work and kernel round-trips; server
         processes genuinely run in parallel, so wall-clock is the honest
         denominator here *)
      Printf.printf "%-8d %10d %14.1f %14s %14s\n" l s
        (float_of_int n /. secs)
        (pretty_bytes (legacy_upload / n))
        (pretty_bytes legacy_link);
      record ~experiment:"net" ~name:(Printf.sprintf "l%d_s%d" l s)
        [
          ("l", I l);
          ("servers", I s);
          ("n", I n);
          ("seconds", Fl secs);
          ("submissions_per_s", Fl (float_of_int n /. secs));
          ("upload_bytes_legacy", I legacy_upload);
          ("upload_bytes_obs", I obs_upload);
          ("server_bytes_legacy", I legacy_link);
          ("server_bytes_obs", I obs_link);
        ])
    [ (16, 3); (256, 3); (1024, 5) ]

(* ---------------------------------------------------------------------- *)
(* Streaming capstone: 100k+ submissions through a sharded TCP deployment  *)
(* with epoch rotation keeping server memory flat, persistent client       *)
(* sessions, and a mid-run follower crash restored from its checkpoint.    *)
(* ---------------------------------------------------------------------- *)

(* Resident set of a live process from /proc/<pid>/statm (pages; Linux
   pages are 4 KiB here); 0 when unreadable (process gone / non-Linux). *)
let proc_rss_bytes pid =
  match open_in (Printf.sprintf "/proc/%d/statm" pid) with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match String.split_on_char ' ' (input_line ic) with
        | _ :: resident :: _ ->
          (try int_of_string resident * 4096 with Failure _ -> 0)
        | _ | (exception End_of_file) -> 0)

let streaming () =
  header "Streaming: sharded TCP deployment, epochs, crash+restore, flat RSS";
  let module Wk = W87 in
  let module Net = Wk.P.Net in
  let afe = Wk.P.Afe_sum.sum ~bits:1 in
  let shards = 2 and num_servers = 3 in
  let total_n =
    (* the capstone default pushes 100k+ submissions; the env knob keeps
       smoke runs of the full suite fast *)
    match Sys.getenv_opt "PRIO_BENCH_STREAM_N" with
    | Some s -> ( try int_of_string s with Failure _ -> 100_000)
    | None -> 100_000
  in
  let per_shard = total_n / shards in
  let epoch_size = 2_500 in
  (* kill the follower when shard 0 sits exactly on an epoch boundary:
     rotation snapshots the server, so with the stream paused and the
     event loop drained the latest checkpoint is current and the restore
     is lossless — the strongest consistency claim a crash drill can
     assert without two-phase decision broadcast *)
  let crash_after = per_shard / 2 / epoch_size * epoch_size in
  let ckpt_dirs =
    Array.init shards (fun i ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "prio-bench-ckpt-%d-%d" (Unix.getpid ()) i)
        in
        (try Unix.mkdir dir 0o700 with Unix.Unix_error (EEXIST, _, _) -> ());
        dir)
  in
  let deployments =
    Array.init shards (fun i ->
        let tuning =
          Prio_proto.Net.
            {
              default_tuning with
              epoch_size;
              checkpoint_dir = Some ckpt_dirs.(i);
              (* rotation is the snapshot trigger; per-decision snapshots
                 would fsync once per submission *)
              checkpoint_every = max_int;
            }
        in
        let cfg =
          Net.
            {
              circuit = afe.Wk.P.Afe.circuit;
              trunc_len = afe.Wk.P.Afe.trunc_len;
              num_servers;
              master = Wk.master;
              batch_seed = Rng.bytes Wk.rng 32;
            }
        in
        Net.launch ~tuning cfg)
  in
  let sessions = Array.map Net.open_session deployments in
  let accepted = Array.make shards 0 in
  let expected = ref 0 in
  let crashed = ref false in
  let after_crash = ref 0 in
  let restore_latency = ref 0. in
  let rss_warm = ref 0 and rss_final = ref 0 in
  let shard0_follower () = deployments.(0).Net.pids.(1) in
  let submit_exn shard ~client_id v =
    match
      Net.submit_session sessions.(shard) ~rng:Wk.rng ~client_id
        (afe.Wk.P.Afe.encode ~rng:Wk.rng v)
    with
    | Net.Accepted ->
      accepted.(shard) <- accepted.(shard) + 1;
      expected := !expected + v
    | Net.Rejected why -> failwith ("streaming: honest submission nacked: " ^ why)
    | Net.Unreachable e ->
      failwith ("streaming: " ^ Prio_proto.Net.string_of_protocol_error e)
  in
  let t0 = now () in
  for i = 0 to total_n - 1 do
    let shard = i mod shards in
    submit_exn shard ~client_id:i (i land 1);
    if shard = 0 then begin
      let done0 = accepted.(0) in
      if (not !crashed) && done0 = crash_after then begin
        crashed := true;
        (* pause: let the follower drain its decision queue and finish the
           boundary snapshot before the lights go out *)
        Unix.sleepf 0.3;
        Unix.kill (shard0_follower ()) Sys.sigkill;
        let rec wait_dead () =
          match (Net.poll_servers deployments.(0)).(1) with
          | Net.Exited _ -> ()
          | Net.Running ->
            Unix.sleepf 0.01;
            wait_dead ()
        in
        wait_dead ();
        let t = now () in
        Net.restart_server deployments.(0) 1;
        (* restore latency = restart to first accepted submission; the
           session redials the follower transparently *)
        submit_exn 0 ~client_id:(total_n + 1) 0;
        restore_latency := now () -. t;
        Printf.printf "  crash+restore at %d shard-0 decisions: %s\n%!"
          crash_after (pretty_time !restore_latency)
      end
      (* both RSS samples are of the restored process: one midway between
         the restore and the end of the stream, one at the end — with
         per-epoch table rotation the gap covers thousands of decisions
         and must stay flat *)
      else if !crashed then begin
        incr after_crash;
        if !after_crash = (per_shard - crash_after) / 2 then
          rss_warm := proc_rss_bytes (shard0_follower ())
      end
    end
  done;
  rss_final := proc_rss_bytes (shard0_follower ());
  let secs = now () -. t0 in
  Array.iter Net.close_session sessions;
  let total =
    Array.to_list deployments
    |> List.mapi (fun i d ->
           match Net.collect_aggregate d with
           | Error (srv, e) ->
             failwith
               (Printf.sprintf "streaming: shard %d server %d: %s" i srv
                  (Prio_proto.Net.string_of_protocol_error e))
           | Ok sigma ->
             int_of_string
               (Prio_bigint.Bigint.to_string
                  (afe.Wk.P.Afe.decode ~n:accepted.(i) sigma)))
    |> List.fold_left ( + ) 0
  in
  (* per-stage latency percentiles, mined from the shard-0 leader while it
     is still running: a live [q]-frame scrape of its metrics registry in
     JSON form — the histograms live in the server process, not ours *)
  let stage_fields, journal_fields =
    match
      Prio_proto.Net.scrape_metrics ~format:`Json
        deployments.(0).Net.addrs.(0)
    with
    | Error e ->
      Printf.printf "  (stage scrape failed: %s)\n"
        (Prio_proto.Net.string_of_protocol_error e);
      ([], [])
    | Ok text -> (
      match json_parse text with
      | exception Json_error _ -> ([], [])
      | report ->
        let stages =
          List.concat_map
            (fun stage ->
              let h =
                json_member
                  (Printf.sprintf "prio_stage_%s_seconds" stage)
                  report
              in
              List.filter_map
                (fun q ->
                  match Option.map (json_member q) h with
                  | Some (Some (Jnum v)) ->
                    Some (Printf.sprintf "%s_%s_s" stage q, Fl v)
                  | _ -> None)
                [ "p50"; "p95"; "p99" ])
            [ "admit"; "verify"; "aggregate"; "checkpoint" ]
        in
        (* the durability price of the two-phase commit: every decision
           is write-ahead journaled + fsynced before it is acked. The
           mean is band-checked; the worst single fsync and the append
           count are presence-only (`*_max_s` / `*_count`). *)
        let journal =
          (match json_member "prio_journal_appends_total" report with
          | Some (Jnum v) -> [ ("journal_appends_count", I (int_of_float v)) ]
          | _ -> [])
          @
          match json_member "prio_journal_fsync_seconds" report with
          | Some h -> (
            match
              (json_member "count" h, json_member "sum" h, json_member "max" h)
            with
            | Some (Jnum c), Some (Jnum s), Some (Jnum m) when c > 0. ->
              [
                ("journal_fsync_mean_s", Fl (s /. c));
                ("journal_fsync_max_s", Fl m);
              ]
            | _ -> [])
          | None -> []
        in
        (stages, journal))
  in
  (match stage_fields with
  | [] -> ()
  | fs ->
    Printf.printf "  leader stage latency:%s\n"
      (String.concat ""
         (List.map
            (fun (k, v) ->
              Printf.sprintf " %s=%s" k
                (match v with Fl f -> pretty_time f | _ -> "?"))
            fs)));
  (match List.assoc_opt "journal_fsync_mean_s" journal_fields with
  | Some (Fl mean) ->
    Printf.printf "  journal fsync: mean=%s%s\n" (pretty_time mean)
      (match List.assoc_opt "journal_appends_count" journal_fields with
      | Some (I n) -> Printf.sprintf " over %d appends" n
      | _ -> "")
  | _ -> ());
  Array.iter Net.shutdown deployments;
  Array.iter
    (fun dir ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    ckpt_dirs;
  (* consistency across the crash: nothing checkpointed was lost, nothing
     double-counted *)
  assert (total = !expected);
  (* flat memory: the follower's RSS at the end of the stream is within
     noise of its RSS tens of epochs earlier (GC slack, not table growth) *)
  let growth =
    if !rss_warm = 0 then 1.
    else float_of_int !rss_final /. float_of_int !rss_warm
  in
  let flat = !rss_warm > 0 && growth < 1.25 in
  assert flat;
  Printf.printf
    "  %d submissions over %d shards: %.1f/s; RSS %s -> %s (x%.3f, flat)\n"
    total_n shards
    (float_of_int total_n /. secs)
    (pretty_bytes !rss_warm) (pretty_bytes !rss_final) growth;
  record ~experiment:"streaming" ~name:"capstone"
    ([
      ("n", I total_n);
      ("shards", I shards);
      ("servers_per_shard", I num_servers);
      ("epoch_size", I epoch_size);
      ("seconds", Fl secs);
      ("submissions_per_s", Fl (float_of_int total_n /. secs));
      ("crash_at_decisions", I crash_after);
      ("restore_latency_s", Fl !restore_latency);
      ("rss_warm_bytes", I !rss_warm);
      ("rss_final_bytes", I !rss_final);
      ("rss_growth_ratio", Fl growth);
      ("flat_memory", S (if flat then "true" else "false"));
      ("aggregate_matches", S (if total = !expected then "true" else "false"));
    ]
    @ stage_fields @ journal_fields)

(* ---------------------------------------------------------------------- *)
(* Appendix G: client upload size, three sharing strategies.               *)
(* ---------------------------------------------------------------------- *)

let compression () =
  header "Appendix G: client upload bytes for a one-hot vote over 2^b buckets";
  Printf.printf "%-8s %14s %18s %14s %14s\n" "b" "explicit (2srv)"
    "Prio (PRG, 2srv)" "DPF (2srv)" "DPF expand";
  let module W = W87 in
  let module Comp = Prio_proto.Compressed.Make (Prio.F87) in
  let module Hist = W.P.Afe_histogram in
  List.iter
    (fun b ->
      let buckets = 1 lsl b in
      let t = Comp.create ~bits:b in
      let dpf_bytes = Comp.submit W.rng t ~value:(buckets / 3) in
      let explicit = Comp.explicit_upload_bytes t in
      (* full Prio upload (PRG-compressed, with SNIP) for the same vote *)
      let afe = Hist.histogram ~buckets in
      let enc = afe.W.P.Afe.encode ~rng:W.rng (buckets / 3) in
      let pk =
        W.P.Client.submit ~rng:W.rng
          ~mode:(W.P.Client.Robust_snip afe.W.P.Afe.circuit)
          ~num_servers:2 ~client_id:0 ~master:W.master enc
      in
      let expand_secs =
        let k0, _ = W.P.Dpf.gen W.rng ~bits:b ~alpha:0 ~beta:Prio.F87.one in
        measure ~min_reps:2 ~min_time:0.05 (fun () -> W.P.Dpf.eval_all k0)
      in
      Printf.printf "%-8d %14s %18s %14s %14s\n" b (pretty_bytes explicit)
        (pretty_bytes pk.W.P.Client.upload_bytes)
        (pretty_bytes dpf_bytes) (pretty_time expand_secs);
      record ~experiment:"compression" ~name:(Printf.sprintf "b%d" b)
        [
          ("b", I b);
          ("explicit_bytes", I explicit);
          ("prio_upload_bytes", I pk.W.P.Client.upload_bytes);
          ("dpf_bytes", I dpf_bytes);
          ("dpf_expand_s", Fl expand_secs);
        ])
    [ 6; 8; 10; 12; 14 ];
  print_endline
    "(DPF trades server CPU (the expand column) for logarithmic upload;\n\
    \ robustness for compressed shares is future work, as in the paper.)"

(* ---------------------------------------------------------------------- *)
(* NTT plan cache: reused twiddle/bit-reversal tables vs recomputing the   *)
(* stage roots on every transform.                                         *)
(* ---------------------------------------------------------------------- *)

let ntt_plan () =
  header "NTT plan cache: cached twiddle tables vs per-transform recomputation";
  Printf.printf "%-12s %-8s %14s %14s %10s\n" "field" "n" "plan-cached"
    "uncached" "speedup";
  let run name (module F : Prio.Field_intf.S) =
    let module N = Prio_poly.Ntt.Make (F) in
    let rng = Rng.of_string_seed ("bench-ntt-plan-" ^ name) in
    List.iter
      (fun n ->
        let c = Array.init n (fun _ -> F.random rng) in
        ignore (N.ntt c) (* build the plan outside the timed region *);
        let cached = measure (fun () -> ignore (N.ntt c)) in
        let uncached = measure (fun () -> ignore (N.ntt_uncached c)) in
        Printf.printf "%-12s %-8d %14s %14s %9.2fx\n" name n
          (pretty_time cached) (pretty_time uncached) (uncached /. cached);
        record ~experiment:"ntt_plan" ~name:(Printf.sprintf "%s_n%d" name n)
          [
            ("field", S name);
            ("n", I n);
            ("plan_s", Fl cached);
            ("uncached_s", Fl uncached);
            ("speedup", Fl (uncached /. cached));
          ])
      [ 256; 1024; 4096 ]
  in
  run "babybear" (module Prio.Babybear);
  run "f87" (module Prio.F87);
  print_endline
    "(the plan holds bit-reversal and all twiddle powers per (field, size);\n\
    \ the uncached path re-derives each stage root with a field\n\
    \ exponentiation per butterfly level)"

(* ---------------------------------------------------------------------- *)
(* TCP runtime scaling: concurrent client batches against servers with     *)
(* verify_domains worker pools.                                            *)
(* ---------------------------------------------------------------------- *)

let net_scaling () =
  let cores = Domain.recommended_domain_count () in
  header
    (Printf.sprintf
       "TCP runtime: batch throughput vs domains (%d cores on this machine)"
       cores);
  if cores = 1 then
    Printf.printf
      "WARNING: only 1 core detected; scaling numbers below measure\n\
       overhead, not speedup (rows are stamped \"single_core\": true).\n";
  Printf.printf "%-10s %14s %14s %10s\n" "domains" "batch time"
    "submissions/s" "speedup";
  let module Wk = W87 in
  let module Net = Wk.P.Net in
  let l = 64 and s = 3 and n = 24 in
  let circuit = Wk.bits_circuit l in
  let domain_counts = [ 1; 2; 4; 8 ] in
  (* Fork before spawn: the runtime refuses [Unix.fork] in a process that
     has ever spawned a domain, so every deployment is launched up front,
     before the first multi-domain batch spawns pool workers here. *)
  let deployments =
    List.map
      (fun domains ->
        let tuning =
          { Prio_proto.Net.default_tuning with verify_domains = domains }
        in
        let cfg =
          Net.
            {
              circuit;
              trunc_len = l;
              num_servers = s;
              master = Wk.master;
              batch_seed = Rng.bytes Wk.rng 32;
            }
        in
        (domains, Net.launch ~tuning cfg))
      domain_counts
  in
  let serial_rate = ref 0. in
  List.iter
    (fun (domains, d) ->
      let packets =
        Array.init n (fun i ->
            ( i,
              Wk.P.Client.submit ~rng:Wk.rng
                ~mode:(Wk.P.Client.Robust_snip circuit)
                ~num_servers:s ~client_id:i ~master:Wk.master
                (Wk.bits_encoding l) ))
      in
      let outcomes, secs =
        Prio_proto.Pipeline.time (fun () ->
            Net.submit_batch ~domains d ~rng:Wk.rng packets)
      in
      Net.shutdown d;
      Array.iter
        (fun o -> match o with Net.Accepted -> () | _ -> assert false)
        outcomes;
      let rate = float_of_int n /. secs in
      if domains = 1 then serial_rate := rate;
      let speedup = rate /. !serial_rate in
      Printf.printf "%-10d %14s %14.1f %9.2fx\n" domains (pretty_time secs)
        rate speedup;
      record ~experiment:"net_scaling" ~name:(Printf.sprintf "domains%d" domains)
        [
          ("domains", I domains);
          ("l", I l);
          ("servers", I s);
          ("n", I n);
          ("cores", I cores);
          ("seconds", Fl secs);
          ("submissions_per_s", Fl rate);
          ("speedup_vs_serial", Fl speedup);
        ])
    deployments;
  print_endline
    "(each domain keeps one submission in flight end-to-end while the\n\
    \ servers' verify_domains pools prepare SNIPs off the event loop;\n\
    \ speedup above 1x at 4 domains needs at least that many physical\n\
    \ cores — the cores field records what this machine had)"

(* ---------------------------------------------------------------------- *)
(* Multicore batch verification.                                           *)
(* ---------------------------------------------------------------------- *)

let parallel () =
  header
    (Printf.sprintf
       "Multicore batch verification (%d cores available on this machine)"
       (Domain.recommended_domain_count ()));
  if Domain.recommended_domain_count () = 1 then
    Printf.printf
      "WARNING: only 1 core detected; scaling numbers below measure\n\
       overhead, not speedup (rows are stamped \"single_core\": true).\n";
  Printf.printf "%-10s %14s %14s\n" "domains" "batch time" "submissions/s";
  let module W = W87 in
  let module Par = Prio_proto.Parallel.Make (Prio.F87) in
  let l = 256 and n = 32 in
  let circuit = W.bits_circuit l in
  let make_replica () =
    W.P.Cluster.create
      ~rng:(Rng.split W.rng)
      ~mode:W.P.Cluster.Robust_snip ~circuit ~trunc_len:l ~num_servers:5
      ~master:W.master ()
  in
  let packets =
    Array.init n (fun i ->
        ( i,
          W.P.Client.submit ~rng:W.rng
            ~mode:(W.P.Client.Robust_snip circuit)
            ~num_servers:5 ~client_id:i ~master:W.master (W.bits_encoding l) ))
  in
  List.iter
    (fun domains ->
      let (_, accepted), secs =
        Prio_proto.Pipeline.time (fun () -> Par.process ~make_replica ~domains packets)
      in
      assert (accepted = n);
      Printf.printf "%-10d %14s %14.0f\n" domains (pretty_time secs)
        (float_of_int n /. secs);
      record ~experiment:"parallel" ~name:(Printf.sprintf "domains%d" domains)
        [
          ("domains", I domains);
          ("n", I n);
          ("seconds", Fl secs);
          ("submissions_per_s", Fl (float_of_int n /. secs));
        ])
    [ 1; 2; 4 ];
  print_endline
    "(speedup tracks physical cores; submissions verify independently, so\n\
    \ the batch parallelizes with no locks — sums of sums commute)"

(* ---------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks.                                              *)
(* ---------------------------------------------------------------------- *)

let micro () =
  header "Bechamel micro-benchmarks (ns/op)";
  let open Bechamel in
  let module W = W87 in
  let f87_mul =
    let x = ref (Prio.F87.of_int 987654321) in
    Test.make ~name:"f87-mul" (Staged.stage (fun () -> x := Prio.F87.mul !x !x))
  in
  let f265_mul =
    let x = ref (Prio.F265.of_int 987654321) in
    Test.make ~name:"f265-mul" (Staged.stage (fun () -> x := Prio.F265.mul !x !x))
  in
  let bb_mul =
    let x = ref (Prio.Babybear.of_int 987654321) in
    Test.make ~name:"babybear-mul"
      (Staged.stage (fun () -> x := Prio.Babybear.mul !x !x))
  in
  let ntt =
    let module N = Prio_poly.Ntt.Make (Prio.F87) in
    let c = Array.init 1024 (fun _ -> Prio.F87.random W.rng) in
    Test.make ~name:"ntt-1024-f87" (Staged.stage (fun () -> ignore (N.ntt c)))
  in
  let sha =
    let data = Bytes.create 64 in
    Test.make ~name:"sha256-64B" (Staged.stage (fun () -> ignore (Prio.Sha256.digest data)))
  in
  let snip_prove =
    let circuit = W.bits_circuit 100 in
    let enc = W.bits_encoding 100 in
    Test.make ~name:"snip-prove-100bits"
      (Staged.stage (fun () ->
           ignore (W.P.Snip.prove ~rng:W.rng ~circuit ~num_servers:5 ~inputs:enc)))
  in
  let snip_verify =
    let circuit = W.bits_circuit 100 in
    let enc = W.bits_encoding 100 in
    let ctx = W.P.Snip.make_batch_ctx ~rng:W.rng ~circuit ~num_servers:5 in
    let subs = W.P.Snip.prove ~rng:W.rng ~circuit ~num_servers:5 ~inputs:enc in
    Test.make ~name:"snip-verify-100bits"
      (Staged.stage (fun () -> assert (W.P.Snip.verify_all ctx subs)))
  in
  let group_exp =
    let module G = Prio.Nizk_group in
    let e = G.random_exponent W.rng in
    Test.make ~name:"schnorr-group-exp"
      (Staged.stage (fun () -> ignore (G.exp G.g e)))
  in
  let tests =
    Test.make_grouped ~name:"prio"
      [ bb_mul; f87_mul; f265_mul; ntt; sha; snip_prove; snip_verify; group_exp ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name res acc -> (name, res) :: acc) results [] in
  List.iter
    (fun (name, res) ->
      match Analyze.OLS.estimates res with
      | Some (e :: _) -> Printf.printf "%-28s %14.1f ns/op\n" name e
      | _ -> Printf.printf "%-28s %14s\n" name "n/a")
    (List.sort compare rows)

(* ---------------------------------------------------------------------- *)

let experiments =
  [
    ("table2", table2);
    ("table3", table3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("table9", table9);
    ("ablation", ablation);
    ("circuit_opt", circuit_opt);
    ("compression", compression);
    ("ntt_plan", ntt_plan);
    (* net_scaling forks deployments, parallel spawns domains: keep every
       forking experiment ahead of every domain-spawning one (the runtime
       refuses fork after any domain has existed in this process) *)
    ("net", net);
    ("streaming", streaming);
    ("net_scaling", net_scaling);
    ("parallel", parallel);
    ("micro", micro);
  ]

let usage () =
  Printf.eprintf
    "usage: %s [experiment ...] [--json <path>] [--check <path>] \
     [--tolerance <t>]\n"
    Sys.argv.(0);
  exit 1

let () =
  let json_path = ref None in
  let check_path = ref None in
  let tolerance = ref 1.0 in
  let rec split acc = function
    | "--json" :: path :: rest ->
      json_path := Some path;
      split acc rest
    | "--check" :: path :: rest ->
      check_path := Some path;
      split acc rest
    | "--tolerance" :: t :: rest ->
      (match float_of_string_opt t with
      | Some t when t >= 0. -> tolerance := t
      | Some _ | None -> usage ());
      split acc rest
    | [ "--json" ] | [ "--check" ] | [ "--tolerance" ] -> usage ()
    | x :: rest -> split (x :: acc) rest
    | [] -> List.rev acc
  in
  let selected = split [] (List.tl (Array.to_list Sys.argv)) in
  (match selected with
  | [] ->
    print_endline "Prio reproduction benchmarks (all experiments; see EXPERIMENTS.md)";
    List.iter (fun (_, f) -> f ()) experiments
  | names ->
    (* run in the given order; note that forking experiments (net,
       net_scaling) must come before domain-spawning ones (parallel) *)
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; one of: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
      names);
  (match !json_path with
  | None -> ()
  | Some path ->
    write_json path;
    Printf.printf "\nwrote %s (%d records + metrics snapshot)\n" path
      (List.length !json_records));
  match !check_path with
  | None -> ()
  | Some path ->
    if not (check_against path ~tolerance:!tolerance) then exit 1

(* Field tests: axioms (property-based) for every field instance, the
   primality and FFT-friendliness of the field orders, serialization, and
   cross-checks of the fast BabyBear arithmetic against the generic bignum
   path. *)

module B = Prio_bigint.Bigint
module Rng = Prio_crypto.Rng
open Prio_field

module Axioms (F : Field_intf.S) = struct
  let rng = Rng.of_string_seed ("field-tests-" ^ F.name)

  let gen_elt =
    (* draw from the shared rng; deterministic per field *)
    QCheck2.Gen.map (fun () -> F.random rng) QCheck2.Gen.unit

  let prop name gen f =
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:(F.name ^ ": " ^ name) ~count:200 gen f)

  let props =
    [
      prop "add commutative" (QCheck2.Gen.pair gen_elt gen_elt) (fun (a, b) ->
          F.equal (F.add a b) (F.add b a));
      prop "add associative" (QCheck2.Gen.triple gen_elt gen_elt gen_elt)
        (fun (a, b, c) -> F.equal (F.add (F.add a b) c) (F.add a (F.add b c)));
      prop "additive identity" gen_elt (fun a -> F.equal (F.add a F.zero) a);
      prop "additive inverse" gen_elt (fun a -> F.is_zero (F.add a (F.neg a)));
      prop "sub = add neg" (QCheck2.Gen.pair gen_elt gen_elt) (fun (a, b) ->
          F.equal (F.sub a b) (F.add a (F.neg b)));
      prop "mul commutative" (QCheck2.Gen.pair gen_elt gen_elt) (fun (a, b) ->
          F.equal (F.mul a b) (F.mul b a));
      prop "mul associative" (QCheck2.Gen.triple gen_elt gen_elt gen_elt)
        (fun (a, b, c) -> F.equal (F.mul (F.mul a b) c) (F.mul a (F.mul b c)));
      prop "mul identity" gen_elt (fun a -> F.equal (F.mul a F.one) a);
      prop "distributivity" (QCheck2.Gen.triple gen_elt gen_elt gen_elt)
        (fun (a, b, c) ->
          F.equal (F.mul a (F.add b c)) (F.add (F.mul a b) (F.mul a c)));
      prop "multiplicative inverse" gen_elt (fun a ->
          F.is_zero a || F.is_one (F.mul a (F.inv a)));
      prop "div then mul" (QCheck2.Gen.pair gen_elt gen_elt) (fun (a, b) ->
          F.is_zero b || F.equal (F.mul (F.div a b) b) a);
      prop "sqr = mul self" gen_elt (fun a -> F.equal (F.sqr a) (F.mul a a));
      prop "pow small" gen_elt (fun a ->
          F.equal (F.pow a 5) (F.mul a (F.mul a (F.mul a (F.mul a a)))));
      prop "bytes roundtrip" gen_elt (fun a -> F.equal (F.of_bytes (F.to_bytes a)) a);
      prop "bigint roundtrip" gen_elt (fun a ->
          F.equal (F.of_bigint (F.to_bigint a)) a);
      prop "fermat little" gen_elt (fun a ->
          F.is_zero a || F.is_one (F.pow_big a (B.pred F.order)));
    ]

  let unit_tests =
    [
      Alcotest.test_case (F.name ^ ": constants") `Quick (fun () ->
          Alcotest.(check bool) "0 <> 1" false (F.equal F.zero F.one);
          Alcotest.(check bool) "two" true (F.equal F.two (F.add F.one F.one));
          Alcotest.(check bool) "of_int neg" true
            (F.equal (F.of_int (-1)) (F.neg F.one));
          Alcotest.(check bool) "of_int wraps" true
            (F.is_zero (F.of_bigint F.order)));
      Alcotest.test_case (F.name ^ ": order is prime") `Slow (fun () ->
          Alcotest.(check bool) "prime" true (B.is_probable_prime F.order);
          Alcotest.(check int) "bit width" F.num_bits (B.num_bits F.order);
          (* FFT-friendliness: 2^two_adicity | p - 1 *)
          let pm1 = B.pred F.order in
          Alcotest.(check bool) "2-adicity divides" true
            (B.is_zero
               (B.erem pm1 (B.shift_left B.one F.two_adicity))));
      Alcotest.test_case (F.name ^ ": roots of unity") `Quick (fun () ->
          for k = 0 to Stdlib.min 10 F.two_adicity do
            let w = F.root_of_unity k in
            Alcotest.(check bool)
              (Printf.sprintf "order divides 2^%d" k)
              true
              (F.is_one (F.pow w (1 lsl k)));
            if k > 0 then
              Alcotest.(check bool)
                (Printf.sprintf "primitive at 2^%d" k)
                false
                (F.is_one (F.pow w (1 lsl (k - 1))))
          done;
          Alcotest.check_raises "out of range"
            (Invalid_argument (F.name ^ ".root_of_unity: out of range"))
            (fun () -> ignore (F.root_of_unity (F.two_adicity + 1))));
      Alcotest.test_case (F.name ^ ": full two-adicity root order") `Quick
        (fun () ->
          (* the derived 2^two_adicity root must have EXACT order: squaring
             it two_adicity - 1 times lands on -1 (not 1), one more square
             reaches 1. A root of smaller order would silently corrupt
             every boundary-sized NTT. *)
          let r = ref (F.root_of_unity F.two_adicity) in
          for _ = 1 to F.two_adicity - 1 do
            r := F.mul !r !r
          done;
          Alcotest.(check bool) "reaches -1" true (F.equal !r (F.neg F.one));
          Alcotest.(check bool) "then 1" true (F.is_one (F.mul !r !r)));
      Alcotest.test_case (F.name ^ ": division by zero") `Quick (fun () ->
          Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
              ignore (F.inv F.zero)));
      Alcotest.test_case (F.name ^ ": non-canonical bytes rejected") `Quick
        (fun () ->
          let b = B.to_bytes_be F.order F.bytes_len in
          Alcotest.(check bool) "raises" true
            (match F.of_bytes b with
            | exception Invalid_argument _ -> true
            | _ -> false));
      Alcotest.test_case (F.name ^ ": random nonzero") `Quick (fun () ->
          for _ = 1 to 50 do
            Alcotest.(check bool) "nonzero" false
              (F.is_zero (F.random_nonzero rng))
          done);
    ]
end

module A1 = Axioms (Babybear)
module A2 = Axioms (F87)
module A3 = Axioms (F265)

(* The generic Montgomery functor instantiated with the BabyBear prime must
   agree operation-for-operation with the specialized native-int field. *)
module Babybear_generic = Proth.Make (struct
  let name = "BabyBearGeneric"
  let prime = "2013265921"
  let generator = 31
  let two_adicity = 27
  let odd_cofactor = "15"
end)

let test_proth_vs_native () =
  let rng = Rng.of_string_seed "proth-cross" in
  let module G = Babybear_generic in
  for _ = 1 to 200 do
    let a = Rng.int_below rng 2013265921 and b = Rng.int_below rng 2013265921 in
    let ga = G.of_int a and gb = G.of_int b in
    let check name native generic =
      Alcotest.(check string) name (Babybear.to_string native) (G.to_string generic)
    in
    check "mul" (Babybear.mul a b) (G.mul ga gb);
    check "add" (Babybear.add a b) (G.add ga gb);
    check "sub" (Babybear.sub a b) (G.sub ga gb);
    check "pow" (Babybear.pow a 12345) (G.pow ga 12345);
    if a <> 0 then check "inv" (Babybear.inv a) (G.inv ga)
  done;
  (* identical root-of-unity towers *)
  for k = 0 to 27 do
    Alcotest.(check string)
      (Printf.sprintf "root 2^%d" k)
      (Babybear.to_string (Babybear.root_of_unity k))
      (G.to_string (G.root_of_unity k))
  done

(* BabyBear fast path vs the generic bignum arithmetic *)
let test_babybear_crosscheck () =
  let rng = Rng.of_string_seed "bb-cross" in
  let p = Babybear.order in
  for _ = 1 to 200 do
    let a = Babybear.random rng and b = Babybear.random rng in
    let ab = B.of_int a and bb = B.of_int b in
    Alcotest.(check int) "mul" (B.to_int_exn (B.erem (B.mul ab bb) p)) (Babybear.mul a b);
    Alcotest.(check int) "add" (B.to_int_exn (B.erem (B.add ab bb) p)) (Babybear.add a b);
    Alcotest.(check int) "sub" (B.to_int_exn (B.erem (B.sub ab bb) p)) (Babybear.sub a b)
  done

(* The two-adicity root of the 87-bit field must be exactly the paper-scale
   capacity we rely on: SNIPs for circuits up to 2^78 mul gates. *)
let test_field_parameters () =
  Alcotest.(check int) "babybear two-adicity" 27 Babybear.two_adicity;
  Alcotest.(check int) "f87 two-adicity" 79 F87.two_adicity;
  Alcotest.(check int) "f265 two-adicity" 256 F265.two_adicity;
  Alcotest.(check int) "f87 width" 87 F87.num_bits;
  Alcotest.(check int) "f265 width" 265 F265.num_bits;
  Alcotest.(check string) "f87 prime"
    "150511264542021332250918913" (B.to_string F87.order)

let () =
  Alcotest.run "field"
    [
      ("babybear-axioms", A1.props);
      ("f87-axioms", A2.props);
      ("f265-axioms", A3.props);
      ("babybear-unit", A1.unit_tests);
      ("f87-unit", A2.unit_tests);
      ("f265-unit", A3.unit_tests);
      ( "cross-checks",
        [
          Alcotest.test_case "babybear vs bignum" `Quick test_babybear_crosscheck;
          Alcotest.test_case "proth functor vs native" `Quick test_proth_vs_native;
          Alcotest.test_case "field parameters" `Quick test_field_parameters;
        ] );
    ]

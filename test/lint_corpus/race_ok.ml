(* corpus: domain-unsafe-state negatives — the same shapes as
   race_bad.ml, each guarded the sanctioned way: a Mutex-owning wrapper,
   an Atomic cell, and Domain.DLS for domain-local state. *)

type gauge = { mutable g_value : float }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let set name v =
  with_lock (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g.g_value <- v
      | None -> Hashtbl.replace gauges name { g_value = v })

type recorder = { mutable events : int }

let current : recorder option Atomic.t = Atomic.make None

let event () =
  match Atomic.get current with
  | None -> ()
  | Some r -> r.events <- r.events + 1

let counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let bump () =
  let c = Domain.DLS.get counter in
  incr c

let worker () =
  set "queue_depth" 1.0;
  event ();
  bump ()

let run () = Domain.spawn worker

(* corpus: ct-compare negatives — nothing here may be flagged.
   Comparisons against an int/char/bool literal pin the type to an
   immediate and compile to one machine comparison; named monomorphic
   equalities are the sanctioned spelling for everything else. *)
let is_zero n = n = 0
let is_one n = 1 = n
let nonzero n = n <> 0
let is_x c = c = 'x'
let is_set b = b = true
let is_neg n = n = -1
let same_len a b = Int.equal (Bytes.length a) (Bytes.length b)
let ordered a b = Int.compare a b <= 0
let ch a b = Char.compare a b
let bounded n len = n < len && n >= 0

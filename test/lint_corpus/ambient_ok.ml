(* corpus: no-ambient-random negatives — seeded draws and explicit
   instants are the sanctioned forms *)
let draw rng n = Rng.int_below rng n
let jitter rng = Rng.float01 rng
let expired ~now ~deadline = now > deadline
let pause s = Unix.sleepf s

(* corpus: inline suppressions — first two violations are waived (marker
   on the same line, then on the line above); the last one is not *)
let boom () = failwith "waived same-line" (* prio-lint: allow error-discipline *)

(* prio-lint: allow error-discipline *)
let boom2 () = failwith "waived line-above"

let boom3 () = failwith "not waived"

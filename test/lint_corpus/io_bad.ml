(* corpus: no-debug-io positives *)
let trace x = Printf.printf "x = %d\n" x
let note msg = print_endline msg
let warn msg = prerr_endline msg
let dump v = Format.eprintf "%a" pp v

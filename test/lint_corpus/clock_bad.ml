(* corpus: no-ambient-clock positives *)
let now () = Unix.gettimeofday ()
let stamp () = Unix.time ()
let cpu () = Sys.time ()

(* corpus: error-discipline positives *)
let boom () = failwith "unreachable server"
let lookup t k = match find_opt t k with Some v -> v | None -> raise Not_found
let fail2 msg = raise (Failure msg)
let foreign () = raise (Unix.Unix_error (Unix.EPIPE, "write", ""))

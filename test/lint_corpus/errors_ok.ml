(* corpus: error-discipline negatives — locally declared control-flow
   exceptions, the Exit idiom, contract checks, and re-raises are fine *)
exception Degraded of int

let gossip servers =
  try
    Array.iter (fun s -> if dead s then raise (Degraded s)) servers;
    Ok ()
  with Degraded i -> Error i

let first_dead servers =
  let exception Found of int in
  try
    Array.iteri (fun i s -> if dead s then raise (Found i)) servers;
    None
  with Found i -> Some i

let bounded n = if n < 0 then invalid_arg "bounded: negative" else n
let stop () = raise Exit
let cleanup fd f = try f fd with e -> close fd; raise e

(* corpus: secret-flow negatives — rng handles and sampled synthetic
   data are not secrets, unknown calls (a digest) launder taint, and an
   inline waiver silences a deliberate debug print. *)

let sample rng = Rng.int_below rng 100

let report rng =
  Printf.printf "sampled %d\n" (sample rng);
  Printf.printf "also %d\n" (Rng.int_below rng 10)

let fingerprint rng =
  let key = Rng.bytes rng 32 in
  let digest = Sha256.hex (Sha256.digest key) in
  print_endline digest

let dump rng =
  let key = Rng.bytes rng 32 in
  (* prio-lint: allow secret-flow *)
  Printf.printf "debug key=%s" (Bytes.to_string key)

(* corpus: secret-flow positives — key material reaching each sink
   class: direct printing, a producer function's result, an annotated
   binding, a sink-wrapper call, and an exception payload. *)

let make_key rng = Rng.bytes rng 32

let log_line s = print_endline s

let leak_direct rng =
  let key = Rng.bytes rng 32 in
  Printf.printf "key=%s" (Bytes.to_string key)

let leak_producer rng =
  let key = make_key rng in
  failwith (Bytes.to_string key)

(* prio-lint: secret *)
let api_token = "hunter2"

let leak_annotated () = print_endline api_token

let leak_wrapper rng =
  let key = Rng.bytes rng 32 in
  log_line (Bytes.to_string key)

let leak_exn rng =
  let key = Rng.bytes rng 32 in
  raise (Invalid_argument (Bytes.to_string key))

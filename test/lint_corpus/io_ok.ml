(* corpus: no-debug-io negatives — building strings and writing to an
   explicit formatter/channel is fine; only ambient stdout/stderr is not *)
let render x = Printf.sprintf "x = %d" x
let pp fmt x = Format.fprintf fmt "%d" x
let log oc msg = Printf.fprintf oc "%s\n" msg
let pp_pair fmt (a, b) = Format.pp_print_string fmt (render a ^ render b)

(* corpus: ct-compare positives — every comparison here must be flagged *)
let tag_eq tag expected = tag = expected
let tag_ne tag expected = tag <> expected
let cmp a b = compare a b
let scmp a b = String.compare a b
let bcmp a b = Bytes.compare a b
let seq a b = String.equal a b
let beq a b = Bytes.equal a b
let qcmp a b = Stdlib.compare a b
let find x l = List.exists (( = ) x) l

(* corpus: no-ambient-random positives *)
let entropy () = Random.int 256
let reseed () = Random.self_init ()

(* corpus: no-ambient-clock negatives — the seams and explicit instants
   are the sanctioned forms *)
let start () = Retry.now ()
let trace_start clock = Clock.now clock
let expired ~now ~deadline = now > deadline
let pause s = Unix.sleepf s

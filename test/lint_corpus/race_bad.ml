(* corpus: domain-unsafe-state positives — the exact pre-fix shapes of
   the PR 5 metrics gauge race and the PR 6 trace recorder race. *)

type gauge = { mutable g_value : float }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

(* PR 5 shape: look a shared gauge up and write its field, no lock. *)
let set name v =
  match Hashtbl.find_opt gauges name with
  | Some g -> g.g_value <- v
  | None -> Hashtbl.replace gauges name { g_value = v }

type recorder = { mutable events : int }

let current : recorder option ref = ref None

(* PR 6 shape: the ambient recorder cell is read unguarded on workers. *)
let event () =
  match !current with
  | None -> ()
  | Some r -> r.events <- r.events + 1

let worker () =
  set "queue_depth" 1.0;
  event ()

let run () = Domain.spawn worker

(* corpus: no-partial-stdlib negatives *)
let first = function [] -> None | x :: _ -> Some x
let force ~default o = Option.value o ~default
let len l = List.length l

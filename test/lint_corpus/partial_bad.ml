(* corpus: no-partial-stdlib positives *)
let first l = List.hd l
let pick l n = List.nth l n
let force o = Option.get o
let cast x = Obj.magic x

(* The observability layer: injectable clocks, the metrics registry and
   its log-scale histograms, the span recorder, and the properties the
   rest of the system leans on — zero-cost no-op mode, deterministic
   traces under fixed clocks and seeded faults, and the unified byte
   accounting agreeing exactly with the legacy per-object accessors. *)

open Core
module Clock = Prio.Obs_clock
module Metrics = Prio.Obs_metrics
module Trace = Prio.Obs_trace
module Report = Prio.Obs_report
module Faults = Prio.Faults

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let with_recorder ?clock f =
  let r = Trace.create ?clock ~capacity:4096 () in
  Trace.install r;
  Fun.protect ~finally:Trace.uninstall (fun () -> f r)

(* ------------------------------- clocks ------------------------------ *)

let test_clocks () =
  let m = Clock.manual ~start:10. () in
  Alcotest.(check (float 0.)) "manual frozen" 10. (Clock.now m);
  Alcotest.(check (float 0.)) "manual frozen twice" 10. (Clock.now m);
  Clock.advance m 2.5;
  Alcotest.(check (float 0.)) "manual advanced" 12.5 (Clock.now m);
  Clock.set m 100.;
  Alcotest.(check (float 0.)) "manual set" 100. (Clock.now m);
  let t = Clock.ticking ~start:0. ~step:1. () in
  Alcotest.(check (float 0.)) "tick 0" 0. (Clock.now t);
  Alcotest.(check (float 0.)) "tick 1" 1. (Clock.now t);
  Alcotest.(check (float 0.)) "tick 2" 2. (Clock.now t);
  Alcotest.check_raises "system clock cannot be set"
    (Invalid_argument "Obs.Clock.set: cannot set the system clock") (fun () ->
      Clock.set Clock.system 0.)

(* ---------------------------- span nesting --------------------------- *)

let test_span_nesting () =
  let clock = Clock.manual ~start:100. () in
  with_recorder ~clock @@ fun r ->
  Trace.with_span "outer" ~attrs:[ ("phase", "test") ] (fun () ->
      Clock.advance clock 1.;
      Trace.with_span "inner" (fun () -> Clock.advance clock 0.5);
      Trace.event "mark" ~attrs:[ ("k", "v") ];
      Clock.advance clock 0.25);
  match Trace.spans r with
  | [ outer; inner; mark ] ->
    Alcotest.(check string) "outer name" "outer" outer.Trace.name;
    Alcotest.(check (option int)) "outer is a root" None outer.Trace.parent;
    Alcotest.(check (float 0.)) "outer start" 100. outer.Trace.start;
    Alcotest.(check (float 1e-9)) "outer duration" 1.75 outer.Trace.duration;
    Alcotest.(check string) "inner name" "inner" inner.Trace.name;
    Alcotest.(check (option int))
      "inner nested under outer" (Some outer.Trace.id) inner.Trace.parent;
    Alcotest.(check (float 0.)) "inner start" 101. inner.Trace.start;
    Alcotest.(check (float 1e-9)) "inner duration" 0.5 inner.Trace.duration;
    Alcotest.(check bool) "mark is an event" true (mark.Trace.kind = Trace.Event);
    Alcotest.(check (option int))
      "event under outer" (Some outer.Trace.id) mark.Trace.parent
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_span_exception_safety () =
  let clock = Clock.manual () in
  with_recorder ~clock @@ fun r ->
  (try
     Trace.with_span "outer" (fun () ->
         Trace.with_span "thrower" (fun () ->
             Clock.advance clock 1.;
             failwith "boom"))
   with Failure _ -> ());
  (* both spans closed despite the exception; a sibling span opened
     afterwards nests at the root, not under a leaked parent *)
  Trace.with_span "after" (fun () -> ());
  match Trace.spans r with
  | [ outer; thrower; after ] ->
    Alcotest.(check (float 1e-9))
      "raising span still got a duration" 1. thrower.Trace.duration;
    Alcotest.(check (float 1e-9))
      "outer closed too" 1. outer.Trace.duration;
    Alcotest.(check (option int)) "stack unwound" None after.Trace.parent
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_ring_eviction () =
  let r = Trace.create ~capacity:4 () in
  Trace.install r;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      for i = 0 to 9 do
        Trace.event (Printf.sprintf "e%d" i)
      done);
  Alcotest.(check int) "ring holds capacity" 4 (Trace.recorded r);
  Alcotest.(check int) "total counts evictions" 10 (Trace.total r);
  Alcotest.(check (list string)) "oldest evicted first"
    [ "e6"; "e7"; "e8"; "e9" ]
    (List.map (fun sp -> sp.Trace.name) (Trace.spans r))

(* ----------------------- histogram bucket scheme --------------------- *)

let test_bucket_boundaries () =
  (* power-of-two buckets: 1.0 is the lower edge of its bucket *)
  let b1 = Metrics.bucket_of 1.0 in
  Alcotest.(check (float 0.)) "1.0 sits on a lower edge" 1.0
    (Metrics.bucket_lower b1);
  Alcotest.(check (float 0.)) "and its upper edge is 2" 2.0
    (Metrics.bucket_upper b1);
  Alcotest.(check int) "1.5 shares the bucket" b1 (Metrics.bucket_of 1.5);
  Alcotest.(check int) "1.999 shares the bucket" b1 (Metrics.bucket_of 1.999);
  Alcotest.(check int) "2.0 starts the next" (b1 + 1) (Metrics.bucket_of 2.0);
  Alcotest.(check int) "0.5 is one below" (b1 - 1) (Metrics.bucket_of 0.5);
  (* non-positive values land in the first bucket *)
  Alcotest.(check int) "zero in bucket 0" 0 (Metrics.bucket_of 0.);
  Alcotest.(check int) "negative in bucket 0" 0 (Metrics.bucket_of (-3.));
  (* the edges round-trip across the whole range *)
  for i = 1 to Metrics.num_buckets - 2 do
    Alcotest.(check int)
      (Printf.sprintf "lower edge of bucket %d round-trips" i)
      i
      (Metrics.bucket_of (Metrics.bucket_lower i))
  done;
  Alcotest.(check (float 0.)) "last bucket is unbounded" infinity
    (Metrics.bucket_upper (Metrics.num_buckets - 1));
  (* huge values clamp into the last bucket instead of overflowing *)
  Alcotest.(check int) "huge values clamp" (Metrics.num_buckets - 1)
    (Metrics.bucket_of 1e300)

let test_histogram_recording () =
  let h = Metrics.histogram "test_obs_hist_seconds" in
  Metrics.reset ();
  List.iter (Metrics.observe h) [ 0.25; 1.0; 1.5; 3.0 ];
  Alcotest.(check int) "count" 4 (Metrics.count h);
  Alcotest.(check (float 1e-9)) "sum" 5.75 (Metrics.sum h);
  Alcotest.(check (float 1e-9)) "mean" 1.4375 (Metrics.mean h);
  match List.assoc_opt "test_obs_hist_seconds" (Metrics.snapshot ()) with
  | Some (Metrics.Histogram_v hv) ->
    Alcotest.(check int) "view count" 4 hv.Metrics.hv_count;
    Alcotest.(check (float 0.)) "view min" 0.25 hv.Metrics.hv_min;
    Alcotest.(check (float 0.)) "view max" 3.0 hv.Metrics.hv_max;
    Alcotest.(check int) "bucket samples add up to count" 4
      (Array.fold_left (fun acc (_, n) -> acc + n) 0 hv.Metrics.hv_buckets);
    (* [1.0; 1.5] share the [1,2) bucket; its recorded bound is 2 *)
    Alcotest.(check bool) "the [1,2) bucket holds two samples" true
      (Array.exists (fun (le, n) -> le = 2.0 && n = 2) hv.Metrics.hv_buckets)
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_metrics_time_deterministic () =
  let h = Metrics.histogram "test_obs_timed_seconds" in
  Metrics.reset ();
  let clock = Clock.ticking ~start:0. ~step:0.125 () in
  Metrics.set_clock clock;
  Fun.protect ~finally:(fun () -> Metrics.set_clock Clock.system) (fun () ->
      let x = Metrics.time h (fun () -> 42) in
      Alcotest.(check int) "timed thunk's value passes through" 42 x;
      (* one read at entry, one at exit: exactly one step elapsed *)
      Alcotest.(check (float 0.)) "duration from the injected clock" 0.125
        (Metrics.sum h))

(* ------------------------------ no-op mode --------------------------- *)

let test_noop_is_allocation_free () =
  let c = Metrics.counter "test_obs_noop_total" in
  let h = Metrics.histogram "test_obs_noop_seconds" in
  Metrics.reset ();
  let v = 1.5 (* pre-boxed: keeps caller-side boxing out of the measure *) in
  Metrics.disable ();
  Fun.protect ~finally:Metrics.enable (fun () ->
      for _ = 1 to 100 do
        Metrics.incr c
      done;
      let before = Gc.minor_words () in
      for _ = 1 to 10_000 do
        Metrics.incr c;
        Metrics.add c 3;
        Metrics.observe h v;
        Trace.event "dropped" (* no recorder installed: also free *)
      done;
      let delta = Gc.minor_words () -. before in
      Alcotest.(check bool)
        (Printf.sprintf "disabled recording allocates nothing (%.0f words)" delta)
        true (delta < 10.);
      Alcotest.(check int) "nothing was recorded" 0 (Metrics.value c);
      Alcotest.(check int) "histogram untouched" 0 (Metrics.count h))

(* --------------------------- domain safety --------------------------- *)

(* Regression for the lost-update race: gauge cells and histogram
   sum/min/max were plain mutable floats, so concurrent observers could
   overwrite each other's read-modify-write. Hammer one histogram, one
   counter and one gauge from several domains and demand that not a
   single sample is lost. Every observed value is a small multiple of
   0.25, so the float sum is exact under any interleaving. *)
let test_metrics_domain_hammer () =
  let c = Metrics.counter "test_obs_hammer_total" in
  let h = Metrics.histogram "test_obs_hammer_seconds" in
  let g = Metrics.gauge "test_obs_hammer_gauge" in
  Metrics.reset ();
  let domains = 4 and iters = 25_000 in
  let worker d () =
    let v = 0.25 *. float_of_int (1 lsl d) in
    for _ = 1 to iters do
      Metrics.incr c;
      Metrics.observe h v;
      Metrics.set g (float_of_int d)
    done
  in
  let ds = Array.init domains (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join ds;
  let total = domains * iters in
  Alcotest.(check int) "no lost counter increments" total (Metrics.value c);
  Alcotest.(check int) "no lost histogram samples" total (Metrics.count h);
  Alcotest.(check (float 0.)) "exact concurrent sum"
    (float_of_int iters *. (0.25 +. 0.5 +. 1.0 +. 2.0))
    (Metrics.sum h);
  let gv = Metrics.gauge_value g in
  Alcotest.(check bool) "gauge holds one of the written values" true
    (List.exists (fun d -> gv = float_of_int d) [ 0; 1; 2; 3 ]);
  match List.assoc_opt "test_obs_hammer_seconds" (Metrics.snapshot ()) with
  | Some (Metrics.Histogram_v hv) ->
    Alcotest.(check (float 0.)) "min survived" 0.25 hv.Metrics.hv_min;
    Alcotest.(check (float 0.)) "max survived" 2.0 hv.Metrics.hv_max;
    Alcotest.(check int) "bucket totals add up" total
      (Array.fold_left (fun acc (_, n) -> acc + n) 0 hv.Metrics.hv_buckets);
    (* the four values land in four distinct buckets, iters each *)
    Alcotest.(check bool) "every occupied bucket is complete" true
      (Array.for_all (fun (_, n) -> n = 0 || n = iters) hv.Metrics.hv_buckets)
  | _ -> Alcotest.fail "histogram missing from snapshot"

(* The trace recorder's domain-safety contract: concurrent domains share
   the ring (no span lost, ids unique) while each nests under its own
   open-span stack — an inner span opened on domain d must be parented to
   an outer span of d, never to a concurrent domain's span. *)
let test_trace_domain_hammer () =
  let domains = 4 and iters = 2_000 in
  let r = Trace.create ~capacity:(domains * iters * 3) () in
  Trace.install r;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let worker d () =
        let tag = [ ("domain", string_of_int d) ] in
        for _ = 1 to iters do
          Trace.with_span "outer" ~attrs:tag (fun () ->
              Trace.with_span "inner" ~attrs:tag (fun () -> ());
              Trace.event "mark" ~attrs:tag)
        done
      in
      let ds = Array.init domains (fun d -> Domain.spawn (worker d)) in
      Array.iter Domain.join ds);
  let spans = Trace.spans r in
  let expected = domains * iters * 3 in
  Alcotest.(check int) "no span lost" expected (Trace.total r);
  Alcotest.(check int) "ring held everything" expected (List.length spans);
  let ids = Hashtbl.create expected in
  List.iter (fun sp -> Hashtbl.replace ids sp.Trace.id sp) spans;
  Alcotest.(check int) "ids unique" expected (Hashtbl.length ids);
  List.iter
    (fun sp ->
      let dom = List.assoc "domain" sp.Trace.attrs in
      match (sp.Trace.name, sp.Trace.parent) with
      | "outer", p ->
        Alcotest.(check (option int)) "outer is a root" None p
      | ("inner" | "mark"), Some p ->
        let parent = Hashtbl.find ids p in
        Alcotest.(check string) "nested under own domain's outer" "outer"
          parent.Trace.name;
        Alcotest.(check string) "parent on same domain" dom
          (List.assoc "domain" parent.Trace.attrs)
      | name, None -> Alcotest.failf "%s has no parent" name
      | name, _ -> Alcotest.failf "unexpected span %s" name)
    spans

(* ------------------------- deterministic traces ---------------------- *)

(* One chaos round: seeded faults rolled over a fixed frame sequence
   under a manual clock. Everything feeding the trace is deterministic,
   so the exported JSONL must be byte-identical across runs. *)
let chaos_jsonl () =
  let clock = Clock.manual ~start:42. () in
  with_recorder ~clock @@ fun r ->
  let faults =
    Faults.create ~seed:"obs-deterministic"
      { Faults.none with Faults.p_drop = 0.3; Faults.p_corrupt = 0.2 }
  in
  let frame = Bytes.make 32 'x' in
  Trace.with_span "chaos" (fun () ->
      for i = 1 to 50 do
        Clock.advance clock 0.01;
        (match Faults.decide faults frame with
        | Faults.Deliver _ -> ()
        | Faults.Drop | Faults.Disconnect | Faults.Crash -> ());
        if i mod 10 = 0 then Trace.event "checkpoint"
      done);
  Trace.to_jsonl r

let test_deterministic_trace () =
  let a = chaos_jsonl () in
  let b = chaos_jsonl () in
  Alcotest.(check string) "two seeded chaos runs export identical JSONL" a b;
  Alcotest.(check bool) "the chaos actually injected faults" true
    (contains ~affix:"\"fault\"" a)

(* ------------------- percentile estimation ---------------------------- *)

let histogram_view name =
  match List.assoc_opt name (Metrics.snapshot ()) with
  | Some (Metrics.Histogram_v hv) -> hv
  | _ -> Alcotest.failf "histogram %s missing from snapshot" name

let test_percentiles () =
  let h = Metrics.histogram "test_obs_pct_seconds" in
  Metrics.reset ();
  Alcotest.(check (option (float 0.)))
    "empty histogram has no percentiles" None
    (Metrics.percentile (histogram_view "test_obs_pct_seconds") 0.5);
  (* a single repeated value: every quantile clamps to it *)
  List.iter (Metrics.observe h) [ 1.5; 1.5; 1.5 ];
  let hv = histogram_view "test_obs_pct_seconds" in
  List.iter
    (fun q ->
      Alcotest.(check (option (float 0.)))
        (Printf.sprintf "point mass: q=%.2f" q)
        (Some 1.5) (Metrics.percentile hv q))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
  (* a bimodal distribution: quantiles are monotone, bounded by min/max,
     and the median sits in the low mode (90% of mass) while p99 sits in
     the high mode *)
  Metrics.reset ();
  for _ = 1 to 90 do
    Metrics.observe h 0.25
  done;
  for _ = 1 to 10 do
    Metrics.observe h 4.0
  done;
  let hv = histogram_view "test_obs_pct_seconds" in
  let pct q =
    match Metrics.percentile hv q with
    | Some v -> v
    | None -> Alcotest.failf "no percentile at %.2f" q
  in
  let p50 = pct 0.5 and p95 = pct 0.95 and p99 = pct 0.99 in
  Alcotest.(check bool) "p50 within [min,max]" true
    (p50 >= hv.Metrics.hv_min && p50 <= hv.Metrics.hv_max);
  Alcotest.(check bool) "monotone p50 <= p95 <= p99" true
    (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "median in the low mode" true (p50 < 1.0);
  Alcotest.(check bool) "p99 in the high mode" true (p99 > 1.0);
  Alcotest.(check (float 0.)) "q=1 clamps to max" hv.Metrics.hv_max (pct 1.0)

let test_percentile_degenerate_views () =
  (* a snapshot racing a concurrent observe can publish a partial view:
     the count already bumped but the bucket (or the min/max cells) not
     yet. percentile must answer None for these — never the
     [neg_infinity] sentinel or an interpolated value below any sample *)
  let partial =
    {
      Metrics.hv_count = 1;
      hv_sum = 0.5;
      hv_min = infinity;
      hv_max = neg_infinity;
      hv_buckets = [||];
    }
  in
  Alcotest.(check (option (float 0.)))
    "count without buckets has no percentiles" None
    (Metrics.percentile partial 0.5);
  let no_extrema =
    { partial with Metrics.hv_buckets = [| (1.0, 1) |] }
  in
  Alcotest.(check (option (float 0.)))
    "buckets without finite min/max have no percentiles" None
    (Metrics.percentile no_extrema 0.99);
  (* single-bucket point mass: the exact value, not a point interpolated
     below it inside the power-of-two bucket *)
  let point =
    {
      Metrics.hv_count = 3;
      hv_sum = 2.1;
      hv_min = 0.7;
      hv_max = 0.7;
      hv_buckets = [| (1.0, 3) |];
    }
  in
  List.iter
    (fun q ->
      Alcotest.(check (option (float 0.)))
        (Printf.sprintf "single-bucket point mass: q=%.2f" q)
        (Some 0.7)
        (Metrics.percentile point q))
    [ 0.0; 0.5; 1.0 ]

(* ----------------- cross-process context & merging -------------------- *)

let test_context_roundtrip () =
  with_recorder @@ fun _r ->
  Alcotest.(check bool) "no context outside a span" true
    (Trace.context () = None);
  Trace.with_span "root" @@ fun () ->
  let c =
    match Trace.context () with
    | Some c -> c
    | None -> Alcotest.fail "no context inside an open span"
  in
  let s = Trace.context_to_string c in
  Alcotest.(check bool) "wire form is one line" false (String.contains s '\n');
  (match Trace.context_of_string s with
  | Some c' ->
    Alcotest.(check string) "trace survives" c.Trace.ctx_trace c'.Trace.ctx_trace;
    Alcotest.(check string) "parent survives" c.Trace.ctx_parent
      c'.Trace.ctx_parent
  | None -> Alcotest.fail "context failed to parse back");
  Alcotest.(check bool) "empty input rejected" true
    (Trace.context_of_string "" = None);
  Alcotest.(check bool) "spaceless input rejected" true
    (Trace.context_of_string "noseparator" = None)

let test_merge_ancestry () =
  (* one manual clock across two recorders: the "client" process opens a
     submission span whose wire context the "server" process picks up;
     the merged dump must parent the server's span under the client's *)
  let clock = Clock.manual ~start:1. () in
  let a = Trace.create ~clock ~capacity:64 ~origin:"client" () in
  let b = Trace.create ~clock ~capacity:64 ~origin:"server" () in
  Trace.install a;
  let ctx = ref None in
  Trace.with_span "net.submit" (fun () ->
      Clock.advance clock 0.5;
      ctx := Trace.context ());
  Trace.uninstall ();
  Trace.install b;
  Trace.with_span_ctx ?ctx:!ctx "server.admit" (fun () ->
      Clock.advance clock 0.25;
      Trace.with_span "server.verify" (fun () -> Clock.advance clock 0.25));
  Trace.uninstall ();
  let merged = Trace.merge [ Trace.to_jsonl a; Trace.to_jsonl b ] in
  let find name =
    match List.find_opt (fun m -> m.Trace.m_name = name) merged with
    | Some m -> m
    | None -> Alcotest.failf "span %s missing from merge" name
  in
  let submit = find "net.submit" in
  let admit = find "server.admit" in
  let verify = find "server.verify" in
  Alcotest.(check (option string))
    "remote parent resolved across processes" (Some submit.Trace.m_id)
    admit.Trace.m_parent;
  Alcotest.(check (option string))
    "local nesting preserved inside the server" (Some admit.Trace.m_id)
    verify.Trace.m_parent;
  Alcotest.(check string) "one trace id end to end" submit.Trace.m_trace
    verify.Trace.m_trace;
  (* causal order: every parent precedes its children *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun m ->
      (match m.Trace.m_parent with
      | Some p when not (Hashtbl.mem seen p) ->
        Alcotest.failf "%s emitted before its parent" m.Trace.m_name
      | _ -> ());
      Hashtbl.replace seen m.Trace.m_id ())
    merged;
  (* a dump torn mid-line (a SIGKILLed process) degrades, never raises *)
  let torn = String.sub (Trace.to_jsonl b) 0 20 in
  let partial = Trace.merge [ Trace.to_jsonl a; torn; "not json\n" ] in
  Alcotest.(check int) "torn dumps skip bad lines" 1 (List.length partial)

(* ---------------------- unified byte accounting ---------------------- *)

(* The ISSUE-4 contract: the Obs counters and the legacy per-object
   accessors are two views of the same accounting, and must agree
   exactly — uploads against [prepared.upload_bytes], server gossip
   against [Cluster.total_server_bytes]. *)
let test_byte_unification () =
  let module P = Prio.Make (Prio.F87) in
  let rng = Prio.Rng.of_string_seed "obs-bytes" in
  let l = 16 in
  let circuit =
    let b = P.Circuit.Builder.create ~num_inputs:l in
    for i = 0 to l - 1 do
      P.Circuit.Builder.assert_bit b (P.Circuit.Builder.input b i)
    done;
    P.Circuit.Builder.build b
  in
  let cluster =
    P.Cluster.create ~rng ~mode:P.Cluster.Robust_snip ~circuit ~trunc_len:l
      ~num_servers:3 ~master:(Prio.Rng.bytes rng 32) ()
  in
  let c_upload = Metrics.counter "prio_client_upload_bytes_total" in
  let c_link = Metrics.counter "prio_server_link_bytes_total" in
  let upload0 = Metrics.value c_upload and link0 = Metrics.value c_link in
  let encodings =
    List.init 6 (fun _ ->
        Array.init l (fun _ -> P.Field.of_int (Prio.Rng.int_below rng 2)))
  in
  let prepared = P.Pipeline.prepare ~rng cluster encodings in
  let accepted, _ = P.Pipeline.process cluster prepared in
  Alcotest.(check int) "all submissions accepted" 6 accepted;
  Alcotest.(check int) "upload counter equals legacy upload_bytes"
    prepared.P.Pipeline.upload_bytes
    (Metrics.value c_upload - upload0);
  Alcotest.(check int) "link counter equals legacy total_server_bytes"
    (P.Cluster.total_server_bytes cluster)
    (Metrics.value c_link - link0)

(* ------------------------------ exporters ---------------------------- *)

let test_report_formats () =
  let c = Metrics.counter "test_obs_report_total" in
  let h = Metrics.histogram "test_obs_report_seconds" in
  Metrics.reset ();
  Metrics.add c 7;
  Metrics.observe h 1.5;
  let prom = Report.prometheus () in
  Alcotest.(check bool) "prometheus has the counter" true
    (contains ~affix:"test_obs_report_total 7" prom);
  Alcotest.(check bool) "prometheus histograms are cumulative to +Inf" true
    (contains ~affix:"test_obs_report_seconds_bucket{le=\"+Inf\"} 1" prom);
  let json = Report.json () in
  Alcotest.(check bool) "json has the counter" true
    (contains ~affix:"\"test_obs_report_total\":7" json)

let test_report_zeroed_registry () =
  let _c = Metrics.counter "test_obs_zero_total" in
  let _h = Metrics.histogram "test_obs_zero_seconds" in
  Metrics.reset ();
  let prom = Report.prometheus () in
  Alcotest.(check bool) "zeroed counter renders" true
    (contains ~affix:"test_obs_zero_total 0" prom);
  Alcotest.(check bool) "sample-less histogram renders a +Inf bucket" true
    (contains ~affix:"test_obs_zero_seconds_bucket{le=\"+Inf\"} 0" prom);
  Alcotest.(check bool) "sample-less histogram has count 0" true
    (contains ~affix:"test_obs_zero_seconds_count 0" prom);
  Alcotest.(check bool) "JSON renders null percentiles with no samples" true
    (contains ~affix:"\"p50\":null" (Report.json ()));
  Alcotest.(check bool) "summary still renders the empty histogram" true
    (contains ~affix:"test_obs_zero_seconds" (Report.summary ()))

let test_report_json_escaping () =
  (* names are normally clean identifiers, but the registry does not
     enforce that — the JSON exporter must stay well-formed anyway *)
  let c = Metrics.counter "test_obs \"quoted\\slashed\" total" in
  Metrics.reset ();
  Metrics.add c 3;
  Alcotest.(check bool) "quote and backslash escaped in JSON" true
    (contains
       ~affix:"\"test_obs \\\"quoted\\\\slashed\\\" total\":3"
       (Report.json ()))

let test_report_bucket_rendering () =
  let h = Metrics.histogram "test_obs_cum_seconds" in
  Metrics.reset ();
  List.iter (Metrics.observe h) [ 0.3; 0.4; 1.5; 100.0 ];
  let prom = Report.prometheus () in
  Alcotest.(check bool) "TYPE line" true
    (contains ~affix:"# TYPE test_obs_cum_seconds histogram" prom);
  let bucket_counts =
    List.filter_map
      (fun l ->
        let pfx = "test_obs_cum_seconds_bucket{le=" in
        if
          String.length l > String.length pfx
          && String.sub l 0 (String.length pfx) = pfx
        then
          match String.rindex_opt l ' ' with
          | Some i ->
            int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1))
          | None -> None
        else None)
      (String.split_on_char '\n' prom)
  in
  Alcotest.(check bool) "several buckets rendered" true
    (List.length bucket_counts >= 2);
  Alcotest.(check (list int))
    "cumulative bucket counts are nondecreasing" bucket_counts
    (List.sort compare bucket_counts);
  Alcotest.(check int) "cumulative counts end at the sample count" 4
    (List.nth bucket_counts (List.length bucket_counts - 1));
  Alcotest.(check bool) "sum line rendered" true
    (contains ~affix:"test_obs_cum_seconds_sum " prom)

let test_report_json_roundtrip () =
  let c = Metrics.counter "test_obs_rt_total" in
  let g = Metrics.gauge "test_obs_rt_gauge" in
  let h = Metrics.histogram "test_obs_rt_seconds" in
  Metrics.reset ();
  Metrics.add c 41;
  Metrics.set g 2.5;
  List.iter (Metrics.observe h) [ 0.25; 0.5; 1.0 ];
  let json = Report.json () in
  Alcotest.(check bool) "counter value round-trips" true
    (contains ~affix:"\"test_obs_rt_total\":41" json);
  Alcotest.(check bool) "gauge value round-trips" true
    (contains ~affix:"\"test_obs_rt_gauge\":2.5" json);
  Alcotest.(check bool) "histogram header round-trips" true
    (contains ~affix:"\"test_obs_rt_seconds\":{\"count\":3,\"sum\":1.75" json);
  (* the JSON percentiles agree exactly with the in-process estimator *)
  let hv = histogram_view "test_obs_rt_seconds" in
  List.iter
    (fun (label, q) ->
      match Metrics.percentile hv q with
      | None -> Alcotest.failf "no %s on a populated histogram" label
      | Some v ->
        let lit =
          if Float.is_integer v && Float.abs v < 1e15 then
            Printf.sprintf "%.0f" v
          else Printf.sprintf "%.9g" v
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s printed from the estimator" label)
          true
          (contains ~affix:(Printf.sprintf "\"%s\":%s" label lit) json))
    [ ("p50", 0.5); ("p95", 0.95); ("p99", 0.99) ];
  Alcotest.(check bool) "buckets rendered as [le,count] pairs" true
    (contains ~affix:"\"buckets\":[[" json)

let () =
  Alcotest.run "obs"
    [
      ("clock", [ Alcotest.test_case "clocks" `Quick test_clocks ]);
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "deterministic under seeded chaos" `Quick
            test_deterministic_trace;
          Alcotest.test_case "multi-domain nesting stays domain-local" `Quick
            test_trace_domain_hammer;
          Alcotest.test_case "wire context round trip" `Quick
            test_context_roundtrip;
          Alcotest.test_case "cross-process merge ancestry" `Quick
            test_merge_ancestry;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "histogram recording" `Quick
            test_histogram_recording;
          Alcotest.test_case "time under an injected clock" `Quick
            test_metrics_time_deterministic;
          Alcotest.test_case "no-op mode allocates nothing" `Quick
            test_noop_is_allocation_free;
          Alcotest.test_case "multi-domain hammer loses nothing" `Quick
            test_metrics_domain_hammer;
          Alcotest.test_case "percentile estimation" `Quick test_percentiles;
          Alcotest.test_case "percentile degenerate views" `Quick
            test_percentile_degenerate_views;
        ] );
      ( "integration",
        [
          Alcotest.test_case "unified byte accounting" `Quick
            test_byte_unification;
          Alcotest.test_case "report formats" `Quick test_report_formats;
          Alcotest.test_case "zeroed registry rendering" `Quick
            test_report_zeroed_registry;
          Alcotest.test_case "JSON name escaping" `Quick
            test_report_json_escaping;
          Alcotest.test_case "cumulative bucket rendering" `Quick
            test_report_bucket_rendering;
          Alcotest.test_case "JSON percentile round trip" `Quick
            test_report_json_roundtrip;
        ] );
    ]

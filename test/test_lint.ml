(* Tests for the prio_lint static analyzer.

   Two layers: (a) the tree gate — the linter must be clean on the whole
   repo (modulo the checked-in baseline), so any new violation fails
   `dune runtest` as well as `dune build @lint`; (b) a corpus of known-bad
   and known-good snippets under lint_corpus/ with the exact diagnostics
   pinned, so a rule that goes blind (or trigger-happy) is caught by the
   suite, not by reviewers. *)

module D = Prio_analysis.Diagnostic
module Rules = Prio_analysis.Rules
module Policy = Prio_analysis.Policy
module Driver = Prio_analysis.Driver
module Baseline = Prio_analysis.Baseline

let read_file path =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  src

(* Lint one corpus file under every AST rule; diagnostics are labelled
   with the bare file name so expectations stay short. *)
let lint file =
  let src = read_file (Filename.concat "lint_corpus" file) in
  List.map D.to_string
    (Driver.lint_source ~rules:Rules.all_ast_rules ~path:file src)

let check_diags name expected actual =
  Alcotest.(check (list string)) name expected actual

(* ------------------------------ corpus ------------------------------- *)

let test_ct_compare_positives () =
  check_diags "ct_compare_bad"
    [
      "ct_compare_bad.ml:2:30: [ct-compare] polymorphic comparison (=) on \
       non-literal operands: use a monomorphic or constant-time equality \
       (F.equal, Int.equal, Hmac.verify)";
      "ct_compare_bad.ml:3:30: [ct-compare] polymorphic comparison (<>) on \
       non-literal operands: use a monomorphic or constant-time equality \
       (F.equal, Int.equal, Hmac.verify)";
      "ct_compare_bad.ml:4:14: [ct-compare] polymorphic compare is \
       variable-time: use Int.compare or a field-specific comparison";
      "ct_compare_bad.ml:5:15: [ct-compare] variable-time comparison \
       String.compare: secret-dependent data must use a constant-time or \
       field-specific equality";
      "ct_compare_bad.ml:6:15: [ct-compare] variable-time comparison \
       Bytes.compare: secret-dependent data must use a constant-time or \
       field-specific equality";
      "ct_compare_bad.ml:7:14: [ct-compare] String.equal short-circuits on \
       the first mismatch: use a constant-time comparison for \
       secret-dependent data";
      "ct_compare_bad.ml:8:14: [ct-compare] Bytes.equal short-circuits on \
       the first mismatch: use a constant-time comparison for \
       secret-dependent data";
      "ct_compare_bad.ml:9:15: [ct-compare] polymorphic compare is \
       variable-time: use Int.compare or a field-specific comparison";
      "ct_compare_bad.ml:10:28: [ct-compare] polymorphic comparison (=) on \
       non-literal operands: use a monomorphic or constant-time equality \
       (F.equal, Int.equal, Hmac.verify)";
    ]
    (lint "ct_compare_bad.ml")

let test_ct_compare_negatives () =
  check_diags "ct_compare_ok" [] (lint "ct_compare_ok.ml")

let test_ambient_positives () =
  check_diags "ambient_bad"
    [
      "ambient_bad.ml:2:17: [no-ambient-random] ambient randomness \
       Random.int: every protocol execution must be a pure function of its \
       Rng seed (thread a seeded Prio_crypto.Rng.t)";
      "ambient_bad.ml:3:16: [no-ambient-random] ambient randomness \
       Random.self_init: every protocol execution must be a pure function \
       of its Rng seed (thread a seeded Prio_crypto.Rng.t)";
    ]
    (lint "ambient_bad.ml")

let test_ambient_negatives () =
  check_diags "ambient_ok" [] (lint "ambient_ok.ml")

let test_clock_positives () =
  check_diags "clock_bad"
    [
      "clock_bad.ml:2:13: [no-ambient-clock] ambient clock \
       Unix.gettimeofday: read time through the Obs.Clock or Retry.now \
       seams (or take an instant as a parameter) so runs replay \
       deterministically";
      "clock_bad.ml:3:15: [no-ambient-clock] ambient clock Unix.time: read \
       time through the Obs.Clock or Retry.now seams (or take an instant \
       as a parameter) so runs replay deterministically";
      "clock_bad.ml:4:13: [no-ambient-clock] ambient clock Sys.time: read \
       time through the Obs.Clock or Retry.now seams (or take an instant \
       as a parameter) so runs replay deterministically";
    ]
    (lint "clock_bad.ml")

let test_clock_negatives () =
  check_diags "clock_ok" [] (lint "clock_ok.ml")

let test_error_discipline_positives () =
  check_diags "errors_bad"
    [
      "errors_bad.ml:2:14: [error-discipline] failwith escapes the \
       protocol boundary as Failure: return a structured protocol_error \
       instead";
      "errors_bad.ml:3:69: [error-discipline] raising Not_found across the \
       protocol boundary: return a structured protocol_error \
       (locally-declared exceptions caught before the public API are fine)";
      "errors_bad.ml:4:23: [error-discipline] raising Failure across the \
       protocol boundary: return a structured protocol_error \
       (locally-declared exceptions caught before the public API are fine)";
      "errors_bad.ml:5:24: [error-discipline] raising Unix.Unix_error \
       across the protocol boundary: return a structured protocol_error \
       (locally-declared exceptions caught before the public API are fine)";
    ]
    (lint "errors_bad.ml")

let test_error_discipline_negatives () =
  check_diags "errors_ok" [] (lint "errors_ok.ml")

let test_debug_io_positives () =
  check_diags "io_bad"
    [
      "io_bad.ml:2:14: [no-debug-io] debug I/O Printf.printf in library \
       code: return the data, take a Format.formatter, or log at the \
       binary layer";
      "io_bad.ml:3:15: [no-debug-io] debug I/O print_endline in library \
       code: return the data, take a Format.formatter, or log at the \
       binary layer";
      "io_bad.ml:4:15: [no-debug-io] debug I/O prerr_endline in library \
       code: return the data, take a Format.formatter, or log at the \
       binary layer";
      "io_bad.ml:5:13: [no-debug-io] debug I/O Format.eprintf in library \
       code: return the data, take a Format.formatter, or log at the \
       binary layer";
    ]
    (lint "io_bad.ml")

let test_debug_io_negatives () = check_diags "io_ok" [] (lint "io_ok.ml")

let test_partial_positives () =
  check_diags "partial_bad"
    [
      "partial_bad.ml:2:14: [no-partial-stdlib] List.hd raises on short \
       lists: match explicitly or restructure";
      "partial_bad.ml:3:15: [no-partial-stdlib] List.nth raises on short \
       lists: match explicitly or restructure";
      "partial_bad.ml:4:14: [no-partial-stdlib] Option.get raises on None: \
       match explicitly on the option";
      "partial_bad.ml:5:13: [no-partial-stdlib] Obj.magic defeats the type \
       system entirely";
    ]
    (lint "partial_bad.ml")

let test_partial_negatives () =
  check_diags "partial_ok" [] (lint "partial_ok.ml")

let test_mli_coverage () =
  let flagged files =
    List.map fst (Rules.run_mli_coverage files)
  in
  Alcotest.(check (list string))
    "missing .mli flagged"
    [ "lib/foo/b.ml"; "lib/bar/c.ml" ]
    (flagged
       [ "lib/foo/a.ml"; "lib/foo/a.mli"; "lib/foo/b.ml"; "lib/bar/c.ml" ]);
  Alcotest.(check (list string))
    "covered modules pass" []
    (flagged [ "lib/foo/a.ml"; "lib/foo/a.mli"; "lib/foo/d.mli" ]);
  (* the exemptions are Policy's, not the rule's *)
  Alcotest.(check bool) "policy exempts lib/core" true
    (Policy.severity_of "lib/core/prio.ml" Rules.mli_coverage = None);
  Alcotest.(check bool) "policy demands .mli elsewhere in lib" true
    (Policy.severity_of "lib/field/counting.ml" Rules.mli_coverage
    = Some D.Error)

let test_suppressions () =
  check_diags "suppressed"
    [
      "suppressed.ml:8:15: [error-discipline] failwith escapes the \
       protocol boundary as Failure: return a structured protocol_error \
       instead";
    ]
    (lint "suppressed.ml")

let test_baseline () =
  let b =
    Baseline.parse
      "# comment\nlib/field/field_intf.ml mli-coverage\n\nlib/x.ml \
       ct-compare # trailing\n"
  in
  Alcotest.(check bool) "entry waives" true
    (Baseline.waived b ~file:"lib/field/field_intf.ml" ~rule:"mli-coverage");
  Alcotest.(check bool) "trailing comment stripped" true
    (Baseline.waived b ~file:"lib/x.ml" ~rule:"ct-compare");
  Alcotest.(check bool) "other rule not waived" false
    (Baseline.waived b ~file:"lib/field/field_intf.ml" ~rule:"ct-compare");
  Alcotest.(check bool) "other file not waived" false
    (Baseline.waived b ~file:"lib/field/babybear.ml" ~rule:"mli-coverage")

let test_parse_error () =
  match Driver.lint_source ~rules:Rules.all_ast_rules ~path:"garbage.ml"
      "let let let ("
  with
  | [ d ] -> Alcotest.(check string) "rule" "parse-error" d.D.rule
  | ds -> Alcotest.failf "expected one parse-error, got %d" (List.length ds)

(* ------------------------------ policy ------------------------------- *)

let test_policy () =
  let sev = Policy.severity_of in
  Alcotest.(check bool) "ct-compare hot in crypto" true
    (sev "lib/crypto/hmac.ml" Rules.ct_compare = Some D.Error);
  Alcotest.(check bool) "ct-compare off in proto" true
    (sev "lib/proto/net.ml" Rules.ct_compare = None);
  Alcotest.(check bool) "entropy seam exempt" true
    (sev "lib/crypto/rng.ml" Rules.no_ambient_random = None);
  Alcotest.(check bool) "retry seam is not an entropy seam" true
    (sev "lib/proto/retry.ml" Rules.no_ambient_random = Some D.Error);
  Alcotest.(check bool) "ambient randomness an error elsewhere" true
    (sev "lib/crypto/chacha20.ml" Rules.no_ambient_random = Some D.Error);
  Alcotest.(check bool) "retry seam exempt from the clock rule" true
    (sev "lib/proto/retry.ml" Rules.no_ambient_clock = None);
  Alcotest.(check bool) "obs clock seam exempt from the clock rule" true
    (sev "lib/obs/clock.ml" Rules.no_ambient_clock = None);
  Alcotest.(check bool) "entropy seam exempt from the clock rule" true
    (sev "lib/crypto/rng.ml" Rules.no_ambient_clock = None);
  Alcotest.(check bool) "ambient clock an error elsewhere" true
    (sev "lib/proto/net.ml" Rules.no_ambient_clock = Some D.Error);
  Alcotest.(check bool) "bench may read the wall clock" true
    (sev "bench/main.ml" Rules.no_ambient_clock = None
    && sev "bench/main.ml" Rules.no_ambient_random = None);
  Alcotest.(check bool) "error-discipline scoped to proto" true
    (sev "lib/proto/server.ml" Rules.error_discipline = Some D.Error
    && sev "lib/afe/sum.ml" Rules.error_discipline = None);
  Alcotest.(check bool) "partial functions a warning in examples" true
    (sev "examples/survey.ml" Rules.no_partial_stdlib = Some D.Warning);
  Alcotest.(check bool) "debug IO fine in binaries" true
    (sev "bin/prio_cli.ml" Rules.no_debug_io = None)

(* ----------------------------- tree gate ----------------------------- *)

let test_tree_clean () =
  let baseline = Baseline.load "../.prio-lint-baseline" in
  let diags =
    Driver.lint_tree ~baseline ~root:".."
      ~dirs:[ "lib"; "bin"; "bench"; "examples" ] ()
  in
  check_diags "the tree is lint-clean" [] (List.map D.to_string diags)

let () =
  Alcotest.run "lint"
    [
      ( "corpus",
        [
          Alcotest.test_case "ct-compare positives" `Quick
            test_ct_compare_positives;
          Alcotest.test_case "ct-compare negatives" `Quick
            test_ct_compare_negatives;
          Alcotest.test_case "no-ambient-random positives" `Quick
            test_ambient_positives;
          Alcotest.test_case "no-ambient-random negatives" `Quick
            test_ambient_negatives;
          Alcotest.test_case "no-ambient-clock positives" `Quick
            test_clock_positives;
          Alcotest.test_case "no-ambient-clock negatives" `Quick
            test_clock_negatives;
          Alcotest.test_case "error-discipline positives" `Quick
            test_error_discipline_positives;
          Alcotest.test_case "error-discipline negatives" `Quick
            test_error_discipline_negatives;
          Alcotest.test_case "no-debug-io positives" `Quick
            test_debug_io_positives;
          Alcotest.test_case "no-debug-io negatives" `Quick
            test_debug_io_negatives;
          Alcotest.test_case "no-partial-stdlib positives" `Quick
            test_partial_positives;
          Alcotest.test_case "no-partial-stdlib negatives" `Quick
            test_partial_negatives;
          Alcotest.test_case "mli-coverage" `Quick test_mli_coverage;
          Alcotest.test_case "inline suppressions" `Quick test_suppressions;
          Alcotest.test_case "baseline" `Quick test_baseline;
          Alcotest.test_case "parse errors reported" `Quick test_parse_error;
        ] );
      ("policy", [ Alcotest.test_case "severity map" `Quick test_policy ]);
      ( "tree",
        [ Alcotest.test_case "repo is clean" `Quick test_tree_clean ] );
    ]

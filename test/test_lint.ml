(* Tests for the prio_lint static analyzer.

   Two layers: (a) the tree gate — the linter must be clean on the whole
   repo (modulo the checked-in baseline), so any new violation fails
   `dune runtest` as well as `dune build @lint`; (b) a corpus of known-bad
   and known-good snippets under lint_corpus/ with the exact diagnostics
   pinned, so a rule that goes blind (or trigger-happy) is caught by the
   suite, not by reviewers. *)

module D = Prio_analysis.Diagnostic
module Rules = Prio_analysis.Rules
module Policy = Prio_analysis.Policy
module Driver = Prio_analysis.Driver
module Baseline = Prio_analysis.Baseline
module Callgraph = Prio_analysis.Callgraph

let read_file path =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  src

(* Lint one corpus file under every AST rule; diagnostics are labelled
   with the bare file name so expectations stay short. *)
let lint file =
  let src = read_file (Filename.concat "lint_corpus" file) in
  List.map D.to_string
    (Driver.lint_source ~rules:Rules.all_ast_rules ~path:file src)

let check_diags name expected actual =
  Alcotest.(check (list string)) name expected actual

(* Lint corpus files as one program under the cross-file rules. *)
let lint_cross rules files =
  let files =
    List.map
      (fun f -> (f, read_file (Filename.concat "lint_corpus" f)))
      files
  in
  List.map D.to_string (Driver.lint_sources ~rules ~files)

(* ------------------------------ corpus ------------------------------- *)

let test_ct_compare_positives () =
  check_diags "ct_compare_bad"
    [
      "ct_compare_bad.ml:2:30: [ct-compare] polymorphic comparison (=) on \
       non-literal operands: use a monomorphic or constant-time equality \
       (F.equal, Int.equal, Hmac.verify)";
      "ct_compare_bad.ml:3:30: [ct-compare] polymorphic comparison (<>) on \
       non-literal operands: use a monomorphic or constant-time equality \
       (F.equal, Int.equal, Hmac.verify)";
      "ct_compare_bad.ml:4:14: [ct-compare] polymorphic compare is \
       variable-time: use Int.compare or a field-specific comparison";
      "ct_compare_bad.ml:5:15: [ct-compare] variable-time comparison \
       String.compare: secret-dependent data must use a constant-time or \
       field-specific equality";
      "ct_compare_bad.ml:6:15: [ct-compare] variable-time comparison \
       Bytes.compare: secret-dependent data must use a constant-time or \
       field-specific equality";
      "ct_compare_bad.ml:7:14: [ct-compare] String.equal short-circuits on \
       the first mismatch: use a constant-time comparison for \
       secret-dependent data";
      "ct_compare_bad.ml:8:14: [ct-compare] Bytes.equal short-circuits on \
       the first mismatch: use a constant-time comparison for \
       secret-dependent data";
      "ct_compare_bad.ml:9:15: [ct-compare] polymorphic compare is \
       variable-time: use Int.compare or a field-specific comparison";
      "ct_compare_bad.ml:10:28: [ct-compare] polymorphic comparison (=) on \
       non-literal operands: use a monomorphic or constant-time equality \
       (F.equal, Int.equal, Hmac.verify)";
    ]
    (lint "ct_compare_bad.ml")

let test_ct_compare_negatives () =
  check_diags "ct_compare_ok" [] (lint "ct_compare_ok.ml")

let test_ambient_positives () =
  check_diags "ambient_bad"
    [
      "ambient_bad.ml:2:17: [no-ambient-random] ambient randomness \
       Random.int: every protocol execution must be a pure function of its \
       Rng seed (thread a seeded Prio_crypto.Rng.t)";
      "ambient_bad.ml:3:16: [no-ambient-random] ambient randomness \
       Random.self_init: every protocol execution must be a pure function \
       of its Rng seed (thread a seeded Prio_crypto.Rng.t)";
    ]
    (lint "ambient_bad.ml")

let test_ambient_negatives () =
  check_diags "ambient_ok" [] (lint "ambient_ok.ml")

let test_clock_positives () =
  check_diags "clock_bad"
    [
      "clock_bad.ml:2:13: [no-ambient-clock] ambient clock \
       Unix.gettimeofday: read time through the Obs.Clock or Retry.now \
       seams (or take an instant as a parameter) so runs replay \
       deterministically";
      "clock_bad.ml:3:15: [no-ambient-clock] ambient clock Unix.time: read \
       time through the Obs.Clock or Retry.now seams (or take an instant \
       as a parameter) so runs replay deterministically";
      "clock_bad.ml:4:13: [no-ambient-clock] ambient clock Sys.time: read \
       time through the Obs.Clock or Retry.now seams (or take an instant \
       as a parameter) so runs replay deterministically";
    ]
    (lint "clock_bad.ml")

let test_clock_negatives () =
  check_diags "clock_ok" [] (lint "clock_ok.ml")

let test_error_discipline_positives () =
  check_diags "errors_bad"
    [
      "errors_bad.ml:2:14: [error-discipline] failwith escapes the \
       protocol boundary as Failure: return a structured protocol_error \
       instead";
      "errors_bad.ml:3:69: [error-discipline] raising Not_found across the \
       protocol boundary: return a structured protocol_error \
       (locally-declared exceptions caught before the public API are fine)";
      "errors_bad.ml:4:23: [error-discipline] raising Failure across the \
       protocol boundary: return a structured protocol_error \
       (locally-declared exceptions caught before the public API are fine)";
      "errors_bad.ml:5:24: [error-discipline] raising Unix.Unix_error \
       across the protocol boundary: return a structured protocol_error \
       (locally-declared exceptions caught before the public API are fine)";
    ]
    (lint "errors_bad.ml")

let test_error_discipline_negatives () =
  check_diags "errors_ok" [] (lint "errors_ok.ml")

let test_debug_io_positives () =
  check_diags "io_bad"
    [
      "io_bad.ml:2:14: [no-debug-io] debug I/O Printf.printf in library \
       code: return the data, take a Format.formatter, or log at the \
       binary layer";
      "io_bad.ml:3:15: [no-debug-io] debug I/O print_endline in library \
       code: return the data, take a Format.formatter, or log at the \
       binary layer";
      "io_bad.ml:4:15: [no-debug-io] debug I/O prerr_endline in library \
       code: return the data, take a Format.formatter, or log at the \
       binary layer";
      "io_bad.ml:5:13: [no-debug-io] debug I/O Format.eprintf in library \
       code: return the data, take a Format.formatter, or log at the \
       binary layer";
    ]
    (lint "io_bad.ml")

let test_debug_io_negatives () = check_diags "io_ok" [] (lint "io_ok.ml")

let test_partial_positives () =
  check_diags "partial_bad"
    [
      "partial_bad.ml:2:14: [no-partial-stdlib] List.hd raises on short \
       lists: match explicitly or restructure";
      "partial_bad.ml:3:15: [no-partial-stdlib] List.nth raises on short \
       lists: match explicitly or restructure";
      "partial_bad.ml:4:14: [no-partial-stdlib] Option.get raises on None: \
       match explicitly on the option";
      "partial_bad.ml:5:13: [no-partial-stdlib] Obj.magic defeats the type \
       system entirely";
    ]
    (lint "partial_bad.ml")

let test_partial_negatives () =
  check_diags "partial_ok" [] (lint "partial_ok.ml")

let test_mli_coverage () =
  let flagged files =
    List.map fst (Rules.run_mli_coverage files)
  in
  Alcotest.(check (list string))
    "missing .mli flagged"
    [ "lib/foo/b.ml"; "lib/bar/c.ml" ]
    (flagged
       [ "lib/foo/a.ml"; "lib/foo/a.mli"; "lib/foo/b.ml"; "lib/bar/c.ml" ]);
  Alcotest.(check (list string))
    "covered modules pass" []
    (flagged [ "lib/foo/a.ml"; "lib/foo/a.mli"; "lib/foo/d.mli" ]);
  (* the exemptions are Policy's, not the rule's *)
  Alcotest.(check bool) "policy exempts lib/core" true
    (Policy.severity_of "lib/core/prio.ml" Rules.mli_coverage = None);
  Alcotest.(check bool) "policy demands .mli elsewhere in lib" true
    (Policy.severity_of "lib/field/counting.ml" Rules.mli_coverage
    = Some D.Error)

let test_suppressions () =
  check_diags "suppressed"
    [
      "suppressed.ml:8:15: [error-discipline] failwith escapes the \
       protocol boundary as Failure: return a structured protocol_error \
       instead";
    ]
    (lint "suppressed.ml")

let test_baseline () =
  let b =
    Baseline.parse
      "# comment\nlib/field/field_intf.ml mli-coverage\n\nlib/x.ml \
       ct-compare # trailing\n"
  in
  Alcotest.(check bool) "entry waives" true
    (Baseline.waived b ~file:"lib/field/field_intf.ml" ~rule:"mli-coverage");
  Alcotest.(check bool) "trailing comment stripped" true
    (Baseline.waived b ~file:"lib/x.ml" ~rule:"ct-compare");
  Alcotest.(check bool) "other rule not waived" false
    (Baseline.waived b ~file:"lib/field/field_intf.ml" ~rule:"ct-compare");
  Alcotest.(check bool) "other file not waived" false
    (Baseline.waived b ~file:"lib/field/babybear.ml" ~rule:"mli-coverage")

let test_parse_error () =
  match Driver.lint_source ~rules:Rules.all_ast_rules ~path:"garbage.ml"
      "let let let ("
  with
  | [ d ] -> Alcotest.(check string) "rule" "parse-error" d.D.rule
  | ds -> Alcotest.failf "expected one parse-error, got %d" (List.length ds)

(* ------------------------- cross-file rules -------------------------- *)

let test_race_positives () =
  check_diags "race_bad"
    [
      "race_bad.ml:10:25: [domain-unsafe-state] unguarded use of \
       module-level mutable state Race_bad.gauges (hash table, \
       race_bad.ml:6) from domain-reachable code in Race_bad.set: wrap it \
       in Atomic, guard it with a Mutex, or move it to Domain.DLS";
      "race_bad.ml:11:14: [domain-unsafe-state] unguarded write to a \
       mutable field of 'g', an alias of module-level mutable state \
       Race_bad.gauges (hash table, race_bad.ml:6), from domain-reachable \
       code in Race_bad.set: wrap the field in Atomic or guard the write \
       with the owning Mutex";
      "race_bad.ml:12:28: [domain-unsafe-state] unguarded use of \
       module-level mutable state Race_bad.gauges (hash table, \
       race_bad.ml:6) from domain-reachable code in Race_bad.set: wrap it \
       in Atomic, guard it with a Mutex, or move it to Domain.DLS";
      "race_bad.ml:20:9: [domain-unsafe-state] unguarded use of \
       module-level mutable state Race_bad.current (ref cell, \
       race_bad.ml:16) from domain-reachable code in Race_bad.event: wrap \
       it in Atomic, guard it with a Mutex, or move it to Domain.DLS";
      "race_bad.ml:22:14: [domain-unsafe-state] unguarded write to a \
       mutable field of 'r', an alias of module-level mutable state \
       Race_bad.current (ref cell, race_bad.ml:16), from domain-reachable \
       code in Race_bad.event: wrap the field in Atomic or guard the \
       write with the owning Mutex";
    ]
    (lint_cross [ Rules.domain_unsafe_state ] [ "race_bad.ml" ])

let test_race_negatives () =
  check_diags "race_ok" []
    (lint_cross [ Rules.domain_unsafe_state ] [ "race_ok.ml" ])

let test_taint_positives () =
  check_diags "taint_bad"
    [
      "taint_bad.ml:11:25: [secret-flow] possible secret leak in \
       Taint_bad.leak_direct: value derived from Rng.bytes flows into \
       Printf.printf";
      "taint_bad.ml:15:11: [secret-flow] possible secret leak in \
       Taint_bad.leak_producer: value derived from Rng.bytes via \
       Taint_bad.make_key flows into failwith";
      "taint_bad.ml:20:38: [secret-flow] possible secret leak in \
       Taint_bad.leak_annotated: value derived from a '(* prio-lint: \
       secret *)' annotation on Taint_bad.api_token flows into \
       print_endline";
      "taint_bad.ml:24:11: [secret-flow] possible secret leak in \
       Taint_bad.leak_wrapper: value derived from Rng.bytes reaches \
       print_endline via Taint_bad.log_line";
      "taint_bad.ml:28:26: [secret-flow] possible secret leak in \
       Taint_bad.leak_exn: value derived from Rng.bytes flows into an \
       exception payload";
    ]
    (lint_cross [ Rules.secret_flow ] [ "taint_bad.ml" ])

let test_taint_negatives () =
  check_diags "taint_ok" []
    (lint_cross [ Rules.secret_flow ] [ "taint_ok.ml" ])

(* Call-graph resolution: the Prio.* facade, functor-application
   aliases, and [open Core] all resolve through to defining modules. *)
let test_callgraph () =
  let parse (path, src) =
    match Driver.parse_implementation ~path src with
    | Ok str -> (path, src, str)
    | Error d -> Alcotest.failf "parse %s: %s" path (D.to_string d)
  in
  let cg =
    Callgraph.build
      (List.map parse
         [
           ("lib/obs/trace.ml", "let event () = ()");
           ( "lib/proto/cluster.ml",
             "module Make (F : sig end) = struct\n\
             \  let submit _c = Prio_obs.Trace.event ()\n\
              end" );
           ( "lib/core/prio.ml",
             "module Obs_trace = Prio_obs.Trace\n\
              module Cluster = Prio_proto.Cluster" );
           ( "bin/app.ml",
             "open Core\n\
              module C = Prio.Cluster.Make (struct end)\n\
              let go c = C.submit c\n\
              let use () = Prio.Obs_trace.event ()" );
         ])
  in
  let alias p = Callgraph.alias_of cg p in
  Alcotest.(check (option string))
    "facade alias" (Some "Prio_obs.Trace") (alias "Core.Prio.Obs_trace");
  Alcotest.(check (option string))
    "functor application resolves to the functor"
    (Some "Prio_proto.Cluster.Make") (alias "App.C");
  let calls id =
    match Callgraph.find cg id with
    | Some fn -> fn.Callgraph.fn_calls
    | None -> Alcotest.failf "function %s not in graph" id
  in
  Alcotest.(check (list string))
    "call through alias chain" [ "Prio_proto.Cluster.Make.submit" ]
    (calls "App.go");
  Alcotest.(check (list string))
    "call through the facade" [ "Prio_obs.Trace.event" ] (calls "App.use");
  Alcotest.(check (list string))
    "direct library call from inside a functor" [ "Prio_obs.Trace.event" ]
    (calls "Prio_proto.Cluster.Make.submit")

(* ------------------------------ policy ------------------------------- *)

let test_policy () =
  let sev = Policy.severity_of in
  Alcotest.(check bool) "ct-compare hot in crypto" true
    (sev "lib/crypto/hmac.ml" Rules.ct_compare = Some D.Error);
  Alcotest.(check bool) "ct-compare off in proto" true
    (sev "lib/proto/net.ml" Rules.ct_compare = None);
  Alcotest.(check bool) "entropy seam exempt" true
    (sev "lib/crypto/rng.ml" Rules.no_ambient_random = None);
  Alcotest.(check bool) "retry seam is not an entropy seam" true
    (sev "lib/proto/retry.ml" Rules.no_ambient_random = Some D.Error);
  Alcotest.(check bool) "ambient randomness an error elsewhere" true
    (sev "lib/crypto/chacha20.ml" Rules.no_ambient_random = Some D.Error);
  Alcotest.(check bool) "retry seam exempt from the clock rule" true
    (sev "lib/proto/retry.ml" Rules.no_ambient_clock = None);
  Alcotest.(check bool) "obs clock seam exempt from the clock rule" true
    (sev "lib/obs/clock.ml" Rules.no_ambient_clock = None);
  Alcotest.(check bool) "entropy seam exempt from the clock rule" true
    (sev "lib/crypto/rng.ml" Rules.no_ambient_clock = None);
  Alcotest.(check bool) "ambient clock an error elsewhere" true
    (sev "lib/proto/net.ml" Rules.no_ambient_clock = Some D.Error);
  Alcotest.(check bool) "bench may read the wall clock" true
    (sev "bench/main.ml" Rules.no_ambient_clock = None
    && sev "bench/main.ml" Rules.no_ambient_random = None);
  Alcotest.(check bool) "error-discipline scoped to proto" true
    (sev "lib/proto/server.ml" Rules.error_discipline = Some D.Error
    && sev "lib/afe/sum.ml" Rules.error_discipline = None);
  Alcotest.(check bool) "partial functions a warning in examples" true
    (sev "examples/survey.ml" Rules.no_partial_stdlib = Some D.Warning);
  Alcotest.(check bool) "debug IO fine in binaries" true
    (sev "bin/prio_cli.ml" Rules.no_debug_io = None);
  Alcotest.(check bool) "races are errors everywhere" true
    (sev "lib/obs/trace.ml" Rules.domain_unsafe_state = Some D.Error
    && sev "bench/main.ml" Rules.domain_unsafe_state = Some D.Error);
  Alcotest.(check bool) "secret leaks an error in lib and bin" true
    (sev "lib/proto/client.ml" Rules.secret_flow = Some D.Error
    && sev "bin/prio_cli.ml" Rules.secret_flow = Some D.Error);
  Alcotest.(check bool) "secret leaks advisory in bench" true
    (sev "bench/main.ml" Rules.secret_flow = Some D.Warning);
  Alcotest.(check bool) "cross rules are not per-file AST rules" true
    (List.for_all
       (fun r -> not (List.mem r (Policy.ast_rules_for "lib/obs/trace.ml")))
       Policy.cross_rules)

(* ----------------------------- tree gate ----------------------------- *)

(* ------------------------- circuit budgets --------------------------- *)

module Budget = Prio_analysis.Budget

let bentry name mul wires line = { Budget.name; mul; wires; line }

let test_budget_parse () =
  let parsed =
    Budget.parse ~file:"b"
      "# header\nsum8 mul=8 wires=41\n\nvariance8 mul=9 wires=45 # inline\n"
  in
  (match parsed with
  | Error d -> Alcotest.fail (D.to_string d)
  | Ok entries ->
    Alcotest.(check int) "two entries" 2 (List.length entries);
    let e = List.hd entries in
    Alcotest.(check string) "name" "sum8" e.Budget.name;
    Alcotest.(check int) "mul" 8 e.Budget.mul;
    Alcotest.(check int) "wires" 41 e.Budget.wires;
    Alcotest.(check int) "line" 2 e.Budget.line);
  (match Budget.parse ~file:"b" "sum8 mul=eight wires=41\n" with
  | Ok _ -> Alcotest.fail "non-numeric count parsed"
  | Error d ->
    Alcotest.(check string) "parse diagnostic"
      "b:1:0: [circuit-budget] mul= and wires= need non-negative integers"
      (D.to_string d));
  match Budget.parse ~file:"b" "sum8 mul=8\n" with
  | Ok _ -> Alcotest.fail "short line parsed"
  | Error d ->
    Alcotest.(check string) "shape diagnostic"
      "b:1:0: [circuit-budget] expected `<name> mul=<m> wires=<w>`"
      (D.to_string d)

let test_budget_roundtrip () =
  let entries = [ bentry "sum8" 8 41 0; bentry "or" 0 0 0 ] in
  match Budget.parse ~file:"b" (Budget.format entries) with
  | Error d -> Alcotest.fail (D.to_string d)
  | Ok parsed ->
    Alcotest.(check (list string)) "names survive"
      (List.map (fun e -> e.Budget.name) entries)
      (List.map (fun e -> e.Budget.name) parsed);
    List.iter2
      (fun a b ->
        Alcotest.(check int) "mul" a.Budget.mul b.Budget.mul;
        Alcotest.(check int) "wires" a.Budget.wires b.Budget.wires)
      entries parsed

let test_budget_check () =
  let budget = [ bentry "sum8" 8 41 4; bentry "gone" 5 9 5 ] in
  let measured = [ bentry "sum8" 9 44 0; bentry "new8" 3 7 0 ] in
  let diags = Budget.check ~file:"b" ~budget ~measured in
  check_diags "exact-pin diff"
    [
      "b:4:0: [circuit-budget] circuit sum8 regressed: budget mul=8 \
       wires=41, measured mul=9 wires=44; run `prio_lint --update-budgets` \
       and review the diff";
      "b:1:0: [circuit-budget] circuit new8 (mul=3 wires=7) has no budget \
       entry; run `prio_lint --update-budgets` and review the diff";
      "b:5:0: [circuit-budget] budget entry gone matches no measured \
       circuit; run `prio_lint --update-budgets` and review the diff";
    ]
    (List.map D.to_string diags);
  (* an improvement is also a divergence: the ledger must be re-pinned *)
  let diags =
    Budget.check ~file:"b"
      ~budget:[ bentry "sum8" 9 44 1 ]
      ~measured:[ bentry "sum8" 8 41 0 ]
  in
  (match diags with
  | [ d ] ->
    Alcotest.(check bool) "improvement flagged" true
      (String.length d.D.message > 0 && d.D.rule = Rules.circuit_budget)
  | _ -> Alcotest.fail "expected exactly one diagnostic");
  Alcotest.(check (list string)) "exact match is clean" []
    (List.map D.to_string
       (Budget.check ~file:"b"
          ~budget:[ bentry "sum8" 8 41 1 ]
          ~measured:[ bentry "sum8" 8 41 0 ]))

(* --------------------------- metric ledger --------------------------- *)

module Metricreg = Prio_analysis.Metricreg

let mreg name kind file line =
  { Metricreg.r_name = name; r_kind = kind; r_file = file; r_line = line }

let mentry name kind line = { Metricreg.name; kind; line }

let test_metricreg_collect () =
  let src =
    "let c = Metrics.counter \"prio_a_total\"\n\
     let g = Obs_metrics.gauge \"prio_b\"\n\
     let h = Prio_obs.Metrics.histogram \"prio_c_seconds\"\n\
     let _ = Metrics.add c 1\n\
     let name = \"computed\"\n\
     let _ = Metrics.counter name\n\
     let _ = Other.counter \"not_a_metric\"\n"
  in
  match Driver.parse_implementation ~path:"m.ml" src with
  | Error d -> Alcotest.fail (D.to_string d)
  | Ok str ->
    let regs = Metricreg.collect_structure ~file:"m.ml" str in
    Alcotest.(check (list (pair string string)))
      "literal registrations through the Metrics aliases, nothing else"
      [
        ("prio_a_total", "counter");
        ("prio_b", "gauge");
        ("prio_c_seconds", "histogram");
      ]
      (List.map
         (fun r ->
           (r.Metricreg.r_name, Metricreg.kind_to_string r.Metricreg.r_kind))
         regs);
    Alcotest.(check (list int)) "call-site lines recorded" [ 1; 2; 3 ]
      (List.map (fun r -> r.Metricreg.r_line) regs)

let test_metricreg_roundtrip () =
  let entries =
    [
      mentry "prio_a_total" Metricreg.Counter 0;
      mentry "prio_b_seconds" Metricreg.Histogram 0;
    ]
  in
  (match Metricreg.parse ~file:"l" (Metricreg.format entries) with
  | Error d -> Alcotest.fail (D.to_string d)
  | Ok parsed ->
    Alcotest.(check (list (pair string string)))
      "names and kinds survive the round trip"
      (List.map
         (fun (e : Metricreg.entry) ->
           (e.Metricreg.name, Metricreg.kind_to_string e.Metricreg.kind))
         entries)
      (List.map
         (fun (e : Metricreg.entry) ->
           (e.Metricreg.name, Metricreg.kind_to_string e.Metricreg.kind))
         parsed));
  (match Metricreg.parse ~file:"l" "x kind=knob\n" with
  | Ok _ -> Alcotest.fail "bad kind parsed"
  | Error d ->
    Alcotest.(check string) "kind diagnostic"
      "l:1:0: [metric-registry] kind= must be counter, gauge, or histogram"
      (D.to_string d));
  match Metricreg.parse ~file:"l" "lonely\n" with
  | Ok _ -> Alcotest.fail "short line parsed"
  | Error d ->
    Alcotest.(check string) "shape diagnostic"
      "l:1:0: [metric-registry] expected `<name> kind=<kind>`"
      (D.to_string d)

let test_metricreg_check () =
  let ledger =
    [
      mentry "prio_a_total" Metricreg.Counter 5;
      mentry "prio_gone" Metricreg.Gauge 6;
    ]
  in
  let measured =
    [
      mreg "prio_a_total" Metricreg.Histogram "lib/a.ml" 3;
      mreg "prio_new" Metricreg.Counter "lib/b.ml" 9;
    ]
  in
  check_diags "exact-pin diff"
    [
      "l:5:0: [metric-registry] metric prio_a_total changed kind: ledger \
       says counter, code registers histogram; run `prio_lint \
       --update-metrics` and review the diff";
      "l:1:0: [metric-registry] metric prio_new kind=counter has no ledger \
       entry (registered at lib/b.ml:9); run `prio_lint --update-metrics` \
       and review the diff";
      "l:6:0: [metric-registry] ledger entry prio_gone matches no \
       registration in the code; run `prio_lint --update-metrics` and \
       review the diff";
    ]
    (List.map D.to_string (Metricreg.check ~file:"l" ~ledger ~measured));
  (* one name registered under two kinds is broken whatever the ledger
     says *)
  (match
     Metricreg.check ~file:"l" ~ledger:[]
       ~measured:
         [
           mreg "prio_dup" Metricreg.Counter "a.ml" 1;
           mreg "prio_dup" Metricreg.Gauge "b.ml" 2;
         ]
   with
  | d :: _ ->
    Alcotest.(check string) "kind conflict"
      "l:1:0: [metric-registry] metric prio_dup registered as counter \
       (a.ml:1) and as gauge (b.ml:2)"
      (D.to_string d)
  | [] -> Alcotest.fail "kind conflict undetected");
  Alcotest.(check (list string)) "exact match is clean" []
    (List.map D.to_string
       (Metricreg.check ~file:"l"
          ~ledger:[ mentry "prio_a_total" Metricreg.Counter 1 ]
          ~measured:[ mreg "prio_a_total" Metricreg.Counter "a.ml" 1 ]))

let test_metric_ledger_current () =
  (* the committed ledger matches what the code actually registers — the
     same diff `dune build @lint` gates on *)
  match Metricreg.parse ~file:".prio-metrics" (read_file "../.prio-metrics") with
  | Error d -> Alcotest.fail (D.to_string d)
  | Ok ledger ->
    let measured =
      Metricreg.measure ~root:".." ~dirs:[ "lib"; "bin"; "bench"; "examples" ]
    in
    check_diags "the committed ledger is current" []
      (List.map D.to_string
         (Metricreg.check ~file:".prio-metrics" ~ledger ~measured))

let test_tree_clean () =
  let baseline = Baseline.load "../.prio-lint-baseline" in
  let diags =
    Driver.lint_tree ~baseline ~root:".."
      ~dirs:[ "lib"; "bin"; "bench"; "examples" ] ()
  in
  check_diags "the tree is lint-clean" [] (List.map D.to_string diags)

let () =
  Alcotest.run "lint"
    [
      ( "corpus",
        [
          Alcotest.test_case "ct-compare positives" `Quick
            test_ct_compare_positives;
          Alcotest.test_case "ct-compare negatives" `Quick
            test_ct_compare_negatives;
          Alcotest.test_case "no-ambient-random positives" `Quick
            test_ambient_positives;
          Alcotest.test_case "no-ambient-random negatives" `Quick
            test_ambient_negatives;
          Alcotest.test_case "no-ambient-clock positives" `Quick
            test_clock_positives;
          Alcotest.test_case "no-ambient-clock negatives" `Quick
            test_clock_negatives;
          Alcotest.test_case "error-discipline positives" `Quick
            test_error_discipline_positives;
          Alcotest.test_case "error-discipline negatives" `Quick
            test_error_discipline_negatives;
          Alcotest.test_case "no-debug-io positives" `Quick
            test_debug_io_positives;
          Alcotest.test_case "no-debug-io negatives" `Quick
            test_debug_io_negatives;
          Alcotest.test_case "no-partial-stdlib positives" `Quick
            test_partial_positives;
          Alcotest.test_case "no-partial-stdlib negatives" `Quick
            test_partial_negatives;
          Alcotest.test_case "mli-coverage" `Quick test_mli_coverage;
          Alcotest.test_case "inline suppressions" `Quick test_suppressions;
          Alcotest.test_case "baseline" `Quick test_baseline;
          Alcotest.test_case "parse errors reported" `Quick test_parse_error;
          Alcotest.test_case "domain-unsafe-state positives" `Quick
            test_race_positives;
          Alcotest.test_case "domain-unsafe-state negatives" `Quick
            test_race_negatives;
          Alcotest.test_case "secret-flow positives" `Quick
            test_taint_positives;
          Alcotest.test_case "secret-flow negatives" `Quick
            test_taint_negatives;
          Alcotest.test_case "call-graph resolution" `Quick test_callgraph;
        ] );
      ("policy", [ Alcotest.test_case "severity map" `Quick test_policy ]);
      ( "budget",
        [
          Alcotest.test_case "parse" `Quick test_budget_parse;
          Alcotest.test_case "format round-trip" `Quick test_budget_roundtrip;
          Alcotest.test_case "exact-pin check" `Quick test_budget_check;
        ] );
      ( "metric registry",
        [
          Alcotest.test_case "collect registrations" `Quick
            test_metricreg_collect;
          Alcotest.test_case "ledger round-trip" `Quick
            test_metricreg_roundtrip;
          Alcotest.test_case "exact-pin check" `Quick test_metricreg_check;
          Alcotest.test_case "committed ledger is current" `Quick
            test_metric_ledger_current;
        ] );
      ( "tree",
        [ Alcotest.test_case "repo is clean" `Quick test_tree_clean ] );
    ]

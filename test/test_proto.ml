(* Protocol-layer tests: wire formats, the simulated cluster (acceptance,
   rejection, replay and forgery handling, byte accounting), distributed
   differential-privacy noise, and the NIZK pipeline. *)

module Rng = Prio_crypto.Rng
module B = Prio_bigint.Bigint
module F = Prio_field.F87
module W = Prio_proto.Wire.Make (F)
module Sh = Prio_share.Share.Make (F)
module Sum = Prio_afe.Sum.Make (F)
module A = Prio_afe.Afe.Make (F)
module Cl = Prio_proto.Cluster.Make (F)
module Client = Prio_proto.Client.Make (F)
module P = Prio_proto.Pipeline.Make (F)
module Dp = Prio_proto.Dp

let rng = Rng.of_string_seed "proto-tests"

(* ------------------------------- wire ------------------------------- *)

let test_wire_vector () =
  for _ = 1 to 10 do
    let v = Array.init (Rng.int_below rng 20) (fun _ -> F.random rng) in
    let b = W.vector_to_bytes v in
    Alcotest.(check int) "size" (Array.length v * F.bytes_len) (Bytes.length b);
    Alcotest.(check bool) "roundtrip" true
      (Array.for_all2 F.equal (W.vector_of_bytes b) v)
  done;
  Alcotest.(check bool) "ragged rejected" true
    (match W.vector_of_bytes (Bytes.create 3) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_wire_payload () =
  let v = Array.init 7 (fun _ -> F.random rng) in
  let roundtrip c =
    let c' = W.payload_of_bytes (W.payload_to_bytes c) in
    Array.for_all2 F.equal (Sh.expand c ~len:7) (Sh.expand c' ~len:7)
  in
  Alcotest.(check bool) "explicit" true (roundtrip (Sh.Explicit v));
  let seed = Rng.bytes rng Rng.seed_bytes in
  Alcotest.(check bool) "seed" true (roundtrip (Sh.Seed seed));
  Alcotest.(check bool) "bad tag" true
    (match W.payload_of_bytes (Bytes.of_string "\002xy") with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------ cluster ----------------------------- *)

let make_cluster ?(num_servers = 3) mode =
  let afe = Sum.sum ~bits:4 in
  let master = Rng.bytes rng 32 in
  let cluster =
    Cl.create ~rng ~mode ~circuit:afe.A.circuit ~trunc_len:afe.A.trunc_len
      ~num_servers ~master ()
  in
  (afe, cluster)

let submit_value ?(tamper = fun pk -> pk) (afe, cluster) ~client_id x =
  let enc = afe.A.encode ~rng x in
  let pk =
    Client.submit ~rng
      ~mode:(Cl.client_mode cluster)
      ~num_servers:cluster.Cl.s ~client_id ~master:cluster.Cl.master enc
  in
  Cl.submit cluster ~client_id (tamper pk)

let test_cluster_modes_aggregate () =
  List.iter
    (fun mode ->
      let ((afe, cluster) as d) = make_cluster mode in
      List.iteri
        (fun i x ->
          Alcotest.(check bool) "accepted" true (submit_value d ~client_id:i x))
        [ 3; 7; 15; 0; 9 ];
      let sigma = Cl.publish cluster in
      Alcotest.(check string) "aggregate" "34"
        (B.to_string (afe.A.decode ~n:5 sigma));
      Alcotest.(check int) "accepted count" 5 cluster.Cl.accepted;
      Alcotest.(check int) "rejected count" 0 cluster.Cl.rejected)
    [ Cl.Robust_snip; Cl.Robust_mpc; Cl.No_robustness ]

let test_cluster_rejects_cheater () =
  List.iter
    (fun mode ->
      let ((afe, cluster) as d) = make_cluster mode in
      ignore (submit_value d ~client_id:0 7);
      (* inject an encoding inconsistent with its bit decomposition *)
      let bad = afe.A.encode ~rng 3 in
      bad.(0) <- F.of_int 11;
      let pk =
        Client.submit ~rng ~mode:(Cl.client_mode cluster)
          ~num_servers:cluster.Cl.s ~client_id:1 ~master:cluster.Cl.master bad
      in
      Alcotest.(check bool) "cheater rejected" false (Cl.submit cluster ~client_id:1 pk);
      ignore (submit_value d ~client_id:2 5);
      let sigma = Cl.publish cluster in
      (* the bogus 11 never entered the aggregate *)
      Alcotest.(check string) "aggregate excludes cheater" "12"
        (B.to_string (afe.A.decode ~n:2 sigma)))
    [ Cl.Robust_snip; Cl.Robust_mpc ]

let test_cluster_replay_and_forgery () =
  let ((afe, cluster) as d) = make_cluster Cl.Robust_snip in
  ignore afe;
  Alcotest.(check bool) "first accepted" true (submit_value d ~client_id:0 3);
  (* replay: resubmit the exact same packets *)
  let enc = afe.A.encode ~rng 5 in
  let pk =
    Client.submit ~rng ~mode:(Cl.client_mode cluster) ~num_servers:cluster.Cl.s
      ~client_id:1 ~master:cluster.Cl.master enc
  in
  Alcotest.(check bool) "accepted once" true (Cl.submit cluster ~client_id:1 pk);
  Alcotest.(check bool) "replay dropped" false (Cl.submit cluster ~client_id:1 pk);
  (* forgery: flip a ciphertext byte *)
  Alcotest.(check bool) "forged packet dropped" false
    (submit_value d ~client_id:2 4 ~tamper:(fun pk ->
         Bytes.set pk.Client.sealed.(1) 20 '\xff';
         pk));
  (* a packet sealed under the wrong client id fails auth *)
  let pk =
    Client.submit ~rng ~mode:(Cl.client_mode cluster) ~num_servers:cluster.Cl.s
      ~client_id:99 ~master:cluster.Cl.master enc
  in
  Alcotest.(check bool) "wrong identity dropped" false
    (Cl.submit cluster ~client_id:3 pk)

let test_byte_accounting_shapes () =
  (* Prio: per-submission non-leader traffic is constant; Prio-MPC grows
     with the circuit. This is the Figure 6 claim in miniature. *)
  let afe_small = Sum.sum ~bits:2 and afe_big = Sum.sum ~bits:32 in
  let master = Rng.bytes rng 32 in
  let traffic mode afe =
    let cluster =
      Cl.create ~rng ~mode ~circuit:afe.A.circuit ~trunc_len:afe.A.trunc_len
        ~num_servers:3 ~master ()
    in
    let enc = afe.A.encode ~rng 1 in
    let pk =
      Client.submit ~rng ~mode:(Cl.client_mode cluster) ~num_servers:3
        ~client_id:0 ~master enc
    in
    ignore (Cl.submit cluster ~client_id:0 pk);
    (* server 1 never led (leader rotation starts at 0) *)
    Cl.bytes_sent cluster 1
  in
  let snip_small = traffic Cl.Robust_snip afe_small in
  let snip_big = traffic Cl.Robust_snip afe_big in
  Alcotest.(check int) "snip non-leader bytes constant" snip_small snip_big;
  let mpc_small = traffic Cl.Robust_mpc afe_small in
  let mpc_big = traffic Cl.Robust_mpc afe_big in
  Alcotest.(check bool) "mpc bytes grow with circuit" true (mpc_big > 4 * mpc_small);
  let none = traffic Cl.No_robustness afe_big in
  Alcotest.(check int) "no-robustness needs no gossip" 0 none

let test_no_privacy_single_server () =
  (* the no-privacy baseline is the degenerate s = 1 deployment *)
  let afe = Sum.sum ~bits:4 in
  let master = Rng.bytes rng 32 in
  let cluster =
    Cl.create ~rng ~mode:Cl.No_robustness ~circuit:afe.A.circuit
      ~trunc_len:afe.A.trunc_len ~num_servers:1 ~master ()
  in
  List.iteri
    (fun i x ->
      let pk =
        Client.submit ~rng ~mode:Client.No_robustness ~num_servers:1
          ~client_id:i ~master (afe.A.encode ~rng x)
      in
      ignore (Cl.submit cluster ~client_id:i pk))
    [ 1; 2; 3 ];
  Alcotest.(check string) "sum" "6" (B.to_string (afe.A.decode ~n:3 (Cl.publish cluster)))

let test_pipeline_helpers () =
  let afe = Sum.sum ~bits:4 in
  let master = Rng.bytes rng 32 in
  let cluster =
    Cl.create ~rng ~mode:Cl.Robust_snip ~circuit:afe.A.circuit
      ~trunc_len:afe.A.trunc_len ~num_servers:5 ~master ()
  in
  let encodings = List.init 10 (fun i -> afe.A.encode ~rng (i mod 16)) in
  let prepared = P.prepare ~rng cluster encodings in
  Alcotest.(check int) "all prepared" 10 (Array.length prepared.P.packets);
  Alcotest.(check bool) "upload bytes counted" true (prepared.P.upload_bytes > 0);
  let accepted, secs = P.process cluster prepared in
  Alcotest.(check int) "all accepted" 10 accepted;
  Alcotest.(check bool) "throughput positive" true
    (P.simulated_throughput ~num_servers:5 ~n:10 ~serial_seconds:secs > 0.)

(* ------------------------- PRG share compression --------------------- *)

let test_upload_compression () =
  (* compressed upload must be ~s× smaller than explicit sharing for large
     submissions: all but one packet is seed-sized *)
  let afe = Sum.sum ~bits:60 in
  let master = Rng.bytes rng 32 in
  let s = 5 in
  let enc = afe.A.encode ~rng 123456 in
  let pk =
    Client.submit ~rng ~mode:(Client.Robust_snip afe.A.circuit) ~num_servers:s
      ~client_id:0 ~master enc
  in
  let sizes = Array.map Bytes.length pk.Client.sealed in
  for i = 0 to s - 2 do
    Alcotest.(check bool) "seed packets are tiny" true (sizes.(i) < 100)
  done;
  Alcotest.(check bool) "one explicit packet" true (sizes.(s - 1) > 1000)

(* ------------------------------- DP --------------------------------- *)

let test_dp_moments () =
  let rng = Rng.of_string_seed "dp-moments" in
  let alpha = Dp.alpha_of_epsilon ~epsilon:0.5 ~sensitivity:1 in
  let n = 20000 in
  (* distributed shares must sum to TSG noise: compare mean/variance *)
  let total_mean = ref 0. and total_m2 = ref 0. in
  let s = 5 in
  for _ = 1 to n do
    let noise = ref 0 in
    for _ = 1 to s do
      noise := !noise + Dp.server_noise_share rng ~num_servers:s ~alpha
    done;
    let x = float_of_int !noise in
    total_mean := !total_mean +. x;
    total_m2 := !total_m2 +. (x *. x)
  done;
  let mean = !total_mean /. float_of_int n in
  let var = (!total_m2 /. float_of_int n) -. (mean *. mean) in
  let expect_var = Dp.tsg_variance ~alpha in
  Alcotest.(check bool) (Printf.sprintf "mean ~ 0 (got %.3f)" mean) true
    (abs_float mean < 0.2);
  Alcotest.(check bool)
    (Printf.sprintf "variance ~ %.2f (got %.2f)" expect_var var)
    true
    (abs_float (var -. expect_var) < 0.3 *. expect_var);
  (* reference sampler agrees *)
  let ref_m2 = ref 0. in
  for _ = 1 to n do
    let x = float_of_int (Dp.two_sided_geometric rng ~alpha) in
    ref_m2 := !ref_m2 +. (x *. x)
  done;
  let ref_var = !ref_m2 /. float_of_int n in
  Alcotest.(check bool) "reference variance agrees" true
    (abs_float (ref_var -. expect_var) < 0.3 *. expect_var)

let test_dp_publish () =
  let ((afe, cluster) as d) = make_cluster ~num_servers:5 Cl.Robust_snip in
  for i = 0 to 19 do
    ignore (submit_value d ~client_id:i (i mod 8))
  done;
  let alpha = Dp.alpha_of_epsilon ~epsilon:1.0 ~sensitivity:15 in
  let noised = Cl.publish ~dp_alpha:alpha cluster in
  ignore afe;
  (* the noised total should be near the true total of 70 *)
  let total = B.to_int_exn (F.to_bigint noised.(0)) in
  Alcotest.(check bool)
    (Printf.sprintf "noised total near 70 (got %d)" total)
    true
    (abs (total - 70) < 300)

(* Parsers must never crash on attacker-controlled bytes: every outcome is
   a clean parse or Invalid_argument, and the authenticated box rejects
   random packets outright. *)
let test_wire_fuzz () =
  let rng = Rng.of_string_seed "wire-fuzz" in
  for _ = 1 to 500 do
    let len = Rng.int_below rng 200 in
    let junk = Rng.bytes rng len in
    (match W.payload_of_bytes junk with
    | _ -> ()
    | exception Invalid_argument _ -> ());
    (match W.vector_of_bytes junk with
    | _ -> ()
    | exception Invalid_argument _ -> ());
    let key = Prio_crypto.Authbox.derive_key ~client_id:0 ~server_id:0
        ~master:(Bytes.of_string "m") in
    Alcotest.(check bool) "random packet rejected" true
      (Prio_crypto.Authbox.open_ ~key junk = None)
  done

let test_swapped_packets_rejected () =
  (* a client (or the network) delivering server j's packet to server i
     fails authentication at both *)
  let d = make_cluster Cl.Robust_snip in
  Alcotest.(check bool) "swapped packets dropped" false
    (submit_value d ~client_id:5 3 ~tamper:(fun pk ->
         let s = pk.Client.sealed in
         let t = s.(0) in
         s.(0) <- s.(1);
         s.(1) <- t;
         pk))

let test_batch_rotation () =
  (* with a tiny batch size the verifiers resample r repeatedly (App. I);
     honest submissions keep passing and cheaters keep failing across
     batch boundaries *)
  let afe = Sum.sum ~bits:4 in
  let master = Rng.bytes rng 32 in
  let cluster =
    Cl.create ~batch_size:3 ~rng ~mode:Cl.Robust_snip ~circuit:afe.A.circuit
      ~trunc_len:afe.A.trunc_len ~num_servers:3 ~master ()
  in
  for i = 0 to 9 do
    let cheat = i mod 4 = 3 in
    let enc = afe.A.encode ~rng (i mod 16) in
    if cheat then enc.(0) <- F.of_int 999;
    let pk =
      Client.submit ~rng ~mode:(Cl.client_mode cluster) ~num_servers:3
        ~client_id:i ~master enc
    in
    Alcotest.(check bool)
      (Printf.sprintf "submission %d" i)
      (not cheat)
      (Cl.submit cluster ~client_id:i pk)
  done;
  Alcotest.(check int) "several batches elapsed" 4 cluster.Cl.batches;
  Alcotest.(check int) "accepted" 8 cluster.Cl.accepted;
  Alcotest.(check int) "rejected" 2 cluster.Cl.rejected

(* ------------------------ registry & epochs -------------------------- *)

module Reg = Prio_proto.Registry
module Schnorr = Prio_nizk.Schnorr

let test_registry_gating () =
  let reg = Reg.create ~min_contributors:3 in
  let clients =
    List.init 5 (fun id ->
        let sk, pk = Schnorr.keygen rng in
        Reg.register reg ~client_id:id ~public_key:pk;
        (id, sk))
  in
  Alcotest.(check int) "registered" 5 (Reg.num_registered reg);
  let sealed = [| Rng.bytes rng 40; Rng.bytes rng 40 |] in
  let submit (id, sk) =
    let signature =
      Reg.client_sign rng ~secret_key:sk ~client_id:id ~epoch:(Reg.epoch reg) sealed
    in
    Reg.accept_submission reg ~client_id:id ~sealed ~signature
  in
  (* below the threshold: publication gated *)
  Alcotest.(check bool) "c0 accepted" true (submit (List.nth clients 0));
  Alcotest.(check bool) "c1 accepted" true (submit (List.nth clients 1));
  Alcotest.(check bool) "gated at 2 contributors" false (Reg.may_publish reg);
  Alcotest.(check bool) "c2 accepted" true (submit (List.nth clients 2));
  Alcotest.(check bool) "open at 3 contributors" true (Reg.may_publish reg);
  (* one registered client counts once *)
  Alcotest.(check bool) "duplicate contribution refused" false
    (submit (List.nth clients 0));
  Alcotest.(check int) "contributors" 3 (Reg.contributors reg)

let test_registry_rejects () =
  let reg = Reg.create ~min_contributors:1 in
  let sk, pk = Schnorr.keygen rng in
  let mallory_sk, _ = Schnorr.keygen rng in
  Reg.register reg ~client_id:1 ~public_key:pk;
  let sealed = [| Rng.bytes rng 32 |] in
  (* unregistered client *)
  let sig99 = Reg.client_sign rng ~secret_key:sk ~client_id:99 ~epoch:0 sealed in
  Alcotest.(check bool) "unregistered" false
    (Reg.accept_submission reg ~client_id:99 ~sealed ~signature:sig99);
  (* wrong key *)
  let bad = Reg.client_sign rng ~secret_key:mallory_sk ~client_id:1 ~epoch:0 sealed in
  Alcotest.(check bool) "forged signature" false
    (Reg.accept_submission reg ~client_id:1 ~sealed ~signature:bad);
  (* signature over different packets *)
  let other = [| Rng.bytes rng 32 |] in
  let s = Reg.client_sign rng ~secret_key:sk ~client_id:1 ~epoch:0 other in
  Alcotest.(check bool) "packet substitution" false
    (Reg.accept_submission reg ~client_id:1 ~sealed ~signature:s);
  (* stale epoch signature *)
  let s0 = Reg.client_sign rng ~secret_key:sk ~client_id:1 ~epoch:0 sealed in
  Reg.next_epoch reg;
  Alcotest.(check bool) "stale epoch" false
    (Reg.accept_submission reg ~client_id:1 ~sealed ~signature:s0);
  (* fresh epoch signature accepted, and epochs reset contributors *)
  let s1 = Reg.client_sign rng ~secret_key:sk ~client_id:1 ~epoch:1 sealed in
  Alcotest.(check bool) "fresh epoch" true
    (Reg.accept_submission reg ~client_id:1 ~sealed ~signature:s1);
  Reg.next_epoch reg;
  Alcotest.(check int) "contributors reset" 0 (Reg.contributors reg)

(* ---------------- DPF-compressed pipeline (Appendix G) --------------- *)

module Comp = Prio_proto.Compressed.Make (F)

let test_compressed_histogram () =
  let t = Comp.create ~bits:6 in
  let votes = [ 5; 5; 63; 0; 5; 17; 17 ] in
  List.iter (fun v -> ignore (Comp.submit rng t ~value:v)) votes;
  let counts = Array.map (fun x -> B.to_int_exn (F.to_bigint x)) (Comp.publish t) in
  Alcotest.(check int) "bucket 5" 3 counts.(5);
  Alcotest.(check int) "bucket 17" 2 counts.(17);
  Alcotest.(check int) "bucket 63" 1 counts.(63);
  Alcotest.(check int) "bucket 0" 1 counts.(0);
  Alcotest.(check int) "total" 7 (Array.fold_left ( + ) 0 counts)

let test_compressed_bandwidth () =
  let t = Comp.create ~bits:14 in
  let bytes = Comp.submit rng t ~value:1234 in
  let explicit = Comp.explicit_upload_bytes t in
  Alcotest.(check bool)
    (Printf.sprintf "DPF %dB ≪ explicit %dB" bytes explicit)
    true
    (bytes * 200 < explicit)

(* -------------------- threshold (Appendix B) ------------------------- *)

module Th = Prio_proto.Threshold.Make (F)

let test_threshold_aggregation () =
  let t = Th.create ~num_servers:5 ~threshold:3 ~len:4 in
  Alcotest.(check int) "tolerates 2 crashes" 2 (Th.fault_tolerance t);
  Alcotest.(check int) "privacy vs 2 colluders" 2 (Th.privacy_threshold t);
  let truth = Array.make 4 F.zero in
  for _ = 1 to 10 do
    let enc = Array.init 4 (fun _ -> F.of_int (Rng.int_below rng 100)) in
    Array.iteri (fun j v -> truth.(j) <- F.add truth.(j) v) enc;
    Th.submit rng t enc
  done;
  let check_subset servers =
    let got = Th.publish t ~servers in
    Alcotest.(check bool)
      (Printf.sprintf "subset [%s] reconstructs"
         (String.concat ";" (List.map string_of_int servers)))
      true
      (Array.for_all2 F.equal got truth)
  in
  (* any 3 servers suffice — including after "crashing" two *)
  check_subset [ 0; 1; 2 ];
  check_subset [ 2; 3; 4 ];
  check_subset [ 0; 2; 4 ];
  check_subset [ 0; 1; 2; 3; 4 ];
  (* two servers are not enough to even ask *)
  Alcotest.check_raises "too few"
    (Invalid_argument "Threshold.publish: not enough servers") (fun () ->
      ignore (Th.publish t ~servers:[ 0; 1 ]))

(* ------------------------- multicore batches ------------------------- *)

module Par = Prio_proto.Parallel.Make (F)

let test_parallel_matches_serial () =
  let afe = Sum.sum ~bits:4 in
  let master = Rng.bytes rng 32 in
  (* batch_size 4 forces several batch-secret rotations inside the run, so
     the merged rotation counters are exercised end to end *)
  let make_replica () =
    Cl.create ~batch_size:4 ~rng:(Rng.split rng) ~mode:Cl.Robust_snip
      ~circuit:afe.A.circuit ~trunc_len:afe.A.trunc_len ~num_servers:3 ~master
      ()
  in
  (* 20 submissions, 5 of them malformed *)
  let packets =
    Array.init 20 (fun i ->
        let enc = afe.A.encode ~rng (i mod 16) in
        if i mod 4 = 3 then enc.(0) <- F.of_int 999;
        let pk =
          Client.submit ~rng ~mode:(Client.Robust_snip afe.A.circuit)
            ~num_servers:3 ~client_id:i ~master enc
        in
        (i, pk))
  in
  let expected_total =
    List.fold_left ( + ) 0
      (List.filter_map
         (fun i -> if i mod 4 = 3 then None else Some (i mod 16))
         (List.init 20 Fun.id))
  in
  (* plain sequential reference: every observable below must match it *)
  let serial = make_replica () in
  Array.iter (fun (id, pk) -> ignore (Cl.submit serial ~client_id:id pk)) packets;
  let serial_links = Array.map Array.copy serial.Cl.links in
  let serial_total = afe.A.decode ~n:serial.Cl.accepted (Cl.publish serial) in
  Alcotest.(check string) "serial aggregate" (string_of_int expected_total)
    (B.to_string serial_total);
  List.iter
    (fun domains ->
      let merged, accepted = Par.process ~make_replica ~domains packets in
      Alcotest.(check int)
        (Printf.sprintf "accepted (%d domains)" domains)
        serial.Cl.accepted accepted;
      Alcotest.(check int) "counters merged" serial.Cl.accepted
        merged.Cl.accepted;
      Alcotest.(check int) "rejections merged" serial.Cl.rejected
        merged.Cl.rejected;
      Alcotest.(check int)
        (Printf.sprintf "batches (%d domains)" domains)
        serial.Cl.batches merged.Cl.batches;
      Alcotest.(check int)
        (Printf.sprintf "processed_in_batch (%d domains)" domains)
        serial.Cl.processed_in_batch merged.Cl.processed_in_batch;
      Alcotest.(check int)
        (Printf.sprintf "next_leader (%d domains)" domains)
        serial.Cl.next_leader merged.Cl.next_leader;
      Array.iteri
        (fun i row ->
          Alcotest.(check (array int))
            (Printf.sprintf "link bytes from server %d (%d domains)" i domains)
            serial_links.(i) row)
        merged.Cl.links;
      let total = afe.A.decode ~n:accepted (Cl.publish merged) in
      Alcotest.(check string)
        (Printf.sprintf "aggregate (%d domains)" domains)
        (string_of_int expected_total)
        (B.to_string total))
    [ 1; 2; 4 ]

let test_merge_rotation () =
  (* regression: merge_into used to drop processed_in_batch/batches, so a
     merged cluster under-counted rotations and kept stale batch secrets.
     Two replicas fed 4 + 6 submissions at batch_size 3 must merge to the
     exact rotation state of one cluster that saw all 10. *)
  let afe = Sum.sum ~bits:4 in
  let master = Rng.bytes rng 32 in
  let mk () =
    Cl.create ~batch_size:3 ~rng:(Rng.split rng) ~mode:Cl.Robust_snip
      ~circuit:afe.A.circuit ~trunc_len:afe.A.trunc_len ~num_servers:3 ~master
      ()
  in
  let packets =
    Array.init 10 (fun i ->
        let enc = afe.A.encode ~rng (i mod 16) in
        ( i,
          Client.submit ~rng ~mode:(Client.Robust_snip afe.A.circuit)
            ~num_servers:3 ~client_id:i ~master enc ))
  in
  let seq = mk () in
  Array.iter (fun (id, pk) -> ignore (Cl.submit seq ~client_id:id pk)) packets;
  Alcotest.(check int) "sequential batches" 4 seq.Cl.batches;
  Alcotest.(check int) "sequential carry" 1 seq.Cl.processed_in_batch;
  let a = mk () and b = mk () in
  Array.iteri
    (fun i (id, pk) ->
      let c = if i < 4 then a else b in
      (* seed the leader the way Parallel does, from the global index *)
      c.Cl.next_leader <- i mod c.Cl.s;
      ignore (Cl.submit c ~client_id:id pk))
    packets;
  Cl.merge_into ~dst:a b;
  Alcotest.(check int) "merged accepted" seq.Cl.accepted a.Cl.accepted;
  Alcotest.(check int) "merged batches" seq.Cl.batches a.Cl.batches;
  Alcotest.(check int) "merged processed_in_batch" seq.Cl.processed_in_batch
    a.Cl.processed_in_batch;
  Alcotest.(check int) "merged next_leader" seq.Cl.next_leader a.Cl.next_leader;
  Array.iteri
    (fun i row ->
      Alcotest.(check (array int))
        (Printf.sprintf "merged link bytes from server %d" i)
        seq.Cl.links.(i) row)
    a.Cl.links;
  let total = afe.A.decode ~n:a.Cl.accepted (Cl.publish a) in
  let expected = List.fold_left ( + ) 0 (List.init 10 (fun i -> i mod 16)) in
  Alcotest.(check string) "merged aggregate" (string_of_int expected)
    (B.to_string total)

(* ----------------------- streaming epochs ---------------------------- *)

let epoch_packets afe master n =
  Array.init n (fun i ->
      let enc = afe.A.encode ~rng (i mod 16) in
      ( i,
        Client.submit ~rng ~mode:(Client.Robust_snip afe.A.circuit)
          ~num_servers:3 ~client_id:i ~master enc ))

let test_epoch_rotation_flat_memory () =
  (* with epoch_size set, per-submission state (replay nonces + verdicts)
     is bounded by 2 * s * epoch_size no matter how long the stream runs
     — two generations, since a closed epoch lingers one more epoch as
     replay grace — while accumulators and counters keep the history *)
  let afe = Sum.sum ~bits:4 in
  let master = Rng.bytes rng 32 in
  let cluster =
    Cl.create ~epoch_size:4 ~rng ~mode:Cl.Robust_snip ~circuit:afe.A.circuit
      ~trunc_len:afe.A.trunc_len ~num_servers:3 ~master ()
  in
  let bound = 2 * 3 * 4 in
  Array.iter
    (fun (id, pk) ->
      Alcotest.(check bool) (Printf.sprintf "accepted %d" id) true
        (Cl.submit cluster ~client_id:id pk);
      Alcotest.(check bool)
        (Printf.sprintf "resident bounded after %d" id)
        true
        (Cl.resident_entries cluster <= bound))
    (epoch_packets afe master 12);
  Alcotest.(check int) "three epochs closed" 3 cluster.Cl.epoch;
  (* at the boundary only the grace generation remains: the epoch that
     just closed (4 submissions x 3 servers), not the one before it *)
  Alcotest.(check int) "only the grace generation at boundary" 12
    (Cl.resident_entries cluster);
  Alcotest.(check int) "accepted survives rotation" 12 cluster.Cl.accepted;
  let total = afe.A.decode ~n:cluster.Cl.accepted (Cl.publish cluster) in
  let expected = List.fold_left ( + ) 0 (List.init 12 (fun i -> i mod 16)) in
  Alcotest.(check string) "aggregate survives rotation"
    (string_of_int expected) (B.to_string total)

let test_epoch_replay_scope () =
  (* replay protection outlives the epoch that saw the nonce by exactly
     one generation: a duplicate inside the epoch is dropped, a replay
     across ONE rotation is still dropped (the grace generation — this
     is what makes a retry that straddles a rotation safe to dedup), and
     only after crossing TWO rotations is the packet re-admitted *)
  let afe = Sum.sum ~bits:4 in
  let master = Rng.bytes rng 32 in
  let cluster =
    Cl.create ~rng ~mode:Cl.Robust_snip ~circuit:afe.A.circuit
      ~trunc_len:afe.A.trunc_len ~num_servers:3 ~master ()
  in
  let enc = afe.A.encode ~rng 5 in
  let pk =
    Client.submit ~rng ~mode:(Client.Robust_snip afe.A.circuit) ~num_servers:3
      ~client_id:1 ~master enc
  in
  Alcotest.(check bool) "first accepted" true (Cl.submit cluster ~client_id:1 pk);
  Alcotest.(check bool) "replay dropped" false
    (Cl.submit cluster ~client_id:1 pk);
  Alcotest.(check bool) "nonces resident" true
    (Cl.resident_entries cluster > 0);
  Cl.rotate_epoch cluster;
  Alcotest.(check bool) "grace generation retained" true
    (Cl.resident_entries cluster > 0);
  Alcotest.(check int) "epoch advanced" 1 cluster.Cl.epoch;
  Alcotest.(check bool) "replay across one rotation still dropped" false
    (Cl.submit cluster ~client_id:1 pk);
  Cl.rotate_epoch cluster;
  Alcotest.(check int) "tables dropped after two rotations" 0
    (Cl.resident_entries cluster);
  Alcotest.(check bool) "re-admitted after two rotations" true
    (Cl.submit cluster ~client_id:1 pk);
  Alcotest.(check int) "both contributions kept" 2 cluster.Cl.accepted

let test_merge_epoch_counters () =
  (* replica merge must land on the same epoch counters as a sequential
     run over the union, clearing tables when the merge crosses an epoch
     boundary — the same total-derivation rule as batch rotation *)
  let afe = Sum.sum ~bits:4 in
  let master = Rng.bytes rng 32 in
  let mk () =
    Cl.create ~batch_size:3 ~epoch_size:3 ~rng:(Rng.split rng)
      ~mode:Cl.Robust_snip ~circuit:afe.A.circuit ~trunc_len:afe.A.trunc_len
      ~num_servers:3 ~master ()
  in
  let packets = epoch_packets afe master 10 in
  let seq = mk () in
  Array.iter (fun (id, pk) -> ignore (Cl.submit seq ~client_id:id pk)) packets;
  Alcotest.(check int) "sequential epochs" 3 seq.Cl.epoch;
  Alcotest.(check int) "sequential carry" 1 seq.Cl.submissions_in_epoch;
  let a = mk () and b = mk () in
  Array.iteri
    (fun i (id, pk) ->
      let c = if i < 4 then a else b in
      c.Cl.next_leader <- i mod c.Cl.s;
      ignore (Cl.submit c ~client_id:id pk))
    packets;
  Cl.merge_into ~dst:a b;
  Alcotest.(check int) "merged epoch" seq.Cl.epoch a.Cl.epoch;
  Alcotest.(check int) "merged submissions_in_epoch"
    seq.Cl.submissions_in_epoch a.Cl.submissions_in_epoch;
  (* the merge crossed a boundary (a held epoch 1, merged is 3): replica
     tables from closed epochs must be gone *)
  Alcotest.(check int) "tables cleared on crossing" 0
    (Cl.resident_entries a);
  Array.iter
    (fun srv ->
      Alcotest.(check int) "server epoch synced" seq.Cl.epoch
        srv.Cl.Server.epoch)
    a.Cl.servers;
  let total = afe.A.decode ~n:a.Cl.accepted (Cl.publish a) in
  let expected = List.fold_left ( + ) 0 (List.init 10 (fun i -> i mod 16)) in
  Alcotest.(check string) "merged aggregate" (string_of_int expected)
    (B.to_string total)

let test_epoch_age_rotation () =
  (* with epoch_max_age_s set on an injectable clock, a slow trickle of
     submissions cannot keep replay state resident forever: once the
     fake clock passes the age, the next submission closes the epoch *)
  let afe = Sum.sum ~bits:4 in
  let master = Rng.bytes rng 32 in
  let clock = Prio_obs.Clock.manual () in
  let cluster =
    Cl.create ~epoch_max_age_s:10. ~clock ~rng ~mode:Cl.Robust_snip
      ~circuit:afe.A.circuit ~trunc_len:afe.A.trunc_len ~num_servers:3
      ~master ()
  in
  let packets = epoch_packets afe master 4 in
  let submit i =
    let id, pk = packets.(i) in
    Alcotest.(check bool) (Printf.sprintf "accepted %d" id) true
      (Cl.submit cluster ~client_id:id pk)
  in
  submit 0;
  Prio_obs.Clock.advance clock 5.;
  submit 1;
  (* age not reached: both submissions' state still resident *)
  Alcotest.(check int) "no rotation before age" 0 cluster.Cl.epoch;
  Alcotest.(check bool) "state resident" true
    (Cl.resident_entries cluster > 0);
  Prio_obs.Clock.advance clock 6.;
  (* 11 s elapsed > 10 s: the next submission triggers rotation *)
  submit 2;
  Alcotest.(check int) "age rotation fired" 1 cluster.Cl.epoch;
  (* the triggering submission is counted in the closed epoch and its
     replay state drops with it *)
  Alcotest.(check int) "counter reset" 0 cluster.Cl.submissions_in_epoch;
  (* the closed epoch's 3 nonces x 3 servers linger one generation *)
  Alcotest.(check int) "grace generation at age rotation" 9
    (Cl.resident_entries cluster);
  Prio_obs.Clock.advance clock 4.;
  submit 3;
  (* only 4 s into the new epoch: no rotation *)
  Alcotest.(check int) "timer reset by rotation" 1 cluster.Cl.epoch;
  Alcotest.(check int) "accepted survives age rotation" 4 cluster.Cl.accepted;
  let total = afe.A.decode ~n:cluster.Cl.accepted (Cl.publish cluster) in
  let expected = 0 + 1 + 2 + 3 in
  Alcotest.(check string) "aggregate survives age rotation"
    (string_of_int expected) (B.to_string total)

(* --------------------------- NIZK pipeline --------------------------- *)

let test_nizk_pipeline () =
  let module NP = Prio_proto.Pipeline.Nizk_pipeline in
  let bits = Array.init 8 (fun _ -> Rng.int_below rng 2) in
  let sub = NP.client ~rng ~bits ~s:3 in
  Alcotest.(check bool) "honest verifies" true (NP.server_process ~s:3 sub);
  (* shares reconstruct the bits *)
  Array.iteri
    (fun j bit ->
      let total = ref B.zero in
      for i = 0 to 2 do
        total := B.erem (B.add !total sub.NP.x_shares.(i).(j)) Prio_nizk.Group.q
      done;
      Alcotest.(check bool) "share sum = bit" true (B.equal !total (B.of_int bit)))
    bits;
  (* tampering with a share breaks consistency *)
  sub.NP.x_shares.(0).(0) <- B.succ sub.NP.x_shares.(0).(0);
  Alcotest.(check bool) "inconsistent share detected" false
    (NP.server_process ~s:3 sub);
  Alcotest.(check bool) "per-server bytes grow with l" true
    (NP.per_server_bytes ~l:1024 > 100 * NP.per_server_bytes ~l:4)

let () =
  Alcotest.run "proto"
    [
      ( "wire",
        [
          Alcotest.test_case "vectors" `Quick test_wire_vector;
          Alcotest.test_case "payloads" `Quick test_wire_payload;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "aggregates in all modes" `Quick test_cluster_modes_aggregate;
          Alcotest.test_case "rejects cheaters" `Quick test_cluster_rejects_cheater;
          Alcotest.test_case "replay and forgery" `Quick test_cluster_replay_and_forgery;
          Alcotest.test_case "byte accounting shapes" `Quick test_byte_accounting_shapes;
          Alcotest.test_case "no-privacy single server" `Quick test_no_privacy_single_server;
          Alcotest.test_case "pipeline helpers" `Quick test_pipeline_helpers;
          Alcotest.test_case "upload compression" `Quick test_upload_compression;
          Alcotest.test_case "batch rotation (App. I)" `Quick test_batch_rotation;
          Alcotest.test_case "wire fuzzing" `Quick test_wire_fuzz;
          Alcotest.test_case "swapped packets" `Quick test_swapped_packets_rejected;
          Alcotest.test_case "epoch rotation keeps memory flat" `Quick
            test_epoch_rotation_flat_memory;
          Alcotest.test_case "replay scope is the epoch" `Quick
            test_epoch_replay_scope;
          Alcotest.test_case "age trigger rotates on a fake clock" `Quick
            test_epoch_age_rotation;
        ] );
      ( "differential privacy",
        [
          Alcotest.test_case "noise moments" `Slow test_dp_moments;
          Alcotest.test_case "noised publish" `Quick test_dp_publish;
        ] );
      ( "registry",
        [
          Alcotest.test_case "gated publication" `Quick test_registry_gating;
          Alcotest.test_case "rejections" `Quick test_registry_rejects;
        ] );
      ( "threshold (App. B)",
        [ Alcotest.test_case "k-of-s aggregation" `Quick test_threshold_aggregation ] );
      ( "compressed (App. G)",
        [
          Alcotest.test_case "dpf histogram" `Quick test_compressed_histogram;
          Alcotest.test_case "bandwidth" `Quick test_compressed_bandwidth;
        ] );
      ( "multicore",
        [
          Alcotest.test_case "parallel = serial" `Quick
            test_parallel_matches_serial;
          Alcotest.test_case "merge carries rotation state" `Quick
            test_merge_rotation;
          Alcotest.test_case "merge carries epoch counters" `Quick
            test_merge_epoch_counters;
        ] );
      ("nizk pipeline", [ Alcotest.test_case "end to end" `Quick test_nizk_pipeline ]);
    ]

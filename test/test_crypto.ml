(* Tests for the crypto substrate: RFC/FIPS test vectors plus behavioural
   checks for the RNG and the authenticated box. *)

module Chacha20 = Prio_crypto.Chacha20
module Sha256 = Prio_crypto.Sha256
module Hmac = Prio_crypto.Hmac
module Rng = Prio_crypto.Rng
module Authbox = Prio_crypto.Authbox

let bytes_of_hex s =
  let n = String.length s / 2 in
  Bytes.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let hex = Sha256.hex

(* ------------------------------ ChaCha20 --------------------------- *)

(* RFC 8439 §2.3.2: key = 00..1f, nonce = 000000090000004a00000000,
   counter = 1. *)
let test_chacha_block () =
  let key = bytes_of_hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = bytes_of_hex "000000090000004a00000000" in
  let block = Chacha20.block ~key ~counter:1 ~nonce in
  Alcotest.(check string) "keystream block"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (hex block)

(* RFC 8439 §2.4.2: plaintext "Ladies and Gentlemen..." *)
let test_chacha_encrypt () =
  let key = bytes_of_hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = bytes_of_hex "000000000000004a00000000" in
  let plaintext =
    Bytes.of_string
      "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."
  in
  let ct = Chacha20.encrypt ~key ~counter:1 ~nonce plaintext in
  Alcotest.(check string) "ciphertext"
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a35be6b40b8eedf2785e42874d"
    (hex ct);
  Alcotest.(check string) "decrypt = encrypt" (Bytes.to_string plaintext)
    (Bytes.to_string (Chacha20.encrypt ~key ~counter:1 ~nonce ct))

let test_chacha_args () =
  Alcotest.check_raises "bad key" (Invalid_argument "Chacha20.block: key must be 32 bytes")
    (fun () -> ignore (Chacha20.block ~key:(Bytes.create 16) ~counter:0 ~nonce:(Bytes.create 12)));
  Alcotest.check_raises "bad nonce" (Invalid_argument "Chacha20.block: nonce must be 12 bytes")
    (fun () -> ignore (Chacha20.block ~key:(Bytes.create 32) ~counter:0 ~nonce:(Bytes.create 8)))

(* ------------------------------ SHA-256 ---------------------------- *)

let test_sha256_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( String.make 1000000 'a',
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
    ]
  in
  List.iter
    (fun (msg, want) ->
      Alcotest.(check string)
        (Printf.sprintf "sha256 of %d bytes" (String.length msg))
        want
        (hex (Sha256.digest_string msg)))
    cases

let test_sha256_incremental () =
  (* feeding in odd-sized chunks must equal one-shot *)
  let data = String.init 1237 (fun i -> Char.chr (i land 0xff)) in
  let ctx = Sha256.init () in
  let pos = ref 0 in
  let sizes = [ 1; 3; 64; 65; 129; 500; 475 ] in
  List.iter
    (fun sz ->
      Sha256.update ctx (Bytes.of_string (String.sub data !pos sz));
      pos := !pos + sz)
    sizes;
  Alcotest.(check string) "incremental = one-shot"
    (hex (Sha256.digest_string data))
    (hex (Sha256.finalize ctx))

(* ------------------------------ HMAC ------------------------------- *)

(* RFC 4231 test cases 1 and 2. *)
let test_hmac_vectors () =
  let tag1 =
    Hmac.sha256 ~key:(Bytes.make 20 '\x0b') (Bytes.of_string "Hi There")
  in
  Alcotest.(check string) "rfc4231 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" (hex tag1);
  let tag2 =
    Hmac.sha256 ~key:(Bytes.of_string "Jefe")
      (Bytes.of_string "what do ya want for nothing?")
  in
  Alcotest.(check string) "rfc4231 case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" (hex tag2)

let test_hmac_verify () =
  let key = Bytes.of_string "secret" in
  let msg = Bytes.of_string "the message" in
  let tag = Hmac.sha256_trunc ~key 16 msg in
  Alcotest.(check bool) "accepts" true (Hmac.verify ~key ~tag msg);
  let bad = Bytes.copy tag in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
  Alcotest.(check bool) "rejects flipped tag" false (Hmac.verify ~key ~tag:bad msg);
  Alcotest.(check bool) "rejects wrong msg" false
    (Hmac.verify ~key ~tag (Bytes.of_string "other message"))

(* Pin the verification contract the ct-compare lint rule exists to
   protect: degenerate tag lengths are rejected (not raised on), every
   truncation length round-trips, and a flip of any single bit anywhere
   in the tag fails verification. *)
let test_hmac_verify_contract () =
  let key = Bytes.of_string "contract key" in
  let msg = Bytes.of_string "the message under test" in
  Alcotest.(check bool) "empty tag rejected" false
    (Hmac.verify ~key ~tag:Bytes.empty msg);
  Alcotest.(check bool) "oversize tag rejected" false
    (Hmac.verify ~key ~tag:(Bytes.make 33 '\x00') msg);
  for len = 1 to 32 do
    let tag = Hmac.sha256_trunc ~key len msg in
    Alcotest.(check bool)
      (Printf.sprintf "trunc %d accepts" len)
      true
      (Hmac.verify ~key ~tag msg);
    (* the final byte of a truncated tag must actually be checked *)
    let bad = Bytes.copy tag in
    Bytes.set bad (len - 1)
      (Char.chr (Char.code (Bytes.get bad (len - 1)) lxor 1));
    Alcotest.(check bool)
      (Printf.sprintf "trunc %d corrupted tail rejected" len)
      false
      (Hmac.verify ~key ~tag:bad msg)
  done;
  let tag = Hmac.sha256 ~key msg in
  for byte = 0 to 31 do
    for bit = 0 to 7 do
      let bad = Bytes.copy tag in
      Bytes.set bad byte
        (Char.chr (Char.code (Bytes.get bad byte) lxor (1 lsl bit)));
      Alcotest.(check bool)
        (Printf.sprintf "bit flip %d/%d rejected" byte bit)
        false
        (Hmac.verify ~key ~tag:bad msg)
    done
  done

(* ------------------------------ Rng -------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.of_string_seed "seed" and b = Rng.of_string_seed "seed" in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.byte a) (Rng.byte b)
  done;
  let c = Rng.of_string_seed "other" in
  let same = ref true in
  for _ = 1 to 16 do
    if Rng.byte a <> Rng.byte c then same := false
  done;
  Alcotest.(check bool) "different seed differs" false !same

let test_rng_ranges () =
  let rng = Rng.of_string_seed "ranges" in
  for _ = 1 to 500 do
    let v = Rng.int_below rng 7 in
    Alcotest.(check bool) "int_below" true (v >= 0 && v < 7);
    let v = Rng.int_range rng (-3) 4 in
    Alcotest.(check bool) "int_range" true (v >= -3 && v <= 4);
    let f = Rng.float01 rng in
    Alcotest.(check bool) "float01" true (f >= 0. && f < 1.);
    let l = Rng.limb31 rng in
    Alcotest.(check bool) "limb31" true (l >= 0 && l < 1 lsl 31)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int_below: n <= 0")
    (fun () -> ignore (Rng.int_below rng 0))

let test_rng_uniformity () =
  (* crude frequency check: 6000 draws over 6 buckets, each within ~3 sigma *)
  let rng = Rng.of_string_seed "uniform" in
  let counts = Array.make 6 0 in
  for _ = 1 to 6000 do
    let v = Rng.int_below rng 6 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "within 3 sigma of 1000" true (abs (c - 1000) < 100))
    counts

let test_rng_split () =
  let rng = Rng.of_string_seed "split" in
  let a = Rng.split rng in
  let b = Rng.split rng in
  let same = ref true in
  for _ = 1 to 16 do
    if Rng.byte a <> Rng.byte b then same := false
  done;
  Alcotest.(check bool) "split streams differ" false !same

let test_rng_seed_normalization () =
  (* a non-32-byte seed is hashed; equal seeds agree regardless of length *)
  let a = Rng.of_seed (Bytes.of_string "short") in
  let b = Rng.of_seed (Bytes.of_string "short") in
  Alcotest.(check bytes) "hashed seeds agree" (Rng.bytes a 8) (Rng.bytes b 8)

(* ------------------------------ Authbox ---------------------------- *)

let test_authbox_roundtrip () =
  let rng = Rng.of_string_seed "box" in
  let key = Authbox.derive_key ~client_id:7 ~server_id:2 ~master:(Bytes.of_string "master") in
  List.iter
    (fun len ->
      let msg = Rng.bytes rng len in
      let packet = Authbox.seal ~key ~rng msg in
      Alcotest.(check int) "overhead" (len + Authbox.overhead) (Bytes.length packet);
      match Authbox.open_ ~key packet with
      | Some got -> Alcotest.(check bytes) "roundtrip" msg got
      | None -> Alcotest.fail "failed to open own box")
    [ 0; 1; 63; 64; 65; 1000 ]

let test_authbox_forgery () =
  let rng = Rng.of_string_seed "forgery" in
  let key = Authbox.derive_key ~client_id:1 ~server_id:1 ~master:(Bytes.of_string "m") in
  let packet = Authbox.seal ~key ~rng (Bytes.of_string "hello") in
  (* flip each byte in turn: every modified packet must be rejected *)
  for i = 0 to Bytes.length packet - 1 do
    let bad = Bytes.copy packet in
    Bytes.set bad i (Char.chr (Char.code (Bytes.get bad i) lxor 0x80));
    Alcotest.(check bool) (Printf.sprintf "tamper byte %d" i) true
      (Authbox.open_ ~key bad = None)
  done;
  (* wrong key *)
  let key2 = Authbox.derive_key ~client_id:1 ~server_id:2 ~master:(Bytes.of_string "m") in
  Alcotest.(check bool) "wrong key" true (Authbox.open_ ~key:key2 packet = None);
  (* truncated *)
  Alcotest.(check bool) "truncated" true
    (Authbox.open_ ~key (Bytes.sub packet 0 10) = None)

let () =
  Alcotest.run "crypto"
    [
      ( "chacha20",
        [
          Alcotest.test_case "rfc8439 block" `Quick test_chacha_block;
          Alcotest.test_case "rfc8439 encrypt" `Quick test_chacha_encrypt;
          Alcotest.test_case "argument checks" `Quick test_chacha_args;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "fips vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 vectors" `Quick test_hmac_vectors;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
          Alcotest.test_case "verify contract" `Quick
            test_hmac_verify_contract;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "seed normalization" `Quick test_rng_seed_normalization;
        ] );
      ( "authbox",
        [
          Alcotest.test_case "roundtrip" `Quick test_authbox_roundtrip;
          Alcotest.test_case "forgery" `Quick test_authbox_forgery;
        ] );
    ]

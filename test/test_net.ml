(* Integration tests for the TCP deployment: one OS process per server on
   loopback sockets, clients uploading sealed packets over real
   connections, the leader driving SNIP verification over persistent
   server-to-server links.

   Beyond the happy path, this suite is a chaos harness: seeded fault
   injection (drop / corrupt / truncate / slow / crash-server policies)
   on the frame path, a hand-driven leader-degradation scenario (follower
   SIGKILLed mid-verification), malformed-frame fuzzing, and idempotency
   checks for retried submissions. Every fault sequence is a pure
   function of its seed, so a failing run replays exactly. *)

module F = Prio_field.F87
module Net = Prio_proto.Net.Make (F)
module NetT = Prio_proto.Net (* transport-level helpers, shared by all fields *)
module Retry = Prio_proto.Retry
module Faults = Prio_proto.Faults
module Cl = Prio_proto.Client.Make (F)
module Sum = Prio_afe.Sum.Make (F)
module Hist = Prio_afe.Histogram.Make (F)
module A = Prio_afe.Afe.Make (F)
module Rng = Prio_crypto.Rng

let rng = Rng.of_string_seed "net-tests"

(* Unwrap [collect_aggregate] for tests that expect every server alive. *)
let collect_exn d =
  match Net.collect_aggregate d with
  | Ok v -> v
  | Error (i, e) ->
    Alcotest.failf "collect_aggregate: server %d: %s" i
      (NetT.string_of_protocol_error e)

(* Short deadlines and an aggressive retry schedule: a dropped frame
   costs [io_timeout] of real waiting, so chaos runs stay fast. *)
let fast_tuning =
  NetT.
    {
      default_tuning with
      io_timeout = 0.4;
      dial_timeout = 0.5;
      select_tick = 0.02;
      backoff =
        Retry.
          {
            default_backoff with
            max_attempts = 8;
            base_delay = 0.005;
            max_delay = 0.04;
          };
    }

let with_deployment ?(num_servers = 3) ?(tuning = fast_tuning) ?faults_for afe
    f =
  let cfg =
    Net.
      {
        circuit = afe.A.circuit;
        trunc_len = afe.A.trunc_len;
        num_servers;
        master = Rng.bytes rng 32;
        batch_seed = Rng.bytes rng 32;
      }
  in
  let d = Net.launch ~tuning ?faults_for cfg in
  Fun.protect ~finally:(fun () -> Net.shutdown d) (fun () -> f d)

let with_temp_dir name f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prio-net-%s-%d" name (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "io error: %s" (NetT.string_of_protocol_error e)

(* ------------------------- happy-path tests -------------------------- *)

let test_sum_end_to_end () =
  let afe = Sum.sum ~bits:4 in
  with_deployment afe (fun d ->
      List.iteri
        (fun i x ->
          Alcotest.(check bool) "accepted over TCP" true
            (Net.submit d ~rng ~client_id:i (afe.A.encode ~rng x)))
        [ 3; 7; 15; 0; 9 ];
      let total = afe.A.decode ~n:5 (collect_exn d) in
      Alcotest.(check string) "aggregate" "34" (Prio_bigint.Bigint.to_string total))

let test_rejects_cheater () =
  let afe = Sum.sum ~bits:4 in
  with_deployment afe (fun d ->
      Alcotest.(check bool) "honest ok" true
        (Net.submit d ~rng ~client_id:0 (afe.A.encode ~rng 5));
      let bad = afe.A.encode ~rng 3 in
      bad.(0) <- F.of_int 999;
      Alcotest.(check bool) "cheater rejected over TCP" false
        (Net.submit d ~rng ~client_id:1 bad);
      let total = afe.A.decode ~n:1 (collect_exn d) in
      Alcotest.(check string) "aggregate unpolluted" "5"
        (Prio_bigint.Bigint.to_string total))

let test_five_servers_histogram () =
  let afe = Hist.histogram ~buckets:4 in
  with_deployment ~num_servers:5 afe (fun d ->
      List.iteri
        (fun i x ->
          Alcotest.(check bool) "accepted" true
            (Net.submit d ~rng ~client_id:i (afe.A.encode ~rng x)))
        [ 0; 1; 1; 3; 3; 3 ];
      let counts = afe.A.decode ~n:6 (collect_exn d) in
      Alcotest.(check (array int)) "histogram over TCP" [| 1; 2; 0; 3 |] counts)

(* --------------------------- chaos harness --------------------------- *)

(* Run a batch of honest submissions with client-side fault injection.
   Liveness: every submission must come back with a definite outcome (no
   hangs — the alias-level wall clock enforces this too, but Unreachable
   here means retries exhausted against a live cluster, which the drop /
   corrupt / truncate / slow policies below are tuned not to do).
   Consistency: the aggregate must equal the sum of exactly the accepted
   values — faulted submissions are rejected, never half-applied. *)
let run_chaos ~seed policy values =
  let afe = Sum.sum ~bits:4 in
  with_deployment afe (fun d ->
      let faults = Faults.create ~seed policy in
      let outcomes =
        List.mapi
          (fun i x ->
            (x, Net.submit_outcome ~faults d ~rng ~client_id:i (afe.A.encode ~rng x)))
          values
      in
      List.iter
        (function
          | _, Net.Unreachable e ->
            Alcotest.failf "submission unreachable under chaos: %s"
              (NetT.string_of_protocol_error e)
          | _ -> ())
        outcomes;
      Alcotest.(check bool) "chaos actually injected faults" true
        (Faults.injected faults > 0);
      let accepted =
        List.filter_map
          (function x, Net.Accepted -> Some x | _ -> None)
          outcomes
      in
      Alcotest.(check bool) "cluster still accepts honest traffic" true
        (accepted <> []);
      let total =
        afe.A.decode ~n:(List.length accepted) (collect_exn d)
      in
      Alcotest.(check string) "aggregate = accepted-only sum"
        (string_of_int (List.fold_left ( + ) 0 accepted))
        (Prio_bigint.Bigint.to_string total);
      outcomes)

let values = [ 3; 7; 15; 0; 9; 4; 12; 1 ]

let test_chaos_drop () =
  (* pure loss: with idempotent resubmission every honest client must
     eventually get through, and nothing is double-counted *)
  let outcomes = run_chaos ~seed:"chaos-drop" (Faults.drop 0.25) values in
  List.iter
    (fun (x, o) ->
      if o <> Net.Accepted then
        Alcotest.failf "submission of %d not accepted despite retries" x)
    outcomes

let test_chaos_corrupt () =
  (* bit flips: damaged packets fail authentication and are cleanly
     rejected; damaged frames are retried (idempotently) *)
  ignore (run_chaos ~seed:"chaos-corrupt" (Faults.corrupt 0.3) values)

let test_chaos_truncate () =
  (* short frames: anything from a clipped seal (auth failure → reject)
     to an empty frame (protocol error → retry) *)
  ignore (run_chaos ~seed:"chaos-truncate" (Faults.truncate 0.3) values)

let test_chaos_slow () =
  (* delays below the io deadline: everything still lands *)
  let outcomes =
    run_chaos ~seed:"chaos-slow" (Faults.slow ~p:0.5 ~delay:0.05) values
  in
  List.iter
    (fun (x, o) ->
      if o <> Net.Accepted then
        Alcotest.failf "submission of %d lost to a slow (not dead) wire" x)
    outcomes

let test_chaos_follower_crash () =
  (* a follower with a seeded crash policy dies mid-batch: submissions
     before the crash land, later ones fail fast and cleanly (no hangs),
     the supervisor reports the corpse, and the leader stays up *)
  let afe = Sum.sum ~bits:4 in
  let faults_for id =
    if id = 2 then Some (Faults.create ~seed:"crash-a" (Faults.crash 0.05))
    else None
  in
  with_deployment ~faults_for afe (fun d ->
      let outcomes =
        List.init 10 (fun i ->
            Net.submit_outcome d ~rng ~client_id:i
              (afe.A.encode ~rng ((i * 3) mod 16)))
      in
      let accepted =
        List.length (List.filter (fun o -> o = Net.Accepted) outcomes)
      in
      Alcotest.(check bool) "some submissions landed before the crash" true
        (accepted >= 1);
      Alcotest.(check bool) "the crash cost some submissions" true
        (accepted < 10);
      (match (Net.poll_servers d).(2) with
      | Net.Exited _ -> ()
      | Net.Running -> Alcotest.fail "supervisor should report follower 2 dead");
      (match (Net.poll_servers d).(0) with
      | Net.Running -> ()
      | Net.Exited _ -> Alcotest.fail "leader must survive a follower crash");
      (* leader still answers queries *)
      let fd = ok_exn (NetT.dial d.Net.addrs.(0)) in
      ignore (NetT.write_frame fd (NetT.tagged 'Q' Bytes.empty));
      let reply = ok_exn (NetT.read_frame ~deadline:(Retry.after 2.0) fd) in
      Unix.close fd;
      Alcotest.(check char) "leader still serving Q" 'A' (Bytes.get reply 0))

(* --------------------- degradation & supervision --------------------- *)

let test_leader_degrades_and_restarts () =
  let afe = Sum.sum ~bits:4 in
  with_deployment afe (fun d ->
      Alcotest.(check bool) "healthy accept" true
        (Net.submit d ~rng ~client_id:0 (afe.A.encode ~rng 5));
      (* hand-deliver client 1's packets so every server holds its share
         *before* the follower dies (a normal client would fail at dial) *)
      let enc = afe.A.encode ~rng 7 in
      let pk =
        Cl.submit ~rng
          ~mode:(Cl.Robust_snip afe.A.circuit)
          ~num_servers:3 ~client_id:1 ~master:d.Net.cfg.Net.master enc
      in
      let exchange addr frame =
        let fd = ok_exn (NetT.dial addr) in
        ignore (NetT.write_frame fd frame);
        let r = ok_exn (NetT.read_frame ~deadline:(Retry.after 5.0) fd) in
        Unix.close fd;
        r
      in
      List.iter
        (fun i ->
          let p =
            NetT.tagged 'P'
              (Bytes.cat (NetT.put_u32 1)
                 (Bytes.cat (NetT.ctx_bytes ()) pk.Cl.sealed.(i)))
          in
          Alcotest.(check char) "P acked" 'K'
            (Bytes.get (exchange d.Net.addrs.(i) p) 0))
        [ 1; 2; 0 ];
      (* kill follower 2 between upload and verification *)
      Unix.kill d.Net.pids.(2) Sys.sigkill;
      Unix.sleepf 0.05;
      (* the leader must answer the verify promptly with a clean refusal
         instead of hanging on the dead gossip link *)
      let reply = exchange d.Net.addrs.(0) (NetT.tagged 'V' (NetT.put_u32 1)) in
      (match Bytes.get reply 0 with
      | 'E' -> (
        match NetT.parse_error_frame reply with
        | Some (NetT.Unavailable, _) -> ()
        | other ->
          Alcotest.failf "expected E/unavailable, got %s"
            (match other with
            | Some (c, _) -> NetT.string_of_error_code c
            | None -> "garbled E frame"))
      | 'R' -> () (* also a clean refusal *)
      | c -> Alcotest.failf "expected clean refusal, got tag %C" c);
      (* ... and the refusal is sticky/idempotent *)
      Alcotest.(check char) "degraded verdict replayed" 'R'
        (Bytes.get (exchange d.Net.addrs.(0) (NetT.tagged 'V' (NetT.put_u32 1))) 0);
      (* supervisor sees the corpse; the leader is alive *)
      (match (Net.poll_servers d).(2) with
      | Net.Exited (Unix.WSIGNALED _) -> ()
      | Net.Exited _ -> ()
      | Net.Running -> Alcotest.fail "supervisor should report follower 2 dead");
      (match (Net.poll_servers d).(0) with
      | Net.Running -> ()
      | Net.Exited _ -> Alcotest.fail "leader must survive degradation");
      (* revive the follower on its original port; new traffic flows *)
      Net.restart_server d 2;
      (match (Net.poll_servers d).(2) with
      | Net.Running -> ()
      | Net.Exited _ -> Alcotest.fail "restarted follower should be running");
      Alcotest.(check bool) "accepts after restart" true
        (Net.submit d ~rng ~client_id:2 (afe.A.encode ~rng 3)))

(* ------------------------ malformed-frame fuzz ----------------------- *)

let test_fuzz_malformed_frames () =
  let afe = Sum.sum ~bits:4 in
  with_deployment afe (fun d ->
      let frng = Rng.of_string_seed "fuzz-frames" in
      (* random bytes at every tag position: the server may answer with
         an ack/error frame, close the connection, or stay silent for
         one-way tags — but must neither crash nor hang *)
      for _ = 1 to 25 do
        let tag = Char.chr (Rng.int_below frng 256) in
        if tag <> 'X' (* a real deployment authenticates shutdown *) then begin
          let body = Rng.bytes frng (Rng.int_below frng 48) in
          let fd = ok_exn (NetT.dial d.Net.addrs.(0)) in
          ignore (NetT.write_frame fd (NetT.tagged tag body));
          (match NetT.read_frame ~deadline:(Retry.after 0.3) fd with
          | Ok _ | Error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
      done;
      (* a tag-less (empty) frame is refused, not a [Bytes.get] crash *)
      let fd = ok_exn (NetT.dial d.Net.addrs.(0)) in
      ignore (NetT.write_frame fd Bytes.empty);
      let reply = ok_exn (NetT.read_frame ~deadline:(Retry.after 2.0) fd) in
      Unix.close fd;
      Alcotest.(check char) "empty frame → E" 'E' (Bytes.get reply 0);
      (* a header announcing a 64 MiB frame is refused before allocation *)
      let fd = ok_exn (NetT.dial d.Net.addrs.(0)) in
      let hdr = NetT.put_u32 (64 * 1024 * 1024) in
      let rec push off =
        if off < 4 then push (off + Unix.write fd hdr off (4 - off))
      in
      push 0;
      let reply = ok_exn (NetT.read_frame ~deadline:(Retry.after 2.0) fd) in
      Unix.close fd;
      (match NetT.parse_error_frame reply with
      | Some (NetT.Too_large, _) -> ()
      | _ -> Alcotest.fail "expected E/too-large for oversize header");
      (* the cluster survived all of it *)
      Alcotest.(check bool) "still serving" true
        (Net.submit d ~rng ~client_id:0 (afe.A.encode ~rng 9));
      let total = afe.A.decode ~n:1 (collect_exn d) in
      Alcotest.(check string) "aggregate intact" "9"
        (Prio_bigint.Bigint.to_string total))

(* ---------------------------- idempotency ---------------------------- *)

let test_idempotent_retries () =
  let afe = Sum.sum ~bits:4 in
  with_deployment afe (fun d ->
      let enc = afe.A.encode ~rng 11 in
      let pk =
        Cl.submit ~rng
          ~mode:(Cl.Robust_snip afe.A.circuit)
          ~num_servers:3 ~client_id:0 ~master:d.Net.cfg.Net.master enc
      in
      let exchange addr frame =
        let fd = ok_exn (NetT.dial addr) in
        ignore (NetT.write_frame fd frame);
        let r = ok_exn (NetT.read_frame ~deadline:(Retry.after 5.0) fd) in
        Unix.close fd;
        r
      in
      let p_frame i =
        NetT.tagged 'P'
          (Bytes.cat (NetT.put_u32 0)
             (Bytes.cat (NetT.ctx_bytes ()) pk.Cl.sealed.(i)))
      in
      (* upload twice to every server: a duplicate of an in-flight
         submission is re-acked, not replay-rejected *)
      List.iter
        (fun i ->
          Alcotest.(check char) "first P ack" 'K'
            (Bytes.get (exchange d.Net.addrs.(i) (p_frame i)) 0);
          Alcotest.(check char) "duplicate P re-ack" 'K'
            (Bytes.get (exchange d.Net.addrs.(i) (p_frame i)) 0))
        [ 1; 2; 0 ];
      (* verify twice: the second verdict replays from the decision cache *)
      let v = NetT.tagged 'V' (NetT.put_u32 0) in
      Alcotest.(check char) "V accepted" 'K' (Bytes.get (exchange d.Net.addrs.(0) v) 0);
      Alcotest.(check char) "duplicate V re-acked" 'K'
        (Bytes.get (exchange d.Net.addrs.(0) v) 0);
      (* a duplicate upload after the decision is also just re-acked *)
      Alcotest.(check char) "post-decision P re-ack" 'K'
        (Bytes.get (exchange d.Net.addrs.(1) (p_frame 1)) 0);
      (* and the value was counted exactly once *)
      let total = afe.A.decode ~n:1 (collect_exn d) in
      Alcotest.(check string) "counted once" "11"
        (Prio_bigint.Bigint.to_string total))

(* ------------------------- admission control ------------------------- *)

let test_admission_busy_shed () =
  let afe = Sum.sum ~bits:4 in
  let tuning = NetT.{ fast_tuning with max_pending = 2 } in
  with_deployment ~tuning afe (fun d ->
      let exchange addr frame =
        let fd = ok_exn (NetT.dial addr) in
        ignore (NetT.write_frame fd frame);
        let r = ok_exn (NetT.read_frame ~deadline:(Retry.after 5.0) fd) in
        Unix.close fd;
        r
      in
      (* fill every server's admission queue without triggering verify *)
      List.iter
        (fun cid ->
          let pk =
            Cl.submit ~rng
              ~mode:(Cl.Robust_snip afe.A.circuit)
              ~num_servers:3 ~client_id:cid ~master:d.Net.cfg.Net.master
              (afe.A.encode ~rng (cid + 1))
          in
          List.iter
            (fun srv ->
              let p =
                NetT.tagged 'P'
                  (Bytes.cat (NetT.put_u32 cid)
                     (Bytes.cat (NetT.ctx_bytes ()) pk.Cl.sealed.(srv)))
              in
              Alcotest.(check char) "queued" 'K'
                (Bytes.get (exchange d.Net.addrs.(srv) p) 0))
            [ 0; 1; 2 ])
        [ 0; 1 ];
      (* the queue is at max_pending: the next upload is shed with a
         retryable refusal, not silently dropped or fatally nacked *)
      let pk3 =
        Cl.submit ~rng
          ~mode:(Cl.Robust_snip afe.A.circuit)
          ~num_servers:3 ~client_id:7 ~master:d.Net.cfg.Net.master
          (afe.A.encode ~rng 5)
      in
      let reply =
        exchange d.Net.addrs.(1)
          (NetT.tagged 'P'
             (Bytes.cat (NetT.put_u32 7)
                (Bytes.cat (NetT.ctx_bytes ()) pk3.Cl.sealed.(1))))
      in
      (match NetT.parse_error_frame reply with
      | Some (NetT.Busy, _) -> ()
      | Some (c, _) ->
        Alcotest.failf "expected E/busy, got %s" (NetT.string_of_error_code c)
      | None ->
        Alcotest.failf "expected E/busy, got tag %C" (Bytes.get reply 0));
      (* the high-level client treats Busy as retryable: against a queue
         that never drains, it backs off and exhausts its schedule *)
      (match Net.submit_outcome d ~rng ~client_id:8 (afe.A.encode ~rng 2) with
      | Net.Unreachable (NetT.Peer_error (NetT.Busy, _)) -> ()
      | Net.Unreachable e ->
        Alcotest.failf "expected busy exhaustion, got %s"
          (NetT.string_of_protocol_error e)
      | Net.Accepted | Net.Rejected _ ->
        Alcotest.fail "submission must not land while the queue is full");
      (* a duplicate of an already-admitted upload is still re-acked even
         at capacity — dedup happens before the shed check *)
      Alcotest.(check char) "duplicate re-acked at capacity" 'K'
        (Bytes.get
           (exchange d.Net.addrs.(1)
              (NetT.tagged 'P'
                 (Bytes.cat (NetT.put_u32 0)
                    (Bytes.cat (NetT.ctx_bytes ())
                       (Cl.submit ~rng
                          ~mode:(Cl.Robust_snip afe.A.circuit)
                          ~num_servers:3 ~client_id:0
                          ~master:d.Net.cfg.Net.master (afe.A.encode ~rng 1))
                         .Cl
                         .sealed.(1)))))
           0)
      |> ignore;
      (* drain the queue by deciding both pending submissions *)
      List.iter
        (fun cid ->
          Alcotest.(check char) "drained" 'K'
            (Bytes.get
               (exchange d.Net.addrs.(0) (NetT.tagged 'V' (NetT.put_u32 cid)))
               0))
        [ 0; 1 ];
      (* with room again, the shed client's retry goes through *)
      Alcotest.(check bool) "recovers after shed" true
        (Net.submit d ~rng ~client_id:9 (afe.A.encode ~rng 6));
      let total = afe.A.decode ~n:3 (collect_exn d) in
      Alcotest.(check string) "aggregate counts admitted only" "9"
        (Prio_bigint.Bigint.to_string total))

(* ----------------------- checkpoint / restore ------------------------ *)

let restore_values = [ 3; 7; 15; 0; 9; 4; 12; 1 ]

(* One serial run over [restore_values]; with [crash_at = Some i] the
   follower is SIGKILLed and restored from its snapshot just before the
   i-th submission. Returns the decoded aggregate. *)
let run_with_restore ~crash_at dir =
  let afe = Sum.sum ~bits:4 in
  let tuning = NetT.{ fast_tuning with checkpoint_dir = Some dir } in
  with_deployment ~tuning afe (fun d ->
      List.iteri
        (fun i x ->
          if crash_at = Some i then begin
            Unix.kill d.Net.pids.(1) Sys.sigkill;
            let rec wait_dead n =
              match (Net.poll_servers d).(1) with
              | Net.Exited _ -> ()
              | Net.Running ->
                if n = 0 then Alcotest.fail "follower ignored SIGKILL";
                Unix.sleepf 0.01;
                wait_dead (n - 1)
            in
            wait_dead 200;
            Net.restart_server d 1
          end;
          Alcotest.(check bool)
            (Printf.sprintf "accepted %d" i)
            true
            (Net.submit d ~rng ~client_id:i (afe.A.encode ~rng x)))
        restore_values;
      afe.A.decode ~n:(List.length restore_values) (collect_exn d))

let test_restore_equals_uninterrupted () =
  let expected = string_of_int (List.fold_left ( + ) 0 restore_values) in
  with_temp_dir "baseline" @@ fun dir_a ->
  with_temp_dir "crashed" @@ fun dir_b ->
  let a = run_with_restore ~crash_at:None dir_a in
  Alcotest.(check string) "uninterrupted total" expected
    (Prio_bigint.Bigint.to_string a);
  (* same submissions, but the follower dies after 4 decisions and
     resumes from its snapshot: nothing accepted before the crash may be
     lost, nothing may be double-counted *)
  let b = run_with_restore ~crash_at:(Some 4) dir_b in
  Alcotest.(check string) "crash+restore equals uninterrupted" expected
    (Prio_bigint.Bigint.to_string b)

let test_restore_chaos_drill () =
  (* seeded crash policy on a follower with checkpointing on: every time
     the follower dies mid-stream the supervisor restores it from its
     latest snapshot and the failed value is resubmitted under a fresh
     client id. Consistency: the final aggregate must equal the sum of
     exactly the accepted values — snapshots may lag (torn writes are
     prevented by temp+rename), but nothing decided-and-checkpointed is
     lost and nothing is double-counted. *)
  let afe = Sum.sum ~bits:4 in
  with_temp_dir "chaos" @@ fun dir ->
  let tuning = NetT.{ fast_tuning with checkpoint_dir = Some dir } in
  let faults_for id =
    if id = 2 then
      Some (Faults.create ~seed:"restore-drill" (Faults.crash 0.03))
    else None
  in
  with_deployment ~tuning ~faults_for afe (fun d ->
      let restarts = ref 0 in
      let revive () =
        Array.iteri
          (fun i st ->
            match st with
            | Net.Exited _ ->
              incr restarts;
              Net.restart_server d i
            | Net.Running -> ())
          (Net.poll_servers d)
      in
      let landed = ref 0 and total = ref 0 in
      List.iteri
        (fun i x ->
          let rec attempt tries cid =
            match Net.submit_outcome d ~rng ~client_id:cid (afe.A.encode ~rng x) with
            | Net.Accepted ->
              incr landed;
              total := !total + x
            | (Net.Rejected _ | Net.Unreachable _) when tries < 5 ->
              (* a crashed follower shows up as a degraded rejection or
                 exhausted retries; restore it and resubmit fresh *)
              revive ();
              attempt (tries + 1) (cid + 1000)
            | Net.Rejected why ->
              Alcotest.failf "value %d never landed: rejected: %s" x why
            | Net.Unreachable e ->
              Alcotest.failf "value %d never landed: %s" x
                (NetT.string_of_protocol_error e)
          in
          attempt 0 i)
        (List.init 16 (fun i -> (i * 5) mod 16));
      revive ();
      Alcotest.(check bool) "the drill actually crashed a server" true
        (!restarts > 0);
      Alcotest.(check int) "every value eventually landed" 16 !landed;
      let sigma = afe.A.decode ~n:!landed (collect_exn d) in
      Alcotest.(check string) "aggregate = accepted sum across restores"
        (string_of_int !total)
        (Prio_bigint.Bigint.to_string sigma))

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_commit_window_chaos_drill () =
  (* The decision-broadcast durability hole, aimed at exactly: a follower
     dies on receipt of the leader's [a] frame — after the verdict, before
     journaling or acking it. With the two-phase commit the leader
     withholds the client ack ([Commit_pending]), the client resubmits,
     and the repair re-broadcast lands the decision on the restored
     follower; aggregate and accept counts must match a no-fault run.
     Under a fire-and-forget broadcast this drill fails: the leader acks
     immediately, the crashed follower forgets the share forever, and the
     aggregate comes up short. *)
  let afe = Sum.sum ~bits:4 in
  let values = [ 3; 7; 12; 5; 9 ] in
  let run_reference () =
    with_temp_dir "commit-ref" @@ fun dir ->
    let tuning = NetT.{ fast_tuning with checkpoint_dir = Some dir } in
    with_deployment ~tuning afe (fun d ->
        let accepted = ref 0 in
        List.iteri
          (fun i x ->
            match
              Net.submit_outcome d ~rng ~client_id:i (afe.A.encode ~rng x)
            with
            | Net.Accepted -> incr accepted
            | Net.Rejected why ->
              Alcotest.failf "reference run rejected %d: %s" x why
            | Net.Unreachable e ->
              Alcotest.failf "reference run unreachable for %d: %s" x
                (NetT.string_of_protocol_error e))
          values;
        ( !accepted,
          Prio_bigint.Bigint.to_string
            (afe.A.decode ~n:!accepted (collect_exn d)) ))
  in
  let ref_accepted, ref_total = run_reference () in
  with_temp_dir "commit-drill" @@ fun dir ->
  let tuning = NetT.{ fast_tuning with checkpoint_dir = Some dir } in
  (* one-shot targeted fault: follower 2 dies on its first [a] frame.
     [faults_for] is evaluated inside each forked server, so the disarm
     flag must live on the shared filesystem — a ref mutated in the
     child would leave the parent re-arming the crash on restart *)
  let armed = Filename.concat dir "fault-armed" in
  close_out (open_out armed);
  let faults_for id =
    if id = 2 && Sys.file_exists armed then begin
      (try Sys.remove armed with Sys_error _ -> ());
      Some (Faults.create ~seed:"commit-window" (Faults.crash_on ~tags:"a" 1.0))
    end
    else None
  in
  with_deployment ~tuning ~faults_for afe (fun d ->
      let commit_crashes = ref 0 and accepted = ref 0 in
      let revive () =
        Array.iteri
          (fun i st ->
            match st with
            | Net.Exited (Unix.WEXITED 70) ->
              incr commit_crashes;
              Net.restart_server d i
            | Net.Exited _ -> Net.restart_server d i
            | Net.Running -> ())
          (Net.poll_servers d)
      in
      List.iteri
        (fun i x ->
          (* packets sealed once and retried verbatim: the repair path
             must be driven by the SAME submission, not a fresh id *)
          let pk =
            Cl.submit ~rng
              ~mode:(Cl.Robust_snip afe.A.circuit)
              ~num_servers:3 ~client_id:i ~master:d.Net.cfg.Net.master
              (afe.A.encode ~rng x)
          in
          let rec attempt tries =
            match Net.submit_packets_outcome d ~rng ~client_id:i pk with
            | Net.Accepted -> incr accepted
            | (Net.Rejected _ | Net.Unreachable _) when tries < 5 ->
              (* the commit-window crash surfaces as a withheld ack plus
                 a dead port: restore the follower, resubmit *)
              revive ();
              attempt (tries + 1)
            | Net.Rejected why ->
              Alcotest.failf "value %d never landed: rejected: %s" x why
            | Net.Unreachable e ->
              Alcotest.failf "value %d never landed: %s" x
                (NetT.string_of_protocol_error e)
          in
          attempt 0)
        values;
      revive ();
      Alcotest.(check int) "the drill crashed inside the commit window" 1
        !commit_crashes;
      (* the repair actually ran on the leader, and every decision was
         write-ahead journaled there *)
      let prom = ok_exn (NetT.scrape_metrics ~tuning d.Net.addrs.(0)) in
      Alcotest.(check bool) "leader repaired the partial broadcast" true
        (contains ~affix:"prio_commit_repairs_total 1" prom);
      Alcotest.(check bool) "leader journaled every verdict" true
        (contains
           ~affix:
             (Printf.sprintf "prio_journal_appends_total %d"
                (List.length values))
           prom);
      (* consistency against the no-fault run: same accept count, same
         aggregate — nothing lost in the crashed window, nothing doubled
         by the resubmission + repair *)
      Alcotest.(check int) "accept count matches no-fault run" ref_accepted
        !accepted;
      let sigma = afe.A.decode ~n:!accepted (collect_exn d) in
      Alcotest.(check string) "aggregate matches no-fault run" ref_total
        (Prio_bigint.Bigint.to_string sigma))

let test_degraded_abort_idempotent () =
  (* Regression for the degraded-abort hole: when a follower dies
     mid-gossip the leader aborts the submission. The abort itself is now
     journaled and its [r] broadcast acked — so a retry of the same
     submission can only ever re-read the journaled verdict (first write
     wins), never re-verify into a contradictory accept. *)
  let afe = Sum.sum ~bits:4 in
  with_temp_dir "abort-journal" @@ fun dir ->
  let tuning = NetT.{ fast_tuning with checkpoint_dir = Some dir } in
  with_deployment ~tuning afe (fun d ->
      Alcotest.(check bool) "healthy accept" true
        (Net.submit d ~rng ~client_id:0 (afe.A.encode ~rng 5));
      let pk =
        Cl.submit ~rng
          ~mode:(Cl.Robust_snip afe.A.circuit)
          ~num_servers:3 ~client_id:1 ~master:d.Net.cfg.Net.master
          (afe.A.encode ~rng 7)
      in
      let exchange addr frame =
        let fd = ok_exn (NetT.dial addr) in
        ignore (NetT.write_frame fd frame);
        let r = ok_exn (NetT.read_frame ~deadline:(Retry.after 5.0) fd) in
        Unix.close fd;
        r
      in
      List.iter
        (fun i ->
          let p =
            NetT.tagged 'P'
              (Bytes.cat (NetT.put_u32 1)
                 (Bytes.cat (NetT.ctx_bytes ()) pk.Cl.sealed.(i)))
          in
          Alcotest.(check char) "P acked" 'K'
            (Bytes.get (exchange d.Net.addrs.(i) p) 0))
        [ 1; 2; 0 ];
      (* follower 2 dies between upload and verification: the verify
         degrades into an abort *)
      Unix.kill d.Net.pids.(2) Sys.sigkill;
      Unix.sleepf 0.05;
      (match
         NetT.parse_error_frame
           (exchange d.Net.addrs.(0) (NetT.tagged 'V' (NetT.put_u32 1)))
       with
      | Some (NetT.Unavailable, _) -> ()
      | Some (c, detail) ->
        Alcotest.failf "expected E/unavailable, got %s: %s"
          (NetT.string_of_error_code c) detail
      | None -> Alcotest.fail "expected a clean degraded refusal");
      (* the abort reached the healthy follower as an ACKED, JOURNALED
         [r]: its journal holds the accept from client 0 plus this
         reject — no fire-and-forget gap *)
      let prom1 = ok_exn (NetT.scrape_metrics ~tuning d.Net.addrs.(1)) in
      Alcotest.(check bool) "healthy follower journaled the abort" true
        (contains ~affix:"prio_journal_appends_total 2" prom1);
      (* retrying the aborted submission — across a follower restart,
         with the original packets — replays the journaled reject
         idempotently; it must NOT re-verify into an accept on any
         server (the contradictory-decision hole) *)
      Net.restart_server d 2;
      (match Net.submit_packets_outcome d ~rng ~client_id:1 pk with
      | Net.Rejected _ -> ()
      | Net.Accepted ->
        Alcotest.fail "aborted submission re-verified into an accept"
      | Net.Unreachable e ->
        Alcotest.failf "retry unreachable: %s"
          (NetT.string_of_protocol_error e));
      (* a third probe straight at the leader: still the same verdict *)
      Alcotest.(check char) "abort verdict sticky" 'R'
        (Bytes.get
           (exchange d.Net.addrs.(0) (NetT.tagged 'V' (NetT.put_u32 1)))
           0);
      (* and the aborted share contaminated no accumulator *)
      let sigma = afe.A.decode ~n:1 (collect_exn d) in
      Alcotest.(check string) "aggregate excludes the aborted share" "5"
        (Prio_bigint.Bigint.to_string sigma))

(* ------------------------- telemetry plane --------------------------- *)

let test_scrape_and_health () =
  let afe = Sum.sum ~bits:4 in
  with_deployment afe (fun d ->
      List.iteri
        (fun i x ->
          Alcotest.(check bool) "accepted" true
            (Net.submit d ~rng ~client_id:i (afe.A.encode ~rng x)))
        [ 5; 9 ];
      (* live Prometheus scrape off the leader, over the wire *)
      let prom =
        ok_exn (NetT.scrape_metrics ~tuning:fast_tuning d.Net.addrs.(0))
      in
      Alcotest.(check bool) "stage histograms exported" true
        (contains ~affix:"# TYPE prio_stage_admit_seconds histogram" prom);
      Alcotest.(check bool) "admit stage saw both submissions" true
        (contains ~affix:"prio_stage_admit_seconds_count 2" prom);
      Alcotest.(check bool) "verify stage rendered" true
        (contains ~affix:"prio_stage_verify_seconds_count" prom);
      (* the JSON form carries the per-stage percentiles *)
      let json =
        ok_exn
          (NetT.scrape_metrics ~tuning:fast_tuning ~format:`Json
             d.Net.addrs.(0))
      in
      Alcotest.(check bool) "JSON scrape has the verify histogram" true
        (contains ~affix:"\"prio_stage_verify_seconds\":{" json);
      Alcotest.(check bool) "JSON scrape has percentiles" true
        (contains ~affix:"\"p50\":" json);
      (* health probes: the leader reports its gossip links, a follower
         reports none *)
      let h0 = ok_exn (NetT.probe_health ~tuning:fast_tuning d.Net.addrs.(0)) in
      Alcotest.(check int) "leader id" 0 h0.NetT.h_server;
      Alcotest.(check int) "leader folded both" 2 h0.NetT.h_accepted;
      Alcotest.(check int) "nothing pending" 0 h0.NetT.h_pending;
      Alcotest.(check int) "leader lists every follower" 2
        (List.length h0.NetT.h_peers);
      List.iter
        (fun (id, up) ->
          if not up then Alcotest.failf "gossip link to %d reported down" id)
        h0.NetT.h_peers;
      let h1 = ok_exn (NetT.probe_health ~tuning:fast_tuning d.Net.addrs.(1)) in
      Alcotest.(check int) "follower id" 1 h1.NetT.h_server;
      Alcotest.(check (list (pair int bool))) "followers hold no gossip links"
        [] h1.NetT.h_peers)

let test_probe_driven_supervision () =
  let afe = Sum.sum ~bits:4 in
  with_deployment afe (fun d ->
      Alcotest.(check bool) "healthy accept" true
        (Net.submit d ~rng ~client_id:0 (afe.A.encode ~rng 5));
      Array.iteri
        (fun i p ->
          match p with
          | Net.Probe_ok _ -> ()
          | _ -> Alcotest.failf "server %d should probe healthy" i)
        (Net.probe_deployment d);
      Unix.kill d.Net.pids.(1) Sys.sigkill;
      Unix.sleepf 0.05;
      (match (Net.probe_deployment d).(1) with
      | Net.Probe_dead _ -> ()
      | _ -> Alcotest.fail "probe sweep should see the corpse");
      Alcotest.(check (list int)) "supervisor restarts exactly the dead one"
        [ 1 ] (Net.supervise d);
      (match (Net.probe_deployment d).(1) with
      | Net.Probe_ok _ -> ()
      | _ -> Alcotest.fail "revived follower should probe healthy");
      Alcotest.(check bool) "accepts after probe-driven restart" true
        (Net.submit d ~rng ~client_id:1 (afe.A.encode ~rng 3)))

module Trace = Prio_obs.Trace

let test_merged_trace_ancestry () =
  (* a client submission under seeded client-side chaos, traced across
     the process boundary: after the deployment shuts down (dumping each
     server's spans), the merged tree must show every server's admit and
     verify work as a descendant of the client's submission span — and
     the whole run is a pure function of the fault seed *)
  let afe = Sum.sum ~bits:4 in
  with_temp_dir "traces" (fun dir ->
      let tuning = NetT.{ fast_tuning with trace_dir = Some dir } in
      let client = Trace.create ~origin:"client" () in
      Trace.install client;
      let faults = Faults.create ~seed:"trace-chaos" (Faults.drop 0.25) in
      Fun.protect
        ~finally:(fun () -> Trace.uninstall ())
        (fun () ->
          with_deployment ~tuning afe (fun d ->
              Trace.with_span "net.submit"
                ~attrs:[ ("client", "0") ]
                (fun () ->
                  match
                    Net.submit_outcome ~faults d ~rng ~client_id:0
                      (afe.A.encode ~rng 6)
                  with
                  | Net.Accepted -> ()
                  | Net.Rejected why ->
                    Alcotest.failf "rejected under seeded chaos: %s" why
                  | Net.Unreachable e ->
                    Alcotest.failf "unreachable under seeded chaos: %s"
                      (NetT.string_of_protocol_error e))));
      Alcotest.(check bool) "chaos actually injected faults" true
        (Faults.injected faults > 0);
      let read f = In_channel.with_open_bin f In_channel.input_all in
      let dumps =
        Trace.to_jsonl client
        :: (Sys.readdir dir |> Array.to_list
           |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
           |> List.map (fun f -> read (Filename.concat dir f)))
      in
      Alcotest.(check int) "client + one dump per server" 4
        (List.length dumps);
      let merged = Trace.merge dumps in
      let by_id = Hashtbl.create 64 in
      List.iter (fun m -> Hashtbl.replace by_id m.Trace.m_id m) merged;
      let rec descends m target =
        m.Trace.m_id = target
        ||
        match m.Trace.m_parent with
        | None -> false
        | Some p -> (
          match Hashtbl.find_opt by_id p with
          | Some pm -> descends pm target
          | None -> false)
      in
      let submit =
        match
          List.find_opt
            (fun m ->
              m.Trace.m_name = "net.submit" && m.Trace.m_origin = "client")
            merged
        with
        | Some m -> m
        | None -> Alcotest.fail "client submission span missing from merge"
      in
      let named n = List.filter (fun m -> m.Trace.m_name = n) merged in
      (* retries may admit the same share more than once (idempotently),
         so assert on the set of origins, not span counts *)
      let origins spans =
        List.sort_uniq compare (List.map (fun m -> m.Trace.m_origin) spans)
      in
      let admits = named "server.admit" in
      Alcotest.(check (list string)) "every server admitted under the trace"
        [ "server0"; "server1"; "server2" ]
        (origins admits);
      List.iter
        (fun a ->
          if not (descends a submit.Trace.m_id) then
            Alcotest.failf "%s admit span is not under the client submission"
              a.Trace.m_origin)
        admits;
      let verifies = named "server.verify" in
      Alcotest.(check bool) "leader verify descends from the submission" true
        (List.exists
           (fun v ->
             v.Trace.m_origin = "server0" && descends v submit.Trace.m_id)
           verifies);
      Alcotest.(check bool) "a follower verify descends from it too" true
        (List.exists
           (fun v ->
             v.Trace.m_origin <> "server0" && descends v submit.Trace.m_id)
           verifies);
      List.iter
        (fun m ->
          if descends m submit.Trace.m_id then
            Alcotest.(check string)
              (m.Trace.m_id ^ " shares the trace id")
              submit.Trace.m_trace m.Trace.m_trace)
        merged;
      (* causal order: every span's parent precedes it in the merge *)
      let seen = Hashtbl.create 64 in
      List.iter
        (fun m ->
          (match m.Trace.m_parent with
          | Some p when Hashtbl.mem by_id p ->
            if not (Hashtbl.mem seen p) then
              Alcotest.failf "%s ordered before its parent" m.Trace.m_id
          | _ -> ());
          Hashtbl.replace seen m.Trace.m_id ())
        merged)

let () =
  Alcotest.run "net"
    [
      ( "tcp deployment",
        [
          Alcotest.test_case "sum end-to-end" `Quick test_sum_end_to_end;
          Alcotest.test_case "rejects cheater" `Quick test_rejects_cheater;
          Alcotest.test_case "five servers histogram" `Quick
            test_five_servers_histogram;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "drop policy" `Quick test_chaos_drop;
          Alcotest.test_case "corrupt policy" `Quick test_chaos_corrupt;
          Alcotest.test_case "truncate policy" `Quick test_chaos_truncate;
          Alcotest.test_case "slow-peer policy" `Quick test_chaos_slow;
          Alcotest.test_case "follower crash policy" `Quick
            test_chaos_follower_crash;
        ] );
      ( "fault tolerance",
        [
          Alcotest.test_case "leader degrades, supervisor restarts" `Quick
            test_leader_degrades_and_restarts;
          Alcotest.test_case "malformed-frame fuzz" `Quick
            test_fuzz_malformed_frames;
          Alcotest.test_case "idempotent retries" `Quick
            test_idempotent_retries;
        ] );
      ( "admission & durability",
        [
          Alcotest.test_case "busy shed and recovery" `Quick
            test_admission_busy_shed;
          Alcotest.test_case "restore equals uninterrupted" `Quick
            test_restore_equals_uninterrupted;
          Alcotest.test_case "seeded crash+restore drill" `Quick
            test_restore_chaos_drill;
          Alcotest.test_case "commit-window chaos drill" `Quick
            test_commit_window_chaos_drill;
          Alcotest.test_case "degraded abort journaled and idempotent" `Quick
            test_degraded_abort_idempotent;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "live scrape and health probes" `Quick
            test_scrape_and_health;
          Alcotest.test_case "probe-driven supervision" `Quick
            test_probe_driven_supervision;
          Alcotest.test_case "merged trace ancestry under chaos" `Quick
            test_merged_trace_ancestry;
        ] );
    ]

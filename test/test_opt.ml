(* Circuit-optimizer tests: pass-level rewrites on targeted circuits,
   idempotence and caching of the pipeline, the random-input equivalence
   harness (raw vs. optimized Valid over every AFE-zoo specimen and every
   NTT field), the pinned gate-count regression table, and agreement
   between the checked-in budget ledger and the measured counts. *)

module Rng = Prio_crypto.Rng
module F = Prio_field.F87
module C = Prio_circuit.Circuit.Make (F)
module O = Prio_circuit.Opt.Make (F)
module Zoo = Prio_afe.Zoo.Make (F)
module Budget = Prio_analysis.Budget
module Diagnostic = Prio_analysis.Diagnostic

let muls = C.num_mul_gates
let asserts c = Array.length c.C.assert_zero

(* ----------------------------- passes -------------------------------- *)

let test_constant_fold () =
  (* (3 + 5) − 8, asserted zero: provably vacuous, so the constraint and
     everything feeding it folds away and any input is valid *)
  let b = C.Builder.create ~num_inputs:1 in
  let s = C.Builder.add b (C.Builder.const b (F.of_int 3)) (C.Builder.const b (F.of_int 5)) in
  C.Builder.assert_zero b (C.Builder.sub b s (C.Builder.const b (F.of_int 8)));
  let c = O.optimize (C.Builder.build b) in
  Alcotest.(check int) "no asserts left" 0 (asserts c);
  Alcotest.(check bool) "accepts anything" true (C.valid c ~inputs:[| F.of_int 7 |]);
  (* a provably NONZERO assert must survive: the circuit rejects everything *)
  let b = C.Builder.create ~num_inputs:1 in
  C.Builder.assert_zero b (C.Builder.const b F.one);
  let c = O.optimize (C.Builder.build b) in
  Alcotest.(check int) "unsatisfiable assert kept" 1 (asserts c);
  Alcotest.(check bool) "rejects everything" false (C.valid c ~inputs:[| F.zero |])

let test_cse () =
  (* x·x computed twice; the difference collapses to zero, the assert is
     dropped, and dead-gate elimination sweeps out both muls *)
  let b = C.Builder.create ~num_inputs:1 in
  let x = C.Builder.input b 0 in
  let m1 = C.Builder.mul b x x in
  let m2 = C.Builder.mul b x x in
  C.Builder.assert_zero b (C.Builder.sub b m1 m2);
  let raw = C.Builder.build b in
  Alcotest.(check int) "raw has two muls" 2 (muls raw);
  let c = O.optimize raw in
  Alcotest.(check int) "optimized has none" 0 (muls c);
  Alcotest.(check bool) "accepts anything" true (C.valid c ~inputs:[| F.of_int 9 |])

let test_commutative_cse () =
  (* x·y and y·x are the same gate after commutative normalization *)
  let b = C.Builder.create ~num_inputs:3 in
  let x = C.Builder.input b 0 and y = C.Builder.input b 1 in
  let m1 = C.Builder.mul b x y in
  let m2 = C.Builder.mul b y x in
  C.Builder.assert_zero b (C.Builder.sub b m1 (C.Builder.input b 2));
  C.Builder.assert_zero b (C.Builder.sub b m2 (C.Builder.input b 2));
  let raw = C.Builder.build b in
  Alcotest.(check int) "raw has two muls" 2 (muls raw);
  Alcotest.(check int) "one mul survives" 1 (muls (O.optimize raw))

let test_mul_canonicalize () =
  (* x·4 is a Scale, not a Mul, so it costs nothing in the SNIP *)
  let b = C.Builder.create ~num_inputs:2 in
  let x = C.Builder.input b 0 in
  let y = C.Builder.mul b x (C.Builder.const b (F.of_int 4)) in
  C.Builder.assert_zero b (C.Builder.sub b y (C.Builder.input b 1));
  let raw = C.Builder.build b in
  Alcotest.(check int) "raw has one mul" 1 (muls raw);
  let c = O.optimize raw in
  Alcotest.(check int) "optimized has none" 0 (muls c);
  Alcotest.(check bool) "4x = y accepted" true
    (C.valid c ~inputs:[| F.of_int 3; F.of_int 12 |]);
  Alcotest.(check bool) "4x <> y rejected" false
    (C.valid c ~inputs:[| F.of_int 3; F.of_int 13 |])

let test_affine_dedup () =
  (* the same affine constraint stated twice through different chains
     collapses to one assert-zero *)
  let b = C.Builder.create ~num_inputs:2 in
  let x = C.Builder.input b 0 and y = C.Builder.input b 1 in
  C.Builder.assert_zero b (C.Builder.add_const b (F.of_int 3) (C.Builder.add b x y));
  C.Builder.assert_zero b (C.Builder.add_const b (F.of_int 3) (C.Builder.add b y x));
  C.Builder.assert_zero b
    (C.Builder.add b x (C.Builder.add_const b (F.of_int 3) y));
  let raw = C.Builder.build b in
  Alcotest.(check int) "three asserts stated" 3 (asserts raw);
  let c = O.optimize raw in
  Alcotest.(check int) "one assert survives" 1 (asserts c);
  Alcotest.(check bool) "x + y + 3 = 0 accepted" true
    (C.valid c ~inputs:[| F.of_int 4; F.neg (F.of_int 7) |]);
  Alcotest.(check bool) "x + y + 3 <> 0 rejected" false
    (C.valid c ~inputs:[| F.of_int 4; F.of_int 7 |])

let test_dead_gate_elim () =
  (* a mul feeding no assert-zero root is swept out *)
  let b = C.Builder.create ~num_inputs:2 in
  let x = C.Builder.input b 0 and y = C.Builder.input b 1 in
  ignore (C.Builder.mul b x y);
  C.Builder.assert_bit b x;
  let raw = C.Builder.build b in
  Alcotest.(check int) "raw has two muls" 2 (muls raw);
  let c = O.optimize raw in
  Alcotest.(check int) "only the bit check survives" 1 (muls c);
  Alcotest.(check bool) "bit still enforced" false (C.valid c ~inputs:[| F.two; F.zero |])

(* ----------------------------- pipeline ------------------------------ *)

let test_idempotent () =
  List.iter
    (fun e ->
      let once = e.Zoo.optimized in
      let twice = O.optimize once in
      if not (O.equal_structure once twice) then
        Alcotest.failf "%s: optimize is not a fixpoint" e.Zoo.name)
    (Zoo.all ())

let test_canonicalize_cached () =
  let e = List.hd (Zoo.all ()) in
  Alcotest.(check bool) "same object on repeat calls" true
    (O.canonicalize e.Zoo.raw == O.canonicalize e.Zoo.raw);
  let o = O.canonicalize e.Zoo.raw in
  Alcotest.(check bool) "optimized canonicalizes to itself" true
    (O.canonicalize o == o)

let test_num_inputs_preserved () =
  List.iter
    (fun e ->
      Alcotest.(check int)
        (e.Zoo.name ^ " arity")
        (C.num_inputs e.Zoo.raw)
        (C.num_inputs e.Zoo.optimized))
    (Zoo.all ())

(* --------------------------- equivalence ----------------------------- *)

(* Optimized and raw circuits must agree — accept or reject together — on
   1000 inputs per specimen per field, mixed three ways: valid encodings,
   valid encodings with one coordinate replaced by a random field element
   (near-misses), and fully random vectors. The Counting wrapper is a
   cost-model instrument, not a deployment field, so it is not here. *)
module type FIELD = Prio_field.Field_intf.S

(* A generic-Montgomery Proth instance (the BabyBear prime through the
   portable functor) alongside the three specialized fields. *)
module Proth_babybear = Prio_field.Proth.Make (struct
  let name = "ProthBabyBear"
  let prime = "2013265921"
  let generator = 31
  let two_adicity = 27
  let odd_cofactor = "15"
end)

let fields : (string * (module FIELD)) list =
  [
    ("Babybear", (module Prio_field.Babybear));
    ("F87", (module Prio_field.F87));
    ("F265", (module Prio_field.F265));
    ("Proth", (module Proth_babybear));
  ]

let test_equivalence (fname, (m : (module FIELD))) () =
  let module Fld = (val m) in
  let module Z = Prio_afe.Zoo.Make (Fld) in
  let module CF = Prio_circuit.Circuit.Make (Fld) in
  let rng = Rng.of_string_seed ("opt-equivalence-" ^ fname) in
  List.iter
    (fun e ->
      let len = CF.num_inputs e.Z.raw in
      for i = 1 to 1000 do
        let inputs =
          match i mod 3 with
          | 0 -> e.Z.sample rng
          | 1 ->
            let v = e.Z.sample rng in
            if len > 0 then v.(Rng.int_below rng len) <- Fld.random rng;
            v
          | _ -> Array.init len (fun _ -> Fld.random rng)
        in
        let r = CF.valid e.Z.raw ~inputs in
        let o = CF.valid e.Z.optimized ~inputs in
        if r <> o then
          Alcotest.failf "%s over %s, trial %d: raw says %b, optimized says %b"
            e.Z.name fname i r o
      done)
    (Z.all ())

(* -------------------------- gate-count pins -------------------------- *)

(* Exact (raw, optimized) mul counts per specimen. The raw column states
   each builder's defensive/self-contained constraint style; the
   optimized column is the paper's tight count, which is also what the
   budget ledger pins and what SNIP proofs pay for. *)
let expected_muls =
  [
    ("or", 0, 0);
    ("sum8", 8, 8);
    ("histogram12", 12, 12);
    ("max16", 0, 0);
    ("product-b10-f4", 10, 10);
    ("fxsum-6.4", 10, 10);
    ("linreg-d2-b6", 83, 23);
    ("r2-d2-b6", 20, 20);
    ("variance8", 17, 9);
    ("most-popular8", 8, 8);
    ("popular-8b-6buckets", 60, 54);
    ("count-min3x10", 60, 30);
  ]

let test_gate_count_table () =
  let entries = Zoo.all () in
  Alcotest.(check int) "specimen count" (List.length expected_muls)
    (List.length entries);
  List.iter
    (fun e ->
      match List.find_opt (fun (n, _, _) -> n = e.Zoo.name) expected_muls with
      | None -> Alcotest.failf "no pinned counts for %s" e.Zoo.name
      | Some (_, raw, opt) ->
        Alcotest.(check int) (e.Zoo.name ^ " raw muls") raw (muls e.Zoo.raw);
        Alcotest.(check int) (e.Zoo.name ^ " opt muls") opt (muls e.Zoo.optimized))
    entries;
  (* the optimizer must be earning its keep on several families *)
  let strict =
    List.length (List.filter (fun (_, r, o) -> o < r) expected_muls)
  in
  Alcotest.(check bool) "strict reduction on >= 3 specimens" true (strict >= 3)

(* ------------------------- budget ledger ----------------------------- *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let measured_budget () =
  List.map
    (fun e ->
      {
        Budget.name = e.Zoo.name;
        mul = muls e.Zoo.optimized;
        wires = C.num_wires e.Zoo.optimized;
        line = 0;
      })
    (Zoo.all ())

let test_ledger_matches () =
  let file = "../.prio-circuit-budgets" in
  match Budget.parse ~file (read_file file) with
  | Error d -> Alcotest.fail (Diagnostic.to_string d)
  | Ok budget ->
    let diags = Budget.check ~file ~budget ~measured:(measured_budget ()) in
    Alcotest.(check (list string)) "checked-in ledger matches measurement" []
      (List.map Diagnostic.to_string diags)

let () =
  Alcotest.run "opt"
    [
      ( "passes",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_fold;
          Alcotest.test_case "cse" `Quick test_cse;
          Alcotest.test_case "commutative cse" `Quick test_commutative_cse;
          Alcotest.test_case "mul canonicalization" `Quick test_mul_canonicalize;
          Alcotest.test_case "affine dedup" `Quick test_affine_dedup;
          Alcotest.test_case "dead gates" `Quick test_dead_gate_elim;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "idempotent" `Quick test_idempotent;
          Alcotest.test_case "canonicalize cache" `Quick test_canonicalize_cached;
          Alcotest.test_case "arity preserved" `Quick test_num_inputs_preserved;
        ] );
      ( "equivalence",
        List.map
          (fun ((name, _) as f) ->
            Alcotest.test_case name `Quick (test_equivalence f))
          fields );
      ( "budgets",
        [
          Alcotest.test_case "gate-count table" `Quick test_gate_count_table;
          Alcotest.test_case "ledger matches" `Quick test_ledger_matches;
        ] );
    ]

(* Arithmetic-circuit tests: builder and gadget semantics, the mul-gate
   census, and — crucially for the SNIP — that the servers' share-walk of a
   circuit reconstructs exactly the plaintext wire values when the mul-gate
   outputs are supplied honestly. *)

module Rng = Prio_crypto.Rng
module F = Prio_field.F87
module C = Prio_circuit.Circuit.Make (F)
module Sh = Prio_share.Share.Make (F)

let rng = Rng.of_string_seed "circuit-tests"

(* (x0 + 3)·x1 − x2, asserted zero *)
let sample_circuit () =
  let b = C.Builder.create ~num_inputs:3 in
  let t = C.Builder.add_const b (F.of_int 3) (C.Builder.input b 0) in
  let m = C.Builder.mul b t (C.Builder.input b 1) in
  let out = C.Builder.sub b m (C.Builder.input b 2) in
  C.Builder.assert_zero b out;
  C.Builder.build b

let test_eval_basic () =
  let c = sample_circuit () in
  Alcotest.(check int) "one mul gate" 1 (C.num_mul_gates c);
  Alcotest.(check int) "inputs" 3 (C.num_inputs c);
  (* (2+3)*4 = 20 *)
  Alcotest.(check bool) "valid" true
    (C.valid c ~inputs:[| F.of_int 2; F.of_int 4; F.of_int 20 |]);
  Alcotest.(check bool) "invalid" false
    (C.valid c ~inputs:[| F.of_int 2; F.of_int 4; F.of_int 21 |])

let test_mul_pairs () =
  let c = sample_circuit () in
  let _, pairs = C.eval_mul_pairs c ~inputs:[| F.of_int 2; F.of_int 4; F.of_int 20 |] in
  Alcotest.(check int) "one pair" 1 (Array.length pairs);
  let u, v = pairs.(0) in
  Alcotest.(check bool) "left input" true (F.equal u (F.of_int 5));
  Alcotest.(check bool) "right input" true (F.equal v (F.of_int 4))

let test_gadget_bit () =
  let b = C.Builder.create ~num_inputs:1 in
  C.Builder.assert_bit b (C.Builder.input b 0);
  let c = C.Builder.build b in
  Alcotest.(check int) "one mul gate" 1 (C.num_mul_gates c);
  Alcotest.(check bool) "0 ok" true (C.valid c ~inputs:[| F.zero |]);
  Alcotest.(check bool) "1 ok" true (C.valid c ~inputs:[| F.one |]);
  Alcotest.(check bool) "2 bad" false (C.valid c ~inputs:[| F.two |]);
  Alcotest.(check bool) "-1 bad" false (C.valid c ~inputs:[| F.neg F.one |])

let test_gadget_decomposition () =
  let bits = 5 in
  let b = C.Builder.create ~num_inputs:(bits + 1) in
  let bit_wires = List.init bits (fun i -> C.Builder.input b (i + 1)) in
  List.iter (C.Builder.assert_bit b) bit_wires;
  C.Builder.assert_binary_decomposition b ~value:(C.Builder.input b 0) ~bits:bit_wires;
  let c = C.Builder.build b in
  let encode x =
    Array.append [| F.of_int x |]
      (Array.init bits (fun i -> F.of_int ((x lsr i) land 1)))
  in
  for x = 0 to 31 do
    Alcotest.(check bool) (Printf.sprintf "%d valid" x) true (C.valid c ~inputs:(encode x))
  done;
  let bad = encode 9 in
  bad.(0) <- F.of_int 10;
  Alcotest.(check bool) "mismatched value" false (C.valid c ~inputs:bad)

let test_gadget_one_hot () =
  let n = 6 in
  let b = C.Builder.create ~num_inputs:n in
  C.Builder.assert_one_hot b (List.init n (fun i -> C.Builder.input b i));
  let c = C.Builder.build b in
  for hot = 0 to n - 1 do
    let v = Array.init n (fun i -> if i = hot then F.one else F.zero) in
    Alcotest.(check bool) "one-hot ok" true (C.valid c ~inputs:v)
  done;
  Alcotest.(check bool) "all zero bad" false
    (C.valid c ~inputs:(Array.make n F.zero));
  let two_hot = Array.make n F.zero in
  two_hot.(1) <- F.one;
  two_hot.(3) <- F.one;
  Alcotest.(check bool) "two hot bad" false (C.valid c ~inputs:two_hot)

let test_gadget_square_product () =
  let b = C.Builder.create ~num_inputs:3 in
  C.Builder.assert_square b ~x:(C.Builder.input b 0) ~y:(C.Builder.input b 1);
  C.Builder.assert_product b ~x:(C.Builder.input b 0) ~x':(C.Builder.input b 1)
    ~y:(C.Builder.input b 2);
  let c = C.Builder.build b in
  (* x=3, y=9, z=27 *)
  Alcotest.(check bool) "cubes" true
    (C.valid c ~inputs:[| F.of_int 3; F.of_int 9; F.of_int 27 |]);
  Alcotest.(check bool) "wrong square" false
    (C.valid c ~inputs:[| F.of_int 3; F.of_int 8; F.of_int 24 |])

let test_linear_combination () =
  let b = C.Builder.create ~num_inputs:3 in
  let w =
    C.Builder.linear_combination b
      [ (F.of_int 2, C.Builder.input b 0); (F.of_int 3, C.Builder.input b 1);
        (F.neg F.one, C.Builder.input b 2) ]
  in
  C.Builder.assert_zero b w;
  let c = C.Builder.build b in
  Alcotest.(check int) "affine only" 0 (C.num_mul_gates c);
  (* 2*5 + 3*4 = 22 *)
  Alcotest.(check bool) "holds" true
    (C.valid c ~inputs:[| F.of_int 5; F.of_int 4; F.of_int 22 |]);
  Alcotest.(check bool) "fails" false
    (C.valid c ~inputs:[| F.of_int 5; F.of_int 4; F.of_int 23 |])

(* The SNIP verifier invariant: share-evaluation with honest mul outputs
   reconstructs the plaintext wires, for every gate type and any number of
   servers. *)
let test_share_evaluation () =
  for _ = 1 to 30 do
    (* random circuit over 4 inputs *)
    let b = C.Builder.create ~num_inputs:4 in
    let wires = ref (List.init 4 (fun i -> C.Builder.input b i)) in
    let pick () = List.nth !wires (Rng.int_below rng (List.length !wires)) in
    for _ = 1 to 12 do
      let w =
        match Rng.int_below rng 6 with
        | 0 -> C.Builder.add b (pick ()) (pick ())
        | 1 -> C.Builder.sub b (pick ()) (pick ())
        | 2 -> C.Builder.mul b (pick ()) (pick ())
        | 3 -> C.Builder.scale b (F.random rng) (pick ())
        | 4 -> C.Builder.add_const b (F.random rng) (pick ())
        | _ -> C.Builder.const b (F.random rng)
      in
      wires := w :: !wires
    done;
    C.Builder.assert_zero b (pick ());
    let c = C.Builder.build b in
    let inputs = Array.init 4 (fun _ -> F.random rng) in
    let plain_wires, plain_pairs = C.eval_mul_pairs c ~inputs in
    let mul_outputs = Array.map (fun (u, v) -> F.mul u v) plain_pairs in
    let s = 2 + Rng.int_below rng 4 in
    let input_shares = Sh.split_vector rng ~s inputs in
    let mul_shares = Sh.split_vector rng ~s mul_outputs in
    let inv_s = F.inv (F.of_int s) in
    let walks =
      Array.init s (fun i ->
          C.eval_shares c ~const_share_of_one:inv_s ~inputs:input_shares.(i)
            ~mul_outputs:mul_shares.(i))
    in
    (* wire shares must sum to the plaintext wires *)
    Array.iteri
      (fun w expected ->
        let total =
          Array.fold_left (fun acc (ws, _) -> F.add acc ws.(w)) F.zero walks
        in
        Alcotest.(check bool) "wire reconstructs" true (F.equal total expected))
      plain_wires;
    (* mul input pair shares must sum to the plaintext pairs *)
    Array.iteri
      (fun t (u, v) ->
        let us =
          Array.fold_left (fun acc (_, ps) -> F.add acc (fst ps.(t))) F.zero walks
        in
        let vs =
          Array.fold_left (fun acc (_, ps) -> F.add acc (snd ps.(t))) F.zero walks
        in
        Alcotest.(check bool) "left reconstructs" true (F.equal us u);
        Alcotest.(check bool) "right reconstructs" true (F.equal vs v))
      plain_pairs
  done

let test_arity_checks () =
  let c = sample_circuit () in
  Alcotest.check_raises "wrong input count"
    (Invalid_argument "Circuit.eval_wires: wrong input arity") (fun () ->
      ignore (C.eval_wires c ~inputs:[| F.one |]));
  Alcotest.check_raises "wrong mul output count"
    (Invalid_argument "Circuit.eval_shares: wrong mul output count") (fun () ->
      ignore
        (C.eval_shares c ~const_share_of_one:F.one
           ~inputs:[| F.one; F.one; F.one |] ~mul_outputs:[||]))

let test_remap_and_union () =
  (* bit check on input 0, and a square check between inputs 1 and 2, each
     built standalone and then combined over a 3-wide input space *)
  let bit =
    let b = C.Builder.create ~num_inputs:1 in
    C.Builder.assert_bit b (C.Builder.input b 0);
    C.Builder.build b
  in
  let square =
    let b = C.Builder.create ~num_inputs:2 in
    C.Builder.assert_square b ~x:(C.Builder.input b 0) ~y:(C.Builder.input b 1);
    C.Builder.build b
  in
  let combined =
    C.union
      (C.remap_inputs bit ~num_inputs:3 ~mapping:(fun _ -> 0))
      (C.remap_inputs square ~num_inputs:3 ~mapping:(fun j -> j + 1))
  in
  Alcotest.(check int) "mul gates add up" 2 (C.num_mul_gates combined);
  Alcotest.(check int) "inputs widened" 3 (C.num_inputs combined);
  Alcotest.(check bool) "both hold" true
    (C.valid combined ~inputs:[| F.one; F.of_int 4; F.of_int 16 |]);
  Alcotest.(check bool) "first violated" false
    (C.valid combined ~inputs:[| F.two; F.of_int 4; F.of_int 16 |]);
  Alcotest.(check bool) "second violated" false
    (C.valid combined ~inputs:[| F.one; F.of_int 4; F.of_int 17 |]);
  (* the combined circuit still verifies under a SNIP-style share walk:
     sanity-check via eval_mul_pairs census ordering (a's gates first) *)
  let _, pairs =
    C.eval_mul_pairs combined ~inputs:[| F.one; F.of_int 4; F.of_int 16 |]
  in
  Alcotest.(check bool) "census ordering" true
    (F.equal (fst pairs.(1)) (F.of_int 4));
  Alcotest.check_raises "mapping out of range"
    (Invalid_argument "Circuit.remap_inputs: mapping out of range") (fun () ->
      ignore (C.remap_inputs bit ~num_inputs:1 ~mapping:(fun _ -> 5)));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Circuit.union: input arities differ") (fun () ->
      ignore (C.union bit square))

let test_builder_input_range () =
  let b = C.Builder.create ~num_inputs:2 in
  Alcotest.check_raises "input out of range"
    (Invalid_argument "Circuit.Builder.input: out of range") (fun () ->
      ignore (C.Builder.input b 2))

(* ------------------------- structural validation --------------------- *)

(* One case per failure shape of Circuit.validate, on hand-assembled
   records violating each invariant, pinned to the exact message. *)
let test_validate_shapes () =
  Alcotest.(check bool) "well-formed passes" true
    (C.validate (sample_circuit ()) = Ok ());
  let expect name want c =
    match C.validate c with
    | Ok () -> Alcotest.failf "%s: validate unexpectedly passed" name
    | Error msg -> Alcotest.(check string) name want msg
  in
  expect "negative num_inputs" "num_inputs is negative (-1)"
    { C.num_inputs = -1; gates = [||]; assert_zero = [||]; mul_gates = [||] };
  expect "input index out of range"
    "wire 0: input index 2 out of range [0, 1)"
    {
      C.num_inputs = 1;
      gates = [| C.Input 2 |];
      assert_zero = [||];
      mul_gates = [||];
    };
  expect "non-topological operand"
    "wire 0: operand wire 1 is not strictly earlier (gates must be in \
     topological order)"
    {
      C.num_inputs = 1;
      gates = [| C.Add (1, 1); C.Input 0 |];
      assert_zero = [||];
      mul_gates = [||];
    };
  expect "dangling assert-zero" "assert-zero 0: wire 3 does not exist (1 wires)"
    {
      C.num_inputs = 1;
      gates = [| C.Input 0 |];
      assert_zero = [| 3 |];
      mul_gates = [||];
    };
  expect "census count mismatch"
    "mul census has 0 entries but the gate array has 1 mul gates"
    {
      C.num_inputs = 2;
      gates = [| C.Input 0; C.Input 1; C.Mul (0, 1) |];
      assert_zero = [||];
      mul_gates = [||];
    };
  expect "census entry mismatch"
    "mul census entry 0 is (2, 1, 0) but the 0-th mul gate of the array is \
     (2, 0, 1)"
    {
      C.num_inputs = 2;
      gates = [| C.Input 0; C.Input 1; C.Mul (0, 1) |];
      assert_zero = [||];
      mul_gates = [| (2, 1, 0) |];
    };
  Alcotest.check_raises "validate_exn prefixes its context"
    (Invalid_argument "hand-check: num_inputs is negative (-1)") (fun () ->
      C.validate_exn ~context:"hand-check"
        { C.num_inputs = -1; gates = [||]; assert_zero = [||]; mul_gates = [||] })

let () =
  Alcotest.run "circuit"
    [
      ( "evaluation",
        [
          Alcotest.test_case "basic eval" `Quick test_eval_basic;
          Alcotest.test_case "mul pairs" `Quick test_mul_pairs;
          Alcotest.test_case "arity checks" `Quick test_arity_checks;
          Alcotest.test_case "builder range" `Quick test_builder_input_range;
        ] );
      ( "validation",
        [ Alcotest.test_case "failure shapes" `Quick test_validate_shapes ] );
      ( "gadgets",
        [
          Alcotest.test_case "bit" `Quick test_gadget_bit;
          Alcotest.test_case "binary decomposition" `Quick test_gadget_decomposition;
          Alcotest.test_case "one-hot" `Quick test_gadget_one_hot;
          Alcotest.test_case "square/product" `Quick test_gadget_square_product;
          Alcotest.test_case "linear combination" `Quick test_linear_combination;
          Alcotest.test_case "remap and union" `Quick test_remap_and_union;
        ] );
      ( "share evaluation",
        [ Alcotest.test_case "reconstructs wires" `Quick test_share_evaluation ] );
    ]

(* Checkpoint robustness: round-trip property tests plus rejection of
   truncated, bit-flipped, HMAC-mismatched, stale-epoch, and internally
   inconsistent snapshots; atomic save/load semantics including a
   crashed-writer (leftover temp file) drill; and Server capture/apply/
   rotate_epoch state machines. *)

module Rng = Prio_crypto.Rng
module Hmac = Prio_crypto.Hmac
module F = Prio_field.F87
module Ck = Prio_proto.Checkpoint
module CkF = Prio_proto.Checkpoint.Make (F)
module Srv = Prio_proto.Server.Make (F)

let rng = Rng.of_string_seed "checkpoint-tests"
let master = Rng.bytes rng 32
let key = Ck.derive_key ~master ~server_id:1

let snapshot ?(server_id = 1) ?(epoch = 3) ?(accepted = 42) ?(width = 5)
    ?(journal_seq = 0) () : CkF.snapshot =
  {
    CkF.server_id;
    epoch;
    accepted;
    decided_in_epoch = 7;
    journal_seq;
    replay_digest = Rng.bytes rng 32;
    accumulator = Array.init width (fun _ -> F.random rng);
  }

let check_error what expected = function
  | Ok _ -> Alcotest.failf "%s: decoded a snapshot it should reject" what
  | Error e ->
    Alcotest.(check string) what expected (Ck.string_of_error e |> fun s ->
      (* compare only the variant head so details can evolve *)
      match String.index_opt s ':' with
      | Some i when expected <> s -> String.sub s 0 i
      | _ -> s)

(* ------------------------------ codec ------------------------------- *)

let test_roundtrip () =
  for _ = 1 to 50 do
    let snap =
      snapshot
        ~server_id:(Rng.int_below rng 8)
        ~epoch:(Rng.int_below rng 1000)
        ~accepted:(Rng.int_below rng 1_000_000)
        ~width:(1 + Rng.int_below rng 12)
        ~journal_seq:(Rng.int_below rng 10_000)
        ()
    in
    let k = Ck.derive_key ~master ~server_id:snap.CkF.server_id in
    match CkF.of_bytes ~key:k (CkF.to_bytes ~key:k snap) with
    | Error e -> Alcotest.failf "roundtrip: %s" (Ck.string_of_error e)
    | Ok got ->
      Alcotest.(check int) "server_id" snap.CkF.server_id got.CkF.server_id;
      Alcotest.(check int) "epoch" snap.CkF.epoch got.CkF.epoch;
      Alcotest.(check int) "accepted" snap.CkF.accepted got.CkF.accepted;
      Alcotest.(check int) "decided" snap.CkF.decided_in_epoch
        got.CkF.decided_in_epoch;
      Alcotest.(check int) "journal_seq" snap.CkF.journal_seq
        got.CkF.journal_seq;
      Alcotest.(check bool) "digest" true
        (Bytes.equal snap.CkF.replay_digest got.CkF.replay_digest);
      Alcotest.(check bool) "accumulator" true
        (Array.for_all2 F.equal snap.CkF.accumulator got.CkF.accumulator)
  done

let qcheck_roundtrip =
  QCheck.Test.make ~name:"checkpoint roundtrip preserves counters"
    ~count:100
    QCheck.(triple (int_bound 500) (int_bound 100_000) (int_bound 10))
    (fun (epoch, accepted, w) ->
      let snap = snapshot ~epoch ~accepted ~width:(w + 1) () in
      match CkF.of_bytes ~key (CkF.to_bytes ~key snap) with
      | Ok got ->
        got.CkF.epoch = epoch && got.CkF.accepted = accepted
        && Array.length got.CkF.accumulator = w + 1
      | Error _ -> false)

let test_truncated () =
  let b = CkF.to_bytes ~key (snapshot ()) in
  let n = Bytes.length b in
  for len = 0 to n - 1 do
    match CkF.of_bytes ~key (Bytes.sub b 0 len) with
    | Ok _ -> Alcotest.failf "accepted a %d/%d-byte prefix" len n
    | Error (Ck.Truncated | Ck.Bad_hmac | Ck.Malformed _) -> ()
    | Error e ->
      Alcotest.failf "prefix %d: unexpected %s" len (Ck.string_of_error e)
  done;
  (* prefixes shorter than the fixed header must be Truncated exactly *)
  check_error "tiny prefix" "truncated snapshot"
    (CkF.of_bytes ~key (Bytes.sub b 0 10))

let test_bitflip () =
  let b = CkF.to_bytes ~key (snapshot ()) in
  for i = 0 to Bytes.length b - 1 do
    let mauled = Bytes.copy b in
    Bytes.set mauled i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    match CkF.of_bytes ~key mauled with
    | Ok _ -> Alcotest.failf "accepted a snapshot with byte %d flipped" i
    | Error (Ck.Bad_magic | Ck.Bad_version _ | Ck.Bad_hmac) -> ()
    | Error e ->
      Alcotest.failf "byte %d: unexpected %s" i (Ck.string_of_error e)
  done

let test_wrong_key () =
  let b = CkF.to_bytes ~key (snapshot ()) in
  (* another server's key, and another deployment's master *)
  check_error "other server" "authentication failed"
    (CkF.of_bytes ~key:(Ck.derive_key ~master ~server_id:2) b);
  let other_master = Rng.bytes rng 32 in
  check_error "other master" "authentication failed"
    (CkF.of_bytes ~key:(Ck.derive_key ~master:other_master ~server_id:1) b)

let test_stale_epoch () =
  let b = CkF.to_bytes ~key (snapshot ~epoch:3 ()) in
  (match CkF.of_bytes ~min_epoch:5 ~key b with
  | Error (Ck.Stale_epoch { snapshot = 3; floor = 5 }) -> ()
  | Error e -> Alcotest.failf "unexpected %s" (Ck.string_of_error e)
  | Ok _ -> Alcotest.fail "accepted a stale snapshot");
  (* the floor is inclusive: a snapshot at exactly min_epoch loads *)
  Alcotest.(check bool) "at floor" true
    (Result.is_ok (CkF.of_bytes ~min_epoch:3 ~key b))

let test_authentic_but_malformed () =
  (* forge (we hold the key) a snapshot whose declared accumulator length
     disagrees with the payload: authenticate-then-parse must still land
     on Malformed, never on an exception or a bogus snapshot *)
  let b = CkF.to_bytes ~key (snapshot ~width:5 ()) in
  let body = Bytes.sub b 0 (Bytes.length b - 32) in
  let off = 4 + 1 + 20 + 32 in
  (* acc_elements field *)
  Bytes.set body (off + 3) (Char.chr 6);
  let reforged = Bytes.cat body (Hmac.sha256 ~key body) in
  match CkF.of_bytes ~key reforged with
  | Error (Ck.Malformed _) -> ()
  | Error e -> Alcotest.failf "unexpected %s" (Ck.string_of_error e)
  | Ok _ -> Alcotest.fail "accepted an inconsistent snapshot"

(* ------------------------------ files ------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prio-ckpt-test-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_save_load () =
  with_temp_dir @@ fun dir ->
  let snap = snapshot ~epoch:1 ~accepted:10 () in
  (match CkF.save ~key ~dir snap with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" (Ck.string_of_error e));
  (* overwrite with a newer snapshot: load returns the latest *)
  let newer = { snap with CkF.epoch = 2; accepted = 20 } in
  (match CkF.save ~key ~dir newer with
  | Ok () -> ()
  | Error e -> Alcotest.failf "re-save: %s" (Ck.string_of_error e));
  (match CkF.load ~key ~dir ~server_id:1 () with
  | Ok got ->
    Alcotest.(check int) "latest epoch" 2 got.CkF.epoch;
    Alcotest.(check int) "latest accepted" 20 got.CkF.accepted
  | Error e -> Alcotest.failf "load: %s" (Ck.string_of_error e));
  (* missing server: Io, not an exception *)
  match CkF.load ~key ~dir ~server_id:9 () with
  | Error (Ck.Io _) -> ()
  | Error e -> Alcotest.failf "unexpected %s" (Ck.string_of_error e)
  | Ok _ -> Alcotest.fail "loaded a snapshot that was never saved"

let test_crashed_writer_leftover () =
  (* a writer that died mid-write leaves a partial temp file; the rename
     never happened, so the previous snapshot must load untouched *)
  with_temp_dir @@ fun dir ->
  let snap = snapshot ~epoch:7 ~accepted:70 () in
  (match CkF.save ~key ~dir snap with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" (Ck.string_of_error e));
  let file = Ck.path ~dir ~server_id:1 in
  let tmp = file ^ ".tmp.99999" in
  let oc = open_out_bin tmp in
  output_string oc "PRCK\001partial-write-cut-";
  close_out oc;
  (match CkF.load ~key ~dir ~server_id:1 () with
  | Ok got -> Alcotest.(check int) "old snapshot intact" 7 got.CkF.epoch
  | Error e -> Alcotest.failf "load: %s" (Ck.string_of_error e));
  (* and a fresh save still replaces the snapshot atomically *)
  (match CkF.save ~key ~dir { snap with CkF.epoch = 8 } with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save after crash: %s" (Ck.string_of_error e));
  match CkF.load ~key ~dir ~server_id:1 () with
  | Ok got -> Alcotest.(check int) "replaced" 8 got.CkF.epoch
  | Error e -> Alcotest.failf "reload: %s" (Ck.string_of_error e)

let test_corrupted_file_on_disk () =
  with_temp_dir @@ fun dir ->
  (match CkF.save ~key ~dir (snapshot ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" (Ck.string_of_error e));
  let file = Ck.path ~dir ~server_id:1 in
  (* truncate the real snapshot on disk *)
  let b = In_channel.with_open_bin file In_channel.input_all in
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc (String.sub b 0 (String.length b / 2)));
  match CkF.load ~key ~dir ~server_id:1 () with
  | Error (Ck.Bad_hmac | Ck.Truncated | Ck.Malformed _) -> ()
  | Error e -> Alcotest.failf "unexpected %s" (Ck.string_of_error e)
  | Ok _ -> Alcotest.fail "loaded a corrupted snapshot"

(* ---------------------------- decision journal ------------------------ *)

let jkey = Ck.derive_journal_key ~master ~server_id:1

let entry ?(seq = 1) ?(client = 100) ?(accepted = true) ?(epoch = 0)
    ?(width = 3) () : CkF.journal_entry =
  {
    CkF.j_seq = seq;
    j_client = client;
    j_accepted = accepted;
    j_epoch = epoch;
    j_share =
      (if accepted then Array.init width (fun _ -> F.random rng) else [||]);
  }

let open_exn ~key ~dir ~server_id () =
  match CkF.journal_open ~key ~dir ~server_id () with
  | Ok r -> r
  | Error e -> Alcotest.failf "journal_open: %s" (Ck.string_of_error e)

let append_exn j e =
  match CkF.journal_append j e with
  | Ok () -> ()
  | Error e -> Alcotest.failf "journal_append: %s" (Ck.string_of_error e)

let test_journal_roundtrip () =
  with_temp_dir @@ fun dir ->
  let entries, j = open_exn ~key:jkey ~dir ~server_id:1 () in
  Alcotest.(check int) "fresh journal empty" 0 (List.length entries);
  let e1 = entry ~seq:1 ~client:7 ~accepted:true () in
  let e2 = entry ~seq:2 ~client:9 ~accepted:false () in
  let e3 = entry ~seq:3 ~client:11 ~accepted:true ~epoch:1 () in
  List.iter (append_exn j) [ e1; e2; e3 ];
  CkF.journal_close j;
  let entries, j = open_exn ~key:jkey ~dir ~server_id:1 () in
  CkF.journal_close j;
  Alcotest.(check int) "entries survive reopen" 3 (List.length entries);
  List.iter2
    (fun (want : CkF.journal_entry) (got : CkF.journal_entry) ->
      Alcotest.(check int) "seq" want.CkF.j_seq got.CkF.j_seq;
      Alcotest.(check int) "client" want.CkF.j_client got.CkF.j_client;
      Alcotest.(check bool) "verdict" want.CkF.j_accepted got.CkF.j_accepted;
      Alcotest.(check int) "epoch" want.CkF.j_epoch got.CkF.j_epoch;
      Alcotest.(check bool) "share" true
        (Array.for_all2 F.equal want.CkF.j_share got.CkF.j_share))
    [ e1; e2; e3 ] entries

let journal_bytes dir =
  In_channel.with_open_bin
    (Ck.journal_path ~dir ~server_id:1)
    In_channel.input_all

let write_journal dir s =
  Out_channel.with_open_bin
    (Ck.journal_path ~dir ~server_id:1)
    (fun oc -> Out_channel.output_string oc s)

let test_journal_torn_tail () =
  (* a crash mid-append leaves a partial trailing record; recovery keeps
     the intact prefix and drops the torn tail silently *)
  with_temp_dir @@ fun dir ->
  let _, j = open_exn ~key:jkey ~dir ~server_id:1 () in
  append_exn j (entry ~seq:1 ());
  append_exn j (entry ~seq:2 ~client:200 ());
  CkF.journal_close j;
  let whole = journal_bytes dir in
  for cut = 1 to 40 do
    write_journal dir (String.sub whole 0 (String.length whole - cut));
    let entries, j = open_exn ~key:jkey ~dir ~server_id:1 () in
    Alcotest.(check int)
      (Printf.sprintf "cut %d: prefix survives" cut)
      1 (List.length entries);
    (* and the journal is appendable again after the repair *)
    append_exn j (entry ~seq:2 ~client:300 ());
    CkF.journal_close j
  done

let test_journal_tamper () =
  (* a chain break before the tail is tampering, not a torn write *)
  with_temp_dir @@ fun dir ->
  let _, j = open_exn ~key:jkey ~dir ~server_id:1 () in
  append_exn j (entry ~seq:1 ());
  append_exn j (entry ~seq:2 ~client:200 ());
  CkF.journal_close j;
  let whole = journal_bytes dir in
  (* flip one byte inside the first record's body (just past the file
     header) — the second, intact record proves the break is not a tail *)
  let mauled = Bytes.of_string whole in
  Bytes.set mauled 12 (Char.chr (Char.code (Bytes.get mauled 12) lxor 0x20));
  write_journal dir (Bytes.to_string mauled);
  (match CkF.journal_open ~key:jkey ~dir ~server_id:1 () with
  | Error Ck.Bad_hmac -> ()
  | Error e -> Alcotest.failf "unexpected %s" (Ck.string_of_error e)
  | Ok (_, j) ->
    CkF.journal_close j;
    Alcotest.fail "opened a tampered journal");
  (* wrong key (another deployment) fails the same way *)
  write_journal dir whole;
  let other = Ck.derive_journal_key ~master:(Rng.bytes rng 32) ~server_id:1 in
  match CkF.journal_open ~key:other ~dir ~server_id:1 () with
  | Error Ck.Bad_hmac -> ()
  | Error e -> Alcotest.failf "wrong key: unexpected %s" (Ck.string_of_error e)
  | Ok (_, j) ->
    CkF.journal_close j;
    Alcotest.fail "opened with the wrong key"

let test_journal_truncate () =
  (* a snapshot absorbed the journal: truncation drops every record and
     the chain restarts from genesis *)
  with_temp_dir @@ fun dir ->
  let _, j = open_exn ~key:jkey ~dir ~server_id:1 () in
  append_exn j (entry ~seq:1 ());
  (match CkF.journal_truncate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "truncate: %s" (Ck.string_of_error e));
  append_exn j (entry ~seq:2 ~client:500 ());
  CkF.journal_close j;
  let entries, j = open_exn ~key:jkey ~dir ~server_id:1 () in
  CkF.journal_close j;
  Alcotest.(check int) "only post-truncate records" 1 (List.length entries);
  Alcotest.(check int) "post-truncate client" 500
    (List.hd entries).CkF.j_client

let test_journal_wrong_server () =
  (* a journal naming another server must not replay into this one *)
  with_temp_dir @@ fun dir ->
  let _, j = open_exn ~key:jkey ~dir ~server_id:1 () in
  append_exn j (entry ~seq:1 ());
  CkF.journal_close j;
  Unix.rename
    (Ck.journal_path ~dir ~server_id:1)
    (Ck.journal_path ~dir ~server_id:2);
  match
    CkF.journal_open
      ~key:(Ck.derive_journal_key ~master ~server_id:2)
      ~dir ~server_id:2 ()
  with
  | Error (Ck.Malformed _ | Ck.Bad_hmac) -> ()
  | Error e -> Alcotest.failf "unexpected %s" (Ck.string_of_error e)
  | Ok (_, j) ->
    CkF.journal_close j;
    Alcotest.fail "replayed another server's journal"

(* ------------------------- server state machine ---------------------- *)

let make_server () =
  Srv.create ~id:1 ~num_servers:2 ~master ~trunc_len:3 ~payload_elements:8

let test_capture_apply () =
  let s = make_server () in
  let share = Array.init 8 (fun _ -> F.random rng) in
  Srv.accumulate s share;
  ignore (Srv.record_decision s ~client_id:7 true : bool);
  ignore (Srv.record_decision s ~client_id:9 false : bool);
  let snap = CkF.of_server s in
  Alcotest.(check int) "accepted captured" 1 snap.CkF.accepted;
  Alcotest.(check int) "decided captured" 2 snap.CkF.decided_in_epoch;
  Alcotest.(check int) "journal watermark captured" 2 snap.CkF.journal_seq;
  let fresh = make_server () in
  CkF.apply snap fresh;
  Alcotest.(check bool) "accumulator restored" true
    (Array.for_all2 F.equal s.Srv.accumulator fresh.Srv.accumulator);
  Alcotest.(check int) "accepted restored" 1 fresh.Srv.accepted;
  Alcotest.(check int) "epoch restored" 0 fresh.Srv.epoch;
  Alcotest.(check int) "journal watermark restored" 2
    fresh.Srv.journal_seq;
  (* tables restart empty: only the digest commitment crosses a restore *)
  Alcotest.(check int) "resident reset" 0 (Srv.resident_entries fresh);
  Alcotest.(check bool) "digest carried" true
    (Bytes.equal s.Srv.replay_digest fresh.Srv.replay_digest)

let test_rotate_epoch () =
  let s = make_server () in
  Alcotest.(check bool) "first write wins" true
    (Srv.record_decision s ~client_id:1 true);
  Alcotest.(check bool) "duplicate refused" false
    (Srv.record_decision s ~client_id:1 false);
  (* duplicate: one distinct client *)
  ignore (Srv.record_decision s ~client_id:2 true : bool);
  Alcotest.(check int) "distinct decisions" 2 s.Srv.decided_in_epoch;
  Alcotest.(check int) "journal seq tracks firsts" 2 s.Srv.journal_seq;
  let digest_before = Bytes.copy s.Srv.replay_digest in
  Srv.rotate_epoch s;
  Alcotest.(check int) "epoch bumped" 1 s.Srv.epoch;
  Alcotest.(check int) "counter reset" 0 s.Srv.decided_in_epoch;
  (* two-generation retirement: the closed epoch's decisions stay
     resident (and answerable — the duplicate at client 1 kept the first
     verdict) for one more epoch before being dropped *)
  Alcotest.(check int) "previous generation retained" 2
    (Srv.resident_entries s);
  Alcotest.(check bool) "decision still answerable" true
    (Srv.decision s ~client_id:1 = Some true);
  Alcotest.(check bool) "digest chained" false
    (Bytes.equal digest_before s.Srv.replay_digest);
  Srv.rotate_epoch s;
  Alcotest.(check int) "tables dropped after two rotations" 0
    (Srv.resident_entries s);
  Alcotest.(check bool) "decision forgotten after two rotations" true
    (Srv.decision s ~client_id:1 = None)

let test_apply_width_mismatch () =
  let snap = snapshot ~width:4 () in
  (* server below is trunc_len 3 *)
  match CkF.apply snap (make_server ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "applied a snapshot of the wrong width"

let () =
  Alcotest.run "checkpoint"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
          Alcotest.test_case "truncated" `Quick test_truncated;
          Alcotest.test_case "bitflip" `Quick test_bitflip;
          Alcotest.test_case "wrong key" `Quick test_wrong_key;
          Alcotest.test_case "stale epoch" `Quick test_stale_epoch;
          Alcotest.test_case "authentic but malformed" `Quick
            test_authentic_but_malformed;
        ] );
      ( "files",
        [
          Alcotest.test_case "save/load" `Quick test_save_load;
          Alcotest.test_case "crashed writer leftover" `Quick
            test_crashed_writer_leftover;
          Alcotest.test_case "corrupted on disk" `Quick
            test_corrupted_file_on_disk;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "tamper" `Quick test_journal_tamper;
          Alcotest.test_case "truncate" `Quick test_journal_truncate;
          Alcotest.test_case "wrong server" `Quick test_journal_wrong_server;
        ] );
      ( "server",
        [
          Alcotest.test_case "capture/apply" `Quick test_capture_apply;
          Alcotest.test_case "rotate epoch" `Quick test_rotate_epoch;
          Alcotest.test_case "apply width mismatch" `Quick
            test_apply_width_mismatch;
        ] );
    ]

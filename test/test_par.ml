(* Multicore suite, run under the @par alias with a fixed domain count so
   results never depend on the host's core inventory: the domain worker
   pool's scheduling contracts, pipeline-level parallel verification
   against the sequential reference, and the TCP runtime with
   verify_domains > 1 driving a concurrent client batch. *)

module F = Prio_field.F87
module Pool = Prio_proto.Pool
module Pipe = Prio_proto.Pipeline.Make (F)
module Cl = Prio_proto.Cluster.Make (F)
module Net = Prio_proto.Net.Make (F)
module NetT = Prio_proto.Net
module Retry = Prio_proto.Retry
module Sum = Prio_afe.Sum.Make (F)
module A = Prio_afe.Afe.Make (F)
module Rng = Prio_crypto.Rng
module B = Prio_bigint.Bigint

let rng = Rng.of_string_seed "par-tests"

(* Fixed for the whole suite: @par exists to pin one domain count, not to
   scale with the machine. *)
let par_domains = 4

(* ------------------------------- pool -------------------------------- *)

let test_pool_map_order () =
  let p = Pool.create ~domains:par_domains in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      Alcotest.(check int) "size" par_domains (Pool.size p);
      let xs = Array.init 200 Fun.id in
      let ys = Pool.map_array p (fun x -> x * x) xs in
      Alcotest.(check bool) "results in index order" true
        (Array.for_all2 (fun x y -> x * x = y) xs ys))

let test_pool_inline () =
  (* domains:1 = pure tuning knob: no workers, tasks run on the caller *)
  let p = Pool.create ~domains:1 in
  Alcotest.(check int) "inline size" 1 (Pool.size p);
  let ran = ref false in
  let fut =
    Pool.submit p (fun () ->
        ran := true;
        41 + 1)
  in
  Alcotest.(check bool) "ran eagerly on the caller" true !ran;
  Alcotest.(check int) "value" 42 (Pool.await fut);
  Pool.shutdown p

let test_pool_exceptions () =
  let p = Pool.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let fut = Pool.submit p (fun () -> failwith "boom") in
      Alcotest.check_raises "await re-raises" (Failure "boom") (fun () ->
          ignore (Pool.await fut));
      (* one failed task must not poison the pool *)
      Alcotest.(check int) "still serving" 7
        (Pool.await (Pool.submit p (fun () -> 7))))

let test_pool_shutdown () =
  let p = Pool.create ~domains:2 in
  let fut = Pool.submit p (fun () -> 5) in
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  Alcotest.(check int) "pre-shutdown task completed" 5 (Pool.await fut);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit p (fun () -> 0)));
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:0))

let test_pool_helping_await () =
  (* awaiting inside a task must not deadlock: the awaiting thread runs
     other queued tasks while its own dependency is pending. With 2
     capacity units and 16 tasks that each await a subtask, a
     non-helping pool would wedge immediately. *)
  let p = Pool.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let outer =
        Array.init 16 (fun i ->
            Pool.submit p (fun () ->
                let inner = Pool.submit p (fun () -> i * 2) in
                1 + Pool.await inner))
      in
      let total = Array.fold_left (fun acc f -> acc + Pool.await f) 0 outer in
      Alcotest.(check int) "all nested tasks finished" (16 + 16 * 15) total)

(* ----------------------- pipeline verification ----------------------- *)

let test_process_parallel_matches () =
  let afe = Sum.sum ~bits:4 in
  let master = Rng.bytes rng 32 in
  let make_replica () =
    Cl.create ~batch_size:5 ~rng:(Rng.split rng) ~mode:Cl.Robust_snip
      ~circuit:afe.A.circuit ~trunc_len:afe.A.trunc_len ~num_servers:3 ~master
      ()
  in
  let serial = make_replica () in
  let encodings = List.init 12 (fun i -> afe.A.encode ~rng (i mod 16)) in
  let prepared = Pipe.prepare ~rng serial encodings in
  let accepted_serial, _ = Pipe.process serial prepared in
  Alcotest.(check int) "serial accepts all" 12 accepted_serial;
  let serial_links = Array.map Array.copy serial.Cl.links in
  let expected = List.fold_left ( + ) 0 (List.init 12 (fun i -> i mod 16)) in
  let pool = Pool.create ~domains:par_domains in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun domains ->
          let merged, accepted, _seconds =
            Pipe.process_parallel ~pool ~make_replica ~domains prepared
          in
          Alcotest.(check int)
            (Printf.sprintf "accepted (%d domains)" domains)
            accepted_serial accepted;
          Alcotest.(check int) "batches" serial.Cl.batches merged.Cl.batches;
          Alcotest.(check int) "processed_in_batch"
            serial.Cl.processed_in_batch merged.Cl.processed_in_batch;
          Alcotest.(check int) "next_leader" serial.Cl.next_leader
            merged.Cl.next_leader;
          Array.iteri
            (fun i row ->
              Alcotest.(check (array int))
                (Printf.sprintf "link bytes from server %d (%d domains)" i
                   domains)
                serial_links.(i) row)
            merged.Cl.links;
          let total = afe.A.decode ~n:accepted (Cl.publish merged) in
          Alcotest.(check string)
            (Printf.sprintf "aggregate (%d domains)" domains)
            (string_of_int expected) (B.to_string total))
        [ 1; 2; par_domains ])

(* --------------------------- TCP runtime ----------------------------- *)

let par_tuning =
  NetT.
    {
      default_tuning with
      io_timeout = 2.0;
      dial_timeout = 2.0;
      select_tick = 0.02;
      verify_domains = 2;
      backoff =
        Retry.
          {
            default_backoff with
            max_attempts = 8;
            base_delay = 0.005;
            max_delay = 0.04;
          };
    }

let test_net_verify_domains () =
  let afe = Sum.sum ~bits:4 in
  let cfg =
    Net.
      {
        circuit = afe.A.circuit;
        trunc_len = afe.A.trunc_len;
        num_servers = 3;
        master = Rng.bytes rng 32;
        batch_seed = Rng.bytes rng 32;
      }
  in
  let d = Net.launch ~tuning:par_tuning cfg in
  Fun.protect
    ~finally:(fun () -> Net.shutdown d)
    (fun () ->
      let values = [| 3; 7; 15; 0; 9; 12 |] in
      let packets =
        Array.mapi
          (fun i x ->
            let enc = afe.A.encode ~rng x in
            if i = 4 then enc.(0) <- F.of_int 999;
            ( i,
              Net.Client.submit ~rng ~mode:(Net.Client.Robust_snip cfg.circuit)
                ~num_servers:3 ~client_id:i ~master:cfg.master enc ))
          values
      in
      let outcomes = Net.submit_batch ~domains:2 d ~rng packets in
      Array.iteri
        (fun i o ->
          let want = i <> 4 in
          let got =
            match o with
            | Net.Accepted -> true
            | Net.Rejected _ -> false
            | Net.Unreachable e ->
              Alcotest.failf "client %d unreachable: %s" i
                (NetT.string_of_protocol_error e)
          in
          Alcotest.(check bool)
            (Printf.sprintf "outcome %d" i)
            want got)
        outcomes;
      let agg =
        match Net.collect_aggregate d with
        | Ok v -> v
        | Error (i, e) ->
          Alcotest.failf "collect: server %d: %s" i
            (NetT.string_of_protocol_error e)
      in
      let total = afe.A.decode ~n:5 agg in
      Alcotest.(check string) "aggregate excludes the cheater" "37"
        (B.to_string total))

let () =
  Alcotest.run "par"
    [
      (* The TCP suite must run FIRST: the OCaml runtime refuses
         [Unix.fork] in any process that has ever spawned a domain (even
         a joined one), and [Net.launch] forks the server processes.
         Within the test itself the ordering is safe: the forks all
         happen in [launch], before [submit_batch] spawns driver-side
         domains. *)
      ( "tcp runtime",
        [
          Alcotest.test_case "verify_domains + concurrent batch" `Quick
            test_net_verify_domains;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map_array keeps index order" `Quick
            test_pool_map_order;
          Alcotest.test_case "inline pool runs on the caller" `Quick
            test_pool_inline;
          Alcotest.test_case "exceptions re-raised, pool survives" `Quick
            test_pool_exceptions;
          Alcotest.test_case "shutdown contract" `Quick test_pool_shutdown;
          Alcotest.test_case "helping await never deadlocks" `Quick
            test_pool_helping_await;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "process_parallel = process" `Quick
            test_process_parallel_matches;
        ] );
    ]

(* Polynomial layer tests: dense ops, Lagrange interpolation, the NTT fast
   path against the naive path, and the fixed-point evaluation contexts
   (the Appendix I optimization). *)

module Rng = Prio_crypto.Rng
open Prio_field

module Suite (F : Field_intf.S) = struct
  module P = Prio_poly.Poly.Make (F)
  module N = Prio_poly.Ntt.Make (F)
  module R = Prio_poly.Roots_eval.Make (F)

  let rng = Rng.of_string_seed ("poly-tests-" ^ F.name)

  let random_poly len = Array.init len (fun _ -> F.random rng)

  let test_eval_horner () =
    (* p(x) = 3 + 2x + x^2 at x = 5 -> 38 *)
    let p = [| F.of_int 3; F.of_int 2; F.one |] in
    Alcotest.(check bool) "horner" true
      (F.equal (P.eval p (F.of_int 5)) (F.of_int 38));
    Alcotest.(check bool) "empty poly" true (F.is_zero (P.eval [||] (F.of_int 9)))

  let test_degree_normalize () =
    Alcotest.(check int) "zero degree" (-1) (P.degree [||]);
    Alcotest.(check int) "trailing zeros" 1
      (P.degree [| F.one; F.one; F.zero; F.zero |]);
    Alcotest.(check bool) "equal modulo zeros" true
      (P.equal [| F.one |] [| F.one; F.zero |])

  let test_add_sub_scale () =
    for _ = 1 to 20 do
      let p = random_poly 8 and q = random_poly 5 in
      let x = F.random rng in
      Alcotest.(check bool) "add pointwise" true
        (F.equal (P.eval (P.add p q) x) (F.add (P.eval p x) (P.eval q x)));
      Alcotest.(check bool) "sub pointwise" true
        (F.equal (P.eval (P.sub p q) x) (F.sub (P.eval p x) (P.eval q x)));
      let c = F.random rng in
      Alcotest.(check bool) "scale pointwise" true
        (F.equal (P.eval (P.scale c p) x) (F.mul c (P.eval p x)))
    done

  let test_mul_naive () =
    for _ = 1 to 20 do
      let p = random_poly (1 + Rng.int_below rng 10) in
      let q = random_poly (1 + Rng.int_below rng 10) in
      let x = F.random rng in
      Alcotest.(check bool) "mul pointwise" true
        (F.equal (P.eval (P.mul_naive p q) x) (F.mul (P.eval p x) (P.eval q x)))
    done

  let test_lagrange () =
    for _ = 1 to 10 do
      let deg = 1 + Rng.int_below rng 8 in
      let coeffs = random_poly (deg + 1) in
      let points =
        Array.init (deg + 1) (fun i -> (F.of_int i, P.eval coeffs (F.of_int i)))
      in
      Alcotest.(check bool) "recovers coefficients" true
        (P.equal (P.interpolate points) coeffs)
    done;
    (* interpolation through arbitrary (distinct) points *)
    let pts = [| (F.of_int 2, F.of_int 7); (F.of_int 11, F.of_int 3) |] in
    let p = P.interpolate pts in
    Alcotest.(check bool) "fits point 1" true (F.equal (P.eval p (F.of_int 2)) (F.of_int 7));
    Alcotest.(check bool) "fits point 2" true (F.equal (P.eval p (F.of_int 11)) (F.of_int 3));
    Alcotest.(check int) "degree <= 1" 1 (P.degree p)

  let test_batch_invert () =
    for _ = 1 to 10 do
      let xs = Array.init (1 + Rng.int_below rng 20) (fun _ -> F.random_nonzero rng) in
      let invs = P.batch_invert xs in
      Array.iteri
        (fun i x ->
          Alcotest.(check bool) "x * x^-1 = 1" true (F.is_one (F.mul x invs.(i))))
        xs
    done;
    Alcotest.(check bool) "empty" true (P.batch_invert [||] = [||])

  let test_ntt_roundtrip () =
    List.iter
      (fun n ->
        let c = random_poly n in
        Alcotest.(check bool)
          (Printf.sprintf "intt . ntt = id (n=%d)" n)
          true
          (Array.for_all2 F.equal (N.intt (N.ntt c)) c))
      [ 1; 2; 4; 16; 64; 256 ]

  let test_ntt_is_evaluation () =
    (* ntt must agree with naive evaluation at the root powers *)
    let n = 16 in
    let c = random_poly n in
    let w = F.root_of_unity 4 in
    let vals = N.ntt c in
    let x = ref F.one in
    for j = 0 to n - 1 do
      Alcotest.(check bool) (Printf.sprintf "value at w^%d" j) true
        (F.equal vals.(j) (P.eval c !x));
      x := F.mul !x w
    done

  let test_ntt_mul_vs_naive () =
    for _ = 1 to 15 do
      let p = random_poly (1 + Rng.int_below rng 40) in
      let q = random_poly (1 + Rng.int_below rng 40) in
      Alcotest.(check bool) "products agree" true
        (P.equal (N.mul p q) (P.mul_naive p q))
    done

  let test_ntt_bad_size () =
    Alcotest.check_raises "non power of two"
      (Invalid_argument "Ntt.transform: size must be a power of two") (fun () ->
        ignore (N.ntt (random_poly 3)))

  let test_ntt_plan_vs_uncached () =
    (* The plan-cached transforms must agree exactly with the direct
       per-stage-twiddle path, element for element. *)
    List.iter
      (fun n ->
        let c = random_poly n in
        Alcotest.(check bool)
          (Printf.sprintf "ntt plan = uncached (n=%d)" n)
          true
          (Array.for_all2 F.equal (N.ntt c) (N.ntt_uncached c));
        let v = random_poly n in
        Alcotest.(check bool)
          (Printf.sprintf "intt plan = uncached (n=%d)" n)
          true
          (Array.for_all2 F.equal (N.intt v) (N.intt_uncached v)))
      [ 1; 2; 8; 64; 512; 4096 ];
    for _ = 1 to 10 do
      let p = random_poly (1 + Rng.int_below rng 50) in
      let q = random_poly (1 + Rng.int_below rng 50) in
      Alcotest.(check bool) "mul plan = uncached" true
        (P.equal (N.mul p q) (N.mul_uncached p q))
    done

  let test_ntt_mul_shapes () =
    (* size-1 operands and non-power-of-two product lengths *)
    let a = F.random rng and b = F.random rng in
    let r = N.mul [| a |] [| b |] in
    Alcotest.(check int) "1x1 length" 1 (Array.length r);
    Alcotest.(check bool) "1x1 product" true (F.equal r.(0) (F.mul a b));
    Alcotest.(check int) "empty left" 0 (Array.length (N.mul [||] [| a |]));
    Alcotest.(check int) "empty right" 0 (Array.length (N.mul [| a |] [||]));
    List.iter
      (fun (lp, lq) ->
        let p = random_poly lp and q = random_poly lq in
        let r = N.mul p q in
        Alcotest.(check int)
          (Printf.sprintf "product length (%d,%d)" lp lq)
          (lp + lq - 1) (Array.length r);
        Alcotest.(check bool)
          (Printf.sprintf "matches naive (%d,%d)" lp lq)
          true
          (P.equal r (P.mul_naive p q)))
      [ (1, 6); (3, 5); (9, 17); (33, 31); (40, 25) ]

  let sqr_times x k =
    let r = ref x in
    for _ = 1 to k do
      r := F.mul !r !r
    done;
    !r

  let test_two_adicity_boundary () =
    (* root_of_unity k must have exact multiplicative order 2^k, up to and
       including the field's two-adicity (27 for BabyBear: the derived
       root's order is what keeps boundary-sized transforms sound). *)
    List.iter
      (fun k ->
        if k >= 1 && k <= F.two_adicity then begin
          let r = F.root_of_unity k in
          let half = sqr_times r (k - 1) in
          Alcotest.(check bool)
            (Printf.sprintf "root_of_unity %d squared %d times = -1" k (k - 1))
            true
            (F.equal half (F.neg F.one));
          Alcotest.(check bool)
            (Printf.sprintf "root_of_unity %d has order 2^%d" k k)
            true
            (F.is_one (F.mul half half))
        end)
      [ 1; 2; F.two_adicity - 1; F.two_adicity ];
    Alcotest.check_raises "beyond two-adicity"
      (Invalid_argument (F.name ^ ".root_of_unity: out of range"))
      (fun () -> ignore (F.root_of_unity (F.two_adicity + 1)));
    (* a deep transform adjacent to the practical boundary, on both paths *)
    let n = 1 lsl Stdlib.min F.two_adicity 13 in
    let c = random_poly n in
    let v = N.ntt c in
    Alcotest.(check bool)
      (Printf.sprintf "deep roundtrip (n=%d)" n)
      true
      (Array.for_all2 F.equal (N.intt v) c);
    Alcotest.(check bool)
      (Printf.sprintf "deep plan = uncached (n=%d)" n)
      true
      (Array.for_all2 F.equal v (N.ntt_uncached c))

  let test_roots_eval () =
    List.iter
      (fun n ->
        let values = random_poly n in
        let coeffs = N.intt values in
        let rec fresh_r () =
          let r = F.random rng in
          if R.r_collides ~n r then fresh_r () else r
        in
        let r = fresh_r () in
        let ctx = R.create ~n ~r in
        Alcotest.(check bool)
          (Printf.sprintf "matches interpolate-then-eval (n=%d)" n)
          true
          (F.equal (R.eval ctx values) (P.eval coeffs r)))
      [ 2; 8; 32; 128 ]

  let test_roots_eval_rejects_grid_point () =
    let w = F.root_of_unity 3 in
    Alcotest.(check bool) "collision detected" true (R.r_collides ~n:8 (F.pow w 3));
    Alcotest.check_raises "create refuses grid point"
      (Invalid_argument "Roots_eval.create: r lies on the evaluation grid")
      (fun () -> ignore (R.create ~n:8 ~r:(F.pow w 5)))

  let tests =
    [
      Alcotest.test_case (F.name ^ ": horner" ) `Quick test_eval_horner;
      Alcotest.test_case (F.name ^ ": degree/normalize") `Quick test_degree_normalize;
      Alcotest.test_case (F.name ^ ": add/sub/scale") `Quick test_add_sub_scale;
      Alcotest.test_case (F.name ^ ": mul naive") `Quick test_mul_naive;
      Alcotest.test_case (F.name ^ ": lagrange") `Quick test_lagrange;
      Alcotest.test_case (F.name ^ ": batch invert") `Quick test_batch_invert;
      Alcotest.test_case (F.name ^ ": ntt roundtrip") `Quick test_ntt_roundtrip;
      Alcotest.test_case (F.name ^ ": ntt = evaluation") `Quick test_ntt_is_evaluation;
      Alcotest.test_case (F.name ^ ": ntt mul vs naive") `Quick test_ntt_mul_vs_naive;
      Alcotest.test_case (F.name ^ ": ntt size check") `Quick test_ntt_bad_size;
      Alcotest.test_case (F.name ^ ": ntt plan vs uncached") `Quick
        test_ntt_plan_vs_uncached;
      Alcotest.test_case (F.name ^ ": ntt mul shapes") `Quick
        test_ntt_mul_shapes;
      Alcotest.test_case (F.name ^ ": two-adicity boundary") `Quick
        test_two_adicity_boundary;
      Alcotest.test_case (F.name ^ ": fixed-point eval ctx") `Quick test_roots_eval;
      Alcotest.test_case (F.name ^ ": eval ctx grid guard") `Quick
        test_roots_eval_rejects_grid_point;
    ]
end

module S1 = Suite (Babybear)
module S2 = Suite (F87)
module S3 = Suite (F265)

let () =
  Alcotest.run "poly"
    [
      ("babybear", S1.tests); ("f87", S2.tests); ("f265", S3.tests);
    ]

(* SNIP tests — the paper's §4 and Appendix D.

   Correctness: honest clients are always accepted, over several fields,
   circuit shapes and server counts. Soundness: a battery of cheating
   strategies (bad inputs, tampered proof components, malformed Beaver
   triples, post-hoc share tampering) must all be rejected. Zero-knowledge:
   statistical sanity checks that the values servers exchange are
   independent of the client's input. *)

module Rng = Prio_crypto.Rng
open Prio_field

module Suite (F : Field_intf.S) = struct
  module S = Prio_snip.Snip.Make (F)
  module M = Prio_snip.Mpc.Make (F)
  module C = S.C
  module Sh = Prio_share.Share.Make (F)

  let rng = Rng.of_string_seed ("snip-tests-" ^ F.name)

  let bits_circuit l =
    let b = C.Builder.create ~num_inputs:l in
    for i = 0 to l - 1 do
      C.Builder.assert_bit b (C.Builder.input b i)
    done;
    C.Builder.build b

  (* affine-only circuit: x0 + 2*x1 = x2, no mul gates *)
  let affine_circuit () =
    let b = C.Builder.create ~num_inputs:3 in
    let lhs =
      C.Builder.add b (C.Builder.input b 0)
        (C.Builder.scale b F.two (C.Builder.input b 1))
    in
    C.Builder.assert_zero b (C.Builder.sub b lhs (C.Builder.input b 2));
    C.Builder.build b

  let random_bits l = Array.init l (fun _ -> F.of_int (Rng.int_below rng 2))

  let test_grid_sizes () =
    Alcotest.(check int) "M=0 grid" 0 (S.grid_size (affine_circuit ()));
    Alcotest.(check int) "M=1 grid" 2 (S.grid_size (bits_circuit 1));
    Alcotest.(check int) "M=3 grid" 4 (S.grid_size (bits_circuit 3));
    Alcotest.(check int) "M=4 grid" 8 (S.grid_size (bits_circuit 4));
    Alcotest.(check int) "M=7 grid" 8 (S.grid_size (bits_circuit 7));
    Alcotest.(check int) "proof elements M=7" (2 + 16 + 3)
      (S.proof_num_elements (bits_circuit 7));
    Alcotest.(check int) "proof elements M=0" 0
      (S.proof_num_elements (affine_circuit ()))

  let test_completeness () =
    List.iter
      (fun (l, s) ->
        let circuit = bits_circuit l in
        let ctx = S.make_batch_ctx ~rng ~circuit ~num_servers:s in
        for _ = 1 to 5 do
          let x = random_bits l in
          let subs = S.prove ~rng ~circuit ~num_servers:s ~inputs:x in
          Alcotest.(check bool)
            (Printf.sprintf "accepts honest (l=%d s=%d)" l s)
            true
            (S.verify_all ctx subs)
        done)
      [ (1, 2); (1, 5); (4, 2); (13, 3); (32, 5); (100, 2) ]

  let test_completeness_affine () =
    let circuit = affine_circuit () in
    let ctx = S.make_batch_ctx ~rng ~circuit ~num_servers:3 in
    let good = [| F.of_int 5; F.of_int 7; F.of_int 19 |] in
    let subs = S.prove ~rng ~circuit ~num_servers:3 ~inputs:good in
    Alcotest.(check bool) "affine honest accepted" true (S.verify_all ctx subs);
    let bad = [| F.of_int 5; F.of_int 7; F.of_int 18 |] in
    let subs = S.prove ~rng ~circuit ~num_servers:3 ~inputs:bad in
    Alcotest.(check bool) "affine violation rejected" false (S.verify_all ctx subs)

  let test_batch_ctx_reuse () =
    (* one context must serve a whole batch, mixing honest and cheating *)
    let circuit = bits_circuit 8 in
    let ctx = S.make_batch_ctx ~rng ~circuit ~num_servers:4 in
    for i = 1 to 20 do
      let x = random_bits 8 in
      let honest = i mod 3 <> 0 in
      if not honest then x.(0) <- F.of_int 5;
      let subs = S.prove ~rng ~circuit ~num_servers:4 ~inputs:x in
      Alcotest.(check bool) (Printf.sprintf "submission %d" i) honest
        (S.verify_all ctx subs)
    done

  let test_soundness_bad_input () =
    let circuit = bits_circuit 10 in
    let ctx = S.make_batch_ctx ~rng ~circuit ~num_servers:3 in
    for _ = 1 to 10 do
      let x = random_bits 10 in
      x.(Rng.int_below rng 10) <- F.add F.two (F.random rng);
      (* could be a bit again by chance: skip if so *)
      let bad = not (C.valid circuit ~inputs:x) in
      if bad then begin
        let subs = S.prove ~rng ~circuit ~num_servers:3 ~inputs:x in
        Alcotest.(check bool) "rejects invalid input" false (S.verify_all ctx subs)
      end
    done

  let test_soundness_tampered_proof () =
    let circuit = bits_circuit 9 in
    let ctx = S.make_batch_ctx ~rng ~circuit ~num_servers:3 in
    let fresh () =
      S.prove ~rng ~circuit ~num_servers:3 ~inputs:(random_bits 9)
    in
    (* each tamper mutates server 0's share so the *sum* is wrong *)
    let tampering =
      [
        ( "h point",
          fun subs ->
            subs.(0).S.proof.S.h_points.(5) <-
              F.add subs.(0).S.proof.S.h_points.(5) F.one );
        ( "f0 mask",
          fun subs ->
            subs.(0) <-
              { (subs.(0)) with
                S.proof = { (subs.(0).S.proof) with S.f0 = F.add subs.(0).S.proof.S.f0 F.one } } );
        ( "g0 mask",
          fun subs ->
            subs.(0) <-
              { (subs.(0)) with
                S.proof = { (subs.(0).S.proof) with S.g0 = F.add subs.(0).S.proof.S.g0 F.one } } );
        ( "triple c",
          fun subs ->
            subs.(0) <-
              { (subs.(0)) with
                S.proof = { (subs.(0).S.proof) with S.c = F.add subs.(0).S.proof.S.c F.one } } );
        ( "triple a",
          fun subs ->
            subs.(0) <-
              { (subs.(0)) with
                S.proof = { (subs.(0).S.proof) with S.a = F.add subs.(0).S.proof.S.a (F.random rng) } } );
        ( "x share",
          fun subs -> subs.(0).S.x_share.(3) <- F.add subs.(0).S.x_share.(3) F.one );
      ]
    in
    List.iter
      (fun (name, tamper) ->
        (* a tamper can pass only with negligible probability; run 5 trials *)
        for _ = 1 to 5 do
          let subs = fresh () in
          tamper subs;
          Alcotest.(check bool) ("rejects tampered " ^ name) false
            (S.verify_all ctx subs)
        done)
      tampering

  let test_soundness_zero_proof () =
    (* a lazy cheater sending all-zero proof material with a bad input *)
    let circuit = bits_circuit 6 in
    let ctx = S.make_batch_ctx ~rng ~circuit ~num_servers:2 in
    let x = Array.make 6 (F.of_int 3) in
    let x_shares = Sh.split_vector rng ~s:2 x in
    let n = S.grid_size circuit in
    let zero_proof =
      { S.f0 = F.zero; g0 = F.zero; h_points = Array.make (2 * n) F.zero;
        a = F.zero; b = F.zero; c = F.zero }
    in
    let subs =
      Array.map (fun x_share -> { S.x_share; proof = zero_proof }) x_shares
    in
    Alcotest.(check bool) "rejects zero proof" false (S.verify_all ctx subs)

  let test_vector_roundtrip () =
    let circuit = bits_circuit 5 in
    let x = random_bits 5 in
    let subs = S.prove ~rng ~circuit ~num_servers:3 ~inputs:x in
    Array.iter
      (fun sub ->
        let v = S.vector_of_submission sub in
        let sub' = S.submission_of_vector circuit v in
        Alcotest.(check bool) "x roundtrip" true
          (Array.for_all2 F.equal sub.S.x_share sub'.S.x_share);
        Alcotest.(check bool) "h roundtrip" true
          (Array.for_all2 F.equal sub.S.proof.S.h_points sub'.S.proof.S.h_points);
        Alcotest.(check bool) "triple roundtrip" true
          (F.equal sub.S.proof.S.c sub'.S.proof.S.c))
      subs;
    Alcotest.(check bool) "bad length rejected" true
      (match S.submission_of_vector circuit [| F.one |] with
      | exception Invalid_argument _ -> true
      | _ -> false)

  (* Zero-knowledge sanity: the openings (d, e) that hit the wire must look
     uniform and, in particular, must not depend on the client's input. We
     run the protocol on the all-zeros and all-ones inputs many times and
     check all observed d values are distinct (they are masked by the fresh
     random a each run). *)
  let test_zk_openings_masked () =
    let circuit = bits_circuit 8 in
    let ctx = S.make_batch_ctx ~rng ~circuit ~num_servers:2 in
    let observe inputs =
      let subs = S.prove ~rng ~circuit ~num_servers:2 ~inputs in
      let states = Array.map (S.server_prepare ctx) subs in
      let d =
        Array.fold_left (fun acc (_, o) -> F.add acc o.S.d) F.zero states
      in
      Alcotest.(check bool) "accepts" true (S.verify_all ctx subs);
      F.to_string d
    in
    let seen = Hashtbl.create 64 in
    for _ = 1 to 20 do
      Hashtbl.replace seen (observe (Array.make 8 F.zero)) ();
      Hashtbl.replace seen (observe (Array.make 8 F.one)) ()
    done;
    Alcotest.(check int) "all openings distinct" 40 (Hashtbl.length seen)

  (* With randomized f(0)/g(0) the share of f(r) held by one server is
     uniform; check spread. *)
  let test_zk_share_spread () =
    let circuit = bits_circuit 4 in
    let ctx = S.make_batch_ctx ~rng ~circuit ~num_servers:2 in
    let seen = Hashtbl.create 64 in
    let x = [| F.one; F.zero; F.one; F.one |] in
    for _ = 1 to 30 do
      let subs = S.prove ~rng ~circuit ~num_servers:2 ~inputs:x in
      let st, _ = S.server_prepare ctx subs.(0) in
      Hashtbl.replace seen (F.to_string st.S.fr) ()
    done;
    Alcotest.(check int) "f(r) shares distinct" 30 (Hashtbl.length seen)

  (* ------------------------- reference SNIP ------------------------- *)

  module Ref = Prio_snip.Reference.Make (F)

  (* The paper-literal construction (Lagrange on points 0..M, coefficient-
     form h) must agree with the optimized NTT/fixed-point path on both
     acceptance and rejection. *)
  let test_reference_cross_check () =
    List.iter
      (fun l ->
        let circuit = bits_circuit l in
        let ctx = S.make_batch_ctx ~rng ~circuit ~num_servers:3 in
        for _ = 1 to 5 do
          let x = random_bits l in
          let honest = Rng.bool rng in
          if not honest then x.(Rng.int_below rng l) <- F.of_int 7;
          let opt = S.verify_all ctx (S.prove ~rng ~circuit ~num_servers:3 ~inputs:x) in
          let ref_ =
            Ref.verify ~rng circuit (Ref.prove ~rng ~circuit ~num_servers:3 ~inputs:x)
          in
          Alcotest.(check bool) "optimized = paper-literal" opt ref_;
          Alcotest.(check bool) "both match ground truth" (C.valid circuit ~inputs:x) opt
        done)
      [ 1; 3; 8 ]

  let test_reference_affine () =
    let circuit = affine_circuit () in
    let good = [| F.of_int 5; F.of_int 7; F.of_int 19 |] in
    Alcotest.(check bool) "affine accepted" true
      (Ref.verify ~rng circuit (Ref.prove ~rng ~circuit ~num_servers:2 ~inputs:good));
    let bad = [| F.of_int 5; F.of_int 7; F.of_int 18 |] in
    Alcotest.(check bool) "affine rejected" false
      (Ref.verify ~rng circuit (Ref.prove ~rng ~circuit ~num_servers:2 ~inputs:bad))

  (* ----------------------------- Prio-MPC --------------------------- *)

  let test_mpc_eval_matches_plain () =
    for _ = 1 to 10 do
      let l = 1 + Rng.int_below rng 10 in
      let circuit = bits_circuit l in
      let x = random_bits l in
      let s = 2 + Rng.int_below rng 3 in
      let xs = Sh.split_vector rng ~s x in
      let m = C.num_mul_gates circuit in
      let triples = M.gen_triples ~rng ~s ~m in
      let wires, stats = M.eval circuit ~inputs:xs ~triples in
      let plain = C.eval_wires circuit ~inputs:x in
      Array.iteri
        (fun w expected ->
          let total =
            Array.fold_left (fun acc sw -> F.add acc sw.(w)) F.zero wires
          in
          Alcotest.(check bool) "wire matches" true (F.equal total expected))
        plain;
      Alcotest.(check int) "one round per mul" m stats.M.rounds;
      Alcotest.(check int) "broadcast elements" (2 * m)
        stats.M.elements_broadcast_per_server
    done

  let test_mpc_decide () =
    let circuit = bits_circuit 7 in
    let m = C.num_mul_gates circuit in
    let run x =
      let xs = Sh.split_vector rng ~s:3 x in
      let triples = M.gen_triples ~rng ~s:3 ~m in
      let wires, _ = M.eval circuit ~inputs:xs ~triples in
      M.decide ~rng circuit wires
    in
    Alcotest.(check bool) "valid accepted" true (run (random_bits 7));
    let bad = random_bits 7 in
    bad.(2) <- F.of_int 5;
    Alcotest.(check bool) "invalid rejected" false (run bad)

  let test_mpc_triple_circuit () =
    let m = 6 in
    let tc = M.triple_circuit ~m in
    Alcotest.(check int) "inputs" (3 * m) (C.num_inputs tc);
    Alcotest.(check int) "mul gates" m (C.num_mul_gates tc);
    (* valid triples accepted, broken ones rejected *)
    let a = Array.init m (fun _ -> F.random rng) in
    let b = Array.init m (fun _ -> F.random rng) in
    let c = Array.map2 F.mul a b in
    let good = Array.concat [ a; b; c ] in
    Alcotest.(check bool) "good triples" true (C.valid tc ~inputs:good);
    let bad = Array.copy good in
    bad.((2 * m) + 3) <- F.add bad.((2 * m) + 3) F.one;
    Alcotest.(check bool) "bad triples" false (C.valid tc ~inputs:bad);
    (* and the SNIP over the triple circuit enforces it end-to-end *)
    let ctx = S.make_batch_ctx ~rng ~circuit:tc ~num_servers:2 in
    let subs = S.prove ~rng ~circuit:tc ~num_servers:2 ~inputs:good in
    Alcotest.(check bool) "snip accepts good triples" true (S.verify_all ctx subs);
    let subs = S.prove ~rng ~circuit:tc ~num_servers:2 ~inputs:bad in
    Alcotest.(check bool) "snip rejects bad triples" false (S.verify_all ctx subs)

  let tests =
    [
      Alcotest.test_case (F.name ^ ": grid sizes") `Quick test_grid_sizes;
      Alcotest.test_case (F.name ^ ": completeness") `Quick test_completeness;
      Alcotest.test_case (F.name ^ ": affine circuits") `Quick test_completeness_affine;
      Alcotest.test_case (F.name ^ ": batch reuse") `Quick test_batch_ctx_reuse;
      Alcotest.test_case (F.name ^ ": rejects bad input") `Quick test_soundness_bad_input;
      Alcotest.test_case (F.name ^ ": rejects tampered proofs") `Quick
        test_soundness_tampered_proof;
      Alcotest.test_case (F.name ^ ": rejects zero proof") `Quick test_soundness_zero_proof;
      Alcotest.test_case (F.name ^ ": vector roundtrip") `Quick test_vector_roundtrip;
      Alcotest.test_case (F.name ^ ": zk openings masked") `Quick test_zk_openings_masked;
      Alcotest.test_case (F.name ^ ": zk share spread") `Quick test_zk_share_spread;
      Alcotest.test_case (F.name ^ ": reference cross-check") `Quick
        test_reference_cross_check;
      Alcotest.test_case (F.name ^ ": reference affine") `Quick test_reference_affine;
      Alcotest.test_case (F.name ^ ": mpc eval") `Quick test_mpc_eval_matches_plain;
      Alcotest.test_case (F.name ^ ": mpc decide") `Quick test_mpc_decide;
      Alcotest.test_case (F.name ^ ": mpc triple circuit") `Quick test_mpc_triple_circuit;
    ]
end

module S1 = Suite (Babybear)
module S2 = Suite (F87)
module S3 = Suite (F265)

(* --------------- property: random circuits, random inputs ------------ *)

(* Build a random circuit over F87 and random inputs, then check the SNIP
   decision equals ground truth (Valid evaluated in the clear) for every
   server count in 2..5. Covers arbitrary interleavings of gate types,
   mul-gate fan-in from any earlier wire, and both accept and reject
   paths. *)
module PF = Prio_field.F87
module PS = Prio_snip.Snip.Make (PF)
module PC = PS.C

let random_circuit_case =
  let rng = Rng.of_string_seed "snip-random-circuits" in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random circuits: snip = ground truth" ~count:60
       QCheck2.Gen.unit
       (fun () ->
         let num_inputs = 1 + Rng.int_below rng 6 in
         let b = PC.Builder.create ~num_inputs in
         let wires = ref (List.init num_inputs (fun i -> PC.Builder.input b i)) in
         let pick () = List.nth !wires (Rng.int_below rng (List.length !wires)) in
         for _ = 1 to 2 + Rng.int_below rng 15 do
           let w =
             match Rng.int_below rng 6 with
             | 0 -> PC.Builder.add b (pick ()) (pick ())
             | 1 -> PC.Builder.sub b (pick ()) (pick ())
             | 2 -> PC.Builder.mul b (pick ()) (pick ())
             | 3 -> PC.Builder.scale b (PF.of_int (Rng.int_below rng 50)) (pick ())
             | 4 -> PC.Builder.add_const b (PF.of_int (Rng.int_below rng 50)) (pick ())
             | _ -> PC.Builder.const b (PF.of_int (Rng.int_below rng 50))
           in
           wires := w :: !wires
         done;
         (* a couple of assert-zero constraints over random wire pairs: the
            difference of a wire with itself is always satisfiable; also an
            often-unsatisfied random constraint *)
         let w = pick () in
         PC.Builder.assert_zero b (PC.Builder.sub b w w);
         if Rng.bool rng then PC.Builder.assert_zero b (pick ());
         let circuit = PC.Builder.build b in
         let inputs =
           Array.init num_inputs (fun _ -> PF.of_int (Rng.int_below rng 4))
         in
         let truth = PC.valid circuit ~inputs in
         List.for_all
           (fun s ->
             let ctx = PS.make_batch_ctx ~rng ~circuit ~num_servers:s in
             let subs = PS.prove ~rng ~circuit ~num_servers:s ~inputs in
             PS.verify_all ctx subs = truth)
           [ 2; 3; 5 ]))

(* --------------------- operation counts (Table 2) -------------------- *)

module CF = Counting.Make (Babybear)
module CS = Prio_snip.Snip.Make (CF)

(* Empirically confirm Table 2's asymptotic rows: the SNIP prover performs
   Θ(M log M) field multiplications (and no group exponentiations at all —
   there is no group in sight), and verification per server is Θ(M). *)
let test_table2_op_counts () =
  let rng = Rng.of_string_seed "table2-ops" in
  let prove_muls m =
    let b = CS.C.Builder.create ~num_inputs:m in
    for i = 0 to m - 1 do
      CS.C.Builder.assert_bit b (CS.C.Builder.input b i)
    done;
    let circuit = CS.C.Builder.build b in
    let inputs = Array.init m (fun _ -> CF.of_int (Prio_crypto.Rng.int_below rng 2)) in
    CF.reset ();
    ignore (CS.prove ~rng ~circuit ~num_servers:2 ~inputs);
    Counting.(CF.stats.muls)
  in
  let m1 = prove_muls 64 and m2 = prove_muls 256 and m3 = prove_muls 1024 in
  (* quadrupling M must grow the mul count by ~4x-5x (M log M), never ~16x
     (M^2): allow [3.5, 7] per quadrupling *)
  let ratio a b = float_of_int b /. float_of_int a in
  Alcotest.(check bool)
    (Printf.sprintf "64->256 ratio %.1f in M log M band" (ratio m1 m2))
    true
    (ratio m1 m2 > 3.5 && ratio m1 m2 < 7.);
  Alcotest.(check bool)
    (Printf.sprintf "256->1024 ratio %.1f in M log M band" (ratio m2 m3))
    true
    (ratio m2 m3 > 3.5 && ratio m2 m3 < 7.)

let () =
  Alcotest.run "snip"
    [
      ("babybear", S1.tests); ("f87", S2.tests); ("f265", S3.tests);
      ( "op-counts",
        [ Alcotest.test_case "prover is O(M log M) muls" `Quick test_table2_op_counts ] );
      ("properties", [ random_circuit_case ]);
    ]

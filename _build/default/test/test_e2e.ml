(* End-to-end scenarios through the one-call `Prio` facade, mirroring the
   paper's §6.2 application domains: anonymous surveys, health-data
   regression, cell-signal histograms, and browser statistics — each run
   through the full pipeline (encode → PRG-compressed shares → SNIP →
   sealed packets → verification → aggregation → decode). *)

open Core

module P87 = Prio.Make (Prio.F87)
module P265 = Prio.Make (Prio.F265)
module Pbb = Prio.Make (Prio.Babybear)

let rng () = Prio.Rng.of_string_seed "e2e-tests"

(* ----------------------- simple sum, all fields ---------------------- *)

let test_sum_across_fields () =
  (* F87 *)
  let d = P87.deploy ~rng:(rng ()) ~num_servers:3 (P87.Afe_sum.sum ~bits:8) in
  let total, stats = P87.collect d [ 10; 20; 30; 40 ] in
  Alcotest.(check string) "f87 total" "100" (Prio.Bigint.to_string total);
  Alcotest.(check int) "f87 accepted" 4 stats.P87.accepted;
  (* F265 *)
  let d = P265.deploy ~rng:(rng ()) ~num_servers:3 (P265.Afe_sum.sum ~bits:8) in
  let total, _ = P265.collect d [ 10; 20; 30; 40 ] in
  Alcotest.(check string) "f265 total" "100" (Prio.Bigint.to_string total);
  (* BabyBear *)
  let d = Pbb.deploy ~rng:(rng ()) ~num_servers:3 (Pbb.Afe_sum.sum ~bits:8) in
  let total, _ = Pbb.collect d [ 10; 20; 30; 40 ] in
  Alcotest.(check string) "babybear total" "100" (Prio.Bigint.to_string total)

(* --------------------------- survey (§6.2) --------------------------- *)

(* A Beck-Depression-Inventory-style survey: 21 questions on a 1–4 scale,
   collected as 21 parallel histograms. One deployment per question would
   also work; we use a single histogram AFE over question × answer. *)
let test_survey () =
  let questions = 21 and scale = 4 in
  let afe = P87.Afe_histogram.histogram ~buckets:(questions * scale) in
  let d = P87.deploy ~rng:(rng ()) ~num_servers:5 afe in
  (* each respondent answers question (i mod questions) with answer i mod 4 *)
  let responses = List.init 50 (fun i -> ((i mod questions) * scale) + (i mod scale)) in
  let counts, stats = P87.collect d responses in
  Alcotest.(check int) "all respondents counted" 50
    (Array.fold_left ( + ) 0 counts);
  Alcotest.(check int) "none rejected" 0 stats.P87.rejected

(* ----------------------- health regression (§6.3) -------------------- *)

let test_health_regression () =
  let d_features = 3 and bits = 10 in
  let afe = P265.Afe_regression.least_squares ~d:d_features ~bits in
  let d = P265.deploy ~rng:(rng ()) ~num_servers:5 afe in
  (* synthetic "steps vs blood pressure" style data: exact linear relation *)
  let examples =
    List.init 30 (fun i ->
        let x1 = (i * 11) mod 200 and x2 = (i * 7) mod 100 and x3 = i mod 50 in
        P265.Afe_regression.
          { features = [| x1; x2; x3 |]; target = 40 + x1 + (2 * x2) + (3 * x3) })
  in
  let coefs, stats = P265.collect d examples in
  Alcotest.(check int) "all accepted" 30 stats.P265.accepted;
  Alcotest.(check (float 1e-5)) "intercept" 40. coefs.(0);
  Alcotest.(check (float 1e-5)) "c1" 1. coefs.(1);
  Alcotest.(check (float 1e-5)) "c2" 2. coefs.(2);
  Alcotest.(check (float 1e-5)) "c3" 3. coefs.(3)

(* ------------------------ cell signal (§6.2) ------------------------- *)

let test_cell_signal () =
  (* 8×8 grid, 4-bit signal strength: average per cell via one histogram of
     cells plus a sum of signal values per cell. Here we aggregate the
     distribution of (cell, strength) pairs. *)
  let cells = 16 and levels = 16 in
  let afe = P87.Afe_histogram.histogram ~buckets:(cells * levels) in
  let d = P87.deploy ~rng:(rng ()) ~num_servers:5 afe in
  let readings = List.init 64 (fun i -> ((i mod cells) * levels) + (i * 3 mod levels)) in
  let counts, _ = P87.collect d readings in
  Alcotest.(check int) "readings counted" 64 (Array.fold_left ( + ) 0 counts)

(* ----------------------- browser stats (App. G) ---------------------- *)

let test_browser_stats () =
  let params = P87.Afe_countmin.{ depth = 4; width = 20 } in
  let afe = P87.Afe_countmin.count_min ~params in
  let d = P87.deploy ~rng:(rng ()) ~num_servers:3 afe in
  let visits =
    List.concat
      [ List.init 12 (fun _ -> "https://popular.example");
        List.init 4 (fun _ -> "https://rare.example") ]
  in
  let sk, stats = P87.collect d visits in
  Alcotest.(check int) "accepted" 16 stats.P87.accepted;
  let est = P87.Afe_countmin.query sk "https://popular.example" in
  Alcotest.(check bool) "popular count sane" true (est >= 12 && est <= 16)

(* -------------------- malicious client quarantine -------------------- *)

let test_malicious_client_mixed_in () =
  let afe = P87.Afe_sum.sum ~bits:4 in
  let d = P87.deploy ~rng:(rng ()) ~num_servers:3 afe in
  Alcotest.(check bool) "ok 1" true (P87.submit d 5);
  (* a malicious client submits an over-range encoding directly *)
  let bad_enc = afe.P87.Afe.encode ~rng:(rng ()) 3 in
  bad_enc.(0) <- P87.Field.of_int 15_000;
  let pk =
    P87.Client.submit ~rng:(rng ())
      ~mode:(P87.Cluster.client_mode d.P87.cluster)
      ~num_servers:3 ~client_id:77 ~master:d.P87.cluster.P87.Cluster.master
      bad_enc
  in
  Alcotest.(check bool) "cheater rejected" false
    (P87.Cluster.submit d.P87.cluster ~client_id:77 pk);
  Alcotest.(check bool) "ok 2" true (P87.submit d 7);
  let total, stats = P87.publish d in
  Alcotest.(check string) "only honest values" "12" (Prio.Bigint.to_string total);
  Alcotest.(check int) "one rejection" 1 stats.P87.rejected

(* -------------------------- DP integration --------------------------- *)

let test_dp_collection () =
  let afe = P87.Afe_sum.sum ~bits:4 in
  let d = P87.deploy ~rng:(rng ()) ~num_servers:5 afe in
  let alpha = Prio.Dp.alpha_of_epsilon ~epsilon:1.0 ~sensitivity:15 in
  let total, _ = P87.collect ~dp_alpha:alpha d (List.init 40 (fun i -> i mod 16)) in
  let t = Prio.Bigint.to_int_exn total in
  (* true total = 40/16 groups: sum_{i<40} (i mod 16) = 2*120 + 0+..+7 = 268 *)
  Alcotest.(check bool)
    (Printf.sprintf "noised total near 268 (got %d)" t)
    true
    (abs (t - 268) < 400)

(* --------------------- intersection attack (§7) ---------------------- *)

(* The attack the paper's DP extension defends against: observe the exact
   aggregate with and without one client; the difference is that client's
   value. With server-added noise the difference is smeared. *)
let test_intersection_attack_and_defense () =
  let afe = P87.Afe_sum.sum ~bits:4 in
  let population = List.init 30 (fun i -> (i * 7) mod 16) in
  let victim = 13 in
  let run ?dp_alpha ~seed values =
    let d =
      P87.deploy ~rng:(Prio.Rng.of_string_seed ("intersection-" ^ seed))
        ~num_servers:3 afe
    in
    let total, _ = P87.collect ?dp_alpha d values in
    Prio.Bigint.to_int_exn total
  in
  (* exact aggregates: the adversary recovers the victim's value exactly *)
  let with_victim = run ~seed:"a" (victim :: population) in
  let without_victim = run ~seed:"b" population in
  Alcotest.(check int) "exact outputs leak the victim" victim
    (with_victim - without_victim);
  (* with distributed DP noise the two runs rarely differ by exactly the
     victim's value; across several epochs the recovered guesses scatter *)
  let alpha = Prio.Dp.alpha_of_epsilon ~epsilon:0.2 ~sensitivity:15 in
  let guesses =
    List.init 12 (fun i ->
        run ~dp_alpha:alpha ~seed:(Printf.sprintf "w%d" i) (victim :: population)
        - run ~dp_alpha:alpha ~seed:(Printf.sprintf "o%d" i) population)
  in
  let distinct = List.sort_uniq compare guesses in
  Alcotest.(check bool)
    (Printf.sprintf "noised guesses scatter (%d distinct)" (List.length distinct))
    true
    (List.length distinct > 3)

(* ----------------------------- MPC mode ------------------------------ *)

let test_mpc_deployment () =
  let afe = P87.Afe_sum.sum ~bits:4 in
  let d =
    P87.deploy ~mode:P87.Cluster.Robust_mpc ~rng:(rng ()) ~num_servers:3 afe
  in
  let total, stats = P87.collect d [ 1; 2; 3; 4 ] in
  Alcotest.(check string) "mpc total" "10" (Prio.Bigint.to_string total);
  Alcotest.(check int) "accepted" 4 stats.P87.accepted

let () =
  Alcotest.run "e2e"
    [
      ( "scenarios",
        [
          Alcotest.test_case "sum across fields" `Quick test_sum_across_fields;
          Alcotest.test_case "anonymous survey" `Quick test_survey;
          Alcotest.test_case "health regression" `Quick test_health_regression;
          Alcotest.test_case "cell signal" `Quick test_cell_signal;
          Alcotest.test_case "browser stats" `Quick test_browser_stats;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "malicious client quarantined" `Quick
            test_malicious_client_mixed_in;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "differential privacy" `Quick test_dp_collection;
          Alcotest.test_case "intersection attack & defense" `Quick
            test_intersection_attack_and_defense;
          Alcotest.test_case "mpc mode" `Quick test_mpc_deployment;
        ] );
    ]

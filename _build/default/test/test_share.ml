(* Secret-sharing tests: additive reconstruction, information-hiding
   sanity, PRG compression, and Shamir threshold sharing. *)

module Rng = Prio_crypto.Rng
open Prio_field

module Suite (F : Field_intf.S) = struct
  module Sh = Prio_share.Share.Make (F)

  let rng = Rng.of_string_seed ("share-tests-" ^ F.name)

  let test_scalar_roundtrip () =
    for _ = 1 to 50 do
      let x = F.random rng in
      let s = 1 + Rng.int_below rng 9 in
      let shares = Sh.split rng ~s x in
      Alcotest.(check int) "share count" s (Array.length shares);
      Alcotest.(check bool) "reconstructs" true (F.equal (Sh.reconstruct shares) x)
    done

  let test_vector_roundtrip () =
    for _ = 1 to 20 do
      let l = Rng.int_below rng 30 in
      let v = Array.init l (fun _ -> F.random rng) in
      let s = 2 + Rng.int_below rng 5 in
      let shares = Sh.split_vector rng ~s v in
      Alcotest.(check bool) "reconstructs" true
        (Array.for_all2 F.equal (Sh.reconstruct_vector shares) v)
    done

  let test_hiding () =
    (* any s-1 shares of 0 and of 1 are identically distributed; as a cheap
       statistical proxy, check that the first share of a fixed secret looks
       uniform across many splits: all distinct with overwhelming
       probability in a large field (or at least spread out in BabyBear). *)
    let seen = Hashtbl.create 64 in
    let trials = 64 in
    for _ = 1 to trials do
      let shares = Sh.split rng ~s:3 F.one in
      Hashtbl.replace seen (F.to_string shares.(0)) ()
    done;
    Alcotest.(check bool) "first share spreads" true (Hashtbl.length seen > trials / 2)

  let test_add_into () =
    let dst = Array.make 4 F.zero in
    Sh.add_into ~dst [| F.one; F.two; F.zero; F.one |];
    Sh.add_into ~dst [| F.one; F.one; F.one; F.one |];
    Alcotest.(check bool) "accumulated" true
      (Array.for_all2 F.equal dst [| F.two; F.of_int 3; F.one; F.two |])

  let test_compressed () =
    for _ = 1 to 20 do
      let l = 1 + Rng.int_below rng 40 in
      let v = Array.init l (fun _ -> F.random rng) in
      let s = 2 + Rng.int_below rng 5 in
      let comp = Sh.split_compressed rng ~s v in
      Alcotest.(check int) "count" s (Array.length comp);
      (* first s-1 are seeds, last is explicit *)
      for i = 0 to s - 2 do
        match comp.(i) with
        | Sh.Seed b -> Alcotest.(check int) "seed size" Rng.seed_bytes (Bytes.length b)
        | Sh.Explicit _ -> Alcotest.fail "expected seed"
      done;
      (match comp.(s - 1) with
      | Sh.Explicit e -> Alcotest.(check int) "explicit length" l (Array.length e)
      | Sh.Seed _ -> Alcotest.fail "expected explicit");
      let expanded = Array.map (fun c -> Sh.expand c ~len:l) comp in
      Alcotest.(check bool) "reconstructs" true
        (Array.for_all2 F.equal (Sh.reconstruct_vector expanded) v)
    done

  let test_compressed_deterministic () =
    (* expanding the same seed twice gives the same share *)
    let seed = Rng.bytes rng Rng.seed_bytes in
    let a = Sh.expand (Sh.Seed seed) ~len:10 in
    let b = Sh.expand (Sh.Seed seed) ~len:10 in
    Alcotest.(check bool) "deterministic" true (Array.for_all2 F.equal a b)

  let test_compressed_size () =
    let v = Array.init 100 (fun _ -> F.random rng) in
    let comp = Sh.split_compressed rng ~s:5 v in
    let total = Array.fold_left (fun acc c -> acc + Sh.compressed_size c) 0 comp in
    let naive = 5 * 100 * F.bytes_len in
    Alcotest.(check bool) "~s-fold smaller than naive" true (total * 3 < naive)

  let test_shamir () =
    for _ = 1 to 20 do
      let x = F.random rng in
      let threshold = 2 + Rng.int_below rng 3 in
      let shares = 2 * threshold in
      let pts = Sh.Shamir.split rng ~threshold ~shares x in
      (* any `threshold` of the shares reconstruct *)
      let subset = Array.sub pts (Rng.int_below rng (shares - threshold)) threshold in
      Alcotest.(check bool) "threshold reconstructs" true
        (F.equal (Sh.Shamir.reconstruct subset) x);
      (* all shares also reconstruct *)
      Alcotest.(check bool) "all reconstruct" true
        (F.equal (Sh.Shamir.reconstruct pts) x)
    done

  let test_shamir_args () =
    Alcotest.check_raises "threshold > shares" (Invalid_argument "Shamir.split")
      (fun () -> ignore (Sh.Shamir.split rng ~threshold:4 ~shares:3 F.one))

  let tests =
    [
      Alcotest.test_case (F.name ^ ": scalar roundtrip") `Quick test_scalar_roundtrip;
      Alcotest.test_case (F.name ^ ": vector roundtrip") `Quick test_vector_roundtrip;
      Alcotest.test_case (F.name ^ ": hiding proxy") `Quick test_hiding;
      Alcotest.test_case (F.name ^ ": accumulate") `Quick test_add_into;
      Alcotest.test_case (F.name ^ ": compressed") `Quick test_compressed;
      Alcotest.test_case (F.name ^ ": compressed deterministic") `Quick
        test_compressed_deterministic;
      Alcotest.test_case (F.name ^ ": compression ratio") `Quick test_compressed_size;
      Alcotest.test_case (F.name ^ ": shamir") `Quick test_shamir;
      Alcotest.test_case (F.name ^ ": shamir args") `Quick test_shamir_args;
    ]
end

module S1 = Suite (Babybear)
module S2 = Suite (F87)
module S3 = Suite (F265)

(* ------------------- distributed point functions -------------------- *)

module Dpf_suite (F : Field_intf.S) = struct
  module D = Prio_share.Dpf.Make (F)

  let rng = Rng.of_string_seed ("dpf-tests-" ^ F.name)

  let test_point_function () =
    for _ = 1 to 10 do
      let bits = 2 + Rng.int_below rng 8 in
      let n = 1 lsl bits in
      let alpha = Rng.int_below rng n in
      let beta = F.random_nonzero rng in
      let k0, k1 = D.gen rng ~bits ~alpha ~beta in
      for x = 0 to n - 1 do
        let v = F.add (D.eval k0 x) (D.eval k1 x) in
        if x = alpha then
          Alcotest.(check bool) "beta at alpha" true (F.equal v beta)
        else Alcotest.(check bool) "zero elsewhere" true (F.is_zero v)
      done
    done

  let test_eval_all_matches_eval () =
    let bits = 6 in
    let k0, k1 = D.gen rng ~bits ~alpha:37 ~beta:F.one in
    let v0 = D.eval_all k0 and v1 = D.eval_all k1 in
    for x = 0 to (1 lsl bits) - 1 do
      Alcotest.(check bool) "party 0" true (F.equal v0.(x) (D.eval k0 x));
      Alcotest.(check bool) "party 1" true (F.equal v1.(x) (D.eval k1 x))
    done;
    (* the reconstructed vector is one-hot *)
    let sum = Array.map2 F.add v0 v1 in
    Array.iteri
      (fun x v ->
        Alcotest.(check bool) "one-hot" true
          (if x = 37 then F.is_one v else F.is_zero v))
      sum

  let test_compression () =
    (* the whole point: key size is logarithmic, not linear *)
    let k0, _ = D.gen rng ~bits:16 ~alpha:12345 ~beta:F.one in
    let key_size = D.key_bytes k0 in
    let explicit = (1 lsl 16) * F.bytes_len in
    Alcotest.(check bool)
      (Printf.sprintf "key %dB ≪ explicit %dB" key_size explicit)
      true
      (key_size * 100 < explicit)

  let test_single_key_hides_alpha () =
    (* statistical proxy for privacy: one party's share at the target is
       not distinguishable by value — collect shares at alpha and at a
       non-target point across fresh keys; both look random (all distinct) *)
    let seen_t = Hashtbl.create 32 and seen_o = Hashtbl.create 32 in
    for _ = 1 to 20 do
      let k0, _ = D.gen rng ~bits:5 ~alpha:7 ~beta:F.one in
      Hashtbl.replace seen_t (F.to_string (D.eval k0 7)) ();
      Hashtbl.replace seen_o (F.to_string (D.eval k0 12)) ()
    done;
    Alcotest.(check int) "target shares spread" 20 (Hashtbl.length seen_t);
    Alcotest.(check int) "off-target shares spread" 20 (Hashtbl.length seen_o)

  let test_args () =
    Alcotest.check_raises "alpha range" (Invalid_argument "Dpf.gen: alpha out of range")
      (fun () -> ignore (D.gen rng ~bits:4 ~alpha:16 ~beta:F.one));
    let k0, _ = D.gen rng ~bits:4 ~alpha:3 ~beta:F.one in
    Alcotest.check_raises "eval range" (Invalid_argument "Dpf.eval: out of domain")
      (fun () -> ignore (D.eval k0 16))

  let tests =
    [
      Alcotest.test_case (F.name ^ ": point function") `Quick test_point_function;
      Alcotest.test_case (F.name ^ ": eval_all") `Quick test_eval_all_matches_eval;
      Alcotest.test_case (F.name ^ ": compression") `Quick test_compression;
      Alcotest.test_case (F.name ^ ": key hides alpha") `Quick test_single_key_hides_alpha;
      Alcotest.test_case (F.name ^ ": argument checks") `Quick test_args;
    ]
end

module D1 = Dpf_suite (Babybear)
module D2 = Dpf_suite (F87)

let () =
  Alcotest.run "share"
    [
      ("babybear", S1.tests); ("f87", S2.tests); ("f265", S3.tests);
      ("dpf-babybear", D1.tests); ("dpf-f87", D2.tests);
    ]

(* Integration tests for the TCP deployment: one OS process per server on
   loopback sockets, clients uploading sealed packets over real
   connections, the leader driving SNIP verification over persistent
   server-to-server links. *)

module F = Prio_field.F87
module Net = Prio_proto.Net.Make (F)
module Sum = Prio_afe.Sum.Make (F)
module Hist = Prio_afe.Histogram.Make (F)
module A = Prio_afe.Afe.Make (F)
module Rng = Prio_crypto.Rng

let rng = Rng.of_string_seed "net-tests"

let with_deployment ?(num_servers = 3) afe f =
  let cfg =
    Net.
      {
        circuit = afe.A.circuit;
        trunc_len = afe.A.trunc_len;
        num_servers;
        master = Rng.bytes rng 32;
        batch_seed = Rng.bytes rng 32;
      }
  in
  let d = Net.launch cfg in
  Fun.protect ~finally:(fun () -> Net.shutdown d) (fun () -> f d)

let test_sum_end_to_end () =
  let afe = Sum.sum ~bits:4 in
  with_deployment afe (fun d ->
      List.iteri
        (fun i x ->
          Alcotest.(check bool) "accepted over TCP" true
            (Net.submit d ~rng ~client_id:i (afe.A.encode ~rng x)))
        [ 3; 7; 15; 0; 9 ];
      let total = afe.A.decode ~n:5 (Net.collect_aggregate d) in
      Alcotest.(check string) "aggregate" "34" (Prio_bigint.Bigint.to_string total))

let test_rejects_cheater () =
  let afe = Sum.sum ~bits:4 in
  with_deployment afe (fun d ->
      Alcotest.(check bool) "honest ok" true
        (Net.submit d ~rng ~client_id:0 (afe.A.encode ~rng 5));
      let bad = afe.A.encode ~rng 3 in
      bad.(0) <- F.of_int 999;
      Alcotest.(check bool) "cheater rejected over TCP" false
        (Net.submit d ~rng ~client_id:1 bad);
      let total = afe.A.decode ~n:1 (Net.collect_aggregate d) in
      Alcotest.(check string) "aggregate unpolluted" "5"
        (Prio_bigint.Bigint.to_string total))

let test_five_servers_histogram () =
  let afe = Hist.histogram ~buckets:4 in
  with_deployment ~num_servers:5 afe (fun d ->
      List.iteri
        (fun i x ->
          Alcotest.(check bool) "accepted" true
            (Net.submit d ~rng ~client_id:i (afe.A.encode ~rng x)))
        [ 0; 1; 1; 3; 3; 3 ];
      let counts = afe.A.decode ~n:6 (Net.collect_aggregate d) in
      Alcotest.(check (array int)) "histogram over TCP" [| 1; 2; 0; 3 |] counts)

let () =
  Alcotest.run "net"
    [
      ( "tcp deployment",
        [
          Alcotest.test_case "sum end-to-end" `Quick test_sum_end_to_end;
          Alcotest.test_case "rejects cheater" `Quick test_rejects_cheater;
          Alcotest.test_case "five servers histogram" `Quick test_five_servers_histogram;
        ] );
    ]

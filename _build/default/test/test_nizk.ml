(* NIZK baseline tests: Schnorr group structure, Pedersen commitments, and
   the Fiat–Shamir 0/1 OR-proofs (completeness and soundness). *)

module B = Prio_bigint.Bigint
module Rng = Prio_crypto.Rng
module G = Prio_nizk.Group
module Ped = Prio_nizk.Pedersen
module Bp = Prio_nizk.Bitproof

let rng = Rng.of_string_seed "nizk-tests"

(* ------------------------------ group ------------------------------- *)

let test_group_parameters () =
  Alcotest.(check bool) "p prime" true (B.is_probable_prime G.p);
  Alcotest.(check bool) "q prime" true (B.is_probable_prime G.q);
  Alcotest.(check bool) "p = 2q + 1" true
    (B.equal G.p (B.succ (B.shift_left G.q 1)));
  Alcotest.(check int) "p is 256-bit" 256 (B.num_bits G.p)

let test_group_orders () =
  (* g and h have order exactly q *)
  Alcotest.(check bool) "g^q = 1" true (G.equal (G.exp G.g G.q) G.one);
  Alcotest.(check bool) "g <> 1" false (G.equal G.g G.one);
  Alcotest.(check bool) "h^q = 1" true (G.equal (G.exp G.h G.q) G.one);
  Alcotest.(check bool) "h <> 1" false (G.equal G.h G.one);
  Alcotest.(check bool) "h <> g" false (G.equal G.h G.g)

let test_group_ops () =
  for _ = 1 to 20 do
    let a = G.random_exponent rng and b = G.random_exponent rng in
    let x = G.exp G.g a and y = G.exp G.g b in
    (* homomorphism *)
    Alcotest.(check bool) "g^a g^b = g^(a+b)" true
      (G.equal (G.mul x y) (G.exp G.g (B.erem (B.add a b) G.q)));
    (* inverse *)
    Alcotest.(check bool) "x x^-1 = 1" true (G.equal (G.mul x (G.inv x)) G.one)
  done

let test_challenge_deterministic () =
  let c1 = G.challenge [ Bytes.of_string "a"; Bytes.of_string "b" ] in
  let c2 = G.challenge [ Bytes.of_string "a"; Bytes.of_string "b" ] in
  let c3 = G.challenge [ Bytes.of_string "ab" ] in
  Alcotest.(check bool) "deterministic" true (B.equal c1 c2);
  Alcotest.(check bool) "in range" true (B.compare c1 G.q < 0);
  ignore c3

(* ----------------------------- pedersen ----------------------------- *)

let test_pedersen () =
  for _ = 1 to 10 do
    let v = B.of_int (Rng.int_below rng 1000) in
    let c, o = Ped.commit_fresh rng ~value:v in
    Alcotest.(check bool) "opens" true (Ped.verify c o);
    Alcotest.(check bool) "wrong value fails" false
      (Ped.verify c { o with Ped.value = B.succ v })
  done;
  (* homomorphism: C(a) * C(b) opens to a+b *)
  let c1, o1 = Ped.commit_fresh rng ~value:(B.of_int 3) in
  let c2, o2 = Ped.commit_fresh rng ~value:(B.of_int 4) in
  let combined = Ped.combine c1 c2 in
  Alcotest.(check bool) "homomorphic" true
    (Ped.verify combined
       {
         Ped.value = B.of_int 7;
         randomness = B.erem (B.add o1.Ped.randomness o2.Ped.randomness) G.q;
       })

let test_pedersen_hiding () =
  (* commitments to the same value under fresh randomness differ *)
  let c1, _ = Ped.commit_fresh rng ~value:B.one in
  let c2, _ = Ped.commit_fresh rng ~value:B.one in
  Alcotest.(check bool) "fresh randomness" false (G.equal c1 c2)

(* ----------------------------- bitproof ----------------------------- *)

let test_bitproof_completeness () =
  List.iter
    (fun bit ->
      for _ = 1 to 5 do
        let c, o = Ped.commit_fresh rng ~value:(B.of_int bit) in
        let pi = Bp.prove rng ~bit ~commitment:c ~randomness:o.Ped.randomness in
        Alcotest.(check bool) (Printf.sprintf "bit %d verifies" bit) true
          (Bp.verify c pi)
      done)
    [ 0; 1 ]

let test_bitproof_soundness () =
  (* a commitment to 2 admits no honest proof; simulate a cheater reusing a
     valid proof for a different commitment *)
  let c0, o0 = Ped.commit_fresh rng ~value:B.zero in
  let pi = Bp.prove rng ~bit:0 ~commitment:c0 ~randomness:o0.Ped.randomness in
  let c2, _ = Ped.commit_fresh rng ~value:(B.of_int 2) in
  Alcotest.(check bool) "transplanted proof fails" false (Bp.verify c2 pi);
  (* tampered responses fail *)
  let bad = { pi with Bp.z0 = B.erem (B.succ pi.Bp.z0) G.q } in
  Alcotest.(check bool) "tampered z0 fails" false (Bp.verify c0 bad);
  let bad = { pi with Bp.c0 = B.erem (B.succ pi.Bp.c0) G.q } in
  Alcotest.(check bool) "tampered c0 fails" false (Bp.verify c0 bad);
  Alcotest.(check bool) "non-bit prove refused" true
    (match Bp.prove rng ~bit:2 ~commitment:c0 ~randomness:B.zero with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_vector_submission () =
  let bits = [| 1; 0; 1; 1; 0; 0; 1 |] in
  let sub = Bp.client_encode rng bits in
  Alcotest.(check bool) "verifies" true (Bp.server_verify sub);
  Array.iteri
    (fun i o ->
      Alcotest.(check bool) "opening matches bit" true
        (B.equal o.Ped.value (B.of_int bits.(i))))
    sub.Bp.openings;
  (* flipping any commitment must break verification *)
  let bad = { sub with Bp.commitments = Array.copy sub.Bp.commitments } in
  bad.Bp.commitments.(4) <- G.mul bad.Bp.commitments.(4) G.g;
  Alcotest.(check bool) "tampered rejected" false (Bp.server_verify bad)

let test_proof_size () =
  (* the Θ(M) proof-length row of Table 2: one proof per coordinate *)
  Alcotest.(check int) "per-bit proof bytes" (64 + 128) Bp.proof_bytes

(* ----------------------------- schnorr ------------------------------ *)

module Sig_ = Prio_nizk.Schnorr

let test_schnorr_roundtrip () =
  for _ = 1 to 10 do
    let sk, pk = Sig_.keygen rng in
    let msg = Rng.bytes rng (Rng.int_below rng 100) in
    let s = Sig_.sign rng sk msg in
    Alcotest.(check bool) "verifies" true (Sig_.verify pk msg s)
  done

let test_schnorr_soundness () =
  let sk, pk = Sig_.keygen rng in
  let _, pk2 = Sig_.keygen rng in
  let msg = Bytes.of_string "a message" in
  let s = Sig_.sign rng sk msg in
  Alcotest.(check bool) "wrong message" false
    (Sig_.verify pk (Bytes.of_string "another") s);
  Alcotest.(check bool) "wrong key" false (Sig_.verify pk2 msg s);
  Alcotest.(check bool) "tampered response" false
    (Sig_.verify pk msg { s with Sig_.response = B.erem (B.succ s.Sig_.response) G.q });
  Alcotest.(check bool) "tampered challenge" false
    (Sig_.verify pk msg { s with Sig_.challenge = B.erem (B.succ s.Sig_.challenge) G.q })

let test_schnorr_randomized () =
  (* two signatures of the same message differ (fresh nonce) *)
  let sk, pk = Sig_.keygen rng in
  let msg = Bytes.of_string "same message" in
  let s1 = Sig_.sign rng sk msg and s2 = Sig_.sign rng sk msg in
  Alcotest.(check bool) "both verify" true
    (Sig_.verify pk msg s1 && Sig_.verify pk msg s2);
  Alcotest.(check bool) "nonces fresh" false (B.equal s1.Sig_.challenge s2.Sig_.challenge)

let () =
  Alcotest.run "nizk"
    [
      ( "group",
        [
          Alcotest.test_case "safe-prime parameters" `Slow test_group_parameters;
          Alcotest.test_case "element orders" `Quick test_group_orders;
          Alcotest.test_case "operations" `Quick test_group_ops;
          Alcotest.test_case "fiat-shamir challenge" `Quick test_challenge_deterministic;
        ] );
      ( "pedersen",
        [
          Alcotest.test_case "commit/verify" `Quick test_pedersen;
          Alcotest.test_case "hiding" `Quick test_pedersen_hiding;
        ] );
      ( "schnorr",
        [
          Alcotest.test_case "sign/verify" `Quick test_schnorr_roundtrip;
          Alcotest.test_case "soundness" `Quick test_schnorr_soundness;
          Alcotest.test_case "randomized" `Quick test_schnorr_randomized;
        ] );
      ( "bitproof",
        [
          Alcotest.test_case "completeness" `Quick test_bitproof_completeness;
          Alcotest.test_case "soundness" `Quick test_bitproof_soundness;
          Alcotest.test_case "vector submission" `Quick test_vector_submission;
          Alcotest.test_case "proof size" `Quick test_proof_size;
        ] );
    ]
